(** Explicit-state model checker for fully-anonymous protocols — the
    stand-in for the TLC runs reported in the paper (Figure 3 and the
    claims of Sections 5.2 and 8).

    For a fixed configuration, wiring and input assignment, the checker
    enumerates by breadth-first search every state reachable under every
    interleaving of processor steps (the scheduler's nondeterminism is the
    only nondeterminism: protocols are deterministic step machines).  It
    checks a state invariant as states are discovered, reconstructs
    counterexample traces from BFS parents, and decides wait-freedom as a
    graph property:

    a processor [p] can take infinitely many steps without terminating iff
    the finite transition graph contains a cycle traversing a [p]-labelled
    edge — equivalently, an edge [u --p--> v] with [u] and [v] in the same
    strongly connected component.  (In our protocols a processor that has
    output takes no further steps, so a [p]-edge inside an SCC is exactly a
    divergence of a never-terminating [p].)

    The state spaces reach tens of millions of states for 3 processors, so
    states are stored only as compact byte strings: checkable protocols
    supply fixed-width codecs ({!CHECKABLE}, instances in {!Codecs}), the
    visited set maps key bytes to dense ids, edges are packed into integer
    vectors, and the SCC pass runs over a CSR image of the graph.  To cover
    {e all} executions of the anonymous model the caller iterates
    exploration over {!Anonmem.Wiring.enumerate} (with register-symmetry
    reduction) and the relevant input assignments; see
    {!Make.check_all_wirings}. *)

open Repro_util

(** A protocol whose states can be exhaustively explored: local states and
    register values serialize to fixed-width byte strings.  Codecs must be
    exact inverses; widths may depend on the configuration. *)
module type CHECKABLE = sig
  include Anonmem.Protocol.S

  val value_width : cfg -> int
  val encode_value : cfg -> value -> Bytes.t -> int -> unit
  val decode_value : cfg -> Bytes.t -> int -> value
  val local_width : cfg -> int
  val encode_local : cfg -> local -> Bytes.t -> int -> unit
  val decode_local : cfg -> Bytes.t -> int -> local
end

(* Edges are packed as (src lsl 4) lor pid in one int vector and the
   destination in a parallel one; dense state ids stay well below 2^59 and
   processor counts below 16 in any feasible exploration. *)
let max_processors = 16

module Make (P : CHECKABLE) = struct
  type state = { locals : P.local array; registers : P.value array }

  let init_state ~cfg ~inputs =
    {
      locals = Array.map (P.init cfg) inputs;
      registers = Array.make (P.registers cfg) (P.register_init cfg);
    }

  let encode_state cfg st =
    let n = Array.length st.locals and m = Array.length st.registers in
    let lw = P.local_width cfg and vw = P.value_width cfg in
    let b = Bytes.create ((n * lw) + (m * vw)) in
    Array.iteri (fun p l -> P.encode_local cfg l b (p * lw)) st.locals;
    Array.iteri
      (fun r v -> P.encode_value cfg v b ((n * lw) + (r * vw)))
      st.registers;
    Bytes.unsafe_to_string b

  let decode_state cfg key =
    let b = Bytes.unsafe_of_string key in
    let n = P.processors cfg and m = P.registers cfg in
    let lw = P.local_width cfg and vw = P.value_width cfg in
    {
      locals = Array.init n (fun p -> P.decode_local cfg b (p * lw));
      registers =
        Array.init m (fun r -> P.decode_value cfg b ((n * lw) + (r * vw)));
    }

  let enabled cfg st =
    List.filter
      (fun p -> P.next cfg st.locals.(p) <> None)
      (List.init (Array.length st.locals) Fun.id)

  (** Successor of [st] when processor [p] takes its pending step. *)
  let successor cfg wiring st p =
    match P.next cfg st.locals.(p) with
    | None -> invalid_arg "Explorer.successor: processor halted"
    | Some (Anonmem.Protocol.Read i) ->
        let r = Anonmem.Wiring.phys wiring ~p i in
        let locals = Array.copy st.locals in
        locals.(p) <- P.apply_read cfg st.locals.(p) ~reg:i st.registers.(r);
        { st with locals }
    | Some (Anonmem.Protocol.Write (i, v)) ->
        let r = Anonmem.Wiring.phys wiring ~p i in
        let locals = Array.copy st.locals in
        let registers = Array.copy st.registers in
        locals.(p) <- P.apply_write cfg st.locals.(p);
        registers.(r) <- v;
        { locals; registers }

  let outputs cfg st = Array.map (P.output cfg) st.locals

  type space = {
    cfg : P.cfg;
    wiring : Anonmem.Wiring.t;
    inputs : P.input array;
    keys : string Vec.t;  (** id -> encoded state; id 0 is initial *)
    parent : int Vec.t;  (** id -> (parent_id lsl 4) lor pid; -1 at root *)
    edge_src : int Vec.t;  (** (src lsl 4) lor pid *)
    edge_dst : int Vec.t;
    terminal : int list;  (** ids of states where all processors halted *)
  }

  let state_count space = Vec.length space.keys
  let transition_count space = Vec.length space.edge_dst
  let state_of space id = decode_state space.cfg (Vec.get space.keys id)

  type violation = {
    state_id : int;
    message : string;
    trace : (int * state) list;
        (** steps [(pid, post-state)] from the initial state to the
            violating state *)
  }

  type result =
    | Explored of space
    | Invariant_failed of space * violation
    | State_limit of int  (** exploration aborted at this many states *)

  let trace_to space id =
    let rec up id acc =
      let packed = Vec.get space.parent id in
      if packed < 0 then acc
      else
        let parent = packed asr 4 and pid = packed land 15 in
        up parent ((pid, state_of space id) :: acc)
    in
    up id []

  (** Breadth-first exploration.  [invariant] is checked on every state as
      it is discovered; the first failure aborts with a minimal-length
      counterexample trace.  [stop_expansion] (default: never) marks states
      whose successors should not be explored — used to bound protocols
      with unbounded state.  [progress] is called every [2^20] states. *)
  let explore ?(max_states = 50_000_000) ?invariant ?stop_expansion ?progress
      ~cfg ~wiring ~inputs () =
    if P.processors cfg >= max_processors then
      invalid_arg "Explorer.explore: too many processors to pack edges";
    let table : (string, int) Hashtbl.t = Hashtbl.create (1 lsl 16) in
    let keys : string Vec.t = Vec.create () in
    let parent : int Vec.t = Vec.create () in
    let edge_src : int Vec.t = Vec.create () in
    let edge_dst : int Vec.t = Vec.create () in
    let terminal = ref [] in
    let queue = Queue.create () in
    let violation = ref None in
    let add_state st ~from =
      let key = encode_state cfg st in
      match Hashtbl.find_opt table key with
      | Some id -> id
      | None ->
          let id = Vec.push keys key in
          Hashtbl.add table key id;
          ignore (Vec.push parent from);
          (match invariant with
          | Some check -> (
              match check st with
              | Ok () -> ()
              | Error message ->
                  if !violation = None then violation := Some (id, message))
          | None -> ());
          (match progress with
          | Some f when id land ((1 lsl 20) - 1) = 0 -> f id
          | _ -> ());
          Queue.add id queue;
          id
    in
    ignore (add_state (init_state ~cfg ~inputs) ~from:(-1));
    let limit_hit = ref false in
    while (not (Queue.is_empty queue)) && !violation = None && not !limit_hit do
      let id = Queue.pop queue in
      let st = decode_state cfg (Vec.get keys id) in
      let expand =
        match stop_expansion with Some f -> not (f st) | None -> true
      in
      if expand then begin
        match enabled cfg st with
        | [] -> terminal := id :: !terminal
        | en ->
            List.iter
              (fun p ->
                if Vec.length keys >= max_states then limit_hit := true
                else begin
                  let st' = successor cfg wiring st p in
                  let id' = add_state st' ~from:((id lsl 4) lor p) in
                  ignore (Vec.push edge_src ((id lsl 4) lor p));
                  ignore (Vec.push edge_dst id')
                end)
              en
      end
    done;
    if !limit_hit then State_limit (Vec.length keys)
    else begin
      let space =
        {
          cfg;
          wiring;
          inputs;
          keys;
          parent;
          edge_src;
          edge_dst;
          terminal = List.rev !terminal;
        }
      in
      match !violation with
      | Some (state_id, message) ->
          Invariant_failed
            (space, { state_id; message; trace = trace_to space state_id })
      | None -> Explored space
    end

  (* CSR image of the transition graph for the SCC pass. *)
  let csr space =
    let n = state_count space and e = transition_count space in
    let deg = Array.make (n + 1) 0 in
    for i = 0 to e - 1 do
      let u = Vec.get space.edge_src i asr 4 in
      deg.(u + 1) <- deg.(u + 1) + 1
    done;
    for i = 1 to n do
      deg.(i) <- deg.(i) + deg.(i - 1)
    done;
    let adj = Array.make e 0 in
    let cursor = Array.copy deg in
    for i = 0 to e - 1 do
      let u = Vec.get space.edge_src i asr 4 in
      adj.(cursor.(u)) <- Vec.get space.edge_dst i;
      cursor.(u) <- cursor.(u) + 1
    done;
    (deg, adj)

  (* Iterative Tarjan over the CSR graph. *)
  let scc_ids space =
    let n = state_count space in
    let off, adj = csr space in
    let index = Array.make n (-1) in
    let lowlink = Array.make n 0 in
    let on_stack = Bytes.make n '\000' in
    let comp = Array.make n (-1) in
    let stack = ref [] in
    let next_index = ref 0 in
    let comp_count = ref 0 in
    let visit root =
      let frames = ref [ (root, ref off.(root)) ] in
      index.(root) <- !next_index;
      lowlink.(root) <- !next_index;
      incr next_index;
      stack := root :: !stack;
      Bytes.set on_stack root '\001';
      while !frames <> [] do
        match !frames with
        | [] -> ()
        | (v, cursor) :: parent_frames -> (
            if !cursor < off.(v + 1) then begin
              let w = adj.(!cursor) in
              incr cursor;
              if index.(w) = -1 then begin
                index.(w) <- !next_index;
                lowlink.(w) <- !next_index;
                incr next_index;
                stack := w :: !stack;
                Bytes.set on_stack w '\001';
                frames := (w, ref off.(w)) :: !frames
              end
              else if Bytes.get on_stack w = '\001' then
                lowlink.(v) <- min lowlink.(v) index.(w)
            end
            else begin
              if lowlink.(v) = index.(v) then begin
                let continue = ref true in
                while !continue do
                  match !stack with
                  | [] -> continue := false
                  | w :: tl ->
                      stack := tl;
                      Bytes.set on_stack w '\000';
                      comp.(w) <- !comp_count;
                      if w = v then continue := false
                done;
                incr comp_count
              end;
              frames := parent_frames;
              match parent_frames with
              | (u, _) :: _ -> lowlink.(u) <- min lowlink.(u) lowlink.(v)
              | [] -> ()
            end)
      done
    in
    for v = 0 to n - 1 do
      if index.(v) = -1 then visit v
    done;
    (comp, !comp_count)

  (** Processors that can take infinitely many steps without terminating:
      those with an edge inside a strongly connected component of the
      transition graph.  Empty result = the protocol is wait-free for this
      wiring and input assignment. *)
  let divergent_processors space =
    let comp, _ = scc_ids space in
    let bad = Hashtbl.create 8 in
    for i = 0 to transition_count space - 1 do
      let packed = Vec.get space.edge_src i in
      let u = packed asr 4 and p = packed land 15 in
      let v = Vec.get space.edge_dst i in
      if comp.(u) = comp.(v) then Hashtbl.replace bad p ()
    done;
    List.sort compare (Hashtbl.fold (fun p () acc -> p :: acc) bad [])

  let is_wait_free space = divergent_processors space = []

  (** Terminal outcomes: the task outcome at every all-halted state.
      [to_task_output] converts protocol outputs for the task checkers. *)
  let terminal_outcomes space ~group_of_input ~to_task_output =
    List.map
      (fun id ->
        let outs = outputs space.cfg (state_of space id) in
        Tasks.Outcome.make
          ~inputs:(Array.map group_of_input space.inputs)
          ~outputs:(Array.map (Option.map to_task_output) outs)
          ())
      space.terminal

  (** {1 Exhaustive depth-first checking}

      The BFS {!explore} materializes the transition graph (needed for
      terminal-outcome analyses and shortest counterexamples) but costs
      ~130 bytes per state; the 3-processor snapshot spaces run to tens of
      millions of states per wiring, which calls for a leaner pass.  This
      DFS checks the same two properties — a state invariant, and
      wait-freedom — without storing any edges:

      wait-freedom for {e every} processor is equivalent to the transition
      graph being acyclic (any cycle contains an edge, and that edge's
      processor can then take infinitely many steps without terminating),
      and acyclicity is exactly the absence of back edges in a DFS.  The
      DFS keeps only the visited table (key → id), one color byte per
      state, and the current path. *)

  type dfs_stats = {
    dfs_states : int;
    dfs_transitions : int;
    dfs_terminals : int;
    dfs_max_depth : int;
  }

  type dfs_result =
    | Dfs_ok of dfs_stats
    | Dfs_invariant_failed of {
        message : string;
        state : state;  (** the violating state *)
        path : int list;
            (** processor ids of the steps from the initial state to the
                violating state — replay them to rematerialize the trace *)
        stats : dfs_stats;
      }
    | Dfs_cycle of {
        processors : int list;
            (** processors taking steps on the cycle found: each of them
                can run forever without terminating *)
        stats : dfs_stats;
      }
    | Dfs_state_limit of int

  (** [fail_on_cycle] (default true) reports the first cycle as a
      wait-freedom violation; pass [false] for protocols that are only
      obstruction-free (e.g. consensus), where cycles are expected and only
      the invariant is being checked. *)
  let check_exhaustive ?(max_states = 100_000_000) ?(fail_on_cycle = true)
      ?invariant ?stop_expansion ?progress ~cfg ~wiring ~inputs () =
    if P.processors cfg >= max_processors then
      invalid_arg "Explorer.check_exhaustive: too many processors";
    let table : (string, int) Hashtbl.t = Hashtbl.create (1 lsl 20) in
    let colors = Vec.create () in
    (* 1 = gray (on the DFS path), 2 = black (done) *)
    let n = P.processors cfg in
    let transitions = ref 0 and terminals = ref 0 and max_depth = ref 0 in
    let stats () =
      {
        dfs_states = Vec.length colors;
        dfs_transitions = !transitions;
        dfs_terminals = !terminals;
        dfs_max_depth = !max_depth;
      }
    in
    let outcome = ref None in
    (* Frames: (id, key, pid of the step that entered this frame, next
       processor index to try).  The decoded state is rebuilt per
       successor; keeping it would bloat the path. *)
    let stack = ref [] and depth = ref 0 in
    let add_state key ~entered_by st =
      let id = Vec.push colors 1 in
      Hashtbl.add table key id;
      (match progress with
      | Some f when id land ((1 lsl 20) - 1) = 0 -> f id
      | _ -> ());
      (match invariant with
      | Some check -> (
          match check st with
          | Ok () -> ()
          | Error message ->
              if !outcome = None then
                let path =
                  List.rev_map (fun (_, _, pid, _, _) -> pid) !stack
                  |> List.filter (fun pid -> pid >= 0)
                in
                let path = if entered_by >= 0 then path @ [ entered_by ] else path in
                outcome :=
                  Some
                    (Dfs_invariant_failed
                       {
                         message;
                         state = st;
                         path = path @ [ entered_by ];
                         stats = stats ();
                       }))
      | None -> ());
      stack := (id, key, entered_by, ref 0, ref false) :: !stack;
      incr depth;
      if !depth > !max_depth then max_depth := !depth;
      id
    in
    let key0 = encode_state cfg (init_state ~cfg ~inputs) in
    ignore (add_state key0 ~entered_by:(-1) (init_state ~cfg ~inputs));
    let limit = ref false in
    while !stack <> [] && !outcome = None && not !limit do
      match !stack with
      | [] -> ()
      | (id, key, _, next_p, any_enabled) :: rest ->
          (if !next_p = 0 then
             match stop_expansion with
             | Some f when f (decode_state cfg key) ->
                 (* pruned leaf: skip successors; not a terminal state *)
                 next_p := n;
                 any_enabled := true
             | _ -> ());
          if !next_p >= n then begin
            if not !any_enabled then incr terminals;
            Vec.set colors id 2;
            stack := rest;
            decr depth
          end
          else begin
            let p = !next_p in
            incr next_p;
            let st = decode_state cfg key in
            if P.next cfg st.locals.(p) <> None then begin
              any_enabled := true;
              incr transitions;
              let st' = successor cfg wiring st p in
              let key' = encode_state cfg st' in
              match Hashtbl.find_opt table key' with
              | None ->
                  if Vec.length colors >= max_states then limit := true
                  else ignore (add_state key' ~entered_by:p st')
              | Some id' ->
                  if fail_on_cycle && Vec.get colors id' = 1 then begin
                    (* back edge: a cycle through id'.  Collect the pids of
                       the path segment from id' to here, plus p. *)
                    let rec collect acc = function
                      | (fid, _, entered_by, _, _) :: rest ->
                          if fid = id' then acc
                          else collect (entered_by :: acc) rest
                      | [] -> acc
                    in
                    let pids = p :: collect [] !stack in
                    outcome :=
                      Some
                        (Dfs_cycle
                           {
                             processors = List.sort_uniq compare pids;
                             stats = stats ();
                           })
                  end
            end
          end
    done;
    if !limit then Dfs_state_limit (Vec.length colors)
    else match !outcome with Some r -> r | None -> Dfs_ok (stats ())

  type summary = {
    wirings_checked : int;
    total_states : int;
    max_space_states : int;
    total_transitions : int;
    terminal_states : int;
    all_wait_free : bool;
  }

  let empty_summary =
    {
      wirings_checked = 0;
      total_states = 0;
      max_space_states = 0;
      total_transitions = 0;
      terminal_states = 0;
      all_wait_free = true;
    }

  (** Check an invariant and wait-freedom across a set of wirings —
      by default every wiring with processor 0's permutation pinned to the
      identity (register anonymity makes the restriction lossless) — for
      one input assignment, using the lean DFS pass.  [on_wiring] observes
      each per-wiring result as it completes. *)
  let check_all_wirings ?max_states ?invariant ?(require_wait_free = true)
      ?on_wiring ?wirings ~cfg ~inputs () =
    let n = P.processors cfg and m = P.registers cfg in
    let wirings =
      match wirings with
      | Some ws -> ws
      | None -> Anonmem.Wiring.enumerate ~n ~m ~fix_first:true
    in
    let rec go summary = function
      | [] -> Ok summary
      | wiring :: rest -> (
          match check_exhaustive ?max_states ?invariant ~cfg ~wiring ~inputs () with
          | Dfs_state_limit k -> Error (Fmt.str "state limit hit at %d states" k)
          | Dfs_invariant_failed { message; _ } ->
              Error
                (Fmt.str "invariant violated under wiring %a: %s"
                   Anonmem.Wiring.pp wiring message)
          | Dfs_cycle { processors; stats } ->
              let summary =
                {
                  summary with
                  wirings_checked = summary.wirings_checked + 1;
                  total_states = summary.total_states + stats.dfs_states;
                  all_wait_free = false;
                }
              in
              (match on_wiring with Some f -> f wiring summary | None -> ());
              if require_wait_free then
                Error
                  (Fmt.str
                     "wait-freedom violated under wiring %a: processors %a diverge"
                     Anonmem.Wiring.pp wiring
                     Fmt.(list ~sep:comma int)
                     processors)
              else go summary rest
          | Dfs_ok stats ->
              let summary =
                {
                  wirings_checked = summary.wirings_checked + 1;
                  total_states = summary.total_states + stats.dfs_states;
                  max_space_states = max summary.max_space_states stats.dfs_states;
                  total_transitions =
                    summary.total_transitions + stats.dfs_transitions;
                  terminal_states = summary.terminal_states + stats.dfs_terminals;
                  all_wait_free = summary.all_wait_free;
                }
              in
              (match on_wiring with Some f -> f wiring summary | None -> ());
              go summary rest)
    in
    go empty_summary wirings
end
