lib/tasks/outcome.mli: Repro_util Seq
