(** Small directed graphs over integer vertices [0..n-1].

    Two clients: the stable-view graph of Theorem 4.8 (vertices are stable
    views, edges are strict containment) and the model checker's
    wait-freedom analysis (vertices are explored system states, edges are
    steps; a violation is a cycle of non-terminated states containing a step
    of the watched processor). *)

type t

val create : int -> t
(** [create n] is an edgeless graph with vertices [0..n-1]. *)

val vertex_count : t -> int
val add_edge : t -> int -> int -> unit
(** Duplicate edges are kept; algorithms tolerate them. *)

val successors : t -> int -> int list
val edge_count : t -> int

val sources : t -> int list
(** Vertices with no incoming edge. *)

val is_acyclic : t -> bool

val sccs : t -> int list list
(** Strongly connected components (Tarjan), in reverse topological order.
    Singleton components without a self-loop are trivial. *)

val scc_ids : t -> int array * int
(** [scc_ids g] is [(comp, count)] with [comp.(v)] the component index of
    [v]; components are numbered in reverse topological order. *)

val has_self_loop : t -> int -> bool

val reachable_from : t -> int list -> bool array
(** Forward reachability from a set of start vertices. *)
