(** Strongly connected components of an explicit graph in CSR form.

    Shared by the sequential {!Explorer} (wait-freedom as a [p]-edge inside
    an SCC) and the parallel {!Par_explorer} (which shards exploration but
    runs this pass sequentially over the merged edge image: the SCC pass is
    linear in the graph and never dominates exploration).  Iterative
    Tarjan — the state graphs run to millions of nodes, so no recursion. *)

(** [tarjan ~n ~off ~adj] labels the [n] nodes of the graph whose
    out-neighbours of [u] are [adj (off u) .. adj (off (u+1) - 1)] with
    component ids, returning [(comp, count)].  [off] and [adj] are
    accessor functions rather than arrays so callers can serve them
    straight from packed byte representations ({!State_table.Packed_vec})
    without materializing an intermediate [int array] copy of the edge
    image.  Component ids are assigned in reverse topological completion
    order; only equality of ids is meaningful to callers. *)
let tarjan ~n ~(off : int -> int) ~(adj : int -> int) =
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Bytes.make (max n 1) '\000' in
  let comp = Array.make n (-1) in
  let stack = ref [] in
  let next_index = ref 0 in
  let comp_count = ref 0 in
  let visit root =
    let frames = ref [ (root, ref (off root)) ] in
    index.(root) <- !next_index;
    lowlink.(root) <- !next_index;
    incr next_index;
    stack := root :: !stack;
    Bytes.set on_stack root '\001';
    while !frames <> [] do
      match !frames with
      | [] -> ()
      | (v, cursor) :: parent_frames -> (
          if !cursor < off (v + 1) then begin
            let w = adj !cursor in
            incr cursor;
            if index.(w) = -1 then begin
              index.(w) <- !next_index;
              lowlink.(w) <- !next_index;
              incr next_index;
              stack := w :: !stack;
              Bytes.set on_stack w '\001';
              frames := (w, ref (off w)) :: !frames
            end
            else if Bytes.get on_stack w = '\001' then
              lowlink.(v) <- min lowlink.(v) index.(w)
          end
          else begin
            if lowlink.(v) = index.(v) then begin
              let continue = ref true in
              while !continue do
                match !stack with
                | [] -> continue := false
                | w :: tl ->
                    stack := tl;
                    Bytes.set on_stack w '\000';
                    comp.(w) <- !comp_count;
                    if w = v then continue := false
              done;
              incr comp_count
            end;
            frames := parent_frames;
            match parent_frames with
            | (u, _) :: _ -> lowlink.(u) <- min lowlink.(u) lowlink.(v)
            | [] -> ()
          end)
    done
  in
  for v = 0 to n - 1 do
    if index.(v) = -1 then visit v
  done;
  (comp, !comp_count)
