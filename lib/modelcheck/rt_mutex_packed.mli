(** Single-word packed explorer for {!Algorithms.Rt_mutex} clean-cell
    sweeps — registers as 3-bit fields, local phases interned into dense
    per-processor bit fields, transitions as table lookups, and one iterative
    Tarjan pass checking the mutual-exclusion invariant per state and
    fair-SCC deadlock per component.  Exactly the generic engine's step
    relation and verdict semantics (the differential tests assert state
    and verdict parity), an order of magnitude faster; see the
    implementation header for the packing and the soundness argument. *)

type verdict =
  | Clean of { states : int; pruned : int }
      (** swept exhaustively, no violation; [pruned] counts successors
          skipped by the [~prune] oracle (0 when pruning is off) *)
  | Breach  (** mutual-exclusion invariant or audit tripwire violated *)
  | Fair_cycle  (** deadlock: a fair SCC is reachable *)
  | Limit of int  (** state cap hit *)
  | Exhausted of { reason : Governor.reason; states : int }
      (** a resource governor tripped mid-sweep; when a checkpoint
          policy was in force a final checkpoint was written first, so
          the sweep resumes exactly where it stopped *)
  | Unsupported
      (** shape outside the packed envelope (n > 3, or the mixed-radix
          word would overflow); fall back to the generic engine *)

type ws
(** Reusable exploration buffers (visited table, Tarjan vectors).  A
    sweep over many wirings should allocate one and pass it to every
    {!check_wiring} call: buffers keep their high-water capacity, so
    only the first large space pays the growth cost. *)

val ws : unit -> ws

val check_wiring :
  ?ws:ws ->
  ?max_states:int ->
  ?prune:(int -> bool) ->
  ?governor:Governor.t ->
  ?ckpt:Checkpoint.policy ->
  ?ckpt_extra:(string * Bytes.t) list ->
  ?resume:bool ->
  cfg:Algorithms.Rt_mutex.cfg ->
  wiring:Anonmem.Wiring.t ->
  inputs:int array ->
  unit ->
  verdict
(** Sweep one wiring's full interleaving space.  [inputs] are the
    distinct identities by processor, as in {!Explorer.Make.explore}.
    Verdicts carry no witness: re-run the generic explorer on the
    offending wiring to extract one (violating wirings stop early, so
    the re-run is cheap).

    [prune] observes the packed state word of each candidate successor
    and drops it without interning when [true] — sound exactly when the
    dropped states are unreachable (a proved inductive invariant over
    the packing).

    [governor] is polled once per Tarjan step; on a trip the verdict is
    {!Exhausted} (after a final checkpoint write when [ckpt] is set).
    [ckpt] checkpoints the whole loop state — packed-state table, Tarjan
    bookkeeping, frame stack — every [every_states] steps, atomically;
    [ckpt_extra] sections ride along (sweep drivers store their position
    there); [resume] restarts from [ckpt.path] if it exists, raising
    [Checkpoint.Corrupt_checkpoint] on a torn file or a context
    mismatch. *)
