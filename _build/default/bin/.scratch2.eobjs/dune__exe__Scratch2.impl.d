bin/scratch2.ml: Anonmem Array Fmt List Modelcheck Printf String Unix
