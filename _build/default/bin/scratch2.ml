module S3 = Modelcheck.Snapshot3

let mask_str m =
  let l = List.filter (fun i -> m land (1 lsl (i - 1)) <> 0) [ 1; 2; 3 ] in
  "{" ^ String.concat "," (List.map string_of_int l) ^ "}"

let () =
  let t0 = Unix.gettimeofday () in
  let wirings = Anonmem.Wiring.enumerate ~n:3 ~m:3 ~fix_first:true in
  let configs =
    [ (* (inputs, target) — group configurations first: the two same-input
         processors can climb levels together while the third covers *)
      ([| 1; 1; 2 |], 0b001);
      ([| 1; 2; 2 |], 0b010);
      ([| 1; 1; 2 |], 0b011);
      ([| 1; 2; 3 |], 0b011);
      ([| 1; 2; 3 |], 0b001);
    ]
  in
  let try_config (inputs, target_mask) =
    Printf.printf "inputs (%d,%d,%d), target %s...\n%!" inputs.(0) inputs.(1)
      inputs.(2) (mask_str target_mask);
    match S3.find_nonatomic ~inputs ~target_mask ~wirings () with
    | Some w ->
        Printf.printf
          "WITNESS (%.1fs): p%d returns %s, memory never contains it\n"
          (Unix.gettimeofday () -. t0) (w.S3.culprit + 1) (mask_str w.S3.target_mask);
        Printf.printf "  wiring %s, path length %d, states explored %d\n"
          (Fmt.str "%a" Anonmem.Wiring.pp w.S3.wiring)
          (List.length w.S3.path) w.S3.states_explored;
        Printf.printf "  path: %s\n%!"
          (String.concat ""
             (List.map (fun p -> string_of_int (p + 1)) w.S3.path));
        true
    | None ->
        Printf.printf "  no witness (%.1fs)\n%!" (Unix.gettimeofday () -. t0);
        false
  in
  if not (List.exists try_config configs) then
    print_endline "NO WITNESS in any tried configuration"
