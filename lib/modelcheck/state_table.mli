(** Arena-backed visited-state tables for the explicit-state explorers.

    Every engine in this library ({!Explorer}'s BFS and DFS passes,
    {!Fault_explorer}, each {!Par_explorer} shard) needs the same data
    structure: a set of fixed-width byte keys with a dense integer id per
    key (id = insertion order), O(1) membership, and the ability to read a
    key back from its id (for decoding popped states and for concretizing
    counterexample traces).  The previous representation — a stdlib
    [(string, int) Hashtbl] plus a parallel [string Vec.t] — pays, per
    state, a boxed string (header + padding), a hash-bucket cons cell and
    two pointer slots; at the paper's 3-processor scale (~2M states per
    wiring) that is ~77 bytes per 21-byte key.

    {!t} stores the keys themselves back to back in a single growable
    [Bytes] arena (key [id] lives at offset [id * key_width]) and resolves
    membership through an open-addressing slot array: 4 bytes of
    little-endian id-plus-one per slot (0 = empty) plus one stored hash-tag
    byte per slot (the top bits of the key's 64-bit FNV-1a hash, disjoint
    from the bits that pick the bucket), so a probe almost never touches
    the arena for keys that do not match.  Slot counts are powers of two,
    doubled at 3/4 load; growth re-derives hashes from the arena, so
    nothing but the keys is ever stored twice.  Net cost: [key_width]
    arena bytes plus ~7-10 slot bytes per state.

    The table is deliberately minimal: no deletion, no satellite values
    (the dense id {e is} the value), single-writer.  For cross-domain use,
    shard by key ownership as {!Par_explorer} does — one table per domain,
    never shared. *)

type t

val create : ?log2_slots:int -> key_width:int -> unit -> t
(** [create ~key_width ()] is an empty table for keys of exactly
    [key_width] bytes.  [log2_slots] (default 12) sizes the initial slot
    array; it only matters as a pre-sizing hint, the table grows as
    needed.  Raises [Invalid_argument] if [key_width < 0]. *)

val key_width : t -> int
val length : t -> int
(** Number of distinct keys interned so far.  Dense ids are exactly
    [0 .. length - 1]. *)

val capacity : t -> int
(** Current slot count (a power of two) — exposed for the load-factor
    assertions of the oracle-differential test suite. *)

val intern : t -> string -> int
(** [intern t key] returns the dense id of [key], inserting it with id
    [length t] if absent.  The caller can detect insertion by comparing
    {!length} before and after (or the returned id against the prior
    length).  Raises [Invalid_argument] if [String.length key] differs
    from [key_width t]. *)

val find : t -> string -> int option
(** [find t key] is the dense id of [key], or [None]; never inserts.
    Raises [Invalid_argument] on a key-width mismatch. *)

val mem : t -> string -> bool

val key_of_id : t -> int -> string
(** [key_of_id t id] is a fresh copy of the key with dense id [id] — the
    inverse of the id assignment, used to decode popped states and to
    rebuild counterexample traces.  Raises [Invalid_argument] if [id] is
    not in [0 .. length t - 1]. *)

val iter : (int -> string -> unit) -> t -> unit
(** [iter f t] applies [f id key] to every interned key in id
    (= insertion) order. *)

val words : t -> int
(** Approximate retained size of the table in machine words (arena + slot
    array + tag bytes + record), for the benchmark's memory column. *)

val hash : string -> int
(** The table's own key hash (64-bit FNV-1a, truncated to a nonnegative
    OCaml int).  Slot index is [hash land (capacity - 1)]; the stored tag
    is bits 55..62.  Exposed so tests can seed same-bucket collisions. *)

val serialize : t -> Bytes.t
(** Checkpoint image of the table: a checksummed header plus a blit of
    the used arena prefix.  The slot/tag arrays are a pure function of
    the interned keys, so they are rebuilt on load rather than stored. *)

val deserialize : Bytes.t -> t
(** Inverse of {!serialize} — membership, dense ids, {!key_of_id} and
    iteration order are all restored exactly.  Raises
    [Checkpoint.Corrupt_checkpoint] on truncation, bad framing or a
    checksum mismatch. *)

(** Growable vectors of fixed-stride little-endian unsigned integers,
    packed in one [Bytes] buffer — 1 to 7 bytes per element instead of a
    boxed-array word.  The explorers use stride 5 for packed parent links
    and edge words (ids up to 2^35) and stride 1 for DFS colors and
    per-state out-degrees. *)
module Packed_vec : sig
  type t

  val create : ?capacity:int -> stride:int -> unit -> t
  (** [create ~stride ()] is an empty vector of [stride]-byte elements
      ([1 <= stride <= 7]); elements must lie in [0 .. 2^(8*stride) - 1].
      [capacity] pre-sizes in elements. *)

  val stride : t -> int
  val length : t -> int

  val push : t -> int -> int
  (** Appends and returns the index of the new element.  Raises
      [Invalid_argument] if the value does not fit the stride — the
      structured overflow error that replaces silent truncation. *)

  val get : t -> int -> int
  val set : t -> int -> int -> unit
  val words : t -> int
  (** Approximate retained size in machine words. *)

  val serialize : t -> Bytes.t
  val deserialize : Bytes.t -> t
  (** Checksummed image of the packed buffer; raises
      [Checkpoint.Corrupt_checkpoint] on any integrity failure. *)
end
