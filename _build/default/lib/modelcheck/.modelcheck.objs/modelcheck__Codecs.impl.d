lib/modelcheck/codecs.ml: Algorithms Bytes Char Iset Repro_util
