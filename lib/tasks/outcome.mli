(** Execution outcomes and output samples (Section 3.2.1 of the paper).

    An outcome records, for one finished execution, each processor's input
    (its group identifier), whether it participated (took at least one
    step), and its output if it produced one.  Group solvability
    (Definition 3.4) quantifies over {e output samples}: functions mapping
    each participating group to the output of one of its members;
    {!samples} enumerates them all and {!for_all_samples} validates each
    against a task specification. *)

type 'o t = {
  inputs : int array;  (** [inputs.(p)] is processor [p]'s group identifier *)
  participated : bool array;
  outputs : 'o option array;
}

val make :
  ?participated:bool array ->
  inputs:int array ->
  outputs:'o option array ->
  unit ->
  'o t
(** Copies its array arguments.  A processor with an output is forced to
    count as participating.  [participated] defaults to all-true.  Raises
    [Invalid_argument] on length mismatches. *)

val processors : 'o t -> int

val participating_groups : 'o t -> Repro_util.Iset.t
(** Groups with at least one participating member. *)

val group_of : 'o t -> int -> int
val members : 'o t -> int -> int list
val outputs_of_group : 'o t -> int -> 'o list

val terminated : 'o t -> 'o list
(** All outputs, in processor order. *)

val sampled_groups : 'o t -> (int * 'o list) list
(** Groups that produced at least one output, with their outputs. *)

val samples : 'o t -> (int * 'o) list Seq.t
(** All output samples, lazily: each is an association list from group
    identifier to the output of one member, covering every group that
    produced an output. *)

val sample_count : 'o t -> int
(** Product of the per-group output multiplicities. *)

val for_all_samples :
  'o t ->
  check:(groups:Repro_util.Iset.t -> (int * 'o) list -> (unit, 'e) result) ->
  (unit, 'e) result
(** Validate every output sample; first failure wins. *)
