(* Tests of the Figure-1 write-scan loop: view monotonicity, fair write
   order, non-termination, and basic eventual-pattern facts. *)

open Repro_util
module WS = Algorithms.Write_scan
module Sys = Anonmem.System.Make (WS)
module Scheduler = Anonmem.Scheduler

let iset = Alcotest.testable (Fmt.of_to_string Iset.to_string) Iset.equal

let init ?(n = 3) ?(m = 3) ?(seed = 0) () =
  let cfg = WS.cfg ~n ~m in
  let wiring = Anonmem.Wiring.random (Rng.create ~seed) ~n ~m in
  let inputs = Array.init n (fun i -> i + 1) in
  (cfg, Sys.init ~cfg ~wiring ~inputs)

let test_initial_views_are_singletons () =
  let _, st = init () in
  Array.iteri
    (fun p l ->
      Alcotest.check iset "singleton input" (Iset.of_list [ p + 1 ])
        (WS.view_of_local l))
    st.Sys.locals

let test_never_terminates () =
  let cfg, st = init () in
  let stop, steps =
    Sys.run ~max_steps:5_000 ~sched:(Scheduler.round_robin ()) st
  in
  Alcotest.(check bool) "ran out of budget, not halted" true (stop = Sys.Max_steps);
  Alcotest.(check int) "all budget used" 5_000 steps;
  Array.iter
    (fun l -> Alcotest.(check bool) "no output ever" true (WS.output cfg l = None))
    st.Sys.locals

let test_views_monotone () =
  let _, st = init ~seed:3 () in
  let sched = Scheduler.random (Rng.create ~seed:42) in
  let prev = ref (Array.map WS.view_of_local st.Sys.locals) in
  let _ =
    Sys.run ~max_steps:2_000 ~sched
      ~on_event:(fun ~time:_ _ ->
        let now = Array.map WS.view_of_local st.Sys.locals in
        Array.iteri
          (fun p v ->
            Alcotest.(check bool) "view only grows" true (Iset.subset !prev.(p) v))
          now;
        prev := now)
      st
  in
  ()

let test_views_bounded_by_inputs () =
  let _, st = init ~n:4 ~m:2 ~seed:7 () in
  let sched = Scheduler.random (Rng.create ~seed:1) in
  let _ = Sys.run ~max_steps:3_000 ~sched st in
  let all = Iset.of_list [ 1; 2; 3; 4 ] in
  Array.iter
    (fun l ->
      Alcotest.(check bool) "view within participating inputs" true
        (Iset.subset (WS.view_of_local l) all))
    st.Sys.locals

let test_fair_write_order () =
  (* Each processor writes every register exactly once per m rounds. *)
  let m = 4 in
  let cfg = WS.cfg ~n:1 ~m in
  let wiring = Anonmem.Wiring.identity ~n:1 ~m in
  let st = Sys.init ~cfg ~wiring ~inputs:[| 1 |] in
  let writes = ref [] in
  let _ =
    Sys.run
      ~max_steps:(3 * m * (m + 1))
      ~sched:(Scheduler.solo 0)
      ~on_event:(fun ~time:_ -> function
        | Sys.Write_ev { phys_reg; _ } -> writes := phys_reg :: !writes
        | Sys.Read_ev _ -> ())
      st
  in
  let writes = List.rev !writes in
  let rec windows = function
    | a :: b :: c :: d :: rest ->
        let sorted = List.sort compare [ a; b; c; d ] in
        Alcotest.(check (list int)) "window covers all registers" [ 0; 1; 2; 3 ]
          sorted;
        windows rest
    | _ -> ()
  in
  windows writes

let test_solo_view_stays_own () =
  let _, st = init () in
  let _ = Sys.run ~max_steps:500 ~sched:(Scheduler.solo 0) st in
  Alcotest.check iset "solo processor learns nothing new" (Iset.of_list [ 1 ])
    (WS.view_of_local st.Sys.locals.(0))

let test_two_processors_converge_when_wired_apart () =
  let cfg = WS.cfg ~n:2 ~m:2 in
  let wiring = Anonmem.Wiring.of_lists [ [ 0; 1 ]; [ 1; 0 ] ] in
  let st = Sys.init ~cfg ~wiring ~inputs:[| 1; 2 |] in
  let _ = Sys.run ~max_steps:100 ~sched:(Scheduler.round_robin ()) st in
  Array.iter
    (fun l ->
      Alcotest.check iset "both views full" (Iset.of_list [ 1; 2 ])
        (WS.view_of_local l))
    st.Sys.locals

let test_lockstep_covering_starves_information () =
  (* The covering phenomenon in miniature: with identity wiring and strict
     lockstep, p1 overwrites p0's register just before reading it, every
     round — a fair schedule under which p1 never learns p0's input. *)
  let cfg = WS.cfg ~n:2 ~m:2 in
  let wiring = Anonmem.Wiring.identity ~n:2 ~m:2 in
  let st = Sys.init ~cfg ~wiring ~inputs:[| 1; 2 |] in
  let _ = Sys.run ~max_steps:400 ~sched:(Scheduler.round_robin ()) st in
  Alcotest.check iset "p1 never sees input 1" (Iset.of_list [ 2 ])
    (WS.view_of_local st.Sys.locals.(1));
  Alcotest.check iset "p0 does see input 2" (Iset.of_list [ 1; 2 ])
    (WS.view_of_local st.Sys.locals.(0))

let test_scan_reads_all_registers_in_order () =
  let _, st = init ~n:1 ~m:3 () in
  let reads = ref [] in
  let _ =
    Sys.run ~max_steps:4 ~sched:(Scheduler.solo 0)
      ~on_event:(fun ~time:_ -> function
        | Sys.Read_ev { local_reg; _ } -> reads := local_reg :: !reads
        | Sys.Write_ev _ -> ())
      st
  in
  Alcotest.(check (list int)) "private order 0,1,2" [ 0; 1; 2 ] (List.rev !reads)

let test_apply_read_wrong_phase () =
  let cfg = WS.cfg ~n:1 ~m:2 in
  let l = WS.init cfg 1 in
  Alcotest.check_raises "read while writing"
    (Invalid_argument "Write_scan.apply_read: not scanning") (fun () ->
      ignore (WS.apply_read cfg l ~reg:0 Iset.empty))

let () =
  Alcotest.run "write_scan"
    [
      ( "write-scan",
        [
          Alcotest.test_case "initial views" `Quick test_initial_views_are_singletons;
          Alcotest.test_case "never terminates" `Quick test_never_terminates;
          Alcotest.test_case "views monotone" `Quick test_views_monotone;
          Alcotest.test_case "views bounded by inputs" `Quick
            test_views_bounded_by_inputs;
          Alcotest.test_case "fair write order" `Quick test_fair_write_order;
          Alcotest.test_case "solo learns nothing" `Quick test_solo_view_stays_own;
          Alcotest.test_case "wired-apart pair converges" `Quick
            test_two_processors_converge_when_wired_apart;
          Alcotest.test_case "lockstep covering starves information" `Quick
            test_lockstep_covering_starves_information;
          Alcotest.test_case "scan order" `Quick test_scan_reads_all_registers_in_order;
          Alcotest.test_case "phase errors" `Quick test_apply_read_wrong_phase;
        ] );
    ]
