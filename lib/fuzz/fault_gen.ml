(** Seeded generation of {!Anonmem.Fault} plans for fuzzing campaigns.

    A {e profile} names a family of fault plans; {!random} draws a
    concrete plan from a profile and an {!Repro_util.Rng.t}, so — exactly
    like {!Schedule.random} — the same profile and seed always yield the
    same plan.  Profiles are deliberately coarse: the interesting choice
    for a campaign is {e which kinds} of faults the algorithm must
    survive; the fuzzer explores the placements. *)

open Repro_util

type profile =
  | No_faults
  | Crash_stop_only  (** processors stop forever (the paper's usual fault) *)
  | Crash_recover  (** amnesiac restarts on the original input *)
  | Omission  (** individual writes silently dropped *)
  | Stuck  (** a register stops accepting writes *)
  | Stale  (** individual reads return the previous register value *)
  | Mixed  (** any of the above, combined *)

let all = [ No_faults; Crash_stop_only; Crash_recover; Omission; Stuck; Stale; Mixed ]

let name = function
  | No_faults -> "none"
  | Crash_stop_only -> "crash"
  | Crash_recover -> "recover"
  | Omission -> "omission"
  | Stuck -> "stuck"
  | Stale -> "stale"
  | Mixed -> "mixed"

let of_string s =
  List.find_opt (fun p -> name p = String.trim s) all

let names = List.map name all
let pp = Fmt.of_to_string name

(** Draw a plan for [n] processors and [m] registers with event times
    below [horizon].  Crash profiles keep at least one processor
    uncrashed, so runs cannot be trivially vacuous. *)
let random rng ~profile ~n ~m ~horizon : Anonmem.Fault.plan =
  let at () = Rng.int rng (max 1 horizon) in
  let p () = Rng.int rng n in
  let some_events lo hi mk =
    List.init (lo + Rng.int rng (hi - lo + 1)) (fun _ -> mk ())
  in
  let crash_stops () =
    (* Crash at most n-1 distinct processors. *)
    let survivor = p () in
    some_events 1 (max 1 (n - 1)) (fun () ->
        Anonmem.Fault.Crash_stop { p = p (); at = at () })
    |> List.filter (function
         | Anonmem.Fault.Crash_stop { p; _ } -> p <> survivor
         | _ -> true)
  in
  let plan =
    match profile with
    | No_faults -> []
    | Crash_stop_only -> crash_stops ()
    | Crash_recover ->
        some_events 1 2 (fun () ->
            Anonmem.Fault.Crash_recover { p = p (); at = at () })
    | Omission ->
        some_events 1 3 (fun () -> Anonmem.Fault.Omit_write { p = p (); at = at () })
    | Stuck -> [ Anonmem.Fault.Stuck_register { reg = Rng.int rng m; at = at () } ]
    | Stale ->
        some_events 1 2 (fun () -> Anonmem.Fault.Stale_read { p = p (); at = at () })
    | Mixed ->
        let one () =
          match Rng.int rng 5 with
          | 0 -> Anonmem.Fault.Crash_stop { p = p (); at = at () }
          | 1 -> Anonmem.Fault.Crash_recover { p = p (); at = at () }
          | 2 -> Anonmem.Fault.Omit_write { p = p (); at = at () }
          | 3 -> Anonmem.Fault.Stale_read { p = p (); at = at () }
          | _ -> Anonmem.Fault.Stuck_register { reg = Rng.int rng m; at = at () }
        in
        let events = some_events 1 4 one in
        (* Keep one survivor here too: drop crashes of processor 0. *)
        List.filter
          (function
            | Anonmem.Fault.Crash_stop { p; _ } -> p <> 0
            | _ -> true)
          events
  in
  Anonmem.Fault.normalize plan
