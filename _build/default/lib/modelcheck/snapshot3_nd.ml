(** {!Snapshot3} with the paper's {e nondeterministic} write order.

    The shipped implementation writes registers in a fixed private cyclic
    order — a deterministic refinement of Figure 3's write phase, which
    only demands fairness ("picks a register that it has not written to
    since it last wrote all the registers", a PlusCal [with] choice).  The
    refinement is sound for verifying the implementation, but it explores
    {e fewer} executions than the paper's spec: some adversarial patterns
    (notably candidates for the Section-8 non-atomicity witness) may
    require re-ordering writes between rounds.

    This variant models the specification faithfully: each local state
    tracks the {e set} of registers written since the last full round (3
    bits instead of a 2-bit cursor), and the write phase branches over
    every register not yet written.  State packing:

    {v
    per processor (13 bits x 3):   per register (5 bits x 3):
      view     3 bits                view   3 bits
      level    2 bits                level  2 bits
      written  3 bits  (round mask)
      phase    3 bits  (0 = writing, 1 + pos*2 + all_own = scanning)
      min      2 bits
    v}

    54 bits per system state.  Nondeterministic choices multiply the
    spaces by roughly the branching of the write phase; searches are
    correspondingly heavier than {!Snapshot3}'s. *)

open Repro_util

let n = 3
let m = 3

let local_bits = 13
let reg_bits = 5
let reg_off r = (n * local_bits) + (r * reg_bits)
let local_off p = p * local_bits
let lmask = (1 lsl local_bits) - 1
let rmask = (1 lsl reg_bits) - 1
let all_written = (1 lsl m) - 1

let l_view l = l land 7
let l_level l = (l lsr 3) land 3
let l_written l = (l lsr 5) land 7
let l_phase l = (l lsr 8) land 7
let l_min l = (l lsr 11) land 3

let mk_local ~view ~level ~written ~phase ~mn =
  view lor (level lsl 3) lor (written lsl 5) lor (phase lsl 8) lor (mn lsl 11)

let r_view v = v land 7
let r_level v = (v lsr 3) land 3
let mk_reg ~view ~level = view lor (level lsl 3)

let get_local s p = (s lsr local_off p) land lmask
let set_local s p l = s land lnot (lmask lsl local_off p) lor (l lsl local_off p)
let get_reg s r = (s lsr reg_off r) land rmask
let set_reg s r v = s land lnot (rmask lsl reg_off r) lor (v lsl reg_off r)

let halted l = l_level l >= n && l_phase l = 0

(** Number of nondeterministic choices processor [p] has in state [s]:
    0 when halted, 1 during a scan, and one per unwritten register during
    the write phase. *)
let choices s p =
  let l = get_local s p in
  if halted l then 0
  else if l_phase l <> 0 then 1
  else m - (l_written l land 1) - ((l_written l lsr 1) land 1) - ((l_written l lsr 2) land 1)

(** The [c]-th choice's target private register during a write phase. *)
let write_target written c =
  let rec go i c =
    if i >= m then invalid_arg "Snapshot3_nd.write_target"
    else if written land (1 lsl i) = 0 then if c = 0 then i else go (i + 1) (c - 1)
    else go (i + 1) c
  in
  go 0 c

let step s p c sigma =
  let l = get_local s p in
  let phase = l_phase l in
  if phase = 0 then begin
    let i = write_target (l_written l) c in
    let r = sigma.(i) in
    let s = set_reg s r (mk_reg ~view:(l_view l) ~level:(l_level l)) in
    let written = l_written l lor (1 lsl i) in
    let written = if written = all_written then 0 else written in
    let l' =
      mk_local ~view:(l_view l) ~level:(l_level l) ~written ~phase:2 ~mn:n
    in
    set_local s p l'
  end
  else begin
    let pos = (phase - 1) / 2 in
    let all_own = (phase - 1) land 1 = 1 in
    let v = get_reg s sigma.(pos) in
    let all_own = all_own && r_view v = l_view l in
    let view = if all_own then l_view l else l_view l lor r_view v in
    let mn = if all_own then min (l_min l) (r_level v) else 0 in
    let l' =
      if pos + 1 < m then
        mk_local ~view ~level:(l_level l) ~written:(l_written l)
          ~phase:(1 + ((pos + 1) * 2) + (if all_own then 1 else 0))
          ~mn
      else
        let level = if all_own then min (mn + 1) n else 0 in
        let written = if level >= n then 0 else l_written l in
        mk_local ~view ~level ~written ~phase:0 ~mn:0
    in
    set_local s p l'
  end

let initial_state inputs =
  Array.to_seqi inputs
  |> Seq.fold_left
       (fun s (p, input) ->
         if input < 1 || input > 3 then
           invalid_arg "Snapshot3_nd: inputs must be in 1..3";
         set_local s p
           (mk_local ~view:(1 lsl (input - 1)) ~level:0 ~written:0 ~phase:0
              ~mn:0))
       0

let outputs s =
  List.filter_map
    (fun p ->
      let l = get_local s p in
      if halted l then Some (p, l_view l) else None)
    [ 0; 1; 2 ]

let memory_mask s =
  r_view (get_reg s 0) lor r_view (get_reg s 1) lor r_view (get_reg s 2)

type stats = { states : int; transitions : int; max_depth : int }

type result =
  | No_witness of stats
  | Witness of { state : int; path : (int * int) list; stats : stats }
      (** path steps are [(processor, choice)] *)
  | Table_full of int

(* Same open-addressing colored table as Snapshot3. *)
module Table = Snapshot3.Table

(** DFS search for a state where [witness] holds, never expanding states
    where [prune] holds; all nondeterminism (scheduler and write order)
    explored. *)
let search ?(log2_capacity = 28) ?progress ~inputs ~prune ~witness ~wiring () =
  let sigmas =
    Array.init n (fun p ->
        Array.init m (fun i -> Anonmem.Wiring.phys wiring ~p i))
  in
  let table = Table.create ~log2_capacity in
  let st_stack = Vec.create () in
  (* meta = slot lsl 10 | (entered_pc + 1) lsl 5 | cursor, where a pc packs
     (p * 4 + choice) <= 11 and the cursor enumerates (p, choice) pairs *)
  let meta_stack = Vec.create () in
  let transitions = ref 0 and max_depth = ref 0 and depth = ref 0 in
  let stats () =
    {
      states = table.Table.count;
      transitions = !transitions;
      max_depth = !max_depth;
    }
  in
  let outcome = ref None in
  let path_of entered_pc =
    let rev = ref [] in
    Vec.iteri
      (fun _ meta ->
        let pc = ((meta lsr 5) land 31) - 1 in
        if pc >= 0 then rev := ((pc lsr 2), pc land 3) :: !rev)
      meta_stack;
    List.rev !rev @ (if entered_pc >= 0 then [ (entered_pc lsr 2, entered_pc land 3) ] else [])
  in
  let push state slot entered_pc =
    Table.insert_gray table state slot;
    (match progress with
    | Some f when table.Table.count land ((1 lsl 21) - 1) = 0 ->
        f table.Table.count
    | _ -> ());
    if witness state && !outcome = None then
      outcome := Some (Witness { state; path = path_of entered_pc; stats = stats () });
    ignore (Vec.push st_stack state);
    ignore (Vec.push meta_stack ((slot lsl 10) lor ((entered_pc + 1) lsl 5)));
    incr depth;
    if !depth > !max_depth then max_depth := !depth
  in
  let s0 = initial_state inputs in
  push s0 (Table.find_slot table s0) (-1);
  let running = ref true in
  let max_cursor = n * 4 in
  while !running && !outcome = None do
    let top = Vec.length st_stack - 1 in
    if top < 0 then running := false
    else begin
      let state = Vec.get st_stack top in
      let meta = Vec.get meta_stack top in
      let cursor = meta land 31 in
      if cursor >= max_cursor then begin
        Table.blacken table (meta lsr 10);
        Vec.truncate st_stack top;
        Vec.truncate meta_stack top;
        decr depth
      end
      else begin
        Vec.set meta_stack top (meta + 1);
        let pruned = cursor = 0 && prune state in
        if pruned then Vec.set meta_stack top (meta lor 31)
        else begin
          let p = cursor lsr 2 and c = cursor land 3 in
          if p < n && c < choices state p then begin
            incr transitions;
            let s' = step state p c sigmas.(p) in
            let slot = Table.find_slot table s' in
            if Table.color table slot = 0 then
              if Table.full table then begin
                outcome := Some (Table_full table.Table.count);
                running := false
              end
              else push s' slot ((p lsl 2) lor c)
          end
        end
      end
    end
  done;
  match !outcome with Some r -> r | None -> No_witness (stats ())

(** The Section-8 witness search under the faithful nondeterministic write
    order: some processor returns [target_mask] although the memory never
    contains exactly it. *)
let find_nonatomic ?log2_capacity ?progress ~inputs ~target_mask ~wirings () =
  let prune s =
    memory_mask s = target_mask
    || not
         (List.exists
            (fun p ->
              let v = l_view (get_local s p) in
              v land target_mask = v)
            [ 0; 1; 2 ])
  in
  let witness s =
    memory_mask s <> target_mask
    && List.exists (fun (_, o) -> o = target_mask) (outputs s)
  in
  let rec go = function
    | [] -> None
    | wiring :: rest -> (
        match
          search ?log2_capacity ?progress ~inputs ~prune ~witness ~wiring ()
        with
        | Witness { path; state; _ } -> Some (wiring, path, state)
        | No_witness _ | Table_full _ -> go rest)
  in
  go wirings
