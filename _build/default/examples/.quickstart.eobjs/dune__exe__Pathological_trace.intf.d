examples/pathological_trace.mli:
