test/test_stable_views.ml: Alcotest Algorithms Analysis Anonmem Array Fmt Gen Iset List QCheck QCheck_alcotest Repro_util Rng
