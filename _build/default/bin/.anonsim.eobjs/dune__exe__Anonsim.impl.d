bin/anonsim.ml: Algorithms Analysis Anonmem Arg Array Cmd Cmdliner Core Fmt List Modelcheck Printf Repro_util Runtime_shm String Term
