(** Wirings: the hidden per-processor register permutations of the
    fully-anonymous model.

    A wiring assigns to each processor [p] a permutation [σ_p] of the [M]
    registers; when the program of [p] addresses its private register index
    [i], the physical register [σ_p(i)] is accessed (Section 2 of the
    paper).  Processors never observe their own wiring. *)

open Repro_util

type t

val make : Permutation.t array -> t
(** One permutation per processor; all must have the same size [M].
    Raises [Invalid_argument] otherwise, or when the array is empty. *)

val identity : n:int -> m:int -> t
(** Every processor wired straight through — the non-anonymous-memory
    special case used by the named-memory baseline. *)

val random : Rng.t -> n:int -> m:int -> t

val of_lists : int list list -> t
(** 0-based images; convenience for tests and for the Figure-2 wiring. *)

val processors : t -> int
val registers : t -> int

val phys : t -> p:int -> int -> int
(** [phys w ~p i] is the physical register that processor [p]'s private
    index [i] denotes, i.e. [σ_p(i)]. *)

val local_of_phys : t -> p:int -> int -> int
(** Inverse direction: which private index of [p] denotes physical register
    [r]; this is the [σ_p⁻¹(r)] used by the paper when saying "[p] reads
    register [r]". *)

val perm : t -> p:int -> Permutation.t

val enumerate : n:int -> m:int -> fix_first:bool -> t list
(** All wirings for [n] processors and [m] registers.  With [~fix_first:true]
    processor 0's permutation is pinned to the identity: since the registers
    are anonymous, every execution is isomorphic to one in such a wiring
    (global register renaming), which shrinks the model checker's wiring
    space from [(m!)^n] to [(m!)^(n-1)] without losing behaviours. *)

val enumerate_classes : n:int -> m:int -> t list
(** One representative per class of {!enumerate}[ ~fix_first:true]
    wirings under relabelling {e all} [n] processors.  Pinning
    processor 0 already quotients by global register renaming; what
    remains is the choice of {e which} processor got pinned.  Permuting
    the processors by [pi] and renormalizing (composing every wiring
    with [sigma_{pi 0}^{-1}], another global register renaming) maps the
    normalized tuple [(id, w_1, …)] to [(id, w_{pi 0}^{-1} ∘ w_k, …)];
    the two wired systems are isomorphic {e provided the property being
    checked does not distinguish processors} — it may relabel their
    inputs/identities along [pi].  That holds for all the portfolio
    verdicts (mutual exclusion, name distinctness, leader uniqueness,
    deadlock-freedom are counting properties, invariant under renaming
    ids), so clean-cell sweeps over these classes are sound and up to
    [n!] times smaller.  It does {e not} hold for properties that pin a
    specific processor's view (e.g. the Figure-2 replay), which must
    keep sweeping {!enumerate}.  The representative kept is the
    lexicographic minimum of its orbit (pivot-0 entries sorted and no
    other pivot yields a smaller key), so the result is a sublist of
    [enumerate ~fix_first:true] and any violation it finds is a concrete
    wiring of the full space. *)

val automorphisms :
  t -> classes:int array -> (Permutation.t * Permutation.t) list
(** The symmetry group of a wired system whose processors are partitioned
    into interchangeability classes (same class = same program and same
    input, which full anonymity makes indistinguishable): all pairs
    [(pi, rho)] of a processor permutation [pi] preserving [classes] and a
    register permutation [rho] such that [perm (pi p) = rho ∘ perm p] for
    every [p].  Relabelling processors by [pi] {e and} physical registers by
    [rho] is then an automorphism of the fixed-wiring transition system:
    local states carry over verbatim (private indices are reinterpreted
    through the moved permutations) and every read/write lands on the
    correspondingly relabelled register.  The list always contains the
    identity pair and is closed under composition (it is a subgroup of
    [S_n × S_m]), which is what makes orbit-minimum canonicalization sound;
    see {!Modelcheck.Canon}.  Raises [Invalid_argument] if [classes] does
    not have one entry per processor. *)

val equal : t -> t -> bool
val pp : t Fmt.t
