examples/quickstart.ml: Anonmem Array Core Fmt List Printf Repro_util String
