open Repro_util

(* Every scheduler carries two views of the same decision procedure: the
   list-based [pick] (the original interface, kept as the specification
   and the fallback for protocols without a flat machine) and an optional
   [mask_pick] over enabled-set bitmasks — the int-machine hot path: no
   list construction, no option allocation ([-1] means "no pick").  Both
   closures share their mutable state (cursor, rng, script position), so
   a run may switch between the two mid-flight (the Fallback shim does)
   without perturbing the decision stream.  A [mask_pick] must choose
   exactly the processor its list twin would choose on the sorted list of
   the mask's bits, drawing from the rng exactly as often — the byte-
   identical-schedule contract the differential suite pins down. *)
type t = {
  name : string;
  pick : time:int -> enabled:int list -> int option;
  mask_pick : (time:int -> mask:int -> int) option;
}

let name t = t.name
let pick t ~time ~enabled = t.pick ~time ~enabled
let mask_pick t = t.mask_pick

let round_robin () =
  let cursor = ref 0 in
  let pick ~time:_ ~enabled =
    match enabled with
    | [] -> None
    | _ ->
        (* Step the first enabled processor at or after the cursor,
           wrapping; then advance past it.  This is fair: every enabled
           processor is chosen at least once every full turn of the
           cursor. *)
        let after = List.filter (fun p -> p >= !cursor) enabled in
        let chosen = match after with p :: _ -> p | [] -> List.hd enabled in
        cursor := chosen + 1;
        Some chosen
  in
  let mask_pick ~time:_ ~mask =
    let after =
      if !cursor >= Bits.max_width then 0 else mask land (-1 lsl !cursor)
    in
    let chosen = Bits.ctz (if after <> 0 then after else mask) in
    cursor := chosen + 1;
    chosen
  in
  { name = "round-robin"; pick; mask_pick = Some mask_pick }

let random rng =
  let pick ~time:_ ~enabled =
    match enabled with [] -> None | l -> Some (Rng.pick rng l)
  in
  (* Rng.pick draws once via [Rng.int (length l)] and takes the k-th
     element of the sorted list; the k-th set bit is the same pid. *)
  let mask_pick ~time:_ ~mask =
    Bits.nth_set mask (Rng.int rng (Bits.popcount mask))
  in
  { name = "random"; pick; mask_pick = Some mask_pick }

let solo p =
  let pick ~time:_ ~enabled = if List.mem p enabled then Some p else None in
  let mask_pick ~time:_ ~mask =
    if p < Bits.max_width && mask land (1 lsl p) <> 0 then p else -1
  in
  { name = Printf.sprintf "solo(%d)" p; pick; mask_pick = Some mask_pick }

let script ?(cycle = false) pids =
  let len = List.length pids in
  let remaining = ref pids in
  (* The list and mask pickers share [remaining]; [member] abstracts the
     only difference (how enabledness is tested). *)
  let rec go member scanned =
    if scanned > len then -1
    else
      match !remaining with
      | [] ->
          if cycle && pids <> [] then begin
            remaining := pids;
            go member scanned
          end
          else -1
      | p :: rest ->
          remaining := rest;
          if member p then p else go member (scanned + 1)
  in
  let pick ~time:_ ~enabled =
    match go (fun p -> List.mem p enabled) 0 with -1 -> None | p -> Some p
  in
  let mask_pick ~time:_ ~mask =
    go (fun p -> p < Bits.max_width && mask land (1 lsl p) <> 0) 0
  in
  {
    name = (if cycle then "script(cyclic)" else "script");
    pick;
    mask_pick = Some mask_pick;
  }

let script_then_cycle ~prefix ~cycle =
  let head = script prefix in
  let tail = script ~cycle:true cycle in
  let in_prefix = ref true in
  let pick ~time ~enabled =
    if !in_prefix then
      match head.pick ~time ~enabled with
      | Some p -> Some p
      | None ->
          in_prefix := false;
          tail.pick ~time ~enabled
    else tail.pick ~time ~enabled
  in
  let mask_pick =
    match (head.mask_pick, tail.mask_pick) with
    | Some hm, Some tm ->
        Some
          (fun ~time ~mask ->
            if !in_prefix then
              match hm ~time ~mask with
              | -1 ->
                  in_prefix := false;
                  tm ~time ~mask
              | p -> p
            else tm ~time ~mask)
    | _ -> None
  in
  { name = "script-then-cycle"; pick; mask_pick }

let recorded t =
  let picks = ref [] in
  let pick ~time ~enabled =
    match t.pick ~time ~enabled with
    | Some p ->
        picks := p :: !picks;
        Some p
    | None -> None
  in
  let mask_pick =
    Option.map
      (fun mp ~time ~mask ->
        match mp ~time ~mask with
        | -1 -> -1
        | p ->
            picks := p :: !picks;
            p)
      t.mask_pick
  in
  ( { name = t.name ^ "+recorded"; pick; mask_pick },
    fun () -> List.rev !picks )

let crash ~crash_at t =
  let alive_at time p =
    match if p < Array.length crash_at then crash_at.(p) else None with
    | Some c -> time < c
    | None -> true
  in
  (* No crash can have fired before the earliest crash time, so until then
     the filter below would rebuild [enabled] unchanged on every pick. *)
  let first_crash =
    Array.fold_left
      (fun acc c -> match c with Some c -> min acc c | None -> acc)
      max_int crash_at
  in
  let pick ~time ~enabled =
    if time < first_crash then t.pick ~time ~enabled
    else
      match List.filter (alive_at time) enabled with
      | [] -> None
      | alive -> t.pick ~time ~enabled:alive
  in
  let mask_pick =
    Option.map
      (fun mp ->
        (* The dead mask only ever grows, and time only moves forward:
           advance through the crash times sorted once, clearing bits. *)
        let events =
          Array.to_list crash_at
          |> List.mapi (fun p c -> Option.map (fun c -> (c, p)) c)
          |> List.filter_map Fun.id |> List.sort compare |> Array.of_list
        in
        let dead = ref 0 and idx = ref 0 in
        fun ~time ~mask ->
          if time < first_crash then mp ~time ~mask
          else begin
            while
              !idx < Array.length events && fst events.(!idx) <= time
            do
              let p = snd events.(!idx) in
              if p < Bits.max_width then dead := !dead lor (1 lsl p);
              incr idx
            done;
            let alive = mask land lnot !dead in
            if alive = 0 then -1 else mp ~time ~mask:alive
          end)
      t.mask_pick
  in
  { name = t.name ^ "+crashes"; pick; mask_pick }

let crash_faults ~plan t = crash ~crash_at:(Fault.crash_stops plan) t

let fn ~name pick = { name; pick; mask_pick = None }

let fn_mask ~name ~pick ~mask_pick = { name; pick; mask_pick = Some mask_pick }
