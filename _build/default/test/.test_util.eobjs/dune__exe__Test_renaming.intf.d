test/test_renaming.mli:
