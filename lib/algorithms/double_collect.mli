(** Baseline: the natural-but-wrong "double collect" termination rule.

    Write the view, scan, and terminate after two consecutive scans that
    read exactly the current view in every register.  Section 4 of the
    paper shows why no such bounded rule can be a sound snapshot detector
    in the fully-anonymous model: the Figure-2 adversary feeds two
    processors the incomparable sets [{1,2}] and [{1,3}] in every scan,
    forever.  The test-suite exhibits the attack; the benchmarks record
    how much cheaper this unsound rule is than the Figure-3 levels — the
    price of correctness.

    Implements {!Anonmem.Protocol.S}. *)

open Repro_util

type cfg = { n : int; m : int }

val cfg : n:int -> m:int -> cfg
val standard : n:int -> cfg

type value = Iset.t
type input = int
type output = Iset.t
type scan = { pos : int; all_own : bool }
type phase = Writing | Scanning of scan

type local = {
  view : Iset.t;
  next_write : int;
  streak : int;  (** consecutive scans that read exactly [view] everywhere *)
  phase : phase;
}

val name : string
val processors : cfg -> int
val registers : cfg -> int
val register_init : cfg -> value
val init : cfg -> input -> local
val terminated : local -> bool
val halted : cfg -> local -> bool
val next : cfg -> local -> value Anonmem.Protocol.operation option
val apply_read : cfg -> local -> reg:int -> value -> local
val apply_write : cfg -> local -> local
val output : cfg -> local -> output option

val flat :
  cfg ->
  phys:int array ->
  inputs:input array ->
  registers:value array ->
  locals:local array ->
  value Anonmem.Protocol.flat option
val view_of_local : local -> Iset.t
val pp_value : cfg -> value Fmt.t
val pp_local : cfg -> local Fmt.t
val pp_output : cfg -> output Fmt.t
