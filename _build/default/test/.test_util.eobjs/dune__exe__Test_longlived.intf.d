test/test_longlived.mli:
