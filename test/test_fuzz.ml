(* Tests of the schedule-fuzzing subsystem (lib/fuzz): seeded
   determinism of case generation and execution, the planted
   double-collect comparability bug (found, shrunk to a short script,
   and reproducible by replay), and the ddmin shrinker in isolation on
   synthetic predicates. *)

module Gen = Fuzzing.Gen
module Shrink = Fuzzing.Shrink
module Harness = Fuzzing.Harness
module H_snap = Harness.Make (Fuzzing.Targets.Snapshot)
module H_dc = Harness.Make (Fuzzing.Targets.Double_collect)

let m_eq_n ~n = (n, n)

(* --- Seeded determinism --------------------------------------------------- *)

let test_case_determinism () =
  for seed = 0 to 49 do
    let mk () =
      Gen.case ~seed ~n_range:(2, 5) ~m_range:m_eq_n ~max_steps:1_000 ()
    in
    Alcotest.(check bool) "same seed, same case" true (mk () = mk ())
  done

let test_run_determinism () =
  (* Same seed => the adversary replays identically: the executed pid
     sequence, final outputs and per-processor step counts all agree.
     50 seeds cover all four adversary shapes. *)
  for seed = 0 to 49 do
    let run () =
      H_snap.run_case
        (Gen.case ~seed ~n_range:(2, 5) ~m_range:m_eq_n ~max_steps:500 ())
    in
    let r1 = run () and r2 = run () in
    Alcotest.(check (list int))
      "same executed schedule"
      (H_snap.Tr.pids r1.H_snap.trace)
      (H_snap.Tr.pids r2.H_snap.trace);
    Alcotest.(check (array int))
      "same step counts" r1.H_snap.step_counts r2.H_snap.step_counts;
    Alcotest.(check bool) "same outputs" true (r1.H_snap.outputs = r2.H_snap.outputs)
  done

let test_campaign_determinism () =
  let run () = H_dc.campaign ~seed:0 ~iterations:100 () in
  let r1 = run () and r2 = run () in
  Alcotest.(check bool)
    "same campaign, same counterexample" true
    (r1.Harness.counterexample = r2.Harness.counterexample);
  Alcotest.(check int) "same total steps" r1.Harness.total_steps
    r2.Harness.total_steps

(* Same seed => byte-identical deterministic report, whatever the domain
   count.  The sharding protocol guarantees the smallest failing
   iteration wins and every case seed derives from (campaign seed,
   iteration) alone, so the timing-free rendering — iterations, total
   steps, counterexample, shrunk instance — cannot depend on how many
   workers ran the campaign. *)
let test_parallel_campaign_clean () =
  let summary domains =
    H_snap.deterministic_summary ~key:"snapshot"
      (H_snap.campaign ~domains ~seed:7 ~iterations:200 ())
  in
  let s1 = summary 1 in
  Alcotest.(check string) "2 domains = 1 domain" s1 (summary 2);
  Alcotest.(check string) "4 domains = 1 domain" s1 (summary 4)

let test_parallel_campaign_planted_bug () =
  let report domains = H_dc.campaign ~domains ~seed:0 ~iterations:200 () in
  let r1 = report 1 and r2 = report 2 and r4 = report 4 in
  (match r1.Harness.counterexample with
  | None -> Alcotest.fail "planted bug not found by the 1-domain campaign"
  | Some _ -> ());
  let s1 = H_dc.deterministic_summary ~key:"double_collect" r1 in
  Alcotest.(check string) "2 domains = 1 domain"
    s1 (H_dc.deterministic_summary ~key:"double_collect" r2);
  Alcotest.(check string) "4 domains = 1 domain"
    s1 (H_dc.deterministic_summary ~key:"double_collect" r4);
  (* Structural equality of the whole counterexample record: same failing
     case, same shrunk instance, same failure, not merely the same
     rendering. *)
  Alcotest.(check bool) "identical counterexample (2 domains)" true
    (r1.Harness.counterexample = r2.Harness.counterexample);
  Alcotest.(check bool) "identical counterexample (4 domains)" true
    (r1.Harness.counterexample = r4.Harness.counterexample);
  Alcotest.(check int) "iterations = failing index + 1"
    (match r1.Harness.found_after with Some (k, _) -> k + 1 | None -> -1)
    r1.Harness.iterations

(* The zero-observer fast path executes the same transitions as the
   observed path: identical stop reason, step totals, per-processor step
   counts, outputs — and therefore identical verdicts.  Only the trace
   differs (empty on the fast path). *)
let test_fast_vs_traced_differential () =
  for seed = 0 to 39 do
    let case = Gen.case ~seed ~n_range:(2, 5) ~m_range:m_eq_n ~max_steps:500 () in
    let traced = H_snap.run_case ~record:true case in
    let fast = H_snap.run_case ~record:false case in
    Alcotest.(check int) "same steps" traced.H_snap.steps fast.H_snap.steps;
    Alcotest.(check (array int))
      "same step counts" traced.H_snap.step_counts fast.H_snap.step_counts;
    Alcotest.(check bool) "same stop reason" true
      (traced.H_snap.stop = fast.H_snap.stop);
    Alcotest.(check bool) "same outputs" true
      (traced.H_snap.outputs = fast.H_snap.outputs);
    Alcotest.(check (list int))
      "trace length = steps (traced) / empty (fast)"
      (List.init traced.H_snap.steps (fun _ -> 0) |> List.map (fun _ -> 0))
      (List.map (fun _ -> 0) (H_snap.Tr.pids traced.H_snap.trace));
    Alcotest.(check (list int)) "fast trace empty" []
      (H_snap.Tr.pids fast.H_snap.trace);
    let v r = H_snap.verdict ~n:case.Gen.n ~m:case.Gen.m ~inputs:case.Gen.inputs r in
    Alcotest.(check bool) "same verdict" true
      (Result.is_ok (v traced) = Result.is_ok (v fast))
  done

(* --- The planted bug ------------------------------------------------------ *)

let test_double_collect_bug_found_and_shrunk () =
  let report = H_dc.campaign ~seed:0 ~iterations:200 () in
  match report.Harness.counterexample with
  | None -> Alcotest.fail "double-collect comparability bug not found"
  | Some cex ->
      let inst = cex.Harness.instance in
      let len = List.length inst.Harness.script in
      Alcotest.(check bool)
        (Printf.sprintf "shrunk script has <= 15 steps (got %d)" len)
        true (len <= 15);
      Alcotest.(check bool)
        "violated property is containment" true
        (cex.Harness.failure.Tasks.Task_failure.property
        = Tasks.Task_failure.Containment);
      (* The shrunk instance is standalone: replaying its script from
         scratch reproduces the failure. *)
      (match H_dc.verdict_of_instance inst with
      | Error _ -> ()
      | Ok () -> Alcotest.fail "shrunk instance does not reproduce the failure");
      (* 1-minimality: dropping any single step of the script loses the
         violation. *)
      List.iteri
        (fun i _ ->
          let script' =
            List.filteri (fun j _ -> j <> i) inst.Harness.script
          in
          match
            H_dc.verdict_of_instance { inst with Harness.script = script' }
          with
          | Ok () -> ()
          | Error _ ->
              Alcotest.fail
                (Printf.sprintf "script not 1-minimal: step %d removable" i))
        inst.Harness.script

let test_replay_command_shape () =
  let report = H_dc.campaign ~seed:0 ~iterations:200 () in
  match report.Harness.counterexample with
  | None -> Alcotest.fail "no counterexample"
  | Some cex ->
      let cmd = Harness.replay_command ~key:"double_collect" cex.Harness.instance in
      let has_sub sub =
        let n = String.length sub and m = String.length cmd in
        let rec at i = i + n <= m && (String.sub cmd i n = sub || at (i + 1)) in
        at 0
      in
      List.iter
        (fun sub ->
          Alcotest.(check bool)
            (Printf.sprintf "command mentions %S" sub)
            true (has_sub sub))
        [ "replay"; "--protocol double_collect"; "--inputs"; "--wiring"; "--script" ]

(* The sound targets stay clean: no false positives from the oracles or
   the wait-freedom budget over a short bounded campaign. *)
let clean_campaign (module T : Fuzzing.Target.S) key () =
  let module H = Harness.Make (T) in
  let report = H.campaign ~seed:1 ~iterations:150 () in
  match report.Harness.counterexample with
  | None -> ()
  | Some cex ->
      Alcotest.fail
        (Fmt.str "false positive on %s: %a" key Tasks.Task_failure.pp
           cex.Harness.failure)

(* --- The shrinker on synthetic predicates --------------------------------- *)

let test_ddmin_pair () =
  let still_failing l = List.mem 3 l && List.mem 7 l in
  Alcotest.(check (list int))
    "minimal pair survives" [ 3; 7 ]
    (Shrink.list ~still_failing (List.init 20 Fun.id))

let test_ddmin_singleton () =
  let still_failing l = List.mem 11 l in
  Alcotest.(check (list int))
    "single culprit" [ 11 ]
    (Shrink.list ~still_failing (List.init 30 Fun.id))

let test_ddmin_keeps_order () =
  (* Predicate needs a 5 somewhere before a 9: shrinking must preserve
     relative order of the kept elements. *)
  let rec ordered = function
    | [] -> false
    | 5 :: rest -> List.mem 9 rest
    | _ :: rest -> ordered rest
  in
  Alcotest.(check (list int))
    "ordered witness" [ 5; 9 ]
    (Shrink.list ~still_failing:ordered [ 1; 9; 5; 2; 9; 4 ])

let test_ddmin_everything_needed () =
  let input = [ 4; 2; 6 ] in
  let still_failing l = l = input in
  Alcotest.(check (list int))
    "irreducible input unchanged" input
    (Shrink.list ~still_failing input)

let test_first_accepted () =
  let still_failing x = x >= 2 in
  Alcotest.(check int) "first failing candidate" 2
    (Shrink.first_accepted ~still_failing [ 1; 2; 3 ] 99);
  Alcotest.(check int) "fallback when none fail" 99
    (Shrink.first_accepted ~still_failing [ 0; 1 ] 99)

let prop_ddmin_sound_and_1minimal =
  QCheck.Test.make ~name:"ddmin result still fails and is 1-minimal"
    ~count:300
    QCheck.(list_of_size (QCheck.Gen.int_range 0 40) (int_bound 9))
    (fun input ->
      (* A monotone-ish predicate: at least three even elements. *)
      let still_failing l =
        List.length (List.filter (fun x -> x mod 2 = 0) l) >= 3
      in
      QCheck.assume (still_failing input);
      let r = Shrink.list ~still_failing input in
      still_failing r
      && List.for_all
           (fun i -> not (still_failing (List.filteri (fun j _ -> j <> i) r)))
           (List.init (List.length r) Fun.id))

let prop_ddmin_is_subsequence =
  QCheck.Test.make ~name:"ddmin result is a subsequence of the input"
    ~count:300
    QCheck.(list_of_size (QCheck.Gen.int_range 0 40) (int_bound 9))
    (fun input ->
      let still_failing l = List.exists (fun x -> x >= 5) l in
      QCheck.assume (still_failing input);
      let r = Shrink.list ~still_failing input in
      let rec subseq xs ys =
        match (xs, ys) with
        | [], _ -> true
        | _, [] -> false
        | x :: xs', y :: ys' ->
            if x = y then subseq xs' ys' else subseq xs ys'
      in
      subseq r input)

let () =
  Alcotest.run "fuzz"
    [
      ( "determinism",
        [
          Alcotest.test_case "case generation" `Quick test_case_determinism;
          Alcotest.test_case "execution" `Quick test_run_determinism;
          Alcotest.test_case "campaign" `Quick test_campaign_determinism;
          Alcotest.test_case "parallel campaign, clean target" `Quick
            test_parallel_campaign_clean;
          Alcotest.test_case "parallel campaign, planted bug" `Quick
            test_parallel_campaign_planted_bug;
          Alcotest.test_case "fast path vs traced" `Quick
            test_fast_vs_traced_differential;
        ] );
      ( "planted-bug",
        [
          Alcotest.test_case "double collect found and shrunk" `Quick
            test_double_collect_bug_found_and_shrunk;
          Alcotest.test_case "replay command" `Quick test_replay_command_shape;
          Alcotest.test_case "snapshot stays clean" `Quick
            (clean_campaign (module Fuzzing.Targets.Snapshot) "snapshot");
          Alcotest.test_case "renaming stays clean" `Quick
            (clean_campaign (module Fuzzing.Targets.Renaming) "renaming");
          Alcotest.test_case "consensus stays clean" `Quick
            (clean_campaign (module Fuzzing.Targets.Consensus) "consensus");
        ] );
      ( "shrinker",
        [
          Alcotest.test_case "pair" `Quick test_ddmin_pair;
          Alcotest.test_case "singleton" `Quick test_ddmin_singleton;
          Alcotest.test_case "order preserved" `Quick test_ddmin_keeps_order;
          Alcotest.test_case "irreducible" `Quick test_ddmin_everything_needed;
          Alcotest.test_case "first_accepted" `Quick test_first_accepted;
          QCheck_alcotest.to_alcotest prop_ddmin_sound_and_1minimal;
          QCheck_alcotest.to_alcotest prop_ddmin_is_subsequence;
        ] );
    ]
