lib/util/iset.ml: Fmt Int Sorted_set Sys
