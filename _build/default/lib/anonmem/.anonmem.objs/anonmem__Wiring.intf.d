lib/anonmem/wiring.mli: Fmt Permutation Repro_util Rng
