lib/tasks/consensus_task.ml: Fmt Int Iset List Outcome Repro_util
