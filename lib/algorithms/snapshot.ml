(** Figure 3: the wait-free solution to the snapshot task in the
    fully-anonymous model.

    Registers hold [(view, level)] records.  A processor raises its level
    only across scans in which it read exactly its own view in every
    register — and then only to one more than the minimum level it read —
    and resets it to 0 otherwise.  It terminates, outputting its view as
    snapshot, upon completing a scan with level [N].

    The algorithm group-solves the snapshot task (Definition 3.4) and in
    fact guarantees the stronger property that {e all} outputs are related
    by containment (Section 5.3.2), which {!Tasks.Snapshot_task} checks. *)

open Repro_util
module Core = Snapshot_core.Make (Iset)

type cfg = Core.cfg = { n : int; m : int }

let cfg = Core.cfg

let standard ~n = Core.cfg ~n ~m:n
(** The paper's instantiation: as many registers as processors. *)

type value = Core.value = { view : Iset.t; level : int }
type input = int
type output = Iset.t
type local = Core.local

let name = "snapshot(fig3)"
let processors (c : cfg) = c.n
let registers (c : cfg) = c.m
let register_init = Core.register_init
let init = Core.init

let terminated c (l : local) = Core.reached_level c l
let halted = terminated
let next c l = if terminated c l then None else Some (Core.next c l)
let apply_read = Core.apply_read
let apply_write = Core.apply_write
let output c (l : local) = if terminated c l then Some l.Core.view else None
let level_of_local (l : local) = l.Core.level
let view_of_local (l : local) = l.Core.view
let pp_value _ = Core.pp_velt Fmt.int
let pp_local _ = Core.pp_local Fmt.int
let pp_output _ = Iset.pp_set
