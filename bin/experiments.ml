(* Regenerates every artifact of the paper and prints a paper-vs-measured
   report; EXPERIMENTS.md records one run of this program.

   Usage: dune exec bin/experiments.exe [-- --full]

   --full additionally runs the n=3 exhaustive model check over all 36
   wirings (the paper's TLC claim), which explores hundreds of millions of
   states and takes a while; the default run checks n=2 exhaustively and
   n=3 on a subset of wirings. *)

let full = Array.exists (( = ) "--full") Sys.argv

let header title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let iset_str = Repro_util.Iset.to_string

(* F2: Figure 2 *)

let figure2 () =
  header "F2: Figure 2 - the pathological execution";
  let rows = Analysis.Figure2.generate () in
  print_string (Repro_util.Text_table.render (Analysis.Figure2.to_table rows));
  let matches =
    List.for_all2
      (fun (g : Analysis.Figure2.row) (e : Analysis.Figure2.row) ->
        List.for_all2 Repro_util.Iset.equal g.registers e.registers
        && List.for_all2 Repro_util.Iset.equal g.views e.views)
      rows Analysis.Figure2.expected_rows
  in
  Printf.printf "matches the paper's table row for row: %b\n" matches;
  (* cycle check: actions 14-22 repeat 5-13 *)
  let rows22 = Analysis.Figure2.generate ~actions:22 () in
  let nth k = List.nth rows22 k in
  let cycle_ok =
    List.for_all
      (fun k ->
        let a : Analysis.Figure2.row = nth k and b = nth (k + 9) in
        List.for_all2 Repro_util.Iset.equal a.registers b.registers
        && List.for_all2 Repro_util.Iset.equal a.views b.views)
      [ 4; 5; 6; 7; 8; 9; 10; 11; 12 ]
  in
  Printf.printf "steps 5-13 repeat verbatim as 14-22: %b\n" cycle_ok;
  let module E = Analysis.Figure2.Write_scan_ext in
  let cfg = Algorithms.Write_scan.cfg ~n:5 ~m:3 in
  let r = E.run ~cfg ~cycles:50 () in
  let summarize q =
    let s = E.scan_summary r.E.extra_events.(q) in
    let v = Algorithms.Write_scan.view_of_local r.E.state.E.Sys.locals.(q) in
    Printf.printf
      "  %s: view %s, %d scans, %d consecutive clean scans at the end\n"
      (if q = 3 then "p " else "p'")
      (iset_str v) s.E.total_scans s.E.final_clean_streak
  in
  print_endline "extension (p, p' with input 1, fed incomparable sets forever):";
  summarize 3;
  summarize 4;
  let module S = Analysis.Figure2.Snapshot_ext in
  let cfg = Algorithms.Snapshot.cfg ~n:5 ~m:3 in
  let r = S.run ~cfg ~cycles:50 () in
  print_endline "same adversary vs the Figure-3 snapshot algorithm:";
  Array.iteri
    (fun q l ->
      Printf.printf "  p%d: level %d%s\n" (q + 1)
        (Algorithms.Snapshot.level_of_local l)
        (match Algorithms.Snapshot.output cfg l with
        | Some o -> " TERMINATED with " ^ iset_str o
        | None -> ""))
    r.S.state.S.Sys.locals

(* T48: stable views *)

let theorem48 () =
  header "T48: Theorem 4.8 - stable views form a DAG with a unique source";
  let trials = 200 in
  let ok = ref 0 and max_views = ref 0 in
  for seed = 0 to trials - 1 do
    let n = 2 + (seed mod 7) in
    let m = 2 + (seed mod 5) in
    let inputs = Array.init n (fun i -> 1 + (i mod max 2 (n - 1))) in
    match Core.stable_view_analysis ~seed ~n ~m ~inputs () with
    | Ok r ->
        let g = r.Analysis.Stable_views.graph in
        if Analysis.View_graph.satisfies_theorem_4_8 g then incr ok;
        max_views := max !max_views (Analysis.View_graph.vertex_count g)
    | Error _ -> ()
  done;
  Printf.printf
    "%d/%d random configurations (n in 2..8, m in 2..6, random wirings and \
     fair schedules) satisfied the theorem; largest stable-view graph had %d \
     vertices\n"
    !ok trials !max_views;
  (* The Figure-2 schedule realizes a non-trivial stable-view graph: three
     vertices, unique source {1}. *)
  let cfg = Algorithms.Write_scan.cfg ~n:3 ~m:3 in
  let r =
    Analysis.Stable_views.run ~window:72 ~cfg
      ~wiring:(Analysis.Figure2.base_wiring ())
      ~inputs:[| 1; 2; 3 |] ~live:[ 0; 1; 2 ]
      ~sched:
        (Anonmem.Scheduler.script_then_cycle
           ~prefix:Analysis.Figure2.step_prefix ~cycle:Analysis.Figure2.step_cycle)
      ()
  in
  match r with
  | Ok r ->
      let g = r.Analysis.Stable_views.graph in
      Printf.printf
        "figure-2 schedule: stable views %s; DAG with unique source: %b \
         (source %s)\n"
        (String.concat " " (List.map iset_str (Analysis.View_graph.views g)))
        (Analysis.View_graph.satisfies_theorem_4_8 g)
        (match Analysis.View_graph.unique_source g with
        | Some v -> iset_str v
        | None -> "-")
  | Error e -> Printf.printf "figure-2 schedule analysis failed: %s\n" e

(* F3: snapshot runs *)

let fig3 () =
  header "F3: Figure 3 - wait-free snapshot (N registers, N processors)";
  print_endline "steps to completion, random fair scheduler, 21 seeds per n:";
  print_string
    (Analysis.Sweep.to_table ~param_name:"n"
       (Analysis.Sweep.snapshot_steps ~ns:[ 2; 3; 4; 5; 6; 8; 10; 12 ] ()));
  print_endline "\nsolo executions (obstruction-free fast path):";
  print_string
    (Analysis.Sweep.to_table ~param_name:"n"
       (Analysis.Sweep.snapshot_steps ~sched:Analysis.Sweep.Solo
          ~ns:[ 2; 4; 8; 12 ] ()))

(* C1: exhaustive model check *)

let claim_c1 () =
  header "C1: model-checking the snapshot algorithm (TLC claim)";
  (match Core.verify_snapshot_model ~n:2 () with
  | Ok s ->
      Printf.printf
        "n=2: VERIFIED over %d wirings; %d states, %d transitions, %d \
         terminal states; wait-free: %b\n"
        s.Modelcheck.Explorer.wirings_checked s.Modelcheck.Explorer.total_states
        s.Modelcheck.Explorer.total_transitions s.Modelcheck.Explorer.terminal_states
        s.Modelcheck.Explorer.all_wait_free
  | Error e -> Printf.printf "n=2 FAILED: %s\n" e);
  (* group inputs at n=2: both processors in one group *)
  (match Core.verify_snapshot_model ~n:2 ~inputs:(Some [| 1; 1 |]) () with
  | Ok s ->
      Printf.printf "n=2 (one group, inputs 1,1): VERIFIED; %d states\n"
        s.Modelcheck.Explorer.total_states
  | Error e -> Printf.printf "n=2 groups FAILED: %s\n" e);
  (* n=3 uses the bit-packed specialized checker (Modelcheck.Snapshot3):
     a single wiring's space is ~10^8 states.  First cross-validate its
     packed semantics against the reference implementation. *)
  let compared = Modelcheck.Snapshot3.selfcheck ~runs:50 () in
  Printf.printf
    "n=3 packed checker cross-validated against the reference semantics on \
     %d random steps\n"
    compared;
  let wirings = Anonmem.Wiring.enumerate ~n:3 ~m:3 ~fix_first:true in
  let wirings =
    if full then wirings
    else
      (* default: one maximally-anonymous rotation wiring (~10^8 states,
         a few minutes); --full sweeps all 36 *)
      [ Anonmem.Wiring.of_lists [ [ 0; 1; 2 ]; [ 1; 2; 0 ]; [ 2; 0; 1 ] ] ]
  in
  Printf.printf "n=3: checking %d wiring(s)%s\n%!" (List.length wirings)
    (if full then " (full sweep)" else " (pass --full for all 36)");
  List.iter
    (fun wiring ->
      let t0 = Unix.gettimeofday () in
      match Modelcheck.Snapshot3.check ~wiring ~inputs:[| 1; 2; 3 |] () with
      | Modelcheck.Snapshot3.Verified s ->
          Printf.printf
            "  wiring %s: VERIFIED (safety + wait-freedom); %d states, %d \
             transitions, %d terminal states, DFS depth %d (%.0fs)\n%!"
            (Fmt.str "%a" Anonmem.Wiring.pp wiring)
            s.Modelcheck.Snapshot3.states s.Modelcheck.Snapshot3.transitions
            s.Modelcheck.Snapshot3.terminals s.Modelcheck.Snapshot3.max_depth
            (Unix.gettimeofday () -. t0)
      | Modelcheck.Snapshot3.Cycle { processors; _ } ->
          Printf.printf "  wiring %s: WAIT-FREEDOM VIOLATED (processors %s)\n"
            (Fmt.str "%a" Anonmem.Wiring.pp wiring)
            (String.concat "," (List.map string_of_int processors))
      | Modelcheck.Snapshot3.Invariant_violation { path; _ } ->
          Printf.printf "  wiring %s: SAFETY VIOLATED (trace length %d)\n"
            (Fmt.str "%a" Anonmem.Wiring.pp wiring)
            (List.length path)
      | Modelcheck.Snapshot3.Table_full k ->
          Printf.printf "  wiring %s: table full at %d states\n"
            (Fmt.str "%a" Anonmem.Wiring.pp wiring)
            k)
    wirings

(* F5-MC: bounded model checking of consensus safety (our extension) *)

let consensus_mc () =
  header "F5-MC: bounded model checking of consensus agreement (extension)";
  List.iter
    (fun (inputs, max_ts) ->
      match Core.verify_consensus_bounded ~n:2 ~inputs:(Some inputs) ~max_ts () with
      | Ok states ->
          Printf.printf
            "  n=2 inputs (%d,%d) timestamps<=%d: agreement+validity hold \
             over all wirings/interleavings; %d states\n"
            inputs.(0) inputs.(1) max_ts states
      | Error e -> Printf.printf "  FAILED: %s\n" e)
    [ ([| 1; 2 |], 4); ([| 1; 2 |], 5); ([| 1; 1 |], 5) ];
  print_endline
    "  note: with the naive reading of the Figure-5 rule (a processor whose\n\
    \  snapshot shows no rival decides immediately) this check fails with a\n\
    \  ~60-step covering counterexample; the implemented rule counts an\n\
    \  absent rival as timestamp 0, as in Chandra's racing formulation."

(* C2: non-atomicity witness *)

let claim_c2 () =
  header "C2: the snapshot task solution is not an atomic memory snapshot";
  (match Core.find_nonatomic_execution ~n:3 ~attempts:20_000 () with
  | Some w ->
      Printf.printf
        "random-search witness (seed %d, %d steps): processor %d returned %s; \
         memory content sets over the whole execution: %s\n"
        w.Core.Snapshot_witness.witness_run.Core.Snapshot_witness.seed
        w.Core.Snapshot_witness.witness_run.Core.Snapshot_witness.steps
        (w.Core.Snapshot_witness.culprit + 1)
        (iset_str w.Core.Snapshot_witness.culprit_output)
        (String.concat " "
           (List.map iset_str w.Core.Snapshot_witness.memory_sets_seen))
  | None ->
      print_endline
        "no witness in 20k random executions (uniform sampling misses the \
         covering patterns; the exhaustive search below settles it)");
  if full then begin
    match Core.find_nonatomic_packed () with
    | Some (inputs, target, w) ->
        Printf.printf
          "exhaustive witness: with inputs (%d,%d,%d) processor %d returns \
           %s although the memory never contains exactly it\n"
          inputs.(0) inputs.(1) inputs.(2)
          (w.Modelcheck.Snapshot3.culprit + 1)
          (iset_str target);
        Printf.printf "  wiring %s, witness execution of %d steps\n"
          (Fmt.str "%a" Anonmem.Wiring.pp w.Modelcheck.Snapshot3.wiring)
          (List.length w.Modelcheck.Snapshot3.path)
    | None ->
        print_endline
          "exhaustive pruned-reachability search over all 36 wirings refuted \
           every candidate (inputs, target) configuration — see EXPERIMENTS.md \
           for the discussion of this negative result"
  end
  else
    print_endline
      "(pass --full for the exhaustive pruned-reachability search over all \
       wirings; see `anonsim check-nonatomic --exhaustive`)"

(* LB: lower bound *)

let lower_bound () =
  header "LB: Section 2.1 - N-1 registers are not enough";
  List.iter
    (fun n ->
      let r = Core.lower_bound_demo ~n () in
      Printf.printf
        "  n=%d (m=%d): p solo-terminated with %s in %d steps; covering \
         erased p: %b; violation: %s\n"
        n (n - 1) (iset_str r.Analysis.Lower_bound.p_output)
        r.Analysis.Lower_bound.p_solo_steps
        (Analysis.Lower_bound.p_erased r)
        r.Analysis.Lower_bound.violation)
    [ 2; 3; 4; 5; 6 ]

(* F4: renaming *)

let fig4 () =
  header "F4: Figure 4 - adaptive renaming with M(M+1)/2 names";
  List.iter
    (fun (n, groups) ->
      let inputs = Array.init n (fun i -> 1 + (i mod groups)) in
      let bound = Algorithms.Renaming.max_name ~groups in
      let collisions_same = ref 0 and runs_ok = ref 0 and max_seen = ref 0 in
      for seed = 0 to 49 do
        match Core.solve_renaming ~seed ~inputs () with
        | Ok r ->
            incr runs_ok;
            Array.iter
              (fun (o : Algorithms.Renaming.output) ->
                max_seen := max !max_seen o.name_out)
              r.Core.outputs;
            let names =
              Array.map (fun (o : Algorithms.Renaming.output) -> o.name_out) r.Core.outputs
            in
            Array.iteri
              (fun p np ->
                Array.iteri
                  (fun q nq ->
                    if p < q && np = nq && inputs.(p) = inputs.(q) then
                      incr collisions_same)
                  names)
              names
        | Error _ -> ()
      done;
      Printf.printf
        "  n=%d, %d groups: %d/50 runs valid, names within 1..%d (max seen \
         %d); same-group name sharing occurred %d times (legal)\n"
        n groups !runs_ok bound !max_seen !collisions_same)
    [ (3, 3); (4, 2); (5, 3); (6, 3); (8, 4) ]

(* F5: consensus *)

let fig5 () =
  header "F5: Figure 5 - obstruction-free consensus";
  (* solo decision latency *)
  List.iter
    (fun n ->
      let inputs = Array.init n (fun i -> (i mod 3) + 1) in
      let steps =
        List.filter_map
          (fun seed ->
            match Core.solve_consensus ~seed ~contention_steps:0 ~inputs () with
            | Ok r -> Some r.Core.steps
            | Error _ -> None)
          (List.init 11 Fun.id)
      in
      let sorted = List.sort compare steps in
      Printf.printf "  n=%d solo-ish: %d/11 decided, median %d steps\n" n
        (List.length steps)
        (List.nth sorted (List.length sorted / 2)))
    [ 2; 3; 4; 6; 8 ];
  (* agreement under contention *)
  let violations = ref 0 and decided_runs = ref 0 in
  for seed = 0 to 199 do
    let n = 2 + (seed mod 5) in
    let inputs = Array.init n (fun i -> (i mod 2) + 1) in
    match Core.solve_consensus ~seed ~contention_steps:2_000 ~inputs () with
    | Ok _ -> incr decided_runs
    | Error _ -> incr violations
  done;
  Printf.printf
    "  contention: %d/200 runs decided with agreement+validity, %d stalled \
     or invalid\n"
    !decided_runs !violations

(* X1: scheduler sensitivity *)

let x1 () =
  header "X1: scheduler sensitivity of the snapshot algorithm";
  List.iter
    (fun n ->
      let rows = Analysis.Sweep.scheduler_sensitivity ~n () in
      List.iter
        (fun (name, stats) ->
          Fmt.pr "  n=%d %-12s %a@." n name Repro_util.Stats.pp_summary stats)
        rows)
    [ 2; 4; 6; 8 ]

(* X4: the covering phenomenon, quantified *)

let x4 () =
  header "X4: covering - overwrites and lost writes in the write-scan loop";
  let module Trace = Anonmem.Trace.Make (Algorithms.Write_scan) in
  let module Sys = Trace.Sys in
  List.iter
    (fun n ->
      let rng = Repro_util.Rng.create ~seed:23 in
      let cfg = Algorithms.Write_scan.cfg ~n ~m:n in
      let wiring = Anonmem.Wiring.random rng ~n ~m:n in
      let st =
        Sys.init ~cfg ~wiring ~inputs:(Array.init n (fun i -> i + 1))
      in
      let tr = Trace.create () in
      let _ =
        Sys.run ~max_steps:5_000
          ~sched:(Anonmem.Scheduler.random (Repro_util.Rng.split rng))
          ~on_event:(Trace.on_event tr) st
      in
      let c = Trace.covering tr in
      Printf.printf
        "  n=%d: %d writes, %d overwrites (%.0f%%), %d lost outright (%.0f%%)\n"
        n c.Trace.writes c.Trace.overwrites
        (100. *. float_of_int c.Trace.overwrites /. float_of_int (max 1 c.Trace.writes))
        c.Trace.lost_writes
        (100. *. float_of_int c.Trace.lost_writes /. float_of_int (max 1 c.Trace.writes)))
    [ 2; 3; 5; 8 ]

(* X2: multicore *)

let x2 () =
  header "X2: snapshot on real OCaml 5 domains";
  List.iter
    (fun n ->
      let inputs = Array.init n (fun i -> i + 1) in
      let ok = ref 0 and ops = ref 0 in
      for seed = 0 to 19 do
        match Runtime_shm.parallel_snapshot ~seed ~inputs () with
        | Ok r ->
            incr ok;
            ops := !ops + Array.fold_left ( + ) 0 r.Runtime_shm.Snapshot_run.steps
        | Error _ -> ()
      done;
      Printf.printf
        "  n=%d domains: %d/20 runs valid, avg %d shared-memory ops per run\n"
        n !ok
        (if !ok > 0 then !ops / !ok else 0))
    [ 2; 4; 6; 8 ]

(* X3: baselines *)

let x3 () =
  header "X3: baselines";
  (* named-memory snapshot: works with identity wiring, breaks when the
     memory is anonymous *)
  let module NSys = Anonmem.System.Make (Algorithms.Named_snapshot) in
  let n = 4 in
  let cfg = Algorithms.Named_snapshot.cfg ~n in
  let inputs = Array.init n (fun i -> i + 1) in
  let run_with wiring =
    let state = NSys.init ~cfg ~wiring ~inputs in
    (* all announcement writes first, then collects: the adversarial order
       for anonymous memory *)
    let sched = Anonmem.Scheduler.round_robin () in
    let stop, _ = NSys.run ~max_steps:100_000 ~sched state in
    if stop <> NSys.All_halted then Error "did not terminate"
    else
      let complete =
        Array.for_all
          (function
            | Some o -> Repro_util.Iset.cardinal o = n
            | None -> false)
          (NSys.outputs state)
      in
      Ok complete
  in
  (match run_with (Anonmem.Wiring.identity ~n ~m:n) with
  | Ok complete ->
      Printf.printf
        "  named-memory double collect, identity wiring: terminates, all \
         outputs complete (%b)\n"
        complete
  | Error e -> Printf.printf "  named baseline failed: %s\n" e);
  let rng = Repro_util.Rng.create ~seed:4 in
  let incomplete = ref 0 in
  let trials = 50 in
  for _ = 1 to trials do
    match run_with (Anonmem.Wiring.random rng ~n ~m:n) with
    | Ok complete -> if not complete then incr incomplete
    | Error _ -> incr incomplete
  done;
  Printf.printf
    "  same algorithm, anonymous (random) wirings: %d/%d runs lost a \
     participant's write (completeness violated)\n"
    !incomplete trials;
  (* double-collect termination rule: fooled by the Figure-2 adversary *)
  let module E = Analysis.Figure2.Write_scan_ext in
  let cfg = Algorithms.Write_scan.cfg ~n:5 ~m:3 in
  let r = E.run ~cfg ~cycles:30 () in
  let s3 = E.scan_summary r.E.extra_events.(3)
  and s4 = E.scan_summary r.E.extra_events.(4) in
  Printf.printf
    "  double-collect rule under the Figure-2 adversary: p had %d clean \
     scans in a row ending with view {1,2}, p' %d with {1,3} - both fooled, \
     outputs incomparable\n"
    s3.E.final_clean_streak s4.E.final_clean_streak

(* X5: fault tolerance - which algorithms survive which fault classes *)

let x5 () =
  header "X5: fault-tolerance matrix (seeded fuzz campaigns per fault class)";
  let iterations = if full then 10_000 else 2_000 in
  Printf.printf
    "%d cases per cell, seed 0; a VIOLATION cell reports the shrunk \
     counterexample's failure\n"
    iterations;
  let profiles =
    [
      Fuzzing.Fault_gen.Crash_stop_only;
      Fuzzing.Fault_gen.Crash_recover;
      Fuzzing.Fault_gen.Omission;
      Fuzzing.Fault_gen.Stale;
      Fuzzing.Fault_gen.Stuck;
      Fuzzing.Fault_gen.Mixed;
    ]
  in
  List.iter
    (fun key ->
      match Fuzzing.Targets.find key with
      | None -> ()
      | Some (module T : Fuzzing.Target.S) ->
          let module H = Fuzzing.Harness.Make (T) in
          List.iter
            (fun profile ->
              let r =
                H.campaign ~now:Unix.gettimeofday ~fault_profile:profile
                  ~seed:0 ~iterations ()
              in
              match r.Fuzzing.Harness.counterexample with
              | None ->
                  Printf.printf "  %-10s %-9s clean over %d cases (%.1fs)\n%!"
                    key
                    (Fuzzing.Fault_gen.name profile)
                    r.Fuzzing.Harness.iterations r.Fuzzing.Harness.elapsed
              | Some cex ->
                  let inst = cex.Fuzzing.Harness.instance in
                  (* A counterexample is fault-induced iff removing the
                     (already shrunk-to-minimal) fault plan makes the same
                     scripted execution pass. *)
                  let fault_induced =
                    inst.Fuzzing.Harness.faults <> []
                    && Result.is_ok
                         (H.verdict_of_instance
                            { inst with Fuzzing.Harness.faults = [] })
                  in
                  Printf.printf
                    "  %-10s %-9s VIOLATION at iteration %d: %s\n\
                    \             plan [%s], fault-induced: %b (%d shrink runs)\n\
                     %!"
                    key
                    (Fuzzing.Fault_gen.name profile)
                    (match r.Fuzzing.Harness.found_after with
                    | Some (i, _) -> i
                    | None -> -1)
                    (Fmt.str "%a" Tasks.Task_failure.pp
                       cex.Fuzzing.Harness.failure)
                    (Anonmem.Fault.to_string inst.Fuzzing.Harness.faults)
                    fault_induced cex.Fuzzing.Harness.shrink_runs)
            profiles)
    [ "snapshot"; "renaming"; "consensus" ];
  (* The time-abstract crash search subsumes every timed crash-stop plan at
     the same sizes: a safety certificate here covers the whole first row. *)
  List.iter
    (fun max_crashes ->
      if max_crashes = 1 || full then
        match Core.verify_snapshot_model_crashes ~n:2 ~max_crashes () with
        | Ok s ->
            Printf.printf
              "  model check: snapshot containment safety VERIFIED for n=2 \
               under <=%d crash-stop(s) (%d wirings, %d states, %d crash \
               branches)\n"
              max_crashes s.Core.Snapshot_fault_mc.wirings_checked
              s.Core.Snapshot_fault_mc.total_states
              s.Core.Snapshot_fault_mc.total_crash_branches
        | Error e ->
            Printf.printf "  model check under <=%d crash(es) FAILED: %s\n"
              max_crashes e)
    [ 1; 2 ]

let () =
  Printf.printf
    "Reproduction report: Losa & Gafni, PODC 2024 (fully-anonymous model)\n";
  Printf.printf "mode: %s\n" (if full then "full" else "default (pass --full for the complete n=3 sweep)");
  figure2 ();
  theorem48 ();
  fig3 ();
  claim_c1 ();
  consensus_mc ();
  claim_c2 ();
  lower_bound ();
  fig4 ();
  fig5 ();
  x1 ();
  x2 ();
  x3 ();
  x4 ();
  x5 ();
  print_endline "\ndone."
