test/test_consensus.ml: Alcotest Algorithms Anonmem Array Core Fun Int List Printf QCheck QCheck_alcotest Repro_util Rng
