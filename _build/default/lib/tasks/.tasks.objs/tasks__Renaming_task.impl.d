lib/tasks/renaming_task.ml: Array Fmt Iset List Outcome Repro_util
