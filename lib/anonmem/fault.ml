(* Serializable fault plans shared by every execution layer.  See the
   interface for the taxonomy and the per-layer reading of times. *)

type event =
  | Crash_stop of { p : int; at : int }
  | Crash_recover of { p : int; at : int }
  | Omit_write of { p : int; at : int }
  | Stale_read of { p : int; at : int }
  | Stuck_register of { reg : int; at : int }

type plan = event list

(* (time, kind rank, index) — a total order making plans canonical. *)
let key = function
  | Crash_stop { p; at } -> (at, 0, p)
  | Crash_recover { p; at } -> (at, 1, p)
  | Omit_write { p; at } -> (at, 2, p)
  | Stale_read { p; at } -> (at, 3, p)
  | Stuck_register { reg; at } -> (at, 4, reg)

let normalize plan =
  List.sort_uniq (fun a b -> compare (key a) (key b)) plan

let is_crash_free plan =
  List.for_all
    (function Crash_stop _ | Crash_recover _ -> false | _ -> true)
    plan

let max_p plan =
  List.fold_left
    (fun acc -> function
      | Crash_stop { p; _ } | Crash_recover { p; _ } | Omit_write { p; _ }
      | Stale_read { p; _ } ->
          max acc p
      | Stuck_register _ -> acc)
    (-1) plan

let crash_stops ?n plan =
  let n = match n with Some n -> n | None -> max_p plan + 1 in
  let a = Array.make (max n 0) None in
  List.iter
    (function
      | Crash_stop { p; at } when p >= 0 && p < n -> (
          match a.(p) with
          | Some at' when at' <= at -> ()
          | _ -> a.(p) <- Some at)
      | _ -> ())
    plan;
  a

let recoveries plan =
  List.filter_map
    (function Crash_recover { p; at } -> Some (at, p) | _ -> None)
    plan
  |> List.sort compare

let arms ~n sel plan =
  let a = Array.make n [] in
  List.iter
    (fun ev ->
      match sel ev with
      | Some (p, at) when p >= 0 && p < n -> a.(p) <- at :: a.(p)
      | _ -> ())
    plan;
  Array.map (List.sort compare) a

let omit_arms ~n plan =
  arms ~n (function Omit_write { p; at } -> Some (p, at) | _ -> None) plan

let stale_arms ~n plan =
  arms ~n (function Stale_read { p; at } -> Some (p, at) | _ -> None) plan

let stuck_times ~m plan =
  let a = Array.make m None in
  List.iter
    (function
      | Stuck_register { reg; at } when reg >= 0 && reg < m -> (
          match a.(reg) with
          | Some at' when at' <= at -> ()
          | _ -> a.(reg) <- Some at)
      | _ -> ())
    plan;
  a

let drop_processor ~p plan =
  let shift q = if q > p then q - 1 else q in
  List.filter_map
    (function
      | Crash_stop { p = q; at } ->
          if q = p then None else Some (Crash_stop { p = shift q; at })
      | Crash_recover { p = q; at } ->
          if q = p then None else Some (Crash_recover { p = shift q; at })
      | Omit_write { p = q; at } ->
          if q = p then None else Some (Omit_write { p = shift q; at })
      | Stale_read { p = q; at } ->
          if q = p then None else Some (Stale_read { p = shift q; at })
      | Stuck_register _ as ev -> Some ev)
    plan

let drop_register ~reg plan =
  List.filter_map
    (function
      | Stuck_register { reg = r; at } ->
          if r = reg then None
          else Some (Stuck_register { reg = (if r > reg then r - 1 else r); at })
      | ev -> Some ev)
    plan

let pp_event ppf = function
  | Crash_stop { p; at } -> Fmt.pf ppf "crash:p%d@@%d" (p + 1) at
  | Crash_recover { p; at } -> Fmt.pf ppf "recover:p%d@@%d" (p + 1) at
  | Omit_write { p; at } -> Fmt.pf ppf "omit:p%d@@%d" (p + 1) at
  | Stale_read { p; at } -> Fmt.pf ppf "stale:p%d@@%d" (p + 1) at
  | Stuck_register { reg; at } -> Fmt.pf ppf "stuck:r%d@@%d" (reg + 1) at

let pp ppf = function
  | [] -> Fmt.string ppf "(no faults)"
  | plan -> Fmt.(list ~sep:(any "; ") pp_event) ppf plan

let to_string plan =
  String.concat "; " (List.map (Fmt.to_to_string pp_event) plan)

let of_string s =
  let fail fmt = Fmt.kstr invalid_arg ("Fault.of_string: " ^^ fmt) in
  let index ~prefix tok =
    (* "p2" / "r2" / bare "2" — 1-based on the wire. *)
    let tok = String.trim tok in
    let digits =
      if String.length tok > 0 && tok.[0] = prefix then
        String.sub tok 1 (String.length tok - 1)
      else tok
    in
    match int_of_string_opt digits with
    | Some i when i >= 1 -> i - 1
    | _ -> fail "bad index %S (expected e.g. %c2)" tok prefix
  in
  let event tok =
    match String.index_opt tok ':' with
    | None -> fail "missing ':' in %S" tok
    | Some i -> (
        let kind = String.trim (String.sub tok 0 i) in
        let rest = String.sub tok (i + 1) (String.length tok - i - 1) in
        let who, at =
          match String.index_opt rest '@' with
          | None -> fail "missing '@TIME' in %S" tok
          | Some j -> (
              let who = String.sub rest 0 j in
              let t = String.trim (String.sub rest (j + 1) (String.length rest - j - 1)) in
              match int_of_string_opt t with
              | Some t when t >= 0 -> (who, t)
              | _ -> fail "bad time %S in %S" t tok)
        in
        match kind with
        | "crash" -> Crash_stop { p = index ~prefix:'p' who; at }
        | "recover" -> Crash_recover { p = index ~prefix:'p' who; at }
        | "omit" -> Omit_write { p = index ~prefix:'p' who; at }
        | "stale" -> Stale_read { p = index ~prefix:'p' who; at }
        | "stuck" -> Stuck_register { reg = index ~prefix:'r' who; at }
        | k -> fail "unknown fault kind %S (crash|recover|omit|stale|stuck)" k)
  in
  String.split_on_char ';' s
  |> List.filter_map (fun tok ->
         let tok = String.trim tok in
         if tok = "" then None else Some (event tok))
