(* Hybrid bitset/sorted-list integer sets.

   The hot paths of the library (the write–scan engines, the fuzzing
   harness, the model-checking codecs) manipulate sets of small
   non-negative integers — group identifiers, typically below ten.  Those
   are packed into a single immutable word: element [i] is bit [i], for
   [i] in [0 .. Sys.int_size - 2] (0..61 on 64-bit), exactly the domain
   {!to_bits} has always supported.  Union, intersection, difference,
   subset, equality and comparability are then one or two word
   operations.  Sets containing any element outside that window fall back
   to the strictly-sorted-list representation of {!Sorted_set.Make}.

   Canonical representation.  A set is [Bits] iff {e every} element lies
   in the small window — including the empty set — and [Wide] lists are
   strictly sorted; every operation below re-normalizes.  Hence equal
   sets are structurally equal and hash identically, the contract the
   model checker's state hashing depends on (the sorted-list
   implementation had the same property, and test/test_iset_diff.ml
   checks the two agree operation-by-operation across the boundary). *)

type elt = int

(* Bits 0 .. small_limit-1 of a non-negative OCaml int. *)
let small_limit = Sys.int_size - 1
let is_small x = x >= 0 && x < small_limit

type t =
  | Bits of int  (** all elements in [0, small_limit); the canonical form *)
  | Wide of int list
      (** strictly sorted; contains at least one element outside the
          window *)

(* ---- sorted-list primitives for the Wide fallback --------------------- *)

let rec l_mem x = function
  | [] -> false
  | y :: rest -> if x = y then true else if x < y then false else l_mem x rest

let rec l_add x = function
  | [] -> [ x ]
  | y :: rest as s ->
      if x = y then s else if x < y then x :: s else y :: l_add x rest

let rec l_remove x = function
  | [] -> []
  | y :: rest as s ->
      if x = y then rest else if x < y then s else y :: l_remove x rest

let rec l_union a b =
  match (a, b) with
  | [], s | s, [] -> s
  | x :: xs, y :: ys ->
      if x = y then x :: l_union xs ys
      else if x < y then x :: l_union xs b
      else y :: l_union a ys

let rec l_inter a b =
  match (a, b) with
  | [], _ | _, [] -> []
  | x :: xs, y :: ys ->
      if x = y then x :: l_inter xs ys
      else if x < y then l_inter xs b
      else l_inter a ys

let rec l_diff a b =
  match (a, b) with
  | [], _ -> []
  | s, [] -> s
  | x :: xs, y :: ys ->
      if x = y then l_diff xs ys
      else if x < y then x :: l_diff xs b
      else l_diff a ys

let rec l_subset a b =
  match (a, b) with
  | [], _ -> true
  | _ :: _, [] -> false
  | x :: xs, y :: ys ->
      if x = y then l_subset xs ys else if x < y then false else l_subset a ys

let rec l_compare a b =
  match (a, b) with
  | [], [] -> 0
  | [], _ :: _ -> -1
  | _ :: _, [] -> 1
  | x :: xs, y :: ys ->
      let c = Int.compare x y in
      if c <> 0 then c else l_compare xs ys

(* ---- mask primitives -------------------------------------------------- *)

let bit_index pow =
  (* [pow] is a power of two; its exponent. *)
  let rec go i v = if v = 1 then i else go (i + 1) (v lsr 1) in
  go 0 pow

let popcount b =
  let rec go b acc = if b = 0 then acc else go (b land (b - 1)) (acc + 1) in
  go b 0

let mask_elements b =
  let rec go b acc =
    if b = 0 then List.rev acc
    else
      let low = b land -b in
      go (b lxor low) (bit_index low :: acc)
  in
  go b []

(* Mask of the in-window elements of a sorted list. *)
let mask_of_in_window l =
  List.fold_left (fun acc x -> if is_small x then acc lor (1 lsl x) else acc) 0 l

(* Re-establish the invariant on a strictly sorted list. *)
let norm_sorted l =
  if List.for_all is_small l then
    Bits (List.fold_left (fun acc x -> acc lor (1 lsl x)) 0 l)
  else Wide l

let to_sorted_list = function Bits b -> mask_elements b | Wide l -> l

(* ---- the Sorted_set.S operations -------------------------------------- *)

let empty = Bits 0
let is_empty = function Bits 0 -> true | _ -> false
let singleton x = if is_small x then Bits (1 lsl x) else Wide [ x ]

let mem x = function
  | Bits b -> is_small x && b land (1 lsl x) <> 0
  | Wide l -> l_mem x l

let add x = function
  | Bits b when is_small x -> Bits (b lor (1 lsl x))
  | (Bits _ | Wide _) as s -> norm_sorted (l_add x (to_sorted_list s))

let remove x = function
  | Bits b -> if is_small x then Bits (b land lnot (1 lsl x)) else Bits b
  | Wide l -> norm_sorted (l_remove x l)

let union a b =
  match (a, b) with
  | Bits x, Bits y -> Bits (x lor y)
  (* A [Wide] operand keeps its out-of-window element in the union, so no
     re-normalization is needed. *)
  | _ -> Wide (l_union (to_sorted_list a) (to_sorted_list b))

let inter a b =
  match (a, b) with
  | Bits x, Bits y -> Bits (x land y)
  | Bits x, Wide l | Wide l, Bits x -> Bits (x land mask_of_in_window l)
  | Wide x, Wide y -> norm_sorted (l_inter x y)

let diff a b =
  match (a, b) with
  | Bits x, Bits y -> Bits (x land lnot y)
  | Bits x, Wide l -> Bits (x land lnot (mask_of_in_window l))
  | Wide _, _ -> norm_sorted (l_diff (to_sorted_list a) (to_sorted_list b))

let subset a b =
  match (a, b) with
  | Bits x, Bits y -> x land lnot y = 0
  | Bits x, Wide l -> x land lnot (mask_of_in_window l) = 0
  (* A Wide set owns an element no Bits set can contain. *)
  | Wide _, Bits _ -> false
  | Wide x, Wide y -> l_subset x y

(* Canonical representation: structural equality is set equality. *)
let equal a b = a = b
let strict_subset a b = subset a b && not (equal a b)
let comparable a b = subset a b || subset b a

let compare a b =
  match (a, b) with
  | Bits x, Bits y ->
      (* Lexicographic on the sorted element sequences, matching the
         sorted-list order: strip the common low bits, then the set
         holding the smaller next element is smaller — unless it has no
         next element at all (a prefix is smaller). *)
      if x = y then 0
      else
        let d = x lxor y in
        let low = d land -d in
        if x land low <> 0 then if y land lnot (low - 1) = 0 then 1 else -1
        else if x land lnot (low - 1) = 0 then -1
        else 1
  | _ -> l_compare (to_sorted_list a) (to_sorted_list b)

let cardinal = function Bits b -> popcount b | Wide l -> List.length l
let elements = to_sorted_list
let of_list l = norm_sorted (List.sort_uniq Int.compare l)

let fold f s acc =
  match s with
  | Bits b ->
      let rec go b acc =
        if b = 0 then acc
        else
          let low = b land -b in
          go (b lxor low) (f (bit_index low) acc)
      in
      go b acc
  | Wide l -> List.fold_left (fun acc x -> f x acc) acc l

let iter f = function
  | Bits b ->
      let rec go b =
        if b <> 0 then begin
          let low = b land -b in
          f (bit_index low);
          go (b lxor low)
        end
      in
      go b
  | Wide l -> List.iter f l

let for_all f = function
  | Bits b ->
      let rec go b =
        b = 0
        ||
        let low = b land -b in
        f (bit_index low) && go (b lxor low)
      in
      go b
  | Wide l -> List.for_all f l

let exists f = function
  | Bits b ->
      let rec go b =
        b <> 0
        &&
        let low = b land -b in
        f (bit_index low) || go (b lxor low)
      in
      go b
  | Wide l -> List.exists f l

let filter f = function
  | Bits b ->
      let rec go b acc =
        if b = 0 then Bits acc
        else
          let low = b land -b in
          go (b lxor low) (if f (bit_index low) then acc lor low else acc)
      in
      go b 0
  | Wide l -> norm_sorted (List.filter f l)

let map f s = of_list (List.map f (to_sorted_list s))

let min_elt_opt = function
  | Bits 0 -> None
  | Bits b -> Some (bit_index (b land -b))
  | Wide l -> ( match l with [] -> None | x :: _ -> Some x)

let max_elt_opt = function
  | Bits 0 -> None
  | Bits b ->
      let rec go i v = if v = 1 then i else go (i + 1) (v lsr 1) in
      Some (go 0 b)
  | Wide l -> (
      let rec last = function
        | [] -> None
        | [ x ] -> Some x
        | _ :: rest -> last rest
      in
      last l)

let choose_opt = min_elt_opt

let rank x s =
  match s with
  | Bits b ->
      if is_small x && b land (1 lsl x) <> 0 then
        Some (1 + popcount (b land ((1 lsl x) - 1)))
      else None
  | Wide l ->
      let rec go i = function
        | [] -> None
        | y :: rest -> if x = y then Some i else if x < y then None else go (i + 1) rest
      in
      go 1 l

let union_all l = List.fold_left union empty l

let pp pp_elt ppf s =
  Fmt.pf ppf "{%a}" Fmt.(list ~sep:(any ",") pp_elt) (elements s)

(* ---- integer-specific helpers ----------------------------------------- *)

let of_range lo hi =
  if lo > hi then empty
  else if lo >= 0 && hi < small_limit then
    (* hi+1 low bits minus the lo low bits, careful at the top bit *)
    Bits (lnot 0 lsr (Sys.int_size - 1 - hi) land lnot ((1 lsl lo) - 1))
  else
    let rec go i acc = if i < lo then acc else go (i - 1) (add i acc) in
    go hi empty

let to_bits = function
  | Bits b -> b
  | Wide _ -> invalid_arg "Iset.to_bits: element out of range"

let of_bits bits = if bits <= 0 then empty else Bits bits
let pp_set = pp Fmt.int
let to_string s = Fmt.str "%a" pp_set s
