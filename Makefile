.PHONY: build test bench experiments bench-mc bench-fuzz bench-portfolio mc-smoke mc-long fuzz-smoke fuzz-long fault-smoke faults-long portfolio-smoke portfolio-long feasibility resume-smoke coverage clean

build:
	dune build @all

test:
	dune runtest

# Full reproduction report (EXPERIMENTS.md's tables).  The output file
# is regenerated, not committed (.gitignore'd).
experiments:
	dune build bin/experiments.exe
	cd $(CURDIR) && ./_build/default/bin/experiments.exe | tee experiments_output.txt

bench:
	dune exec bench/main.exe

# Model-checking engine benchmark: states visited, wall-clock and peak
# memory for sequential vs symmetry-reduced vs parallel x {1,2,4}
# domains on the snapshot explorations.  Writes BENCH_mc.json (several
# minutes: the 3-processor rows explore ~2M states each, and the
# 4-processor bounded-depth row explores a ~28M-state symmetry quotient
# — a few GiB of heap — that only the arena state tables keep
# affordable).  The 3-processor full row is additionally rebuilt in the
# pre-arena boxed layout to report the memory-compaction factor.
bench-mc:
	dune build bench/bench_mc.exe
	cd $(CURDIR) && ./_build/default/bench/bench_mc.exe

# Fuzzing-throughput benchmark: cases/s, steps/s and allocated words per
# step for the legacy (list-view, traced) execution core vs the bitset
# views traced, boxed-fast, and on the flat int-machine fast path, plus
# campaign wall-clock at 1 vs N domains.  Writes BENCH_fuzz.json; the
# EXPERIMENTS.md fuzzing tables (X8, X13) come from this output.  Pass
# BENCH_FUZZ_FLAGS=--quick for the CI-sized run (which doubles as the
# perf gate: <8 alloc words/step and >=3M steps/s on the flat row).
bench-fuzz:
	dune build bench/bench_fuzz.exe
	cd $(CURDIR) && ./_build/default/bench/bench_fuzz.exe $(BENCH_FUZZ_FLAGS)

# Portfolio-verification benchmark: wall-clock + visited states per
# feasibility-map cell class, sequential vs symmetry-reduced.  Writes
# BENCH_portfolio.json.  Pass BENCH_PORTFOLIO_FLAGS=--quick to skip the
# m=5 clean cells.
bench-portfolio:
	dune build bench/bench_portfolio.exe
	cd $(CURDIR) && ./_build/default/bench/bench_portfolio.exe $(BENCH_PORTFOLIO_FLAGS)

# The quick cross-engine differential pass that runtest already includes.
mc-smoke:
	dune build @mc-smoke

# The full differential matrix: every 3-processor wiring, the unbounded
# single-group 3-processor reduction run, deeper level bounds, a slice of
# the C2 cyclic-refinement refutation, and 500-case QCheck properties.
# Several minutes.
mc-long:
	dune build test/test_par_explorer.exe
	MC_LONG=1 ./_build/default/test/test_par_explorer.exe

# The bounded fuzzing pass that runtest already includes (a few seconds).
fuzz-smoke:
	dune build @fuzz-smoke

# A serious fuzzing campaign over every target (several minutes).  The
# planted double-collect bug must be found; the paper's algorithms must
# stay clean.  Override SEED/ITERS to explore further.
SEED ?= 0
ITERS ?= 200000
fuzz-long:
	dune build bin/fuzz.exe
	dune exec --no-build bin/fuzz.exe -- --protocol double_collect \
	  --iterations $(ITERS) --seed $(SEED) --expect-bug
	dune exec --no-build bin/fuzz.exe -- --protocol snapshot \
	  --iterations $(ITERS) --seed $(SEED)
	dune exec --no-build bin/fuzz.exe -- --protocol renaming \
	  --iterations $(ITERS) --seed $(SEED)
	dune exec --no-build bin/fuzz.exe -- --protocol consensus \
	  --iterations $(ITERS) --seed $(SEED) --time-budget 120

# The bounded fault-fuzz pass that runtest already includes.
fault-smoke:
	dune build @fault-smoke

# Serious fault-injection campaigns (several minutes).  The paper's
# algorithms must keep their safety properties under crash-stop,
# crash-recovery, write-omission and stale-read plans; the stuck-register
# campaigns are expected to break wait-freedom (a stuck register is a
# permanently covered one, so the Section-2.1 lower bound bites) — hence
# --expect-bug.  Override SEED/FITERS to explore further.
FITERS ?= 50000
faults-long:
	dune build bin/fuzz.exe bin/anonsim.exe
	for prof in crash recover omission stale; do \
	  for proto in snapshot renaming consensus; do \
	    dune exec --no-build bin/fuzz.exe -- --protocol $$proto \
	      --iterations $(FITERS) --seed $(SEED) --fault-profile $$prof \
	      || exit 1; \
	  done; \
	done
	dune exec --no-build bin/fuzz.exe -- --protocol snapshot \
	  --iterations $(FITERS) --seed $(SEED) --fault-profile stuck --expect-bug
	dune exec --no-build bin/anonsim.exe -- check-snapshot -n 2 --crashes 2

# The quick portfolio pass that runtest already includes: the n=2
# differential matrix, planted-bug replay, the quick (n=2) feasibility
# sweep and short campaigns on the three portfolio targets.
portfolio-smoke:
	dune build @portfolio-smoke

# The heavy portfolio cells (n=3 deadlock + clean leader grid), serious
# campaigns on the three portfolio targets — crash/recover/omission/stale
# must stay clean, stuck breaks the budgeted weak leader (--expect-bug,
# same convention as faults-long) — and the full feasibility map.
portfolio-long:
	dune build test/test_portfolio.exe bin/fuzz.exe bin/anonsim.exe
	PORTFOLIO_LONG=1 ./_build/default/test/test_portfolio.exe
	for prof in none crash recover omission stale; do \
	  for proto in rt_mutex naming weak_leader; do \
	    dune exec --no-build bin/fuzz.exe -- --protocol $$proto \
	      --iterations $(FITERS) --seed $(SEED) --fault-profile $$prof \
	      || exit 1; \
	  done; \
	done
	dune exec --no-build bin/fuzz.exe -- --protocol weak_leader \
	  --iterations $(FITERS) --seed $(SEED) --fault-profile stuck --expect-bug
	$(MAKE) feasibility

# The full feasibility map (n=2 and n=3 rows).  The n=3 clean mutex
# cell sweeps 5.5G states across 2467 wiring classes with the packed
# single-word engine — budget ~45 minutes on one core.  Writes
# FEASIBILITY.json.  The quick n=2 map runs inside @portfolio-smoke.
feasibility:
	dune build bin/anonsim.exe
	dune exec --no-build bin/anonsim.exe -- feasibility -o FEASIBILITY.json

# Kill-and-resume differential smoke: run the quick feasibility sweep to
# completion for a reference map, run it again but SIGINT it ~1s in (exit
# 0 if it won the race, 4 if interrupted), then rerun with --resume so
# the journal replays the finished cells — and require the resumed map
# to be byte-identical to the uninterrupted reference.  CI runs this on
# every push; it is the end-to-end check behind the durability suite.
resume-smoke:
	dune build bin/anonsim.exe
	rm -rf _resume_smoke && mkdir -p _resume_smoke
	./_build/default/bin/anonsim.exe feasibility --quick \
	  -o _resume_smoke/reference.json
	( ./_build/default/bin/anonsim.exe feasibility --quick \
	     -o _resume_smoke/resumed.json & \
	   pid=$$!; sleep 1; kill -INT $$pid 2>/dev/null; wait $$pid; st=$$?; \
	   [ $$st -eq 0 ] || [ $$st -eq 4 ] )
	./_build/default/bin/anonsim.exe feasibility --quick --resume \
	  -o _resume_smoke/resumed.json
	cmp _resume_smoke/reference.json _resume_smoke/resumed.json
	@echo "resume-smoke: resumed map byte-identical to uninterrupted run"

# Line-coverage report over the library code.  Requires the bisect_ppx
# backend (`opam install bisect_ppx`); the (instrumentation) stanzas in
# the lib dune files are inert without it, so regular builds and tests
# never pay for it or need it installed.  Writes the per-file summary to
# _coverage/summary.txt and an HTML report to _coverage/html/.
coverage:
	@command -v bisect-ppx-report >/dev/null 2>&1 || \
	  { echo "coverage: bisect_ppx is not installed (opam install bisect_ppx)"; exit 1; }
	rm -rf _coverage && mkdir -p _coverage
	find . -name '*.coverage' -not -path './_opam/*' -delete
	BISECT_FILE=$(CURDIR)/_coverage/bisect \
	  dune runtest --force --instrument-with bisect_ppx
	bisect-ppx-report summary --per-file _coverage/bisect*.coverage \
	  | tee _coverage/summary.txt
	bisect-ppx-report html -o _coverage/html _coverage/bisect*.coverage
	@echo "coverage: open _coverage/html/index.html"

clean:
	dune clean
	rm -rf _resume_smoke _coverage
	find . -name '*.coverage' -not -path './_opam/*' -delete 2>/dev/null || true
