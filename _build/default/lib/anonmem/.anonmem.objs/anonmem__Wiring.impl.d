lib/anonmem/wiring.ml: Array Fmt List Permutation Repro_util
