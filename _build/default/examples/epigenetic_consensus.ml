(* The epigenetic-consensus scenario that motivates the fully-anonymous
   model (Rashid, Taubenfeld & Bar-Joseph; cited in the paper's
   introduction): biological agents — think cells writing epigenetic marks
   at genome locations — have no identities and no common frame of
   reference for the locations they touch.  Reaching a common decision
   (e.g. a shared expression level) in that setting is exactly
   obstruction-free consensus in the fully-anonymous model (Figure 5).

   We simulate a colony of cells, each starting with its own proposed
   expression level; the colony converges on a single level.  The decision
   is reached despite the cells being wired to the marks arbitrarily.

   Run with: dune exec examples/epigenetic_consensus.exe *)

let levels = [| 3; 7; 7; 2; 7; 5; 3; 7 |]

let () =
  let n = Array.length levels in
  Printf.printf
    "A colony of %d anonymous cells proposes expression levels:\n  %s\n\n" n
    (String.concat " " (Array.to_list (Array.map string_of_int levels)));
  Printf.printf
    "Each cell runs the same program over %d anonymous shared marks\n" n;
  Printf.printf "(obstruction-free consensus over a long-lived group snapshot).\n\n";
  match Core.solve_consensus ~seed:99 ~inputs:levels () with
  | Error e ->
      prerr_endline ("consensus failed: " ^ e);
      exit 1
  | Ok { outputs; steps; _ } ->
      let decided = outputs.(0) in
      Printf.printf "after %d shared-memory operations, every cell decided: %d\n"
        steps decided;
      assert (Array.for_all (Int.equal decided) outputs);
      assert (Array.exists (Int.equal decided) levels);
      Printf.printf
        "agreement and validity hold: %d was proposed and is now unanimous.\n"
        decided;
      (* Contrast: under heavy contention the algorithm may not decide —
         it is obstruction-free, not wait-free.  Give the colony an
         adversarial interleaving budget and observe progress stalls are
         possible but safety never breaks. *)
      let trials = 20 in
      let stalls = ref 0 in
      for seed = 1 to trials do
        match Core.solve_consensus ~seed ~contention_steps:200 ~inputs:levels () with
        | Ok r -> assert (Array.for_all (Int.equal r.Core.outputs.(0)) r.Core.outputs)
        | Error _ -> incr stalls
      done;
      Printf.printf
        "\n%d/%d contended trials decided (agreement held in every one).\n"
        (trials - !stalls) trials
