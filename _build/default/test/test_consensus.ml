(* Tests of the Figure-5 obstruction-free consensus algorithm: the decision
   rule, solo termination (obstruction-freedom), agreement and validity in
   every run, and behaviour under contention. *)

open Repro_util
module Cons = Algorithms.Consensus
module Sys = Anonmem.System.Make (Cons)
module Scheduler = Anonmem.Scheduler

let pset l = Cons.Pset.of_list l

(* --- decision rule (resolve) --------------------------------------------- *)

let test_resolve_decides_on_two_ahead () =
  match Cons.resolve (pset [ (1, 5); (2, 3) ]) with
  | `Decide v -> Alcotest.(check int) "decides leader" 1 v
  | `Adopt _ -> Alcotest.fail "expected decision"

let test_resolve_no_decision_within_one () =
  match Cons.resolve (pset [ (1, 4); (2, 3) ]) with
  | `Decide _ -> Alcotest.fail "must not decide at gap 1"
  | `Adopt (v, ts) ->
      Alcotest.(check int) "adopts leader" 1 v;
      Alcotest.(check int) "timestamp bumps" 5 ts

let test_resolve_lone_value_must_pump () =
  (* An absent rival counts as timestamp 0 (Chandra's implicit counter):
     deciding unopposed still requires a lead of 2.  Treating absence as
     -oo is unsound — our bounded model checker exhibits a two-processor
     disagreement (see EXPERIMENTS.md, claim F5). *)
  (match Cons.resolve (pset [ (7, 0) ]) with
  | `Adopt (v, ts) ->
      Alcotest.(check int) "keep own value" 7 v;
      Alcotest.(check int) "pump" 1 ts
  | `Decide _ -> Alcotest.fail "must not decide at ts 0");
  (match Cons.resolve (pset [ (7, 0); (7, 1) ]) with
  | `Adopt (v, ts) ->
      Alcotest.(check int) "keep own value" 7 v;
      Alcotest.(check int) "pump again" 2 ts
  | `Decide _ -> Alcotest.fail "must not decide at ts 1");
  match Cons.resolve (pset [ (7, 0); (7, 1); (7, 2) ]) with
  | `Decide v -> Alcotest.(check int) "ts 2 unopposed decides" 7 v
  | `Adopt _ -> Alcotest.fail "expected decision at ts 2"

let test_resolve_tie_adopts_deterministically () =
  match Cons.resolve (pset [ (1, 3); (2, 3) ]) with
  | `Decide _ -> Alcotest.fail "tie cannot decide"
  | `Adopt (v, ts) ->
      Alcotest.(check int) "min value breaks tie" 1 v;
      Alcotest.(check int) "ts" 4 ts

let test_resolve_uses_max_per_value () =
  (* value 2 has stale and fresh pairs; only the max matters *)
  match Cons.resolve (pset [ (1, 4); (2, 0); (2, 6); (1, 1) ]) with
  | `Decide v -> Alcotest.(check int) "2 leads by 2" 2 v
  | `Adopt _ -> Alcotest.fail "expected decision"

(* --- solo termination (obstruction-freedom) ------------------------------ *)

let test_solo_decides_own_input () =
  let n = 4 in
  let cfg = Cons.standard ~n in
  let wiring = Anonmem.Wiring.random (Rng.create ~seed:1) ~n ~m:n in
  let st = Sys.init ~cfg ~wiring ~inputs:[| 10; 20; 30; 40 |] in
  let stop, _ = Sys.run ~max_steps:1_000_000 ~sched:(Scheduler.solo 2) st in
  Alcotest.(check bool) "p2 halted" true
    (stop = Sys.Scheduler_done && Sys.is_halted st 2);
  Alcotest.(check (option int)) "decides own input" (Some 30) (Sys.output st 2)

let test_solo_after_contention_decides () =
  let n = 3 in
  let cfg = Cons.standard ~n in
  let rng = Rng.create ~seed:4 in
  let wiring = Anonmem.Wiring.random rng ~n ~m:n in
  let st = Sys.init ~cfg ~wiring ~inputs:[| 1; 2; 3 |] in
  (* contention phase, then p0 runs alone: it must decide *)
  let _ = Sys.run ~max_steps:500 ~sched:(Scheduler.random (Rng.split rng)) st in
  let stop, _ = Sys.run ~max_steps:1_000_000 ~sched:(Scheduler.solo 0) st in
  Alcotest.(check bool) "p0 decided after going solo" true
    ((stop = Sys.Scheduler_done || stop = Sys.All_halted) && Sys.is_halted st 0)

(* --- agreement and validity ----------------------------------------------- *)

let test_agreement_validity_many_seeds () =
  for seed = 0 to 99 do
    let n = 2 + (seed mod 5) in
    let inputs = Array.init n (fun i -> ((i + seed) mod 3) + 1) in
    match Core.solve_consensus ~seed ~inputs () with
    | Ok r ->
        let v = r.Core.outputs.(0) in
        Array.iter
          (fun v' -> Alcotest.(check int) "agreement" v v')
          r.Core.outputs;
        Alcotest.(check bool) "validity" true (Array.exists (Int.equal v) inputs)
    | Error e -> Alcotest.fail (Printf.sprintf "seed %d: %s" seed e)
  done

let test_partial_decisions_agree () =
  (* Stop mid-flight under contention; whoever decided must agree. *)
  for seed = 0 to 49 do
    let n = 3 in
    let cfg = Cons.standard ~n in
    let rng = Rng.create ~seed in
    let wiring = Anonmem.Wiring.random rng ~n ~m:n in
    let st = Sys.init ~cfg ~wiring ~inputs:[| 1; 2; 3 |] in
    let _ = Sys.run ~max_steps:3_000 ~sched:(Scheduler.random (Rng.split rng)) st in
    let decided = List.filter_map Fun.id (Array.to_list (Sys.outputs st)) in
    match decided with
    | [] -> ()
    | v :: rest ->
        List.iter (fun v' -> Alcotest.(check int) "partial agreement" v v') rest
  done

let test_unanimous_inputs_decide_that_value () =
  for seed = 0 to 10 do
    let inputs = [| 5; 5; 5; 5 |] in
    match Core.solve_consensus ~seed ~inputs () with
    | Ok r ->
        Array.iter (fun v -> Alcotest.(check int) "unanimity" 5 v) r.Core.outputs
    | Error e -> Alcotest.fail e
  done

let test_rounds_counted () =
  let n = 2 in
  let cfg = Cons.standard ~n in
  let wiring = Anonmem.Wiring.identity ~n ~m:n in
  let st = Sys.init ~cfg ~wiring ~inputs:[| 1; 2 |] in
  let stop, _ = Sys.run ~max_steps:1_000_000 ~sched:(Scheduler.solo 0) st in
  Alcotest.(check bool) "halted" true (stop = Sys.Scheduler_done);
  (* solo from scratch: pump the timestamp to 2 (three snapshot rounds) *)
  Alcotest.(check int) "three snapshot rounds solo" 3
    (Cons.rounds_of_local st.Sys.locals.(0))

let test_no_register_writes_outside_snapshot () =
  (* The consensus layer communicates only through the long-lived
     snapshot; every write carries a well-formed (view, level) record —
     trivially true by typing — and every decided value must have been
     some processor's preference at some point.  Check decided value is
     reachable from inputs. *)
  for seed = 0 to 20 do
    let inputs = [| 3; 9 |] in
    match Core.solve_consensus ~seed ~inputs () with
    | Ok r ->
        Array.iter
          (fun v ->
            Alcotest.(check bool) "decided one of the inputs" true
              (v = 3 || v = 9))
          r.Core.outputs
    | Error e -> Alcotest.fail e
  done

(* Regression for the decision-rule subtlety: bounded exhaustive model
   check of agreement + validity over all wirings and interleavings for
   n=2, timestamps capped at 4.  With the (unsound) "absent rival = -oo"
   rule this fails with a ~60-step covering counterexample. *)
let test_bounded_model_check_agreement () =
  match Core.verify_consensus_bounded ~n:2 ~max_ts:4 () with
  | Ok states -> Alcotest.(check bool) "nontrivial space" true (states > 1_000)
  | Error e -> Alcotest.fail e

let test_bounded_model_check_same_inputs () =
  match Core.verify_consensus_bounded ~n:2 ~inputs:(Some [| 3; 3 |]) ~max_ts:4 () with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e

let prop_consensus_valid =
  QCheck.Test.make ~name:"consensus agreement+validity on random configs"
    ~count:40
    QCheck.(pair (int_range 2 6) (int_bound 10_000))
    (fun (n, seed) ->
      let inputs = Array.init n (fun i -> ((i * seed) mod 4) + 1) in
      match Core.solve_consensus ~seed ~inputs () with
      | Ok r ->
          let v = r.Core.outputs.(0) in
          Array.for_all (Int.equal v) r.Core.outputs
          && Array.exists (Int.equal v) inputs
      | Error _ -> false)

let () =
  Alcotest.run "consensus"
    [
      ( "decision-rule",
        [
          Alcotest.test_case "decides at gap 2" `Quick test_resolve_decides_on_two_ahead;
          Alcotest.test_case "no decision at gap 1" `Quick
            test_resolve_no_decision_within_one;
          Alcotest.test_case "lone value must pump to 2" `Quick
            test_resolve_lone_value_must_pump;
          Alcotest.test_case "tie adopts deterministically" `Quick
            test_resolve_tie_adopts_deterministically;
          Alcotest.test_case "max timestamp per value" `Quick
            test_resolve_uses_max_per_value;
        ] );
      ( "obstruction-freedom",
        [
          Alcotest.test_case "solo decides own input" `Quick test_solo_decides_own_input;
          Alcotest.test_case "solo after contention decides" `Quick
            test_solo_after_contention_decides;
          Alcotest.test_case "rounds counted" `Quick test_rounds_counted;
        ] );
      ( "safety",
        [
          Alcotest.test_case "agreement+validity, 100 seeds" `Slow
            test_agreement_validity_many_seeds;
          Alcotest.test_case "partial decisions agree" `Quick
            test_partial_decisions_agree;
          Alcotest.test_case "unanimity" `Quick test_unanimous_inputs_decide_that_value;
          Alcotest.test_case "validity binary inputs" `Quick
            test_no_register_writes_outside_snapshot;
          Alcotest.test_case "bounded model check: agreement (n=2, ts<=4)" `Slow
            test_bounded_model_check_agreement;
          Alcotest.test_case "bounded model check: same inputs" `Quick
            test_bounded_model_check_same_inputs;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_consensus_valid ]);
    ]
