(** Baseline: a collect-based snapshot for {e named} memory (wiring fixed to
    the identity), in the style of the single-writer constructions of Afek
    et al. (1993) that the paper contrasts with.

    Processors are de-anonymized through their inputs: each receives a
    unique identity in [1..N] and uses it to claim register [id - 1] as its
    single-writer register — exactly the kind of pre-agreed naming that the
    fully-anonymous model forbids.  The processor writes its identity once
    and then repeatedly collects all registers until two consecutive
    collects are identical, outputting the set of identities seen (plus its
    own).

    On named memory (identity wiring) the double collect really is a valid
    snapshot here, because every processor writes exactly once: a repeated
    identical collect proves the memory did not change in between.  On
    anonymous memory (random wirings) two processors may be wired to the
    same physical register; writes get lost and collects started after all
    writes completed can miss participants — the completeness violation
    demonstrated in the test-suite.  This baseline makes concrete why the
    paper needs an entirely different construction. *)

open Repro_util

type cfg = { n : int }

let cfg ~n =
  if n < 1 then invalid_arg "Named_snapshot.cfg";
  { n }

type slot = { id : int; seq : int }
type value = slot option
type input = int
type output = Iset.t

type phase =
  | Announce  (** about to write the single-writer register *)
  | Collecting of { pos : int; acc : value list }
      (** [acc] holds the values read so far, most recent first *)
  | Compare of { last : value list }
      (** a full collect just completed; compare with the next one *)

type local = {
  id : int;
  prev : value list option;  (** previous full collect, oldest-first *)
  phase : phase;
  result : Iset.t option;
}

let name = "named-snapshot(baseline)"
let processors c = c.n
let registers c = c.n
let register_init _ = None
let init _ id = { id; prev = None; phase = Announce; result = None }

let halted _ l = l.result <> None

let next c l =
  match l.result with
  | Some _ -> None
  | None -> (
      match l.phase with
      | Announce ->
          Some (Anonmem.Protocol.Write (l.id - 1, Some { id = l.id; seq = 1 }))
      | Collecting { pos; _ } -> Some (Anonmem.Protocol.Read pos)
      | Compare _ ->
          (* Never reached: Compare is resolved eagerly in [apply_read]. *)
          Some (Anonmem.Protocol.Read (c.n - 1)))

let start_collect = Collecting { pos = 0; acc = [] }

let apply_write _ l =
  match l.phase with
  | Announce -> { l with phase = start_collect }
  | Collecting _ | Compare _ ->
      invalid_arg "Named_snapshot.apply_write: not announcing"

let ids_of_collect l (collect : value list) =
  List.fold_left
    (fun acc (slot : value) ->
      match slot with None -> acc | Some { id; _ } -> Iset.add id acc)
    (Iset.singleton l.id) collect

let apply_read c l ~reg v =
  match l.phase with
  | Announce | Compare _ -> invalid_arg "Named_snapshot.apply_read: not collecting"
  | Collecting { pos; acc } ->
      if reg <> pos then invalid_arg "Named_snapshot.apply_read: wrong register";
      let acc = v :: acc in
      if pos + 1 < c.n then { l with phase = Collecting { pos = pos + 1; acc } }
      else
        let collect = List.rev acc in
        let stable =
          match l.prev with Some p -> p = collect | None -> false
        in
        if stable then
          { l with result = Some (ids_of_collect l collect); phase = start_collect }
        else { l with prev = Some collect; phase = start_collect }

let output _ l = l.result

(* No flat machine yet: the boxed paths run this protocol. *)
let flat _ ~phys:_ ~inputs:_ ~registers:_ ~locals:_ = None

let pp_value _ ppf = function
  | None -> Fmt.string ppf "-"
  | Some { id; seq } -> Fmt.pf ppf "%d#%d" id seq

let pp_local _ ppf l =
  Fmt.pf ppf "{id=%d %a}" l.id
    (Fmt.option ~none:(Fmt.any "collecting") Iset.pp_set)
    l.result

let pp_output _ = Iset.pp_set
