test/test_snapshot.ml: Alcotest Algorithms Analysis Anonmem Array Core Fmt Fun Iset List Option Printf QCheck QCheck_alcotest Repro_util Rng String Tasks
