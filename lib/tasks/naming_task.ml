(** The desanonymization (naming) task: distinct names on top of anonymous
    registers, plus the named-memory guarantee the ledger substrate
    provides.

    Checked properties, over a (possibly partial) outcome of
    {!Algorithms.Naming}:

    - {e name distinctness}: processors of different groups never output
      the same name.  (Group identifiers play the role of identities; two
      processors of the same group are anonymous clones running a
      symmetric protocol, so — as with the paper's group renaming — they
      may legitimately converge on the same name.  When every identity is
      distinct this is full distinctness.)
    - {e own-cell inclusion}: a processor that acquired name [k] finds the
      cell [(k, its identity)] in its own halt-time view — it read back
      its single-writer cell.
    - {e view containment}: halt-time views are pairwise
      subset-comparable.  Critical sections are serialized and each floods
      its ledger before releasing the lock, so the views must form a
      chain — the same containment guarantee the classic named
      single-writer collect ({!Algorithms.Named_snapshot}) gives, now
      running above the naming layer.

    The checks are vacuous on executions where distinct processors share
    an identity only for distinctness (see above); inclusion and
    containment are identity-agnostic. *)

type output = Algorithms.Naming.output

let check_distinct (t : output Outcome.t) =
  let n = Outcome.processors t in
  let rec go p q =
    if p >= n then Ok ()
    else if q >= n then go (p + 1) (p + 2)
    else
      match (t.Outcome.outputs.(p), t.Outcome.outputs.(q)) with
      | Some op, Some oq
        when op.Algorithms.Naming.name = oq.Algorithms.Naming.name
             && Outcome.group_of t p <> Outcome.group_of t q ->
          Task_failure.failf ~processors:[ p; q ]
            ~groups:[ Outcome.group_of t p; Outcome.group_of t q ]
            Task_failure.Name_uniqueness
            "p%d (id %d) and p%d (id %d) both acquired name %d" (p + 1)
            (Outcome.group_of t p) (q + 1) (Outcome.group_of t q)
            op.Algorithms.Naming.name
      | _ -> go p (q + 1)
  in
  go 0 1

let check_own_cell (t : output Outcome.t) =
  let n = Outcome.processors t in
  let rec go p =
    if p >= n then Ok ()
    else
      match t.Outcome.outputs.(p) with
      | Some o ->
          let id = Outcome.group_of t p in
          let mine =
            List.exists
              (fun (c : Algorithms.Named_memory.cell) ->
                c.name = o.Algorithms.Naming.name && c.owner = id)
              o.Algorithms.Naming.view
          in
          if mine then go (p + 1)
          else
            Task_failure.failf ~processors:[ p ] ~groups:[ id ]
              Task_failure.Validity
              "p%d acquired name %d but its view misses its own cell" (p + 1)
              o.Algorithms.Naming.name
      | None -> go (p + 1)
  in
  go 0

let check_containment (t : output Outcome.t) =
  let n = Outcome.processors t in
  let rec go p q =
    if p >= n then Ok ()
    else if q >= n then go (p + 1) (p + 2)
    else
      match (t.Outcome.outputs.(p), t.Outcome.outputs.(q)) with
      | Some op, Some oq ->
          let vp = op.Algorithms.Naming.view
          and vq = oq.Algorithms.Naming.view in
          if Algorithms.Named_memory.subset vp vq
             || Algorithms.Named_memory.subset vq vp
          then go p (q + 1)
          else
            Task_failure.failf ~processors:[ p; q ]
              ~groups:[ Outcome.group_of t p; Outcome.group_of t q ]
              Task_failure.Containment
              "p%d's and p%d's named-memory views are incomparable" (p + 1)
              (q + 1)
      | _ -> go p (q + 1)
  in
  go 0 1

let check (t : output Outcome.t) =
  match check_distinct t with
  | Error _ as e -> e
  | Ok () -> (
      match check_own_cell t with
      | Error _ as e -> e
      | Ok () -> check_containment t)
