(** Canonical finite sets: signature and a strictly-sorted-list
    implementation.

    Unlike [Stdlib.Set], two equal sets always have the same in-memory
    representation, so the polymorphic structural equality, comparison and
    hashing functions agree with set equality.  This property is load-bearing
    for the model checker, which hashes whole system states containing views
    (see {!Modelcheck}).  {!Make} represents sets as strictly-sorted lists —
    linear-time operations, the right trade-off for exotic element types;
    integer sets use the bitset-backed {!Iset}, which satisfies the same
    signature (and the same canonical-representation contract) with
    single-word operations. *)

module type ORDERED = sig
  type t

  val compare : t -> t -> int
end

module type S = sig
  type elt

  (** The representation is abstract, but every implementation must be
      {e canonical}: equal sets are structurally equal ([=]) and hash
      identically ([Hashtbl.hash]).  Traversals ([fold], [iter],
      [elements], …) visit elements in strictly increasing order. *)
  type t

  val empty : t
  val is_empty : t -> bool
  val singleton : elt -> t
  val mem : elt -> t -> bool
  val add : elt -> t -> t
  val remove : elt -> t -> t
  val union : t -> t -> t
  val inter : t -> t -> t
  val diff : t -> t -> t

  val subset : t -> t -> bool
  (** [subset a b] is true iff [a] is a (non-strict) subset of [b]. *)

  val strict_subset : t -> t -> bool

  val comparable : t -> t -> bool
  (** [comparable a b] is true iff [subset a b || subset b a] — the
      containment relation at the heart of the snapshot task. *)

  val equal : t -> t -> bool
  val compare : t -> t -> int
  val cardinal : t -> int
  val elements : t -> elt list
  val of_list : elt list -> t
  val fold : (elt -> 'a -> 'a) -> t -> 'a -> 'a
  val iter : (elt -> unit) -> t -> unit
  val for_all : (elt -> bool) -> t -> bool
  val exists : (elt -> bool) -> t -> bool
  val filter : (elt -> bool) -> t -> t
  val map : (elt -> elt) -> t -> t
  val min_elt_opt : t -> elt option
  val max_elt_opt : t -> elt option
  val choose_opt : t -> elt option

  val rank : elt -> t -> int option
  (** [rank x s] is the 1-based position of [x] in the sorted order of [s],
      or [None] when [x] is not a member.  Used by the Bar-Noy–Dolev renaming
      rule (Figure 4 of the paper). *)

  val union_all : t list -> t
  val pp : elt Fmt.t -> t Fmt.t
end

module Make (Ord : ORDERED) : S with type elt = Ord.t
