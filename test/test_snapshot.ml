(* Tests of the Figure-3 wait-free snapshot algorithm: termination under
   fair and adversarial-ish schedules, validity and containment of outputs,
   level mechanics, solo executions, and property tests over random seeds,
   wirings and group assignments. *)

open Repro_util
module Snap = Algorithms.Snapshot
module Sys = Anonmem.System.Make (Snap)
module Scheduler = Anonmem.Scheduler

let iset = Alcotest.testable (Fmt.of_to_string Iset.to_string) Iset.equal

let run_to_completion ?(max_steps = 2_000_000) ~wiring ~inputs ~sched () =
  let n = Array.length inputs in
  let cfg = Snap.standard ~n in
  let st = Sys.init ~cfg ~wiring ~inputs in
  let stop, steps = Sys.run ~max_steps ~sched st in
  (cfg, st, stop, steps)

let outputs_exn st =
  Array.map (function Some o -> o | None -> Alcotest.fail "missing output")
    (Sys.outputs st)

let check_task inputs st =
  let outcome = Tasks.Outcome.make ~inputs ~outputs:(Sys.outputs st) () in
  (match Tasks.Snapshot_task.check_group_solution outcome with
  | Ok () -> ()
  | Error e ->
      Alcotest.fail
        ("group solution invalid: " ^ Tasks.Task_failure.to_string e));
  match Tasks.Snapshot_task.check_strong outcome with
  | Ok () -> ()
  | Error e ->
      Alcotest.fail
        ("strong containment invalid: " ^ Tasks.Task_failure.to_string e)

let test_solo_terminates_with_singleton () =
  let inputs = [| 7; 8; 9 |] in
  let wiring = Anonmem.Wiring.identity ~n:3 ~m:3 in
  let _, st, stop, _ =
    run_to_completion ~wiring ~inputs ~sched:(Scheduler.solo 0) ()
  in
  Alcotest.(check bool) "p0 halted (scheduler done)" true
    (stop = Sys.Scheduler_done && Sys.is_halted st 0);
  Alcotest.check iset "solo snapshot is own singleton" (Iset.of_list [ 7 ])
    (Option.get (Sys.output st 0));
  Alcotest.(check bool) "others still running" true
    ((not (Sys.is_halted st 1)) && not (Sys.is_halted st 2))

let test_round_robin_terminates_all () =
  let inputs = [| 1; 2; 3; 4 |] in
  let wiring = Anonmem.Wiring.random (Rng.create ~seed:11) ~n:4 ~m:4 in
  let _, st, stop, _ =
    run_to_completion ~wiring ~inputs ~sched:(Scheduler.round_robin ()) ()
  in
  Alcotest.(check bool) "all halted" true (stop = Sys.All_halted);
  check_task inputs st

let test_outputs_contain_own_and_only_participants () =
  let inputs = [| 5; 6; 7 |] in
  for seed = 0 to 30 do
    let wiring = Anonmem.Wiring.random (Rng.create ~seed) ~n:3 ~m:3 in
    let _, st, stop, _ =
      run_to_completion ~wiring ~inputs
        ~sched:(Scheduler.random (Rng.create ~seed:(seed + 1000)))
        ()
    in
    Alcotest.(check bool) "halted" true (stop = Sys.All_halted);
    let outs = outputs_exn st in
    Array.iteri
      (fun p o ->
        Alcotest.(check bool) "own input present" true (Iset.mem inputs.(p) o);
        Alcotest.(check bool) "only participants" true
          (Iset.subset o (Iset.of_list [ 5; 6; 7 ])))
      outs;
    check_task inputs st
  done

let test_containment_across_many_seeds () =
  (* The strong Section-5.3.2 property across 100 random runs of varying
     sizes, with group inputs. *)
  for seed = 0 to 99 do
    let n = 2 + (seed mod 6) in
    let groups = 1 + (seed mod n) in
    let inputs = Array.init n (fun i -> 1 + (i mod groups)) in
    match Core.solve_snapshot ~seed ~inputs () with
    | Ok _ -> () (* solve_snapshot validates internally *)
    | Error e -> Alcotest.fail (Printf.sprintf "seed %d: %s" seed e)
  done

let test_wait_free_under_hostile_priority () =
  (* A scheduler that starves nobody completely but heavily favours one
     processor must still let everyone terminate: run p0 900 steps out of
     each 1000. *)
  let inputs = [| 1; 2; 3 |] in
  let wiring = Anonmem.Wiring.random (Rng.create ~seed:5) ~n:3 ~m:3 in
  let rng = Rng.create ~seed:6 in
  let sched =
    Scheduler.fn ~name:"skewed" (fun ~time:_ ~enabled ->
        let favoured = List.filter (( = ) 0) enabled in
        if favoured <> [] && Rng.int rng 10 < 9 then Some 0
        else Some (Rng.pick rng enabled))
  in
  let _, st, stop, _ = run_to_completion ~wiring ~inputs ~sched () in
  Alcotest.(check bool) "all halted despite skew" true (stop = Sys.All_halted);
  check_task inputs st

let test_m_less_than_n_still_terminates_fair () =
  (* With fewer registers than processors the algorithm is no longer a
     correct snapshot in all executions (Section 2.1), but under a fair
     scheduler it still terminates. *)
  let n = 4 and m = 3 in
  let cfg = Snap.cfg ~n ~m in
  let wiring = Anonmem.Wiring.random (Rng.create ~seed:2) ~n ~m in
  let st = Sys.init ~cfg ~wiring ~inputs:[| 1; 2; 3; 4 |] in
  let stop, _ = Sys.run ~max_steps:2_000_000 ~sched:(Scheduler.round_robin ()) st in
  Alcotest.(check bool) "halted" true (stop = Sys.All_halted)

let test_levels_bounded () =
  let inputs = [| 1; 2; 3 |] in
  let cfg = Snap.standard ~n:3 in
  let wiring = Anonmem.Wiring.random (Rng.create ~seed:8) ~n:3 ~m:3 in
  let st = Sys.init ~cfg ~wiring ~inputs in
  let sched = Scheduler.random (Rng.create ~seed:9) in
  let _ =
    Sys.run ~max_steps:1_000_000 ~sched
      ~on_event:(fun ~time:_ _ ->
        Array.iter
          (fun l ->
            let lvl = Snap.level_of_local l in
            Alcotest.(check bool) "0 <= level <= n" true (lvl >= 0 && lvl <= 3))
          st.Sys.locals)
      st
  in
  ()

let test_register_levels_below_n () =
  (* A processor at level n halts without writing, so registers only ever
     hold levels < n. *)
  let inputs = [| 1; 2; 3 |] in
  let cfg = Snap.standard ~n:3 in
  let wiring = Anonmem.Wiring.random (Rng.create ~seed:21) ~n:3 ~m:3 in
  let st = Sys.init ~cfg ~wiring ~inputs in
  let sched = Scheduler.random (Rng.create ~seed:22) in
  let _ =
    Sys.run ~max_steps:1_000_000 ~sched
      ~on_event:(fun ~time:_ -> function
        | Sys.Write_ev { value; _ } ->
            Alcotest.(check bool) "written level < n" true (value.Snap.level < 3)
        | Sys.Read_ev _ -> ())
      st
  in
  ()

let test_same_group_processors () =
  (* All processors share one input: every snapshot is the singleton. *)
  let inputs = [| 4; 4; 4 |] in
  let wiring = Anonmem.Wiring.random (Rng.create ~seed:13) ~n:3 ~m:3 in
  let _, st, stop, _ =
    run_to_completion ~wiring ~inputs
      ~sched:(Scheduler.random (Rng.create ~seed:14))
      ()
  in
  Alcotest.(check bool) "halted" true (stop = Sys.All_halted);
  Array.iter
    (fun o -> Alcotest.check iset "singleton {4}" (Iset.of_list [ 4 ]) o)
    (outputs_exn st)

let test_two_processors_one_register_is_invalid_config () =
  Alcotest.check_raises "m=0 rejected"
    (Invalid_argument "Snapshot_core.cfg: need at least 1 register") (fun () ->
      ignore (Snap.cfg ~n:2 ~m:0))

let test_steps_grow_with_n () =
  (* Coarse shape check: median termination steps increase with n. *)
  let median n =
    let steps =
      List.filter_map
        (fun seed ->
          match
            Core.solve_snapshot ~seed ~inputs:(Array.init n (fun i -> i + 1)) ()
          with
          | Ok r -> Some r.Core.steps
          | Error _ -> None)
        (List.init 11 Fun.id)
    in
    List.nth (List.sort compare steps) (List.length steps / 2)
  in
  let m2 = median 2 and m5 = median 5 and m8 = median 8 in
  Alcotest.(check bool) "monotone-ish growth" true (m2 < m5 && m5 < m8)

let test_sweep_produces_growing_medians () =
  let rows = Analysis.Sweep.snapshot_steps ~seeds:7 ~ns:[ 2; 5; 8 ] () in
  (match rows with
  | [ a; b; c ] ->
      Alcotest.(check bool) "all runs completed" true
        (a.Analysis.Sweep.stats.Repro_util.Stats.count = 7
        && b.Analysis.Sweep.stats.Repro_util.Stats.count = 7
        && c.Analysis.Sweep.stats.Repro_util.Stats.count = 7);
      Alcotest.(check bool) "medians grow" true
        (a.Analysis.Sweep.stats.Repro_util.Stats.median
         < b.Analysis.Sweep.stats.Repro_util.Stats.median
        && b.Analysis.Sweep.stats.Repro_util.Stats.median
           < c.Analysis.Sweep.stats.Repro_util.Stats.median)
  | _ -> Alcotest.fail "three rows expected");
  let rendered = Analysis.Sweep.to_table ~param_name:"n" rows in
  Alcotest.(check bool) "table renders" true (String.length rendered > 50)

let test_scheduler_sensitivity_rows () =
  let rows = Analysis.Sweep.scheduler_sensitivity ~seeds:5 ~n:4 () in
  Alcotest.(check int) "two schedulers" 2 (List.length rows);
  List.iter
    (fun (_, stats) ->
      Alcotest.(check int) "all runs done" 5 stats.Repro_util.Stats.count)
    rows

(* Property: for random wiring/schedule/groups, solve_snapshot validates. *)
let prop_snapshot_valid =
  QCheck.Test.make ~name:"snapshot task solved for random configs" ~count:60
    QCheck.(pair (int_range 2 7) (int_bound 10_000))
    (fun (n, seed) ->
      let groups = 1 + (seed mod n) in
      let inputs = Array.init n (fun i -> 1 + ((i + seed) mod groups)) in
      match Core.solve_snapshot ~seed ~inputs () with
      | Ok _ -> true
      | Error _ -> false)

let () =
  Alcotest.run "snapshot"
    [
      ( "figure3",
        [
          Alcotest.test_case "solo terminates with singleton" `Quick
            test_solo_terminates_with_singleton;
          Alcotest.test_case "round-robin terminates all" `Quick
            test_round_robin_terminates_all;
          Alcotest.test_case "validity of outputs" `Quick
            test_outputs_contain_own_and_only_participants;
          Alcotest.test_case "containment across 100 seeds" `Slow
            test_containment_across_many_seeds;
          Alcotest.test_case "wait-free under skewed scheduler" `Quick
            test_wait_free_under_hostile_priority;
          Alcotest.test_case "m<n terminates under fairness" `Quick
            test_m_less_than_n_still_terminates_fair;
          Alcotest.test_case "levels bounded by n" `Quick test_levels_bounded;
          Alcotest.test_case "registers hold levels < n" `Quick
            test_register_levels_below_n;
          Alcotest.test_case "single group" `Quick test_same_group_processors;
          Alcotest.test_case "config validation" `Quick
            test_two_processors_one_register_is_invalid_config;
          Alcotest.test_case "steps grow with n" `Slow test_steps_grow_with_n;
          Alcotest.test_case "sweep: growing medians" `Quick
            test_sweep_produces_growing_medians;
          Alcotest.test_case "sweep: scheduler sensitivity" `Quick
            test_scheduler_sensitivity_rows;
        ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_snapshot_valid ] );
    ]
