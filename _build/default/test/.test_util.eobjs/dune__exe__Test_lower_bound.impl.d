test/test_lower_bound.ml: Alcotest Analysis Fmt Iset List Printf Repro_util String
