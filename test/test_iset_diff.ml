(* Differential test of the bitset-backed [Iset] against the sorted-list
   implementation ([Sorted_set.Make (Int)]) it replaced, which remains the
   oracle for the [Sorted_set.S] contract.  Every operation of the
   signature is compared on element lists that straddle the bitset window
   boundary (elements near [Sys.int_size - 1], negatives, large values),
   so both representations ([Bits]/[Wide]) and every cross-representation
   case are exercised.  The canonical-representation contract — equal sets
   are structurally equal and hash identically, whatever sequence of
   operations built them — is tested explicitly: the model checker's
   state hashing relies on it. *)

module I = Repro_util.Iset
module O = Repro_util.Sorted_set.Make (Int)

(* The bitset window is [0, small_limit). *)
let small_limit = Sys.int_size - 1

let elt_gen =
  QCheck.Gen.(
    frequency
      [
        (4, int_range 0 8);
        (* Straddles the window boundary. *)
        (3, int_range (small_limit - 4) (small_limit + 4));
        (1, int_range (-3) (-1));
        (1, oneofl [ 100; 4096; max_int / 2 ]);
      ])

let elts = QCheck.make ~print:QCheck.Print.(list int) QCheck.Gen.(list_size (int_bound 12) elt_gen)

let pair_elts =
  QCheck.make
    ~print:QCheck.Print.(pair (list int) (list int))
    QCheck.Gen.(pair (list_size (int_bound 12) elt_gen) (list_size (int_bound 12) elt_gen))

let both l = (I.of_list l, O.of_list l)
let agree i o = I.elements i = O.elements o
let sign c = compare c 0

let count = 2_000

let prop_of_list =
  QCheck.Test.make ~name:"of_list/elements agree with oracle" ~count elts
    (fun l ->
      let i, o = both l in
      agree i o && I.cardinal i = O.cardinal o && I.is_empty i = O.is_empty o)

let prop_add_remove =
  QCheck.Test.make ~name:"add/remove agree with oracle" ~count
    (QCheck.pair elts (QCheck.make ~print:string_of_int elt_gen))
    (fun (l, x) ->
      let i, o = both l in
      agree (I.add x i) (O.add x o)
      && agree (I.remove x i) (O.remove x o)
      && I.mem x i = O.mem x o)

let prop_binops =
  QCheck.Test.make ~name:"union/inter/diff agree with oracle" ~count pair_elts
    (fun (la, lb) ->
      let ia, oa = both la and ib, ob = both lb in
      agree (I.union ia ib) (O.union oa ob)
      && agree (I.inter ia ib) (O.inter oa ob)
      && agree (I.diff ia ib) (O.diff oa ob))

let prop_predicates =
  QCheck.Test.make ~name:"subset/strict_subset/comparable/equal/compare agree"
    ~count pair_elts (fun (la, lb) ->
      let ia, oa = both la and ib, ob = both lb in
      I.subset ia ib = O.subset oa ob
      && I.strict_subset ia ib = O.strict_subset oa ob
      && I.comparable ia ib = O.comparable oa ob
      && I.equal ia ib = O.equal oa ob
      && sign (I.compare ia ib) = sign (O.compare oa ob))

let prop_traversals =
  QCheck.Test.make ~name:"fold/iter/filter/map/rank/min/max agree" ~count elts
    (fun l ->
      let i, o = both l in
      let even x = x land 1 = 0 in
      I.fold (fun x acc -> x :: acc) i [] = O.fold (fun x acc -> x :: acc) o []
      && (let acc = ref [] in
          I.iter (fun x -> acc := x :: !acc) i;
          !acc = List.rev (I.elements i))
      && agree (I.filter even i) (O.filter even o)
      && agree (I.map (fun x -> x * 2) i) (O.map (fun x -> x * 2) o)
      (* Non-injective map: results must still be canonical sets. *)
      && agree (I.map (fun x -> x / 3) i) (O.map (fun x -> x / 3) o)
      && I.for_all even i = O.for_all even o
      && I.exists even i = O.exists even o
      && I.min_elt_opt i = O.min_elt_opt o
      && I.max_elt_opt i = O.max_elt_opt o
      && I.choose_opt i = O.choose_opt o
      && List.for_all (fun x -> I.rank x i = O.rank x o) (-1 :: 0 :: 62 :: l))

let prop_union_all =
  QCheck.Test.make ~name:"union_all agrees with oracle" ~count:500
    (QCheck.make
       ~print:QCheck.Print.(list (list int))
       QCheck.Gen.(list_size (int_bound 5) (list_size (int_bound 8) elt_gen)))
    (fun ls ->
      agree (I.union_all (List.map I.of_list ls)) (O.union_all (List.map O.of_list ls)))

(* The canonical-representation contract.  Two ways of building the same
   set — [of_list], element-by-element insertion in reverse order, and a
   detour through an extra element that is removed again (which forces a
   [Wide]-to-[Bits] renormalization when the extra element is the only
   out-of-window one) — must produce structurally identical values, and
   [=]/[Hashtbl.hash] must agree with set equality. *)
let prop_canonical =
  QCheck.Test.make ~name:"canonical: = and Hashtbl.hash agree with set equality"
    ~count
    (QCheck.pair elts (QCheck.make ~print:string_of_int elt_gen))
    (fun (l, y) ->
      let s1 = I.of_list l in
      let s2 = List.fold_left (fun s x -> I.add x s) I.empty (List.rev l) in
      let s3 = if I.mem y s1 then s1 else I.remove y (I.add y s1) in
      s1 = s2 && Hashtbl.hash s1 = Hashtbl.hash s2 && s1 = s3
      && Hashtbl.hash s1 = Hashtbl.hash s3
      && I.equal s1 s2)

let prop_bits_roundtrip =
  QCheck.Test.make ~name:"to_bits/of_bits roundtrip and window errors" ~count
    elts (fun l ->
      let i = I.of_list l in
      if List.for_all (fun x -> 0 <= x && x < small_limit) l then
        let bits = I.to_bits i in
        I.of_bits bits = i
        && bits = List.fold_left (fun b x -> b lor (1 lsl x)) 0 l
      else
        match I.to_bits i with
        | exception Invalid_argument _ -> true
        | _ -> false)

let prop_of_range =
  QCheck.Test.make ~name:"of_range agrees with oracle" ~count
    (QCheck.make
       ~print:QCheck.Print.(pair int int)
       QCheck.Gen.(pair (int_range (-2) 70) (int_range (-2) 70)))
    (fun (lo, hi) ->
      agree (I.of_range lo hi)
        (O.of_list (if lo > hi then [] else List.init (hi - lo + 1) (fun k -> lo + k))))

(* Deterministic regressions at the exact window boundary: crossing it in
   either direction must land on the canonical representation, so sets
   rebuilt below the boundary compare structurally equal to ones that
   never left it. *)
let test_boundary () =
  let last_small = small_limit - 1 in
  let s = I.of_list [ 0; last_small ] in
  let via_wide = I.remove small_limit (I.add small_limit s) in
  Alcotest.(check bool) "renormalized to Bits" true (via_wide = s);
  Alcotest.(check bool)
    "hash equal after renormalization" true
    (Hashtbl.hash via_wide = Hashtbl.hash s);
  let wide = I.add small_limit s in
  Alcotest.(check (list int))
    "wide elements" [ 0; last_small; small_limit ] (I.elements wide);
  Alcotest.(check bool) "subset across reps" true (I.subset s wide);
  Alcotest.(check bool) "strict across reps" true (I.strict_subset s wide);
  Alcotest.(check bool)
    "diff back to Bits" true
    (I.diff wide (I.singleton small_limit) = s);
  Alcotest.(check bool)
    "inter back to Bits" true
    (I.inter wide s = s);
  Alcotest.check_raises "to_bits out of window"
    (Invalid_argument "Iset.to_bits: element out of range") (fun () ->
      ignore (I.to_bits wide))

let () =
  Alcotest.run "iset_diff"
    [
      ( "differential vs sorted-list oracle",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_of_list;
            prop_add_remove;
            prop_binops;
            prop_predicates;
            prop_traversals;
            prop_union_all;
            prop_canonical;
            prop_bits_roundtrip;
            prop_of_range;
          ] );
      ("window boundary", [ Alcotest.test_case "boundary regressions" `Quick test_boundary ]);
    ]
