(** Randomized search for existential claims about executions.

    Two claims of the paper are existential: (i) the Figure-3 algorithm
    does {e not} implement atomic memory snapshots — some execution makes a
    processor return a set of inputs that the memory never contained
    (Section 8); (ii) naive termination rules admit violating executions.
    For such claims a witness execution is a complete proof; this module
    hunts for witnesses by sampling random wirings and random fair
    schedules from a deterministic seed, so every witness found is
    replayable. *)

open Repro_util

module Search (P : Anonmem.Protocol.S) = struct
  module Sys = Anonmem.System.Make (P)

  type run = {
    seed : int;
    wiring : Anonmem.Wiring.t;
    steps : int;
    state : Sys.state;
  }

  (** Run one random execution to quiescence ([None] if some processor had
      not terminated after [max_steps]). *)
  let random_run ~cfg ~inputs ~max_steps seed =
    let rng = Rng.create ~seed in
    let wiring =
      Anonmem.Wiring.random rng ~n:(P.processors cfg) ~m:(P.registers cfg)
    in
    let state = Sys.init ~cfg ~wiring ~inputs in
    let sched = Anonmem.Scheduler.random (Rng.split rng) in
    let stop, steps = Sys.run ~max_steps ~sched state in
    match stop with
    | Sys.All_halted -> Some { seed; wiring; steps; state }
    | Sys.Scheduler_done | Sys.Max_steps -> None

  type nonatomic_witness = {
    witness_run : run;
    culprit : int;  (** processor whose output was never in memory *)
    culprit_output : Iset.t;
    memory_sets_seen : Iset.t list;
        (** every distinct value of "set of inputs present in memory",
            chronological *)
  }

  (** Search for an execution in which some processor outputs a set of
      inputs [I] such that at no point in time the set of inputs present in
      memory (the union of all register views) equalled [I] — the
      non-atomicity witness of Section 8.  Tries seeds [0 .. attempts-1]
      (offset by [seed_base]). *)
  let find_nonatomic ?(seed_base = 0) ?(attempts = 1_000) ?(max_steps = 20_000)
      ~cfg ~inputs ~memory_set ~output_set () =
    let run_one seed =
      let rng = Rng.create ~seed in
      let wiring =
        Anonmem.Wiring.random rng ~n:(P.processors cfg) ~m:(P.registers cfg)
      in
      let state = Sys.init ~cfg ~wiring ~inputs in
      let sched = Anonmem.Scheduler.random (Rng.split rng) in
      let seen = ref [ memory_set state.Sys.registers ] in
      let record () =
        let s = memory_set state.Sys.registers in
        if not (List.exists (Iset.equal s) !seen) then seen := s :: !seen
      in
      let rec drive steps =
        if steps >= max_steps then None
        else
          match Sys.enabled state with
          | [] -> Some steps
          | en -> (
              match Anonmem.Scheduler.pick sched ~time:steps ~enabled:en with
              | None -> None
              | Some p ->
                  (match Sys.step_in_place state p with
                  | Sys.Write_ev _ -> record ()
                  | Sys.Read_ev _ -> ());
                  drive (steps + 1))
      in
      match drive 0 with
      | None -> None
      | Some steps ->
          let outs = Sys.outputs state in
          let memory_sets_seen = List.rev !seen in
          let culprit = ref None in
          Array.iteri
            (fun p -> function
              | Some o when !culprit = None ->
                  let os = output_set o in
                  if not (List.exists (Iset.equal os) memory_sets_seen) then
                    culprit := Some (p, os)
              | _ -> ())
            outs;
          Option.map
            (fun (culprit, culprit_output) ->
              {
                witness_run = { seed; wiring; steps; state };
                culprit;
                culprit_output;
                memory_sets_seen;
              })
            !culprit
    in
    let rec go seed =
      if seed >= seed_base + attempts then None
      else match run_one seed with Some w -> Some w | None -> go (seed + 1)
    in
    go seed_base

  (** Search random executions for one whose final outcome fails [check];
      returns the failing run and the error message.  Used to hunt for task
      violations of baseline protocols. *)
  let find_outcome_violation ?(seed_base = 0) ?(attempts = 1_000)
      ?(max_steps = 20_000) ~cfg ~inputs ~group_of_input ~to_task_output ~check
      () =
    let rec go seed =
      if seed >= seed_base + attempts then None
      else
        match random_run ~cfg ~inputs ~max_steps seed with
        | None -> go (seed + 1)
        | Some run -> (
            let outcome =
              Tasks.Outcome.make
                ~inputs:(Array.map group_of_input inputs)
                ~outputs:
                  (Array.map (Option.map to_task_output) (Sys.outputs run.state))
                ()
            in
            match check outcome with
            | Ok () -> go (seed + 1)
            | Error message -> Some (run, message))
    in
    go seed_base
end

(** Replay validation of counterexample traces: a trace is only a proof if
    it is a real execution, i.e. every listed processor is enabled when it
    moves and the steps land where the checker said they would.  The
    differential suite replays every counterexample produced by the
    sequential, reduced and parallel engines through this module. *)
module Replay (P : Explorer.CHECKABLE) = struct
  module E = Explorer.Make (P)

  (** Replay a pid path from the initial state, returning the state after
      each step.  Raises [Invalid_argument] if some pid is halted when its
      turn comes — i.e. succeeds only on genuine executions. *)
  let run ~cfg ~wiring ~inputs path =
    let st = ref (E.init_state ~cfg ~inputs) in
    List.map
      (fun p ->
        st := E.successor cfg wiring !st p;
        (p, !st))
      path

  (** Final state of the replayed path. *)
  let final ~cfg ~wiring ~inputs path =
    List.fold_left
      (fun st p -> E.successor cfg wiring st p)
      (E.init_state ~cfg ~inputs)
      path
end

module Exhaustive (P : Explorer.CHECKABLE) = struct
  type witness = {
    wiring : Anonmem.Wiring.t;
    culprit : int;
    target : Iset.t;  (** the returned set the memory never contained *)
    trace : (int * Iset.t) list;
        (** processor steps from the initial state, with the memory content
            set after each step *)
    states_explored : int;
  }

  (** Exhaustive witness search for one candidate output set [target]:
      "processor returns [target] although the memory never contained
      exactly [target]" is, for a fixed wiring, plain reachability in the
      sub-state-space of states whose memory content set differs from
      [target] (the path condition is a state predicate, so no history
      augmentation is needed).  A hit is a complete proof: freeze the
      execution at the witness state — its memory set differs from
      [target], and no processor moving means it differs forever.
      Searches depth-first (witness executions are long, structured
      interleavings that DFS reaches quickly and with little memory);
      tries each wiring in [wirings] until a witness appears. *)
  let find_nonatomic_exhaustive ?(max_states = 60_000_000) ?progress ~cfg
      ~inputs ~memory_set ~output_set ~target ~wirings () =
    let module E = Explorer.Make (P) in
    let rec go = function
      | [] -> None
      | wiring :: rest -> (
          let invariant (st : E.state) =
            let hit =
              Array.exists
                (fun l ->
                  match P.output cfg l with
                  | Some o -> Iset.equal (output_set o) target
                  | None -> false)
                st.E.locals
              && not (Iset.equal (memory_set st.E.registers) target)
            in
            if hit then Error "witness" else Ok ()
          in
          let stop_expansion (st : E.state) =
            Iset.equal (memory_set st.E.registers) target
          in
          match
            E.check_exhaustive ~max_states ?progress ~invariant ~stop_expansion
              ~cfg ~wiring ~inputs ()
          with
          | E.Dfs_invariant_failed { state; path; stats; _ } ->
              let culprit =
                let rec find p =
                  if p >= Array.length state.E.locals then 0
                  else
                    match P.output cfg state.E.locals.(p) with
                    | Some o when Iset.equal (output_set o) target -> p
                    | _ -> find (p + 1)
                in
                find 0
              in
              (* Replay the pid path from the initial state to recover the
                 memory content set after every step. *)
              let trace =
                let st = ref (E.init_state ~cfg ~inputs) in
                List.map
                  (fun p ->
                    st := E.successor cfg wiring !st p;
                    (p, memory_set (!st).E.registers))
                  path
              in
              Some
                {
                  wiring;
                  culprit;
                  target;
                  trace;
                  states_explored = stats.E.dfs_states;
                }
          | E.Dfs_ok _ | E.Dfs_cycle _ | E.Dfs_state_limit _
          | E.Dfs_exhausted _ ->
              go rest)
    in
    go wirings
end
