lib/algorithms/double_collect.ml: Anonmem Fmt Iset Repro_util
