(* Tests of the real-parallelism runtime: the same protocols on OCaml 5
   domains with Atomic registers.  These validate the task properties of
   outputs produced under genuine hardware interleavings. *)

open Repro_util

let test_parallel_snapshot_valid () =
  for seed = 0 to 9 do
    let inputs = [| 1; 2; 3; 4 |] in
    match Runtime_shm.parallel_snapshot ~seed ~inputs () with
    | Ok r ->
        Array.iteri
          (fun p -> function
            | Some o ->
                Alcotest.(check bool) "own input present" true
                  (Iset.mem inputs.(p) o)
            | None -> Alcotest.fail "wait-free run must produce all outputs")
          r.Runtime_shm.Snapshot_run.outputs
    | Error e -> Alcotest.fail (Printf.sprintf "seed %d: %s" seed e)
  done

let test_parallel_snapshot_groups () =
  let inputs = [| 7; 7; 8; 8; 9 |] in
  match Runtime_shm.parallel_snapshot ~seed:3 ~inputs () with
  | Ok _ -> () (* containment + group checks run inside *)
  | Error e -> Alcotest.fail e

let test_parallel_snapshot_records_steps () =
  match Runtime_shm.parallel_snapshot ~seed:1 ~inputs:[| 1; 2; 3 |] () with
  | Ok r ->
      Array.iter
        (fun s ->
          (* at least one write and one full scan *)
          Alcotest.(check bool) "worked" true (s >= 4))
        r.Runtime_shm.Snapshot_run.steps
  | Error e -> Alcotest.fail e

let test_parallel_renaming_valid () =
  let inputs = [| 1; 2; 3; 4 |] in
  let cfg = Algorithms.Renaming.standard ~n:4 in
  match Runtime_shm.Renaming_run.run ~seed:5 ~cfg ~inputs () with
  | Ok r ->
      let outcome =
        Tasks.Outcome.make ~inputs
          ~outputs:
            (Array.map
               (Option.map (fun (o : Algorithms.Renaming.output) -> o.name_out))
               r.Runtime_shm.Renaming_run.outputs)
          ()
      in
      (match Tasks.Renaming_task.check outcome with
      | Ok () -> ()
      | Error e -> Alcotest.fail (Tasks.Task_failure.to_string e))
  | Error e -> Alcotest.fail e

let test_parallel_consensus_agreement () =
  for seed = 0 to 4 do
    let inputs = [| 1; 2; 1; 2 |] in
    match Runtime_shm.parallel_consensus ~seed ~inputs () with
    | Ok (_, _undecided) -> () (* agreement/validity checked inside *)
    | Error e -> Alcotest.fail (Printf.sprintf "seed %d: %s" seed e)
  done

(* All watchdog budgets in these tests derive from the single
   env-overridable constant (ANONSIM_TEST_WATCHDOG, seconds): inline step
   literals flaked once the model checker's domain pool started sharing
   the cores with the runtime's domains. *)
let watchdog_steps = Runtime_shm.Watchdog.steps ()
let watchdog_seconds = Runtime_shm.Watchdog.seconds ()

let test_write_scan_times_out () =
  (* A non-terminating protocol must hit the step budget and report it. *)
  let module R = Runtime_shm.Make (Algorithms.Write_scan) in
  let cfg = Algorithms.Write_scan.cfg ~n:2 ~m:2 in
  match
    R.run ~seed:1 ~max_steps:watchdog_steps ~timeout:watchdog_seconds ~cfg
      ~inputs:[| 1; 2 |] ()
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "write-scan must not terminate"

let test_write_scan_timeout_tolerated () =
  let module R = Runtime_shm.Make (Algorithms.Write_scan) in
  let cfg = Algorithms.Write_scan.cfg ~n:2 ~m:2 in
  match
    R.run ~seed:1 ~max_steps:watchdog_steps ~allow_timeout:true ~cfg
      ~inputs:[| 1; 2 |] ()
  with
  | Ok r ->
      Array.iter
        (fun o -> Alcotest.(check bool) "no outputs" true (o = None))
        r.R.outputs;
      (* The timeout must carry a real operation count — nonzero, within
         budget.  (Not asserted equal to the budget: a wall-clock watchdog
         firing first legitimately stops short of it.) *)
      Array.iter
        (fun s ->
          Alcotest.(check bool) "real step count on timeout" true
            (s > 0 && s <= watchdog_steps))
        r.R.steps;
      Array.iter
        (fun st ->
          Alcotest.(check bool) "status is timed out" true
            (match st with R.Timed_out _ -> true | _ -> false))
        r.R.statuses
  | Error e -> Alcotest.fail e

(* A protocol whose code raises after a few operations: the supervisor
   must catch it inside the domain and report a structured error naming
   the processor, after joining every domain. *)
module Bomb = struct
  type cfg = { n : int }
  type value = int
  type input = int
  type output = int
  type local = int

  let name = "bomb"
  let processors cfg = cfg.n
  let registers _ = 1
  let register_init _ = 0
  let init _ _ = 0
  let next _ _ = Some (Anonmem.Protocol.Read 0)
  let halted _ _ = false

  let apply_read _ l ~reg:_ _ =
    if l >= 3 then failwith "boom" else l + 1

  let apply_write _ l = l
  let output _ _ = None

  (* No flat machine yet: the boxed paths run this protocol. *)
  let flat _ ~phys:_ ~inputs:_ ~registers:_ ~locals:_ = None
  let pp_value _ = Fmt.int
  let pp_local _ = Fmt.int
  let pp_output _ = Fmt.int
end

let test_exception_reported_structured () =
  let module R = Runtime_shm.Make (Bomb) in
  match R.run ~cfg:{ Bomb.n = 2 } ~inputs:[| 0; 0 |] () with
  | Ok _ -> Alcotest.fail "the bomb must go off"
  | Error e ->
      Alcotest.(check bool) "names a processor" true
        (String.length e >= 10 && String.sub e 0 10 = "processor ")

let test_injected_crash_stop_degrades_gracefully () =
  let module R = Runtime_shm.Snapshot_run in
  let cfg = Algorithms.Snapshot.standard ~n:3 in
  let faults = [ Anonmem.Fault.Crash_stop { p = 1; at = 0 } ] in
  match R.run ~seed:2 ~faults ~cfg ~inputs:[| 1; 2; 3 |] () with
  | Error e -> Alcotest.fail e
  | Ok r ->
      Alcotest.(check bool) "p2 crashed (injected)" true
        (match r.R.statuses.(1) with
        | R.Crashed { injected = true; _ } -> true
        | _ -> false);
      Alcotest.(check bool) "p2 silent" true (r.R.outputs.(1) = None);
      Alcotest.(check int) "p2 took no operation" 0 r.R.steps.(1);
      (* The survivors still terminate (wait-freedom) with valid outputs. *)
      List.iter
        (fun p ->
          Alcotest.(check bool) "survivor done" true (r.R.statuses.(p) = R.Done);
          match r.R.outputs.(p) with
          | Some o ->
              Alcotest.(check bool) "own input present" true (Iset.mem (p + 1) o)
          | None -> Alcotest.fail "survivor must produce an output")
        [ 0; 2 ]

let test_injected_crash_recover_restarts () =
  let module R = Runtime_shm.Snapshot_run in
  let cfg = Algorithms.Snapshot.standard ~n:2 in
  let faults = [ Anonmem.Fault.Crash_recover { p = 0; at = 2 } ] in
  match R.run ~seed:3 ~faults ~cfg ~inputs:[| 1; 2 |] () with
  | Error e -> Alcotest.fail e
  | Ok r ->
      Alcotest.(check bool) "p1 restarted once" true
        (r.R.statuses.(0) = R.Restarted 1);
      (match r.R.outputs.(0) with
      | Some o -> Alcotest.(check bool) "valid output" true (Iset.mem 1 o)
      | None -> Alcotest.fail "recovered processor must terminate");
      Alcotest.(check bool) "steps cumulative across the respawn" true
        (r.R.steps.(0) > 2)

let test_respawn_budget_exhausts () =
  let module R = Runtime_shm.Snapshot_run in
  let cfg = Algorithms.Snapshot.standard ~n:2 in
  (* More recoveries than the respawn budget allows. *)
  let faults =
    List.init 5 (fun i -> Anonmem.Fault.Crash_recover { p = 0; at = 2 + i })
  in
  match R.run ~seed:3 ~faults ~max_restarts:2 ~cfg ~inputs:[| 1; 2 |] () with
  | Error e -> Alcotest.fail e
  | Ok r ->
      Alcotest.(check bool) "respawn budget exhausted" true
        (match r.R.statuses.(0) with
        | R.Crashed { injected = true; _ } -> true
        | _ -> false)

let test_parallel_renaming_with_crash () =
  (* Domains-backed renaming under an injected crash-stop: the survivors'
     names must still satisfy the adaptive renaming task. *)
  let inputs = [| 1; 2; 3; 4 |] in
  let cfg = Algorithms.Renaming.standard ~n:4 in
  let faults = [ Anonmem.Fault.Crash_stop { p = 2; at = 5 } ] in
  match Runtime_shm.Renaming_run.run ~seed:7 ~faults ~cfg ~inputs () with
  | Error e -> Alcotest.fail e
  | Ok r ->
      let outcome =
        Tasks.Outcome.make ~inputs
          ~outputs:
            (Array.map
               (Option.map (fun (o : Algorithms.Renaming.output) -> o.name_out))
               r.Runtime_shm.Renaming_run.outputs)
          ()
      in
      (match Tasks.Renaming_task.check outcome with
      | Ok () -> ()
      | Error e -> Alcotest.fail (Tasks.Task_failure.to_string e))

let test_fixed_wiring_respected () =
  (* With the identity wiring and a single processor the snapshot output is
     deterministic regardless of domain scheduling. *)
  let module R = Runtime_shm.Snapshot_run in
  let cfg = Algorithms.Snapshot.standard ~n:1 in
  let wiring = Anonmem.Wiring.identity ~n:1 ~m:1 in
  match R.run ~wiring ~cfg ~inputs:[| 42 |] () with
  | Ok r ->
      Alcotest.(check bool) "singleton {42}" true
        (match r.R.outputs.(0) with
        | Some o -> Iset.equal o (Iset.of_list [ 42 ])
        | None -> false)
  | Error e -> Alcotest.fail e

let test_bad_inputs_rejected () =
  let module R = Runtime_shm.Snapshot_run in
  let cfg = Algorithms.Snapshot.standard ~n:2 in
  Alcotest.check_raises "wrong arity"
    (Invalid_argument "Runtime_shm.run: bad inputs") (fun () ->
      ignore (R.run ~cfg ~inputs:[| 1 |] ()))

let () =
  Alcotest.run "runtime"
    [
      ( "domains",
        [
          Alcotest.test_case "parallel snapshot valid (10 seeds)" `Quick
            test_parallel_snapshot_valid;
          Alcotest.test_case "parallel snapshot with groups" `Quick
            test_parallel_snapshot_groups;
          Alcotest.test_case "steps recorded" `Quick test_parallel_snapshot_records_steps;
          Alcotest.test_case "parallel renaming valid" `Quick
            test_parallel_renaming_valid;
          Alcotest.test_case "parallel consensus agreement" `Quick
            test_parallel_consensus_agreement;
          Alcotest.test_case "non-terminating protocol times out" `Quick
            test_write_scan_times_out;
          Alcotest.test_case "timeout tolerated when allowed" `Quick
            test_write_scan_timeout_tolerated;
          Alcotest.test_case "fixed wiring" `Quick test_fixed_wiring_respected;
          Alcotest.test_case "input validation" `Quick test_bad_inputs_rejected;
        ] );
      ( "supervision",
        [
          Alcotest.test_case "protocol exception reported structured" `Quick
            test_exception_reported_structured;
          Alcotest.test_case "injected crash-stop degrades gracefully" `Quick
            test_injected_crash_stop_degrades_gracefully;
          Alcotest.test_case "injected crash-recover restarts" `Quick
            test_injected_crash_recover_restarts;
          Alcotest.test_case "respawn budget exhausts" `Quick
            test_respawn_budget_exhausts;
          Alcotest.test_case "renaming survives a crash" `Quick
            test_parallel_renaming_with_crash;
        ] );
    ]
