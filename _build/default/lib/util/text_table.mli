(** Plain-text table rendering for the experiment harness and the CLI.

    Used to regenerate Figure 2 of the paper in the same row/column layout
    and to print the paper-vs-measured summaries of EXPERIMENTS.md. *)

type t

val create : headers:string list -> t
val add_row : t -> string list -> unit
(** Rows shorter than the header are right-padded with empty cells; longer
    rows raise [Invalid_argument]. *)

val render : t -> string
(** Monospace rendering with a header separator, column-width autosizing and
    single-space padding. *)

val pp : t Fmt.t
