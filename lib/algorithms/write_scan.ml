(** Figure 1: the plain write–scan loop.

    Each processor holds a view (initially the singleton of its input) and
    forever alternates between writing its view to the next register of a
    private fair cyclic order and scanning all registers, adding everything
    it reads to its view.  No processor ever terminates; the interest of
    this protocol is the structure of the views it can sustain forever —
    the eventual-pattern question of Section 4, answered by
    {!Analysis.Stable_views}. *)

open Repro_util

type cfg = { n : int; m : int }

let cfg ~n ~m =
  if n < 1 || m < 1 then invalid_arg "Write_scan.cfg";
  { n; m }

type value = Iset.t
type input = int
type output = |
(** This protocol produces no outputs; the type is uninhabited. *)

(* Reads are folded into the view immediately rather than accumulated until
   the scan ends; the two are observably equivalent (the view is only
   externally visible through writes, and a processor never writes
   mid-scan) and the smaller local state keeps model checking cheap. *)
type scan = { pos : int }
type phase = Writing | Scanning of scan
type local = { view : Iset.t; next_write : int; phase : phase }

let name = "write-scan"
let processors cfg = cfg.n
let registers cfg = cfg.m
let register_init _ = Iset.empty
let init _ input = { view = Iset.singleton input; next_write = 0; phase = Writing }

let halted _ _ = false

let next _cfg l =
  match l.phase with
  | Writing -> Some (Anonmem.Protocol.Write (l.next_write, l.view))
  | Scanning { pos; _ } -> Some (Anonmem.Protocol.Read pos)

let apply_write cfg l =
  match l.phase with
  | Scanning _ -> invalid_arg "Write_scan.apply_write: not writing"
  | Writing ->
      {
        l with
        next_write = (l.next_write + 1) mod cfg.m;
        phase = Scanning { pos = 0 };
      }

let apply_read cfg l ~reg v =
  match l.phase with
  | Writing -> invalid_arg "Write_scan.apply_read: not scanning"
  | Scanning s ->
      if reg <> s.pos then invalid_arg "Write_scan.apply_read: wrong register";
      let view = Iset.union l.view v in
      if s.pos + 1 < cfg.m then
        { l with view; phase = Scanning { pos = s.pos + 1 } }
      else { l with view; phase = Writing }

let output _ _ = None

(* Flat twin: views as bitset words, phase encoded in the scan position
   ([-1] = Writing).  Total — in-window views stay in-window under
   union. *)
let flat (c : cfg) ~(phys : int array) ~(inputs : int array)
    ~(registers : value array) ~(locals : local array) :
    value Anonmem.Protocol.flat option =
  let n = c.n and m = c.m in
  let in_window i = 0 <= i && i < Bits.max_width in
  if n > Bits.max_width || m > Bits.max_width
     || not (Array.for_all in_window inputs)
  then None
  else
    match
      ( Array.map Iset.to_bits registers,
        Array.map (fun l -> Iset.to_bits l.view) locals )
    with
    | exception Invalid_argument _ -> None
    | rview, lview ->
        let lnext = Array.map (fun l -> l.next_write) locals in
        let lpos =
          Array.map
            (fun l ->
              match l.phase with Writing -> -1 | Scanning { pos } -> pos)
            locals
        in
        let pview = Array.copy rview in
        let dirty = ref 0 in
        let peek p =
          let pos = lpos.(p) in
          if pos < 0 then (phys.((p * m) + lnext.(p)) lsl 1) lor 1
          else phys.((p * m) + pos) lsl 1
        in
        let do_read p vview =
          lview.(p) <- lview.(p) lor vview;
          let pos = lpos.(p) + 1 in
          lpos.(p) <- (if pos < m then pos else -1)
        in
        let advance_write p =
          lnext.(p) <- (lnext.(p) + 1) mod m;
          lpos.(p) <- 0
        in
        let step p =
          let pos = lpos.(p) in
          if pos < 0 then begin
            let r = phys.((p * m) + lnext.(p)) in
            pview.(r) <- rview.(r);
            rview.(r) <- lview.(p);
            dirty := !dirty lor (1 lsl r);
            advance_write p
          end
          else do_read p rview.(phys.((p * m) + pos))
        in
        let step_stale p = do_read p pview.(phys.((p * m) + lpos.(p))) in
        let reset p =
          lview.(p) <- 1 lsl inputs.(p);
          lnext.(p) <- 0;
          lpos.(p) <- -1
        in
        let value r =
          if !dirty land (1 lsl r) <> 0 then Iset.of_bits rview.(r)
          else registers.(r)
        in
        let sync () =
          List.iter
            (fun r -> registers.(r) <- Iset.of_bits rview.(r))
            (Bits.to_list !dirty);
          for p = 0 to n - 1 do
            locals.(p) <-
              {
                view = Iset.of_bits lview.(p);
                next_write = lnext.(p);
                phase =
                  (if lpos.(p) < 0 then Writing
                   else Scanning { pos = lpos.(p) });
              }
          done
        in
        Some
          {
            Anonmem.Protocol.total = true;
            peek;
            step;
            step_omit = advance_write;
            step_stale;
            reset;
            halted = (fun _ -> false);
            value;
            sync;
          }
let view_of_local l = l.view
let at_round_boundary l = l.phase = Writing
let pp_value _ = Iset.pp_set

let pp_local _ ppf l =
  let pp_phase ppf = function
    | Writing -> Fmt.pf ppf "write#%d" l.next_write
    | Scanning { pos; _ } -> Fmt.pf ppf "scan@%d" pos
  in
  Fmt.pf ppf "{view=%a %a}" Iset.pp_set l.view pp_phase l.phase

let pp_output _ _ppf (o : output) = match o with _ -> .
