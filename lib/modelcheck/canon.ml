(** Symmetry canonicalization of encoded states under full anonymity.

    Full anonymity is a symmetry theorem in disguise: all processors run
    the same program, so two processors with the same input are
    behaviourally identical, and the registers have no global names, so
    relabelling physical registers is invisible to every program.  For a
    {e fixed} wiring, however, not every relabelling is sound — a
    processor permutation [pi] changes which hidden permutation each local
    state is interpreted through, so it must be compensated by the unique
    register permutation [rho = sigma_{pi 0} ∘ sigma_0⁻¹], and only when
    the same [rho] reconciles {e every} processor is the pair an
    automorphism of the transition system ({!Anonmem.Wiring.automorphisms}
    computes exactly this subgroup; its documentation carries the proof
    sketch).  This is why the naive "sort local-state slices within each
    input class and sort register slices" recipe is {e unsound}: it
    quotients by permutations outside the group and silently merges
    genuinely distinct states.  We instead canonicalize by {b orbit
    minimum}: apply every group element to the encoded key and keep the
    lexicographically least image.  The group has at most [n!] elements
    ([n <= 4] in any feasible exploration), so the scan is cheap, and
    orbit-minimum is trivially idempotent and constant on orbits.

    Canonicalization operates directly on the byte-string state encodings
    of {!Explorer.CHECKABLE} protocols: permuting processors permutes the
    fixed-width local slices, permuting registers permutes the value
    slices, and local states carry over {e verbatim} — private register
    indices inside a local state (scan cursors, write cursors) need no
    relabelling because they are reinterpreted through the moved wiring
    permutation.  See DESIGN.md §"Symmetry reduction" for the soundness
    argument and for why named processors would break it. *)

open Repro_util

type sym = { pi : int array; rho : int array }
(** One automorphism, as raw image arrays: processor [p]'s slice moves to
    slot [pi.(p)], register [r]'s slice to slot [rho.(r)]. *)

type t = {
  n : int;
  m : int;
  lw : int;  (** local slice width, bytes *)
  vw : int;  (** register slice width, bytes *)
  nontrivial : sym list;  (** group minus the identity *)
  group : sym list;  (** the full group, identity first *)
}

(** Interchangeability classes of an input assignment: same class iff
    (structurally) equal input.  Class ids are first-occurrence indices. *)
let classes_of_inputs inputs =
  let n = Array.length inputs in
  Array.init n (fun p ->
      let rec first q = if inputs.(q) = inputs.(p) then q else first (q + 1) in
      first 0)

let of_permutation p = Array.init (Permutation.size p) (Permutation.apply p)

let make ~local_width ~value_width ~wiring ~classes =
  let n = Anonmem.Wiring.processors wiring in
  let m = Anonmem.Wiring.registers wiring in
  let group =
    Anonmem.Wiring.automorphisms wiring ~classes
    |> List.map (fun (pi, rho) ->
           { pi = of_permutation pi; rho = of_permutation rho })
  in
  let is_identity s =
    Array.for_all2 ( = ) s.pi (Array.init n Fun.id)
    && Array.for_all2 ( = ) s.rho (Array.init m Fun.id)
  in
  let identity, nontrivial = List.partition is_identity group in
  {
    n;
    m;
    lw = local_width;
    vw = value_width;
    nontrivial;
    group = identity @ nontrivial;
  }

let is_trivial t = t.nontrivial = []
let group t = t.group
let group_order t = List.length t.group
let pid_image s p = s.pi.(p)

(* Apply one automorphism to an encoded key.  [extra] bytes past the
   [n*lw + m*vw] state image (e.g. a crash mask) are copied verbatim;
   {!apply_masked} permutes them instead. *)
let apply_raw t s key =
  let body = (t.n * t.lw) + (t.m * t.vw) in
  if String.length key < body then
    invalid_arg "Canon.apply: key shorter than the state image";
  let out = Bytes.of_string key in
  for p = 0 to t.n - 1 do
    Bytes.blit_string key (p * t.lw) out (s.pi.(p) * t.lw) t.lw
  done;
  let roff = t.n * t.lw in
  for r = 0 to t.m - 1 do
    Bytes.blit_string key
      (roff + (r * t.vw))
      out
      (roff + (s.rho.(r) * t.vw))
      t.vw
  done;
  out

let apply t s key = Bytes.unsafe_to_string (apply_raw t s key)

(** [apply_masked] additionally treats the {e last} byte of the key as a
    processor bitmask (the crash set of {!Fault_explorer}) and permutes
    its bits by [pi]: crashed processors move with their local slices. *)
let apply_masked t s key =
  let out = apply_raw t s key in
  let last = String.length key - 1 in
  let mask = Char.code key.[last] in
  let mask' = ref 0 in
  for p = 0 to t.n - 1 do
    if mask land (1 lsl p) <> 0 then mask' := !mask' lor (1 lsl s.pi.(p))
  done;
  Bytes.set out last (Char.chr !mask');
  Bytes.unsafe_to_string out

let minimize t per_sym key =
  List.fold_left
    (fun best s ->
      let img = per_sym t s key in
      if String.compare img best < 0 then img else best)
    key t.nontrivial

(** Orbit minimum of [key] under the group — the canonical representative.
    Idempotent, and constant on orbits (two keys canonicalize equally iff
    some group element maps one to the other). *)
let canonicalize t key =
  if t.nontrivial = [] then key else minimize t apply key

(** Orbit minimum for fault-explorer keys carrying a trailing crash-mask
    byte. *)
let canonicalize_masked t key =
  if t.nontrivial = [] then key else minimize t apply_masked key
