#!/bin/sh
# Pin the anonsim exit-code contract end to end:
#   0 = clean pass, 2 = violation / refuted invariant,
#   3 = resource budget exhausted, 4 = interrupted.
# Usage: test_exit_codes.sh /path/to/anonsim.exe
set -u

ANONSIM="$1"
fails=0

expect() {
  want="$1"
  shift
  "$ANONSIM" "$@" >/dev/null 2>&1
  got=$?
  if [ "$got" -eq "$want" ]; then
    echo "ok  $want <- anonsim $*"
  else
    echo "FAIL: anonsim $* exited $got, want $want"
    fails=$((fails + 1))
  fi
}

# clean passes
expect 0 check-snapshot -n 2
expect 0 feasibility --quick
expect 0 inductive --check -n 2
expect 0 inductive --check -n 2 --concrete
expect 0 inductive --prune -n 2

# refuted invariant: the comparability strengthenings fail induction
expect 2 inductive --check -n 2 --clauses candidates

# exhausted budget (exit 3): a tiny wall-clock allowance on a big run
expect 3 inductive --check -n 3 --max-seconds 0.01
expect 3 check-snapshot -n 3 --max-seconds 0.01

# interrupted (exit 4): SIGINT mid-run; the n=3 induction takes seconds
"$ANONSIM" inductive --check -n 3 >/dev/null 2>&1 &
pid=$!
sleep 0.4
kill -INT "$pid" 2>/dev/null
wait "$pid"
got=$?
if [ "$got" -eq 4 ]; then
  echo "ok  4 <- anonsim inductive --check -n 3 (SIGINT)"
else
  echo "FAIL: interrupted inductive run exited $got, want 4"
  fails=$((fails + 1))
fi

if [ "$fails" -ne 0 ]; then
  echo "$fails exit-code check(s) failed"
  exit 1
fi
echo "all exit-code checks passed"
