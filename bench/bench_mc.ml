(* Model-checking benchmark: states visited, wall-clock and peak memory
   for the snapshot exploration under the four engine configurations —
   sequential, sequential + symmetry reduction, parallel x {1,2,4}
   domains, with and without reduction.  Results go to BENCH_mc.json
   (hand-rolled JSON, no external dependency) and a human-readable table
   on stdout; EXPERIMENTS.md tables X6/X7 are generated from this output.

   The headline case is the 3-processor identity-wiring snapshot with a
   single input class — the largest symmetry group (|G| = 6) and the
   configuration whose full space is infeasible to sweep inside the test
   suite.  On a single-core host the parallel rows measure overhead, not
   speedup; the acceptance claims are carried by the visited-state
   reduction column and by the arena-vs-seed-layout memory comparison.

   Memory columns.  [live_words] is the exact retained size of the row's
   result value, [Obj.reachable_words] over the explored space for
   sequential rows (the parallel engine discards its space and retains
   only a stats record, so par rows report a handful of words).  Earlier
   revisions reported a GC live-word delta instead, which went negative
   on rows that spawn and join domains — joined domains fold their minor
   heaps back into the major heap, so the "before" baseline is not
   comparable to the "after" reading.  Reachable words are non-negative
   by construction and count shared blocks once.  [top_heap_words] is
   the process-wide heap high-water mark when the row finishes (monotone
   across rows — cases run smallest first, so the headline rows own the
   peak).  The headline full row is additionally rebuilt in the
   pre-arena seed layout (string Hashtbl + boxed key vector + int edge
   vectors) and measured the same way, so the compaction factor compares
   identical state/transition counts. *)

open Repro_util
module Snap = Algorithms.Snapshot
module St = Modelcheck.State_table
module P = Modelcheck.Codecs.Snapshot
module E = Modelcheck.Explorer.Make (P)
module Par = Modelcheck.Par_explorer.Make (P)

type row = {
  case : string;
  engine : string; (* "seq" | "seq-pruned" | "par" | "ws" | "fp" *)
  domains : int;
  reduction : bool;
  states : int;
  transitions : int;
  pruned : int;
      (** successors skipped by the proved-invariant oracle; 0 for
          unpruned rows, and 0 by construction on pruned rows (a proved
          invariant never fires on a reachable state) — the column pins
          reachable-state parity, the candidate-universe fields carry
          the reduction claim *)
  wall_s : float;
  live_words : int;  (** retained words of the explored space *)
  top_heap_words : int;  (** process heap high-water mark at row end *)
  spill_bytes : int;  (** fingerprint rows: bytes written to disk runs *)
  omission_bound : float;  (** fingerprint rows: states^2 / 2^64 *)
  rss_kb : int;
      (** VmHWM at row end — the process-wide resident high-water mark,
          monotone across rows, so RAM-cap claims must be read off rows
          that run *before* the larger exact explorations *)
}

let rows : row list ref = ref []

(* Peak resident set (VmHWM, kB) from /proc/self/status; 0 when the
   field is unavailable (non-Linux hosts). *)
let vm_hwm_kb () =
  match open_in "/proc/self/status" with
  | exception Sys_error _ -> 0
  | ic ->
      let rec go acc =
        match input_line ic with
        | line ->
            let acc =
              if String.length line > 6 && String.sub line 0 6 = "VmHWM:" then
                try
                  Scanf.sscanf
                    (String.sub line 6 (String.length line - 6))
                    " %d" Fun.id
                with Scanf.Scan_failure _ | Failure _ -> acc
              else acc
            in
            go acc
        | exception End_of_file ->
            close_in ic;
            acc
      in
      go 0

let measure f =
  Gc.compact ();
  let t0 = Unix.gettimeofday () in
  let r = f () in
  let wall_s = Unix.gettimeofday () -. t0 in
  let live_words = Obj.reachable_words (Obj.repr r) in
  (r, wall_s, live_words, (Gc.stat ()).Gc.top_heap_words)

(* Rebuild [space] in the pre-arena layout this benchmark used before the
   State_table rewrite — (string, id) Hashtbl over boxed key strings, a
   string Vec for id -> key (sharing the same strings, as the seed did),
   an int Vec of packed parents and two int Vecs of packed edges — and
   return its retained size in words, measured exactly like [measure]
   does ([Obj.reachable_words] over the rebuilt structures).  States,
   transitions and per-entry contents are identical to the arena space,
   so the ratio to the arena row's [live_words] is a like-for-like
   compaction factor. *)
let seed_layout_words (space : E.space) =
  let n = E.state_count space in
  let off = E.csr_offsets space in
  let table : (string, int) Hashtbl.t = Hashtbl.create (1 lsl 16) in
  let keys : string Vec.t = Vec.create () in
  St.iter
    (fun id key ->
      ignore (Vec.push keys key);
      Hashtbl.add table key id)
    space.E.table;
  let parent : int Vec.t = Vec.create () in
  for id = 0 to n - 1 do
    ignore (Vec.push parent (E.parent_packed space id))
  done;
  let edge_src : int Vec.t = Vec.create () in
  let edge_dst : int Vec.t = Vec.create () in
  for u = 0 to n - 1 do
    for i = off.(u) to off.(u + 1) - 1 do
      let packed = St.Packed_vec.get space.E.succ i in
      ignore (Vec.push edge_src ((u lsl 4) lor (packed land 15)));
      ignore (Vec.push edge_dst (packed asr 4))
    done
  done;
  Obj.reachable_words (Obj.repr (table, keys, parent, edge_src, edge_dst))

(* (seed_layout_words, arena live_words) of the headline full seq row. *)
let layout_comparison : (int * int) option ref = ref None

let mib_of_words w = float_of_int (w * (Sys.word_size / 8)) /. 1048576.

let seq_case ?stop_expansion ?prune ~case ~reduction ~cfg ~wiring ~inputs () =
  let space, wall_s, live_words, top_heap_words =
    measure (fun () ->
        match
          E.explore ?stop_expansion ?prune ~reduction ~cfg ~wiring ~inputs ()
        with
        | E.Explored sp -> sp
        | _ -> failwith (case ^ ": sequential exploration did not complete"))
  in
  let states = E.state_count space
  and transitions = E.transition_count space in
  let engine = if prune = None then "seq" else "seq-pruned" in
  rows :=
    {
      case;
      engine;
      domains = 1;
      reduction;
      states;
      transitions;
      pruned = space.E.pruned;
      wall_s;
      live_words;
      top_heap_words;
      spill_bytes = 0;
      omission_bound = 0.0;
      rss_kb = vm_hwm_kb ();
    }
    :: !rows;
  Printf.printf "%-24s %-10s %s %9d states %9d trans %8.2fs %8.1f MiB\n%!"
    case engine
    (if reduction then "red  " else "full ")
    states transitions wall_s (mib_of_words live_words);
  (space, live_words)

let par_case ~case ~domains ~reduction ~cfg ~wiring ~inputs () =
  let stats, wall_s, live_words, top_heap_words =
    measure (fun () ->
        match Par.explore ~reduction ~domains ~cfg ~wiring ~inputs () with
        | Par.Par_ok { stats; _ } -> stats
        | _ -> failwith (case ^ ": parallel exploration did not complete"))
  in
  let states = stats.Par.states and transitions = stats.Par.transitions in
  rows :=
    {
      case;
      engine = "par";
      domains;
      reduction;
      states;
      transitions;
      pruned = 0;
      wall_s;
      live_words;
      top_heap_words;
      spill_bytes = 0;
      omission_bound = 0.0;
      rss_kb = vm_hwm_kb ();
    }
    :: !rows;
  Printf.printf "%-24s par x%d     %s %9d states %9d trans %8.2fs %8.1f MiB\n%!"
    case domains
    (if reduction then "red  " else "full ")
    states transitions wall_s (mib_of_words live_words)

module Ws = Modelcheck.Ws_explorer.Make (P)

let ws_case ~case ~domains ~reduction ~cfg ~wiring ~inputs () =
  let stats, wall_s, live_words, top_heap_words =
    measure (fun () ->
        match Ws.explore ~reduction ~domains ~cfg ~wiring ~inputs () with
        | Ws.Ws_ok { stats; _ } -> stats
        | _ -> failwith (case ^ ": work-stealing exploration did not complete"))
  in
  let states = stats.Ws.states and transitions = stats.Ws.transitions in
  rows :=
    {
      case;
      engine = "ws";
      domains;
      reduction;
      states;
      transitions;
      pruned = 0;
      wall_s;
      live_words;
      top_heap_words;
      spill_bytes = 0;
      omission_bound = 0.0;
      rss_kb = vm_hwm_kb ();
    }
    :: !rows;
  Printf.printf
    "%-24s ws  x%d     %s %9d states %9d trans %8.2fs %6d steals\n%!" case
    domains
    (if reduction then "red  " else "full ")
    states transitions wall_s stats.Ws.steals

(* A fingerprint row: RAM-bounded safety-only exploration.  [expect]
   (when the exact twin already ran) pins state/transition parity hard;
   the n=4 row runs *before* its exact twin so its VmHWM reading is its
   own, and is cross-checked post hoc. *)
let fp_case ?stop_expansion ?expect ~case ~reduction ~ram_budget_bytes ~cfg
    ~wiring ~inputs () =
  let st, wall_s, live_words, top_heap_words =
    measure (fun () ->
        match
          E.explore_fp ?stop_expansion ~reduction ~ram_budget_bytes ~cfg
            ~wiring ~inputs ()
        with
        | E.Fp_explored st -> st
        | _ -> failwith (case ^ ": fingerprint exploration did not complete"))
  in
  (match expect with
  | Some (states, transitions)
    when states <> st.E.fp_states || transitions <> st.E.fp_transitions ->
      failwith (case ^ ": fingerprint run lost parity with the exact engine")
  | _ -> ());
  let rss_kb = vm_hwm_kb () in
  rows :=
    {
      case;
      engine = "fp";
      domains = 1;
      reduction;
      states = st.E.fp_states;
      transitions = st.E.fp_transitions;
      pruned = st.E.fp_pruned;
      wall_s;
      live_words;
      top_heap_words;
      spill_bytes = st.E.fp_bytes_spilled;
      omission_bound = st.E.fp_bound;
      rss_kb;
    }
    :: !rows;
  Printf.printf
    "%-24s fp (%3dMiB) %s %9d states %9d trans %8.2fs %2d runs %8.1f MiB \
     spilled, bound %.3g, VmHWM %.1f MiB\n\
     %!"
    case
    (ram_budget_bytes / 1048576)
    (if reduction then "red  " else "full ")
    st.E.fp_states st.E.fp_transitions wall_s st.E.fp_runs
    (float_of_int st.E.fp_bytes_spilled /. 1048576.)
    st.E.fp_bound
    (float_of_int rss_kb /. 1024.)

(* The proved-invariant pruning oracle (Inductive.proved passes both
   induction obligations at this n, so states violating it are
   unreachable and the pruned sweep must reproduce the unpruned space
   exactly — asserted below, not assumed). *)
let prune_oracle cfg inputs (st : E.state) =
  Modelcheck.Inductive.violates_state ~cfg ~inputs Modelcheck.Inductive.proved
    ~locals:st.E.locals ~registers:st.E.registers

(* Run the pruned twin of a sequential row and hard-fail the benchmark on
   any reachable-state disparity: verdict parity is the soundness claim,
   the row's wall-clock delta is the oracle's evaluation overhead. *)
let pruned_twin ?stop_expansion ~case ~reduction ~cfg ~wiring ~inputs
    (base_space : E.space) =
  let space, _ =
    seq_case ?stop_expansion ~prune:(prune_oracle cfg inputs) ~case ~reduction
      ~cfg ~wiring ~inputs ()
  in
  if
    E.state_count space <> E.state_count base_space
    || E.transition_count space <> E.transition_count base_space
  then failwith (case ^ ": pruned run lost reachable-state parity");
  if space.E.pruned <> 0 then
    failwith (case ^ ": proved invariant pruned a reachable state")

let run_matrix ?(measure_layout = false) ~case ~domain_counts ~cfg ~wiring
    ~inputs () =
  let full_space = ref None in
  List.iter
    (fun reduction ->
      let space, live = seq_case ~case ~reduction ~cfg ~wiring ~inputs () in
      if not reduction then full_space := Some space;
      if measure_layout && not reduction then begin
        let seed = seed_layout_words space in
        layout_comparison := Some (seed, live);
        Printf.printf
          "%-24s seed-layout replica: %8.1f MiB vs arena %8.1f MiB (%.2fx)\n%!"
          case (mib_of_words seed) (mib_of_words live)
          (float_of_int seed /. float_of_int live)
      end;
      List.iter
        (fun domains ->
          par_case ~case ~domains ~reduction ~cfg ~wiring ~inputs ();
          ws_case ~case ~domains ~reduction ~cfg ~wiring ~inputs ())
        domain_counts)
    [ false; true ];
  Option.get !full_space

let json_of_rows rows ~reduction_factor ~layout ~universe =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n";
  Buffer.add_string b "  \"bench\": \"mc\",\n";
  Buffer.add_string b
    (Printf.sprintf "  \"host_domains\": %d,\n"
       (Domain.recommended_domain_count ()));
  Buffer.add_string b
    (Printf.sprintf "  \"snapshot3_state_reduction_factor\": %.2f,\n"
       reduction_factor);
  (match layout with
  | Some (seed, arena) ->
      Buffer.add_string b
        (Printf.sprintf "  \"headline_seed_layout_words\": %d,\n" seed);
      Buffer.add_string b
        (Printf.sprintf "  \"headline_arena_words\": %d,\n" arena);
      Buffer.add_string b
        (Printf.sprintf "  \"headline_memory_factor\": %.2f,\n"
           (float_of_int seed /. float_of_int arena))
  | None -> ());
  (let u = universe in
   Buffer.add_string b
     (Printf.sprintf "  \"invariant_universe_n4_syn_states\": %d,\n"
        u.Modelcheck.Inductive.u_syn_states);
   Buffer.add_string b
     (Printf.sprintf "  \"invariant_universe_n4_adm_states\": %d,\n"
        u.Modelcheck.Inductive.u_adm_states);
   Buffer.add_string b
     (Printf.sprintf "  \"invariant_candidate_state_reduction_n4\": %.2f,\n"
        (float_of_int u.Modelcheck.Inductive.u_syn_states
        /. float_of_int u.Modelcheck.Inductive.u_adm_states)));
  Buffer.add_string b "  \"cases\": [\n";
  List.iteri
    (fun i r ->
      Buffer.add_string b
        (Printf.sprintf
           "    {\"case\": %S, \"engine\": %S, \"domains\": %d, \"reduction\": \
            %b, \"states\": %d, \"transitions\": %d, \"pruned\": %d, \
            \"wall_s\": %.3f, \"live_words\": %d, \"top_heap_words\": %d, \
            \"spill_bytes\": %d, \"omission_bound\": %.3g, \"rss_kb\": %d}%s\n"
           r.case r.engine r.domains r.reduction r.states r.transitions
           r.pruned r.wall_s r.live_words r.top_heap_words r.spill_bytes
           r.omission_bound r.rss_kb
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string b "  ]\n}\n";
  Buffer.contents b

let () =
  let quick = Array.mem "--quick" Sys.argv in
  (* n = 2, the wiring with a nontrivial automorphism and one input
     class: the smallest configuration where reduction bites. *)
  let cfg2 = Snap.standard ~n:2 in
  let group_wiring2 =
    match Anonmem.Wiring.enumerate ~n:2 ~m:2 ~fix_first:true with
    | _ :: w :: _ -> w
    | _ -> assert false
  in
  let sp2 =
    run_matrix ~measure_layout:quick ~case:"snapshot_n2_group"
      ~domain_counts:[ 1; 2; 4 ] ~cfg:cfg2 ~wiring:group_wiring2
      ~inputs:[| 1; 1 |] ()
  in
  pruned_twin ~case:"snapshot_n2_group" ~reduction:false ~cfg:cfg2
    ~wiring:group_wiring2 ~inputs:[| 1; 1 |] sp2;
  (* Fingerprint twins of the n=2 rows: a deliberately starved 1 KiB
     budget forces the disk-spill path even on this tiny space. *)
  fp_case ~case:"snapshot_n2_group" ~reduction:false ~ram_budget_bytes:1024
    ~expect:(E.state_count sp2, E.transition_count sp2)
    ~cfg:cfg2 ~wiring:group_wiring2 ~inputs:[| 1; 1 |] ();
  fp_case ~case:"snapshot_n2_group" ~reduction:true ~ram_budget_bytes:1024
    ~cfg:cfg2 ~wiring:group_wiring2 ~inputs:[| 1; 1 |] ();
  (* n = 3, identity wiring, single input class: |G| = 6, ~2M raw states. *)
  if not quick then begin
    let cfg3 = Snap.standard ~n:3 in
    let wiring3 = Anonmem.Wiring.identity ~n:3 ~m:3 in
    (* n = 4, identity wiring, bounded depth: expansion stops once two
       processors have completed a scan — a symmetric predicate, so the
       reduced run explores the true quotient of the bounded space.
       Even the |G| = 24 quotient holds ~28.5M states; the raw space
       overflows the explorer's default state limit (measured > 60M
       states without completing), and in the seed's boxed layout its
       keys, hashtable chains and 2x8-byte edge words would not fit
       this host alongside GC copying headroom.  The arena keeps the
       quotient row in flat bytes.  Sequential engine only — the
       parallel engine takes no stop predicate, and on this host it
       measures overhead. *)
    let stop_two_scans (st : E.state) =
      let c = ref 0 in
      Array.iter
        (fun l -> if Snap.level_of_local l >= 1 then incr c)
        st.E.locals;
      !c >= 2
    in
    let cfg4 = Snap.cfg ~n:4 ~m:4 in
    let wiring4 = Anonmem.Wiring.identity ~n:4 ~m:4 in
    let inputs4 = [| 1; 1; 1; 1 |] in
    (* The headline fingerprint row runs FIRST: VmHWM is process-wide
       and monotone, so the RAM-cap claim (the 28.5M-state n=4 quotient
       to a verdict inside a 128 MiB fingerprint budget, spill engaged)
       must be read before the exact giants raise the high-water mark.
       Parity with the exact n=4 row is asserted post hoc below. *)
    fp_case ~stop_expansion:stop_two_scans ~case:"snapshot_n4_bounded"
      ~reduction:true
      ~ram_budget_bytes:(128 * 1024 * 1024)
      ~cfg:cfg4 ~wiring:wiring4 ~inputs:inputs4 ();
    let sp3 =
      run_matrix ~measure_layout:true ~case:"snapshot_n3_identity"
        ~domain_counts:[ 1; 2; 4 ] ~cfg:cfg3 ~wiring:wiring3
        ~inputs:[| 1; 1; 1 |] ()
    in
    (* The pruned twin of the n=3 full row: the invariant passed
       induction at n=3 (anonsim inductive --check -n 3), so parity is a
       theorem this row re-verifies empirically. *)
    pruned_twin ~case:"snapshot_n3_identity" ~reduction:false ~cfg:cfg3
      ~wiring:wiring3 ~inputs:[| 1; 1; 1 |] sp3;
    (* Fingerprint twins at 4 MiB — enough to force several spill runs
       on the ~2M-state space while matching the exact counts. *)
    fp_case ~case:"snapshot_n3_identity" ~reduction:false
      ~ram_budget_bytes:(4 * 1024 * 1024)
      ~expect:(E.state_count sp3, E.transition_count sp3)
      ~cfg:cfg3 ~wiring:wiring3 ~inputs:[| 1; 1; 1 |] ();
    fp_case ~case:"snapshot_n3_identity" ~reduction:true
      ~ram_budget_bytes:(4 * 1024 * 1024)
      ~cfg:cfg3 ~wiring:wiring3 ~inputs:[| 1; 1; 1 |] ();
    let sp4, _ =
      seq_case ~stop_expansion:stop_two_scans ~case:"snapshot_n4_bounded"
        ~reduction:true ~cfg:cfg4 ~wiring:wiring4 ~inputs:inputs4 ()
    in
    pruned_twin ~stop_expansion:stop_two_scans ~case:"snapshot_n4_bounded"
      ~reduction:true ~cfg:cfg4 ~wiring:wiring4 ~inputs:inputs4 sp4
  end;
  let ordered = List.rev !rows in
  (* Cross-engine parity, post hoc: every fingerprint and work-stealing
     row must agree with the sequential row of its (case, reduction)
     cell — this is the check that covers rows whose exact twin ran
     after them (the n=4 fingerprint row) and every reduced twin. *)
  List.iter
    (fun r ->
      if r.engine = "fp" || r.engine = "ws" then
        match
          List.find_opt
            (fun s ->
              s.engine = "seq" && s.case = r.case && s.reduction = r.reduction)
            ordered
        with
        | Some s when s.states <> r.states || s.transitions <> r.transitions ->
            failwith
              (Printf.sprintf "%s: %s row lost parity with the exact engine"
                 r.case r.engine)
        | _ -> ())
    ordered;
  let headline = if quick then "snapshot_n2_group" else "snapshot_n3_identity" in
  let find ~reduction =
    List.find_opt
      (fun r -> r.case = headline && r.engine = "seq" && r.reduction = reduction)
      ordered
  in
  let reduction_factor =
    match (find ~reduction:false, find ~reduction:true) with
    | Some full, Some red when red.states > 0 ->
        float_of_int full.states /. float_of_int red.states
    | _ -> nan
  in
  (* Candidate-universe accounting at n=4 from the closed-form counter:
     syntactic local assignments vs assignments admitted by the proved
     clauses — the measured candidate-state reduction the pruning oracle
     represents on the bounded row. *)
  let universe =
    Modelcheck.Inductive.universe_counts ~n:4 Modelcheck.Inductive.proved
  in
  Printf.printf
    "invariant universe @ n=4: %d syntactic -> %d admitted local \
     assignments (%.1fx candidate-state reduction)\n"
    universe.Modelcheck.Inductive.u_syn_states
    universe.Modelcheck.Inductive.u_adm_states
    (float_of_int universe.Modelcheck.Inductive.u_syn_states
    /. float_of_int universe.Modelcheck.Inductive.u_adm_states);
  let oc = open_out "BENCH_mc.json" in
  output_string oc
    (json_of_rows ordered ~reduction_factor ~layout:!layout_comparison
       ~universe);
  close_out oc;
  (match !layout_comparison with
  | Some (seed, arena) ->
      Printf.printf
        "\n\
         %s: %.2fx visited-state reduction, %.2fx memory reduction vs \
         seed layout; wrote BENCH_mc.json\n"
        headline reduction_factor
        (float_of_int seed /. float_of_int arena)
  | None ->
      Printf.printf
        "\n%s: %.2fx visited-state reduction; wrote BENCH_mc.json\n" headline
        reduction_factor)
