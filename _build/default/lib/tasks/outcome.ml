(** Execution outcomes and output samples (Section 3.2.1 of the paper).

    An outcome records, for one finished execution, each processor's input
    (its group identifier, per the group view of Section 3.2), whether it
    participated (took at least one step), and its output if it produced
    one.

    Group solvability (Definition 3.4) quantifies over {e output samples}:
    functions mapping each participating group to the output of one of its
    members.  {!samples} enumerates them all — the checkers in the sibling
    modules validate every sample against a task specification. *)

open Repro_util

type 'o t = {
  inputs : int array;  (** [inputs.(p)] is processor [p]'s group identifier *)
  participated : bool array;
  outputs : 'o option array;
}

let make ?participated ~inputs ~outputs () =
  let n = Array.length inputs in
  if Array.length outputs <> n then invalid_arg "Outcome.make: length mismatch";
  let participated =
    match participated with
    | None -> Array.make n true
    | Some a ->
        if Array.length a <> n then invalid_arg "Outcome.make: length mismatch";
        Array.copy a
  in
  (* A processor with an output necessarily took steps. *)
  Array.iteri
    (fun p o -> if o <> None then participated.(p) <- true)
    outputs;
  { inputs = Array.copy inputs; participated; outputs = Array.copy outputs }

let processors t = Array.length t.inputs

let participating_groups t =
  let s = ref Iset.empty in
  Array.iteri
    (fun p g -> if t.participated.(p) then s := Iset.add g !s)
    t.inputs;
  !s

let group_of t p = t.inputs.(p)

let members t g =
  List.filter
    (fun p -> t.inputs.(p) = g && t.participated.(p))
    (List.init (processors t) Fun.id)

let outputs_of_group t g =
  List.filter_map (fun p -> t.outputs.(p)) (members t g)

let terminated t = Array.to_list t.outputs |> List.filter_map Fun.id

(** Groups that produced at least one output, with the list of distinct
    member outputs for each. *)
let sampled_groups t =
  Iset.elements (participating_groups t)
  |> List.filter_map (fun g ->
         match outputs_of_group t g with [] -> None | os -> Some (g, os))

(** All output samples: each is an association list from group identifier
    to the output of one member, covering every group that produced an
    output.  The sequence is the cartesian product of the per-group
    choices, produced lazily (its length is the product of the group
    output-multiplicities, at most [N^N]). *)
let samples t : (int * 'o) list Seq.t =
  let rec product = function
    | [] -> Seq.return []
    | (g, os) :: rest ->
        let tails = product rest in
        Seq.concat_map
          (fun o -> Seq.map (fun tl -> (g, o) :: tl) tails)
          (List.to_seq os)
  in
  product (sampled_groups t)

let sample_count t =
  List.fold_left (fun acc (_, os) -> acc * List.length os) 1 (sampled_groups t)

(** Validate every output sample with [check]; returns the first failure.
    [check] receives the sample and the set of participating groups. *)
let for_all_samples t ~check =
  let groups = participating_groups t in
  Seq.fold_left
    (fun acc sample ->
      match acc with
      | Error _ as e -> e
      | Ok () -> check ~groups sample)
    (Ok ()) (samples t)
