test/test_renaming.ml: Alcotest Algorithms Anonmem Array Core Iset List Printf QCheck QCheck_alcotest Repro_util
