lib/tasks/outcome.ml: Array Fun Iset List Repro_util Seq
