(* Section-framed checkpoint container for the durable-run layer.  See
   checkpoint.mli for the format; the invariants that matter here:

   - [save] is atomic: the image is written to [path ^ ".tmp"], fsynced,
     and renamed over [path], so a crash at any instruction leaves either
     the previous checkpoint or the new one — never a torn file.
   - every payload carries a 64-bit FNV checksum, validated on [load];
     any mismatch, truncation or framing error raises
     [Corrupt_checkpoint] — a structured error, never a crash and never
     a silently wrong answer.
   - [set_torn_write] is the chaos hook: the next [save] writes only a
     prefix of the tmp file and raises [Simulated_crash] *before* the
     rename, exactly the failure mode a power cut produces. *)

exception Corrupt_checkpoint of string
exception Simulated_crash

let corrupt fmt = Printf.ksprintf (fun s -> raise (Corrupt_checkpoint s)) fmt
let magic = "ANONCKP1"

(* 64-bit FNV-1a over a byte range, folded into OCaml's nonnegative int
   range the same way State_table.hash folds it — deterministic across
   runs, which is all a torn-write detector needs. *)
let fnv_offset = 0x4bf29ce484222325
let fnv_prime = 0x100000001b3

let checksum buf off len =
  let h = ref fnv_offset in
  for i = off to off + len - 1 do
    h := (!h lxor Char.code (Bytes.unsafe_get buf i)) * fnv_prime
  done;
  !h land max_int

(* --- little-endian integer helpers ----------------------------------- *)

let put_u64 buf off v = Bytes.set_int64_le buf off (Int64.of_int v)

let get_u64 buf off =
  let v = Int64.to_int (Bytes.get_int64_le buf off) in
  if v < 0 then corrupt "64-bit field at offset %d out of int range" off;
  v

(* --- int-array payloads ----------------------------------------------- *)

let bytes_of_ints a =
  let b = Bytes.create (8 * Array.length a) in
  Array.iteri (fun i v -> Bytes.set_int64_le b (8 * i) (Int64.of_int v)) a;
  b

let ints_of_bytes b =
  if Bytes.length b mod 8 <> 0 then
    corrupt "int-array payload of %d bytes (not a multiple of 8)"
      (Bytes.length b);
  Array.init (Bytes.length b / 8) (fun i ->
      Int64.to_int (Bytes.get_int64_le b (8 * i)))

(* --- framing ----------------------------------------------------------- *)

let to_bytes sections =
  let total =
    List.fold_left
      (fun acc (tag, payload) ->
        acc + 2 + String.length tag + 16 + Bytes.length payload)
      (String.length magic + 4)
      sections
  in
  let b = Bytes.create total in
  Bytes.blit_string magic 0 b 0 (String.length magic);
  Bytes.set_int32_le b (String.length magic)
    (Int32.of_int (List.length sections));
  let off = ref (String.length magic + 4) in
  List.iter
    (fun (tag, payload) ->
      let tl = String.length tag and pl = Bytes.length payload in
      if tl > 0xFFFF then invalid_arg "Checkpoint.to_bytes: tag too long";
      Bytes.set_uint16_le b !off tl;
      Bytes.blit_string tag 0 b (!off + 2) tl;
      put_u64 b (!off + 2 + tl) pl;
      put_u64 b (!off + 2 + tl + 8) (checksum payload 0 pl);
      Bytes.blit payload 0 b (!off + 2 + tl + 16) pl;
      off := !off + 2 + tl + 16 + pl)
    sections;
  b

let of_bytes b =
  let len = Bytes.length b in
  if len < String.length magic + 4 then corrupt "truncated header (%d bytes)" len;
  if Bytes.sub_string b 0 (String.length magic) <> magic then
    corrupt "bad magic (not a checkpoint file)";
  let nsec = Int32.to_int (Bytes.get_int32_le b (String.length magic)) in
  if nsec < 0 || nsec > 0xFFFF then corrupt "implausible section count %d" nsec;
  let off = ref (String.length magic + 4) in
  let sections = ref [] in
  for s = 0 to nsec - 1 do
    if !off + 2 > len then corrupt "truncated at section %d tag length" s;
    let tl = Bytes.get_uint16_le b !off in
    if !off + 2 + tl + 16 > len then corrupt "truncated at section %d header" s;
    let tag = Bytes.sub_string b (!off + 2) tl in
    let pl = get_u64 b (!off + 2 + tl) in
    let crc = get_u64 b (!off + 2 + tl + 8) in
    let poff = !off + 2 + tl + 16 in
    if pl < 0 || poff + pl > len then
      corrupt "truncated payload in section %S (%d bytes claimed)" tag pl;
    if checksum b poff pl <> crc then corrupt "checksum mismatch in section %S" tag;
    sections := (tag, Bytes.sub b poff pl) :: !sections;
    off := poff + pl
  done;
  if !off <> len then corrupt "%d trailing bytes after last section" (len - !off);
  List.rev !sections

let find tag sections =
  match List.assoc_opt tag sections with
  | Some payload -> payload
  | None -> corrupt "missing section %S" tag

(* --- atomic file I/O --------------------------------------------------- *)

let torn_write : int option ref = ref None
let set_torn_write n = torn_write := n

let save ~path sections =
  let image = to_bytes sections in
  let tmp = path ^ ".tmp" in
  let write_prefix n =
    let fd = Unix.openfile tmp [ O_WRONLY; O_CREAT; O_TRUNC ] 0o644 in
    let rec go off remaining =
      if remaining > 0 then
        let w = Unix.write fd image off remaining in
        go (off + w) (remaining - w)
    in
    Fun.protect
      ~finally:(fun () -> Unix.close fd)
      (fun () ->
        go 0 n;
        Unix.fsync fd)
  in
  match !torn_write with
  | Some n ->
      torn_write := None;
      write_prefix (min n (Bytes.length image));
      raise Simulated_crash
  | None ->
      write_prefix (Bytes.length image);
      Sys.rename tmp path

let load ~path =
  let ic = open_in_bin path in
  let image =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let len = in_channel_length ic in
        let b = Bytes.create len in
        really_input ic b 0 len;
        b)
  in
  of_bytes image

type policy = { path : string; every_states : int }
