test/test_write_scan.mli:
