(** Append-only, checksummed, self-healing run journal (JSONL).

    The durable record of a long verification sweep: one line per
    completed cell, each framed with a sequence number, payload length
    and FNV-64 checksum so a crash mid-append can only ever tear the
    final line — which {!load} and {!open_append} then drop/heal.
    Payloads are opaque newline-free strings (the feasibility sweep
    stores [Analysis.Feasibility.cell_to_record] lines). *)

exception Simulated_crash
(** Raised by {!append} when the {!set_crash_after} chaos hook fires. *)

type t

val create : string -> t
(** Fresh journal at the path, truncating any existing file. *)

val open_append : string -> t * string list
(** Open for appending, first compacting the file to its valid prefix
    (atomically); returns the recovered payloads in append order.  A
    missing file yields an empty journal. *)

val append : t -> string -> unit
(** Append one payload and flush.  Raises [Invalid_argument] on a
    newline in the payload or on a closed journal. *)

val load : string -> string list
(** The payloads of the longest valid prefix of the file — contiguous
    sequence numbers from 0, verified lengths and checksums; everything
    from the first damaged line on is ignored.  Missing file = []. *)

val path : t -> string
val next_seq : t -> int
val close : t -> unit

val set_crash_after : int option -> unit
(** Self-chaos: arm with [Some k] and the [k]-th append (1-based) of
    the next journal opened writes a torn half-line, raises
    {!Simulated_crash} and disarms.  [None] disarms. *)
