(** Single-word packed explorer for {!Algorithms.Rt_mutex} — the clean-cell
    engine of the feasibility map.

    The generic byte-codec {!Explorer} tops out around 2·10⁵ states/s on
    the mutex: every transition allocates fresh local records, encodes a
    ~50-byte key and hashes it.  A clean feasibility cell must sweep
    {e every} wiring class — 2 467 classes of ~7·10⁶ states each at
    (n = 3, m = 5) — which puts the map's flagship cell weeks out of
    reach at that rate.  This module is the {!Snapshot3} move replayed
    for the mutex: after the collect compression (see
    {!Algorithms.Rt_mutex.phase}) a whole system state fits one OCaml
    int, and every protocol transition becomes two array reads.

    Packing.  Register values at n ≤ 3 range over
    [Free | Claim id | Seal id] with at most three identities — seven
    codes, three bits per register, [3m] low bits for the whole memory.
    Each processor's reachable local phases are enumerated up front by
    closing {!Algorithms.Rt_mutex.apply_read}/[apply_write] over all
    value codes (a couple of thousand phases at m = 5) and interned into
    dense indices; the system state packs the registers in the low [3m]
    bits and each processor's phase index in its own power-of-two bit
    field above them (~48 bits in all at (3, 5)).  Transitions never
    re-encode: a read adds [(rsucc - l) << off_p], a write additionally
    masks three register bits — no divisions anywhere on the hot path.

    The sweep is one iterative Tarjan DFS over the implicit graph: safety
    (two processors in {!Algorithms.Rt_mutex.in_cs}, or any
    [Cs_intruded] audit — exactly the generic engine's
    [mutex_invariant], which also subsumes the terminal
    {!Tasks.Mutex_task} oracle) is checked as each state is interned, and
    deadlock-freedom as each SCC pops: an SCC with an internal edge is a
    fair cycle iff every non-halted processor of its states takes some
    step inside it — the same condition as {!Explorer.Make.find_fair_scc}
    (processor liveness is constant across an SCC because halting is
    absorbing).  On a clean wiring the visited count equals the generic
    engine's state count exactly: same initial state, same step relation,
    same closure — the parity is asserted by the differential tests.

    The engine returns {!verdict} only; callers wanting a concrete
    counterexample re-run the generic explorer on the offending wiring
    (violating wirings are cheap — exploration stops at the violation). *)

open Algorithms

type verdict =
  | Clean of { states : int; pruned : int }
      (** swept exhaustively, no violation *)
  | Breach  (** mutual-exclusion invariant or audit tripwire violated *)
  | Fair_cycle  (** deadlock: a fair SCC is reachable *)
  | Limit of int  (** state cap hit *)
  | Exhausted of { reason : Governor.reason; states : int }
      (** a resource governor tripped; resumable when a checkpoint
          policy was in force *)
  | Unsupported
      (** shape outside the packed envelope (n > 3, or the mixed-radix
          word would overflow); fall back to the generic engine *)

(* Per-processor transition tables over interned local phases. *)
type ptab = {
  count : int;
  kind : int array;  (* 0 = read, 1 = write, 2 = halted *)
  reg : int array;  (* private register index of the pending access *)
  wval : int array;  (* value code written (kind 1) *)
  rsucc : int array;  (* [l * nv + v] -> interned successor after read *)
  wsucc : int array;  (* [l] -> interned successor after write *)
  cs : bool array;  (* in the critical section (Sealing | Auditing) *)
  bad : bool array;  (* halted with a tripped audit (Done Cs_intruded) *)
}

let build_ptab cfg ~inputs p =
  let id = inputs.(p) in
  let n = Array.length inputs in
  let nv = 1 + (2 * n) in
  let value_of_code c =
    if c = 0 then Rt_mutex.Free
    else if c land 1 = 1 then Rt_mutex.Claim inputs.((c - 1) / 2)
    else Rt_mutex.Seal inputs.((c - 1) / 2)
  in
  let code_of_value v =
    let slot q =
      let rec go k = if inputs.(k) = q then k else go (k + 1) in
      go 0
    in
    match v with
    | Rt_mutex.Free -> 0
    | Rt_mutex.Claim q -> 1 + (2 * slot q)
    | Rt_mutex.Seal q -> 2 + (2 * slot q)
  in
  (* Close the per-processor phase space under all readable values. *)
  let tbl = Hashtbl.create 1024 in
  let rev = ref [] and cnt = ref 0 in
  let pending = Queue.create () in
  let intern ph =
    match Hashtbl.find_opt tbl ph with
    | Some i -> i
    | None ->
        let i = !cnt in
        incr cnt;
        Hashtbl.add tbl ph i;
        rev := ph :: !rev;
        Queue.add ph pending;
        i
  in
  ignore (intern Rt_mutex.fresh_collect);
  while not (Queue.is_empty pending) do
    let ph = Queue.pop pending in
    let l = { Rt_mutex.id; phase = ph } in
    match Rt_mutex.next cfg l with
    | None -> ()
    | Some (Anonmem.Protocol.Read i) ->
        for c = 0 to nv - 1 do
          ignore
            (intern (Rt_mutex.apply_read cfg l ~reg:i (value_of_code c)).phase)
        done
    | Some (Anonmem.Protocol.Write _) ->
        ignore (intern (Rt_mutex.apply_write cfg l).phase)
  done;
  let phases = Array.of_list (List.rev !rev) in
  let count = Array.length phases in
  let t =
    {
      count;
      kind = Array.make count 2;
      reg = Array.make count 0;
      wval = Array.make count 0;
      rsucc = Array.make (count * nv) 0;
      wsucc = Array.make count 0;
      cs = Array.make count false;
      bad = Array.make count false;
    }
  in
  Array.iteri
    (fun i ph ->
      let l = { Rt_mutex.id; phase = ph } in
      t.cs.(i) <- Rt_mutex.in_cs l;
      t.bad.(i) <- Rt_mutex.output cfg l = Some Rt_mutex.Cs_intruded;
      match Rt_mutex.next cfg l with
      | None -> t.kind.(i) <- 2
      | Some (Anonmem.Protocol.Read r) ->
          t.kind.(i) <- 0;
          t.reg.(i) <- r;
          for c = 0 to nv - 1 do
            t.rsucc.((i * nv) + c) <-
              Hashtbl.find tbl
                (Rt_mutex.apply_read cfg l ~reg:r (value_of_code c)).phase
          done
      | Some (Anonmem.Protocol.Write (r, v)) ->
          t.kind.(i) <- 1;
          t.reg.(i) <- r;
          t.wval.(i) <- code_of_value v;
          t.wsucc.(i) <- Hashtbl.find tbl (Rt_mutex.apply_write cfg l).phase)
    phases;
  t

(* Growable int vector. *)
module Vec = struct
  type t = { mutable a : int array; mutable len : int }

  let create () = { a = Array.make 4096 0; len = 0 }
  let reset v = v.len <- 0

  let push v x =
    if v.len = Array.length v.a then begin
      let a = Array.make (2 * v.len) 0 in
      Array.blit v.a 0 a 0 v.len;
      v.a <- a
    end;
    v.a.(v.len) <- x;
    v.len <- v.len + 1

  let get v i = Array.unsafe_get v.a i
  let set v i x = Array.unsafe_set v.a i x
end

(* Open-addressing packed-state -> dense-id map; -1 marks empty slots
   (packed states are non-negative).  Key and id sit in adjacent words
   of one array so a probe costs a single cache line; multiplicative
   hashing, linear probing, growth at 50 % load. *)
module Itab = struct
  type t = { mutable a : int array; mutable mask : int; mutable size : int }

  let create () =
    let cap = 1 lsl 20 in
    { a = Array.make (2 * cap) (-1); mask = cap - 1; size = 0 }

  (* Top-level so probing allocates nothing (an inner closure would cost
     a minor-heap block per lookup — measurably dominant at 3 lookups
     per explored state). *)
  let rec probe a mask k i =
    let key = Array.unsafe_get a (2 * i) in
    if key = -1 || key = k then i else probe a mask k ((i + 1) land mask)

  let slot t k =
    let h = k * 0x2545F4914F6CDD1D land max_int in
    probe t.a t.mask k ((h lxor (h lsr 29)) land t.mask)

  let grow t =
    let oa = t.a in
    let cap = Array.length oa in
    t.a <- Array.make (2 * cap) (-1);
    t.mask <- cap - 1;
    let i = ref 0 in
    while !i < cap do
      let k = oa.(!i) in
      if k >= 0 then begin
        let s = slot t k in
        t.a.(2 * s) <- k;
        t.a.((2 * s) + 1) <- oa.(!i + 1)
      end;
      i := !i + 2
    done

  let reset t =
    Array.fill t.a 0 (Array.length t.a) (-1);
    t.size <- 0

  (* Dense id of [k], or [-1 - id] on first insertion. *)
  let find_or_add t k id =
    let s = slot t k in
    if Array.unsafe_get t.a (2 * s) = k then Array.unsafe_get t.a ((2 * s) + 1)
    else begin
      t.a.(2 * s) <- k;
      t.a.((2 * s) + 1) <- id;
      t.size <- t.size + 1;
      if 2 * t.size > t.mask then grow t;
      -1 - id
    end

end

exception Found_breach
exception Found_fair
exception Found_limit
exception Found_exhausted of Governor.reason

type ws = {
  ws_tab : Itab.t;
  ws_low : Vec.t;
  ws_emask : Vec.t;
  ws_onstack : Vec.t;
  ws_sccs : Vec.t;
  ws_fr_u : Vec.t;
  ws_fr_s : Vec.t;
  ws_fr_pid : Vec.t;
  ws_fr_epid : Vec.t;
}
(** Reusable exploration buffers: a wiring sweep visits thousands of
    multi-million-state spaces, and re-growing the visited table and the
    Tarjan vectors from scratch each time costs more major-GC work than
    the exploration itself.  Buffers keep their high-water capacity
    across {!check_wiring} calls. *)

let ws () =
  {
    ws_tab = Itab.create ();
    ws_low = Vec.create ();
    ws_emask = Vec.create ();
    ws_onstack = Vec.create ();
    ws_sccs = Vec.create ();
    ws_fr_u = Vec.create ();
    ws_fr_s = Vec.create ();
    ws_fr_pid = Vec.create ();
    ws_fr_epid = Vec.create ();
  }

let reset_ws w =
  Itab.reset w.ws_tab;
  Vec.reset w.ws_low;
  Vec.reset w.ws_emask;
  Vec.reset w.ws_onstack;
  Vec.reset w.ws_sccs;
  Vec.reset w.ws_fr_u;
  Vec.reset w.ws_fr_s;
  Vec.reset w.ws_fr_pid;
  Vec.reset w.ws_fr_epid

let check_wiring ?ws:reuse ?max_states ?prune ?governor ?ckpt
    ?(ckpt_extra = []) ?(resume = false) ~cfg ~wiring ~inputs () =
  let n = Rt_mutex.processors cfg in
  let m = Rt_mutex.registers cfg in
  if n < 1 || n > 3 || Array.length inputs <> n then Unsupported
  else begin
    let tabs = Array.init n (fun p -> build_ptab cfg ~inputs p) in
    let nv = 1 + (2 * n) in
    (* Bit layout: registers in the low 3m bits, then one power-of-two
       field per processor's interned phase index. *)
    let bits_of k =
      let rec go b = if 1 lsl b >= k then b else go (b + 1) in
      go 1
    in
    let off = Array.make n (3 * m) in
    for p = 1 to n - 1 do
      off.(p) <- off.(p - 1) + bits_of tabs.(p - 1).count
    done;
    if off.(n - 1) + bits_of tabs.(n - 1).count > 61 then Unsupported
    else begin
      let lmask = Array.init n (fun p -> (1 lsl bits_of tabs.(p).count) - 1) in
      (* Per-phase shift of the pending access through this wiring
         (flattened from private index to phase index). *)
      let shift =
        Array.init n (fun p ->
            Array.map
              (fun r -> 3 * Anonmem.Wiring.phys wiring ~p r)
              tabs.(p).reg)
      in
      let local_of s p = (s asr off.(p)) land lmask.(p) in
      (* Successor of [s] by processor [p], or -1 if halted. *)
      let succ_of s p =
        let t = tabs.(p) in
        let l = (s asr Array.unsafe_get off p) land Array.unsafe_get lmask p in
        match Array.unsafe_get t.kind l with
        | 2 -> -1
        | 0 ->
            let sh = Array.unsafe_get (Array.unsafe_get shift p) l in
            let v = (s asr sh) land 7 in
            s
            + ((Array.unsafe_get t.rsucc ((l * nv) + v) - l)
              lsl Array.unsafe_get off p)
        | _ ->
            let sh = Array.unsafe_get (Array.unsafe_get shift p) l in
            ((s land lnot (7 lsl sh)) lor (Array.unsafe_get t.wval l lsl sh))
            + ((Array.unsafe_get t.wsucc l - l) lsl Array.unsafe_get off p)
      in
      let safe s =
        let cs = ref 0 and bad = ref false in
        for p = 0 to n - 1 do
          let l = local_of s p in
          if tabs.(p).cs.(l) then incr cs;
          if tabs.(p).bad.(l) then bad := true
        done;
        !cs <= 1 && not !bad
      in
      let live_mask s =
        let mask = ref 0 in
        for p = 0 to n - 1 do
          if tabs.(p).kind.(local_of s p) <> 2 then mask := !mask lor (1 lsl p)
        done;
        !mask
      in
      (* Tarjan bookkeeping, by dense id.  Discovery order equals
         insertion order, so the dense id doubles as the DFS number.
         [emask] accumulates, per still-open state, the pids of edges
         known to be internal to that state's eventual SCC: every edge
         into an on-stack vertex closes a cycle (the stack invariant:
         on-stack vertices reach the current vertex), so its pid is
         internal, and when a child pops {e without} being an SCC root
         its tree edge and accumulated mask merge into the parent.  At a
         root pop [emask] is then exactly the SCC's internal-edge pid
         set — the fairness check needs no second pass over members. *)
      let count = ref 0 in
      let pruned = ref 0 in
      let w = match reuse with Some w -> reset_ws w; w | None -> ws () in
      let tab = w.ws_tab in
      let low = w.ws_low and emask = w.ws_emask in
      let onstack = w.ws_onstack in
      let sccs = w.ws_sccs in
      (* DFS frames: dense id, packed state, next pid to expand, and the
         pid of the tree edge that discovered this frame. *)
      let fr_u = w.ws_fr_u and fr_s = w.ws_fr_s in
      let fr_pid = w.ws_fr_pid and fr_epid = w.ws_fr_epid in
      let cap = Option.value max_states ~default:max_int in
      (* --- checkpoint plumbing ----------------------------------------
         Everything the Tarjan loop owns is flat int data: the packed-
         state hash table (dumped as key/id pairs and re-inserted on
         load), the per-id bookkeeping vectors, the SCC stack and the
         four frame vectors.  The loop top is the consistent point. *)
      let context =
        Fmt.str "packed|%d|%d|%a|%b|%s" n m Anonmem.Wiring.pp wiring
          (prune <> None)
          (String.concat "," (List.map string_of_int (Array.to_list inputs)))
      in
      let vec_bytes v = Checkpoint.bytes_of_ints (Array.sub v.Vec.a 0 v.Vec.len) in
      let restore_vec v b =
        Vec.reset v;
        Array.iter (Vec.push v) (Checkpoint.ints_of_bytes b)
      in
      let itab_bytes () =
        let pairs = ref [] in
        let a = tab.Itab.a in
        let i = ref (Array.length a - 2) in
        while !i >= 0 do
          if a.(!i) >= 0 then pairs := a.(!i) :: a.(!i + 1) :: !pairs;
          i := !i - 2
        done;
        Checkpoint.bytes_of_ints (Array.of_list !pairs)
      in
      let restore_itab b =
        Itab.reset tab;
        let a = Checkpoint.ints_of_bytes b in
        if Array.length a mod 2 <> 0 then
          raise
            (Checkpoint.Corrupt_checkpoint
               "Rt_mutex_packed: itab section of odd length");
        let i = ref 0 in
        while !i < Array.length a do
          ignore (Itab.find_or_add tab a.(!i) a.(!i + 1));
          i := !i + 2
        done
      in
      let save_ckpt path =
        Checkpoint.save ~path
          ([
             ("context", Bytes.of_string context);
             ("itab", itab_bytes ());
             ("counters", Checkpoint.bytes_of_ints [| !count; !pruned |]);
             ("low", vec_bytes w.ws_low);
             ("emask", vec_bytes w.ws_emask);
             ("onstack", vec_bytes w.ws_onstack);
             ("sccs", vec_bytes w.ws_sccs);
             ("fr_u", vec_bytes w.ws_fr_u);
             ("fr_s", vec_bytes w.ws_fr_s);
             ("fr_pid", vec_bytes w.ws_fr_pid);
             ("fr_epid", vec_bytes w.ws_fr_epid);
           ]
          @ ckpt_extra)
      in
      let resumed =
        match ckpt with
        | Some { Checkpoint.path; _ } when resume && Sys.file_exists path ->
            let sections = Checkpoint.load ~path in
            let ctx = Bytes.to_string (Checkpoint.find "context" sections) in
            if not (String.equal ctx context) then
              raise
                (Checkpoint.Corrupt_checkpoint
                   "Rt_mutex_packed: checkpoint context mismatch");
            restore_itab (Checkpoint.find "itab" sections);
            let counters =
              Checkpoint.ints_of_bytes (Checkpoint.find "counters" sections)
            in
            if Array.length counters <> 2 then
              raise
                (Checkpoint.Corrupt_checkpoint
                   "Rt_mutex_packed: counter section of wrong length");
            count := counters.(0);
            pruned := counters.(1);
            restore_vec w.ws_low (Checkpoint.find "low" sections);
            restore_vec w.ws_emask (Checkpoint.find "emask" sections);
            restore_vec w.ws_onstack (Checkpoint.find "onstack" sections);
            restore_vec w.ws_sccs (Checkpoint.find "sccs" sections);
            restore_vec w.ws_fr_u (Checkpoint.find "fr_u" sections);
            restore_vec w.ws_fr_s (Checkpoint.find "fr_s" sections);
            restore_vec w.ws_fr_pid (Checkpoint.find "fr_pid" sections);
            restore_vec w.ws_fr_epid (Checkpoint.find "fr_epid" sections);
            true
        | _ -> false
      in
      let push_state s epid =
        (* pre: s is fresh, already interned with id = !count *)
        if not (safe s) then raise Found_breach;
        if !count >= cap then raise Found_limit;
        let id = !count in
        incr count;
        Vec.push low id;
        Vec.push emask 0;
        Vec.push onstack 1;
        Vec.push sccs id;
        Vec.push fr_u id;
        Vec.push fr_s s;
        Vec.push fr_pid 0;
        Vec.push fr_epid epid
      in
      let pop_scc u s =
        (* Members sit atop the SCC stack, ending at [u]. *)
        let i = ref (Vec.(sccs.len) - 1) in
        let v = ref (Vec.get sccs !i) in
        Vec.set onstack !v 0;
        while !v <> u do
          decr i;
          v := Vec.get sccs !i;
          Vec.set onstack !v 0
        done;
        sccs.Vec.len <- !i;
        let pidmask = Vec.get emask u in
        if pidmask <> 0 then begin
          let lm = live_mask s in
          if lm <> 0 && lm land pidmask = lm then raise Found_fair
        end
      in
      let ticks = ref 0 in
      let run () =
        if not resumed then begin
          ignore (Itab.find_or_add tab 0 0);
          push_state 0 0
        end;
        while Vec.(fr_u.len) > 0 do
          incr ticks;
          (match ckpt with
          | Some { Checkpoint.path; every_states }
            when every_states > 0 && !ticks mod every_states = 0 ->
              save_ckpt path
          | _ -> ());
          (match governor with
          | Some g -> (
              match Governor.tick g with
              | Some reason ->
                  (match ckpt with
                  | Some { Checkpoint.path; _ } -> save_ckpt path
                  | None -> ());
                  raise (Found_exhausted reason)
              | None -> ())
          | None -> ());
          let fi = Vec.(fr_u.len) - 1 in
          let pid = Vec.get fr_pid fi in
          if pid < n then begin
            Vec.set fr_pid fi (pid + 1);
            let s' = succ_of (Vec.get fr_s fi) pid in
            if s' >= 0 then begin
              match prune with
              | Some f when f s' -> incr pruned
              | _ ->
              let r = Itab.find_or_add tab s' !count in
              if r < 0 then push_state s' pid
              else if Vec.get onstack r = 1 then begin
                let u = Vec.get fr_u fi in
                Vec.set low u (min (Vec.get low u) r);
                Vec.set emask u (Vec.get emask u lor (1 lsl pid))
              end
            end
          end
          else begin
            let u = Vec.get fr_u fi in
            let s = Vec.get fr_s fi in
            let epid = Vec.get fr_epid fi in
            fr_u.Vec.len <- fi;
            fr_s.Vec.len <- fi;
            fr_pid.Vec.len <- fi;
            fr_epid.Vec.len <- fi;
            if Vec.get low u = u then pop_scc u s
            else if Vec.(fr_u.len) > 0 then begin
              (* Non-root pop: this state's SCC continues in the parent —
                 the discovering tree edge and the accumulated internal
                 mask belong to the common SCC. *)
              let parent = Vec.get fr_u (Vec.(fr_u.len) - 1) in
              Vec.set low parent (min (Vec.get low parent) (Vec.get low u));
              Vec.set emask parent
                (Vec.get emask parent lor Vec.get emask u lor (1 lsl epid))
            end
          end
        done
      in
      try
        run ();
        Clean { states = !count; pruned = !pruned }
      with
      | Found_breach -> Breach
      | Found_fair -> Fair_cycle
      | Found_limit -> Limit !count
      | Found_exhausted reason -> Exhausted { reason; states = !count }
    end
  end
