(* anonsim: command-line driver for the fully-anonymous shared-memory
   library.  Each subcommand regenerates one of the paper's artifacts or
   runs one of the algorithms; see DESIGN.md for the experiment index. *)

open Cmdliner

let iset_str = Repro_util.Iset.to_string

(* Exit-code contract of the verification subcommands (documented in
   README): 0 = clean verdict, 2 = violation or contradicted map,
   3 = resource budget exhausted (partial result + resumable state on
   disk), 4 = interrupted by SIGINT/SIGTERM (journal/checkpoint flushed,
   resume instructions printed).  1 is left to cmdliner/uncaught errors. *)
let exit_violation = 2
let exit_exhausted = 3
let exit_interrupted = 4

(* One shared flag: the per-cell governors of a sweep all watch it, so a
   single SIGINT stops the whole run at the next engine tick.  A second
   signal aborts immediately (escape hatch for a wedged run). *)
let interrupted = ref false

let install_signal_handlers () =
  let handle _ =
    if !interrupted then Stdlib.exit exit_interrupted else interrupted := true
  in
  List.iter
    (fun s -> Sys.set_signal s (Sys.Signal_handle handle))
    [ Sys.sigint; Sys.sigterm ]

(* Durable writes for result artifacts: never leave a half-written JSON
   where a consumer (or a resumed run) will read it. *)
let write_file_atomic path content =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  output_string oc content;
  close_out oc;
  Sys.rename tmp path

(* Shared options *)

let seed_arg =
  Arg.(value & opt int 0 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")

let inputs_arg ~default =
  Arg.(
    value
    & opt (list int) default
    & info [ "i"; "inputs" ] ~docv:"INPUTS"
        ~doc:"Comma-separated processor inputs (group identifiers).")

let n_arg ~default =
  Arg.(value & opt int default & info [ "n" ] ~docv:"N" ~doc:"Number of processors.")

(* simulate: run an algorithm to completion and print validated outputs *)

let simulate_cmd =
  let algo_arg =
    Arg.(
      value
      & opt (enum [ ("snapshot", `Snapshot); ("renaming", `Renaming); ("consensus", `Consensus) ]) `Snapshot
      & info [ "a"; "algorithm" ] ~docv:"ALGO"
          ~doc:"Algorithm to run: $(b,snapshot), $(b,renaming) or $(b,consensus).")
  in
  let run algo seed inputs =
    let inputs = Array.of_list inputs in
    let report name steps pp_out outputs =
      Printf.printf "%s solved in %d shared-memory steps\n" name steps;
      Array.iteri
        (fun p o -> Printf.printf "  p%d: %s\n" (p + 1) (pp_out o))
        outputs;
      `Ok ()
    in
    match algo with
    | `Snapshot -> (
        match Core.solve_snapshot ~seed ~inputs () with
        | Ok r -> report "snapshot" r.Core.steps iset_str r.Core.outputs
        | Error e -> `Error (false, e))
    | `Renaming -> (
        match Core.solve_renaming ~seed ~inputs () with
        | Ok r ->
            report "renaming" r.Core.steps
              (fun (o : Algorithms.Renaming.output) ->
                Printf.sprintf "name %d (snapshot %s)" o.name_out
                  (iset_str o.snapshot))
              r.Core.outputs
        | Error e -> `Error (false, e))
    | `Consensus -> (
        match Core.solve_consensus ~seed ~inputs () with
        | Ok r -> report "consensus" r.Core.steps string_of_int r.Core.outputs
        | Error e -> `Error (false, e))
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Run an algorithm of the paper to completion.")
    Term.(ret (const run $ algo_arg $ seed_arg $ inputs_arg ~default:[ 1; 2; 3; 4 ]))

(* figure2 *)

let figure2_cmd =
  let actions_arg =
    Arg.(
      value & opt int 13
      & info [ "actions" ] ~docv:"K" ~doc:"Number of action rows to generate.")
  in
  let run actions =
    print_string (Core.figure2_table ~actions ());
    if actions >= 13 then
      print_endline "\n(steps 5-13 repeat forever after step 13)"
  in
  Cmd.v
    (Cmd.info "figure2"
       ~doc:"Regenerate the pathological execution of Figure 2.")
    Term.(const run $ actions_arg)

(* stable-views *)

let stable_views_cmd =
  let m_arg =
    Arg.(value & opt int 3 & info [ "m" ] ~docv:"M" ~doc:"Number of registers.")
  in
  let run seed n m =
    let inputs = Array.init n (fun i -> i + 1) in
    match Core.stable_view_analysis ~seed ~n ~m ~inputs () with
    | Error e -> `Error (false, e)
    | Ok r ->
        Printf.printf
          "views stabilized after %d steps (run of %d steps); stable views:\n"
          r.Analysis.Stable_views.stabilized_at r.Analysis.Stable_views.total_steps;
        List.iter
          (fun (p, v) -> Printf.printf "  p%d: %s\n" (p + 1) (iset_str v))
          r.Analysis.Stable_views.stable_views;
        let g = r.Analysis.Stable_views.graph in
        Fmt.pr "stable-view graph:@,%a@." Analysis.View_graph.pp g;
        Printf.printf "Theorem 4.8 (DAG with unique source): %b\n"
          (Analysis.View_graph.satisfies_theorem_4_8 g);
        `Ok ()
  in
  Cmd.v
    (Cmd.info "stable-views"
       ~doc:
         "Run the write-scan loop to stabilization and analyse the \
          stable-view graph (Theorem 4.8).")
    Term.(ret (const run $ seed_arg $ n_arg ~default:5 $ m_arg))

(* lower-bound *)

let lower_bound_cmd =
  let run n =
    let r = Core.lower_bound_demo ~n () in
    Fmt.pr "%a@." Analysis.Lower_bound.pp r;
    Printf.printf "p's information erased from memory: %b\n"
      (Analysis.Lower_bound.p_erased r)
  in
  Cmd.v
    (Cmd.info "lower-bound"
       ~doc:
         "Materialize the Section-2.1 covering execution: N processors, N-1 \
          registers, coordination impossible.")
    Term.(const run $ n_arg ~default:4)

(* check-snapshot: the TLC claim *)

let check_snapshot_cmd =
  let max_states_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-states" ] ~docv:"K" ~doc:"Abort exploration beyond K states.")
  in
  let crashes_arg =
    Arg.(
      value & opt int 0
      & info [ "crashes" ] ~docv:"K"
          ~doc:
            "Additionally verify containment safety under at most K injected \
             crash-stops.  The crash search is time-abstract — it branches \
             on crashing any live processor at any reachable state — so it \
             covers every timed crash plan with at most K crashes.  Safety \
             only: crashed processors trivially never terminate.")
  in
  let par_arg =
    Arg.(
      value & opt int 1
      & info [ "par" ] ~docv:"N"
          ~doc:
            "Explore with N worker domains (the sharded layer-synchronous \
             parallel engine).  N=1 keeps the sequential explorer.")
  in
  let par_ws_arg =
    Arg.(
      value & opt int 0
      & info [ "par-ws" ] ~docv:"N"
          ~doc:
            "Explore with N worker domains using the work-stealing engine \
             (Chase-Lev frontier deques, no layer barriers).  Supports \
             $(b,--max-seconds) but not $(b,--checkpoint) (there is no \
             consistent cut to snapshot without stopping the pool).  \
             Mutually exclusive with $(b,--par) and $(b,--fingerprint).")
  in
  let fingerprint_arg =
    Arg.(
      value & flag
      & info [ "fingerprint" ]
          ~doc:
            "Use the hash-compacted fingerprint engine: visited states are \
             64-bit fingerprints in a RAM tier capped by $(b,--fp-ram-mb), \
             spilling sorted runs to disk past the budget.  Safety-only \
             (wait-freedom is not decided) and lossy with a quantified \
             error: the summary reports the birthday omission bound \
             (states^2 / 2^64).  Supports $(b,--checkpoint), $(b,--resume) \
             and $(b,--max-seconds).")
  in
  let fp_ram_mb_arg =
    Arg.(
      value & opt int 64
      & info [ "fp-ram-mb" ] ~docv:"MB"
          ~doc:
            "RAM budget (MiB) for the fingerprint engine's in-memory tier; \
             past 3/4 load the tier spills to sorted on-disk runs.")
  in
  let reduce_arg =
    Arg.(
      value & flag
      & info [ "reduce" ]
          ~doc:
            "Quotient each per-wiring state space by its anonymity \
             symmetries (orbit-minimum canonicalization).  Pays off exactly \
             when several processors share an input; with all-distinct \
             inputs the symmetry group is trivial.")
  in
  let checkpoint_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "checkpoint" ] ~docv:"FILE"
          ~doc:
            "Checkpoint exploration state to $(docv) periodically \
             (atomically), so an interrupted or budget-exhausted run can \
             continue with $(b,--resume).  Sequential engine only.")
  in
  let resume_arg =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:
            "Restart from the $(b,--checkpoint) file if it exists (a \
             missing file just runs fresh).")
  in
  let max_seconds_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "max-seconds" ] ~docv:"SECS"
          ~doc:
            "Wall-clock budget; on expiry the run writes a final \
             checkpoint (with $(b,--checkpoint)) and exits with code 3.")
  in
  let run n max_states crashes par par_ws fingerprint fp_ram_mb reduce
      checkpoint resume max_seconds =
    if par < 1 then `Error (true, "--par must be at least 1")
    else if par_ws < 0 then `Error (true, "--par-ws must be at least 1")
    else if par_ws > 0 && par > 1 then
      `Error (true, "--par and --par-ws are mutually exclusive")
    else if fingerprint && (par > 1 || par_ws > 0) then
      `Error
        (true, "--fingerprint is a sequential engine (drop --par/--par-ws)")
    else if par_ws > 0 && checkpoint <> None then
      `Error
        ( true,
          "--par-ws has no checkpoint support; use --max-seconds for bounded \
           runs" )
    else if fp_ram_mb < 1 then `Error (true, "--fp-ram-mb must be at least 1")
    else if
      (not fingerprint) && par > 1
      && (checkpoint <> None || max_seconds <> None)
    then
      `Error
        ( true,
          "--checkpoint/--max-seconds require the sequential engine (--par 1)"
        )
    else begin
    install_signal_handlers ();
    let governor =
      if max_seconds <> None || par = 1 then
        Some
          (Modelcheck.Governor.create ?wall_seconds:max_seconds
             ~interrupted_flag:interrupted ())
      else None
    in
    let ckpt =
      Option.map
        (fun path -> { Modelcheck.Checkpoint.path; every_states = 100_000 })
        checkpoint
    in
    (* The resume command must reproduce every flag baked into the
       checkpoint's context fingerprint — a mismatched engine or
       reduction setting is refused on load. *)
    let resume_hint f =
      Printf.printf
        "resume with: anonsim check-snapshot -n %d%s%s --checkpoint %s \
         --resume\n"
        n
        (if reduce then " --reduce" else "")
        (if fingerprint then
           Printf.sprintf " --fingerprint --fp-ram-mb %d" fp_ram_mb
         else "")
        f
    in
    let finish_durably e =
      (* The sweep returns a plain [Error] for budget trips too; the
         governor's sticky verdict tells the two apart from a genuine
         violation. *)
      match Option.map Modelcheck.Governor.tripped governor with
      | Some (Some Modelcheck.Governor.Interrupted) ->
          Printf.printf "interrupted: %s\n" e;
          Option.iter resume_hint checkpoint;
          Stdlib.exit exit_interrupted
      | Some (Some _) ->
          Printf.printf "budget exhausted: %s\n" e;
          Option.iter resume_hint checkpoint;
          Stdlib.exit exit_exhausted
      | _ ->
          prerr_endline e;
          Stdlib.exit exit_violation
    in
    (* A clean verdict retires the checkpoint: resuming a finished run
       must start over, not replay a stale position. *)
    let retire_checkpoint () =
      match checkpoint with
      | Some f when Sys.file_exists f -> Sys.remove f
      | _ -> ()
    in
    let check_crashes () =
      if crashes <= 0 then `Ok ()
      else
        match
          Core.verify_snapshot_model_crashes ~n ~max_crashes:crashes
            ?max_states ~reduction:reduce ?governor ()
        with
        | Error e -> finish_durably e
        | Ok fs ->
            Printf.printf
              "verified: containment safety holds for n=%d under at most %d \
               injected crash-stop(s)\n"
              n crashes;
            Printf.printf
              "wirings: %d, states: %d, transitions: %d (of which %d crash \
               branches)\n"
              fs.Core.Snapshot_fault_mc.wirings_checked
              fs.Core.Snapshot_fault_mc.total_states
              fs.Core.Snapshot_fault_mc.total_transitions
              fs.Core.Snapshot_fault_mc.total_crash_branches;
            `Ok ()
    in
    if fingerprint then
      match
        Core.verify_snapshot_model_fp ~n ?max_states ~reduction:reduce
          ~ram_budget_bytes:(fp_ram_mb * 1024 * 1024)
          ?governor ?ckpt ~resume ()
      with
      | Error e -> finish_durably e
      | Ok s ->
          retire_checkpoint ();
          Printf.printf
            "verified (fingerprint engine): containment safety holds for \
             n=%d\n"
            n;
          Printf.printf
            "wirings: %d, states: %d (largest space %d), transitions: %d, \
             terminal states: %d\n"
            s.Modelcheck.Explorer.fp_wirings
            s.Modelcheck.Explorer.fp_total_states
            s.Modelcheck.Explorer.fp_max_space_states
            s.Modelcheck.Explorer.fp_total_transitions
            s.Modelcheck.Explorer.fp_terminal_states;
          Printf.printf
            "omission bound: %.3g (birthday, states^2 / 2^64); spilled runs: \
             %d (%d bytes)\n"
            s.Modelcheck.Explorer.fp_omission_bound
            s.Modelcheck.Explorer.fp_spilled_runs
            s.Modelcheck.Explorer.fp_spill_bytes;
          Printf.printf
            "note: safety only — the fingerprint engine stores no edges, so \
             wait-freedom is not decided\n";
          check_crashes ()
    else
      match
        Core.verify_snapshot_model ~n ?max_states ~reduction:reduce
          ~domains:(if par_ws > 0 then par_ws else par)
          ~ws:(par_ws > 0) ?governor ?ckpt ~resume ()
      with
      | Error e -> finish_durably e
      | Ok s ->
          retire_checkpoint ();
          Printf.printf
            "verified: snapshot algorithm correct and wait-free for n=%d\n" n;
          Printf.printf
            "wirings: %d, states: %d (largest space %d), transitions: %d, \
             terminal states: %d\n"
            s.Modelcheck.Explorer.wirings_checked s.Modelcheck.Explorer.total_states
            s.Modelcheck.Explorer.max_space_states s.Modelcheck.Explorer.total_transitions
            s.Modelcheck.Explorer.terminal_states;
          check_crashes ()
    end
  in
  Cmd.v
    (Cmd.info "check-snapshot"
       ~doc:
         "Exhaustively model-check the Figure-3 snapshot algorithm \
          (containment safety + wait-freedom) over all wirings — the \
          paper's TLC claim.  With $(b,--crashes) K, additionally \
          re-verify safety under at most K injected crash-stop faults.  \
          $(b,--par) N shards the exploration over N domains \
          (layer-synchronous); $(b,--par-ws) N uses the work-stealing pool \
          instead; $(b,--fingerprint) switches to the RAM-bounded \
          hash-compaction engine (safety only, quantified omission bound); \
          $(b,--reduce) \
          switches on symmetry reduction.  $(b,--checkpoint), \
          $(b,--resume) and $(b,--max-seconds) make the run durable: \
          exploration state is snapshotted atomically and an interrupted \
          (exit 4) or budget-exhausted (exit 3) run continues exactly \
          where it stopped.")
    Term.(
      ret
        (const run $ n_arg ~default:2 $ max_states_arg $ crashes_arg $ par_arg
       $ par_ws_arg $ fingerprint_arg $ fp_ram_mb_arg $ reduce_arg
       $ checkpoint_arg $ resume_arg $ max_seconds_arg))

(* check-nonatomic: the Section-8 claim *)

let check_nonatomic_cmd =
  let attempts_arg =
    Arg.(
      value & opt int 20_000
      & info [ "attempts" ] ~docv:"K" ~doc:"Number of random executions to try.")
  in
  let exhaustive_arg =
    Arg.(
      value & flag
      & info [ "exhaustive" ]
          ~doc:
            "Settle the claim by pruned-reachability search over all wirings \
             (3 processors only); explores up to ~10^8 states per candidate.")
  in
  let run n attempts exhaustive =
    if exhaustive then
      match Core.find_nonatomic_packed () with
      | Some (inputs, target, w) ->
          Printf.printf
            "exhaustive witness: with inputs (%d,%d,%d), processor %d \
             returns %s although the memory never contains it\n"
            inputs.(0) inputs.(1) inputs.(2)
            (w.Modelcheck.Snapshot3.culprit + 1)
            (iset_str target);
          Printf.printf "wiring %s, witness execution of %d steps\n"
            (Fmt.str "%a" Anonmem.Wiring.pp w.Modelcheck.Snapshot3.wiring)
            (List.length w.Modelcheck.Snapshot3.path);
          `Ok ()
      | None ->
          Printf.printf
            "no witness in the candidate configurations: each candidate \
             (inputs, target) was refuted exhaustively over all wirings\n";
          `Ok ()
    else
      match Core.find_nonatomic_execution ~n ~attempts () with
      | Some w ->
          Printf.printf
            "witness found (seed %d): processor %d returned %s,\n"
            w.Core.Snapshot_witness.witness_run.Core.Snapshot_witness.seed
            (w.Core.Snapshot_witness.culprit + 1)
            (iset_str w.Core.Snapshot_witness.culprit_output);
          Printf.printf "but the memory only ever contained: %s\n"
            (String.concat " "
               (List.map iset_str w.Core.Snapshot_witness.memory_sets_seen));
          Printf.printf
            "=> the algorithm solves the snapshot task but not atomic memory \
             snapshots.\n";
          `Ok ()
      | None ->
          `Error
            ( false,
              "no witness found by sampling (the covering patterns are rare); \
               run with --exhaustive to settle the claim" )
  in
  Cmd.v
    (Cmd.info "check-nonatomic"
       ~doc:
         "Search for the Section-8 witness that the snapshot algorithm does \
          not provide atomic memory snapshots.")
    Term.(ret (const run $ n_arg ~default:3 $ attempts_arg $ exhaustive_arg))

(* check-consensus: bounded model checking of agreement (extension) *)

let check_consensus_cmd =
  let max_ts_arg =
    Arg.(
      value & opt int 4
      & info [ "max-ts" ] ~docv:"T" ~doc:"Timestamp bound for the exploration.")
  in
  let run n max_ts =
    match Core.verify_consensus_bounded ~n ~max_ts () with
    | Ok states ->
        Printf.printf
          "verified: agreement and validity hold for n=%d over all wirings \
           and interleavings with timestamps <= %d (%d states)\n"
          n max_ts states;
        `Ok ()
    | Error e -> `Error (false, e)
  in
  Cmd.v
    (Cmd.info "check-consensus"
       ~doc:
         "Bounded model checking of the Figure-5 consensus algorithm's \
          safety (timestamps capped).")
    Term.(ret (const run $ n_arg ~default:2 $ max_ts_arg))

(* covering: quantify the overwrite phenomenon *)

let covering_cmd =
  let steps_arg =
    Arg.(
      value & opt int 3_000
      & info [ "steps" ] ~docv:"K" ~doc:"Number of steps to run.")
  in
  let run seed n steps =
    let module Trace = Anonmem.Trace.Make (Algorithms.Write_scan) in
    let module Sys = Trace.Sys in
    let rng = Repro_util.Rng.create ~seed in
    let cfg = Algorithms.Write_scan.cfg ~n ~m:n in
    let wiring = Anonmem.Wiring.random rng ~n ~m:n in
    let inputs = Array.init n (fun i -> i + 1) in
    let st = Sys.init ~cfg ~wiring ~inputs in
    let tr = Trace.create () in
    let _ =
      Sys.run ~max_steps:steps
        ~sched:(Anonmem.Scheduler.random (Repro_util.Rng.split rng))
        ~on_event:(Trace.on_event tr) st
    in
    let c = Trace.covering tr in
    Printf.printf
      "write-scan loop, %d processors, %d registers, %d steps (seed %d):\n" n n
      steps seed;
    Fmt.pr "  %a@." Trace.pp_covering c;
    Printf.printf "  overwrite rate: %.1f%%, lost-write rate: %.1f%%\n"
      (100. *. float_of_int c.Trace.overwrites /. float_of_int (max 1 c.Trace.writes))
      (100. *. float_of_int c.Trace.lost_writes /. float_of_int (max 1 c.Trace.writes))
  in
  Cmd.v
    (Cmd.info "covering"
       ~doc:
         "Quantify the covering phenomenon: overwrites and lost writes in \
          the write-scan loop.")
    Term.(const run $ seed_arg $ n_arg ~default:5 $ steps_arg)

(* faults: one execution under an explicit fault plan *)

let faults_cmd =
  let protocol_arg =
    Arg.(
      value
      & opt string "snapshot"
      & info [ "p"; "protocol" ] ~docv:"PROTOCOL"
          ~doc:
            (Printf.sprintf "Protocol to run: one of %s."
               (String.concat ", " Fuzzing.Targets.keys)))
  in
  let plan_arg =
    Arg.(
      value & opt string ""
      & info [ "plan" ] ~docv:"PLAN"
          ~doc:
            "Fault plan to inject: ';'-separated events like \
             'crash:p2\\@10', 'recover:p3\\@8', 'omit:p1\\@4', \
             'stale:p1\\@6', 'stuck:r2\\@0' (1-based processors/registers, \
             0-based global step times).  Empty plan = fault-free run.")
  in
  let m_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "m" ] ~docv:"M"
          ~doc:"Number of registers (default: the standard m = n).")
  in
  let max_steps_arg =
    Arg.(
      value & opt int 2_000
      & info [ "max-steps" ] ~docv:"K" ~doc:"Global step budget of the run.")
  in
  let run key seed inputs m plan max_steps =
    match Fuzzing.Targets.find key with
    | None ->
        `Error
          ( false,
            Printf.sprintf "unknown protocol %S (try one of %s)" key
              (String.concat ", " Fuzzing.Targets.keys) )
    | Some (module T : Fuzzing.Target.S) -> (
        let module H = Fuzzing.Harness.Make (T) in
        match Anonmem.Fault.of_string plan with
        | exception Invalid_argument msg -> `Error (false, msg)
        | faults ->
            let inputs = Array.of_list inputs in
            let n = Array.length inputs in
            let m = match m with Some m -> m | None -> n in
            let rng = Repro_util.Rng.create ~seed in
            let wiring = Anonmem.Wiring.random rng ~n ~m in
            let cfg = T.cfg ~n ~m in
            let run =
              H.exec ~record:true ~cfg ~wiring ~inputs
                ~sched:(Anonmem.Scheduler.random (Repro_util.Rng.split rng))
                ~faults ~max_steps ()
            in
            Fmt.pr "%s under plan [%a]: seed %d, n=%d m=%d, wiring %a@." key
              Anonmem.Fault.pp faults seed n m Anonmem.Wiring.pp wiring;
            Fmt.pr "%a@." Repro_util.Text_table.pp (H.Tr.to_table cfg run.trace);
            Array.iteri
              (fun p steps ->
                Printf.printf "  p%d: %s after %d steps\n" (p + 1)
                  (if Option.is_some run.H.outputs.(p) then "halted"
                   else "still running")
                  steps)
              run.H.step_counts;
            (match H.verdict ~n ~m ~inputs run with
            | Ok () -> Fmt.pr "verdict: no violation@."
            | Error f -> Fmt.pr "verdict: %a@." Tasks.Task_failure.pp f);
            `Ok ())
  in
  Cmd.v
    (Cmd.info "faults"
       ~doc:
         "Run one randomly scheduled execution with an explicit fault plan \
          injected, print the merged step/fault trace and judge the outcome \
          with the protocol's task oracle.")
    Term.(
      ret
        (const run $ protocol_arg $ seed_arg
       $ inputs_arg ~default:[ 1; 2; 3 ]
       $ m_arg $ plan_arg $ max_steps_arg))

(* parallel *)

let parallel_cmd =
  let run seed inputs =
    let inputs = Array.of_list inputs in
    match Runtime_shm.parallel_snapshot ~seed ~inputs () with
    | Ok r ->
        Printf.printf "parallel snapshot on %d domains:\n" (Array.length inputs);
        Array.iteri
          (fun p -> function
            | Some o ->
                Printf.printf "  domain %d: %s (%d ops)\n" (p + 1) (iset_str o)
                  r.Runtime_shm.Snapshot_run.steps.(p)
            | None -> ())
          r.Runtime_shm.Snapshot_run.outputs;
        `Ok ()
    | Error e -> `Error (false, e)
  in
  Cmd.v
    (Cmd.info "parallel"
       ~doc:"Run the snapshot algorithm on real OCaml 5 domains.")
    Term.(ret (const run $ seed_arg $ inputs_arg ~default:[ 1; 2; 3; 4 ]))

(* feasibility: the portfolio's empirical feasibility map *)

let feasibility_cmd =
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE"
          ~doc:"Write the map as JSON to $(docv) (e.g. FEASIBILITY.json).")
  in
  let quick_arg =
    Arg.(
      value & flag
      & info [ "quick" ]
          ~doc:"Only the n=2 rows of each grid (the smoke-test budget).")
  in
  let max_states_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-states" ] ~docv:"K"
          ~doc:"Abort any single exploration beyond $(docv) states.")
  in
  let journal_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "journal" ] ~docv:"FILE"
          ~doc:
            "Append each completed cell to $(docv) (checksummed JSONL; \
             default: the $(b,--out) file plus \".journal\", or \
             FEASIBILITY.journal).  The journal is what $(b,--resume) \
             replays.")
  in
  let resume_arg =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:
            "Replay conclusively-finished cells from the journal instead \
             of recomputing them (torn tails from a crash are healed \
             first); cells that hit a resource limit or budget are \
             recomputed, continuing from their engine checkpoint when \
             $(b,--ckpt-dir) is set.")
  in
  let max_seconds_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "max-seconds" ] ~docv:"SECS"
          ~doc:
            "Per-cell wall-clock budget; an over-budget cell is recorded \
             as $(i,unknown) (with a resumable checkpoint under \
             $(b,--ckpt-dir)) and the sweep continues.")
  in
  let max_heap_mb_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-heap-mb" ] ~docv:"MB"
          ~doc:
            "Per-cell live-heap budget in megabytes (checked at major \
             collections); over-budget cells degrade to $(i,unknown) like \
             $(b,--max-seconds).")
  in
  let ckpt_dir_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "ckpt-dir" ] ~docv:"DIR"
          ~doc:
            "Directory for per-cell engine checkpoints (created if \
             missing).  Interrupted or over-budget cells leave a \
             checkpoint here; re-running the sweep with the same \
             $(b,--ckpt-dir) continues them mid-exploration.")
  in
  let run quick max_states out journal resume max_seconds max_heap_mb ckpt_dir
      =
    install_signal_handlers ();
    let journal_path =
      match (journal, out) with
      | Some j, _ -> j
      | None, Some f -> f ^ ".journal"
      | None, None -> "FEASIBILITY.journal"
    in
    (match ckpt_dir with
    | Some dir when not (Sys.file_exists dir) -> Sys.mkdir dir 0o755
    | _ -> ());
    let grids = Analysis.Feasibility.grids ~quick () in
    let floor_of, coprime_of = Analysis.Feasibility.grid_params grids in
    let jnl, recovered =
      if resume then Runtime_shm.Journal.open_append journal_path
      else (Runtime_shm.Journal.create journal_path, [])
    in
    (* Only conclusive verdicts replay from the journal: Limit/Unknown
       cells are exactly the ones a resumed run should try again (with
       their checkpoints, when available). *)
    let cached_cells =
      List.filter_map
        (Analysis.Feasibility.cell_of_record ~floor_of ~coprime_of)
        recovered
      |> List.filter (fun c ->
             Analysis.Feasibility.status_final c.Analysis.Feasibility.status)
    in
    if resume && cached_cells <> [] then
      Printf.printf "resuming: %d cell(s) replayed from %s\n%!"
        (List.length cached_cells)
        journal_path;
    let cached ~task ~n ~m =
      List.find_map
        (fun c ->
          if
            c.Analysis.Feasibility.task = task
            && c.Analysis.Feasibility.n = n
            && c.Analysis.Feasibility.m = m
          then Some c.Analysis.Feasibility.status
          else None)
        cached_cells
    in
    let heap_words =
      Option.map (fun mb -> mb * 1024 * 1024 / (Sys.word_size / 8)) max_heap_mb
    in
    let cells =
      (* The map is the symmetry-reduced sequential engine's verdict;
         engine agreement is test_portfolio's job.  Violating cells
         re-explore unreduced only to extract a replayable witness.
         Clean sweeps run over wiring classes (processor-relabelling
         quotient) — sound for these id-agnostic verdicts, and the only
         thing that keeps the 14400-wiring n=3 m=5 cells affordable. *)
      Core.feasibility_map ~quick ?max_states ~reduction:true
        ~wiring_classes:true ?wall_seconds:max_seconds ?heap_words
        ~interrupted_flag:interrupted ?ckpt_dir ~cached
        ~on_fresh:(fun c ->
          Runtime_shm.Journal.append jnl (Analysis.Feasibility.cell_to_record c))
        ~stop:(fun () -> !interrupted)
        ~on_cell:(fun c ->
          Printf.printf "%-7s n=%d m=%d  expected %-12s -> %s\n%!"
            c.Analysis.Feasibility.task c.Analysis.Feasibility.n
            c.Analysis.Feasibility.m
            (Fmt.str "%a" Analysis.Feasibility.pp_expectation
               c.Analysis.Feasibility.expectation)
            (Fmt.str "%a" Analysis.Feasibility.pp_status
               c.Analysis.Feasibility.status))
        ()
    in
    Runtime_shm.Journal.close jnl;
    print_newline ();
    print_string
      (Repro_util.Text_table.render (Analysis.Feasibility.to_table cells));
    (match out with
    | Some file ->
        write_file_atomic file (Analysis.Feasibility.to_json cells);
        Printf.printf "\nwrote %s\n" file
    | None -> ());
    let unknown_cells =
      List.filter
        (fun c ->
          match c.Analysis.Feasibility.status with
          | Analysis.Feasibility.Unknown _ -> true
          | _ -> false)
        cells
    in
    let resume_hint () =
      Printf.printf "resume with: anonsim feasibility%s --journal %s%s%s \
                     --resume\n"
        (if quick then " --quick" else "")
        journal_path
        (match out with Some f -> " -o " ^ f | None -> "")
        (match ckpt_dir with Some d -> " --ckpt-dir " ^ d | None -> "")
    in
    if !interrupted then begin
      Printf.printf "\ninterrupted: %d cell(s) journaled, %d pending\n"
        (Runtime_shm.Journal.next_seq jnl)
        (List.length
           (List.concat_map (fun g -> g.Analysis.Feasibility.g_cells) grids)
        - List.length cells);
      resume_hint ();
      Stdlib.exit exit_interrupted
    end
    else if unknown_cells <> [] then begin
      Printf.printf
        "\n%d cell(s) exhausted their budget and were marked unknown\n"
        (List.length unknown_cells);
      resume_hint ();
      Stdlib.exit exit_exhausted
    end
    else if Analysis.Feasibility.all_confirmed cells then begin
      Printf.printf
        "\nall %d cells confirmed the coprimality-threshold prediction\n"
        (List.length cells);
      `Ok ()
    end
    else begin
      prerr_endline "some cells contradicted the predicted map";
      Stdlib.exit exit_violation
    end
  in
  Cmd.v
    (Cmd.info "feasibility"
       ~doc:
         "Compute the portfolio feasibility map: exhaustively verify the \
          symmetric mutex, the desanonymization layer and the weak leader \
          protocol at each (n, m) cell and compare every verdict against \
          the coprimality-threshold prediction.  The sweep is durable: \
          every completed cell is appended to a checksummed journal, \
          SIGINT/SIGTERM stop it cleanly (exit 4), per-cell budgets \
          degrade cells to $(i,unknown) instead of killing the run (exit \
          3), and $(b,--resume) continues a previous sweep, replaying \
          finished cells and restarting interrupted ones from their \
          engine checkpoints.")
    Term.(
      ret
        (const run $ quick_arg $ max_states_arg $ out_arg $ journal_arg
       $ resume_arg $ max_seconds_arg $ max_heap_mb_arg $ ckpt_dir_arg))

(* inductive: certify the snapshot invariant by induction / prune with it *)

let inductive_cmd =
  let module I = Modelcheck.Inductive in
  let check_arg =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "Discharge the two induction obligations (Init ⇒ Inv and Inv ∧ \
             Next ⇒ Inv′) for the clause set over the abstract transition \
             system — a pass certifies the invariant for every register \
             count, wiring and schedule at this $(b,-n).  This is the \
             default mode.")
  in
  let prune_arg =
    Arg.(
      value & flag
      & info [ "prune" ]
          ~doc:
            "Instead of checking, run the full snapshot model-checking \
             sweep ($(b,check-snapshot) semantics) with the proved \
             invariant as a pruning oracle and report how many candidate \
             successors it skipped.  A proved invariant never fires on a \
             reachable state, so the sweep's verdict and state counts \
             match the unpruned run exactly.")
  in
  let clauses_arg =
    Arg.(
      value & opt string "proved"
      & info [ "clauses" ] ~docv:"CLAUSES"
          ~doc:
            "Comma-separated clause names, or the presets $(b,proved) (the \
             containment-and-coverage conjunction that passes induction) \
             and $(b,candidates) (plus the comparability strengthenings, \
             which are rejected with CTIs).  Check mode only.")
  in
  let concrete_arg =
    Arg.(
      value & flag
      & info [ "concrete" ]
          ~doc:
            "Additionally cross-check with the concrete full-universe \
             checker on the m = n instance (n ≤ 2 only): no abstraction, \
             every wiring, CTIs classified against the actual reachable \
             spaces.")
  in
  let max_ctis_arg =
    Arg.(
      value & opt int 5
      & info [ "max-ctis" ] ~docv:"K"
          ~doc:"Stop a refuted check after recording K CTIs.")
  in
  let checkpoint_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "checkpoint" ] ~docv:"FILE"
          ~doc:
            "Checkpoint the induction cursor to $(docv) periodically so a \
             budget-exhausted or interrupted check resumes with \
             $(b,--resume).  Check mode only.")
  in
  let resume_arg =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:
            "Restart from the $(b,--checkpoint) file if it exists (a \
             missing file just runs fresh).")
  in
  let max_seconds_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "max-seconds" ] ~docv:"SECS"
          ~doc:
            "Wall-clock budget; on expiry the run writes a final \
             checkpoint (with $(b,--checkpoint)) and exits with code 3.")
  in
  let run n check prune clauses concrete max_ctis checkpoint resume
      max_seconds =
    if check && prune then
      `Error (true, "--check and --prune are mutually exclusive")
    else begin
      install_signal_handlers ();
      let governor =
        Modelcheck.Governor.create ?wall_seconds:max_seconds
          ~interrupted_flag:interrupted ()
      in
      let exit_on_trip () =
        match Modelcheck.Governor.tripped governor with
        | Some Modelcheck.Governor.Interrupted -> Stdlib.exit exit_interrupted
        | _ -> Stdlib.exit exit_exhausted
      in
      if prune then begin
        match
          Core.verify_snapshot_model ~n ~prune_with_invariant:true ~governor
            ()
        with
        | Ok s ->
            Printf.printf
              "verified (invariant-pruned): snapshot correct and wait-free \
               for n=%d\n"
              n;
            Printf.printf
              "wirings: %d, states: %d, transitions: %d, pruned \
               successors: %d\n"
              s.Modelcheck.Explorer.wirings_checked
              s.Modelcheck.Explorer.total_states
              s.Modelcheck.Explorer.total_transitions
              s.Modelcheck.Explorer.total_pruned;
            if s.Modelcheck.Explorer.total_pruned <> 0 then begin
              (* a proved invariant cannot fire on reachable states *)
              prerr_endline
                "error: the proved invariant pruned a reachable state";
              Stdlib.exit exit_violation
            end;
            `Ok ()
        | Error e ->
            if Modelcheck.Governor.tripped governor <> None then begin
              Printf.printf "budget exhausted: %s\n" e;
              exit_on_trip ()
            end
            else begin
              prerr_endline e;
              Stdlib.exit exit_violation
            end
      end
      else begin
        match I.parse_clauses clauses with
        | Error e -> `Error (false, e)
        | Ok cls -> (
            let ckpt =
              Option.map
                (fun path ->
                  { Modelcheck.Checkpoint.path; every_states = 500_000 })
                checkpoint
            in
            let resume_hint () =
              match checkpoint with
              | Some f ->
                  Printf.printf
                    "resume with: anonsim inductive --check -n %d --clauses \
                     %s --checkpoint %s --resume\n"
                    n clauses f
              | None -> ()
            in
            let finish_concrete () =
              if not concrete then `Ok ()
              else if n > 2 then
                `Error
                  ( false,
                    "--concrete is limited to n <= 2 (the full universe is \
                     enumerated); the abstract check covers larger n" )
              else
                match I.check_concrete ~max_ctis ~governor ~n cls with
                | I.C_proved cr ->
                    Fmt.pr
                      "concrete cross-check (m = n, all wirings): proved@,%a@."
                      I.pp_report cr.I.k_report;
                    `Ok ()
                | I.C_refuted cr ->
                    Fmt.pr "concrete cross-check: refuted@,%a@." I.pp_report
                      cr.I.k_report;
                    List.iteri
                      (fun i c ->
                        if i < 3 then
                          Fmt.pr "@,%a@." I.pp_ccti (I.shrink_ccti ~n cls c))
                      cr.I.k_ctis;
                    Stdlib.exit exit_violation
                | I.C_gave_up { reason; processed } ->
                    Fmt.pr "concrete cross-check gave up (%a) after %d states@."
                      Modelcheck.Governor.pp_reason reason processed;
                    exit_on_trip ()
            in
            match
              I.check_abstract ~max_ctis ~governor ?ckpt ~resume ~n cls
            with
            | I.Proved r ->
                Fmt.pr
                  "inductive: both obligations discharged for n=%d — the \
                   invariant holds in every reachable state of every \
                   (m, wiring, schedule) instance at this n@,%a@."
                  n I.pp_report r;
                (match checkpoint with
                | Some f when Sys.file_exists f -> Sys.remove f
                | _ -> ());
                finish_concrete ()
            | I.Refuted r ->
                Fmt.pr "inductive: refuted at n=%d@,%a@." n I.pp_report r;
                List.iteri
                  (fun i cti ->
                    if i < 3 then
                      Fmt.pr "@,shrunk CTI:@,%a@." I.pp_acti
                        (I.shrink_acti ~n cls cti))
                  r.I.r_ctis;
                Stdlib.exit exit_violation
            | I.Gave_up { reason; processed } ->
                Fmt.pr "inductive: gave up (%a) after %d configurations@."
                  Modelcheck.Governor.pp_reason reason processed;
                resume_hint ();
                exit_on_trip ())
      end
    end
  in
  Cmd.v
    (Cmd.info "inductive"
       ~doc:
         "Certify the Figure-3 snapshot invariant by induction (Init ⇒ Inv \
          and Inv ∧ Next ⇒ Inv′ over an abstraction quantifying out the \
          register count, wiring and schedule), or — with $(b,--prune) — \
          reuse the proved invariant as a pruning oracle inside the \
          explicit model-checking sweep.  Failed checks report shrunk, \
          1-minimal counterexamples to induction; $(b,--concrete) \
          cross-validates the abstraction against the full concrete \
          universe at n ≤ 2.")
    Term.(
      ret
        (const run $ n_arg ~default:2 $ check_arg $ prune_arg $ clauses_arg
       $ concrete_arg $ max_ctis_arg $ checkpoint_arg $ resume_arg
       $ max_seconds_arg))

let main_cmd =
  let doc =
    "reproduction of Losa & Gafni, \"Understanding Read-Write Wait-Free \
     Coverings in the Fully-Anonymous Shared-Memory Model\" (PODC 2024)"
  in
  Cmd.group
    (Cmd.info "anonsim" ~version:"1.0.0" ~doc)
    [
      simulate_cmd;
      figure2_cmd;
      stable_views_cmd;
      lower_bound_cmd;
      check_snapshot_cmd;
      check_consensus_cmd;
      check_nonatomic_cmd;
      covering_cmd;
      faults_cmd;
      parallel_cmd;
      feasibility_cmd;
      inductive_cmd;
    ]

let () = exit (Cmd.eval main_cmd)
