lib/tasks/consensus_task.mli: Outcome Repro_util
