lib/util/text_table.ml: Array Buffer Fmt List String
