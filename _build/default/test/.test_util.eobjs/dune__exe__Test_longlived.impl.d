test/test_longlived.ml: Alcotest Algorithms Anonmem Array Fmt Iset List Printf Repro_util Rng Tasks
