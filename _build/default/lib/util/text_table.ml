type t = { headers : string list; mutable rows : string list list }

let create ~headers = { headers; rows = [] }

let add_row t row =
  let width = List.length t.headers in
  let len = List.length row in
  if len > width then invalid_arg "Text_table.add_row: row wider than header";
  let padded = row @ List.init (width - len) (fun _ -> "") in
  t.rows <- padded :: t.rows

let render t =
  let rows = List.rev t.rows in
  let all = t.headers :: rows in
  let ncols = List.length t.headers in
  let widths = Array.make ncols 0 in
  List.iter
    (List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)))
    all;
  let buf = Buffer.create 256 in
  let emit_row cells =
    List.iteri
      (fun i cell ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf cell;
        if i < ncols - 1 then
          Buffer.add_string buf (String.make (widths.(i) - String.length cell) ' '))
      cells;
    Buffer.add_char buf '\n'
  in
  emit_row t.headers;
  let total = Array.fold_left ( + ) 0 widths + (2 * (ncols - 1)) in
  Buffer.add_string buf (String.make total '-');
  Buffer.add_char buf '\n';
  List.iter emit_row rows;
  Buffer.contents buf

let pp ppf t = Fmt.string ppf (render t)
