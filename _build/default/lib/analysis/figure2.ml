(** Figure 2: the pathological infinite execution of Section 4.1, and its
    5-processor extension.

    Three processors with inputs 1, 2, 3 run the write–scan loop over three
    registers.  Processor 1 is wired through the permutation (2 3 1) while
    processors 2 and 3 are wired straight through; under the cyclic
    schedule below they overwrite each other forever so that the views
    [{1}], [{1,2}] and [{1,3}] — the last two incomparable — are all
    maintained ad infinitum.  Steps 5–13 repeat forever after step 13.

    The extension adds two processors [p] and [p'] with input 1 whose reads
    and writes are timed (by an omniscient adversary scheduler) so that [p]
    only ever sees [{1,2}] and [p'] only ever sees [{1,3}] in {e every}
    register of {e every} scan, without perturbing the base execution.
    This kills naive termination rules: running the write–scan loop, [p]
    and [p'] accumulate unboundedly many consecutive "clean" scans (reading
    exactly their own view everywhere), so any rule that outputs after a
    bounded number of clean scans — single collect, double collect, any
    [k]-collect — would emit the incomparable sets [{1,2}] and [{1,3}].
    Under {!Algorithms.Snapshot}, by contrast, the levels of [p] and [p']
    stay pinned at 1 (they read level-0 values from the churners) and only
    processor 1 — whose view [{1}] is the unique source of the stable-view
    graph — reaches level [N] and terminates, breaking the pattern exactly
    as Section 5.1 describes. *)

open Repro_util
module Protocol = Anonmem.Protocol
module Wiring = Anonmem.Wiring
module Write_scan = Algorithms.Write_scan

(* Processor 1's wiring: private register i is physical register (i+1) mod 3,
   i.e. the paper's sigma_1 = (2 3 1).  This makes its fair write order
   r2, r3, r1, matching steps 1, 4, 7, 10, 13 of the figure. *)
let sigma1 = [ 1; 2; 0 ]
let id3 = [ 0; 1; 2 ]
let base_wiring () = Wiring.of_lists [ sigma1; id3; id3 ]
let base_inputs = [| 1; 2; 3 |]

(** [(pid, iterations)] of each action row: one iteration is one write
    followed by a full scan (4 steps with 3 registers).  Action 1 is
    processor 1's double write; actions 5–13 form the repeating cycle
    p2, p3, p1. *)
let action_schedule k =
  if k = 0 then (0, 2) else ([| 1; 2; 0 |].((k - 1) mod 3), 1)

let action_label k =
  if k = 0 then "p1 writes twice and ends with a scan"
  else
    match (k - 1) mod 3 with
    | 0 -> "p2 writes then scans"
    | 1 -> "p3 overwrites p2 then scans"
    | _ -> "p1 overwrites p3 then scans"

type row = { action : string; registers : Iset.t list; views : Iset.t list }

(** The execution as a step-level ultimately-periodic schedule: an action
    is one write followed by a 3-register scan (4 steps).  Feed these to
    {!Anonmem.Scheduler.script_then_cycle} to drive the execution through
    a generic runner (e.g. the stable-view analysis). *)
let step_prefix =
  List.concat_map
    (fun (pid, iters) -> List.init (4 * iters) (fun _ -> pid))
    [ (0, 2); (1, 1); (2, 1); (0, 1) ]

let step_cycle =
  List.concat_map (fun pid -> [ pid; pid; pid; pid ]) [ 1; 2; 0; 1; 2; 0; 1; 2; 0 ]

let iset = Iset.of_list

(** The thirteen post-states printed in Figure 2 of the paper, used as the
    reference the generated execution is checked against. *)
let expected_rows : row list =
  let r regs views action =
    {
      action;
      registers = List.map iset regs;
      views = List.map iset views;
    }
  in
  [
    r [ []; [ 1 ]; [ 1 ] ] [ [ 1 ]; [ 2 ]; [ 3 ] ] (action_label 0);
    r [ [ 2 ]; [ 1 ]; [ 1 ] ] [ [ 1 ]; [ 1; 2 ]; [ 3 ] ] (action_label 1);
    r [ [ 3 ]; [ 1 ]; [ 1 ] ] [ [ 1 ]; [ 1; 2 ]; [ 1; 3 ] ] (action_label 2);
    r [ [ 1 ]; [ 1 ]; [ 1 ] ] [ [ 1 ]; [ 1; 2 ]; [ 1; 3 ] ] (action_label 3);
    r [ [ 1 ]; [ 1; 2 ]; [ 1 ] ] [ [ 1 ]; [ 1; 2 ]; [ 1; 3 ] ] (action_label 4);
    r [ [ 1 ]; [ 1; 3 ]; [ 1 ] ] [ [ 1 ]; [ 1; 2 ]; [ 1; 3 ] ] (action_label 5);
    r [ [ 1 ]; [ 1 ]; [ 1 ] ] [ [ 1 ]; [ 1; 2 ]; [ 1; 3 ] ] (action_label 6);
    r [ [ 1 ]; [ 1 ]; [ 1; 2 ] ] [ [ 1 ]; [ 1; 2 ]; [ 1; 3 ] ] (action_label 7);
    r [ [ 1 ]; [ 1 ]; [ 1; 3 ] ] [ [ 1 ]; [ 1; 2 ]; [ 1; 3 ] ] (action_label 8);
    r [ [ 1 ]; [ 1 ]; [ 1 ] ] [ [ 1 ]; [ 1; 2 ]; [ 1; 3 ] ] (action_label 9);
    r [ [ 1; 2 ]; [ 1 ]; [ 1 ] ] [ [ 1 ]; [ 1; 2 ]; [ 1; 3 ] ] (action_label 10);
    r [ [ 1; 3 ]; [ 1 ]; [ 1 ] ] [ [ 1 ]; [ 1; 2 ]; [ 1; 3 ] ] (action_label 11);
    r [ [ 1 ]; [ 1 ]; [ 1 ] ] [ [ 1 ]; [ 1; 2 ]; [ 1; 3 ] ] (action_label 12);
  ]

module Sys = Anonmem.System.Make (Write_scan)

(** Replay the base execution for [actions] action rows (default 13, the
    figure; more rows continue the repeating cycle). *)
let generate ?(actions = 13) () =
  let cfg = Write_scan.cfg ~n:3 ~m:3 in
  let state = Sys.init ~cfg ~wiring:(base_wiring ()) ~inputs:base_inputs in
  let snapshot_row k =
    {
      action = action_label k;
      registers = Array.to_list state.Sys.registers;
      views =
        Array.to_list (Array.map Write_scan.view_of_local state.Sys.locals);
    }
  in
  List.init actions (fun k ->
      let pid, iters = action_schedule k in
      for _ = 1 to iters * 4 do
        ignore (Sys.step_in_place state pid)
      done;
      snapshot_row k)

let to_table rows =
  let t =
    Text_table.create
      ~headers:[ "#"; "Actions"; "r1"; "r2"; "r3"; "view[p1]"; "view[p2]"; "view[p3]" ]
  in
  List.iteri
    (fun i { action; registers; views } ->
      Text_table.add_row t
        (string_of_int (i + 1) :: action
        :: List.map Iset.to_string registers
        @ List.map Iset.to_string views))
    rows;
  t

(** {1 The 5-processor extension}

    Generic over the protocol run by the two extra processors so that the
    same adversary demonstrates both the double-collect failure and the
    snapshot algorithm's resistance.  All five processors run the same
    protocol [P] (full anonymity: one program); the adversary only controls
    timing. *)

module Extension (P : sig
  include Anonmem.Protocol.S with type input = int

  val view_of_value : value -> Iset.t
  (** The set-of-inputs component of a register value, used by the
      adversary to time the steps of [p] and [p']. *)
end) =
struct
  module Sys = Anonmem.System.Make (P)

  let p_id = 3
  let p'_id = 4
  let target = function 3 -> iset [ 1; 2 ] | 4 -> iset [ 1; 3 ] | _ -> assert false

  (* p and p' share processor 1's scan order r2, r3, r1: the {1,2} (resp.
     {1,3}) windows rotate through the physical registers in exactly that
     order, one window per base action triple. *)
  let wiring () = Wiring.of_lists [ sigma1; id3; id3; sigma1; sigma1 ]
  let inputs = [| 1; 2; 3; 1; 1 |]

  (** A step of an extra processor is safe when it cannot perturb the base
      execution nor the processor's own illusion: a read must return
      exactly the target set (or, before the illusion is established, any
      set it already knows), a write must not change the register's set. *)
  let safe state q =
    match Sys.event_of state q with
    | None -> false
    | Some (Sys.Read_ev { value; _ }) ->
        Iset.equal (P.view_of_value value) (target q)
    | Some (Sys.Write_ev { value; previous; _ }) ->
        Iset.equal (P.view_of_value value) (P.view_of_value previous)

  type result = {
    state : Sys.state;
    base_actions : int;
    extra_steps : int array;  (** steps taken by p and p' (indices 3, 4) *)
    extra_events : Sys.event list array;
        (** chronological shared-memory events of p and p', for the
            clean-scan analysis *)
  }

  (** Run the base schedule for [cycles] full 9-action periods (after the
      4-action prologue), interleaving every safe step of [p] and [p'].
      Base processors that terminate (possible when [P] is the snapshot
      algorithm) are skipped, which is exactly the paper's observation that
      a terminating source breaks the pattern. *)
  let run ~cfg ~cycles () =
    if P.processors cfg <> 5 || P.registers cfg <> 3 then
      invalid_arg "Figure2.Extension.run: cfg must be 5 processors, 3 registers";
    let state = Sys.init ~cfg ~wiring:(wiring ()) ~inputs in
    let extra_steps = Array.make 5 0 in
    let extra_events = Array.make 5 [] in
    let drain () =
      let progress = ref true in
      while !progress do
        progress := false;
        List.iter
          (fun q ->
            if safe state q then begin
              let ev = Sys.step_in_place state q in
              extra_steps.(q) <- extra_steps.(q) + 1;
              extra_events.(q) <- ev :: extra_events.(q);
              progress := true
            end)
          [ p_id; p'_id ]
      done
    in
    let base_actions = 4 + (9 * cycles) in
    for k = 0 to base_actions - 1 do
      let pid, iters = action_schedule k in
      for _ = 1 to iters * 4 do
        drain ();
        if not (Sys.is_halted state pid) then
          ignore (Sys.step_in_place state pid)
      done
    done;
    drain ();
    {
      state;
      base_actions;
      extra_steps;
      extra_events = Array.map List.rev extra_events;
    }

  (** Scans of one processor reconstructed from its event stream: each is
      [(view_written, reads)] for one write–scan round; [clean] means every
      read returned exactly the view written (the view at scan start). *)
  type scan_summary = { total_scans : int; final_clean_streak : int }

  let scan_summary events =
    let finish (total, streak) written reads =
      let clean =
        List.length reads = 3
        && List.for_all (fun v -> Iset.equal v written) reads
      in
      (total + 1, if clean then streak + 1 else 0)
    in
    let rec go acc current events =
      match (events, current) with
      | [], None -> acc
      | [], Some (written, reads) ->
          (* Ignore a trailing incomplete scan. *)
          if List.length reads = 3 then finish acc written reads else acc
      | Sys.Write_ev { value; _ } :: rest, None ->
          go acc (Some (P.view_of_value value, [])) rest
      | Sys.Write_ev { value; _ } :: rest, Some (written, reads) ->
          let acc =
            if List.length reads = 3 then finish acc written reads else acc
          in
          go acc (Some (P.view_of_value value, [])) rest
      | Sys.Read_ev { value; _ } :: rest, Some (written, reads) ->
          go acc (Some (written, reads @ [ P.view_of_value value ])) rest
      | Sys.Read_ev _ :: rest, None ->
          (* Reads before the first write belong to no scan here. *)
          go acc None rest
    in
    let total_scans, final_clean_streak = go (0, 0) None events in
    { total_scans; final_clean_streak }
end

module Write_scan_ext = Extension (struct
  include Write_scan

  let view_of_value v = v
end)

module Snapshot_ext = Extension (struct
  include Algorithms.Snapshot

  let view_of_value (v : Algorithms.Snapshot.value) = v.view
end)
