(** The consensus task (Definition 3.1) and its group version.

    Group version (Section 3.2): processors must agree on the identifier of
    a participating group.  Formally, every output sample must be a
    constant function onto a participating group identifier.

    {!check_agreement} is the stronger, sample-independent property that
    every pair of outputs (including within a group) is equal — what the
    Figure-5 algorithm actually achieves. *)

open Repro_util

type output = int

let check_validity (t : output Outcome.t) =
  let groups = Outcome.participating_groups t in
  let n = Outcome.processors t in
  let bad =
    List.find_opt
      (fun p ->
        match t.Outcome.outputs.(p) with
        | Some v -> not (Iset.mem v groups)
        | None -> false)
      (List.init n Fun.id)
  in
  match bad with
  | Some p ->
      let v = Option.get t.Outcome.outputs.(p) in
      Task_failure.failf ~processors:[ p ] ~groups:[ v ]
        Task_failure.Validity
        "p%d decided value %d, not a participating group (%a)" (p + 1) v
        Iset.pp_set groups
  | None -> Ok ()

let check_sample ~groups:_ sample =
  match sample with
  | [] -> Ok ()
  | (g, v) :: rest -> (
      match List.find_opt (fun (_, v') -> v' <> v) rest with
      | Some (g', v') ->
          Task_failure.failf ~groups:[ g; g' ] Task_failure.Agreement
            "disagreement: group %d decided %d but group %d decided %d" g v g'
            v'
      | None -> Ok ())

let check_group_solution t =
  match check_validity t with
  | Error _ as e -> e
  | Ok () -> Outcome.for_all_samples t ~check:check_sample

let check_agreement t =
  let n = Outcome.processors t in
  let decided =
    List.filter_map
      (fun p -> Option.map (fun v -> (p, v)) t.Outcome.outputs.(p))
      (List.init n Fun.id)
  in
  match decided with
  | [] -> Ok ()
  | (p, v) :: rest -> (
      match List.find_opt (fun (_, v') -> v' <> v) rest with
      | None -> Ok ()
      | Some (q, v') ->
          Task_failure.failf ~processors:[ p; q ]
            ~groups:[ Outcome.group_of t p; Outcome.group_of t q ]
            Task_failure.Agreement "p%d decided %d but p%d decided %d" (p + 1)
            v (q + 1) v')

(** Full check for the Figure-5 algorithm: agreement across all processors
    plus validity. *)
let check t =
  match check_agreement t with Error _ as e -> e | Ok () -> check_validity t
