(* Tests of the long-lived snapshot (Section 7): repeated invocations keep
   the containment guarantees, outputs accumulate all inputs used so far,
   and the level reset mechanism works. *)

open Repro_util
module LL = Algorithms.Long_lived_snapshot.Int_views
module Sys = Anonmem.System.Make (LL)
module Scheduler = Anonmem.Scheduler

let iset = Alcotest.testable (Fmt.of_to_string Iset.to_string) Iset.equal

let drive_until_all_ready ?(max_steps = 1_000_000) st sched =
  let stop, _ = Sys.run ~max_steps ~sched st in
  if stop <> Sys.All_halted then Alcotest.fail "invocation did not terminate"

let test_single_invocation_matches_snapshot () =
  let cfg = LL.standard ~n:3 in
  let wiring = Anonmem.Wiring.random (Rng.create ~seed:1) ~n:3 ~m:3 in
  let st = Sys.init ~cfg ~wiring ~inputs:[| 1; 2; 3 |] in
  drive_until_all_ready st (Scheduler.round_robin ());
  let outs = Array.map (fun l -> LL.output_view l) st.Sys.locals in
  Array.iteri
    (fun p o ->
      Alcotest.(check bool) "own input" true (Iset.mem (p + 1) o);
      Array.iter
        (fun o' -> Alcotest.(check bool) "containment" true (Iset.comparable o o'))
        outs)
    outs

let test_reinvocation_accumulates_inputs () =
  let cfg = LL.standard ~n:2 in
  let wiring = Anonmem.Wiring.random (Rng.create ~seed:2) ~n:2 ~m:2 in
  let st = Sys.init ~cfg ~wiring ~inputs:[| 1; 2 |] in
  drive_until_all_ready st (Scheduler.round_robin ());
  (* second round with fresh inputs 11, 12 *)
  st.Sys.locals.(0) <- LL.invoke cfg st.Sys.locals.(0) 11;
  st.Sys.locals.(1) <- LL.invoke cfg st.Sys.locals.(1) 12;
  drive_until_all_ready st (Scheduler.round_robin ());
  Array.iteri
    (fun p l ->
      let o = LL.output_view l in
      Alcotest.(check bool) "first-round input retained" true (Iset.mem (p + 1) o);
      Alcotest.(check bool) "second-round input present" true (Iset.mem (p + 11) o))
    st.Sys.locals

let test_outputs_comparable_across_rounds () =
  (* All outputs ever produced (across 4 rounds, random schedules) are
     pairwise related by containment. *)
  let n = 3 in
  let cfg = LL.standard ~n in
  let rng = Rng.create ~seed:3 in
  let wiring = Anonmem.Wiring.random rng ~n ~m:n in
  let st = Sys.init ~cfg ~wiring ~inputs:[| 1; 2; 3 |] in
  let all_outputs = ref [] in
  for round = 1 to 4 do
    drive_until_all_ready st (Scheduler.random (Rng.split rng));
    Array.iter
      (fun l -> all_outputs := LL.output_view l :: !all_outputs)
      st.Sys.locals;
    if round < 4 then
      Array.iteri
        (fun p l -> st.Sys.locals.(p) <- LL.invoke cfg l ((10 * round) + p))
        st.Sys.locals
  done;
  let outs = !all_outputs in
  List.iteri
    (fun i o ->
      List.iteri
        (fun j o' ->
          if i < j then
            Alcotest.(check bool) "all outputs comparable" true
              (Iset.comparable o o'))
        outs)
    outs

let test_invoke_resets_level () =
  let cfg = LL.standard ~n:2 in
  let wiring = Anonmem.Wiring.identity ~n:2 ~m:2 in
  let st = Sys.init ~cfg ~wiring ~inputs:[| 1; 2 |] in
  drive_until_all_ready st (Scheduler.round_robin ());
  let l = st.Sys.locals.(0) in
  Alcotest.(check bool) "ready at level n" true (LL.ready cfg l);
  let l' = LL.invoke cfg l 5 in
  Alcotest.(check bool) "no longer ready" false (LL.ready cfg l');
  Alcotest.check iset "view grew by new input" (Iset.of_list [ 1; 2; 5 ])
    (LL.output_view l')

let test_invoke_while_running_rejected () =
  let cfg = LL.standard ~n:2 in
  let l = LL.init cfg 1 in
  Alcotest.check_raises "invoke mid-run"
    (Invalid_argument
       "Long_lived_snapshot.invoke: previous invocation still running")
    (fun () -> ignore (LL.invoke cfg l 2))

let test_staggered_invocations () =
  (* Processor 0 runs three invocations while processor 1 stays in its
     first; outputs remain comparable and p0's outputs accumulate. *)
  let cfg = LL.standard ~n:2 in
  let wiring = Anonmem.Wiring.random (Rng.create ~seed:7) ~n:2 ~m:2 in
  let st = Sys.init ~cfg ~wiring ~inputs:[| 1; 2 |] in
  let sched = Scheduler.random (Rng.create ~seed:8) in
  let outputs0 = ref [] in
  for round = 1 to 3 do
    let stop, _ = Sys.run ~max_steps:1_000_000 ~sched st in
    Alcotest.(check bool) "round finished" true (stop = Sys.All_halted);
    outputs0 := LL.output_view st.Sys.locals.(0) :: !outputs0;
    if round < 3 then
      st.Sys.locals.(0) <- LL.invoke cfg st.Sys.locals.(0) (100 + round)
  done;
  let rec check_chain = function
    | a :: (b :: _ as rest) ->
        Alcotest.(check bool) "monotone outputs" true (Iset.subset b a);
        check_chain rest
    | _ -> ()
  in
  check_chain !outputs0

(* --- group solvability of the long-lived snapshot (Section 7 future work) *)

module LLT = Tasks.Long_lived_task

let inv processor input output =
  { LLT.processor; input; output = Iset.of_list output }

let test_llt_valid_history () =
  let h =
    [ inv 0 1 [ 1 ]; inv 1 2 [ 1; 2 ]; inv 0 3 [ 1; 2; 3 ] ]
  in
  Alcotest.(check bool) "group-valid" true
    (LLT.check_group_solution h = Ok ());
  Alcotest.(check bool) "strong-valid" true (LLT.check_strong h = Ok ())

let test_llt_shrinking_outputs_rejected () =
  let h = [ inv 0 1 [ 1; 2 ]; inv 0 2 [ 1; 2 ] ] in
  (* second output misses nothing... shrink case: *)
  Alcotest.(check bool) "ok monotone" true (LLT.check_per_processor h = Ok ());
  let h' = [ inv 0 1 [ 1; 2 ]; inv 0 3 [ 1; 3 ] ] in
  Alcotest.(check bool) "shrunk output rejected" false
    (LLT.check_per_processor h' = Ok ())

let test_llt_missing_own_input_rejected () =
  let h = [ inv 0 1 [ 1 ]; inv 0 2 [ 1 ] ] in
  Alcotest.(check bool) "second invocation must include input 2" false
    (LLT.check_per_processor h = Ok ())

let test_llt_foreign_value_rejected () =
  let h = [ inv 0 1 [ 1; 9 ] ] in
  Alcotest.(check bool) "unused value rejected" false
    (LLT.check_validity h = Ok ())

let test_llt_same_group_incomparable_allowed () =
  (* two invocations with the same input value may return incomparable
     sets under the group reading (they are one group) *)
  let h =
    [
      inv 0 1 [ 1 ];
      inv 1 1 [ 1; 2 ];
      inv 2 2 [ 1; 2 ];
      inv 1 3 [ 1; 2; 3 ];
    ]
  in
  Alcotest.(check bool) "group-valid" true (LLT.check_group_solution h = Ok ())

let test_llt_cross_group_incomparable_rejected () =
  let h =
    [ inv 0 1 [ 1; 2 ]; inv 1 3 [ 1; 3 ]; inv 2 2 [ 1; 2 ] ]
  in
  Alcotest.(check bool) "validity itself fine" true (LLT.check_validity h = Ok ());
  Alcotest.(check bool) "cross-group incomparable rejected" false
    (LLT.check_group_solution h = Ok ())

let test_llt_on_real_executions () =
  (* drive the long-lived snapshot through staggered invocations under
     random schedules and validate the full history *)
  for seed = 0 to 19 do
    let n = 2 + (seed mod 3) in
    let cfg = LL.standard ~n in
    let rng = Rng.create ~seed in
    let wiring = Anonmem.Wiring.random rng ~n ~m:n in
    let st = Sys.init ~cfg ~wiring ~inputs:(Array.init n (fun i -> i + 1)) in
    let history = ref [] in
    for round = 1 to 3 do
      let stop, _ =
        Sys.run ~max_steps:2_000_000 ~sched:(Scheduler.random (Rng.split rng)) st
      in
      if stop <> Sys.All_halted then Alcotest.fail "round stalled";
      Array.iteri
        (fun p l ->
          history :=
            {
              LLT.processor = p;
              input = (if round = 1 then p + 1 else (10 * round) + p);
              output = LL.output_view l;
            }
            :: !history)
        st.Sys.locals;
      if round < 3 then
        Array.iteri
          (fun p l -> st.Sys.locals.(p) <- LL.invoke cfg l ((10 * (round + 1)) + p))
          st.Sys.locals
    done;
    let history = List.rev !history in
    (match LLT.check_group_solution history with
    | Ok () -> ()
    | Error e ->
        Alcotest.fail
          (Printf.sprintf "seed %d: %s" seed (Tasks.Task_failure.to_string e)));
    match LLT.check_strong history with
    | Ok () -> ()
    | Error e ->
        Alcotest.fail
          (Printf.sprintf "seed %d (strong): %s" seed
             (Tasks.Task_failure.to_string e))
  done

let () =
  Alcotest.run "longlived"
    [
      ( "long-lived snapshot",
        [
          Alcotest.test_case "single invocation" `Quick
            test_single_invocation_matches_snapshot;
          Alcotest.test_case "re-invocation accumulates" `Quick
            test_reinvocation_accumulates_inputs;
          Alcotest.test_case "outputs comparable across rounds" `Quick
            test_outputs_comparable_across_rounds;
          Alcotest.test_case "invoke resets level" `Quick test_invoke_resets_level;
          Alcotest.test_case "invoke while running rejected" `Quick
            test_invoke_while_running_rejected;
          Alcotest.test_case "staggered invocations" `Quick
            test_staggered_invocations;
        ] );
      ( "group solvability (Section 7 future work)",
        [
          Alcotest.test_case "valid history" `Quick test_llt_valid_history;
          Alcotest.test_case "shrinking outputs rejected" `Quick
            test_llt_shrinking_outputs_rejected;
          Alcotest.test_case "missing own input rejected" `Quick
            test_llt_missing_own_input_rejected;
          Alcotest.test_case "foreign value rejected" `Quick
            test_llt_foreign_value_rejected;
          Alcotest.test_case "same-group incomparability allowed" `Quick
            test_llt_same_group_incomparable_allowed;
          Alcotest.test_case "cross-group incomparability rejected" `Quick
            test_llt_cross_group_incomparable_rejected;
          Alcotest.test_case "validated on real executions" `Quick
            test_llt_on_real_executions;
        ] );
    ]
