(** A wait-free {e weak leader election} for fully-anonymous read/write
    memory, probing Gelashvili-style space limits at small m
    (cf. arXiv:1506.06817 for the consensus analogue).

    Every processor repeatedly collects the m registers; whenever its view
    contains a free register it claims the first one (a blind write from a
    possibly-stale view).  Once a collect shows the memory full, the
    processor halts: it outputs [Leader] if {e every} register holds its
    own identity and [Follower] otherwise.  The task is weak — electing
    nobody is allowed — but at most one processor may output [Leader].

    The protocol is wait-free: each loop iteration with a free register
    performs a write, the number of free registers never increases, and a
    full view ends the run, so every processor halts within O(m) collects
    regardless of scheduling.

    Space boundary (confirmed empirically by the feasibility map): with
    m >= 2 registers leader-uniqueness holds for every n — a second
    unanimous view would require a second pending write per competitor,
    and each processor has at most one write outstanding between collects.
    With m = 1 the single pending stale write is enough: p claims the lone
    register, sees itself unanimously and exits as leader, then q's stale
    claim (issued when the register was still free) obliterates p's and q
    also reads itself unanimously — two leaders.  One register is below
    the covering floor, the same phenomenon the host paper's Section-2.1
    bound isolates.

    With [majority_entry] the unanimity test weakens to "strictly more
    than half of the registers" — a planted bug whose two-leader
    counterexamples the differential matrix replays. *)

type cfg = { n : int; m : int; majority_entry : bool }

let cfg ~n ~m =
  if n < 1 || m < 1 then invalid_arg "Weak_leader.cfg";
  { n; m; majority_entry = false }

(** The planted-bug variant: declares leadership on a strict majority. *)
let cfg_majority ~n ~m = { (cfg ~n ~m) with majority_entry = true }

type value = int option
type input = int
type output = Leader | Follower

type phase =
  | Collecting of { pos : int; acc : value list }
      (** [acc] holds the values read so far, most recent first *)
  | Claiming of { target : int }
  | Done of output

type local = { id : int; phase : phase }

let name = "weak-leader"
let processors c = c.n
let registers c = c.m
let register_init _ = None
let init _ id = { id; phase = Collecting { pos = 0; acc = [] } }
let halted _ l = match l.phase with Done _ -> true | _ -> false

let next _ l =
  match l.phase with
  | Collecting { pos; _ } -> Some (Anonmem.Protocol.Read pos)
  | Claiming { target } -> Some (Anonmem.Protocol.Write (target, Some l.id))
  | Done _ -> None

let decide c l (view : value list) =
  let free =
    List.mapi (fun i v -> (i, v)) view
    |> List.find_opt (fun (_, v) -> v = None)
  in
  match free with
  | Some (target, _) -> { l with phase = Claiming { target } }
  | None ->
      let mine =
        List.fold_left
          (fun k v -> if v = Some l.id then k + 1 else k)
          0 view
      in
      let wins = if c.majority_entry then 2 * mine > c.m else mine = c.m in
      { l with phase = Done (if wins then Leader else Follower) }

let apply_read c l ~reg v =
  match l.phase with
  | Collecting { pos; acc } ->
      if reg <> pos then invalid_arg "Weak_leader.apply_read: wrong register";
      let acc = v :: acc in
      if pos + 1 < c.m then { l with phase = Collecting { pos = pos + 1; acc } }
      else decide c l (List.rev acc)
  | Claiming _ | Done _ -> invalid_arg "Weak_leader.apply_read: not collecting"

let apply_write _ l =
  match l.phase with
  | Claiming _ -> { l with phase = Collecting { pos = 0; acc = [] } }
  | Collecting _ | Done _ -> invalid_arg "Weak_leader.apply_write: not claiming"

let output _ l = match l.phase with Done o -> Some o | _ -> None

let pp_value _ ppf = function
  | None -> Fmt.string ppf "-"
  | Some id -> Fmt.pf ppf "%d" id

let pp_output _ ppf = function
  | Leader -> Fmt.string ppf "leader"
  | Follower -> Fmt.string ppf "follower"

let pp_local c ppf l =
  let phase ppf = function
    | Collecting { pos; _ } -> Fmt.pf ppf "collect@%d" pos
    | Claiming { target } -> Fmt.pf ppf "claim r%d" (target + 1)
    | Done o -> pp_output c ppf o
  in
  Fmt.pf ppf "{id=%d %a}" l.id phase l.phase
