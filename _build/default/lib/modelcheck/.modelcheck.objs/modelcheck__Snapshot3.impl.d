lib/modelcheck/snapshot3.ml: Algorithms Anonmem Array Iset List Printf Repro_util Rng Seq Vec
