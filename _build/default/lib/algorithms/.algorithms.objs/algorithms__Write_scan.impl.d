lib/algorithms/write_scan.ml: Anonmem Fmt Iset Repro_util
