(** Canonical sets of integers, the workhorse view type of the algorithms.

    Inputs and group identifiers are integers throughout the library, so the
    views written to and read from anonymous registers are [Iset.t] values.
    This is {!Sorted_set.Make} over [Int] plus a few integer-specific
    helpers. *)

include Sorted_set.S with type elt = int

val of_range : int -> int -> t
(** [of_range lo hi] is the set [{lo, lo+1, ..., hi}] (empty when [lo > hi]). *)

val to_bits : t -> int
(** [to_bits s] packs a set of small non-negative integers into a bitmask;
    element [i] becomes bit [i].  Raises [Invalid_argument] if an element is
    negative or at least [Sys.int_size - 1].  Used to index the
    "memory-content sets seen so far" table of the non-atomicity witness
    search. *)

val of_bits : int -> t
(** Inverse of {!to_bits}. *)

val pp_set : t Fmt.t
(** Prints as [{1,2,3}], matching the notation of the paper. *)

val to_string : t -> string
