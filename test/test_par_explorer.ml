(* Differential tests of the four exploration engines — sequential BFS
   (Explorer.explore), sequential DFS (Explorer.check_exhaustive), the
   sharded layer-synchronous parallel BFS (Par_explorer.explore) and the
   work-stealing parallel BFS (Ws_explorer.explore) — with and without
   symmetry reduction, plus QCheck soundness properties of the Canon
   orbit-minimum canonicalization itself, a model-based QCheck test of
   the Chase–Lev work-stealing deque against a sequential oracle, a
   multi-domain steal stress test, and termination-detection
   regressions for the work-stealing pool (trivial spaces, violations
   and governor trips mid-steal must all produce structured results,
   never a hang).

   The contract under test: for every checkable protocol, wiring and
   input assignment, all engines agree on the invariant verdict, the
   wait-freedom verdict, and — between the unreduced BFS engines — the
   exact visited-state / transition / terminal counts; reduced runs agree
   with each other exactly and with unreduced runs on verdicts; and every
   counterexample trace replays through Witness.Replay to a state that
   actually violates the invariant.

   Tiny configurations (< 5 s total) run under the @mc-smoke alias inside
   `dune runtest`; the full 3-processor parity matrix and the unbounded
   3-processor reduction run are gated behind MC_LONG=1 (`make mc-long`). *)

module Canon = Modelcheck.Canon

let long_mode = Sys.getenv_opt "MC_LONG" <> None
let qcheck_count = if long_mode then 500 else 120

(* ------------------------------------------------------------------ *)
(* The differential harness, generic in the checkable protocol.       *)
(* ------------------------------------------------------------------ *)

module Diff (P : Modelcheck.Explorer.CHECKABLE) = struct
  module E = Modelcheck.Explorer.Make (P)
  module Par = Modelcheck.Par_explorer.Make (P)
  module Ws = Modelcheck.Ws_explorer.Make (P)
  module Replay = Modelcheck.Witness.Replay (P)

  type verdicts = {
    states : int;
    transitions : int;
    terminals : int;
    divergent : int list;
  }

  let seq_bfs ?invariant ?stop_expansion ?(reduction = false) ~cfg ~wiring
      ~inputs () =
    match E.explore ?invariant ?stop_expansion ~reduction ~cfg ~wiring ~inputs () with
    | E.Explored sp ->
        {
          states = E.state_count sp;
          transitions = E.transition_count sp;
          terminals = List.length sp.E.terminal;
          divergent = E.divergent_processors sp;
        }
    | E.Invariant_failed (_, v) ->
        Alcotest.failf "sequential BFS: unexpected invariant failure: %s"
          v.E.message
    | E.State_limit k -> Alcotest.failf "sequential BFS: state limit %d" k
    | E.Exhausted _ -> Alcotest.fail "sequential BFS: unexpected exhaustion"

  let par_bfs ?invariant ?stop_expansion ?(reduction = false) ~domains ~cfg
      ~wiring ~inputs () =
    match
      Par.explore ?invariant ?stop_expansion ~reduction ~domains ~cfg ~wiring
        ~inputs ()
    with
    | Par.Par_ok { stats; divergent; _ } ->
        {
          states = stats.Par.states;
          transitions = stats.Par.transitions;
          terminals = stats.Par.terminals;
          divergent;
        }
    | Par.Par_invariant_failed { message; _ } ->
        Alcotest.failf "parallel BFS: unexpected invariant failure: %s" message
    | Par.Par_state_limit k -> Alcotest.failf "parallel BFS: state limit %d" k

  let ws_bfs ?invariant ?stop_expansion ?(reduction = false) ~domains ~cfg
      ~wiring ~inputs () =
    match
      Ws.explore ?invariant ?stop_expansion ~reduction ~domains ~cfg ~wiring
        ~inputs ()
    with
    | Ws.Ws_ok { stats; divergent; _ } ->
        {
          states = stats.Ws.states;
          transitions = stats.Ws.transitions;
          terminals = stats.Ws.terminals;
          divergent;
        }
    | Ws.Ws_invariant_failed { message; _ } ->
        Alcotest.failf "work-stealing BFS: unexpected invariant failure: %s"
          message
    | Ws.Ws_state_limit k ->
        Alcotest.failf "work-stealing BFS: state limit %d" k
    | Ws.Ws_exhausted _ ->
        Alcotest.fail "work-stealing BFS: unexpected exhaustion"

  let check_verdicts name (a : verdicts) (b : verdicts) ~exact_counts =
    if exact_counts then begin
      Alcotest.(check int) (name ^ ": states") a.states b.states;
      Alcotest.(check int) (name ^ ": transitions") a.transitions b.transitions;
      Alcotest.(check int) (name ^ ": terminals") a.terminals b.terminals
    end;
    Alcotest.(check (list int)) (name ^ ": divergent set") a.divergent b.divergent

  (* Full matrix on one (wiring, inputs) cell: sequential vs parallel at
     each domain count, unreduced (exact count parity) and reduced (exact
     parity between reduced runs, verdict parity against unreduced);
     plus DFS verdict agreement on acyclic spaces. *)
  let cell ?invariant ?stop_expansion ?(domain_counts = [ 1; 2; 4 ]) ~name ~cfg
      ~wiring ~inputs () =
    let seq = seq_bfs ?invariant ?stop_expansion ~cfg ~wiring ~inputs () in
    let red =
      seq_bfs ?invariant ?stop_expansion ~reduction:true ~cfg ~wiring ~inputs ()
    in
    Alcotest.(check bool)
      (name ^ ": reduction never grows the space")
      true
      (red.states <= seq.states);
    Alcotest.(check bool)
      (name ^ ": reduced/unreduced wait-freedom verdicts agree")
      (seq.divergent = []) (red.divergent = []);
    List.iter
      (fun domains ->
        let nm = Printf.sprintf "%s par%d" name domains in
        let par =
          par_bfs ?invariant ?stop_expansion ~domains ~cfg ~wiring ~inputs ()
        in
        check_verdicts nm seq par ~exact_counts:true;
        let parr =
          par_bfs ?invariant ?stop_expansion ~reduction:true ~domains ~cfg
            ~wiring ~inputs ()
        in
        check_verdicts (nm ^ " reduced") red parr ~exact_counts:true;
        (* Work-stealing columns: exact count parity too — state
           ownership and edge recording are independent of steal order. *)
        let ws =
          ws_bfs ?invariant ?stop_expansion ~domains ~cfg ~wiring ~inputs ()
        in
        check_verdicts (nm ^ " ws") seq ws ~exact_counts:true;
        let wsr =
          ws_bfs ?invariant ?stop_expansion ~reduction:true ~domains ~cfg
            ~wiring ~inputs ()
        in
        check_verdicts (nm ^ " ws reduced") red wsr ~exact_counts:true)
      domain_counts;
    (* DFS engine: verdict-level agreement (cycle <-> nonempty divergent
       set; states/transitions equal on every run without pruning). *)
    match
      E.check_exhaustive ?invariant ?stop_expansion ~cfg ~wiring ~inputs ()
    with
    | E.Dfs_ok s ->
        Alcotest.(check (list int)) (name ^ ": DFS acyclic = BFS wait-free") []
          seq.divergent;
        if stop_expansion = None then begin
          Alcotest.(check int) (name ^ ": DFS state count") seq.states s.E.dfs_states;
          Alcotest.(check int)
            (name ^ ": DFS transition count")
            seq.transitions s.E.dfs_transitions;
          Alcotest.(check int)
            (name ^ ": DFS terminal count")
            seq.terminals s.E.dfs_terminals
        end
    | E.Dfs_cycle _ ->
        Alcotest.(check bool) (name ^ ": DFS cycle = BFS divergence") true
          (seq.divergent <> [])
    | E.Dfs_invariant_failed { message; _ } ->
        Alcotest.failf "%s: DFS unexpected invariant failure: %s" name message
    | E.Dfs_state_limit k -> Alcotest.failf "%s: DFS state limit %d" name k
    | E.Dfs_exhausted _ -> Alcotest.failf "%s: DFS unexpected exhaustion" name

  (* Counterexample parity on a violating configuration: all engines must
     report the violation, BFS traces must have equal (minimal) length,
     and every trace must replay through Witness.Replay to a state the
     invariant rejects. *)
  let violation_cell ?(domain_counts = [ 1; 2; 4 ]) ?(reduction = false) ~name
      ~cfg ~wiring ~inputs ~invariant () =
    let replay_and_check nm path =
      let final = Replay.final ~cfg ~wiring ~inputs path in
      match invariant final with
      | Error _ -> ()
      | Ok () ->
          Alcotest.failf "%s: replayed trace ends in a non-violating state" nm
    in
    let seq_len =
      match E.explore ~invariant ~reduction ~cfg ~wiring ~inputs () with
      | E.Invariant_failed (_, v) ->
          replay_and_check (name ^ " seq-bfs") (List.map fst v.E.trace);
          List.length v.E.trace
      | _ -> Alcotest.failf "%s: sequential BFS missed the violation" name
    in
    (match E.check_exhaustive ~invariant ~reduction ~cfg ~wiring ~inputs () with
    | E.Dfs_invariant_failed { path; state; _ } ->
        replay_and_check (name ^ " seq-dfs") path;
        (* The reported state must be the replayed endpoint (regression
           for the DFS path construction, which used to append the last
           pid twice). *)
        let final = Replay.final ~cfg ~wiring ~inputs path in
        Alcotest.(check string)
          (name ^ ": DFS state matches its own path")
          (E.encode_state cfg state)
          (E.encode_state cfg final)
    | _ -> Alcotest.failf "%s: DFS missed the violation" name);
    List.iter
      (fun domains ->
        match
          Par.explore ~invariant ~reduction ~domains ~cfg ~wiring ~inputs ()
        with
        | Par.Par_invariant_failed { trace; _ } ->
            replay_and_check
              (Printf.sprintf "%s par%d" name domains)
              (List.map fst trace);
            Alcotest.(check int)
              (Printf.sprintf "%s par%d: minimal trace length" name domains)
              seq_len (List.length trace)
        | _ ->
            Alcotest.failf "%s: parallel BFS (%d domains) missed the violation"
              name domains)
      domain_counts;
    List.iter
      (fun domains ->
        match
          Ws.explore ~invariant ~reduction ~domains ~cfg ~wiring ~inputs ()
        with
        | Ws.Ws_invariant_failed { trace; _ } ->
            (* Work-stealing traces are valid executions but not
               necessarily shortest (steals abandon layer order), so
               replay only — no minimal-length assertion. *)
            replay_and_check
              (Printf.sprintf "%s ws%d" name domains)
              (List.map fst trace)
        | _ ->
            Alcotest.failf
              "%s: work-stealing BFS (%d domains) missed the violation" name
              domains)
      domain_counts
end

(* ------------------------------------------------------------------ *)
(* Protocol instantiations.                                           *)
(* ------------------------------------------------------------------ *)

module Snap = Algorithms.Snapshot
module SnapDiff = Diff (Modelcheck.Codecs.Snapshot)
module WsDiff = Diff (Modelcheck.Codecs.Write_scan)
module DcDiff = Diff (Modelcheck.Codecs.Double_collect)
module ConsDiff = Diff (Modelcheck.Codecs.Consensus)
module RenDiff = Diff (Modelcheck.Codecs.Renaming)

let wirings2 = Anonmem.Wiring.enumerate ~n:2 ~m:2 ~fix_first:true
let wirings3 = Anonmem.Wiring.enumerate ~n:3 ~m:3 ~fix_first:true

let test_snapshot_n2_matrix () =
  let cfg = Snap.standard ~n:2 in
  List.iter
    (fun wiring ->
      List.iter
        (fun inputs ->
          SnapDiff.cell ~domain_counts:[ 1; 2; 4 ]
            ~name:
              (Fmt.str "snapshot n=2 %a %a" Anonmem.Wiring.pp wiring
                 Fmt.(Dump.array int)
                 inputs)
            ~invariant:(Core.snapshot_invariant cfg inputs)
            ~cfg ~wiring ~inputs ())
        [ [| 1; 2 |]; [| 1; 1 |] ])
    wirings2

let snap3_stop level (st : SnapDiff.E.state) =
  Array.exists
    (fun l -> Snap.level_of_local l >= level)
    st.SnapDiff.E.locals

let test_snapshot_n3_bounded () =
  (* 3-processor parity on the level-bounded prefix of the space: the
     bound predicate is symmetric (an exists over processors), so it
     composes with reduction.  Smoke uses level 1 over three wirings;
     MC_LONG raises the bound to level 2. *)
  let cfg = Snap.standard ~n:3 in
  let level = if long_mode then 2 else 1 in
  let some_wirings =
    match wirings3 with
    | a :: b :: c :: _ -> if long_mode then [ a; b; c ] else [ a; b ]
    | _ -> assert false
  in
  let inputs_choices =
    if long_mode then [ [| 1; 1; 1 |]; [| 1; 1; 2 |] ] else [ [| 1; 1; 1 |] ]
  in
  List.iter
    (fun wiring ->
      List.iter
        (fun inputs ->
          SnapDiff.cell
            ~name:
              (Fmt.str "snapshot n=3 lvl<%d %a %a" level Anonmem.Wiring.pp
                 wiring
                 Fmt.(Dump.array int)
                 inputs)
            ~invariant:(Core.snapshot_invariant cfg inputs)
            ~stop_expansion:(snap3_stop level) ~cfg ~wiring ~inputs ())
        inputs_choices)
    some_wirings

let test_snapshot_n3_full_matrix_long () =
  (* The full 3-processor parity matrix — every wiring with processor 0
     pinned, level-2-bounded spaces, sequential vs parallel vs reduced. *)
  if not long_mode then ()
  else begin
    let cfg = Snap.standard ~n:3 in
    let inputs = [| 1; 1; 1 |] in
    List.iter
      (fun wiring ->
        SnapDiff.cell
          ~name:(Fmt.str "matrix %a" Anonmem.Wiring.pp wiring)
          ~invariant:(Core.snapshot_invariant cfg inputs)
          ~stop_expansion:(snap3_stop 2) ~cfg ~wiring ~inputs ())
      wirings3
  end

let test_snapshot_n3_unbounded_reduction_long () =
  (* The acceptance benchmark's claim as a test: on the full (unbounded)
     single-group 3-processor space, reduction shrinks the visited set by
     at least 2x while preserving both verdicts. *)
  if not long_mode then ()
  else begin
    let cfg = Snap.standard ~n:3 in
    let inputs = [| 1; 1; 1 |] in
    let wiring = Anonmem.Wiring.identity ~n:3 ~m:3 in
    let module E = SnapDiff.E in
    let run reduction =
      match
        E.check_exhaustive ~reduction
          ~invariant:(Core.snapshot_invariant cfg inputs)
          ~cfg ~wiring ~inputs ()
      with
      | E.Dfs_ok s -> s.E.dfs_states
      | _ -> Alcotest.fail "single-group snapshot must verify"
    in
    let full = run false and reduced = run true in
    Alcotest.(check bool)
      (Fmt.str "full space %d >= 2x reduced %d" full reduced)
      true
      (full >= 2 * reduced)
  end

let test_write_scan_divergence_parity () =
  (* Cyclic transition graphs: the non-terminating write-scan loop.  Both
     processors diverge under every engine, reduced or not. *)
  let cfg = Algorithms.Write_scan.cfg ~n:2 ~m:2 in
  List.iter
    (fun wiring ->
      List.iter
        (fun inputs ->
          WsDiff.cell
            ~name:
              (Fmt.str "write-scan %a %a" Anonmem.Wiring.pp wiring
                 Fmt.(Dump.array int)
                 inputs)
            ~cfg ~wiring ~inputs ())
        [ [| 1; 2 |]; [| 1; 1 |] ])
    wirings2

let test_double_collect_matrix () =
  let cfg = Algorithms.Double_collect.standard ~n:2 in
  List.iter
    (fun wiring ->
      DcDiff.cell
        ~name:(Fmt.str "double-collect %a" Anonmem.Wiring.pp wiring)
        ~cfg ~wiring ~inputs:[| 1; 1 |] ())
    wirings2

let test_consensus_bounded_matrix () =
  let cfg = Algorithms.Consensus.standard ~n:2 in
  let stop (st : ConsDiff.E.state) =
    Array.exists
      (fun (l : Algorithms.Consensus.local) -> l.Algorithms.Consensus.ts >= 2)
      st.ConsDiff.E.locals
  in
  List.iter
    (fun wiring ->
      List.iter
        (fun inputs ->
          ConsDiff.cell
            ~name:
              (Fmt.str "consensus %a %a" Anonmem.Wiring.pp wiring
                 Fmt.(Dump.array int)
                 inputs)
            ~stop_expansion:stop ~cfg ~wiring ~inputs ())
        [ [| 1; 2 |]; [| 1; 1 |] ])
    wirings2

let test_renaming_matrix () =
  let cfg = Algorithms.Renaming.standard ~n:2 in
  List.iter
    (fun wiring ->
      RenDiff.cell
        ~name:(Fmt.str "renaming %a" Anonmem.Wiring.pp wiring)
        ~cfg ~wiring ~inputs:[| 1; 1 |] ())
    wirings2

(* --- counterexamples: planted bugs found, traces replay ------------- *)

let no_output_invariant cfg (st : SnapDiff.E.state) =
  if Array.exists (fun l -> Snap.output cfg l <> None) st.SnapDiff.E.locals
  then Error "planted: someone terminated"
  else Ok ()

let test_planted_snapshot_counterexample () =
  let cfg = Snap.standard ~n:2 in
  List.iter
    (fun wiring ->
      SnapDiff.violation_cell ~domain_counts:[ 1; 2; 4 ]
        ~name:(Fmt.str "planted snapshot %a" Anonmem.Wiring.pp wiring)
        ~cfg ~wiring ~inputs:[| 1; 2 |]
        ~invariant:(no_output_invariant cfg) ())
    wirings2

let test_planted_snapshot_counterexample_reduced () =
  (* Same planted bug on a single-group assignment with reduction on:
     counterexamples of the quotient space must concretize to replayable
     executions of the same minimal length. *)
  let cfg = Snap.standard ~n:2 in
  List.iter
    (fun wiring ->
      SnapDiff.violation_cell ~reduction:true
        ~name:(Fmt.str "planted snapshot reduced %a" Anonmem.Wiring.pp wiring)
        ~cfg ~wiring ~inputs:[| 1; 1 |]
        ~invariant:(no_output_invariant cfg) ())
    wirings2

let test_planted_double_collect_counterexample () =
  let cfg = Algorithms.Double_collect.standard ~n:2 in
  let invariant (st : DcDiff.E.state) =
    if
      Array.exists
        (fun l -> Algorithms.Double_collect.output cfg l <> None)
        st.DcDiff.E.locals
    then Error "planted: someone terminated"
    else Ok ()
  in
  DcDiff.violation_cell ~name:"planted double-collect"
    ~cfg
    ~wiring:(Anonmem.Wiring.identity ~n:2 ~m:2)
    ~inputs:[| 1; 2 |] ~invariant ()

let test_planted_trace_ids_from_arena_table () =
  (* A planted 3-processor violation deep enough for a nontrivial space:
     the BFS counterexample is reconstructed purely from packed parent
     words and [key_of_id] arena reads of the new State_table, must
     replay through Witness.Replay to a state the invariant rejects, and
     every state along the trace must be interned in the final table. *)
  let cfg = Snap.standard ~n:3 in
  let wiring = Anonmem.Wiring.identity ~n:3 ~m:3 in
  let inputs = [| 1; 2; 3 |] in
  let module E = SnapDiff.E in
  let invariant (st : E.state) =
    if Array.exists (fun l -> Snap.level_of_local l >= 2) st.E.locals then
      Error "planted: level 2 reached"
    else Ok ()
  in
  match E.explore ~invariant ~cfg ~wiring ~inputs () with
  | E.Invariant_failed (space, v) ->
      let module St = Modelcheck.State_table in
      let path = List.map fst v.E.trace in
      Alcotest.(check bool) "nontrivial trace" true (List.length path > 5);
      let final = SnapDiff.Replay.final ~cfg ~wiring ~inputs path in
      (match invariant final with
      | Error _ -> ()
      | Ok () -> Alcotest.fail "replayed trace ends in a non-violating state");
      Alcotest.(check string) "replay endpoint is the reported state"
        (E.encode_state cfg (snd (List.nth v.E.trace (List.length v.E.trace - 1))))
        (E.encode_state cfg final);
      List.iter
        (fun (_, st) ->
          Alcotest.(check bool) "trace state interned in the arena table" true
            (St.mem space.E.table (E.encode_state cfg st)))
        v.E.trace
  | _ -> Alcotest.fail "planted n=3 violation missed"

let test_fault_explorer_reduced_witness () =
  (* Crash masks must canonicalize with their processors: under a
     single-group assignment with reduction on, the fault search still
     catches the planted bug and its witness replays — crash steps
     included — to a violating state. *)
  let cfg = Snap.standard ~n:2 in
  let inputs = [| 1; 1 |] in
  let module FE = Core.Snapshot_fault_mc in
  let invariant = no_output_invariant cfg in
  List.iter
    (fun reduction ->
      match
        FE.explore ~max_crashes:1 ~reduction ~invariant ~cfg
          ~wiring:(Anonmem.Wiring.identity ~n:2 ~m:2)
          ~inputs ()
      with
      | FE.Invariant_failed v ->
          (* Replay the step list (protocol steps + crashes). *)
          let module E = SnapDiff.E in
          let wiring = Anonmem.Wiring.identity ~n:2 ~m:2 in
          let st, mask =
            List.fold_left
              (fun (st, mask) -> function
                | FE.Step p ->
                    Alcotest.(check bool) "stepping pid is live" true
                      (mask land (1 lsl p) = 0);
                    (E.successor cfg wiring st p, mask)
                | FE.Crash p -> (st, mask lor (1 lsl p)))
              (E.init_state ~cfg ~inputs, 0)
              v.FE.steps
          in
          Alcotest.(check int) "crash mask matches replay" v.FE.crashed mask;
          (match invariant st with
          | Error _ -> ()
          | Ok () -> Alcotest.fail "replayed fault witness does not violate");
          Alcotest.(check string) "reported state is the replayed endpoint"
            (E.encode_state cfg v.FE.state)
            (E.encode_state cfg st)
      | _ -> Alcotest.failf "planted bug missed (reduction=%b)" reduction)
    [ false; true ]

let test_snapshot3_nd_planted_search () =
  (* The packed nondeterministic 3-processor checker: single-group inputs
     refute the non-atomicity target on every wiring (fast).  Under
     MC_LONG, additionally reproduce a slice of the EXPERIMENTS C2
     refutation: the cyclic-write refinement admits no (1,1,2)/{1}
     witness — `None` here is the documented positive result, not a miss
     (the full 36-wiring sweep lives in `experiments --full`). *)
  let r =
    Modelcheck.Snapshot3_nd.find_nonatomic ~log2_capacity:16
      ~inputs:[| 1; 1; 1 |] ~target_mask:0b001
      ~wirings:[ Anonmem.Wiring.identity ~n:3 ~m:3 ]
      ()
  in
  Alcotest.(check bool) "single group: no witness" true (r = None);
  if long_mode then begin
    let some_wirings =
      match wirings3 with a :: b :: _ -> [ a; b ] | _ -> assert false
    in
    let r =
      Modelcheck.Snapshot3.find_nonatomic ~inputs:[| 1; 1; 2 |]
        ~target_mask:0b001 ~wirings:some_wirings ()
    in
    Alcotest.(check bool) "cyclic refinement: C2 refutation slice" true
      (r = None)
  end

(* ------------------------------------------------------------------ *)
(* The work-stealing deque and pool termination.                      *)
(* ------------------------------------------------------------------ *)

module Deque = Modelcheck.Ws_explorer.Deque
module Gov = Modelcheck.Governor

(* Model-based: a random push/pop/steal script applied to the deque and
   to a list oracle (top at the head, bottom at the tail).  Without
   concurrency every CAS is uncontended, so pop must return the newest
   element, steal the oldest, and both must agree with the oracle
   exactly — including across buffer growth (capacity starts at 8). *)
let prop_deque_sequential_model =
  QCheck.Test.make ~name:"deque: push/pop/steal vs sequential oracle"
    ~count:qcheck_count
    QCheck.(list_of_size Gen.(0 -- 200) (int_bound 2))
    (fun ops ->
      let q = Deque.create ~capacity:8 () in
      let model = ref [] in
      let counter = ref 0 in
      List.for_all
        (fun op ->
          match op with
          | 0 ->
              incr counter;
              Deque.push q !counter;
              model := !model @ [ !counter ];
              Deque.size q = List.length !model
          | 1 ->
              let expect =
                match List.rev !model with
                | [] -> None
                | x :: rest ->
                    model := List.rev rest;
                    Some x
              in
              Deque.pop q = expect && Deque.size q = List.length !model
          | _ ->
              let expect =
                match !model with
                | [] -> None
                | x :: rest ->
                    model := rest;
                    Some x
              in
              Deque.steal q = expect && Deque.size q = List.length !model)
        ops)

let test_ws_deque_steal_stress () =
  (* One owner pushing (and occasionally popping) [0, n) while three
     thief domains hammer [steal] on the same deque: every item must be
     consumed exactly once — no loss, no duplication — and the test must
     terminate (a lost item would hang the consumed-counter loops, so
     both loops carry a bail-out that fails the multiset check). *)
  let n = 10_000 in
  let q = Deque.create () in
  let consumed = Atomic.make 0 in
  let thief () =
    let mine = ref [] in
    let tries = ref 0 in
    while Atomic.get consumed < n && !tries < 200_000_000 do
      incr tries;
      match Deque.steal q with
      | Some x ->
          mine := x :: !mine;
          Atomic.incr consumed
      | None -> Domain.cpu_relax ()
    done;
    !mine
  in
  let thieves = Array.init 3 (fun _ -> Domain.spawn thief) in
  let mine = ref [] in
  let take = function
    | Some x ->
        mine := x :: !mine;
        Atomic.incr consumed
    | None -> ()
  in
  for i = 0 to n - 1 do
    Deque.push q i;
    if i land 7 = 0 then take (Deque.pop q)
  done;
  let tries = ref 0 in
  while Atomic.get consumed < n && !tries < 200_000_000 do
    incr tries;
    match Deque.pop q with
    | Some _ as r -> take r
    | None -> Domain.cpu_relax ()
  done;
  let stolen = Array.to_list thieves |> List.concat_map Domain.join in
  let all = List.sort compare (!mine @ stolen) in
  Alcotest.(check (list int))
    "every pushed item consumed exactly once"
    (List.init n Fun.id) all

let test_ws_single_state_space () =
  (* Degenerate frontier: expansion stopped at the initial state.  Every
     domain count must detect global quiescence from the in-flight
     counter (one unit, transmuted into the root's frontier item and
     released unexpanded) and return a structured Ws_ok — not hang. *)
  let cfg = Snap.standard ~n:2 in
  let wiring = Anonmem.Wiring.identity ~n:2 ~m:2 in
  let inputs = [| 1; 2 |] in
  let module W = SnapDiff.Ws in
  List.iter
    (fun domains ->
      match
        W.explore ~stop_expansion:(fun _ -> true) ~domains ~cfg ~wiring ~inputs
          ()
      with
      | W.Ws_ok { stats; wait_free; divergent } ->
          Alcotest.(check int)
            (Fmt.str "ws%d: single state" domains)
            1 stats.W.states;
          Alcotest.(check int)
            (Fmt.str "ws%d: no transitions" domains)
            0 stats.W.transitions;
          (* A stopped state is not terminal: it was never expanded. *)
          Alcotest.(check int)
            (Fmt.str "ws%d: no terminals" domains)
            0 stats.W.terminals;
          Alcotest.(check bool)
            (Fmt.str "ws%d: trivially wait-free" domains)
            true
            (wait_free && divergent = [])
      | _ -> Alcotest.failf "ws%d: single-state space must return Ws_ok" domains)
    [ 1; 2; 4 ]

let test_ws_governor_trip_mid_steal () =
  (* A 25-state quota on a 2827-state space with 4 domains: some worker
     trips the governor mid-run (possibly on a stolen item) and the pool
     must drain to a structured Ws_exhausted with the quota reason —
     the sticky first-cause-wins stop cell is what is under test. *)
  let cfg = Snap.standard ~n:2 in
  let wiring = Anonmem.Wiring.identity ~n:2 ~m:2 in
  let inputs = [| 1; 2 |] in
  let module W = SnapDiff.Ws in
  let g = Gov.create ~quota:25 () in
  (match W.explore ~governor:g ~domains:4 ~cfg ~wiring ~inputs () with
  | W.Ws_exhausted { reason; states } ->
      Alcotest.(check string) "quota reason" "quota"
        (Gov.reason_to_string reason);
      Alcotest.(check bool) "made progress before tripping" true (states > 0)
  | _ -> Alcotest.fail "quota trip must yield Ws_exhausted");
  Gov.dispose g;
  (* Sweep level: the governor error string matches the shared shape. *)
  let g = Gov.create ~quota:25 () in
  (match
     SnapDiff.Ws.check_all_wirings ~governor:g ~domains:2 ~cfg ~inputs ()
   with
  | Error msg ->
      Alcotest.(check bool)
        (Fmt.str "sweep error names exhaustion: %s" msg)
        true
        (String.length msg >= 9 && String.sub msg 0 9 = "exhausted")
  | Ok _ -> Alcotest.fail "quota-bounded sweep cannot finish");
  Gov.dispose g

let test_ws_state_limit_mid_steal () =
  let cfg = Snap.standard ~n:2 in
  let wiring = Anonmem.Wiring.identity ~n:2 ~m:2 in
  let inputs = [| 1; 2 |] in
  let module W = SnapDiff.Ws in
  match W.explore ~max_states:100 ~domains:4 ~cfg ~wiring ~inputs () with
  | W.Ws_state_limit k ->
      (* Concurrent interns may overshoot the limit by in-flight creates,
         never undershoot. *)
      Alcotest.(check bool) "limit reached" true (k >= 100)
  | _ -> Alcotest.fail "state limit must yield Ws_state_limit"

let test_ws_violation_mid_steal () =
  (* A planted violation with 4 domains on one core: the first worker to
     see it (owner or thief) publishes through the violation cell, the
     stop cell short-circuits the pool, and the parent-chain trace
     replays to a state the invariant rejects. *)
  let cfg = Snap.standard ~n:2 in
  let wiring = Anonmem.Wiring.identity ~n:2 ~m:2 in
  let inputs = [| 1; 2 |] in
  let module W = SnapDiff.Ws in
  let invariant = no_output_invariant cfg in
  match W.explore ~invariant ~domains:4 ~cfg ~wiring ~inputs () with
  | W.Ws_invariant_failed { trace; message; _ } ->
      Alcotest.(check bool) "planted message" true
        (String.length message > 0);
      let final =
        SnapDiff.Replay.final ~cfg ~wiring ~inputs (List.map fst trace)
      in
      (match invariant final with
      | Error _ -> ()
      | Ok () -> Alcotest.fail "ws trace replays to a non-violating state")
  | _ -> Alcotest.fail "4-domain pool missed the planted violation"

(* ------------------------------------------------------------------ *)
(* Canon soundness properties (QCheck).                               *)
(* ------------------------------------------------------------------ *)

module SnapE = SnapDiff.E

let canon_inputs_choices = [ [| 1; 1; 1 |]; [| 1; 1; 2 |]; [| 1; 2; 3 |] ]
let wirings3_arr = Array.of_list wirings3

(* A reachable state's key, driven by a QCheck-supplied walk. *)
let reachable_key cfg wiring inputs walk =
  let st =
    List.fold_left
      (fun st c ->
        match SnapE.enabled cfg st with
        | [] -> st
        | en ->
            SnapE.successor cfg wiring st
              (List.nth en (abs c mod List.length en)))
      (SnapE.init_state ~cfg ~inputs)
      walk
  in
  SnapE.encode_state cfg st

let canon_setup (wsel, isel) =
  let cfg = Snap.standard ~n:3 in
  let wiring = wirings3_arr.(abs wsel mod Array.length wirings3_arr) in
  let inputs =
    List.nth canon_inputs_choices (abs isel mod List.length canon_inputs_choices)
  in
  let canon =
    Canon.make
      ~local_width:(Modelcheck.Codecs.Snapshot.local_width cfg)
      ~value_width:(Modelcheck.Codecs.Snapshot.value_width cfg)
      ~wiring
      ~classes:(Canon.classes_of_inputs inputs)
  in
  (cfg, wiring, inputs, canon)

let gen_cell =
  QCheck.(
    quad (int_bound 1000) (int_bound 2)
      (list_of_size Gen.(0 -- 14) small_int)
      (list_of_size Gen.(0 -- 14) small_int))

let prop_canon_idempotent =
  QCheck.Test.make ~name:"canonicalize is idempotent" ~count:qcheck_count gen_cell
    (fun (wsel, isel, walk, _) ->
      let cfg, wiring, inputs, canon = canon_setup (wsel, isel) in
      let k = reachable_key cfg wiring inputs walk in
      let c = Canon.canonicalize canon k in
      String.equal c (Canon.canonicalize canon c))

let prop_canon_group_invariant =
  QCheck.Test.make
    ~name:"canonicalize constant across the automorphism orbit" ~count:qcheck_count
    gen_cell (fun (wsel, isel, walk, _) ->
      let cfg, wiring, inputs, canon = canon_setup (wsel, isel) in
      let k = reachable_key cfg wiring inputs walk in
      let c = Canon.canonicalize canon k in
      List.for_all
        (fun sym ->
          String.equal c (Canon.canonicalize canon (Canon.apply canon sym k)))
        (Canon.group canon))

let prop_canon_no_unsound_merge =
  (* Two reachable states canonicalize equally iff one is a group image
     of the other — canonicalization never merges across orbits. *)
  QCheck.Test.make ~name:"equal canon keys <=> same orbit" ~count:qcheck_count gen_cell
    (fun (wsel, isel, walk1, walk2) ->
      let cfg, wiring, inputs, canon = canon_setup (wsel, isel) in
      let k1 = reachable_key cfg wiring inputs walk1 in
      let k2 = reachable_key cfg wiring inputs walk2 in
      let same_canon =
        String.equal (Canon.canonicalize canon k1) (Canon.canonicalize canon k2)
      in
      let same_orbit =
        List.exists
          (fun sym -> String.equal (Canon.apply canon sym k1) k2)
          (Canon.group canon)
      in
      same_canon = same_orbit)

let prop_canon_preserves_projections =
  (* Decode-compare: the canonical representative carries the same
     per-input-class multiset of local slices and the same multiset of
     register slices as the original — the invariant-observable
     projections of a symmetric property. *)
  QCheck.Test.make ~name:"canon preserves class-wise slice multisets"
    ~count:qcheck_count gen_cell (fun (wsel, isel, walk, _) ->
      let cfg, wiring, inputs, canon = canon_setup (wsel, isel) in
      let k = reachable_key cfg wiring inputs walk in
      let c = Canon.canonicalize canon k in
      let n = 3 in
      let lw = Modelcheck.Codecs.Snapshot.local_width cfg in
      let vw = Modelcheck.Codecs.Snapshot.value_width cfg in
      let classes = Canon.classes_of_inputs inputs in
      let locals_of key cls =
        List.init n Fun.id
        |> List.filter (fun p -> classes.(p) = cls)
        |> List.map (fun p -> String.sub key (p * lw) lw)
        |> List.sort String.compare
      in
      let regs_of key =
        List.init n (fun r -> String.sub key ((n * lw) + (r * vw)) vw)
        |> List.sort String.compare
      in
      List.for_all
        (fun cls -> locals_of k cls = locals_of c cls)
        [ 0; 1; 2 ]
      && regs_of k = regs_of c)

let test_canon_group_sizes () =
  (* Known group orders: identity wiring with one input class has the
     full S_3 (order 6); all-distinct inputs always give the trivial
     group; and the canonicalizer reports triviality accordingly. *)
  let cfg = Snap.standard ~n:3 in
  let mk wiring inputs =
    Canon.make
      ~local_width:(Modelcheck.Codecs.Snapshot.local_width cfg)
      ~value_width:(Modelcheck.Codecs.Snapshot.value_width cfg)
      ~wiring
      ~classes:(Canon.classes_of_inputs inputs)
  in
  let idw = Anonmem.Wiring.identity ~n:3 ~m:3 in
  Alcotest.(check int) "identity wiring, one class: |G| = 6" 6
    (Canon.group_order (mk idw [| 1; 1; 1 |]));
  Alcotest.(check int) "distinct inputs: trivial group" 1
    (Canon.group_order (mk idw [| 1; 2; 3 |]));
  Alcotest.(check bool) "trivial is reported trivial" true
    (Canon.is_trivial (mk idw [| 1; 2; 3 |]))

(* ------------------------------------------------------------------ *)
(* Structured rejection of over-wide configurations.                  *)
(* ------------------------------------------------------------------ *)

let test_processor_limits_structured () =
  (* >= 16 processors would corrupt the 4-bit pid packing; > 8 would
     overflow the fault explorer's crash-mask byte.  Both must be
     structured errors, not silent corruption. *)
  let module WsE = WsDiff.E in
  let module WsPar = WsDiff.Par in
  let module WsFE = Modelcheck.Fault_explorer.Make (Modelcheck.Codecs.Write_scan) in
  let cfg16 = Algorithms.Write_scan.cfg ~n:16 ~m:2 in
  let wiring16 = Anonmem.Wiring.identity ~n:16 ~m:2 in
  let inputs16 = Array.make 16 1 in
  let expect_unsupported name f =
    match f () with
    | exception Modelcheck.Explorer.Unsupported_processors { processors; limit; _ }
      ->
        Alcotest.(check bool)
          (name ^ ": limit below processor count")
          true (processors > limit)
    | _ -> Alcotest.failf "%s: expected Unsupported_processors" name
  in
  expect_unsupported "explore" (fun () ->
      WsE.explore ~cfg:cfg16 ~wiring:wiring16 ~inputs:inputs16 ());
  expect_unsupported "check_exhaustive" (fun () ->
      WsE.check_exhaustive ~cfg:cfg16 ~wiring:wiring16 ~inputs:inputs16 ());
  expect_unsupported "par explore" (fun () ->
      WsPar.explore ~domains:2 ~cfg:cfg16 ~wiring:wiring16 ~inputs:inputs16 ());
  let cfg9 = Algorithms.Write_scan.cfg ~n:9 ~m:2 in
  expect_unsupported "fault explore (crash-mask byte)" (fun () ->
      WsFE.explore
        ~invariant:(fun _ -> Ok ())
        ~cfg:cfg9
        ~wiring:(Anonmem.Wiring.identity ~n:9 ~m:2)
        ~inputs:(Array.make 9 1) ());
  (* The registered printer renders the payload, not <exn>. *)
  let printed =
    Printexc.to_string
      (Modelcheck.Explorer.Unsupported_processors
         { engine = "Explorer.explore"; processors = 16; limit = 15 })
  in
  Alcotest.(check bool) "printer names the engine" true
    (String.length printed > 0
    && String.sub printed 0 16 = "Explorer.explore")

(* --- Core-level engine switching ------------------------------------ *)

let test_core_engine_parity () =
  let run ?(reduction = false) ?(domains = 1) ?(ws = false) () =
    match Core.verify_snapshot_model ~n:2 ~reduction ~domains ~ws () with
    | Ok s -> s
    | Error e -> Alcotest.fail e
  in
  let seq = run () in
  let par = run ~domains:2 () in
  let wse = run ~domains:2 ~ws:true () in
  Alcotest.(check int) "ws engine total states"
    seq.Modelcheck.Explorer.total_states wse.Modelcheck.Explorer.total_states;
  Alcotest.(check int) "ws engine total transitions"
    seq.Modelcheck.Explorer.total_transitions
    wse.Modelcheck.Explorer.total_transitions;
  Alcotest.(check int) "total states" seq.Modelcheck.Explorer.total_states
    par.Modelcheck.Explorer.total_states;
  Alcotest.(check int) "total transitions"
    seq.Modelcheck.Explorer.total_transitions
    par.Modelcheck.Explorer.total_transitions;
  let red = run ~reduction:true () in
  let parred = run ~reduction:true ~domains:2 () in
  Alcotest.(check int) "reduced totals agree across engines"
    red.Modelcheck.Explorer.total_states parred.Modelcheck.Explorer.total_states;
  Alcotest.(check bool) "all engines verify wait-freedom" true
    (seq.Modelcheck.Explorer.all_wait_free
    && par.Modelcheck.Explorer.all_wait_free
    && red.Modelcheck.Explorer.all_wait_free
    && parred.Modelcheck.Explorer.all_wait_free)

let () =
  Alcotest.run "par_explorer"
    [
      ( "differential",
        [
          Alcotest.test_case "snapshot n=2, all wirings x inputs" `Quick
            test_snapshot_n2_matrix;
          Alcotest.test_case "snapshot n=3, level-bounded" `Quick
            test_snapshot_n3_bounded;
          Alcotest.test_case "snapshot n=3, full matrix (MC_LONG)" `Slow
            test_snapshot_n3_full_matrix_long;
          Alcotest.test_case "snapshot n=3, unbounded 2x reduction (MC_LONG)"
            `Slow test_snapshot_n3_unbounded_reduction_long;
          Alcotest.test_case "write-scan divergence parity" `Quick
            test_write_scan_divergence_parity;
          Alcotest.test_case "double-collect" `Quick test_double_collect_matrix;
          Alcotest.test_case "consensus, ts-bounded" `Quick
            test_consensus_bounded_matrix;
          Alcotest.test_case "renaming" `Quick test_renaming_matrix;
          Alcotest.test_case "Core engine switching parity" `Quick
            test_core_engine_parity;
        ] );
      ( "counterexamples",
        [
          Alcotest.test_case "planted snapshot bug, all engines" `Quick
            test_planted_snapshot_counterexample;
          Alcotest.test_case "planted snapshot bug, reduced" `Quick
            test_planted_snapshot_counterexample_reduced;
          Alcotest.test_case "planted double-collect bug" `Quick
            test_planted_double_collect_counterexample;
          Alcotest.test_case "trace ids from the arena table replay" `Quick
            test_planted_trace_ids_from_arena_table;
          Alcotest.test_case "fault explorer reduced witness" `Quick
            test_fault_explorer_reduced_witness;
          Alcotest.test_case "snapshot3 ND search" `Quick
            test_snapshot3_nd_planted_search;
        ] );
      ( "work-stealing",
        [
          QCheck_alcotest.to_alcotest prop_deque_sequential_model;
          Alcotest.test_case "deque steal stress, 4 domains" `Quick
            test_ws_deque_steal_stress;
          Alcotest.test_case "single-state space terminates" `Quick
            test_ws_single_state_space;
          Alcotest.test_case "governor quota trip mid-steal" `Quick
            test_ws_governor_trip_mid_steal;
          Alcotest.test_case "state limit mid-steal" `Quick
            test_ws_state_limit_mid_steal;
          Alcotest.test_case "violation mid-steal" `Quick
            test_ws_violation_mid_steal;
        ] );
      ( "canon",
        [
          QCheck_alcotest.to_alcotest prop_canon_idempotent;
          QCheck_alcotest.to_alcotest prop_canon_group_invariant;
          QCheck_alcotest.to_alcotest prop_canon_no_unsound_merge;
          QCheck_alcotest.to_alcotest prop_canon_preserves_projections;
          Alcotest.test_case "known group orders" `Quick test_canon_group_sizes;
        ] );
      ( "limits",
        [
          Alcotest.test_case "structured processor-count rejection" `Quick
            test_processor_limits_structured;
        ] );
    ]
