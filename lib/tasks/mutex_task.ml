(** The one-shot mutual-exclusion task.

    Safety (mutual exclusion) is a {e state} property — at most one
    processor occupies the critical section — so its authoritative check is
    the model checkers' invariant over {!Algorithms.Rt_mutex.in_cs}.  What
    an outcome exposes is the protocol's audit tripwire: a holder that
    observed a foreign claim while it believed itself exclusive outputs
    [Cs_intruded].  An intrusion observation is sound evidence of a
    mutual-exclusion race (only the holder's registers can disagree with
    an exclusive critical section), so the outcome oracle flags it.

    Deadlock-freedom is a liveness property: its violation is a fair cycle
    — a reachable strongly connected component of the transition graph in
    which every live processor keeps taking steps and nobody enters the
    critical section.  {!deadlock} builds the structured failure the model
    checkers report for such cycles; outcomes cannot witness it (a stuck
    execution has no outputs), which is also why the mutex fuzzing target
    carries no step budget. *)

type output = Algorithms.Rt_mutex.output

(** Outcome oracle: no processor's critical-section audit may have
    observed an intruder. *)
let check (t : output Outcome.t) =
  let n = Outcome.processors t in
  let rec go p =
    if p >= n then Ok ()
    else
      match t.Outcome.outputs.(p) with
      | Some Algorithms.Rt_mutex.Cs_intruded ->
          Task_failure.failf ~processors:[ p ]
            ~groups:[ Outcome.group_of t p ]
            Task_failure.Mutual_exclusion
            "p%d's critical-section audit observed a foreign claim" (p + 1)
      | _ -> go (p + 1)
  in
  go 0

(** Structured failure for two processors in the critical section at once
    (reported by the model checkers' state invariant). *)
let exclusion_failure ~processors =
  Task_failure.v ~processors Task_failure.Mutual_exclusion
    (Fmt.str "processors %a occupy the critical section together"
       Fmt.(list ~sep:(any ",") (fun ppf p -> Fmt.pf ppf "p%d" (p + 1)))
       processors)

(** Structured failure for a fair cycle in which the live processors [ps]
    all keep stepping but none ever enters the critical section. *)
let deadlock ~processors =
  Task_failure.v ~processors Task_failure.Deadlock
    (Fmt.str
       "fair cycle: %a step forever without any critical-section entry"
       Fmt.(list ~sep:(any ",") (fun ppf p -> Fmt.pf ppf "p%d" (p + 1)))
       processors)
