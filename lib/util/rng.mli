(** Deterministic, splittable pseudo-random number generator (splitmix-style,
    allocation-free on the native 63-bit word).

    Every randomized component of the library (schedulers, wirings, workload
    generators, property tests) draws from this generator so that every
    execution, test and benchmark is reproducible from a single integer
    seed.  The global [Random] state is never touched. *)

type t

val create : seed:int -> t
(** A fresh generator.  Equal seeds yield equal streams. *)

val copy : t -> t
(** An independent snapshot of the current state. *)

val split : t -> t
(** A statistically independent child generator; the parent advances. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound) — requires [bound > 0]. *)

val bool : t -> bool
val bits64 : t -> int64
(** 63 bits of pseudo-randomness in the low bits (the generator runs on
    the native word). *)

val pick : t -> 'a list -> 'a
(** Uniform choice from a non-empty list.  Raises [Invalid_argument] on
    an empty list. *)

val pick_array : t -> 'a array -> 'a

val shuffle_in_place : t -> 'a array -> unit
(** Fisher–Yates shuffle. *)

val permutation : t -> int -> int array
(** [permutation t n] is a uniformly random permutation of [0..n-1]. *)
