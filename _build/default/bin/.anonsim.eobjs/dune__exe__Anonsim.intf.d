bin/anonsim.mli:
