lib/algorithms/double_collect.mli: Anonmem Fmt Iset Repro_util
