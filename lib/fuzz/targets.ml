(** The fuzzable protocols, each bundled with its task oracle.

    - [snapshot] — the Figure-3 wait-free snapshot; oracle: validity,
      group solvability, the strong all-outputs containment the algorithm
      guarantees (Section 5.3.2), and wait-freedom within a generous step
      budget.
    - [double_collect] — the known-unsound baseline (Section 4): same
      oracle minus wait-freedom (the rule can be starved forever, which is
      its other defect).  The harness is expected to find and shrink its
      comparability violation; the test-suite pins that down.
    - [renaming] — Figure-4 adaptive renaming; oracle: adaptive name
      range, cross-group uniqueness, group solvability, wait-freedom.
    - [consensus] — Figure-5 obstruction-free consensus; oracle: agreement
      and validity of whatever decisions the (possibly partial) execution
      produced.  No step budget: only obstruction-freedom is promised. *)

(** Generous per-processor step budget for the wait-free algorithms.
    Empirically the Figure-3 snapshot terminates within a few hundred
    own-steps for the sizes fuzzed here; the budget leaves two orders of
    magnitude of slack so that only genuine non-termination (a processor
    churning forever) can exceed it. *)
let wait_free_budget ~n ~m = Some (500 * (n + 1) * (m + 1))

module Snapshot_oracle = struct
  let check ~inputs ~participated ~outputs =
    let t = Tasks.Outcome.make ~participated ~inputs ~outputs () in
    match Tasks.Snapshot_task.check_group_solution t with
    | Error _ as e -> e
    | Ok () -> Tasks.Snapshot_task.check_strong t
end

module Snapshot : Target.S = struct
  module P = Algorithms.Snapshot

  let cfg ~n ~m = Algorithms.Snapshot.cfg ~n ~m
  let m_range ~n = (n, n)
  let check = Snapshot_oracle.check
  let step_budget = wait_free_budget
end

module Double_collect : Target.S = struct
  module P = Algorithms.Double_collect

  let cfg ~n ~m = Algorithms.Double_collect.cfg ~n ~m

  (* The rule's defect needs covering pressure: fewer registers than
     processors (Figure 2 runs 5 processors on 3 registers). *)
  let m_range ~n = (max 1 (n - 2), n)
  let check = Snapshot_oracle.check
  let step_budget ~n:_ ~m:_ = None
end

module Renaming : Target.S = struct
  module P = Algorithms.Renaming

  let cfg ~n ~m = Algorithms.Renaming.cfg ~n ~m
  let m_range ~n = (n, n)

  let check ~inputs ~participated ~outputs =
    let names =
      Array.map (Option.map (fun o -> o.Algorithms.Renaming.name_out)) outputs
    in
    Tasks.Renaming_task.check
      (Tasks.Outcome.make ~participated ~inputs ~outputs:names ())

  let step_budget = wait_free_budget
end

module Consensus : Target.S = struct
  module P = Algorithms.Consensus

  let cfg ~n ~m = Algorithms.Consensus.cfg ~n ~m
  let m_range ~n = (n, n)

  let check ~inputs ~participated ~outputs =
    Tasks.Consensus_task.check
      (Tasks.Outcome.make ~participated ~inputs ~outputs ())

  let step_budget ~n:_ ~m:_ = None
end

(* --- the literature portfolio --------------------------------------------- *)

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

(** Smallest register count the mutex-based protocols document as
    sufficient for [n] processors: at least 3, coprime with every
    contention level in [2..n].  Fuzzing below it would report the
    protocol's own (correct) feasibility boundary as failures — those
    cells belong to the model checkers and the feasibility map. *)
let portfolio_m ~n =
  let ok m =
    let rec go k = k > n || (gcd m k = 1 && go (k + 1)) in
    go 2
  in
  let rec first m = if ok m then m else first (m + 1) in
  first 3

module Rt_mutex : Target.S = struct
  module P = Algorithms.Rt_mutex

  let cfg ~n ~m = Algorithms.Rt_mutex.cfg ~n ~m
  let m_range ~n = (portfolio_m ~n, portfolio_m ~n)

  (* The audit tripwire: a critical-section holder that observed a
     foreign seal outputs [Cs_intruded], sound evidence of overlapping
     critical sections even under duplicate identities (clones cannot
     trip it — their seals compare equal — and a foreign seal requires
     an all-mine collect inside the holder's window). *)
  let check ~inputs ~participated ~outputs =
    Tasks.Mutex_task.check
      (Tasks.Outcome.make ~participated ~inputs ~outputs ())

  (* Deadlock-free, not wait-free: an adversarial schedule can starve
     any fixed processor in the entry competition, so a step budget
     would report correct executions as failures.  Deadlock-freedom is
     the fair-SCC search's job ({!Core.verify_mutex}). *)
  let step_budget ~n:_ ~m:_ = None
end

module Naming : Target.S = struct
  module P = Algorithms.Naming

  let cfg ~n ~m = Algorithms.Naming.cfg ~n ~m
  let m_range ~n = (portfolio_m ~n, portfolio_m ~n)

  let check ~inputs ~participated ~outputs =
    Tasks.Naming_task.check
      (Tasks.Outcome.make ~participated ~inputs ~outputs ())

  (* Inherits the mutex's entry competition, hence no budget either. *)
  let step_budget ~n:_ ~m:_ = None
end

module Weak_leader : Target.S = struct
  module P = Algorithms.Weak_leader

  let cfg ~n ~m = Algorithms.Weak_leader.cfg ~n ~m

  (* Cross-group uniqueness survives exactly when no rival group can
     cover the winner's full view: each processor holds at most one
     pending stale claim, so a group of k clones can flip at most k
     registers inside the winner's window.  With distinct identities
     (the model checkers' grids) m >= 2 suffices; under fuzzing, where
     group assignments are collision-biased, a rival group can have up
     to n-1 members, so the documented floor is m >= n.  The fuzzer
     found the (n=3, m=2, two clones) flip before this floor was
     raised — see the feasibility notes in DESIGN.md. *)
  let m_range ~n = (max 2 n, max 2 n + 1)

  let check ~inputs ~participated ~outputs =
    Tasks.Leader_task.check
      (Tasks.Outcome.make ~participated ~inputs ~outputs ())

  let step_budget = wait_free_budget
end

let all : (string * (module Target.S)) list =
  [
    ("snapshot", (module Snapshot));
    ("double_collect", (module Double_collect));
    ("renaming", (module Renaming));
    ("consensus", (module Consensus));
    ("rt_mutex", (module Rt_mutex));
    ("naming", (module Naming));
    ("weak_leader", (module Weak_leader));
  ]

let find key = List.assoc_opt key all
let keys = List.map fst all
