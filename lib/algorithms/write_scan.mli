(** Figure 1: the plain write–scan loop.

    Each processor forever alternates between writing its view (the set of
    inputs it knows) to the next register of a private fair cyclic order
    and scanning all registers, folding what it reads into its view.  No
    processor ever terminates; the protocol exists to study which view
    patterns can survive forever — the eventual-pattern question of
    Section 4, answered by {!Analysis.Stable_views} (Theorem 4.8: stable
    views form a DAG with a unique source).

    Implements {!Anonmem.Protocol.S} with an uninhabited output type. *)

open Repro_util

type cfg = { n : int; m : int }

val cfg : n:int -> m:int -> cfg

type value = Iset.t
type input = int

type output = |
(** This protocol produces no outputs. *)

type scan = { pos : int }
type phase = Writing | Scanning of scan
type local = { view : Iset.t; next_write : int; phase : phase }

val name : string
val processors : cfg -> int
val registers : cfg -> int
val register_init : cfg -> value
val init : cfg -> input -> local
val halted : cfg -> local -> bool
val next : cfg -> local -> value Anonmem.Protocol.operation option
val apply_read : cfg -> local -> reg:int -> value -> local
val apply_write : cfg -> local -> local
val output : cfg -> local -> output option

val flat :
  cfg ->
  phys:int array ->
  inputs:input array ->
  registers:value array ->
  locals:local array ->
  value Anonmem.Protocol.flat option

val view_of_local : local -> Iset.t
val at_round_boundary : local -> bool
(** Between rounds: the processor's next operation is a write. *)

val pp_value : cfg -> value Fmt.t
val pp_local : cfg -> local Fmt.t
val pp_output : cfg -> output Fmt.t
