lib/algorithms/snapshot.ml: Fmt Iset Repro_util Snapshot_core
