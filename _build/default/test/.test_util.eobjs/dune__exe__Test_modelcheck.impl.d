test/test_modelcheck.ml: Alcotest Algorithms Anonmem Array Bytes Core Fun Iset List Modelcheck Repro_util Rng Tasks
