(** Section 7: the long-lived variant of the snapshot algorithm.

    A processor that has produced a snapshot output can invoke the snapshot
    again with a new input: it keeps all of its local state (and the
    registers keep their contents), resets its level to 0 and adds the new
    input to its view.  The guarantees are: outputs contain only inputs of
    participating processors, each processor's output contains all the
    inputs it has used so far, and every two outputs are related by
    containment.

    Because the single-shot algorithm is wait-free, each invocation of this
    variant terminates too (the paper calls the construction non-blocking
    and obstruction-free; with our fair schedulers each invocation is in
    fact wait-free for the same reason as Figure 3).

    The module is a functor so that consensus can instantiate views over
    (value, timestamp) pairs; {!Int_views} is the ready-made integer
    instance. *)

open Repro_util

module Make (Vset : Sorted_set.S) (Pp : sig
  val pp_elt : Vset.elt Fmt.t
end) =
struct
  module Core = Snapshot_core.Make (Vset)

  type cfg = Core.cfg = { n : int; m : int }

  let cfg = Core.cfg
  let standard ~n = Core.cfg ~n ~m:n

  type value = Core.value
  type input = Vset.elt
  type output = Vset.t
  type local = Core.local

  let name = "long-lived-snapshot"
  let processors (c : cfg) = c.n
  let registers (c : cfg) = c.m
  let register_init = Core.register_init
  let init = Core.init

  let ready c (l : local) = Core.reached_level c l
  (** The current invocation has terminated; its output is {!output_view}.
      The processor takes no steps until {!invoke} is called again. *)

  let halted = ready
  let next c l = if ready c l then None else Some (Core.next c l)
  let apply_read = Core.apply_read
  let apply_write = Core.apply_write
  let output c (l : local) = if ready c l then Some l.Core.view else None
  let output_view (l : local) = l.Core.view

  (* No flat machine yet: the boxed paths run this protocol. *)
  let flat _ ~phys:_ ~inputs:_ ~registers:_ ~locals:_ = None

  let invoke c (l : local) input =
    if not (ready c l) then
      invalid_arg "Long_lived_snapshot.invoke: previous invocation still running";
    Core.invoke c l input

  let pp_value _ ppf v = Core.pp_velt Pp.pp_elt ppf v
  let pp_local _ ppf l = Core.pp_local Pp.pp_elt ppf l
  let pp_output _ ppf o = Vset.pp Pp.pp_elt ppf o
end

module Int_views =
  Make
    (Iset)
    (struct
      let pp_elt = Fmt.int
    end)
