lib/analysis/figure2.ml: Algorithms Anonmem Array Iset List Repro_util Text_table
