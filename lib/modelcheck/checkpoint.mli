(** Atomic, checksummed checkpoint files for the verification engines.

    A checkpoint is a flat container of named binary sections:

    {v
      "ANONCKP1"  8-byte magic
      u32 LE      section count
      per section:
        u16 LE    tag length   | tag bytes (UTF-8 name, e.g. "table")
        u64 LE    payload length
        u64 LE    FNV-64 checksum of the payload
        payload bytes
    v}

    Each engine decides what its sections mean ({!Explorer} stores the
    visited table, parent/successor vectors and BFS frontier position;
    {!Rt_mutex_packed} its hash table and Tarjan stacks); this module
    owns only framing, integrity and atomicity.  [save] writes the whole
    image to [path ^ ".tmp"], fsyncs, then renames — so the previous
    checkpoint survives any crash mid-write, and [load] of a torn or
    bit-flipped file raises {!Corrupt_checkpoint} instead of returning a
    silently wrong frontier. *)

exception Corrupt_checkpoint of string
(** Raised by {!of_bytes} / {!load} / the engines' [deserialize]
    functions on any framing, truncation or checksum failure.  The
    string names the failing section or offset. *)

exception Simulated_crash
(** Raised by {!save} when a torn write was armed via
    {!set_torn_write} — the chaos-test stand-in for a power cut. *)

val to_bytes : (string * Bytes.t) list -> Bytes.t
val of_bytes : Bytes.t -> (string * Bytes.t) list

val find : string -> (string * Bytes.t) list -> Bytes.t
(** [find tag sections] is the payload of section [tag]; raises
    {!Corrupt_checkpoint} if absent. *)

val save : path:string -> (string * Bytes.t) list -> unit
(** Atomic write-rename of the framed image to [path]. *)

val load : path:string -> (string * Bytes.t) list
(** Read and verify a checkpoint file.  Raises {!Corrupt_checkpoint} on
    any integrity failure and [Sys_error] if the file is unreadable. *)

val checksum : Bytes.t -> int -> int -> int
(** [checksum buf off len] — the FNV-64 (folded to a nonnegative OCaml
    int) used for section integrity; exposed for the journal layer and
    for tests that forge corrupt images. *)

val bytes_of_ints : int array -> Bytes.t
(** 8-byte little-endian encoding of each element — the common payload
    shape for engine counters and frame stacks. *)

val ints_of_bytes : Bytes.t -> int array
(** Inverse of {!bytes_of_ints}; raises {!Corrupt_checkpoint} if the
    length is not a multiple of 8. *)

type policy = { path : string; every_states : int }
(** Where to checkpoint and how often, in states popped between
    snapshots.  Engines accept this as their [?ckpt] argument and also
    write a final checkpoint when a governor trips. *)

val set_torn_write : int option -> unit
(** [set_torn_write (Some k)] arms the chaos hook: the next {!save}
    writes only the first [k] bytes of the tmp file, skips the rename,
    raises {!Simulated_crash}, and disarms itself.  [None] disarms. *)
