(** The weak leader-election task: at most one {e group} may produce
    [Leader] outputs; electing nobody is permitted (that is what makes
    the task weak, and what makes it wait-free solvable).

    The oracle is a pure outcome property, so — unlike mutual exclusion —
    fuzzing checks it at full strength.  Uniqueness is group-based
    because the protocol is symmetric: two processors sharing an input
    are anonymous clones running the same code, and no symmetric
    protocol can prevent both from winning, exactly as with the paper's
    group renaming.  When every identity is distinct this is the
    classic at-most-one-leader guarantee; two leaders from {e different}
    groups is a genuine violation at any multiplicity. *)

type output = Algorithms.Weak_leader.output

let check (t : output Outcome.t) =
  let n = Outcome.processors t in
  let leaders =
    List.filter
      (fun p -> t.Outcome.outputs.(p) = Some Algorithms.Weak_leader.Leader)
      (List.init n Fun.id)
  in
  let rec foreign = function
    | p :: (q :: _ as rest) ->
        if Outcome.group_of t p <> Outcome.group_of t q then Some (p, q)
        else foreign rest
    | _ -> None
  in
  match foreign leaders with
  | None -> Ok ()
  | Some (p, q) ->
      Task_failure.failf ~processors:[ p; q ]
        ~groups:[ Outcome.group_of t p; Outcome.group_of t q ]
        Task_failure.Leader_uniqueness
        "p%d (id %d) and p%d (id %d) both elected themselves leader" (p + 1)
        (Outcome.group_of t p) (q + 1) (Outcome.group_of t q)
