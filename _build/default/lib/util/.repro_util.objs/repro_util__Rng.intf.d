lib/util/rng.mli:
