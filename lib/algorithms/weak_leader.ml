(** A wait-free {e weak leader election} for fully-anonymous read/write
    memory, probing Gelashvili-style space limits at small m
    (cf. arXiv:1506.06817 for the consensus analogue).

    Every processor repeatedly collects the m registers; whenever its view
    contains a free register it claims the first one (a blind write from a
    possibly-stale view).  Once a collect shows the memory full, the
    processor halts: it outputs [Leader] if {e every} register holds its
    own identity and [Follower] otherwise.  The task is weak — electing
    nobody is allowed — but at most one processor may output [Leader].

    The protocol is wait-free: each loop iteration with a free register
    performs a write, the number of free registers never increases, and a
    full view ends the run, so every processor halts within O(m) collects
    regardless of scheduling.

    Space boundary (confirmed empirically by the feasibility map): with
    m >= 2 registers leader-uniqueness holds for every n — a second
    unanimous view would require a second pending write per competitor,
    and each processor has at most one write outstanding between collects.
    With m = 1 the single pending stale write is enough: p claims the lone
    register, sees itself unanimously and exits as leader, then q's stale
    claim (issued when the register was still free) obliterates p's and q
    also reads itself unanimously — two leaders.  One register is below
    the covering floor, the same phenomenon the host paper's Section-2.1
    bound isolates.

    With [majority_entry] the unanimity test weakens to "strictly more
    than half of the registers" — a planted bug whose two-leader
    counterexamples the differential matrix replays. *)

type cfg = { n : int; m : int; majority_entry : bool }

let cfg ~n ~m =
  if n < 1 || m < 1 then invalid_arg "Weak_leader.cfg";
  { n; m; majority_entry = false }

(** The planted-bug variant: declares leadership on a strict majority. *)
let cfg_majority ~n ~m = { (cfg ~n ~m) with majority_entry = true }

type value = int option
type input = int
type output = Leader | Follower

type phase =
  | Collecting of { pos : int; acc : value list }
      (** [acc] holds the values read so far, most recent first *)
  | Claiming of { target : int }
  | Done of output

type local = { id : int; phase : phase }

let name = "weak-leader"
let processors c = c.n
let registers c = c.m
let register_init _ = None
let init _ id = { id; phase = Collecting { pos = 0; acc = [] } }
let halted _ l = match l.phase with Done _ -> true | _ -> false

let next _ l =
  match l.phase with
  | Collecting { pos; _ } -> Some (Anonmem.Protocol.Read pos)
  | Claiming { target } -> Some (Anonmem.Protocol.Write (target, Some l.id))
  | Done _ -> None

let decide c l (view : value list) =
  let free =
    List.mapi (fun i v -> (i, v)) view
    |> List.find_opt (fun (_, v) -> v = None)
  in
  match free with
  | Some (target, _) -> { l with phase = Claiming { target } }
  | None ->
      let mine =
        List.fold_left
          (fun k v -> if v = Some l.id then k + 1 else k)
          0 view
      in
      let wins = if c.majority_entry then 2 * mine > c.m else mine = c.m in
      { l with phase = Done (if wins then Leader else Follower) }

let apply_read c l ~reg v =
  match l.phase with
  | Collecting { pos; acc } ->
      if reg <> pos then invalid_arg "Weak_leader.apply_read: wrong register";
      let acc = v :: acc in
      if pos + 1 < c.m then { l with phase = Collecting { pos = pos + 1; acc } }
      else decide c l (List.rev acc)
  | Claiming _ | Done _ -> invalid_arg "Weak_leader.apply_read: not collecting"

let apply_write _ l =
  match l.phase with
  | Claiming _ -> { l with phase = Collecting { pos = 0; acc = [] } }
  | Collecting _ | Done _ -> invalid_arg "Weak_leader.apply_write: not claiming"

let output _ l = match l.phase with Done o -> Some o | _ -> None

(* Flat twin.  Register values are ints ([-1] = free, [id >= 0] = claimed
   by [id] — injective because identifiers are non-negative); the collect
   accumulator lives in a preallocated per-processor scratch row of the
   values read so far, indexed by collect position.  Phase is a pair of
   ints: state (0 = collecting, 1 = claiming, 2 = done) and its argument
   (position / target / 0-Follower 1-Leader).  Total. *)
let flat (c : cfg) ~(phys : int array) ~(inputs : int array)
    ~(registers : value array) ~(locals : local array) :
    value Anonmem.Protocol.flat option =
  let n = c.n and m = c.m in
  let module Bits = Repro_util.Bits in
  let enc = function None -> -1 | Some id -> id in
  let ok_value = function None -> true | Some id -> id >= 0 in
  if n > Bits.max_width || m > Bits.max_width
     || not (Array.for_all (fun i -> i >= 0) inputs)
     || not (Array.for_all ok_value registers)
     || not (Array.for_all (fun l -> l.id >= 0) locals)
     || not
          (Array.for_all
             (fun l ->
               match l.phase with
               | Collecting { acc; _ } -> List.for_all ok_value acc
               | _ -> true)
             locals)
  then None
  else begin
    let rv = Array.map enc registers in
    let pv = Array.copy rv in
    let dirty = ref 0 in
    let lid = Array.map (fun l -> l.id) locals in
    let lstate = Array.make n 0 in
    let larg = Array.make n 0 in
    let racc = Array.make (n * m) (-1) in
    Array.iteri
      (fun p l ->
        match l.phase with
        | Collecting { pos; acc } ->
            lstate.(p) <- 0;
            larg.(p) <- pos;
            (* [acc] is most-recent-first: position [pos-1] at the head. *)
            List.iteri
              (fun k v -> racc.((p * m) + (pos - 1 - k)) <- enc v)
              acc
        | Claiming { target } ->
            lstate.(p) <- 1;
            larg.(p) <- target
        | Done o ->
            lstate.(p) <- 2;
            larg.(p) <- (match o with Follower -> 0 | Leader -> 1))
      locals;
    let halted p = lstate.(p) = 2 in
    let peek p =
      match lstate.(p) with
      | 0 -> phys.((p * m) + larg.(p)) lsl 1
      | 1 -> (phys.((p * m) + larg.(p)) lsl 1) lor 1
      | _ -> -1
    in
    let decide p =
      (* First free register in the collected row, else count own ids —
         [decide] over the reversed accumulator, position order. *)
      let base = p * m in
      let target = ref (-1) in
      (try
         for i = 0 to m - 1 do
           if racc.(base + i) = -1 then begin
             target := i;
             raise Exit
           end
         done
       with Exit -> ());
      if !target >= 0 then begin
        lstate.(p) <- 1;
        larg.(p) <- !target
      end
      else begin
        let mine = ref 0 in
        for i = 0 to m - 1 do
          if racc.(base + i) = lid.(p) then incr mine
        done;
        let wins = if c.majority_entry then 2 * !mine > m else !mine = m in
        lstate.(p) <- 2;
        larg.(p) <- (if wins then 1 else 0)
      end
    in
    let do_read p v =
      let pos = larg.(p) in
      racc.((p * m) + pos) <- v;
      if pos + 1 < m then larg.(p) <- pos + 1 else decide p
    in
    let step p =
      if lstate.(p) = 0 then do_read p rv.(phys.((p * m) + larg.(p)))
      else begin
        let r = phys.((p * m) + larg.(p)) in
        pv.(r) <- rv.(r);
        rv.(r) <- lid.(p);
        dirty := !dirty lor (1 lsl r);
        lstate.(p) <- 0;
        larg.(p) <- 0
      end
    in
    let step_omit p =
      lstate.(p) <- 0;
      larg.(p) <- 0
    in
    let step_stale p = do_read p pv.(phys.((p * m) + larg.(p))) in
    let reset p =
      lid.(p) <- inputs.(p);
      lstate.(p) <- 0;
      larg.(p) <- 0
    in
    let dec v = if v < 0 then None else Some v in
    let value r =
      if !dirty land (1 lsl r) <> 0 then dec rv.(r) else registers.(r)
    in
    let sync () =
      List.iter
        (fun r -> registers.(r) <- dec rv.(r))
        (Bits.to_list !dirty);
      for p = 0 to n - 1 do
        let phase =
          match lstate.(p) with
          | 0 ->
              let pos = larg.(p) in
              let acc = ref [] in
              for i = 0 to pos - 1 do
                acc := dec racc.((p * m) + i) :: !acc
              done;
              Collecting { pos; acc = !acc }
          | 1 -> Claiming { target = larg.(p) }
          | _ -> Done (if larg.(p) = 1 then Leader else Follower)
        in
        locals.(p) <- { id = lid.(p); phase }
      done
    in
    Some
      {
        Anonmem.Protocol.total = true;
        peek;
        step;
        step_omit;
        step_stale;
        reset;
        halted;
        value;
        sync;
      }
  end

let pp_value _ ppf = function
  | None -> Fmt.string ppf "-"
  | Some id -> Fmt.pf ppf "%d" id

let pp_output _ ppf = function
  | Leader -> Fmt.string ppf "leader"
  | Follower -> Fmt.string ppf "follower"

let pp_local c ppf l =
  let phase ppf = function
    | Collecting { pos; _ } -> Fmt.pf ppf "collect@%d" pos
    | Claiming { target } -> Fmt.pf ppf "claim r%d" (target + 1)
    | Done o -> pp_output c ppf o
  in
  Fmt.pf ppf "{id=%d %a}" l.id phase l.phase
