(** Parameter sweeps for the experiment harness: step-count distributions
    of each algorithm as the number of processors grows and as the
    scheduler changes.  The paper reports no measurements (it is a brief
    announcement), so these sweeps characterize the implementation; the
    shapes — growth with [N], scheduler sensitivity, the cheapness of the
    unsound double collect — are recorded in EXPERIMENTS.md. *)

open Repro_util
module Scheduler = Anonmem.Scheduler

type row = { param : int; stats : Stats.summary }

(** [run ~params ~seeds f] collects [f param seed] over [seeds] runs per
    parameter value, dropping [None]s (runs that hit a budget). *)
let run ~params ~seeds f =
  List.map
    (fun param ->
      let samples = List.filter_map (f param) (List.init seeds Fun.id) in
      match Stats.summarize samples with
      | Some stats -> { param; stats }
      | None ->
          {
            param;
            stats =
              {
                Stats.count = 0;
                min = 0;
                max = 0;
                mean = nan;
                median = 0;
                p90 = 0;
                stddev = nan;
              };
          })
    params

let to_table ~param_name rows =
  let t =
    Text_table.create
      ~headers:[ param_name; "runs"; "min"; "median"; "p90"; "max"; "mean" ]
  in
  List.iter
    (fun { param; stats } ->
      Text_table.add_row t
        [
          string_of_int param;
          string_of_int stats.Stats.count;
          string_of_int stats.Stats.min;
          string_of_int stats.Stats.median;
          string_of_int stats.Stats.p90;
          string_of_int stats.Stats.max;
          Printf.sprintf "%.0f" stats.Stats.mean;
        ])
    rows;
  Text_table.render t

(* --- ready-made sweeps ------------------------------------------------------ *)

module Snap_sys = Anonmem.System.Make (Algorithms.Snapshot)
module Dc_sys = Anonmem.System.Make (Algorithms.Double_collect)
module Cons_sys = Anonmem.System.Make (Algorithms.Consensus)

type sched_kind = Round_robin | Random_fair | Solo

let sched_name = function
  | Round_robin -> "round-robin"
  | Random_fair -> "random"
  | Solo -> "solo"

let make_sched kind rng =
  match kind with
  | Round_robin -> Scheduler.round_robin ()
  | Random_fair -> Scheduler.random (Rng.split rng)
  | Solo -> Scheduler.solo 0

(** Steps until every processor has output its snapshot. *)
let snapshot_steps ?(seeds = 21) ?(sched = Random_fair) ~ns () =
  run ~params:ns ~seeds (fun n seed ->
      let rng = Rng.create ~seed:(seed + (1000 * n)) in
      let cfg = Algorithms.Snapshot.standard ~n in
      let wiring = Anonmem.Wiring.random rng ~n ~m:n in
      let inputs = Array.init n (fun i -> i + 1) in
      let state = Snap_sys.init ~cfg ~wiring ~inputs in
      match Snap_sys.run ~max_steps:20_000_000 ~sched:(make_sched sched rng) state with
      | Snap_sys.All_halted, steps -> Some steps
      | Snap_sys.Scheduler_done, steps when sched = Solo -> Some steps
      | _ -> None)

(** Steps of the (unsound) double collect under the same conditions — the
    baseline that shows what the level mechanism costs. *)
let double_collect_steps ?(seeds = 21) ~ns () =
  run ~params:ns ~seeds (fun n seed ->
      let rng = Rng.create ~seed:(seed + (1000 * n)) in
      let cfg = Algorithms.Double_collect.standard ~n in
      let wiring = Anonmem.Wiring.random rng ~n ~m:n in
      let inputs = Array.init n (fun i -> i + 1) in
      let state = Dc_sys.init ~cfg ~wiring ~inputs in
      match
        Dc_sys.run ~max_steps:20_000_000
          ~sched:(Scheduler.random (Rng.split rng))
          state
      with
      | Dc_sys.All_halted, steps -> Some steps
      | _ -> None)

(** Snapshot-invocation rounds a solo processor needs to decide consensus. *)
let consensus_solo_steps ?(seeds = 11) ~ns () =
  run ~params:ns ~seeds (fun n seed ->
      let rng = Rng.create ~seed:(seed + (1000 * n)) in
      let cfg = Algorithms.Consensus.standard ~n in
      let wiring = Anonmem.Wiring.random rng ~n ~m:n in
      let inputs = Array.init n (fun i -> 1 + (i mod 2)) in
      let state = Cons_sys.init ~cfg ~wiring ~inputs in
      match Cons_sys.run ~max_steps:20_000_000 ~sched:(Scheduler.solo 0) state with
      | Cons_sys.Scheduler_done, steps when Cons_sys.is_halted state 0 ->
          Some steps
      | _ -> None)

(** Steps until all snapshots complete, per scheduler — the X1 ablation. *)
let scheduler_sensitivity ?(seeds = 15) ~n () =
  List.map
    (fun kind ->
      let rows = snapshot_steps ~seeds ~sched:kind ~ns:[ n ] () in
      (sched_name kind, (List.hd rows).stats))
    [ Round_robin; Random_fair ]
