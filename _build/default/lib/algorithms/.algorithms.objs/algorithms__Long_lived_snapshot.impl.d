lib/algorithms/long_lived_snapshot.ml: Fmt Iset Repro_util Snapshot_core Sorted_set
