(* Direct unit tests for the small utility modules the analyses lean on:
   Digraph (differential against a brute-force transitive closure) and
   Stats (known distributions plus a naive nearest-rank oracle). *)

open Repro_util

(* --- digraph: brute-force oracle ------------------------------------------ *)

(* Adjacency matrix closure.  [path.(u).(v)] = a path of >= 1 edge;
   [reach] additionally admits the empty path. *)
let closure n edges =
  let path = Array.make_matrix n n false in
  List.iter (fun (u, v) -> path.(u).(v) <- true) edges;
  for k = 0 to n - 1 do
    for u = 0 to n - 1 do
      for v = 0 to n - 1 do
        if path.(u).(k) && path.(k).(v) then path.(u).(v) <- true
      done
    done
  done;
  path

let graph_of n edges =
  let g = Digraph.create n in
  List.iter (fun (u, v) -> Digraph.add_edge g u v) edges;
  g

let sorted l = List.sort compare l

let check_graph_against_oracle name n edges =
  let g = graph_of n edges in
  let path = closure n edges in
  let reach u v = u = v || path.(u).(v) in
  Alcotest.(check int) (name ^ ": vertex_count") n (Digraph.vertex_count g);
  Alcotest.(check int)
    (name ^ ": edge_count")
    (List.length edges) (Digraph.edge_count g);
  (* successors: exactly the recorded out-edges, duplicates kept *)
  for u = 0 to n - 1 do
    Alcotest.(check (list int))
      (Fmt.str "%s: successors of %d" name u)
      (sorted (List.filter_map (fun (a, b) -> if a = u then Some b else None) edges))
      (sorted (Digraph.successors g u))
  done;
  (* acyclicity <=> no vertex reaches itself through >= 1 edge *)
  let acyclic = ref true in
  for v = 0 to n - 1 do
    if path.(v).(v) then acyclic := false
  done;
  Alcotest.(check bool) (name ^ ": is_acyclic") !acyclic (Digraph.is_acyclic g);
  (* self loops *)
  for v = 0 to n - 1 do
    Alcotest.(check bool)
      (Fmt.str "%s: self loop at %d" name v)
      (List.mem (v, v) edges)
      (Digraph.has_self_loop g v)
  done;
  (* sources: no incoming edge *)
  Alcotest.(check (list int))
    (name ^ ": sources")
    (sorted
       (List.filter
          (fun v -> not (List.exists (fun (_, b) -> b = v) edges))
          (List.init n Fun.id)))
    (sorted (Digraph.sources g));
  (* reachability from every singleton and one two-element seed set *)
  let check_reachable starts =
    let r = Digraph.reachable_from g starts in
    for v = 0 to n - 1 do
      Alcotest.(check bool)
        (Fmt.str "%s: reach %a -> %d" name Fmt.(Dump.list int) starts v)
        (List.exists (fun s -> reach s v) starts)
        r.(v)
    done
  in
  for s = 0 to n - 1 do
    check_reachable [ s ]
  done;
  if n >= 2 then check_reachable [ 0; n - 1 ];
  (* SCCs: the mutual-reachability partition, as a set of sorted lists *)
  let comps = Digraph.sccs g in
  let expected_partition =
    let seen = Array.make n false in
    let out = ref [] in
    for v = 0 to n - 1 do
      if not seen.(v) then begin
        let comp =
          List.filter (fun u -> reach v u && reach u v) (List.init n Fun.id)
        in
        List.iter (fun u -> seen.(u) <- true) comp;
        out := sorted comp :: !out
      end
    done;
    sorted !out
  in
  Alcotest.(check (list (list int)))
    (name ^ ": sccs partition") expected_partition
    (sorted (List.map sorted comps));
  (* scc_ids agrees with the partition and numbers components in reverse
     topological order: every cross-component edge points to an
     earlier-numbered (sink-ward) component *)
  let ids, count = Digraph.scc_ids g in
  Alcotest.(check int) (name ^ ": scc count") (List.length comps) count;
  List.iter
    (fun comp ->
      match comp with
      | [] -> Alcotest.fail "empty SCC"
      | v :: rest ->
          List.iter
            (fun u ->
              Alcotest.(check int)
                (Fmt.str "%s: comp ids of %d and %d" name v u)
                ids.(v) ids.(u))
            rest)
    comps;
  List.iter
    (fun (u, v) ->
      if ids.(u) <> ids.(v) then
        Alcotest.(check bool)
          (Fmt.str "%s: edge %d->%d is sink-ward" name u v)
          true
          (ids.(v) < ids.(u)))
    edges

let test_digraph_known () =
  (* hand-picked shapes: a DAG, a cycle, a two-SCC chain, self loops *)
  check_graph_against_oracle "dag" 4 [ (0, 1); (0, 2); (1, 3); (2, 3) ];
  check_graph_against_oracle "cycle" 3 [ (0, 1); (1, 2); (2, 0) ];
  check_graph_against_oracle "two sccs" 4
    [ (0, 1); (1, 0); (1, 2); (2, 3); (3, 2) ];
  check_graph_against_oracle "self loop" 2 [ (0, 0); (0, 1) ];
  check_graph_against_oracle "empty" 3 [];
  check_graph_against_oracle "duplicates" 2 [ (0, 1); (0, 1) ];
  check_graph_against_oracle "singleton" 1 []

let graph_arb =
  let gen =
    QCheck.Gen.(
      int_range 1 8 >>= fun n ->
      list_size (int_bound 20) (pair (int_bound (n - 1)) (int_bound (n - 1)))
      >>= fun edges -> return (n, edges))
  in
  QCheck.make
    ~print:(fun (n, edges) ->
      Fmt.str "n=%d edges=%a" n Fmt.(Dump.list (Dump.pair int int)) edges)
    gen

let prop_digraph_random =
  QCheck.Test.make ~name:"digraph agrees with the brute-force closure"
    graph_arb (fun (n, edges) ->
      check_graph_against_oracle "random" n edges;
      true)

(* --- stats ---------------------------------------------------------------- *)

let test_stats_known () =
  (match Stats.summarize [ 3; 1; 2 ] with
  | Some s ->
      Alcotest.(check int) "count" 3 s.Stats.count;
      Alcotest.(check int) "min" 1 s.Stats.min;
      Alcotest.(check int) "max" 3 s.Stats.max;
      Alcotest.(check int) "median" 2 s.Stats.median;
      Alcotest.(check int) "p90" 3 s.Stats.p90;
      Alcotest.(check (float 1e-9)) "mean" 2.0 s.Stats.mean;
      Alcotest.(check (float 1e-9)) "stddev" (sqrt (2.0 /. 3.0)) s.Stats.stddev;
      (* the printer is part of the experiment-log format *)
      Alcotest.(check string) "pp"
        "n=3 min=1 med=2 p90=3 max=3 mean=2.0"
        (Fmt.str "%a" Stats.pp_summary s)
  | None -> Alcotest.fail "summarize on a non-empty list");
  Alcotest.(check bool) "empty list" true (Stats.summarize [] = None);
  Alcotest.(check bool) "empty median" true (Stats.median [] = None);
  Alcotest.(check bool) "empty percentile" true (Stats.percentile 0.9 [] = None);
  (* a constant sample *)
  match Stats.summarize [ 5; 5; 5; 5 ] with
  | Some s ->
      Alcotest.(check int) "constant median" 5 s.Stats.median;
      Alcotest.(check (float 1e-9)) "constant stddev" 0.0 s.Stats.stddev
  | None -> Alcotest.fail "summarize on a constant list"

(* Independent nearest-rank implementation: the smallest sorted index
   whose cumulative share reaches q. *)
let naive_percentile q xs =
  match List.sort compare xs with
  | [] -> None
  | xs ->
      let n = List.length xs in
      let rec find i = function
        | [ last ] -> last
        | x :: rest ->
            if float_of_int (i + 1) >= q *. float_of_int n then x
            else find (i + 1) rest
        | [] -> assert false
      in
      Some (find 0 xs)

let samples_arb =
  QCheck.make
    ~print:(fun (xs, q) -> Fmt.str "%a @ %.2f" Fmt.(Dump.list int) xs q)
    QCheck.Gen.(
      pair
        (list_size (int_bound 30) (int_range (-50) 50))
        (float_bound_inclusive 1.0))

let prop_percentile_nearest_rank =
  QCheck.Test.make ~name:"percentile matches the naive nearest-rank oracle"
    samples_arb (fun (xs, q) ->
      QCheck.assume (q > 0.0);
      Stats.percentile q xs = naive_percentile q xs)

let prop_summary_bounds =
  QCheck.Test.make ~name:"summary fields are ordered and within range"
    (QCheck.make
       ~print:(fun xs -> Fmt.str "%a" Fmt.(Dump.list int) xs)
       QCheck.Gen.(list_size (int_range 1 30) (int_range (-50) 50)))
    (fun xs ->
      match Stats.summarize xs with
      | None -> false
      | Some s ->
          s.Stats.min <= s.Stats.median
          && s.Stats.median <= s.Stats.p90
          && s.Stats.p90 <= s.Stats.max
          && s.Stats.mean >= float_of_int s.Stats.min
          && s.Stats.mean <= float_of_int s.Stats.max
          && s.Stats.stddev >= 0.0
          && List.mem s.Stats.median xs
          && List.mem s.Stats.p90 xs)

let () =
  Alcotest.run "util-extra"
    [
      ( "digraph",
        [
          Alcotest.test_case "known shapes vs oracle" `Quick test_digraph_known;
          QCheck_alcotest.to_alcotest prop_digraph_random;
        ] );
      ( "stats",
        [
          Alcotest.test_case "known distributions" `Quick test_stats_known;
          QCheck_alcotest.to_alcotest prop_percentile_nearest_rank;
          QCheck_alcotest.to_alcotest prop_summary_bounds;
        ] );
    ]
