lib/analysis/view_graph.ml: Array Digraph Fmt Iset List Repro_util
