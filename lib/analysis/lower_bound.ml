(** Section 2.1: with fewer than [N] registers, no non-trivial read-write
    coordination is possible in the fully-anonymous model.

    This module materializes the covering execution from the proof, running
    the Figure-3 snapshot algorithm in a system of [N] processors but only
    [N-1] registers:

    {ol
    {- the [N-1] processors of [Q] are wired so that their first writes
       cover the [N-1] registers pairwise-differently, and are held poised
       before that first write (they have taken no steps);}
    {- a distinguished processor [p] runs solo until it terminates — with
       nobody interfering its level rises freely and it outputs its own
       singleton;}
    {- every member of [Q] performs its covering write: afterwards no
       register carries any trace of [p]'s input;}
    {- [Q] then runs fairly to completion, oblivious of [p].}}

    The combined outcome violates the snapshot task — [p]'s output and the
    outputs of [Q] are not related by containment — which demonstrates the
    covering phenomenon behind the [≥ N] register lower bound.  (The paper's
    argument is algorithm-agnostic; this construction instantiates it
    against our concrete algorithm.) *)

open Repro_util
module Protocol = Anonmem.Protocol
module Wiring = Anonmem.Wiring
module Scheduler = Anonmem.Scheduler
module Snapshot = Algorithms.Snapshot
module Sys = Anonmem.System.Make (Snapshot)

type result = {
  n : int;
  p_solo_steps : int;
  p_output : Iset.t;
  memory_after_covering : Iset.t list;
      (** register views right after the covering writes — none contains
          [p]'s input *)
  q_outputs : (int * Iset.t) list;
  outcome : Iset.t Tasks.Outcome.t;
  violation : string;  (** why the outcome violates the snapshot task *)
}

(** Wirings such that the first write of [q = 1..n-1] lands on physical
    register [q - 1]: processor [q] is wired through the rotation
    [i ↦ (i + q - 1) mod m].  Processor 0 ([p]) is wired through the
    identity. *)
let covering_wiring ~n =
  let m = n - 1 in
  Wiring.make
    (Array.init n (fun q ->
         if q = 0 then Permutation.identity m
         else Permutation.of_list (List.init m (fun i -> (i + q - 1) mod m))))

let run ?(inputs = None) ~n () =
  if n < 2 then invalid_arg "Lower_bound.run: need at least 2 processors";
  let m = n - 1 in
  let cfg = Snapshot.cfg ~n ~m in
  let inputs =
    match inputs with Some a -> a | None -> Array.init n (fun i -> i + 1)
  in
  let wiring = covering_wiring ~n in
  let state = Sys.init ~cfg ~wiring ~inputs in
  (* Phase 1: p (processor 0) runs solo to completion. *)
  let budget = 20 * n * m * (m + 2) in
  let stop, p_solo_steps =
    Sys.run ~max_steps:budget ~sched:(Scheduler.solo 0) state
  in
  if stop <> Sys.All_halted && not (Sys.is_halted state 0) then
    failwith "Lower_bound.run: p did not terminate solo within budget";
  let p_output =
    match Sys.output state 0 with Some o -> o | None -> assert false
  in
  (* Phase 2: the covering writes.  Each q in Q is poised at its very first
     write (the write-scan loop starts with a write); their targets cover
     all m registers. *)
  for q = 1 to n - 1 do
    match Sys.step_in_place state q with
    | Sys.Write_ev _ -> ()
    | Sys.Read_ev _ -> assert false
  done;
  let memory_after_covering =
    Array.to_list (Array.map (fun (v : Snapshot.value) -> v.view) state.Sys.registers)
  in
  (* Phase 3: Q runs fairly to completion. *)
  let stop, _ =
    Sys.run ~max_steps:(200 * n * n * m * (m + 2))
      ~sched:(Scheduler.round_robin ()) state
  in
  if stop <> Sys.All_halted then
    failwith "Lower_bound.run: Q did not terminate within budget";
  let q_outputs =
    List.filter_map
      (fun q -> Option.map (fun o -> (q, o)) (Sys.output state q))
      (List.init (n - 1) (fun i -> i + 1))
  in
  let outcome =
    Tasks.Outcome.make ~inputs ~outputs:(Sys.outputs state) ()
  in
  let violation =
    match Tasks.Snapshot_task.check_group_solution outcome with
    | Error e -> Tasks.Task_failure.to_string e
    | Ok () ->
        failwith
          "Lower_bound.run: expected a snapshot-task violation but the \
           outcome is valid"
  in
  {
    n;
    p_solo_steps;
    p_output;
    memory_after_covering;
    q_outputs;
    outcome;
    violation;
  }

(** The covering writes really erase [p]: true iff no register view
    contains [p]'s input. *)
let p_erased r =
  let p_input = r.outcome.Tasks.Outcome.inputs.(0) in
  List.for_all (fun v -> not (Iset.mem p_input v)) r.memory_after_covering

let pp ppf r =
  Fmt.pf ppf
    "@[<v>N=%d processors, %d registers@,\
     p terminated solo in %d steps with output %a@,\
     memory after covering writes: %a@,\
     Q outputs: %a@,\
     violation: %s@]"
    r.n (r.n - 1) r.p_solo_steps Iset.pp_set r.p_output
    Fmt.(list ~sep:(any " ") Iset.pp_set)
    r.memory_after_covering
    Fmt.(
      list ~sep:(any "; ") (fun ppf (q, o) ->
          pf ppf "p%d:%a" (q + 1) Iset.pp_set o))
    r.q_outputs r.violation
