(** Canonical sets of integers, the workhorse view type of the algorithms.

    Inputs and group identifiers are integers throughout the library, so the
    views written to and read from anonymous registers are [Iset.t] values.
    Sets whose elements all lie in [0 .. Sys.int_size - 2] (0..61 on 64-bit
    — every set the algorithms ever build) are packed into a single
    immutable word, making union, intersection, subset, equality and
    comparability one or two word operations; anything else falls back to a
    strictly-sorted list.  The representation is canonical either way:
    structural equality ([=]) and [Hashtbl.hash] agree with set equality,
    the contract the model checker's state hashing relies on.  The
    sorted-list implementation ({!Sorted_set.Make} over [Int]) remains the
    differential-testing oracle for this module. *)

include Sorted_set.S with type elt = int

val of_range : int -> int -> t
(** [of_range lo hi] is the set [{lo, lo+1, ..., hi}] (empty when [lo > hi]). *)

val to_bits : t -> int
(** [to_bits s] packs a set of small non-negative integers into a bitmask;
    element [i] becomes bit [i].  Raises [Invalid_argument] if an element is
    negative or at least [Sys.int_size - 1].  For sets within that window
    (the bitset representation) this is the identity on the underlying
    word. *)

val of_bits : int -> t
(** Inverse of {!to_bits}. *)

val pp_set : t Fmt.t
(** Prints as [{1,2,3}], matching the notation of the paper. *)

val to_string : t -> string
