examples/model_checking_tour.ml: Algorithms Anonmem Core List Modelcheck Printf String
