lib/algorithms/renaming.ml: Fmt Iset Repro_util Snapshot
