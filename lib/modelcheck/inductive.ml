(** Inductive-invariant checking for the Figure-3 snapshot; see the
    interface for the big picture.  Implementation notes:

    {ul
    {- The abstract checker quantifies register reads over the set
       [RegOK] of values admitted by the register clauses {e relative to
       the current processor profile} (coverage and mixed-comparability
       clauses constrain values through the processors' views).  The
       induction hypothesis guarantees that every register value of a
       concrete Inv-state lies in [RegOK], so replacing the register
       file by that quantification over-approximates every instance with
       [m ≥ 1] registers, any wiring and any schedule at once.  The scan
       position is likewise erased to a single [last] bit (does the next
       read complete the scan?): a concrete read at position [pos] of an
       [m]-register scan maps to the abstract read with
       [last = (pos = m - 1)], and both continuations are enumerated, so
       the abstraction is sound for all [m] simultaneously.}
    {- Obligations are discharged frame-decomposed.  After processor [p]
       steps, every unary processor clause needs rechecking only on
       [post_p]; register values other than a written one are unchanged;
       coverage of old values is preserved because views never shrink
       (the stepping processor's view only grows, everyone else is
       untouched) — so the only obligations are: unary clauses on
       [post_p]; unary/pairwise register clauses on a written value [w]
       against [RegOK]; mixed clauses pairing [RegOK ∪ {w}] with
       [post_p]; and, when binary processor or mixed clauses are
       present, pairwise checks of [post_p] (resp. [w]) against the
       unchanged processors.  The per-processor part depends only on
       [(own input, local, RegOK)], not on the rest of the assignment,
       and is memoized — for clause sets without binary processor
       clauses the enumeration is a pure memo sweep.  The concrete
       checker re-evaluates {e every} clause on {e every} successor with
       no frame shortcuts, cross-validating this decomposition at
       n = 2.}} *)

module Snap = Algorithms.Snapshot
module SC = Algorithms.Snapshot.Core
module E = Explorer.Make (Codecs.Snapshot)
module Replay = Witness.Replay (Codecs.Snapshot)
open Repro_util

(* ------------------------------------------------------------------ *)
(* Clause language                                                     *)
(* ------------------------------------------------------------------ *)

type clause =
  | Own_input_in_view
  | View_in_participants
  | Level_bounds
  | Scan_bounds
  | Reg_view_in_participants
  | Reg_level_bounds
  | Reg_nonempty_above of int
  | Reg_view_covered
  | Procs_comparable_above of int
  | Regs_comparable_above of int
  | Reg_proc_comparable_above of int * int

let clause_name = function
  | Own_input_in_view -> "own-input-in-view"
  | View_in_participants -> "view-in-participants"
  | Level_bounds -> "level-bounds"
  | Scan_bounds -> "scan-bounds"
  | Reg_view_in_participants -> "reg-view-in-participants"
  | Reg_level_bounds -> "reg-level-bounds"
  | Reg_nonempty_above k -> Fmt.str "reg-nonempty-ge:%d" k
  | Reg_view_covered -> "reg-view-covered"
  | Procs_comparable_above k -> Fmt.str "procs-comparable-ge:%d" k
  | Regs_comparable_above k -> Fmt.str "regs-comparable-ge:%d" k
  | Reg_proc_comparable_above (j, k) ->
      Fmt.str "reg-proc-comparable-ge:%d:%d" j k

let clause_of_name s =
  match String.split_on_char ':' s with
  | [ "own-input-in-view" ] -> Some Own_input_in_view
  | [ "view-in-participants" ] -> Some View_in_participants
  | [ "level-bounds" ] -> Some Level_bounds
  | [ "scan-bounds" ] -> Some Scan_bounds
  | [ "reg-view-in-participants" ] -> Some Reg_view_in_participants
  | [ "reg-level-bounds" ] -> Some Reg_level_bounds
  | [ "reg-nonempty-ge"; k ] ->
      Option.map (fun k -> Reg_nonempty_above k) (int_of_string_opt k)
  | [ "reg-view-covered" ] -> Some Reg_view_covered
  | [ "procs-comparable-ge"; k ] ->
      Option.map (fun k -> Procs_comparable_above k) (int_of_string_opt k)
  | [ "regs-comparable-ge"; k ] ->
      Option.map (fun k -> Regs_comparable_above k) (int_of_string_opt k)
  | [ "reg-proc-comparable-ge"; j; k ] -> (
      match (int_of_string_opt j, int_of_string_opt k) with
      | Some j, Some k -> Some (Reg_proc_comparable_above (j, k))
      | _ -> None)
  | _ -> None

let pp_clause ppf c = Fmt.string ppf (clause_name c)

let proved =
  [
    Own_input_in_view;
    View_in_participants;
    Level_bounds;
    Scan_bounds;
    Reg_view_in_participants;
    Reg_level_bounds;
    Reg_nonempty_above 1;
    Reg_view_covered;
  ]

let candidates =
  proved
  @ [
      Regs_comparable_above 1;
      Reg_proc_comparable_above (1, 1);
      Procs_comparable_above 1;
    ]

let parse_clauses s =
  match String.trim s with
  | "proved" -> Ok proved
  | "candidates" -> Ok candidates
  | s -> (
      let names =
        String.split_on_char ',' s |> List.map String.trim
        |> List.filter (fun x -> x <> "")
      in
      if names = [] then Error "empty clause list"
      else
        let rec go acc = function
          | [] -> Ok (List.rev acc)
          | x :: rest -> (
              match clause_of_name x with
              | Some c -> go (c :: acc) rest
              | None -> Error (Fmt.str "unknown clause %S" x))
        in
        go [] names)

(* ------------------------------------------------------------------ *)
(* Abstract configurations                                             *)
(* ------------------------------------------------------------------ *)

type aphase = Boundary | Scan of { all_own : bool; min_level : int; last : bool }
type aproc = { aview : int; alevel : int; aphase : aphase }
type areg = { rview : int; rlevel : int }

type astep = Write_step of areg * bool | Read_step of areg * bool option

type acti = {
  a_clause : clause;
  a_inputs : int array;
  a_pid : int;
  a_step : astep option;
  a_regs : areg list;
  a_pre : aproc array;
  a_post : aproc array;
}

(* The evaluation context: participant mask and per-processor own-input
   bit, precomputed from the inputs. *)
type ctx = { n : int; parts : int; own : int array }

let make_ctx ~n inputs =
  {
    n;
    parts = Array.fold_left (fun acc g -> acc lor (1 lsl g)) 0 inputs;
    own = Array.map (fun g -> 1 lsl g) inputs;
  }

let subset_bits a b = a land lnot b = 0
let comparable_bits a b = subset_bits a b || subset_bits b a

let committed p =
  match p.aphase with Scan { all_own = false; _ } -> 0 | _ -> p.alevel

(* Clause classification: which quantifier shape discharges it. *)
type kind = Proc1 | Proc2 | Reg1 | Reg2 | Cover | Mixed

let kind_of = function
  | Own_input_in_view | View_in_participants | Level_bounds | Scan_bounds ->
      Proc1
  | Reg_view_in_participants | Reg_level_bounds | Reg_nonempty_above _ -> Reg1
  | Reg_view_covered -> Cover
  | Procs_comparable_above _ -> Proc2
  | Regs_comparable_above _ -> Reg2
  | Reg_proc_comparable_above _ -> Mixed

let proc1_holds ctx ~own c p =
  match c with
  | Own_input_in_view -> p.aview land own <> 0
  | View_in_participants -> subset_bits p.aview ctx.parts
  | Level_bounds -> 0 <= p.alevel && p.alevel <= ctx.n
  | Scan_bounds -> (
      match p.aphase with
      | Boundary -> true
      | Scan { all_own; min_level; _ } ->
          0 <= min_level && min_level <= ctx.n && (all_own || min_level = 0))
  | _ -> true

let proc2_holds c p q =
  match c with
  | Procs_comparable_above k ->
      committed p < k || committed q < k || comparable_bits p.aview q.aview
  | _ -> true

let reg1_holds ctx c r =
  match c with
  | Reg_view_in_participants -> subset_bits r.rview ctx.parts
  | Reg_level_bounds -> 0 <= r.rlevel && r.rlevel <= ctx.n
  | Reg_nonempty_above k -> r.rlevel < k || r.rview <> 0
  | _ -> true

let reg2_holds c r r' =
  match c with
  | Regs_comparable_above k ->
      r.rlevel < k || r'.rlevel < k || comparable_bits r.rview r'.rview
  | _ -> true

let cover_holds c r procs =
  match c with
  | Reg_view_covered ->
      r.rview = 0 || Array.exists (fun p -> subset_bits r.rview p.aview) procs
  | _ -> true

let mixed_holds c r p =
  match c with
  | Reg_proc_comparable_above (j, k) ->
      r.rlevel < j || committed p < k || comparable_bits r.rview p.aview
  | _ -> true

(* Full-configuration evaluation: first clause violated by [(procs, regs)]
   under [ctx], in clause-list order.  Used for the Init obligation, the
   concrete checker, and the fast concrete-state evaluator. *)
let config_violation ctx clauses procs regs =
  let holds c =
    match kind_of c with
    | Proc1 ->
        let ok = ref true in
        Array.iteri
          (fun i p -> if not (proc1_holds ctx ~own:ctx.own.(i) c p) then ok := false)
          procs;
        !ok
    | Proc2 ->
        let n = Array.length procs in
        let ok = ref true in
        for i = 0 to n - 1 do
          for j = i + 1 to n - 1 do
            if not (proc2_holds c procs.(i) procs.(j)) then ok := false
          done
        done;
        !ok
    | Reg1 -> Array.for_all (reg1_holds ctx c) regs
    | Reg2 ->
        let m = Array.length regs in
        let ok = ref true in
        for i = 0 to m - 1 do
          for j = i + 1 to m - 1 do
            if not (reg2_holds c regs.(i) regs.(j)) then ok := false
          done
        done;
        !ok
    | Cover -> Array.for_all (fun r -> cover_holds c r procs) regs
    | Mixed ->
        Array.for_all (fun r -> Array.for_all (mixed_holds c r) procs) regs
  in
  List.find_opt (fun c -> not (holds c)) clauses

(* ------------------------------------------------------------------ *)
(* Concrete-state adapters and the two evaluators                      *)
(* ------------------------------------------------------------------ *)

let aphase_of_local cfg (l : Snap.local) =
  match l.SC.phase with
  | SC.Writing -> Boundary
  | SC.Scanning s ->
      Scan
        {
          all_own = s.SC.all_own;
          min_level = s.SC.min_level;
          last = s.SC.pos = cfg.Snap.m - 1;
        }

let aproc_of_local cfg (l : Snap.local) =
  { aview = Iset.to_bits l.SC.view; alevel = l.SC.level; aphase = aphase_of_local cfg l }

let areg_of_value (v : Snap.value) =
  { rview = Iset.to_bits v.SC.view; rlevel = v.SC.level }

let state_violation ~cfg ~inputs clauses ~locals ~registers =
  let ctx = make_ctx ~n:cfg.Snap.n inputs in
  config_violation ctx clauses
    (Array.map (aproc_of_local cfg) locals)
    (Array.map areg_of_value registers)

let violates_state ~cfg ~inputs clauses ~locals ~registers =
  state_violation ~cfg ~inputs clauses ~locals ~registers <> None

(* The differential oracle: the same clauses evaluated straight off their
   interface glosses with Iset operations and list quantifiers — no
   bitmask tricks, no [ctx], no sharing with the checker above. *)
let naive_state_violation ~cfg ~inputs clauses ~locals ~registers =
  let n = cfg.Snap.n in
  let participants =
    Array.fold_left (fun s g -> Iset.add g s) Iset.empty inputs
  in
  let procs = Array.to_list locals
  and regs = Array.to_list registers
  and inps = Array.to_list inputs in
  let level_committed (l : Snap.local) =
    match l.SC.phase with
    | SC.Scanning s when not s.SC.all_own -> 0
    | _ -> l.SC.level
  in
  let holds = function
    | Own_input_in_view ->
        List.for_all2 (fun (l : Snap.local) g -> Iset.mem g l.SC.view) procs inps
    | View_in_participants ->
        List.for_all
          (fun (l : Snap.local) -> Iset.subset l.SC.view participants)
          procs
    | Level_bounds ->
        List.for_all (fun (l : Snap.local) -> 0 <= l.SC.level && l.SC.level <= n) procs
    | Scan_bounds ->
        List.for_all
          (fun (l : Snap.local) ->
            match l.SC.phase with
            | SC.Writing -> true
            | SC.Scanning s ->
                0 <= s.SC.min_level && s.SC.min_level <= n
                && (s.SC.all_own || s.SC.min_level = 0))
          procs
    | Reg_view_in_participants ->
        List.for_all
          (fun (v : Snap.value) -> Iset.subset v.SC.view participants)
          regs
    | Reg_level_bounds ->
        List.for_all (fun (v : Snap.value) -> 0 <= v.SC.level && v.SC.level <= n) regs
    | Reg_nonempty_above k ->
        List.for_all
          (fun (v : Snap.value) ->
            v.SC.level < k || not (Iset.is_empty v.SC.view))
          regs
    | Reg_view_covered ->
        List.for_all
          (fun (v : Snap.value) ->
            Iset.is_empty v.SC.view
            || List.exists
                 (fun (l : Snap.local) -> Iset.subset v.SC.view l.SC.view)
                 procs)
          regs
    | Procs_comparable_above k ->
        List.for_all
          (fun (p : Snap.local) ->
            List.for_all
              (fun (q : Snap.local) ->
                level_committed p < k || level_committed q < k
                || Iset.comparable p.SC.view q.SC.view)
              procs)
          procs
    | Regs_comparable_above k ->
        List.for_all
          (fun (r : Snap.value) ->
            List.for_all
              (fun (r' : Snap.value) ->
                r.SC.level < k || r'.SC.level < k
                || Iset.comparable r.SC.view r'.SC.view)
              regs)
          regs
    | Reg_proc_comparable_above (j, k) ->
        List.for_all
          (fun (r : Snap.value) ->
            List.for_all
              (fun (p : Snap.local) ->
                r.SC.level < j || level_committed p < k
                || Iset.comparable r.SC.view p.SC.view)
              procs)
          regs
  in
  List.find_opt (fun c -> not (holds c)) clauses

(* ------------------------------------------------------------------ *)
(* Input classes                                                       *)
(* ------------------------------------------------------------------ *)

(* Integer partitions of [n], each mapped to the input assignment that
   gives the first block input 1, the second input 2, …  Clause truth is
   invariant under input renaming and processor permutation, so one
   representative per partition covers every input assignment. *)
let input_classes n =
  let rec partitions n maxp =
    if n = 0 then [ [] ]
    else
      List.concat_map
        (fun k -> List.map (fun rest -> k :: rest) (partitions (n - k) k))
        (List.init (min maxp n) (fun i -> min maxp n - i))
  in
  partitions n n
  |> List.map (fun blocks ->
         let a = Array.make n 0 in
         let idx = ref 0 and group = ref 0 in
         List.iter
           (fun b ->
             incr group;
             for _ = 1 to b do
               a.(!idx) <- !group;
               incr idx
             done)
           blocks;
         a)

(* ------------------------------------------------------------------ *)
(* Abstract universe enumeration                                       *)
(* ------------------------------------------------------------------ *)

let submasks mask =
  let rec go s acc =
    let acc = s :: acc in
    if s = 0 then acc else go ((s - 1) land mask) acc
  in
  go mask []

let syntactic_procs ctx =
  let phases =
    Boundary
    :: List.concat_map
         (fun last ->
           Scan { all_own = false; min_level = 0; last }
           :: List.init (ctx.n + 1) (fun mn ->
                  Scan { all_own = true; min_level = mn; last }))
         [ false; true ]
  in
  List.concat_map
    (fun aview ->
      List.concat_map
        (fun alevel -> List.map (fun aphase -> { aview; alevel; aphase }) phases)
        (List.init (ctx.n + 1) Fun.id))
    (submasks ctx.parts)

let syntactic_values ctx =
  List.concat_map
    (fun rview ->
      List.init (ctx.n + 1) (fun rlevel -> { rview; rlevel }))
    (submasks ctx.parts)

let proc1_clauses clauses = List.filter (fun c -> kind_of c = Proc1) clauses

let admitted_procs ctx clauses ~own =
  let p1 = proc1_clauses clauses in
  List.filter
    (fun p -> List.for_all (fun c -> proc1_holds ctx ~own c p) p1)
    (syntactic_procs ctx)

(* [RegOK] for a processor profile: values passing every register clause
   relative to those processors.  The profile is summarized by the set of
   distinct (view, committed-level) pairs — exactly what the coverage and
   mixed clauses can observe. *)
let regok_of_profile ctx clauses profile_procs values =
  List.filter
    (fun v ->
      List.for_all
        (fun c ->
          match kind_of c with
          | Reg1 -> reg1_holds ctx c v
          | Cover -> cover_holds c v profile_procs
          | Mixed -> Array.for_all (mixed_holds c v) profile_procs
          | _ -> true)
        clauses)
    values
  |> Array.of_list

(* All abstract single steps of [a], with reads quantified over [regok].
   A processor at the boundary with level ≥ n has terminated (Figure 3's
   stopping rule) and takes no step. *)
let successors_of ctx (a : aproc) (regok : areg array) =
  match a.aphase with
  | Boundary ->
      if a.alevel >= ctx.n then []
      else
        let w = { rview = a.aview; rlevel = a.alevel } in
        List.map
          (fun last ->
            ( Write_step (w, last),
              { a with aphase = Scan { all_own = true; min_level = ctx.n; last } }
            ))
          [ false; true ]
  | Scan s ->
      Array.to_list regok
      |> List.concat_map (fun v ->
             let all_own = s.all_own && v.rview = a.aview in
             let aview = if all_own then a.aview else a.aview lor v.rview in
             let mn = if all_own then min s.min_level v.rlevel else 0 in
             if s.last then
               let alevel = if all_own then min (mn + 1) ctx.n else 0 in
               [ (Read_step (v, None), { aview; alevel; aphase = Boundary }) ]
             else
               List.map
                 (fun last ->
                   ( Read_step (v, Some last),
                     {
                       aview;
                       alevel = a.alevel;
                       aphase = Scan { all_own; min_level = mn; last };
                     } ))
                 [ false; true ])

(* ------------------------------------------------------------------ *)
(* Pretty-printing                                                     *)
(* ------------------------------------------------------------------ *)

let pp_bits ppf bits = Iset.pp Fmt.int ppf (Iset.of_bits bits)

let pp_aproc ppf p =
  match p.aphase with
  | Boundary -> Fmt.pf ppf "⟨%a l%d wr⟩" pp_bits p.aview p.alevel
  | Scan { all_own; min_level; last } ->
      Fmt.pf ppf "⟨%a l%d sc%s%s m%d⟩" pp_bits p.aview p.alevel
        (if all_own then "=" else "!")
        (if last then "$" else "")
        min_level

let pp_areg ppf r = Fmt.pf ppf "(%a,%d)" pp_bits r.rview r.rlevel

let pp_astep ppf = function
  | Write_step (w, last) ->
      Fmt.pf ppf "write %a%s" pp_areg w (if last then " (1-reg scan)" else "")
  | Read_step (v, None) -> Fmt.pf ppf "final read %a" pp_areg v
  | Read_step (v, Some _) -> Fmt.pf ppf "read %a" pp_areg v

let pp_acti ppf cti =
  Fmt.pf ppf "@[<v>clause %a violated (inputs %a)@ " pp_clause cti.a_clause
    Fmt.(Dump.array int)
    cti.a_inputs;
  (match cti.a_step with
  | None -> Fmt.pf ppf "at the initial configuration:"
  | Some step -> Fmt.pf ppf "p%d takes %a:" cti.a_pid pp_astep step);
  Fmt.pf ppf "@ pre:  %a" Fmt.(array ~sep:sp pp_aproc) cti.a_pre;
  Fmt.pf ppf "@ post: %a" Fmt.(array ~sep:sp pp_aproc) cti.a_post;
  if cti.a_regs <> [] then
    Fmt.pf ppf "@ regs: %a" Fmt.(list ~sep:sp pp_areg) cti.a_regs;
  Fmt.pf ppf "@]"

(* ------------------------------------------------------------------ *)
(* Reports                                                             *)
(* ------------------------------------------------------------------ *)

type report = {
  r_n : int;
  r_clauses : clause list;
  r_classes : int array list;
  r_syntactic : int;
  r_universe : int;
  r_transitions : int;
  r_init_ok : bool;
  r_ctis : acti list;
  r_cti_total : int;
  r_wall_s : float;
}

type abstract_result =
  | Proved of report
  | Refuted of report
  | Gave_up of { reason : Governor.reason; processed : int }

let pp_report ppf r =
  Fmt.pf ppf
    "@[<v>n=%d clauses=[%a]@ %d input classes, %d syntactic / %d Inv \
     configurations, %d transitions@ init %s, %d CTI%s (%d shown), %.2fs@]"
    r.r_n
    Fmt.(list ~sep:comma pp_clause)
    r.r_clauses (List.length r.r_classes) r.r_syntactic r.r_universe
    r.r_transitions
    (if r.r_init_ok then "ok" else "VIOLATED")
    r.r_cti_total
    (if r.r_cti_total = 1 then "" else "s")
    (List.length r.r_ctis) r.r_wall_s

(* ------------------------------------------------------------------ *)
(* Checkpoint plumbing for the abstract checker                        *)
(* ------------------------------------------------------------------ *)

let clause_code = function
  | Own_input_in_view -> (0, 0, 0)
  | View_in_participants -> (1, 0, 0)
  | Level_bounds -> (2, 0, 0)
  | Scan_bounds -> (3, 0, 0)
  | Reg_view_in_participants -> (4, 0, 0)
  | Reg_level_bounds -> (5, 0, 0)
  | Reg_nonempty_above k -> (6, k, 0)
  | Reg_view_covered -> (7, 0, 0)
  | Procs_comparable_above k -> (8, k, 0)
  | Regs_comparable_above k -> (9, k, 0)
  | Reg_proc_comparable_above (j, k) -> (10, j, k)

let clause_of_code = function
  | 0, _, _ -> Own_input_in_view
  | 1, _, _ -> View_in_participants
  | 2, _, _ -> Level_bounds
  | 3, _, _ -> Scan_bounds
  | 4, _, _ -> Reg_view_in_participants
  | 5, _, _ -> Reg_level_bounds
  | 6, k, _ -> Reg_nonempty_above k
  | 7, _, _ -> Reg_view_covered
  | 8, k, _ -> Procs_comparable_above k
  | 9, k, _ -> Regs_comparable_above k
  | 10, j, k -> Reg_proc_comparable_above (j, k)
  | c, _, _ ->
      raise
        (Checkpoint.Corrupt_checkpoint (Fmt.str "inductive: clause code %d" c))

let aproc_to_ints p =
  let tag, mn, flags =
    match p.aphase with
    | Boundary -> (0, 0, 0)
    | Scan { all_own; min_level; last } ->
        (1, min_level, (if all_own then 1 else 0) lor (if last then 2 else 0))
  in
  [ p.aview; p.alevel; tag; mn; flags ]

let aproc_of_ints = function
  | [ aview; alevel; 0; _; _ ] -> { aview; alevel; aphase = Boundary }
  | [ aview; alevel; 1; mn; flags ] ->
      {
        aview;
        alevel;
        aphase =
          Scan
            {
              all_own = flags land 1 <> 0;
              min_level = mn;
              last = flags land 2 <> 0;
            };
      }
  | _ -> raise (Checkpoint.Corrupt_checkpoint "inductive: aproc image")

let cti_to_ints cti =
  let c0, c1, c2 = clause_code cti.a_clause in
  let step =
    match cti.a_step with
    | None -> [ 0; 0; 0; 0 ]
    | Some (Write_step (w, last)) ->
        [ 1; w.rview; w.rlevel; (if last then 1 else 0) ]
    | Some (Read_step (v, None)) -> [ 2; v.rview; v.rlevel; 0 ]
    | Some (Read_step (v, Some last)) ->
        [ 3; v.rview; v.rlevel; (if last then 1 else 0) ]
  in
  [ c0; c1; c2; Array.length cti.a_inputs ]
  @ Array.to_list cti.a_inputs @ [ cti.a_pid ] @ step
  @ [ List.length cti.a_regs ]
  @ List.concat_map (fun r -> [ r.rview; r.rlevel ]) cti.a_regs
  @ List.concat_map aproc_to_ints (Array.to_list cti.a_pre)
  @ List.concat_map aproc_to_ints (Array.to_list cti.a_post)

let cti_of_ints ints =
  let corrupt () =
    raise (Checkpoint.Corrupt_checkpoint "inductive: CTI image")
  in
  let take k xs =
    let rec go k acc xs =
      if k = 0 then (List.rev acc, xs)
      else match xs with [] -> corrupt () | x :: rest -> go (k - 1) (x :: acc) rest
    in
    go k [] xs
  in
  match ints with
  | c0 :: c1 :: c2 :: n :: rest ->
      let inputs, rest = take n rest in
      let (pid, step), rest =
        match rest with
        | pid :: 0 :: _ :: _ :: _ :: r -> (((pid, None) : int * astep option), r)
        | pid :: 1 :: rv :: rl :: f :: r ->
            ((pid, Some (Write_step ({ rview = rv; rlevel = rl }, f <> 0))), r)
        | pid :: 2 :: rv :: rl :: _ :: r ->
            ((pid, Some (Read_step ({ rview = rv; rlevel = rl }, None))), r)
        | pid :: 3 :: rv :: rl :: f :: r ->
            ((pid, Some (Read_step ({ rview = rv; rlevel = rl }, Some (f <> 0)))), r)
        | _ -> corrupt ()
      in
      let nregs, rest =
        match rest with k :: r -> (k, r) | [] -> corrupt ()
      in
      let regints, rest = take (2 * nregs) rest in
      let rec pair_up = function
        | [] -> []
        | rv :: rl :: r -> { rview = rv; rlevel = rl } :: pair_up r
        | _ -> corrupt ()
      in
      let preints, rest = take (5 * n) rest in
      let postints, rest = take (5 * n) rest in
      if rest <> [] then corrupt ();
      let rec procs = function
        | [] -> []
        | a :: b :: c :: d :: e :: r -> aproc_of_ints [ a; b; c; d; e ] :: procs r
        | _ -> corrupt ()
      in
      {
        a_clause = clause_of_code (c0, c1, c2);
        a_inputs = Array.of_list inputs;
        a_pid = pid;
        a_step = step;
        a_regs = pair_up regints;
        a_pre = Array.of_list (procs preints);
        a_post = Array.of_list (procs postints);
      }
  | _ -> corrupt ()

let ctis_to_bytes ctis =
  let ints =
    List.concat_map
      (fun cti ->
        let body = cti_to_ints cti in
        List.length body :: body)
      ctis
  in
  Checkpoint.bytes_of_ints (Array.of_list ints)

let ctis_of_bytes b =
  let ints = Array.to_list (Checkpoint.ints_of_bytes b) in
  let rec go acc = function
    | [] -> List.rev acc
    | len :: rest ->
        let rec take k acc' xs =
          if k = 0 then (List.rev acc', xs)
          else
            match xs with
            | [] ->
                raise
                  (Checkpoint.Corrupt_checkpoint "inductive: CTI list image")
            | x :: r -> take (k - 1) (x :: acc') r
        in
        let body, rest = take len [] rest in
        go (cti_of_ints body :: acc) rest
  in
  go [] ints

(* ------------------------------------------------------------------ *)
(* The abstract checker                                                *)
(* ------------------------------------------------------------------ *)

exception Stop_run of Governor.reason
exception Cti_cap

let check_abstract ?(max_ctis = 100) ?governor ?ckpt ?(resume = false) ~n
    clauses =
  if n < 1 then invalid_arg "Inductive.check_abstract: n < 1";
  if n > 16 then invalid_arg "Inductive.check_abstract: n > 16";
  let t0 = Unix.gettimeofday () in
  let classes = input_classes n in
  let context =
    Fmt.str "inductive-abs|%d|%s" n
      (String.concat "," (List.map clause_name clauses))
  in
  (* Resume: counters + CTIs found so far + the enumeration cursor
     (number of Inv assignments fully processed, in the deterministic
     class-by-class order below). *)
  let processed0, transitions0, cti_total0, init_ok0, ctis0 =
    match ckpt with
    | Some { Checkpoint.path; _ } when resume && Sys.file_exists path ->
        let sections = Checkpoint.load ~path in
        let ctx_s = Bytes.to_string (Checkpoint.find "context" sections) in
        if not (String.equal ctx_s context) then
          raise
            (Checkpoint.Corrupt_checkpoint
               "Inductive.check_abstract: checkpoint context mismatch");
        let c = Checkpoint.ints_of_bytes (Checkpoint.find "counters" sections) in
        if Array.length c <> 4 then
          raise (Checkpoint.Corrupt_checkpoint "inductive: counters image");
        ( c.(0),
          c.(1),
          c.(2),
          c.(3) <> 0,
          ctis_of_bytes (Checkpoint.find "ctis" sections) )
    | _ -> (0, 0, 0, true, [])
  in
  let fresh = processed0 = 0 in
  let processed = ref processed0
  and transitions = ref transitions0
  and cti_total = ref cti_total0
  and init_ok = ref init_ok0
  and ctis = ref (List.rev ctis0)
  and to_skip = ref processed0
  and since_save = ref 0 in
  let save_ckpt () =
    match ckpt with
    | None -> ()
    | Some { Checkpoint.path; _ } ->
        Checkpoint.save ~path
          [
            ("context", Bytes.of_string context);
            ( "counters",
              Checkpoint.bytes_of_ints
                [|
                  !processed;
                  !transitions;
                  !cti_total;
                  (if !init_ok then 1 else 0);
                |] );
            ("ctis", ctis_to_bytes (List.rev !ctis));
          ]
  in
  let record_cti cti =
    incr cti_total;
    if List.length !ctis < max_ctis then ctis := cti :: !ctis;
    if !cti_total >= max_ctis then raise Cti_cap
  in
  let tick () =
    match governor with
    | None -> ()
    | Some g -> (
        match Governor.tick g with
        | None -> ()
        | Some reason ->
            save_ckpt ();
            raise (Stop_run reason))
  in
  let has_proc2 = List.exists (fun c -> kind_of c = Proc2) clauses in
  let has_mixed = List.exists (fun c -> kind_of c = Mixed) clauses in
  let has_reg2 = List.exists (fun c -> kind_of c = Reg2) clauses in
  let proc1s = proc1_clauses clauses in
  let syntactic = ref 0 in
  let run_class inputs =
    let ctx = make_ctx ~n inputs in
    let syn = syntactic_procs ctx in
    let syn_count = List.length syn in
    (* |syn|^n syntactic assignments for this class *)
    let pow = ref 1 in
    for _ = 1 to n do
      pow := !pow * syn_count
    done;
    syntactic := !syntactic + !pow;
    let adm =
      Array.init n (fun i ->
          Array.of_list
            (admitted_procs ctx clauses ~own:ctx.own.(i)))
    in
    let values = syntactic_values ctx in
    (* Init obligation for this class (fresh runs only — on resume the
       restored [init_ok] already accounts for it). *)
    if fresh then begin
      let init_procs =
        Array.init n (fun i -> { aview = ctx.own.(i); alevel = 0; aphase = Boundary })
      in
      match config_violation ctx clauses init_procs [| { rview = 0; rlevel = 0 } |] with
      | None -> ()
      | Some c ->
          init_ok := false;
          record_cti
            {
              a_clause = c;
              a_inputs = Array.copy inputs;
              a_pid = -1;
              a_step = None;
              a_regs = [ { rview = 0; rlevel = 0 } ];
              a_pre = init_procs;
              a_post = init_procs;
            }
    end;
    (* RegOK cache: profile (sorted distinct (view, committed) codes) ->
       (dense id, value array). *)
    let regok_cache : (int list, int * areg array) Hashtbl.t =
      Hashtbl.create 256
    in
    let regok_next = ref 0 in
    let profile_key procs =
      Array.to_list procs
      |> List.map (fun p -> (p.aview * (n + 2)) + committed p)
      |> List.sort_uniq compare
    in
    let regok_of procs =
      let key = profile_key procs in
      match Hashtbl.find_opt regok_cache key with
      | Some v -> v
      | None ->
          let id = !regok_next in
          incr regok_next;
          let arr = regok_of_profile ctx clauses procs values in
          Hashtbl.add regok_cache key (id, arr);
          (id, arr)
    in
    (* Memo of the profile-independent obligations of one processor:
       key (own-bit, local, RegOK id) -> (first failure, transitions).
       Boundary processors' solo obligations are RegOK-independent when
       no pairwise-register or mixed clause is present. *)
    let solo_cache :
        (int * aproc * int, (astep * aproc * clause * areg list) option * int)
        Hashtbl.t =
      Hashtbl.create (1 lsl 16)
    in
    let solo_check ~own a regok =
      let trans = ref 0 in
      let fail = ref None in
      List.iter
        (fun (step, post) ->
          incr trans;
          if !fail = None then begin
            (match
               List.find_opt
                 (fun c -> not (proc1_holds ctx ~own c post))
                 proc1s
             with
            | Some c -> fail := Some (step, post, c, [])
            | None -> ());
            if !fail = None then
              match step with
              | Write_step (w, _) ->
                  let bad =
                    List.find_opt
                      (fun c ->
                        match kind_of c with
                        | Reg1 -> not (reg1_holds ctx c w)
                        | Cover -> not (cover_holds c w [| post |])
                        | Mixed -> not (mixed_holds c w post)
                        | Reg2 ->
                            not
                              (Array.for_all
                                 (fun v -> reg2_holds c w v && reg2_holds c v w)
                                 regok)
                        | _ -> false)
                      clauses
                  in
                  (match bad with
                  | Some c -> fail := Some (step, post, c, [ w ])
                  | None ->
                      if has_mixed then
                        (* old values against the stepped processor *)
                        Array.iter
                          (fun v ->
                            if !fail = None then
                              match
                                List.find_opt
                                  (fun c ->
                                    kind_of c = Mixed
                                    && not (mixed_holds c v post))
                                  clauses
                              with
                              | Some c -> fail := Some (step, post, c, [ v ])
                              | None -> ())
                          regok)
              | Read_step _ ->
                  if has_mixed then
                    Array.iter
                      (fun v ->
                        if !fail = None then
                          match
                            List.find_opt
                              (fun c ->
                                kind_of c = Mixed && not (mixed_holds c v post))
                              clauses
                          with
                          | Some c -> fail := Some (step, post, c, [ v ])
                          | None -> ())
                      regok
          end)
        (successors_of ctx a regok);
      (!fail, !trans)
    in
    let solo ~own a (regok_id, regok) =
      let key_rid =
        match a.aphase with
        | Boundary when (not has_reg2) && not has_mixed -> 0
        | _ -> regok_id
      in
      let key = (own, a, key_rid) in
      match Hashtbl.find_opt solo_cache key with
      | Some (res, trans) -> (res, trans, false)
      | None ->
          let res, trans = solo_check ~own a regok in
          Hashtbl.add solo_cache key (res, trans);
          (res, trans, true)
    in
    (* Assignment-dependent obligations: the stepped processor against the
       unchanged ones (binary processor clauses), and a written value
       against the unchanged processors (mixed clauses). *)
    let dependent procs i regok =
      let a = procs.(i) in
      let fail = ref None in
      List.iter
        (fun (step, post) ->
          if !fail = None then begin
            if has_proc2 then
              Array.iteri
                (fun j q ->
                  if j <> i && !fail = None then
                    match
                      List.find_opt
                        (fun c ->
                          kind_of c = Proc2
                          && not (proc2_holds c post q && proc2_holds c q post))
                        clauses
                    with
                    | Some c -> fail := Some (step, post, c, [])
                    | None -> ())
                procs;
            if has_mixed && !fail = None then
              match step with
              | Write_step (w, _) ->
                  Array.iteri
                    (fun j q ->
                      if j <> i && !fail = None then
                        match
                          List.find_opt
                            (fun c ->
                              kind_of c = Mixed && not (mixed_holds c w q))
                            clauses
                        with
                        | Some c -> fail := Some (step, post, c, [ w ])
                        | None -> ())
                    procs
              | Read_step _ -> ()
          end)
        (successors_of ctx a regok);
      !fail
    in
    let chosen = Array.make n { aview = 0; alevel = 0; aphase = Boundary } in
    let process () =
      if !to_skip > 0 then decr to_skip
      else begin
        tick ();
        let rid, regok = regok_of chosen in
        Array.iteri
          (fun i a ->
            let res, trans, fresh = solo ~own:ctx.own.(i) a (rid, regok) in
            transitions := !transitions + trans;
            (match res with
            | Some (step, post, c, wregs) when fresh ->
                let post_procs = Array.copy chosen in
                post_procs.(i) <- post;
                record_cti
                  {
                    a_clause = c;
                    a_inputs = Array.copy inputs;
                    a_pid = i;
                    a_step = Some step;
                    a_regs = wregs;
                    a_pre = Array.copy chosen;
                    a_post = post_procs;
                  }
            | _ -> ());
            if has_proc2 || has_mixed then
              match dependent chosen i regok with
              | Some (step, post, c, wregs) ->
                  let post_procs = Array.copy chosen in
                  post_procs.(i) <- post;
                  record_cti
                    {
                      a_clause = c;
                      a_inputs = Array.copy inputs;
                      a_pid = i;
                      a_step = Some step;
                      a_regs = wregs;
                      a_pre = Array.copy chosen;
                      a_post = post_procs;
                    }
              | None -> ())
          chosen;
        incr processed;
        incr since_save;
        match ckpt with
        | Some { Checkpoint.every_states; _ } when !since_save >= every_states ->
            since_save := 0;
            save_ckpt ()
        | _ -> ()
      end
    in
    let rec place i =
      if i = n then process ()
      else
        Array.iter
          (fun a ->
            chosen.(i) <- a;
            let ok =
              (not has_proc2)
              ||
              let rec pairs j =
                j >= i
                || (List.for_all
                      (fun c ->
                        kind_of c <> Proc2
                        || (proc2_holds c a chosen.(j)
                           && proc2_holds c chosen.(j) a))
                      clauses
                   && pairs (j + 1))
              in
              pairs 0
            in
            if ok then place (i + 1))
          adm.(i)
    in
    place 0
  in
  let finish () =
    {
      r_n = n;
      r_clauses = clauses;
      r_classes = classes;
      r_syntactic = !syntactic;
      r_universe = !processed;
      r_transitions = !transitions;
      r_init_ok = !init_ok;
      r_ctis = List.rev !ctis;
      r_cti_total = !cti_total;
      r_wall_s = Unix.gettimeofday () -. t0;
    }
  in
  match List.iter run_class classes with
  | () ->
      save_ckpt ();
      let r = finish () in
      if r.r_cti_total = 0 && r.r_init_ok then Proved r else Refuted r
  | exception Cti_cap -> Refuted (finish ())
  | exception Stop_run reason -> Gave_up { reason; processed = !processed }

(* ------------------------------------------------------------------ *)
(* CTI shrinking (abstract)                                            *)
(* ------------------------------------------------------------------ *)

let popcount x =
  let rec go x acc = if x = 0 then acc else go (x lsr 1) (acc + (x land 1)) in
  go x 0

let rec ipow b e = if e <= 0 then 1 else b * ipow b (e - 1)

(* A value admitted by the register clauses relative to [procs]. *)
let admissible_value ctx clauses procs v =
  List.for_all
    (fun c ->
      match kind_of c with
      | Reg1 -> reg1_holds ctx c v
      | Cover -> cover_holds c v procs
      | Mixed -> Array.for_all (mixed_holds c v) procs
      | _ -> true)
    clauses

let shrink_acti ~n clauses cti =
  if cti.a_pid < 0 then cti
  else
    let ctx = make_ctx ~n cti.a_inputs in
    let baseline i = { aview = ctx.own.(i); alevel = 0; aphase = Boundary } in
    let pid = cti.a_pid in
    let deviants =
      List.filter
        (fun j -> j <> pid && cti.a_pre.(j) <> baseline j)
        (List.init n Fun.id)
    in
    let build kept =
      Array.init n (fun j ->
          if j = pid || List.mem j kept then cti.a_pre.(j) else baseline j)
    in
    let step_values step regs =
      (match step with Some (Read_step (v, _)) -> [ v ] | _ -> []) @ regs
    in
    let still_failing kept =
      let pre = build kept in
      let post = Array.copy pre in
      post.(pid) <- cti.a_post.(pid);
      config_violation ctx clauses pre [||] = None
      && List.for_all
           (admissible_value ctx clauses pre)
           (step_values cti.a_step cti.a_regs)
      && config_violation ctx [ cti.a_clause ] post (Array.of_list cti.a_regs)
         <> None
    in
    let kept =
      if still_failing deviants then Fuzzing.Shrink.list ~still_failing deviants
      else deviants
    in
    let pre = build kept in
    let post = Array.copy pre in
    post.(pid) <- cti.a_post.(pid);
    let cti = { cti with a_pre = pre; a_post = post } in
    (* Lower the read value through the admissible values, smallest views
       and levels first. *)
    match cti.a_step with
    | Some (Read_step (v0, br)) when cti.a_regs = [] || cti.a_regs = [ v0 ] ->
        let rebuild v =
          match pre.(pid).aphase with
          | Boundary -> None
          | Scan s -> (
              let all_own = s.all_own && v.rview = pre.(pid).aview in
              let aview =
                if all_own then pre.(pid).aview else pre.(pid).aview lor v.rview
              in
              let mn = if all_own then min s.min_level v.rlevel else 0 in
              match br with
              | None when s.last ->
                  let alevel = if all_own then min (mn + 1) ctx.n else 0 in
                  Some { aview; alevel; aphase = Boundary }
              | Some last when not s.last ->
                  Some
                    {
                      aview;
                      alevel = pre.(pid).alevel;
                      aphase = Scan { all_own; min_level = mn; last };
                    }
              | _ -> None)
        in
        let try_value v =
          match rebuild v with
          | None -> false
          | Some post_p ->
              let post = Array.copy pre in
              post.(pid) <- post_p;
              let regs = if cti.a_regs = [] then [] else [ v ] in
              config_violation ctx [ cti.a_clause ] post (Array.of_list regs)
              <> None
        in
        let candidates =
          syntactic_values ctx
          |> List.filter (admissible_value ctx clauses pre)
          |> List.sort (fun a b ->
                 compare (popcount a.rview, a.rlevel) (popcount b.rview, b.rlevel))
        in
        let v = Fuzzing.Shrink.first_accepted ~still_failing:try_value candidates v0 in
        if v = v0 then cti
        else (
          match rebuild v with
          | None -> cti
          | Some post_p ->
              let post = Array.copy pre in
              post.(pid) <- post_p;
              {
                cti with
                a_step = Some (Read_step (v, br));
                a_regs = (if cti.a_regs = [] then [] else [ v ]);
                a_post = post;
              })
    | _ -> cti

(* ------------------------------------------------------------------ *)
(* Concrete checking at small n                                        *)
(* ------------------------------------------------------------------ *)

type ccti = {
  c_clause : clause;
  c_inputs : int array;
  c_wiring : Anonmem.Wiring.t;
  c_pid : int;
  c_pre : string;
  c_post : string;
  c_reachable : bool;
  c_trace : int list;
}

type concrete_report = {
  k_report : report;
  k_wirings : int;
  k_ctis : ccti list;
  k_reachable_violations : int;
}

type concrete_result =
  | C_proved of concrete_report
  | C_refuted of concrete_report
  | C_gave_up of { reason : Governor.reason; processed : int }

(* Every syntactic concrete local of the [m]-register instance whose view
   is drawn from the participant mask.  The codec's canonical
   representation invariant (min_level pinned to 0 once all_own failed)
   is respected so keys round-trip through the explorer's encoding. *)
let syn_concrete_locals cfg ctx =
  let m = cfg.Snap.m in
  let phases =
    SC.Writing
    :: List.concat_map
         (fun pos ->
           SC.Scanning { SC.pos; all_own = false; min_level = 0 }
           :: List.init (ctx.n + 1) (fun min_level ->
                  SC.Scanning { SC.pos; all_own = true; min_level }))
         (List.init m Fun.id)
  in
  List.concat_map
    (fun bits ->
      let view = Iset.of_bits bits in
      List.concat_map
        (fun level ->
          List.concat_map
            (fun next_write ->
              List.map
                (fun phase -> { SC.view; level; next_write; phase })
                phases)
            (List.init m Fun.id))
        (List.init (ctx.n + 1) Fun.id))
    (submasks ctx.parts)

let syn_concrete_values ctx =
  List.concat_map
    (fun bits ->
      List.init (ctx.n + 1) (fun level ->
          { SC.view = Iset.of_bits bits; level }))
    (submasks ctx.parts)

let check_concrete ?(max_ctis = 100) ?governor ~n clauses =
  if n < 1 || n > 2 then
    invalid_arg
      "Inductive.check_concrete: the full concrete universe is only \
       enumerable at n <= 2; use check_abstract beyond that";
  let t0 = Unix.gettimeofday () in
  let cfg = Snap.standard ~n in
  let m = cfg.Snap.m in
  let classes = input_classes n in
  let wirings = Anonmem.Wiring.enumerate ~n ~m ~fix_first:true in
  let syntactic = ref 0
  and universe = ref 0
  and transitions = ref 0
  and processed = ref 0
  and cti_total = ref 0
  and ctis = ref []
  and init_ok = ref true
  and reach_viols = ref 0
  and capped = ref false in
  let record cti =
    incr cti_total;
    if List.length !ctis < max_ctis then ctis := cti :: !ctis;
    if !cti_total >= max_ctis then raise Cti_cap
  in
  let tick () =
    match governor with
    | None -> ()
    | Some g -> (
        match Governor.tick g with
        | None -> ()
        | Some reason -> raise (Stop_run reason))
  in
  (* Reachable spaces, explored on demand and shared between the
     reachability sweep and CTI classification. *)
  let spaces = Hashtbl.create 8 in
  let space_for inputs wiring =
    let key = (Array.to_list inputs, Fmt.str "%a" Anonmem.Wiring.pp wiring) in
    match Hashtbl.find_opt spaces key with
    | Some sp -> sp
    | None -> (
        match E.explore ~cfg ~wiring ~inputs () with
        | E.Explored sp ->
            Hashtbl.add spaces key sp;
            sp
        | _ ->
            failwith
              "Inductive.check_concrete: reachable exploration did not finish")
  in
  let run_class inputs =
    let ctx = make_ctx ~n inputs in
    let syn_locals = syn_concrete_locals cfg ctx in
    let syn_vals = syn_concrete_values ctx in
    syntactic :=
      !syntactic
      + ipow (List.length syn_locals) n * ipow (List.length syn_vals) m;
    let p1 = proc1_clauses clauses in
    let adm =
      Array.init n (fun i ->
          syn_locals
          |> List.filter (fun l ->
                 List.for_all
                   (fun c ->
                     proc1_holds ctx ~own:ctx.own.(i) c (aproc_of_local cfg l))
                   p1)
          |> Array.of_list)
    in
    let adm_vals =
      syn_vals
      |> List.filter (fun v ->
             List.for_all
               (fun c -> kind_of c <> Reg1 || reg1_holds ctx c (areg_of_value v))
               clauses)
      |> Array.of_list
    in
    let table = State_table.create ~key_width:(E.key_width cfg) () in
    (* Init obligation. *)
    let init_st = E.init_state ~cfg ~inputs in
    (match
       state_violation ~cfg ~inputs clauses ~locals:init_st.E.locals
         ~registers:init_st.E.registers
     with
    | None -> ()
    | Some c ->
        init_ok := false;
        let key = E.encode_state cfg init_st in
        record
          {
            c_clause = c;
            c_inputs = Array.copy inputs;
            c_wiring = List.hd wirings;
            c_pid = -1;
            c_pre = key;
            c_post = key;
            c_reachable = true;
            c_trace = [];
          });
    let locals = Array.make n (List.hd syn_locals) in
    let regs = Array.make m { SC.view = Iset.empty; level = 0 } in
    let process_state () =
      tick ();
      incr processed;
      match state_violation ~cfg ~inputs clauses ~locals ~registers:regs with
      | Some _ -> ()
      | None ->
          incr universe;
          let st =
            { E.locals = Array.copy locals; registers = Array.copy regs }
          in
          let key = E.encode_state cfg st in
          ignore (State_table.intern table key);
          List.iter
            (fun wiring ->
              List.iter
                (fun p ->
                  incr transitions;
                  let st' = E.successor cfg wiring st p in
                  match
                    state_violation ~cfg ~inputs clauses ~locals:st'.E.locals
                      ~registers:st'.E.registers
                  with
                  | None -> ()
                  | Some c ->
                      record
                        {
                          c_clause = c;
                          c_inputs = Array.copy inputs;
                          c_wiring = wiring;
                          c_pid = p;
                          c_pre = key;
                          c_post = E.encode_state cfg st';
                          c_reachable = false;
                          c_trace = [];
                        })
                (E.enabled cfg st))
            wirings
    in
    let rec place_regs r =
      if r = m then process_state ()
      else
        Array.iter
          (fun v ->
            regs.(r) <- v;
            place_regs (r + 1))
          adm_vals
    in
    let rec place i =
      if i = n then place_regs 0
      else
        Array.iter
          (fun l ->
            locals.(i) <- l;
            place (i + 1))
          adm.(i)
    in
    place 0;
    (* Reachability sweep: every reachable state either satisfies the
       clauses (and then the enumeration above must have interned it —
       the completeness cross-check) or is a direct refutation of
       invariance, reported with its trace. *)
    List.iter
      (fun wiring ->
        let sp = space_for inputs wiring in
        State_table.iter
          (fun id skey ->
            let st = E.decode_state cfg skey in
            match
              state_violation ~cfg ~inputs clauses ~locals:st.E.locals
                ~registers:st.E.registers
            with
            | None ->
                if State_table.find table skey = None then
                  failwith
                    "Inductive.check_concrete: enumeration missed a reachable \
                     Inv state"
            | Some c ->
                incr reach_viols;
                record
                  {
                    c_clause = c;
                    c_inputs = Array.copy inputs;
                    c_wiring = wiring;
                    c_pid = -1;
                    c_pre = skey;
                    c_post = skey;
                    c_reachable = true;
                    c_trace = List.map fst (E.trace_to sp id);
                  })
          sp.E.table)
      wirings
  in
  match
    try List.iter run_class classes
    with Cti_cap -> capped := true
  with
  | exception Stop_run reason -> C_gave_up { reason; processed = !processed }
  | () ->
      ignore !capped;
      let report =
        {
          r_n = n;
          r_clauses = clauses;
          r_classes = classes;
          r_syntactic = !syntactic;
          r_universe = !universe;
          r_transitions = !transitions;
          r_init_ok = !init_ok;
          r_ctis = [];
          r_cti_total = !cti_total;
          r_wall_s = Unix.gettimeofday () -. t0;
        }
      in
      let cr =
        {
          k_report = report;
          k_wirings = List.length wirings;
          k_ctis = List.map (fun cti ->
              if cti.c_pid < 0 then cti
              else
                let sp = space_for cti.c_inputs cti.c_wiring in
                match State_table.find sp.E.table cti.c_pre with
                | None -> cti
                | Some id ->
                    {
                      cti with
                      c_reachable = true;
                      c_trace = List.map fst (E.trace_to sp id);
                    })
            (List.rev !ctis);
          k_reachable_violations = !reach_viols;
        }
      in
      if !cti_total = 0 && !init_ok then C_proved cr else C_refuted cr

let shrink_ccti ~n clauses cti =
  if cti.c_pid < 0 then cti
  else
    let cfg = Snap.standard ~n in
    let m = cfg.Snap.m in
    let inputs = cti.c_inputs in
    let pre = E.decode_state cfg cti.c_pre in
    let init = E.init_state ~cfg ~inputs in
    let pid = cti.c_pid in
    let comps =
      List.filter_map
        (fun j ->
          if j <> pid && pre.E.locals.(j) <> init.E.locals.(j) then Some (`P j)
          else None)
        (List.init n Fun.id)
      @ List.filter_map
          (fun r ->
            if pre.E.registers.(r) <> init.E.registers.(r) then Some (`R r)
            else None)
          (List.init m Fun.id)
    in
    let build kept =
      {
        E.locals =
          Array.init n (fun j ->
              if j = pid || List.mem (`P j) kept then pre.E.locals.(j)
              else init.E.locals.(j));
        registers =
          Array.init m (fun r ->
              if List.mem (`R r) kept then pre.E.registers.(r)
              else init.E.registers.(r));
      }
    in
    let still_failing kept =
      let st = build kept in
      state_violation ~cfg ~inputs clauses ~locals:st.E.locals
        ~registers:st.E.registers
      = None
      && List.mem pid (E.enabled cfg st)
      &&
      let st' = E.successor cfg cti.c_wiring st pid in
      state_violation ~cfg ~inputs [ cti.c_clause ] ~locals:st'.E.locals
        ~registers:st'.E.registers
      <> None
    in
    let kept =
      if still_failing comps then Fuzzing.Shrink.list ~still_failing comps
      else comps
    in
    let st = build kept in
    let st' = E.successor cfg cti.c_wiring st pid in
    let c_pre = E.encode_state cfg st and c_post = E.encode_state cfg st' in
    let c_reachable, c_trace =
      match E.explore ~cfg ~wiring:cti.c_wiring ~inputs () with
      | E.Explored sp -> (
          match State_table.find sp.E.table c_pre with
          | Some id -> (true, List.map fst (E.trace_to sp id))
          | None -> (false, []))
      | _ -> (false, [])
    in
    { cti with c_pre; c_post; c_reachable; c_trace }

let replay_ccti ~n cti =
  if not cti.c_reachable then false
  else
    let cfg = Snap.standard ~n in
    match
      Replay.run ~cfg ~wiring:cti.c_wiring ~inputs:cti.c_inputs cti.c_trace
    with
    | exception Invalid_argument _ -> false
    | steps -> (
        let final =
          match List.rev steps with
          | (_, st) :: _ -> st
          | [] -> Replay.E.init_state ~cfg ~inputs:cti.c_inputs
        in
        String.equal (Replay.E.encode_state cfg final) cti.c_pre
        &&
        if cti.c_pid < 0 then true
        else
          match Replay.E.successor cfg cti.c_wiring final cti.c_pid with
          | exception Invalid_argument _ -> false
          | st' -> String.equal (Replay.E.encode_state cfg st') cti.c_post)

let pp_ccti ppf cti =
  let cfg = Snap.standard ~n:(Array.length cti.c_inputs) in
  let pp_key ppf key =
    let st = E.decode_state cfg key in
    Fmt.pf ppf "%a | %a"
      Fmt.(array ~sep:sp pp_aproc)
      (Array.map (aproc_of_local cfg) st.E.locals)
      Fmt.(array ~sep:sp pp_areg)
      (Array.map areg_of_value st.E.registers)
  in
  Fmt.pf ppf "@[<v>clause %a violated (inputs %a, wiring %a)@ %s@ pre:  %a@ post: %a"
    pp_clause cti.c_clause
    Fmt.(Dump.array int)
    cti.c_inputs Anonmem.Wiring.pp cti.c_wiring
    (if cti.c_pid < 0 then "reachable-state violation"
     else Fmt.str "p%d steps" cti.c_pid)
    pp_key cti.c_pre pp_key cti.c_post;
  if cti.c_reachable then
    Fmt.pf ppf "@ trace: %a" Fmt.(Dump.list int) cti.c_trace;
  Fmt.pf ppf "@]"

(* ------------------------------------------------------------------ *)
(* Universe accounting                                                 *)
(* ------------------------------------------------------------------ *)

type counts = {
  u_syn_locals : int;
  u_adm_locals : int;
  u_syn_values : int;
  u_adm_values : int;
  u_syn_states : int;
  u_adm_states : int;
  u_exact : bool;
}

let universe_counts ~n clauses =
  let zero =
    {
      u_syn_locals = 0;
      u_adm_locals = 0;
      u_syn_values = 0;
      u_adm_values = 0;
      u_syn_states = 0;
      u_adm_states = 0;
      u_exact = not (List.exists (fun c -> kind_of c = Proc2) clauses);
    }
  in
  List.fold_left
    (fun acc inputs ->
      let ctx = make_ctx ~n inputs in
      let syn = List.length (syntactic_procs ctx) in
      let adm_i =
        Array.init n (fun i ->
            List.length (admitted_procs ctx clauses ~own:ctx.own.(i)))
      in
      let vals = syntactic_values ctx in
      let adm_vals =
        List.filter
          (fun v ->
            List.for_all
              (fun c -> kind_of c <> Reg1 || reg1_holds ctx c v)
              clauses)
          vals
      in
      {
        acc with
        u_syn_locals = acc.u_syn_locals + (n * syn);
        u_adm_locals = acc.u_adm_locals + Array.fold_left ( + ) 0 adm_i;
        u_syn_values = acc.u_syn_values + List.length vals;
        u_adm_values = acc.u_adm_values + List.length adm_vals;
        u_syn_states = acc.u_syn_states + ipow syn n;
        u_adm_states = acc.u_adm_states + Array.fold_left ( * ) 1 adm_i;
      })
    zero (input_classes n)
