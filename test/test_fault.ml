(* Tests of the fault-injection substrate: plan serialization and
   shrinking helpers, seeded generation, the simulator's per-fault-kind
   semantics, the fault-aware fuzzing pipeline (find -> shrink -> replay
   of a genuine fault-induced violation), and the bounded-crash model
   check. *)

open Repro_util
module F = Anonmem.Fault

let plan_eq = Alcotest.(check (list string)) "plan"
let strs plan = List.map (fun e -> Fmt.str "%a" F.pp_event e) plan

(* ---- plan representation -------------------------------------------- *)

let test_roundtrip () =
  (* Every generated plan survives to_string/of_string. *)
  List.iter
    (fun profile ->
      for seed = 0 to 19 do
        let rng = Rng.create ~seed in
        let plan = Fuzzing.Fault_gen.random rng ~profile ~n:4 ~m:3 ~horizon:50 in
        plan_eq (strs plan) (strs (F.of_string (F.to_string plan)))
      done)
    Fuzzing.Fault_gen.all;
  (* The documented surface grammar parses, with and without prefixes. *)
  let plan =
    F.normalize (F.of_string "crash:p2@10; recover:p3@8; omit:p1@4; stuck:r2@0")
  in
  plan_eq (strs plan)
    (strs
       (F.normalize
          [
            F.Crash_stop { p = 1; at = 10 };
            F.Crash_recover { p = 2; at = 8 };
            F.Omit_write { p = 0; at = 4 };
            F.Stuck_register { reg = 1; at = 0 };
          ]));
  Alcotest.check_raises "junk rejected"
    (Invalid_argument
       "Fault.of_string: unknown fault kind \"explode\" \
        (crash|recover|omit|stale|stuck)") (fun () ->
      ignore (F.of_string "explode:p1@2"))

let test_normalize_and_queries () =
  let plan =
    F.normalize
      [
        F.Crash_stop { p = 1; at = 9 };
        F.Crash_stop { p = 1; at = 3 };
        F.Crash_stop { p = 1; at = 3 };
        F.Stale_read { p = 0; at = 1 };
      ]
  in
  Alcotest.(check int) "dedup" 3 (List.length plan);
  Alcotest.(check bool) "sorted by time" true
    (match plan with F.Stale_read { at = 1; _ } :: _ -> true | _ -> false);
  Alcotest.(check bool) "not crash free" false (F.is_crash_free plan);
  let stops = F.crash_stops ~n:3 plan in
  Alcotest.(check (option int)) "earliest crash wins" (Some 3) stops.(1);
  Alcotest.(check (option int)) "uncrashed" None stops.(0);
  Alcotest.(check (list int)) "stale arms" [ 1 ] (F.stale_arms ~n:3 plan).(0)

let test_drop_shifting () =
  let plan =
    F.normalize
      [
        F.Omit_write { p = 0; at = 2 };
        F.Crash_stop { p = 2; at = 5 };
        F.Stuck_register { reg = 2; at = 1 };
      ]
  in
  (* Dropping processor 1 renumbers p2 -> p1 and keeps p0. *)
  plan_eq
    (strs (F.drop_processor ~p:1 plan))
    (strs
       (F.normalize
          [
            F.Omit_write { p = 0; at = 2 };
            F.Crash_stop { p = 1; at = 5 };
            F.Stuck_register { reg = 2; at = 1 };
          ]));
  (* Dropping the faulted processor removes its events. *)
  plan_eq
    (strs (F.drop_processor ~p:0 plan))
    (strs
       (F.normalize
          [ F.Crash_stop { p = 1; at = 5 }; F.Stuck_register { reg = 2; at = 1 } ]));
  (* Register drops shift stuck-register indices the same way. *)
  plan_eq
    (strs (F.drop_register ~reg:0 plan))
    (strs
       (F.normalize
          [
            F.Omit_write { p = 0; at = 2 };
            F.Crash_stop { p = 2; at = 5 };
            F.Stuck_register { reg = 1; at = 1 };
          ]));
  plan_eq
    (strs (F.drop_register ~reg:2 plan))
    (strs
       (F.normalize
          [ F.Omit_write { p = 0; at = 2 }; F.Crash_stop { p = 2; at = 5 } ]))

(* ---- seeded determinism --------------------------------------------- *)

let test_generation_deterministic () =
  List.iter
    (fun profile ->
      for seed = 0 to 9 do
        let draw () =
          Fuzzing.Fault_gen.random (Rng.create ~seed) ~profile ~n:5 ~m:4
            ~horizon:80
        in
        plan_eq (strs (draw ())) (strs (draw ()))
      done)
    Fuzzing.Fault_gen.all

let test_case_generation_deterministic () =
  (* The full case generator stays deterministic with a fault profile, and
     a [No_faults] profile draws nothing from the rng (same case as the
     default path). *)
  let gen ?fault_profile () =
    Fuzzing.Gen.case ~seed:7 ~n_range:(2, 5) ~m_range:(fun ~n -> (n, n))
      ?fault_profile ~max_steps:500 ()
  in
  let c1 = gen ~fault_profile:Fuzzing.Fault_gen.Mixed () in
  let c2 = gen ~fault_profile:Fuzzing.Fault_gen.Mixed () in
  Alcotest.(check string)
    "same case" (Fmt.str "%a" Fuzzing.Gen.pp c1) (Fmt.str "%a" Fuzzing.Gen.pp c2);
  Alcotest.(check bool) "plan generated" true (c1.Fuzzing.Gen.faults <> []);
  let plain = gen () in
  let none = gen ~fault_profile:Fuzzing.Fault_gen.No_faults () in
  Alcotest.(check string)
    "no_faults = default path" (Fmt.str "%a" Fuzzing.Gen.pp plain)
    (Fmt.str "%a" Fuzzing.Gen.pp none)

(* ---- simulator semantics, one fault kind at a time ------------------- *)

module Sys = Anonmem.System.Make (Algorithms.Snapshot)

let run_with_plan ~plan ~script ~n =
  let cfg = Algorithms.Snapshot.cfg ~n ~m:n in
  let wiring = Anonmem.Wiring.identity ~n ~m:n in
  let state =
    Sys.init ~cfg ~wiring ~inputs:(Array.init n (fun i -> i + 1))
  in
  let events = ref [] and notes = ref [] in
  let stop, steps =
    Sys.run
      ~max_steps:(List.length script + 1)
      ~faults:plan
      ~sched:(Anonmem.Scheduler.script script)
      ~on_event:(fun ~time ev -> events := (time, ev) :: !events)
      ~on_fault:(fun ~time nt -> notes := (time, nt) :: !notes)
      state
  in
  (stop, steps, List.rev !events, List.rev !notes, state)

let test_crash_stop_semantics () =
  let script = List.concat (List.init 30 (fun _ -> [ 0; 1 ])) in
  let plan = [ F.Crash_stop { p = 1; at = 7 } ] in
  let _, _, events, notes, _ = run_with_plan ~plan ~script ~n:2 in
  List.iter
    (fun (time, ev) ->
      let p = match ev with Sys.Read_ev { p; _ } | Sys.Write_ev { p; _ } -> p in
      if p = 1 then
        Alcotest.(check bool) "no p2 steps at/after the crash" true (time < 7))
    events;
  Alcotest.(check bool) "crash note emitted" true
    (List.exists
       (function _, Sys.Crash_note { p = 1; recovering = false } -> true | _ -> false)
       notes)

let test_crash_recover_semantics () =
  (* Recover after the first step: the local state resets mid-run, and
     the processor still terminates (later) with a valid output
     containing its own input. *)
  let script = List.init 40 (fun _ -> 0) in
  let plan = [ F.Crash_recover { p = 0; at = 1 } ] in
  let _, _, _, notes, state = run_with_plan ~plan ~script ~n:1 in
  Alcotest.(check bool) "restart note emitted" true
    (List.exists
       (function _, Sys.Restart_note { p = 0; attempt = 1 } -> true | _ -> false)
       notes);
  match (Sys.outputs state).(0) with
  | Some o -> Alcotest.(check bool) "valid output" true (Iset.mem 1 o)
  | None -> Alcotest.fail "recovered processor must still terminate"

let test_omission_semantics () =
  (* Solo snapshot starts with a write; dropping it at time 0 must leave
     the register at its initial value while the processor advances. *)
  let script = List.init 40 (fun _ -> 0) in
  let plan = [ F.Omit_write { p = 0; at = 0 } ] in
  let _, _, events, notes, _ = run_with_plan ~plan ~script ~n:1 in
  (match notes with
  | (0, Sys.Dropped_write { p = 0; stuck = false; _ }) :: _ -> ()
  | _ -> Alcotest.fail "first note must be the dropped write at time 0");
  (* The dropped write consumed the step: no memory event at time 0. *)
  Alcotest.(check bool) "no event at time 0" true
    (List.for_all (fun (time, _) -> time <> 0) events)

let test_stale_read_semantics () =
  (* Identity wiring, n=1: the solo run writes then scans; a stale read
     during the scan returns the register's previous value and the note
     records both values. *)
  let script = List.init 40 (fun _ -> 0) in
  let plan = [ F.Stale_read { p = 0; at = 1 } ] in
  let _, _, _, notes, _ = run_with_plan ~plan ~script ~n:1 in
  match
    List.find_opt
      (function _, Sys.Stale_read_note _ -> true | _ -> false)
      notes
  with
  | Some (t, Sys.Stale_read_note { stale; fresh; _ }) ->
      Alcotest.(check bool) "fires at the first read past the arm" true (t >= 1);
      Alcotest.(check bool) "stale differs from fresh" true (stale <> fresh)
  | _ -> Alcotest.fail "stale-read note with both values expected"

let test_stuck_register_semantics () =
  let script = List.concat (List.init 40 (fun _ -> [ 0; 1 ])) in
  let plan = [ F.Stuck_register { reg = 0; at = 0 } ] in
  let _, _, events, notes, _ = run_with_plan ~plan ~script ~n:2 in
  List.iter
    (fun (_, ev) ->
      match ev with
      | Sys.Write_ev { phys_reg; _ } ->
          Alcotest.(check bool) "no write ever lands on r1" true (phys_reg <> 0)
      | Sys.Read_ev _ -> ())
    events;
  Alcotest.(check bool) "stuck drops recorded" true
    (List.exists
       (function _, Sys.Dropped_write { stuck = true; phys_reg = 0; _ } -> true | _ -> false)
       notes)

let test_empty_plan_is_transparent () =
  (* [~faults:[]] takes the interpreting path but must replay identically
     to the fault-free fast path. *)
  let script = List.concat (List.init 20 (fun _ -> [ 0; 1 ])) in
  let stop1, steps1, events1, notes1, st1 = run_with_plan ~plan:[] ~script ~n:2 in
  let cfg = Algorithms.Snapshot.cfg ~n:2 ~m:2 in
  let wiring = Anonmem.Wiring.identity ~n:2 ~m:2 in
  let state = Sys.init ~cfg ~wiring ~inputs:[| 1; 2 |] in
  let events2 = ref [] in
  let stop2, steps2 =
    Sys.run
      ~max_steps:(List.length script + 1)
      ~sched:(Anonmem.Scheduler.script script)
      ~on_event:(fun ~time ev -> events2 := (time, ev) :: !events2)
      state
  in
  Alcotest.(check bool) "same stop" true (stop1 = stop2);
  Alcotest.(check int) "same steps" steps2 steps1;
  Alcotest.(check bool) "same events" true (events1 = List.rev !events2);
  Alcotest.(check bool) "no notes" true (notes1 = []);
  Alcotest.(check bool) "same outputs" true (Sys.outputs st1 = Sys.outputs state)

(* ---- the fault-aware fuzzing pipeline -------------------------------- *)

module H = Fuzzing.Harness.Make (Fuzzing.Targets.Snapshot)

(* The snapshot target with a tightened wait-freedom budget.  The stock
   budget (500*(n+1)*(m+1)) makes stuck-register counterexamples
   thousands of steps long and shrinking them slow; at n=m=2 the
   algorithm terminates well under 100 own-steps under every schedule
   (the n=2 model check's deepest path bounds total steps), so 540 keeps
   plenty of slack for fault-free runs while keeping scripts short. *)
module Tight_snapshot : Fuzzing.Target.S = struct
  module P = Algorithms.Snapshot

  let cfg ~n ~m = Algorithms.Snapshot.cfg ~n ~m
  let m_range ~n = (n, n)
  let check = Fuzzing.Targets.Snapshot_oracle.check
  let step_budget ~n ~m = Some (60 * (n + 1) * (m + 1))
end

module HT = Fuzzing.Harness.Make (Tight_snapshot)

let test_crash_stop_campaign_clean () =
  (* Acceptance bar (a): the Figure-3 snapshot keeps its safety
     properties under crash-stop faults across >= 1000 seeded cases. *)
  let r =
    H.campaign ~fault_profile:Fuzzing.Fault_gen.Crash_stop_only ~seed:0
      ~iterations:1_000 ()
  in
  Alcotest.(check int) "all cases ran" 1_000 r.Fuzzing.Harness.iterations;
  match r.Fuzzing.Harness.counterexample with
  | None -> ()
  | Some cex ->
      Alcotest.fail
        (Fmt.str "crash-stop broke the snapshot?! %a"
           (H.pp_counterexample ~key:"snapshot") cex)

let test_stuck_register_violation_found_shrunk_replayed () =
  (* Acceptance bar (b): a genuine fault-induced violation is found,
     shrunk to a 1-minimal script, and replays.  A stuck register is a
     permanently covered register, so by the Section-2.1 lower bound the
     remaining usable registers cannot support wait-freedom — and the
     fuzzer finds exactly that: a processor churning past its budget. *)
  let r =
    HT.campaign ~fault_profile:Fuzzing.Fault_gen.Stuck ~n_range:(2, 2)
      ~max_steps:1_300 ~seed:0 ~iterations:200 ()
  in
  let cex =
    match r.Fuzzing.Harness.counterexample with
    | Some cex -> cex
    | None -> Alcotest.fail "stuck register must break wait-freedom"
  in
  let inst = cex.Fuzzing.Harness.instance in
  Alcotest.(check string)
    "wait-freedom violation" "wait-freedom"
    (Tasks.Task_failure.property_name
       cex.Fuzzing.Harness.failure.Tasks.Task_failure.property);
  (* The shrunk plan is a single stuck-register event... *)
  Alcotest.(check int) "one fault event" 1 (List.length inst.Fuzzing.Harness.faults);
  (match inst.Fuzzing.Harness.faults with
  | [ F.Stuck_register _ ] -> ()
  | _ -> Alcotest.fail "expected a stuck-register event");
  (* ...and the violation is genuinely fault-induced: the same script
     without the plan passes. *)
  (match
     HT.verdict_of_instance { inst with Fuzzing.Harness.faults = [] }
   with
  | Ok () -> ()
  | Error f ->
      Alcotest.fail
        (Fmt.str "not fault-induced: still fails without the plan: %a"
           Tasks.Task_failure.pp f));
  (* Replaying the instance deterministically reproduces the failure. *)
  (match HT.verdict_of_instance inst with
  | Error f ->
      Alcotest.(check string)
        "same property" "wait-freedom"
        (Tasks.Task_failure.property_name f.Tasks.Task_failure.property)
  | Ok () -> Alcotest.fail "shrunk instance must still fail on replay");
  (* 1-minimality of the script: removing any single step makes it pass. *)
  let script = Array.of_list inst.Fuzzing.Harness.script in
  let still_failing = ref 0 in
  Array.iteri
    (fun i _ ->
      let shorter =
        Array.to_list script |> List.filteri (fun j _ -> j <> i)
      in
      if
        Result.is_error
          (HT.verdict_of_instance { inst with Fuzzing.Harness.script = shorter })
      then incr still_failing)
    script;
  Alcotest.(check int) "script is 1-minimal" 0 !still_failing

let test_shrinker_drops_superfluous_faults () =
  (* Start from a failing instance padded with fault events that do not
     matter; the fault-first ddmin pass must strip them all. *)
  let r =
    HT.campaign ~fault_profile:Fuzzing.Fault_gen.Stuck ~n_range:(2, 2)
      ~max_steps:1_300 ~seed:0 ~iterations:200 ()
  in
  let inst =
    match r.Fuzzing.Harness.counterexample with
    | Some cex -> cex.Fuzzing.Harness.instance
    | None -> Alcotest.fail "expected a counterexample"
  in
  let horizon = List.length inst.Fuzzing.Harness.script in
  let padded =
    {
      inst with
      Fuzzing.Harness.faults =
        F.normalize
          (inst.Fuzzing.Harness.faults
          @ [
              F.Omit_write { p = 0; at = horizon + 50 };
              F.Stale_read { p = 1; at = horizon + 60 };
            ]);
    }
  in
  let fails i = Result.is_error (HT.verdict_of_instance i) in
  Alcotest.(check bool) "padded instance still fails" true (fails padded);
  let shrunk = HT.shrink_instance ~fails padded in
  Alcotest.(check int) "superfluous events stripped" 1
    (List.length shrunk.Fuzzing.Harness.faults)

let test_fault_plan_in_replay_command () =
  let inst =
    {
      Fuzzing.Harness.n = 2;
      m = 2;
      wiring_perms = [ [ 0; 1 ]; [ 1; 0 ] ];
      inputs = [| 1; 2 |];
      script = [ 0; 1 ];
      faults = [ F.Stuck_register { reg = 1; at = 0 } ];
    }
  in
  let cmd = Fuzzing.Harness.replay_command ~key:"snapshot" inst in
  let contains ~sub s =
    let n = String.length sub and l = String.length s in
    let rec at i = i + n <= l && (String.sub s i n = sub || at (i + 1)) in
    at 0
  in
  Alcotest.(check bool) "plan serialized into replay" true
    (contains ~sub:"--fault-plan 'stuck:r2@0'" cmd)

(* ---- bounded-crash model check --------------------------------------- *)

let test_snapshot_safe_under_one_crash () =
  (* Acceptance bar (c): exhaustive n=2 safety under <= 1 injected
     crash-stop, over all wirings and all (time-abstract) crash points —
     this subsumes every timed crash-stop plan the fuzzer can draw. *)
  match Core.verify_snapshot_model_crashes ~n:2 ~max_crashes:1 () with
  | Error e -> Alcotest.fail e
  | Ok s ->
      Alcotest.(check int) "both wirings" 2
        s.Core.Snapshot_fault_mc.wirings_checked;
      Alcotest.(check bool) "crash branches explored" true
        (s.Core.Snapshot_fault_mc.total_crash_branches > 0)

let test_snapshot_safe_under_crash_same_group () =
  match
    Core.verify_snapshot_model_crashes ~n:2 ~inputs:(Some [| 1; 1 |])
      ~max_crashes:1 ()
  with
  | Error e -> Alcotest.fail e
  | Ok _ -> ()

let test_crash_search_catches_planted_bug () =
  (* Sanity that the crash search can fail at all: an invariant that
     forbids any processor from halting while another is crashed must be
     violated, and the witness must contain a crash edge. *)
  let cfg = Algorithms.Snapshot.standard ~n:2 in
  let inputs = [| 1; 2 |] in
  let module FE = Core.Snapshot_fault_mc in
  let invariant (st : Core.Snapshot_mc.state) =
    if
      Array.exists
        (fun l -> Algorithms.Snapshot.output cfg l <> None)
        st.Core.Snapshot_mc.locals
    then Error "planted: someone terminated"
    else Ok ()
  in
  match
    FE.explore ~max_crashes:1 ~invariant ~cfg
      ~wiring:(Anonmem.Wiring.identity ~n:2 ~m:2)
      ~inputs ()
  with
  | FE.Invariant_failed v ->
      Alcotest.(check bool) "witness nonempty" true (v.FE.steps <> [])
  | FE.Safe _ -> Alcotest.fail "planted invariant must fail"
  | FE.State_limit _ -> Alcotest.fail "state limit"
  | FE.Exhausted _ -> Alcotest.fail "unexpected exhaustion"

let () =
  Alcotest.run "fault"
    [
      ( "plan",
        [
          Alcotest.test_case "serialization round-trip" `Quick test_roundtrip;
          Alcotest.test_case "normalize + queries" `Quick
            test_normalize_and_queries;
          Alcotest.test_case "drop shifting" `Quick test_drop_shifting;
        ] );
      ( "generation",
        [
          Alcotest.test_case "plans deterministic per seed" `Quick
            test_generation_deterministic;
          Alcotest.test_case "cases deterministic per seed" `Quick
            test_case_generation_deterministic;
        ] );
      ( "semantics",
        [
          Alcotest.test_case "crash-stop" `Quick test_crash_stop_semantics;
          Alcotest.test_case "crash-recover" `Quick test_crash_recover_semantics;
          Alcotest.test_case "write omission" `Quick test_omission_semantics;
          Alcotest.test_case "stale read" `Quick test_stale_read_semantics;
          Alcotest.test_case "stuck register" `Quick
            test_stuck_register_semantics;
          Alcotest.test_case "empty plan transparent" `Quick
            test_empty_plan_is_transparent;
        ] );
      ( "fuzzing",
        [
          Alcotest.test_case "crash-stop campaign clean (1000 cases)" `Quick
            test_crash_stop_campaign_clean;
          Alcotest.test_case "stuck register: found, shrunk, replayed" `Quick
            test_stuck_register_violation_found_shrunk_replayed;
          Alcotest.test_case "shrinker drops faults first" `Quick
            test_shrinker_drops_superfluous_faults;
          Alcotest.test_case "replay command carries the plan" `Quick
            test_fault_plan_in_replay_command;
        ] );
      ( "modelcheck",
        [
          Alcotest.test_case "n=2 safe under <=1 crash" `Quick
            test_snapshot_safe_under_one_crash;
          Alcotest.test_case "n=2 same group safe under crash" `Quick
            test_snapshot_safe_under_crash_same_group;
          Alcotest.test_case "planted invariant caught with crash witness"
            `Quick test_crash_search_catches_planted_bug;
        ] );
    ]
