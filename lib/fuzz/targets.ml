(** The fuzzable protocols, each bundled with its task oracle.

    - [snapshot] — the Figure-3 wait-free snapshot; oracle: validity,
      group solvability, the strong all-outputs containment the algorithm
      guarantees (Section 5.3.2), and wait-freedom within a generous step
      budget.
    - [double_collect] — the known-unsound baseline (Section 4): same
      oracle minus wait-freedom (the rule can be starved forever, which is
      its other defect).  The harness is expected to find and shrink its
      comparability violation; the test-suite pins that down.
    - [renaming] — Figure-4 adaptive renaming; oracle: adaptive name
      range, cross-group uniqueness, group solvability, wait-freedom.
    - [consensus] — Figure-5 obstruction-free consensus; oracle: agreement
      and validity of whatever decisions the (possibly partial) execution
      produced.  No step budget: only obstruction-freedom is promised. *)

(** Generous per-processor step budget for the wait-free algorithms.
    Empirically the Figure-3 snapshot terminates within a few hundred
    own-steps for the sizes fuzzed here; the budget leaves two orders of
    magnitude of slack so that only genuine non-termination (a processor
    churning forever) can exceed it. *)
let wait_free_budget ~n ~m = Some (500 * (n + 1) * (m + 1))

module Snapshot_oracle = struct
  let check ~inputs ~participated ~outputs =
    let t = Tasks.Outcome.make ~participated ~inputs ~outputs () in
    match Tasks.Snapshot_task.check_group_solution t with
    | Error _ as e -> e
    | Ok () -> Tasks.Snapshot_task.check_strong t
end

module Snapshot : Target.S = struct
  module P = Algorithms.Snapshot

  let cfg ~n ~m = Algorithms.Snapshot.cfg ~n ~m
  let m_range ~n = (n, n)
  let check = Snapshot_oracle.check
  let step_budget = wait_free_budget
end

module Double_collect : Target.S = struct
  module P = Algorithms.Double_collect

  let cfg ~n ~m = Algorithms.Double_collect.cfg ~n ~m

  (* The rule's defect needs covering pressure: fewer registers than
     processors (Figure 2 runs 5 processors on 3 registers). *)
  let m_range ~n = (max 1 (n - 2), n)
  let check = Snapshot_oracle.check
  let step_budget ~n:_ ~m:_ = None
end

module Renaming : Target.S = struct
  module P = Algorithms.Renaming

  let cfg ~n ~m = Algorithms.Renaming.cfg ~n ~m
  let m_range ~n = (n, n)

  let check ~inputs ~participated ~outputs =
    let names =
      Array.map (Option.map (fun o -> o.Algorithms.Renaming.name_out)) outputs
    in
    Tasks.Renaming_task.check
      (Tasks.Outcome.make ~participated ~inputs ~outputs:names ())

  let step_budget = wait_free_budget
end

module Consensus : Target.S = struct
  module P = Algorithms.Consensus

  let cfg ~n ~m = Algorithms.Consensus.cfg ~n ~m
  let m_range ~n = (n, n)

  let check ~inputs ~participated ~outputs =
    Tasks.Consensus_task.check
      (Tasks.Outcome.make ~participated ~inputs ~outputs ())

  let step_budget ~n:_ ~m:_ = None
end

let all : (string * (module Target.S)) list =
  [
    ("snapshot", (module Snapshot));
    ("double_collect", (module Double_collect));
    ("renaming", (module Renaming));
    ("consensus", (module Consensus));
  ]

let find key = List.assoc_opt key all
let keys = List.map fst all
