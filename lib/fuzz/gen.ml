(** Random test-case generation.

    A case bundles everything that determines one execution: instance
    sizes, the hidden wiring, the input (group) assignment, the adversary
    shape and the global step budget.  Cases are generated from a single
    integer seed through {!Repro_util.Rng}, so every case — and therefore
    every trace — is reproducible from [(seed, n_range, m, max_steps)]
    alone. *)

open Repro_util

type case = {
  seed : int;
  n : int;
  m : int;
  inputs : int array;  (** group identifier of each processor *)
  wiring_perms : int list list;  (** each processor's private permutation *)
  shape : Schedule.shape;
  faults : Anonmem.Fault.plan;  (** injected fault plan ([[]] = none) *)
  max_steps : int;
}

let wiring c = Anonmem.Wiring.of_lists c.wiring_perms

let perms_of_wiring w =
  List.init (Anonmem.Wiring.processors w) (fun p ->
      Repro_util.Permutation.to_list (Anonmem.Wiring.perm w ~p))

(** Group assignments biased toward collisions: the number of groups is
    uniform in [1..n], so same-group processors — the configurations where
    group solvability and the strong containment guarantee genuinely
    differ — are common. *)
let random_inputs rng ~n =
  let groups = 1 + Rng.int rng n in
  Array.init n (fun _ -> 1 + Rng.int rng groups)

let case ~seed ~n_range:(n_lo, n_hi) ?m ~m_range
    ?(fault_profile = Fault_gen.No_faults) ~max_steps () =
  if n_lo < 1 || n_hi < n_lo then invalid_arg "Gen.case: bad processor range";
  let rng = Rng.create ~seed in
  let n = n_lo + Rng.int rng (n_hi - n_lo + 1) in
  let m =
    match m with
    | Some m -> m
    | None ->
        let m_lo, m_hi = m_range ~n in
        if m_lo < 1 || m_hi < m_lo then invalid_arg "Gen.case: bad register range";
        m_lo + Rng.int rng (m_hi - m_lo + 1)
  in
  let wiring = Anonmem.Wiring.random rng ~n ~m in
  let inputs = random_inputs rng ~n in
  let shape = Schedule.random rng ~n ~horizon:max_steps in
  (* Fault times live in the early part of the run, where processors are
     still taking steps worth perturbing. *)
  let faults =
    match fault_profile with
    | Fault_gen.No_faults -> []
    | profile ->
        Fault_gen.random rng ~profile ~n ~m ~horizon:(min max_steps (50 * n))
  in
  { seed; n; m; inputs; wiring_perms = perms_of_wiring wiring; shape; faults; max_steps }

(** The rng driving the schedule of [c]'s execution.  Derived from the
    case seed by one extra split so that regenerating the case and
    re-instantiating its scheduler stay independent. *)
let schedule_rng c = Rng.split (Rng.create ~seed:(c.seed lxor 0x5EED))

let pp ppf c =
  Fmt.pf ppf
    "@[<v>seed %d: n=%d m=%d@,inputs %a@,wiring %a@,adversary %a%a@]" c.seed c.n
    c.m
    Fmt.(array ~sep:(any ",") int)
    c.inputs Anonmem.Wiring.pp (wiring c) Schedule.pp c.shape
    (fun ppf -> function
      | [] -> ()
      | plan -> Fmt.pf ppf "@,faults %a" Anonmem.Fault.pp plan)
    c.faults
