test/test_nonatomicity.ml: Alcotest Algorithms Anonmem Array Core Fun Iset List Modelcheck Repro_util
