(* Model-checking benchmark: states visited and wall-clock for the
   snapshot exploration under the four engine configurations —
   sequential, sequential + symmetry reduction, parallel x {1,2,4}
   domains, with and without reduction.  Results go to BENCH_mc.json
   (hand-rolled JSON, no external dependency) and a human-readable table
   on stdout; EXPERIMENTS.md table X6 is generated from this output.

   The headline case is the 3-processor identity-wiring snapshot with a
   single input class — the largest symmetry group (|G| = 6) and the
   configuration whose full space is infeasible to sweep inside the test
   suite.  On a single-core host the parallel rows measure overhead, not
   speedup; the acceptance claim is carried by the visited-state
   reduction column. *)

module Snap = Algorithms.Snapshot
module P = Modelcheck.Codecs.Snapshot
module E = Modelcheck.Explorer.Make (P)
module Par = Modelcheck.Par_explorer.Make (P)

type row = {
  case : string;
  engine : string; (* "seq" | "par" *)
  domains : int;
  reduction : bool;
  states : int;
  transitions : int;
  wall_s : float;
}

let rows : row list ref = ref []

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let seq_case ~case ~reduction ~cfg ~wiring ~inputs () =
  let (states, transitions), wall_s =
    time (fun () ->
        match E.explore ~reduction ~cfg ~wiring ~inputs () with
        | E.Explored sp -> (E.state_count sp, E.transition_count sp)
        | _ -> failwith (case ^ ": sequential exploration did not complete"))
  in
  rows :=
    { case; engine = "seq"; domains = 1; reduction; states; transitions; wall_s }
    :: !rows;
  Printf.printf "%-24s seq        %s %9d states %9d trans %8.2fs\n%!" case
    (if reduction then "red  " else "full ")
    states transitions wall_s

let par_case ~case ~domains ~reduction ~cfg ~wiring ~inputs () =
  let (states, transitions), wall_s =
    time (fun () ->
        match Par.explore ~reduction ~domains ~cfg ~wiring ~inputs () with
        | Par.Par_ok { stats; _ } -> (stats.Par.states, stats.Par.transitions)
        | _ -> failwith (case ^ ": parallel exploration did not complete"))
  in
  rows :=
    { case; engine = "par"; domains; reduction; states; transitions; wall_s }
    :: !rows;
  Printf.printf "%-24s par x%d     %s %9d states %9d trans %8.2fs\n%!" case
    domains
    (if reduction then "red  " else "full ")
    states transitions wall_s

let run_matrix ~case ~domain_counts ~cfg ~wiring ~inputs () =
  List.iter
    (fun reduction ->
      seq_case ~case ~reduction ~cfg ~wiring ~inputs ();
      List.iter
        (fun domains -> par_case ~case ~domains ~reduction ~cfg ~wiring ~inputs ())
        domain_counts)
    [ false; true ]

let json_of_rows rows ~reduction_factor =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n";
  Buffer.add_string b "  \"bench\": \"mc\",\n";
  Buffer.add_string b
    (Printf.sprintf "  \"host_domains\": %d,\n"
       (Domain.recommended_domain_count ()));
  Buffer.add_string b
    (Printf.sprintf "  \"snapshot3_state_reduction_factor\": %.2f,\n"
       reduction_factor);
  Buffer.add_string b "  \"cases\": [\n";
  List.iteri
    (fun i r ->
      Buffer.add_string b
        (Printf.sprintf
           "    {\"case\": %S, \"engine\": %S, \"domains\": %d, \"reduction\": \
            %b, \"states\": %d, \"transitions\": %d, \"wall_s\": %.3f}%s\n"
           r.case r.engine r.domains r.reduction r.states r.transitions r.wall_s
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string b "  ]\n}\n";
  Buffer.contents b

let () =
  let quick = Array.mem "--quick" Sys.argv in
  (* n = 2, the wiring with a nontrivial automorphism and one input
     class: the smallest configuration where reduction bites. *)
  let cfg2 = Snap.standard ~n:2 in
  let group_wiring2 =
    match Anonmem.Wiring.enumerate ~n:2 ~m:2 ~fix_first:true with
    | _ :: w :: _ -> w
    | _ -> assert false
  in
  run_matrix ~case:"snapshot_n2_group" ~domain_counts:[ 1; 2; 4 ] ~cfg:cfg2
    ~wiring:group_wiring2 ~inputs:[| 1; 1 |] ();
  (* n = 3, identity wiring, single input class: |G| = 6, ~2M raw states. *)
  if not quick then
    run_matrix ~case:"snapshot_n3_identity" ~domain_counts:[ 1; 2; 4 ]
      ~cfg:(Snap.standard ~n:3)
      ~wiring:(Anonmem.Wiring.identity ~n:3 ~m:3)
      ~inputs:[| 1; 1; 1 |] ();
  let ordered = List.rev !rows in
  let headline = if quick then "snapshot_n2_group" else "snapshot_n3_identity" in
  let find ~reduction =
    List.find_opt
      (fun r -> r.case = headline && r.engine = "seq" && r.reduction = reduction)
      ordered
  in
  let reduction_factor =
    match (find ~reduction:false, find ~reduction:true) with
    | Some full, Some red when red.states > 0 ->
        float_of_int full.states /. float_of_int red.states
    | _ -> nan
  in
  let oc = open_out "BENCH_mc.json" in
  output_string oc (json_of_rows ordered ~reduction_factor);
  close_out oc;
  Printf.printf "\n%s: %.2fx visited-state reduction; wrote BENCH_mc.json\n"
    headline reduction_factor
