lib/algorithms/renaming.mli: Anonmem Fmt Iset Repro_util Snapshot
