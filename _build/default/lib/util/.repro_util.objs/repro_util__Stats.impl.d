lib/util/stats.ml: Fmt List Option
