(** The adaptive renaming task (Definition 3.3) with parameter
    [f(M) = M(M+1)/2], and its group version: within an output sample all
    names are distinct and fall in [1 .. M(M+1)/2] for [M] participating
    groups.  Same-group name sharing is legal; cross-group collisions
    never happen with the Figure-4 algorithm (Section 6), which
    {!check_cross_group} verifies over all outputs. *)

type output = int

val bound : groups:int -> int
val check_range : output Outcome.t -> (unit, Task_failure.t) result
val check_sample :
  groups:Repro_util.Iset.t -> (int * output) list -> (unit, Task_failure.t) result

val check_group_solution : output Outcome.t -> (unit, Task_failure.t) result
val check_cross_group : output Outcome.t -> (unit, Task_failure.t) result
val check : output Outcome.t -> (unit, Task_failure.t) result
(** Range, cross-group distinctness, and group solvability. *)
