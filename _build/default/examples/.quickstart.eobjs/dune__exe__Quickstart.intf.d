examples/quickstart.mli:
