test/test_write_scan.ml: Alcotest Algorithms Anonmem Array Fmt Iset List Repro_util Rng
