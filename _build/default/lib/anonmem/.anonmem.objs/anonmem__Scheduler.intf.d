lib/anonmem/scheduler.mli: Repro_util Rng
