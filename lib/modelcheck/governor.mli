(** Per-run resource budgets for the verification engines.

    A governor bundles up to four budgets — wall-clock seconds, live
    heap words (checked from a [Gc] alarm at major-collection
    boundaries), a state quota, and a shared interrupt flag (set from a
    SIGINT/SIGTERM handler, or {!interrupt}) — behind a single [tick]
    call that engines make once per popped state.  When a budget is
    exceeded, [tick] returns the reason and the engine returns a
    structured [Exhausted] verdict (after writing a final checkpoint)
    instead of dying; a feasibility sweep marks the cell
    [Unknown(reason)] and moves on.

    Tripping is sticky: once [tick] reports a reason it keeps reporting
    the same one.  The quota budget is exact and deterministic (it
    counts ticks), which is what the resume-parity tests use; the
    wall-clock budget is polled every 64 ticks (but on the first tick,
    so a zero budget trips immediately); the heap budget is as fresh as
    the last major collection. *)

type reason = Wall_clock | Heap | Quota | Interrupted

val reason_to_string : reason -> string
val reason_of_string : string -> reason option
val pp_reason : Format.formatter -> reason -> unit

type t

val create :
  ?wall_seconds:float ->
  ?heap_words:int ->
  ?quota:int ->
  ?interrupted_flag:bool ref ->
  unit ->
  t
(** Omitted budgets are unlimited.  [interrupted_flag] lets many
    per-cell governors share one flag, so a single SIGINT stops a whole
    sweep; when omitted, a private flag is allocated (settable via
    {!interrupt}). *)

val tick : t -> reason option
(** Called once per unit of work (popped state).  [Some r] once any
    budget is exceeded — sticky thereafter. *)

val tripped : t -> reason option
(** The sticky verdict without consuming a tick. *)

val interrupt : t -> unit
(** Set the interrupt flag (shared, if the governor was created with
    one). *)

val interrupted : t -> bool

val elapsed_s : t -> float
(** Seconds since [create]. *)

val dispose : t -> unit
(** Delete the heap-watermark [Gc] alarm, if one was installed.  Safe to
    call more than once is {e not} guaranteed — call exactly once, when
    the run finishes. *)
