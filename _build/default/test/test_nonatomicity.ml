(* The Section-8 claim: the Figure-3 algorithm solves the snapshot *task*
   but does not implement atomic memory snapshots — some execution returns
   a set of inputs the memory never contained.  The claim is existential;
   these tests exercise both search strategies and the machinery they rely
   on.  The heavy exhaustive searches live in bin/experiments.ml; here we
   keep bounded versions. *)

open Repro_util

let memory_set = Core.snapshot_memory_set

let test_memory_set () =
  let v view level : Algorithms.Snapshot.value =
    { view = Iset.of_list view; level }
  in
  Alcotest.(check string) "union of views" "{1,2,3}"
    (Iset.to_string (memory_set [| v [ 1; 2 ] 0; v [ 3 ] 1; v [] 0 |]));
  Alcotest.(check string) "empty memory" "{}" (Iset.to_string (memory_set [||]))

let test_random_search_structure () =
  (* Uniform random schedules rarely produce the covering patterns the
     witness needs; whatever the bounded search returns must be internally
     consistent. *)
  match Core.find_nonatomic_execution ~n:3 ~attempts:300 () with
  | None -> ()
  | Some w ->
      (* the culprit's output must genuinely be absent from the memory
         sets seen *)
      Alcotest.(check bool) "output not among memory sets" true
        (not
           (List.exists
              (Iset.equal w.Core.Snapshot_witness.culprit_output)
              w.Core.Snapshot_witness.memory_sets_seen))

let test_exhaustive_search_rejects_impossible_targets () =
  (* No execution can output the full input set without the memory having
     contained it: any write of the full view puts it in memory, and a
     processor only outputs a view it has written.  The exhaustive search
     on target {1,2} restricted to a tiny budget must simply not crash and
     must return a well-formed witness if any. *)
  let cfg = Algorithms.Snapshot.standard ~n:3 in
  let inputs = [| 1; 2; 3 |] in
  let module W = Core.Snapshot_exhaustive_witness in
  match
    W.find_nonatomic_exhaustive ~max_states:300_000 ~cfg ~inputs
      ~memory_set ~output_set:Fun.id
      ~target:(Iset.of_list [ 1; 2; 3 ])
      ~wirings:[ Anonmem.Wiring.identity ~n:3 ~m:3 ]
      ()
  with
  | None -> ()
  | Some w ->
      (* if a witness were claimed for the full set, the trace itself must
         refute memory ever equalling it — verify *)
      Alcotest.(check bool) "trace never shows target" true
        (List.for_all
           (fun (_, mem) -> not (Iset.equal mem w.W.target))
           w.W.trace)

let test_exhaustive_search_budget_respected () =
  let cfg = Algorithms.Snapshot.standard ~n:3 in
  let inputs = [| 1; 2; 3 |] in
  let module W = Core.Snapshot_exhaustive_witness in
  let r =
    W.find_nonatomic_exhaustive ~max_states:50_000 ~cfg ~inputs ~memory_set
      ~output_set:Fun.id
      ~target:(Iset.of_list [ 1; 2 ])
      ~wirings:[ Anonmem.Wiring.identity ~n:3 ~m:3 ]
      ()
  in
  match r with
  | None -> ()
  | Some w ->
      Alcotest.(check bool) "explored within budget-ish" true
        (w.W.states_explored <= 60_000)

let test_witness_trace_replays () =
  (* When the exhaustive search does find a witness (cheap targets first),
     its trace must replay to a state where the culprit outputs the target
     and the memory set differs from it at every step. *)
  let cfg = Algorithms.Snapshot.standard ~n:3 in
  let inputs = [| 1; 2; 3 |] in
  let module W = Core.Snapshot_exhaustive_witness in
  let module E = Modelcheck.Explorer.Make (Modelcheck.Codecs.Snapshot) in
  let wirings =
    List.filteri (fun i _ -> i < 4)
      (Anonmem.Wiring.enumerate ~n:3 ~m:3 ~fix_first:true)
  in
  match
    W.find_nonatomic_exhaustive ~max_states:800_000 ~cfg ~inputs ~memory_set
      ~output_set:Fun.id
      ~target:(Iset.of_list [ 1; 2 ])
      ~wirings ()
  with
  | None -> () (* within this budget the witness may be out of reach *)
  | Some w ->
      List.iter
        (fun (_, mem) ->
          Alcotest.(check bool) "memory never equals target" false
            (Iset.equal mem w.W.target))
        w.W.trace;
      let st = ref (E.init_state ~cfg ~inputs) in
      List.iter
        (fun (p, _) -> st := E.successor cfg w.W.wiring !st p)
        w.W.trace;
      let out =
        Algorithms.Snapshot.output cfg (!st).E.locals.(w.W.culprit)
      in
      Alcotest.(check bool) "culprit output equals target" true
        (match out with Some o -> Iset.equal o w.W.target | None -> false)

let () =
  Alcotest.run "nonatomicity"
    [
      ( "section-8",
        [
          Alcotest.test_case "memory content set" `Quick test_memory_set;
          Alcotest.test_case "random search consistency" `Quick
            test_random_search_structure;
          Alcotest.test_case "exhaustive: impossible target" `Quick
            test_exhaustive_search_rejects_impossible_targets;
          Alcotest.test_case "exhaustive: budget respected" `Quick
            test_exhaustive_search_budget_respected;
          Alcotest.test_case "exhaustive: witness trace replays" `Slow
            test_witness_trace_replays;
        ] );
    ]
