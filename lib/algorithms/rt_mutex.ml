(** A symmetric deadlock-free mutual-exclusion protocol for fully-anonymous
    read/write memory, in the style of Raynal–Taubenfeld ("Fully Anonymous
    Shared Memory Algorithms", arXiv:1909.05576).

    Each register holds [Free], [Claim id] (claimed by the processor
    whose identity is [id]) or [Seal id] (the critical-section holder's
    entry marker, see below).  Identities are the inputs: the protocol is
    {e symmetric} — it only ever compares identities for equality, never
    orders them — and fully anonymous: every processor runs the same code
    over its private wiring of the m registers.

    One competition round of a processor:

    + collect all m registers (one read per step, local order);
    + if every register holds my identity: enter the critical section;
    + else if some other identity holds strictly more registers than I
      do: release every register I hold (I lost this round), re-collect;
    + else if some register is free: claim the first free one (a blind
      write — the view may be stale, so the claim can overwrite a
      competitor's fresher claim), re-collect;
    + else spin (full memory, my claim count is weakly maximal): some
      strictly weaker competitor must release before anything changes.

    The critical section is a {e seal-and-audit}: the holder first
    rewrites all m registers with [Seal id], then re-reads them and
    reports [Cs_intruded] iff some register came back holding a
    {e foreign seal}.  Foreign {e claims} landing inside the held set are
    deliberately ignored: a pending stale claim firing into the critical
    section is the unavoidable covering phenomenon of anonymous memory
    (the host paper's Section-2 construction) and is benign — the
    claimer is strictly behind and must release.  A foreign seal, by
    contrast, is sound evidence of a mutual-exclusion breach: the
    intruder sealed only after collecting an all-mine view, and its seal
    write lands between this holder's own seal write and the audit read
    of the same register, so the two critical sections overlap.  The
    tripwire is what makes mutual-exclusion races visible to the fuzzer,
    which sees outcomes only; the model checker additionally checks the
    real state invariant (at most one processor in {!in_cs}) and, per
    the feasibility map, certifies at the checked sizes that the
    tripwire never fires at clean cells — the outcome oracle is
    empirically exact there.  The exit section frees all m registers and
    the processor halts: the protocol is one-shot, which turns mutual
    exclusion into a state invariant and deadlock-freedom into the
    absence of a fair cycle.

    Feasibility boundary (checked empirically by the feasibility map):
    the protocol is sound and deadlock-free when m is coprime to every
    k in [2..n] {e and} m >= 3.  Non-coprime cells deadlock — k processors
    can split the m registers into equal claim counts and spin forever;
    m = 1 (coprime, but below the covering floor) loses mutual exclusion
    to a Burns–Lynch-style covering race: a single pending stale write
    obliterates the winner's whole claim set.

    With [eager_entry] the entry test is weakened to "m-1 claims suffice" —
    a planted bug used by the differential test matrix; its counterexamples
    must replay through {!Modelcheck.Witness.Replay}. *)

type cfg = { n : int; m : int; eager_entry : bool }

let cfg ~n ~m =
  if n < 1 || m < 1 then invalid_arg "Rt_mutex.cfg";
  { n; m; eager_entry = false }

(** The planted-bug variant: enters the critical section one claim short. *)
let cfg_eager ~n ~m = { (cfg ~n ~m) with eager_entry = true }

type value = Free | Claim of int | Seal of int

(** The identity holding a register, sealed or not. *)
let owner = function Free -> None | Claim id | Seal id -> Some id

type input = int
type output = Cs_clean | Cs_intruded

type phase =
  | Collecting of { pos : int; mine : int; others : (int * int) list; first_free : int }
      (** The collect keeps only what {!decide} consumes — an
          observably-equivalent compression of the raw view (DESIGN §4):
          [mine] is the bitmask of private indices read as held by me,
          [others] the per-rival claim counts (ascending identities;
          claim and seal both count — only ownership matters to the
          competition), [first_free] the lowest index read [Free]
          ([-1] if none yet).  Collapsing read order and the rivals'
          claim/seal distinction shrinks the reachable local states by
          orders of magnitude at m = 5, which is what makes the n = 3
          feasibility cells exhaustively checkable. *)
  | Claiming of { target : int }  (** about to write my claim to [target] *)
  | Releasing of { mine : int list }
      (** registers still to free, ascending local indices; never [] *)
  | Sealing of { pos : int }  (** critical-section entry: sealing all m *)
  | Auditing of { pos : int; dirty : bool }  (** critical-section audit *)
  | Unlocking of { pos : int; dirty : bool }  (** freeing all m registers *)
  | Done of output

type local = { id : int; phase : phase }

let name = "rt-mutex"
let processors c = c.n
let registers c = c.m
let register_init _ = Free

let fresh_collect =
  Collecting { pos = 0; mine = 0; others = []; first_free = -1 }

let init _ id = { id; phase = fresh_collect }
let halted _ l = match l.phase with Done _ -> true | _ -> false

(** Whether a processor is in the critical section proper — from its
    first seal write through its last audit read.  The model checker's
    mutual-exclusion invariant counts these. *)
let in_cs l = match l.phase with Sealing _ | Auditing _ -> true | _ -> false

let next _ l =
  match l.phase with
  | Collecting { pos; _ } -> Some (Anonmem.Protocol.Read pos)
  | Claiming { target } -> Some (Anonmem.Protocol.Write (target, Claim l.id))
  | Releasing { mine = r :: _ } -> Some (Anonmem.Protocol.Write (r, Free))
  | Releasing { mine = [] } -> invalid_arg "Rt_mutex.next: empty release"
  | Sealing { pos } -> Some (Anonmem.Protocol.Write (pos, Seal l.id))
  | Auditing { pos; _ } -> Some (Anonmem.Protocol.Read pos)
  | Unlocking { pos; _ } -> Some (Anonmem.Protocol.Write (pos, Free))
  | Done _ -> None

let popcount mask =
  let rec go mask acc = if mask = 0 then acc else go (mask lsr 1) (acc + (mask land 1)) in
  go mask 0

let indices_of_mask ~m mask =
  List.filter (fun i -> mask land (1 lsl i) <> 0) (List.init m Fun.id)

(** Bump identity [q]'s count, keeping the assoc sorted by identity so
    equal count summaries are structurally equal (state hashing). *)
let rec bump q = function
  | [] -> [ (q, 1) ]
  | (id, k) :: rest when id = q -> (id, k + 1) :: rest
  | ((id, _) as e) :: rest when id < q -> e :: bump q rest
  | rest -> (q, 1) :: rest

(** Decide the next phase from the collect summary; equivalent to the
    textbook decision over the full view. *)
let decide c l ~mine ~others ~first_free =
  let mine_count = popcount mine in
  let threshold = if c.eager_entry then c.m - 1 else c.m in
  if mine_count >= threshold && mine_count >= 1 then
    { l with phase = Sealing { pos = 0 } }
  else if List.exists (fun (_, k) -> k > mine_count) others then
    match indices_of_mask ~m:c.m mine with
    | [] -> { l with phase = fresh_collect }
    | mine -> { l with phase = Releasing { mine } }
  else if first_free >= 0 then { l with phase = Claiming { target = first_free } }
  else { l with phase = fresh_collect }

let apply_read c l ~reg v =
  match l.phase with
  | Collecting { pos; mine; others; first_free } ->
      if reg <> pos then invalid_arg "Rt_mutex.apply_read: wrong register";
      let mine, others, first_free =
        match owner v with
        | None -> (mine, others, if first_free < 0 then pos else first_free)
        | Some q when q = l.id -> (mine lor (1 lsl pos), others, first_free)
        | Some q -> (mine, bump q others, first_free)
      in
      if pos + 1 < c.m then
        { l with phase = Collecting { pos = pos + 1; mine; others; first_free } }
      else decide c l ~mine ~others ~first_free
  | Auditing { pos; dirty } ->
      if reg <> pos then invalid_arg "Rt_mutex.apply_read: wrong register";
      let dirty =
        dirty || match v with Seal q -> q <> l.id | Free | Claim _ -> false
      in
      if pos + 1 < c.m then { l with phase = Auditing { pos = pos + 1; dirty } }
      else { l with phase = Unlocking { pos = 0; dirty } }
  | Claiming _ | Releasing _ | Sealing _ | Unlocking _ | Done _ ->
      invalid_arg "Rt_mutex.apply_read: not reading"

let apply_write c l =
  match l.phase with
  | Claiming _ -> { l with phase = fresh_collect }
  | Releasing { mine = _ :: rest } ->
      if rest = [] then { l with phase = fresh_collect }
      else { l with phase = Releasing { mine = rest } }
  | Sealing { pos } ->
      if pos + 1 < c.m then { l with phase = Sealing { pos = pos + 1 } }
      else { l with phase = Auditing { pos = 0; dirty = false } }
  | Unlocking { pos; dirty } ->
      if pos + 1 < c.m then { l with phase = Unlocking { pos = pos + 1; dirty } }
      else { l with phase = Done (if dirty then Cs_intruded else Cs_clean) }
  | Collecting _ | Auditing _ | Releasing { mine = [] } | Done _ ->
      invalid_arg "Rt_mutex.apply_write: not writing"

let output _ l = match l.phase with Done o -> Some o | _ -> None

(* Flat twin.  Register values are ints: [Free] is [-1], [Claim id] is
   [2*id], [Seal id] is [2*id + 1] — owner is [v asr 1], the seal bit is
   [v land 1].  The collect summary lives in per-processor scratch: [mine]
   and [first_free] as in the boxed phase, the rival counts as a row of
   per-identity counters (identities are required to sit below
   {!Bits.max_width}, so a touched-identity bitmask bounds the clearing
   cost of a fresh collect) plus a running maximum, which is all {!decide}
   reads of [others].  Phase is a state int (0 collect, 1 claim,
   2 release, 3 seal, 4 audit, 5 unlock, 6 done) with a position/target
   argument; the release worklist is the [mine] bitmask itself, popped in
   ascending order exactly like the boxed index list.  Total. *)
let flat (c : cfg) ~(phys : int array) ~(inputs : int array)
    ~(registers : value array) ~(locals : local array) :
    value Anonmem.Protocol.flat option =
  let n = c.n and m = c.m in
  let module Bits = Repro_util.Bits in
  let cap = Bits.max_width in
  let id_ok id = 0 <= id && id < cap in
  let value_ok = function Free -> true | Claim id | Seal id -> id_ok id in
  let phase_ok = function
    | Collecting { others; _ } -> List.for_all (fun (q, _) -> id_ok q) others
    | Releasing { mine } -> mine <> []
    | _ -> true
  in
  if n > Bits.max_width || m > Bits.max_width
     || not (Array.for_all id_ok inputs)
     || not (Array.for_all value_ok registers)
     || not (Array.for_all (fun l -> id_ok l.id && phase_ok l.phase) locals)
  then None
  else begin
    let enc = function
      | Free -> -1
      | Claim id -> id * 2
      | Seal id -> (id * 2) + 1
    in
    let dec v =
      if v < 0 then Free
      else if v land 1 = 0 then Claim (v asr 1)
      else Seal (v asr 1)
    in
    let rv = Array.map enc registers in
    let pv = Array.copy rv in
    let dirty = ref 0 in
    let lid = Array.map (fun l -> l.id) locals in
    let lstate = Array.make n 0 in
    let larg = Array.make n 0 in
    let lmine = Array.make n 0 in
    let lff = Array.make n (-1) in
    let ldirty = Array.make n 0 in
    let cnt = Array.make (n * cap) 0 in
    let ltouch = Array.make n 0 in
    let lmaxr = Array.make n 0 in
    Array.iteri
      (fun p l ->
        match l.phase with
        | Collecting { pos; mine; others; first_free } ->
            lstate.(p) <- 0;
            larg.(p) <- pos;
            lmine.(p) <- mine;
            lff.(p) <- first_free;
            List.iter
              (fun (q, k) ->
                cnt.((p * cap) + q) <- k;
                ltouch.(p) <- ltouch.(p) lor (1 lsl q);
                if k > lmaxr.(p) then lmaxr.(p) <- k)
              others
        | Claiming { target } ->
            lstate.(p) <- 1;
            larg.(p) <- target
        | Releasing { mine } ->
            lstate.(p) <- 2;
            lmine.(p) <-
              List.fold_left (fun acc i -> acc lor (1 lsl i)) 0 mine
        | Sealing { pos } ->
            lstate.(p) <- 3;
            larg.(p) <- pos
        | Auditing { pos; dirty } ->
            lstate.(p) <- 4;
            larg.(p) <- pos;
            ldirty.(p) <- (if dirty then 1 else 0)
        | Unlocking { pos; dirty } ->
            lstate.(p) <- 5;
            larg.(p) <- pos;
            ldirty.(p) <- (if dirty then 1 else 0)
        | Done o ->
            lstate.(p) <- 6;
            larg.(p) <- (match o with Cs_clean -> 0 | Cs_intruded -> 1))
      locals;
    let fresh p =
      let rec clear mask =
        if mask <> 0 then begin
          cnt.((p * cap) + Bits.ctz mask) <- 0;
          clear (mask land (mask - 1))
        end
      in
      clear ltouch.(p);
      ltouch.(p) <- 0;
      lmaxr.(p) <- 0;
      lmine.(p) <- 0;
      lff.(p) <- -1;
      lstate.(p) <- 0;
      larg.(p) <- 0
    in
    let halted p = lstate.(p) = 6 in
    let peek p =
      match lstate.(p) with
      | 0 -> phys.((p * m) + larg.(p)) lsl 1
      | 1 -> (phys.((p * m) + larg.(p)) lsl 1) lor 1
      | 2 -> (phys.((p * m) + Bits.ctz lmine.(p)) lsl 1) lor 1
      | 3 | 5 -> (phys.((p * m) + larg.(p)) lsl 1) lor 1
      | 4 -> phys.((p * m) + larg.(p)) lsl 1
      | _ -> -1
    in
    let decide p =
      let mine_count = Bits.popcount lmine.(p) in
      let threshold = if c.eager_entry then m - 1 else m in
      if mine_count >= threshold && mine_count >= 1 then begin
        lstate.(p) <- 3;
        larg.(p) <- 0
      end
      else if lmaxr.(p) > mine_count then begin
        if lmine.(p) = 0 then fresh p
        else lstate.(p) <- 2 (* release worklist: the [lmine] mask *)
      end
      else if lff.(p) >= 0 then begin
        let target = lff.(p) in
        fresh p;
        lstate.(p) <- 1;
        larg.(p) <- target
      end
      else fresh p
    in
    let do_read p v =
      let pos = larg.(p) in
      (if v < 0 then begin
         if lff.(p) < 0 then lff.(p) <- pos
       end
       else
         let q = v asr 1 in
         if q = lid.(p) then lmine.(p) <- lmine.(p) lor (1 lsl pos)
         else begin
           let idx = (p * cap) + q in
           let k = cnt.(idx) + 1 in
           cnt.(idx) <- k;
           ltouch.(p) <- ltouch.(p) lor (1 lsl q);
           if k > lmaxr.(p) then lmaxr.(p) <- k
         end);
      if pos + 1 < m then larg.(p) <- pos + 1 else decide p
    in
    let audit_read p v =
      let pos = larg.(p) in
      if v >= 0 && v land 1 = 1 && v asr 1 <> lid.(p) then ldirty.(p) <- 1;
      if pos + 1 < m then larg.(p) <- pos + 1
      else begin
        lstate.(p) <- 5;
        larg.(p) <- 0
      end
    in
    (* The local transition of a write — shared by [step] (which also
       lands the value) and [step_omit] (which doesn't). *)
    let advance_write p =
      match lstate.(p) with
      | 1 -> fresh p
      | 2 ->
          lmine.(p) <- lmine.(p) land (lmine.(p) - 1);
          if lmine.(p) = 0 then fresh p
      | 3 ->
          if larg.(p) + 1 < m then larg.(p) <- larg.(p) + 1
          else begin
            lstate.(p) <- 4;
            larg.(p) <- 0;
            ldirty.(p) <- 0
          end
      | 5 ->
          if larg.(p) + 1 < m then larg.(p) <- larg.(p) + 1
          else begin
            lstate.(p) <- 6;
            larg.(p) <- ldirty.(p)
          end
      | _ -> invalid_arg "Rt_mutex.flat: not writing"
    in
    let step p =
      match lstate.(p) with
      | 0 -> do_read p rv.(phys.((p * m) + larg.(p)))
      | 4 -> audit_read p rv.(phys.((p * m) + larg.(p)))
      | s ->
          let i = if s = 2 then Bits.ctz lmine.(p) else larg.(p) in
          let r = phys.((p * m) + i) in
          pv.(r) <- rv.(r);
          rv.(r) <-
            (match s with
            | 1 -> lid.(p) * 2
            | 3 -> (lid.(p) * 2) + 1
            | _ -> -1);
          dirty := !dirty lor (1 lsl r);
          advance_write p
    in
    let step_stale p =
      match lstate.(p) with
      | 0 -> do_read p pv.(phys.((p * m) + larg.(p)))
      | 4 -> audit_read p pv.(phys.((p * m) + larg.(p)))
      | _ -> invalid_arg "Rt_mutex.flat: not reading"
    in
    let reset p =
      fresh p;
      lid.(p) <- inputs.(p)
    in
    let value r =
      if !dirty land (1 lsl r) <> 0 then dec rv.(r) else registers.(r)
    in
    let sync () =
      List.iter
        (fun r -> registers.(r) <- dec rv.(r))
        (Bits.to_list !dirty);
      for p = 0 to n - 1 do
        let phase =
          match lstate.(p) with
          | 0 ->
              let others =
                List.rev_map
                  (fun q -> (q, cnt.((p * cap) + q)))
                  (List.rev (Bits.to_list ltouch.(p)))
              in
              Collecting
                { pos = larg.(p); mine = lmine.(p); others; first_free = lff.(p) }
          | 1 -> Claiming { target = larg.(p) }
          | 2 -> Releasing { mine = Bits.to_list lmine.(p) }
          | 3 -> Sealing { pos = larg.(p) }
          | 4 -> Auditing { pos = larg.(p); dirty = ldirty.(p) = 1 }
          | 5 -> Unlocking { pos = larg.(p); dirty = ldirty.(p) = 1 }
          | _ -> Done (if larg.(p) = 1 then Cs_intruded else Cs_clean)
        in
        locals.(p) <- { id = lid.(p); phase }
      done
    in
    Some
      {
        Anonmem.Protocol.total = true;
        peek;
        step;
        step_omit = advance_write;
        step_stale;
        reset;
        halted;
        value;
        sync;
      }
  end

let pp_value _ ppf = function
  | Free -> Fmt.string ppf "-"
  | Claim id -> Fmt.pf ppf "%d" id
  | Seal id -> Fmt.pf ppf "S%d" id

let pp_output _ ppf = function
  | Cs_clean -> Fmt.string ppf "cs-clean"
  | Cs_intruded -> Fmt.string ppf "cs-intruded"

let pp_local c ppf l =
  let phase ppf = function
    | Collecting { pos; _ } -> Fmt.pf ppf "collect@%d" pos
    | Claiming { target } -> Fmt.pf ppf "claim r%d" (target + 1)
    | Releasing { mine } ->
        Fmt.pf ppf "release %a" Fmt.(list ~sep:(any ",") int) mine
    | Sealing { pos } -> Fmt.pf ppf "seal@%d" pos
    | Auditing { pos; _ } -> Fmt.pf ppf "CS@%d" pos
    | Unlocking { pos; _ } -> Fmt.pf ppf "unlock@%d" pos
    | Done o -> pp_output c ppf o
  in
  Fmt.pf ppf "{id=%d %a}" l.id phase l.phase
