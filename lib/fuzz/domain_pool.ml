(** A persistent pool of worker domains for campaign batches.

    Spawning a domain costs hundreds of microseconds — comparable to
    running an entire fuzz case — so campaigns that spawn per invocation
    pay more for the fork/join than the work is worth and a 2-domain
    campaign can come out {e slower} than 1-domain.  This pool spawns
    each worker domain once, on first demand, and keeps it parked on a
    condition variable between jobs; {!parallel} then costs two mutex
    hand-offs per worker instead of a spawn and a join.

    The pool is process-global and safe to use from any domain, though
    the intended shape is the harness's: one orchestrating domain
    fanning a campaign out with {!parallel}.  Workers are joined through
    [at_exit]. *)

let mutex = Mutex.create ()
let work_available = Condition.create ()
let job_done = Condition.create ()
let jobs : (unit -> unit) Queue.t = Queue.create ()
let shutting_down = ref false
let spawned = ref 0
let handles : unit Domain.t list ref = ref []

(** Hard cap on pool workers, comfortably below the runtime's 128-domain
    recommendation ceiling (the caller's own domain and any unrelated
    domains need room too). *)
let max_workers = 64

let rec worker_loop () =
  Mutex.lock mutex;
  let rec await () =
    if !shutting_down then None
    else if Queue.is_empty jobs then begin
      Condition.wait work_available mutex;
      await ()
    end
    else Some (Queue.pop jobs)
  in
  match await () with
  | None -> Mutex.unlock mutex
  | Some job ->
      Mutex.unlock mutex;
      job ();
      worker_loop ()

(* Grow the pool to [k] workers (bounded by [max_workers]); no-op once
   they exist.  Workers adopt the spawning domain's minor-heap size:
   [Gc.set] is domain-local in OCaml 5, and a freshly spawned domain
   falls back to the (small) OCAMLRUNPARAM default.  Minor collections
   are stop-the-world across {e all} domains, so one worker left on a
   256k-word minor heap would drag every domain — including the caller —
   into its frequent collections, which on a single-core host costs a
   scheduler round-trip each time. *)
let ensure k =
  Mutex.lock mutex;
  let k = min k max_workers in
  let gc = Gc.get () in
  let worker () =
    Gc.set { (Gc.get ()) with Gc.minor_heap_size = gc.Gc.minor_heap_size };
    worker_loop ()
  in
  while (not !shutting_down) && !spawned < k do
    incr spawned;
    handles := Domain.spawn worker :: !handles
  done;
  Mutex.unlock mutex

let size () =
  Mutex.lock mutex;
  let n = !spawned in
  Mutex.unlock mutex;
  n

(** [parallel ~domains f] runs [f 0 .. f (domains - 1)] concurrently —
    [f 0] in the calling domain, the rest as pool jobs — and returns
    once every instance has finished.  The first exception any instance
    raised (caller's instance wins ties) is re-raised after the barrier,
    so no instance is abandoned mid-flight.  [domains <= 1] degenerates
    to a plain call of [f 0]. *)
let parallel ~domains f =
  let nd = max 1 domains in
  if nd = 1 then f 0
  else begin
    ensure (nd - 1);
    let remaining = ref (nd - 1) in
    let pool_error = ref None in
    let finish err =
      Mutex.lock mutex;
      (match err with
      | Some _ when !pool_error = None -> pool_error := err
      | _ -> ());
      decr remaining;
      if !remaining = 0 then Condition.broadcast job_done;
      Mutex.unlock mutex
    in
    Mutex.lock mutex;
    for w = 1 to nd - 1 do
      Queue.push
        (fun () ->
          match f w with
          | () -> finish None
          | exception e -> finish (Some e))
        jobs
    done;
    Condition.broadcast work_available;
    Mutex.unlock mutex;
    let own_error = match f 0 with () -> None | exception e -> Some e in
    Mutex.lock mutex;
    while !remaining > 0 do
      Condition.wait job_done mutex
    done;
    let err = match own_error with Some _ -> own_error | None -> !pool_error in
    Mutex.unlock mutex;
    match err with Some e -> raise e | None -> ()
  end

let () =
  at_exit (fun () ->
      Mutex.lock mutex;
      shutting_down := true;
      Condition.broadcast work_available;
      let hs = !handles in
      handles := [];
      Mutex.unlock mutex;
      List.iter Domain.join hs)
