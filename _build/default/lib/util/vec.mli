(** Growable arrays (OCaml 5.1 predates [Dynarray]), used by the model
    checker's state store where ids must index in O(1) while the space
    grows. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val push : 'a t -> 'a -> int
(** Appends and returns the index of the new element. *)

val get : 'a t -> int -> 'a
val set : 'a t -> int -> 'a -> unit
val truncate : 'a t -> int -> unit
(** [truncate t len] drops elements from index [len] on; [len] must not
    exceed the current length.  Capacity is retained. *)

val to_array : 'a t -> 'a array
val iteri : (int -> 'a -> unit) -> 'a t -> unit
