(** Figure 3: the wait-free solution to the snapshot task in the
    fully-anonymous model.

    Registers hold [(view, level)] records.  A processor raises its level
    only across scans in which it read exactly its own view in every
    register — and then only to one more than the minimum level it read —
    and resets it to 0 otherwise.  It terminates, outputting its view as
    snapshot, upon completing a scan with level [N].

    The algorithm group-solves the snapshot task (Definition 3.4) and in
    fact guarantees the stronger property that {e all} outputs are related
    by containment (Section 5.3.2), which {!Tasks.Snapshot_task} checks. *)

open Repro_util
module Core = Snapshot_core.Make (Iset)

type cfg = Core.cfg = { n : int; m : int }

let cfg = Core.cfg

let standard ~n = Core.cfg ~n ~m:n
(** The paper's instantiation: as many registers as processors. *)

type value = Core.value = { view : Iset.t; level : int }
type input = int
type output = Iset.t
type local = Core.local

let name = "snapshot(fig3)"
let processors (c : cfg) = c.n
let registers (c : cfg) = c.m
let register_init = Core.register_init
let init = Core.init

let terminated c (l : local) = Core.reached_level c l
let halted = terminated
let next c l = if terminated c l then None else Some (Core.next c l)
let apply_read = Core.apply_read
let apply_write = Core.apply_write
let output c (l : local) = if terminated c l then Some l.Core.view else None

(* The flat (int-machine) twin of the engine: views as bitset words in
   parallel int arrays, locals as struct-of-arrays, phase encoded in the
   scan position ([-1] = Writing).  Exactly the transitions of
   {!Snapshot_core} with [Vset = Iset] restricted to the bitset window,
   where union is [lor] and set equality is word equality — which is why
   the machine is total: in-window views stay in-window under union.
   Shared with {!Renaming}, which runs this engine under a wrapper local
   type — hence the [get]/[set]/[core_inputs] indirection instead of a
   direct [locals] array. *)
let flat_core (c : cfg) ~(phys : int array) ~(registers : value array)
    ~(core_inputs : int array) ~(get : int -> local)
    ~(set : int -> local -> unit) : value Anonmem.Protocol.flat option =
  let n = c.n and m = c.m in
  let in_window i = 0 <= i && i < Bits.max_width in
  if n > Bits.max_width || m > Bits.max_width
     || not (Array.for_all in_window core_inputs)
  then None
  else
    match
      ( Array.map (fun (v : value) -> Iset.to_bits v.view) registers,
        Array.init n (fun p -> Iset.to_bits (get p).Core.view) )
    with
    | exception Invalid_argument _ -> None (* a view outside the window *)
    | rview, lview ->
        let rlevel = Array.map (fun (v : value) -> v.level) registers in
        let llevel = Array.make n 0 in
        let lnext = Array.make n 0 in
        let lpos = Array.make n (-1) in
        let lall = Array.make n 0 in
        let lmin = Array.make n 0 in
        for p = 0 to n - 1 do
          let l = get p in
          llevel.(p) <- l.Core.level;
          lnext.(p) <- l.Core.next_write;
          match l.Core.phase with
          | Core.Writing -> lpos.(p) <- -1
          | Core.Scanning { pos; all_own; min_level } ->
              lpos.(p) <- pos;
              lall.(p) <- (if all_own then 1 else 0);
              lmin.(p) <- min_level
        done;
        (* Previous-value shadow for stale reads, as in the boxed faulty
           interpreter: updated only on successful writes. *)
        let pview = Array.copy rview and plevel = Array.copy rlevel in
        let dirty = ref 0 in
        let peek p =
          let pos = lpos.(p) in
          if pos < 0 then
            if llevel.(p) >= n then -1
            else (phys.((p * m) + lnext.(p)) lsl 1) lor 1
          else phys.((p * m) + pos) lsl 1
        in
        (* One read transition with the register contents supplied — the
           real and stale steps differ only in which shadow they read. *)
        let do_read p vview vlevel =
          let all = lall.(p) = 1 && vview = lview.(p) in
          if all then (
            if vlevel < lmin.(p) then lmin.(p) <- vlevel)
          else begin
            lall.(p) <- 0;
            lmin.(p) <- 0;
            lview.(p) <- lview.(p) lor vview
          end;
          let pos = lpos.(p) + 1 in
          if pos < m then lpos.(p) <- pos
          else begin
            (* Scan complete: level from the minimum read, capped at n. *)
            llevel.(p) <-
              (if all then
                 let lv = lmin.(p) + 1 in
                 if lv > n then n else lv
               else 0);
            lpos.(p) <- -1
          end
        in
        let advance_write p =
          lnext.(p) <- (lnext.(p) + 1) mod m;
          lpos.(p) <- 0;
          lall.(p) <- 1;
          lmin.(p) <- n
        in
        let step p =
          let pos = lpos.(p) in
          if pos < 0 then begin
            let r = phys.((p * m) + lnext.(p)) in
            pview.(r) <- rview.(r);
            plevel.(r) <- rlevel.(r);
            rview.(r) <- lview.(p);
            rlevel.(r) <- llevel.(p);
            dirty := !dirty lor (1 lsl r);
            advance_write p
          end
          else
            let r = phys.((p * m) + pos) in
            do_read p rview.(r) rlevel.(r)
        in
        let step_stale p =
          let r = phys.((p * m) + lpos.(p)) in
          do_read p pview.(r) plevel.(r)
        in
        let reset p =
          lview.(p) <- 1 lsl core_inputs.(p);
          llevel.(p) <- 0;
          lnext.(p) <- 0;
          lpos.(p) <- -1
        in
        let halted p = lpos.(p) < 0 && llevel.(p) >= n in
        let value r =
          if !dirty land (1 lsl r) <> 0 then
            { view = Iset.of_bits rview.(r); level = rlevel.(r) }
          else registers.(r)
        in
        let sync () =
          List.iter
            (fun r ->
              registers.(r) <-
                { view = Iset.of_bits rview.(r); level = rlevel.(r) })
            (Bits.to_list !dirty);
          for p = 0 to n - 1 do
            set p
              {
                Core.view = Iset.of_bits lview.(p);
                level = llevel.(p);
                next_write = lnext.(p);
                phase =
                  (if lpos.(p) < 0 then Core.Writing
                   else
                     Core.Scanning
                       {
                         pos = lpos.(p);
                         all_own = lall.(p) = 1;
                         min_level = lmin.(p);
                       });
              }
          done
        in
        Some
          {
            Anonmem.Protocol.total = true;
            peek;
            step;
            step_omit = advance_write;
            step_stale;
            reset;
            halted;
            value;
            sync;
          }

let flat c ~phys ~inputs ~registers ~locals =
  flat_core c ~phys ~registers ~core_inputs:inputs
    ~get:(fun p -> locals.(p))
    ~set:(fun p l -> locals.(p) <- l)
let level_of_local (l : local) = l.Core.level
let view_of_local (l : local) = l.Core.view
let pp_value _ = Core.pp_velt Fmt.int
let pp_local _ = Core.pp_local Fmt.int
let pp_output _ = Iset.pp_set
