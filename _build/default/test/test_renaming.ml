(* Tests of the Figure-4 adaptive renaming algorithm: name range, rank
   arithmetic, cross-group distinctness (the subtle Section-6 guarantee),
   legality of same-group sharing, and adaptivity. *)

open Repro_util
module Ren = Algorithms.Renaming
module Sys = Anonmem.System.Make (Ren)
module Scheduler = Anonmem.Scheduler

let solve ?(seed = 0) inputs =
  match Core.solve_renaming ~seed ~inputs () with
  | Ok r -> r.Core.outputs
  | Error e -> Alcotest.fail e

let test_name_arithmetic () =
  (* name = z(z-1)/2 + rank: snapshot {3} -> name 1; {2,5} rank 2 -> 3;
     {1,2,3} rank 1 -> 4. *)
  let o = Ren.name_of_snapshot ~group:3 (Iset.of_list [ 3 ]) in
  Alcotest.(check int) "size-1 snapshot gets name 1" 1 o.Ren.name_out;
  let o = Ren.name_of_snapshot ~group:5 (Iset.of_list [ 2; 5 ]) in
  Alcotest.(check int) "size-2 rank-2 gets 3" 3 o.Ren.name_out;
  let o = Ren.name_of_snapshot ~group:1 (Iset.of_list [ 1; 2; 3 ]) in
  Alcotest.(check int) "size-3 rank-1 gets 4" 4 o.Ren.name_out;
  let o = Ren.name_of_snapshot ~group:3 (Iset.of_list [ 1; 2; 3 ]) in
  Alcotest.(check int) "size-3 rank-3 gets 6" 6 o.Ren.name_out

let test_name_of_snapshot_requires_membership () =
  Alcotest.check_raises "group missing"
    (Invalid_argument "Renaming.name_of_snapshot: own group missing from snapshot")
    (fun () -> ignore (Ren.name_of_snapshot ~group:9 (Iset.of_list [ 1; 2 ])))

let test_unique_inputs_unique_names () =
  for seed = 0 to 30 do
    let n = 2 + (seed mod 5) in
    let inputs = Array.init n (fun i -> i + 1) in
    let outs = solve ~seed inputs in
    let names = Array.map (fun (o : Ren.output) -> o.Ren.name_out) outs in
    let distinct = List.sort_uniq compare (Array.to_list names) in
    Alcotest.(check int)
      (Printf.sprintf "all distinct (seed %d)" seed)
      n (List.length distinct);
    Array.iter
      (fun name ->
        Alcotest.(check bool) "in range" true
          (name >= 1 && name <= Ren.max_name ~groups:n))
      names
  done

let test_cross_group_distinct_with_groups () =
  for seed = 0 to 50 do
    let inputs = [| 1; 1; 2; 3; 3 |] in
    let outs = solve ~seed inputs in
    Array.iteri
      (fun p (op : Ren.output) ->
        Array.iteri
          (fun q (oq : Ren.output) ->
            if p < q && inputs.(p) <> inputs.(q) then
              Alcotest.(check bool)
                (Printf.sprintf "p%d vs p%d distinct (seed %d)" p q seed)
                true
                (op.Ren.name_out <> oq.Ren.name_out))
          outs)
      outs
  done

let test_adaptive_bound_uses_participants () =
  (* Only 2 of 5 group identifiers in play: names must fit 1..3. *)
  let inputs = [| 4; 7; 4; 7 |] in
  for seed = 0 to 20 do
    let outs = solve ~seed inputs in
    Array.iter
      (fun (o : Ren.output) ->
        Alcotest.(check bool) "within adaptive range for 2 groups" true
          (o.Ren.name_out >= 1 && o.Ren.name_out <= 3))
      outs
  done

let test_solo_processor_takes_name_1 () =
  let cfg = Ren.standard ~n:3 in
  let wiring = Anonmem.Wiring.identity ~n:3 ~m:3 in
  let st = Sys.init ~cfg ~wiring ~inputs:[| 9; 8; 7 |] in
  let stop, _ = Sys.run ~max_steps:100_000 ~sched:(Scheduler.solo 1) st in
  Alcotest.(check bool) "solo halted" true (stop = Sys.Scheduler_done);
  match Sys.output st 1 with
  | Some o ->
      Alcotest.(check int) "snapshot size 1 -> name 1" 1 o.Ren.name_out;
      Alcotest.(check int) "size" 1 o.Ren.size
  | None -> Alcotest.fail "solo processor did not output"

let test_output_consistent_with_snapshot () =
  let inputs = [| 1; 2; 3; 4 |] in
  let outs = solve ~seed:17 inputs in
  Array.iteri
    (fun p (o : Ren.output) ->
      Alcotest.(check int) "size matches snapshot" (Iset.cardinal o.Ren.snapshot)
        o.Ren.size;
      Alcotest.(check (option int)) "rank matches snapshot"
        (Some o.Ren.rank)
        (Iset.rank inputs.(p) o.Ren.snapshot);
      Alcotest.(check int) "name formula"
        ((o.Ren.size * (o.Ren.size - 1) / 2) + o.Ren.rank)
        o.Ren.name_out)
    outs

let test_max_name () =
  Alcotest.(check int) "M=1" 1 (Ren.max_name ~groups:1);
  Alcotest.(check int) "M=3" 6 (Ren.max_name ~groups:3);
  Alcotest.(check int) "M=5" 15 (Ren.max_name ~groups:5)

let prop_renaming_valid =
  QCheck.Test.make ~name:"renaming task solved for random configs" ~count:50
    QCheck.(pair (int_range 2 6) (int_bound 10_000))
    (fun (n, seed) ->
      let groups = 1 + (seed mod n) in
      let inputs = Array.init n (fun i -> 1 + ((i * 3) mod groups)) in
      match Core.solve_renaming ~seed ~inputs () with
      | Ok _ -> true
      | Error _ -> false)

let () =
  Alcotest.run "renaming"
    [
      ( "figure4",
        [
          Alcotest.test_case "name arithmetic" `Quick test_name_arithmetic;
          Alcotest.test_case "membership required" `Quick
            test_name_of_snapshot_requires_membership;
          Alcotest.test_case "unique inputs -> unique names" `Quick
            test_unique_inputs_unique_names;
          Alcotest.test_case "cross-group distinctness" `Slow
            test_cross_group_distinct_with_groups;
          Alcotest.test_case "adaptive bound" `Quick
            test_adaptive_bound_uses_participants;
          Alcotest.test_case "solo takes name 1" `Quick
            test_solo_processor_takes_name_1;
          Alcotest.test_case "output internally consistent" `Quick
            test_output_consistent_with_snapshot;
          Alcotest.test_case "max_name" `Quick test_max_name;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_renaming_valid ]);
    ]
