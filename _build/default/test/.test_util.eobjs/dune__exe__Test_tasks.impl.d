test/test_tasks.ml: Alcotest Array Iset List QCheck QCheck_alcotest Repro_util Tasks
