(* Differential verification matrix for the literature portfolio
   (Rt_mutex, Naming, Weak_leader): the three engines — sequential BFS,
   symmetry-reduced sequential, and the sharded parallel BFS at 1/2/4
   domains — must agree on every (task, n, m) cell they all cover; clean
   cells verify, violating cells produce witnesses that replay through
   Witness.Replay; the planted-bug variants are caught with replayable
   counterexamples; and the crash-stop sweeps keep exclusion and
   distinctness.

   Small n=2 cells (and cheap n=3 violations) run inside @portfolio-smoke
   / `dune runtest`; set PORTFOLIO_LONG=1 for the heavier n=3 cells. *)

module Rm = Algorithms.Rt_mutex
module Nm = Algorithms.Naming
module Wl = Algorithms.Weak_leader
module RmE = Modelcheck.Explorer.Make (Modelcheck.Codecs.Rt_mutex)
module RmPar = Modelcheck.Par_explorer.Make (Modelcheck.Codecs.Rt_mutex)
module RmReplay = Modelcheck.Witness.Replay (Modelcheck.Codecs.Rt_mutex)
module NmE = Modelcheck.Explorer.Make (Modelcheck.Codecs.Naming)
module NmPar = Modelcheck.Par_explorer.Make (Modelcheck.Codecs.Naming)
module NmReplay = Modelcheck.Witness.Replay (Modelcheck.Codecs.Naming)
module WlE = Modelcheck.Explorer.Make (Modelcheck.Codecs.Weak_leader)
module WlReplay = Modelcheck.Witness.Replay (Modelcheck.Codecs.Weak_leader)

let long_mode = Stdlib.Sys.getenv_opt "PORTFOLIO_LONG" <> None

let verdict_kind = function
  | Core.Verified _ -> "verified"
  | Core.Safety_violation _ -> "safety"
  | Core.Liveness_violation _ -> "liveness"
  | Core.Resource_limit _ -> "limit"
  | Core.Exhausted _ -> "exhausted"

(* --- clean cells: three-engine agreement --------------------------------- *)

(* The spin loops put real (unfair) cycles in even the deadlock-free
   spaces, so the DFS sweep stops early at the first back edge and its
   partial state count is not comparable; the exact parity bar is the
   per-wiring sequential BFS against the sharded parallel BFS at each
   domain count, unreduced and reduced. *)
let test_mutex_clean_cell_all_engines () =
  let n = 2 and m = 3 in
  let cfg = Rm.cfg ~n ~m in
  let inputs = Array.init n (fun i -> i + 1) in
  let invariant = Core.mutex_invariant cfg in
  (* Sequential (unreduced and reduced) through the Core verifier: both
     must certify the cell, over the same wiring enumeration. *)
  (match Core.verify_mutex ~n ~m () with
  | Core.Verified { wirings; _ } ->
      Alcotest.(check int) "mutex(2,3): all wirings" 6 wirings
  | v -> Alcotest.failf "mutex(2,3) unreduced: %s" (verdict_kind v));
  (match Core.verify_mutex ~n ~m ~reduction:true () with
  | Core.Verified { wirings; _ } ->
      Alcotest.(check int) "mutex(2,3) reduced: all wirings" 6 wirings
  | v -> Alcotest.failf "mutex(2,3) reduced: %s" (verdict_kind v));
  let wirings = Anonmem.Wiring.enumerate ~n ~m ~fix_first:true in
  let seq_total reduction =
    List.fold_left
      (fun acc wiring ->
        match RmE.explore ~invariant ~reduction ~cfg ~wiring ~inputs () with
        | RmE.Explored sp -> acc + RmE.state_count sp
        | _ -> Alcotest.fail "mutex(2,3): sequential BFS must stay clean")
      0 wirings
  in
  let seq_states = seq_total false and seq_red_states = seq_total true in
  Alcotest.(check bool)
    "mutex(2,3): reduction never grows the space" true
    (seq_red_states <= seq_states);
  List.iter
    (fun domains ->
      List.iter
        (fun reduction ->
          let nm =
            Printf.sprintf "mutex(2,3) par%d%s" domains
              (if reduction then " reduced" else "")
          in
          match
            RmPar.check_all_wirings ~require_wait_free:false ~invariant
              ~reduction ~domains ~cfg ~inputs ()
          with
          | Ok (s : Modelcheck.Explorer.summary) ->
              Alcotest.(check int)
                (nm ^ ": wiring count")
                (List.length wirings)
                s.Modelcheck.Explorer.wirings_checked;
              Alcotest.(check int)
                (nm ^ ": visited-state parity")
                (if reduction then seq_red_states else seq_states)
                s.Modelcheck.Explorer.total_states
          | Error e -> Alcotest.failf "%s: %s" nm e)
        [ false; true ])
    [ 1; 2; 4 ]

let test_naming_clean_cell_all_engines () =
  let n = 2 and m = 3 in
  let cfg = Nm.cfg ~n ~m in
  let inputs = Array.init n (fun i -> i + 1) in
  let invariant = Core.naming_invariant cfg in
  (match Core.verify_naming ~n ~m () with
  | Core.Verified _ -> ()
  | v -> Alcotest.failf "naming(2,3) unreduced: %s" (verdict_kind v));
  (match Core.verify_naming ~n ~m ~reduction:true () with
  | Core.Verified _ -> ()
  | v -> Alcotest.failf "naming(2,3) reduced: %s" (verdict_kind v));
  let wirings = Anonmem.Wiring.enumerate ~n ~m ~fix_first:true in
  let seq_states =
    List.fold_left
      (fun acc wiring ->
        match
          NmE.explore ~invariant ~reduction:false ~cfg ~wiring ~inputs ()
        with
        | NmE.Explored sp -> acc + NmE.state_count sp
        | _ -> Alcotest.fail "naming(2,3): sequential BFS must stay clean")
      0 wirings
  in
  List.iter
    (fun domains ->
      match
        NmPar.check_all_wirings ~require_wait_free:false ~invariant ~domains
          ~cfg ~inputs ()
      with
      | Ok (s : Modelcheck.Explorer.summary) ->
          Alcotest.(check int)
            (Printf.sprintf "naming(2,3) par%d: visited-state parity" domains)
            seq_states s.Modelcheck.Explorer.total_states
      | Error e -> Alcotest.failf "naming(2,3) par%d: %s" domains e)
    [ 1; 2; 4 ]

let test_leader_clean_cell () =
  (match Core.verify_leader ~n:2 ~m:2 () with
  | Core.Verified { wirings; _ } ->
      Alcotest.(check int) "leader(2,2): all wirings" 2 wirings
  | v -> Alcotest.failf "leader(2,2): %s" (verdict_kind v));
  match Core.verify_leader ~n:2 ~m:2 ~reduction:true () with
  | Core.Verified _ -> ()
  | v -> Alcotest.failf "leader(2,2) reduced: %s" (verdict_kind v)

(* --- violating cells: witnesses must replay ------------------------------ *)

let test_mutex_me_violation_below_floor_replays () =
  (* m=1 is coprime with everything yet ME still breaks — the covering
     floor (Burns–Lynch) is independent of the coprimality condition. *)
  let cfg = Rm.cfg ~n:2 ~m:1 in
  match Core.verify_mutex ~n:2 ~m:1 () with
  | Core.Safety_violation { wiring; path; _ } ->
      Alcotest.(check bool) "mutex(2,1): mid-trace witness" true (path <> []);
      let final =
        RmReplay.final ~cfg ~wiring ~inputs:[| 1; 2 |] path
      in
      (match Core.mutex_invariant cfg final with
      | Error _ -> ()
      | Ok () ->
          Alcotest.fail "mutex(2,1): replayed witness does not violate ME")
  | v -> Alcotest.failf "mutex(2,1): expected safety violation, got %s"
           (verdict_kind v)

let test_mutex_deadlock_lasso_replays () =
  (* m=2 shares a factor with n=2: the classic non-coprime deadlock.  The
     lasso witness must be a genuine execution: the stem reaches the
     cycle entry, the cycle returns to it, and every reported spinning
     processor moves along the cycle. *)
  let cfg = Rm.cfg ~n:2 ~m:2 in
  let inputs = [| 1; 2 |] in
  match Core.verify_mutex ~n:2 ~m:2 () with
  | Core.Liveness_violation { wiring; live; stem; cycle } ->
      Alcotest.(check bool) "mutex(2,2): nonempty cycle" true (cycle <> []);
      Alcotest.(check bool)
        "mutex(2,2): every live processor steps in the cycle" true
        (List.for_all (fun p -> List.mem p cycle) live);
      let entry = RmReplay.final ~cfg ~wiring ~inputs stem in
      let around = RmReplay.final ~cfg ~wiring ~inputs (stem @ cycle) in
      Alcotest.(check string)
        "mutex(2,2): cycle closes"
        (RmE.encode_state cfg entry)
        (RmE.encode_state cfg around);
      (* Reduced liveness detection agrees (same live set). *)
      (match Core.verify_mutex ~n:2 ~m:2 ~reduction:true () with
      | Core.Liveness_violation { live = live'; _ } ->
          Alcotest.(check (list int)) "mutex(2,2): reduced live set" live live'
      | v ->
          Alcotest.failf "mutex(2,2) reduced: expected deadlock, got %s"
            (verdict_kind v))
  | v ->
      Alcotest.failf "mutex(2,2): expected deadlock, got %s" (verdict_kind v)

let test_naming_deadlock_detected () =
  match Core.verify_naming ~n:2 ~m:2 () with
  | Core.Liveness_violation { live; _ } ->
      Alcotest.(check (list int)) "naming(2,2): both spin" [ 0; 1 ] live
  | v ->
      Alcotest.failf "naming(2,2): expected deadlock, got %s" (verdict_kind v)

let test_leader_violation_below_floor_replays () =
  (* A single register cannot protect the winner's view: both processors
     elect themselves.  The DFS witness replays to a two-leader state. *)
  let cfg = Wl.cfg ~n:2 ~m:1 in
  match Core.verify_leader ~n:2 ~m:1 () with
  | Core.Safety_violation { wiring; path; _ } ->
      Alcotest.(check bool) "leader(2,1): mid-trace witness" true (path <> []);
      let final = WlReplay.final ~cfg ~wiring ~inputs:[| 1; 2 |] path in
      (match Core.leader_invariant cfg final with
      | Error _ -> ()
      | Ok () ->
          Alcotest.fail "leader(2,1): replayed witness has < 2 leaders")
  | v ->
      Alcotest.failf "leader(2,1): expected safety violation, got %s"
        (verdict_kind v)

(* --- planted bugs -------------------------------------------------------- *)

let test_planted_eager_mutex_caught () =
  (* Eager entry lowers the collect threshold to m-1 held registers: the
     uncollected register hides a rival's claim and two processors seal
     overlapping critical sections. *)
  let cfg = Rm.cfg_eager ~n:2 ~m:3 in
  match Core.verify_mutex ~cfg () with
  | Core.Safety_violation { wiring; path; _ } ->
      Alcotest.(check bool) "eager mutex: mid-trace witness" true (path <> []);
      let final = RmReplay.final ~cfg ~wiring ~inputs:[| 1; 2 |] path in
      (match Core.mutex_invariant cfg final with
      | Error _ -> ()
      | Ok () -> Alcotest.fail "eager mutex: replayed witness is clean")
  | v ->
      Alcotest.failf "eager mutex: expected safety violation, got %s"
        (verdict_kind v)

let test_planted_forgetful_naming_caught () =
  (* A forgetful flood drops the ledger merge, so two processors acquire
     the same name. *)
  let cfg = Nm.cfg_forgetful ~n:2 ~m:3 in
  match Core.verify_naming ~cfg () with
  | Core.Safety_violation { wiring; path; message } ->
      if path <> [] then (
        let final = NmReplay.final ~cfg ~wiring ~inputs:[| 1; 2 |] path in
        match Core.naming_invariant cfg final with
        | Error _ -> ()
        | Ok () -> Alcotest.fail "forgetful naming: replayed witness is clean")
      else
        Alcotest.(check bool)
          "forgetful naming: terminal witness names the clash" true
          (String.length message > 0)
  | v ->
      Alcotest.failf "forgetful naming: expected safety violation, got %s"
        (verdict_kind v)

let test_planted_majority_leader_caught () =
  (* Majority entry declares leadership from a strict majority of the
     view instead of all of it.  At m=2 a strict majority is still
     unanimity, so the smallest cell where the bug bites is m=3: p1
     halts on [1;1;2], then p1's obliterated register lets p2 read a
     second majority. *)
  let cfg = Wl.cfg_majority ~n:2 ~m:3 in
  match Core.verify_leader ~cfg () with
  | Core.Safety_violation { wiring; path; _ } ->
      Alcotest.(check bool) "majority leader: mid-trace witness" true
        (path <> []);
      let final = WlReplay.final ~cfg ~wiring ~inputs:[| 1; 2 |] path in
      (match Core.leader_invariant cfg final with
      | Error _ -> ()
      | Ok () -> Alcotest.fail "majority leader: replayed witness is clean")
  | v ->
      Alcotest.failf "majority leader: expected safety violation, got %s"
        (verdict_kind v)

(* --- crash-stop sweeps --------------------------------------------------- *)

let test_mutex_exclusion_survives_crashes () =
  match Core.verify_mutex_crashes ~n:2 ~m:3 ~max_crashes:1 () with
  | Ok s ->
      Alcotest.(check int)
        "mutex(2,3) crash sweep: all wirings" 6
        s.Core.Rt_mutex_fault_mc.wirings_checked
  | Error e -> Alcotest.failf "mutex(2,3) under crashes: %s" e

let test_naming_distinctness_survives_crashes () =
  match Core.verify_naming_crashes ~n:2 ~m:3 ~max_crashes:1 () with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "naming(2,3) under crashes: %s" e

(* --- n=3 cells ----------------------------------------------------------- *)

let test_mutex_n3_noncoprime_violations () =
  (* Cheap at n=3: violations return on the first offending wiring. *)
  (match Core.verify_mutex ~n:3 ~m:2 () with
  | Core.Safety_violation _ | Core.Liveness_violation _ -> ()
  | v -> Alcotest.failf "mutex(3,2): expected violation, got %s"
           (verdict_kind v));
  match Core.verify_mutex ~n:3 ~m:3 () with
  | Core.Safety_violation _ | Core.Liveness_violation _ -> ()
  | v ->
      Alcotest.failf "mutex(3,3): expected violation, got %s" (verdict_kind v)

let test_mutex_n3_deadlock_long () =
  if not long_mode then ()
  else
    match Core.verify_mutex ~n:3 ~m:4 ~reduction:true () with
    | Core.Liveness_violation _ -> ()
    | v ->
        Alcotest.failf "mutex(3,4): expected deadlock, got %s" (verdict_kind v)

let test_leader_n3_clean_long () =
  if not long_mode then ()
  else
    match Core.verify_leader ~n:3 ~m:2 ~reduction:true () with
    | Core.Verified _ -> ()
    | v -> Alcotest.failf "leader(3,2): %s" (verdict_kind v)

(* --- wiring-class quotient ---------------------------------------------- *)

(* [Wiring.enumerate_classes] must partition [enumerate ~fix_first:true]:
   expanding each representative's orbit — every pivot choice, every
   order of the remaining processors, renormalized by the pivot's
   inverse — recovers the full enumeration exactly once.  The sum of
   distinct orbit sizes equalling the full count is precisely the
   partition property (covering + disjoint). *)
let orbit rep =
  let module P = Repro_util.Permutation in
  let n = Anonmem.Wiring.processors rep in
  let m = Anonmem.Wiring.registers rep in
  let perms = Array.init n (fun p -> Anonmem.Wiring.perm rep ~p) in
  let rec orders = function
    | [] -> [ [] ]
    | l ->
        List.concat_map
          (fun x ->
            List.map (fun r -> x :: r) (orders (List.filter (( <> ) x) l)))
          l
  in
  let idxs = List.init n Fun.id in
  List.concat_map
    (fun j ->
      let inv = P.inverse perms.(j) in
      List.map
        (fun order ->
          List.init m Fun.id
          :: List.map (fun k -> P.to_list (P.compose inv perms.(k))) order)
        (orders (List.filter (( <> ) j) idxs)))
    idxs
  |> List.sort_uniq compare

let wiring_as_lists w =
  let module P = Repro_util.Permutation in
  List.init (Anonmem.Wiring.processors w) (fun p ->
      P.to_list (Anonmem.Wiring.perm w ~p))

let check_partition ~n ~m =
  let full =
    Anonmem.Wiring.enumerate ~n ~m ~fix_first:true
    |> List.map wiring_as_lists |> List.sort compare
  in
  let classes = Anonmem.Wiring.enumerate_classes ~n ~m in
  let orbits = List.map orbit classes in
  Alcotest.(check int)
    (Fmt.str "(%d,%d): orbits partition the wiring space" n m)
    (List.length full)
    (List.fold_left (fun acc o -> acc + List.length o) 0 orbits);
  Alcotest.(check (list (list (list int))))
    (Fmt.str "(%d,%d): orbits cover the wiring space" n m)
    full
    (List.concat orbits |> List.sort compare);
  List.length classes

let test_wiring_classes_partition () =
  (* n=2, m=3: orbits pair each wiring with its inverse; the identity
     and the three transpositions are self-inverse, the two 3-cycles
     pair up — 5 classes out of 6 wirings. *)
  Alcotest.(check int) "(2,3): class count" 5 (check_partition ~n:2 ~m:3);
  ignore (check_partition ~n:3 ~m:2);
  ignore (check_partition ~n:3 ~m:3);
  ignore (check_partition ~n:2 ~m:4)

(* The quotient must not change any verdict: clean cells still verify
   (over fewer wirings), violating cells still produce their violation.
   This is the empirical face of the id-agnosticity argument in
   wiring.mli. *)
let test_wiring_classes_verdicts_agree () =
  (match Core.verify_mutex ~n:2 ~m:3 ~wiring_classes:true () with
  | Core.Verified { wirings; _ } ->
      Alcotest.(check int) "mutex(2,3) classes: wirings" 5 wirings
  | v -> Alcotest.failf "mutex(2,3) classes: %s" (verdict_kind v));
  (match Core.verify_naming ~n:2 ~m:3 ~wiring_classes:true () with
  | Core.Verified _ -> ()
  | v -> Alcotest.failf "naming(2,3) classes: %s" (verdict_kind v));
  (match Core.verify_leader ~n:2 ~m:2 ~wiring_classes:true () with
  | Core.Verified _ -> ()
  | v -> Alcotest.failf "leader(2,2) classes: %s" (verdict_kind v));
  (match Core.verify_mutex ~n:2 ~m:2 ~wiring_classes:true () with
  | Core.Liveness_violation _ -> ()
  | v -> Alcotest.failf "mutex(2,2) classes: %s" (verdict_kind v));
  (match Core.verify_mutex ~n:3 ~m:2 ~wiring_classes:true () with
  | Core.Safety_violation { wiring; path; _ } ->
      (* The witness is a concrete wiring of the full space, so it
         replays exactly like an unquotiented one. *)
      if path <> [] then begin
        let cfg = Rm.cfg ~n:3 ~m:2 in
        let inputs = [| 1; 2; 3 |] in
        let final = RmReplay.final ~cfg ~wiring ~inputs path in
        match Core.mutex_invariant cfg final with
        | Error _ -> ()
        | Ok () -> Alcotest.fail "mutex(3,2) classes: witness did not replay"
      end
  | v -> Alcotest.failf "mutex(3,2) classes: %s" (verdict_kind v));
  match Core.verify_leader ~n:2 ~m:1 ~wiring_classes:true () with
  | Core.Safety_violation _ -> ()
  | v -> Alcotest.failf "leader(2,1) classes: %s" (verdict_kind v)

(* --- packed single-word engine ------------------------------------------ *)

(* The packed sweep must reproduce the generic verdict on every cell it
   covers — verified wirings with the exact state total, and on
   violating cells the same verdict kind with the same witness (the
   packed path falls back to the generic engine on the offending wiring,
   so the witnesses are literally identical). *)
let test_packed_mutex_parity () =
  let same_verdict name a b =
    match (a, b) with
    | Core.Verified { wirings = w1; states = s1 },
      Core.Verified { wirings = w2; states = s2 } ->
        Alcotest.(check int) (name ^ ": wiring parity") w1 w2;
        Alcotest.(check int) (name ^ ": state parity") s1 s2
    | Core.Safety_violation { path = p1; _ },
      Core.Safety_violation { path = p2; _ } ->
        Alcotest.(check int)
          (name ^ ": witness parity")
          (List.length p1) (List.length p2)
    | Core.Liveness_violation { live = l1; _ },
      Core.Liveness_violation { live = l2; _ } ->
        Alcotest.(check (list int)) (name ^ ": live-set parity") l1 l2
    | a, b ->
        Alcotest.failf "%s: generic %s vs packed %s" name (verdict_kind a)
          (verdict_kind b)
  in
  List.iter
    (fun (n, m) ->
      let name = Printf.sprintf "mutex(%d,%d) packed" n m in
      same_verdict name
        (Core.verify_mutex ~n ~m ())
        (Core.verify_mutex ~n ~m ~packed:true ());
      same_verdict (name ^ " classes")
        (Core.verify_mutex ~n ~m ~wiring_classes:true ())
        (Core.verify_mutex ~n ~m ~wiring_classes:true ~packed:true ()))
    [ (2, 1); (2, 2); (2, 3); (2, 4); (3, 2); (3, 3) ]

let test_packed_planted_eager_caught () =
  (* The planted eager bug must not slip past the packed fast path: the
     packed sweep flags the wiring, the generic fallback extracts the
     replayable witness. *)
  let cfg = Rm.cfg_eager ~n:2 ~m:3 in
  match Core.verify_mutex ~cfg ~packed:true () with
  | Core.Safety_violation { wiring; path; _ } ->
      Alcotest.(check bool) "packed eager: mid-trace witness" true (path <> []);
      let final = RmReplay.final ~cfg ~wiring ~inputs:[| 1; 2 |] path in
      (match Core.mutex_invariant cfg final with
      | Error _ -> ()
      | Ok () -> Alcotest.fail "packed eager: replayed witness is clean")
  | v ->
      Alcotest.failf "packed eager: expected safety violation, got %s"
        (verdict_kind v)

let test_packed_state_cap () =
  match Core.verify_mutex ~n:2 ~m:3 ~max_states:10 ~packed:true () with
  | Core.Resource_limit k -> Alcotest.(check int) "packed cap" 10 k
  | v -> Alcotest.failf "packed cap: expected limit, got %s" (verdict_kind v)

let () =
  Alcotest.run "portfolio"
    [
      ( "clean-cells",
        [
          Alcotest.test_case "mutex (2,3): three engines agree" `Quick
            test_mutex_clean_cell_all_engines;
          Alcotest.test_case "naming (2,3): three engines agree" `Quick
            test_naming_clean_cell_all_engines;
          Alcotest.test_case "leader (2,2): verified" `Quick
            test_leader_clean_cell;
        ] );
      ( "violations",
        [
          Alcotest.test_case "mutex (2,1): ME witness replays" `Quick
            test_mutex_me_violation_below_floor_replays;
          Alcotest.test_case "mutex (2,2): deadlock lasso replays" `Quick
            test_mutex_deadlock_lasso_replays;
          Alcotest.test_case "naming (2,2): deadlock detected" `Quick
            test_naming_deadlock_detected;
          Alcotest.test_case "leader (2,1): two-leader witness replays" `Quick
            test_leader_violation_below_floor_replays;
          Alcotest.test_case "mutex n=3 non-coprime cells violate" `Quick
            test_mutex_n3_noncoprime_violations;
        ] );
      ( "planted-bugs",
        [
          Alcotest.test_case "eager mutex caught + replayed" `Quick
            test_planted_eager_mutex_caught;
          Alcotest.test_case "forgetful naming caught" `Quick
            test_planted_forgetful_naming_caught;
          Alcotest.test_case "majority leader caught + replayed" `Quick
            test_planted_majority_leader_caught;
        ] );
      ( "crash-sweeps",
        [
          Alcotest.test_case "mutex exclusion survives crashes" `Quick
            test_mutex_exclusion_survives_crashes;
          Alcotest.test_case "naming distinctness survives crashes" `Quick
            test_naming_distinctness_survives_crashes;
        ] );
      ( "wiring-classes",
        [
          Alcotest.test_case "orbits partition the wiring space" `Quick
            test_wiring_classes_partition;
          Alcotest.test_case "quotient preserves every verdict" `Quick
            test_wiring_classes_verdicts_agree;
        ] );
      ( "packed-engine",
        [
          Alcotest.test_case "packed sweep reproduces generic verdicts" `Quick
            test_packed_mutex_parity;
          Alcotest.test_case "packed + planted eager bug replays" `Quick
            test_packed_planted_eager_caught;
          Alcotest.test_case "packed honours the state cap" `Quick
            test_packed_state_cap;
        ] );
      ( "long",
        [
          Alcotest.test_case "mutex (3,4) deadlock [PORTFOLIO_LONG]" `Quick
            test_mutex_n3_deadlock_long;
          Alcotest.test_case "leader (3,2) clean [PORTFOLIO_LONG]" `Quick
            test_leader_n3_clean_long;
        ] );
    ]
