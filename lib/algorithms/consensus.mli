(** Figure 5: obstruction-free consensus by derandomizing Chandra's
    shared-coin algorithm over the long-lived snapshot, following
    Guerraoui and Ruppert (2005).

    Each processor maintains a preference and a monotonically increasing
    timestamp, repeatedly invokes the long-lived snapshot with the pair
    [(preference, timestamp)], and decides a value once it leads every
    rival by at least 2 — where a value absent from the snapshot counts as
    having timestamp 0, exactly as in Chandra's racing formulation where
    both counters exist from the start.  That reading is essential: with
    "absent rival ⇒ decide", the bounded model checker exhibits a
    two-processor disagreement (see {!resolve} in the implementation and
    EXPERIMENTS.md).

    Safety (agreement and validity) holds in every execution; termination
    is obstruction-free — a processor that eventually runs alone decides.
    All communication goes through the embedded long-lived snapshot; the
    consensus layer never touches a register directly.

    Implements {!Anonmem.Protocol.S}; drive it through
    [Anonmem.System.Make (Algorithms.Consensus)] or the terminating driver
    [Core.solve_consensus]. *)

open Repro_util

(** View elements: [(value, timestamp)] pairs. *)
module Pref : sig
  type t = int * int

  val compare : t -> t -> int
end

module Pset : module type of Sorted_set.Make (Pref)

module Pref_pp : sig
  val pp_elt : Pref.t Fmt.t
end

(** The embedded long-lived snapshot over [(value, timestamp)] views. *)
module Snap : module type of Long_lived_snapshot.Make (Pset) (Pref_pp)

type cfg = Snap.cfg = { n : int; m : int }

val cfg : n:int -> m:int -> cfg
val standard : n:int -> cfg

type value = Snap.value
type input = int
type output = int

type local = {
  input : int;
  pref : int;
  ts : int;
  decided : int option;
  rounds : int;  (** completed snapshot invocations, for diagnostics *)
  snap : Snap.local;
}

val name : string
val processors : cfg -> int
val registers : cfg -> int
val register_init : cfg -> value
val init : cfg -> input -> local
val halted : cfg -> local -> bool
val next : cfg -> local -> value Anonmem.Protocol.operation option
val apply_read : cfg -> local -> reg:int -> value -> local
val apply_write : cfg -> local -> local
val output : cfg -> local -> output option

val flat :
  cfg ->
  phys:int array ->
  inputs:input array ->
  registers:value array ->
  locals:local array ->
  value Anonmem.Protocol.flat option

val leaders : Pset.t -> (int * int) list
(** Highest timestamp carried by each value in a snapshot. *)

val resolve : Pset.t -> [ `Decide of int | `Adopt of int * int ]
(** The decision rule applied to a completed snapshot: decide the leader
    if it is ≥ 2 ahead of every rival (absent rivals count as 0), else
    adopt it with the next timestamp. *)

val rounds_of_local : local -> int
val preference_of_local : local -> int * int
val pp_value : cfg -> value Fmt.t
val pp_local : cfg -> local Fmt.t
val pp_output : cfg -> output Fmt.t
