(* Tests of the substrate: wirings, schedulers, and the operational
   semantics of System (routing through permutations, last-writer ghost
   state, halting). *)

open Repro_util
module Wiring = Anonmem.Wiring
module Scheduler = Anonmem.Scheduler
module WS = Algorithms.Write_scan
module Sys = Anonmem.System.Make (WS)

(* --- Wiring -------------------------------------------------------------- *)

let test_wiring_routing () =
  let w = Wiring.of_lists [ [ 1; 2; 0 ]; [ 0; 1; 2 ] ] in
  Alcotest.(check int) "p0 private 0 -> phys 1" 1 (Wiring.phys w ~p:0 0);
  Alcotest.(check int) "p0 private 2 -> phys 0" 0 (Wiring.phys w ~p:0 2);
  Alcotest.(check int) "p1 identity" 2 (Wiring.phys w ~p:1 2);
  (* the paper's sigma^-1 direction *)
  Alcotest.(check int) "p0 reads phys 1 via private 0" 0
    (Wiring.local_of_phys w ~p:0 1)

let test_wiring_validation () =
  Alcotest.check_raises "unequal sizes"
    (Invalid_argument "Wiring.make: permutations of unequal size") (fun () ->
      ignore
        (Wiring.make
           [| Permutation.identity 2; Permutation.identity 3 |]))

let test_wiring_enumerate () =
  Alcotest.(check int) "fixed first: (3!)^2" 36
    (List.length (Wiring.enumerate ~n:3 ~m:3 ~fix_first:true));
  Alcotest.(check int) "free: (2!)^2" 4
    (List.length (Wiring.enumerate ~n:2 ~m:2 ~fix_first:false));
  let ws = Wiring.enumerate ~n:2 ~m:3 ~fix_first:true in
  Alcotest.(check int) "n=2 m=3 fixed: 6" 6 (List.length ws);
  List.iter
    (fun w ->
      Alcotest.(check bool) "first is identity" true
        (Permutation.equal (Wiring.perm w ~p:0) (Permutation.identity 3)))
    ws

let rec fact n = if n <= 1 then 1 else n * fact (n - 1)

let prop_wiring_enumerate_counts =
  QCheck.Test.make ~name:"enumerate: (m!)^n full, (m!)^(n-1) with fix_first"
    ~count:40
    QCheck.(pair (int_range 1 3) (int_range 1 3))
    (fun (n, m) ->
      let pow b e =
        List.fold_left (fun acc _ -> acc * b) 1 (List.init e Fun.id)
      in
      List.length (Wiring.enumerate ~n ~m ~fix_first:false) = pow (fact m) n
      && List.length (Wiring.enumerate ~n ~m ~fix_first:true)
         = pow (fact m) (n - 1))

let prop_wiring_enumerate_distinct =
  QCheck.Test.make ~name:"enumerate yields distinct wirings" ~count:20
    QCheck.(pair (int_range 1 3) (int_range 1 3))
    (fun (n, m) ->
      let ws = Wiring.enumerate ~n ~m ~fix_first:false in
      let rec all_distinct = function
        | [] -> true
        | w :: rest ->
            (not (List.exists (Wiring.equal w) rest)) && all_distinct rest
      in
      all_distinct ws)

(* Soundness of the fix_first symmetry reduction: every full wiring is a
   global register renaming of one with processor 0 wired identically.
   Renaming the physical registers by rho turns sigma_p into
   rho . sigma_p; choosing rho = sigma_0^-1 pins processor 0 to the
   identity, and the canonical form must appear in the reduced
   enumeration. *)
let test_wiring_symmetry_reduction_sound () =
  List.iter
    (fun (n, m) ->
      let full = Wiring.enumerate ~n ~m ~fix_first:false in
      let reduced = Wiring.enumerate ~n ~m ~fix_first:true in
      List.iter
        (fun w ->
          let rho = Permutation.inverse (Wiring.perm w ~p:0) in
          let canon =
            Wiring.make
              (Array.init n (fun p ->
                   Permutation.compose rho (Wiring.perm w ~p)))
          in
          Alcotest.(check bool) "canonical form is enumerated" true
            (List.exists (Wiring.equal canon) reduced))
        full)
    [ (2, 2); (2, 3); (3, 2); (3, 3) ]

let test_wiring_random_deterministic () =
  let w1 = Wiring.random (Rng.create ~seed:9) ~n:4 ~m:4 in
  let w2 = Wiring.random (Rng.create ~seed:9) ~n:4 ~m:4 in
  Alcotest.(check bool) "same seed same wiring" true (Wiring.equal w1 w2)

(* --- Scheduler ----------------------------------------------------------- *)

let test_round_robin_fair () =
  let sched = Scheduler.round_robin () in
  let enabled = [ 0; 1; 2 ] in
  let picks =
    List.init 9 (fun time ->
        Option.get (Scheduler.pick sched ~time ~enabled))
  in
  Alcotest.(check (list int)) "cycles" [ 0; 1; 2; 0; 1; 2; 0; 1; 2 ] picks

let test_round_robin_skips_halted () =
  let sched = Scheduler.round_robin () in
  let p1 = Option.get (Scheduler.pick sched ~time:0 ~enabled:[ 0; 1; 2 ]) in
  let p2 = Option.get (Scheduler.pick sched ~time:1 ~enabled:[ 0; 2 ]) in
  let p3 = Option.get (Scheduler.pick sched ~time:2 ~enabled:[ 0; 2 ]) in
  Alcotest.(check (list int)) "skips 1" [ 0; 2; 0 ] [ p1; p2; p3 ]

let test_solo () =
  let sched = Scheduler.solo 1 in
  Alcotest.(check (option int)) "picks 1" (Some 1)
    (Scheduler.pick sched ~time:0 ~enabled:[ 0; 1; 2 ]);
  Alcotest.(check (option int)) "gives up when 1 halted" None
    (Scheduler.pick sched ~time:1 ~enabled:[ 0; 2 ])

let test_script () =
  let sched = Scheduler.script [ 2; 2; 0 ] in
  Alcotest.(check (option int)) "first" (Some 2)
    (Scheduler.pick sched ~time:0 ~enabled:[ 0; 1; 2 ]);
  Alcotest.(check (option int)) "second" (Some 2)
    (Scheduler.pick sched ~time:1 ~enabled:[ 0; 1; 2 ]);
  Alcotest.(check (option int)) "third" (Some 0)
    (Scheduler.pick sched ~time:2 ~enabled:[ 0; 1; 2 ]);
  Alcotest.(check (option int)) "exhausted" None
    (Scheduler.pick sched ~time:3 ~enabled:[ 0; 1; 2 ])

let test_script_cycle () =
  let sched = Scheduler.script ~cycle:true [ 1; 0 ] in
  let picks =
    List.init 6 (fun t -> Option.get (Scheduler.pick sched ~time:t ~enabled:[ 0; 1 ]))
  in
  Alcotest.(check (list int)) "repeats" [ 1; 0; 1; 0; 1; 0 ] picks

let test_script_cycle_all_halted () =
  let sched = Scheduler.script ~cycle:true [ 1; 1 ] in
  Alcotest.(check (option int)) "stops rather than spinning" None
    (Scheduler.pick sched ~time:0 ~enabled:[ 0 ])

let test_script_then_cycle () =
  let sched = Scheduler.script_then_cycle ~prefix:[ 0; 0 ] ~cycle:[ 1; 2 ] in
  let picks =
    List.init 8 (fun t -> Option.get (Scheduler.pick sched ~time:t ~enabled:[ 0; 1; 2 ]))
  in
  Alcotest.(check (list int)) "prefix then cycle" [ 0; 0; 1; 2; 1; 2; 1; 2 ] picks

let test_script_then_cycle_halting () =
  let sched = Scheduler.script_then_cycle ~prefix:[ 0 ] ~cycle:[ 1 ] in
  Alcotest.(check (option int)) "prefix" (Some 0)
    (Scheduler.pick sched ~time:0 ~enabled:[ 0; 1 ]);
  Alcotest.(check (option int)) "cycle skips halted, gives up" None
    (Scheduler.pick sched ~time:1 ~enabled:[ 0 ])

let test_recorded_scheduler () =
  let sched, picks = Scheduler.recorded (Scheduler.script [ 2; 0; 1; 0 ]) in
  for t = 0 to 3 do
    ignore (Scheduler.pick sched ~time:t ~enabled:[ 0; 1; 2 ])
  done;
  Alcotest.(check (list int)) "picks oldest first" [ 2; 0; 1; 0 ] (picks ());
  (* A refused pick (script exhausted) records nothing. *)
  Alcotest.(check (option int)) "exhausted" None
    (Scheduler.pick sched ~time:4 ~enabled:[ 0; 1; 2 ]);
  Alcotest.(check (list int)) "unchanged" [ 2; 0; 1; 0 ] (picks ())

let test_crash_scheduler () =
  let sched =
    Scheduler.crash ~crash_at:[| Some 2; None |] (Scheduler.round_robin ())
  in
  (* Before time 2 both run; from time 2 on processor 0 is gone forever. *)
  let picks =
    List.init 6 (fun t -> Scheduler.pick sched ~time:t ~enabled:[ 0; 1 ])
  in
  Alcotest.(check (list (option int)))
    "p0 crashes at time 2"
    [ Some 0; Some 1; Some 1; Some 1; Some 1; Some 1 ]
    picks;
  (* If every live processor has crashed, the run halts. *)
  let dead = Scheduler.crash ~crash_at:[| Some 0 |] (Scheduler.round_robin ()) in
  Alcotest.(check (option int)) "all crashed" None
    (Scheduler.pick dead ~time:5 ~enabled:[ 0 ])

let test_random_scheduler_picks_enabled () =
  let sched = Scheduler.random (Rng.create ~seed:3) in
  for t = 0 to 200 do
    match Scheduler.pick sched ~time:t ~enabled:[ 1; 4; 5 ] with
    | Some p -> Alcotest.(check bool) "enabled" true (List.mem p [ 1; 4; 5 ])
    | None -> Alcotest.fail "random scheduler returned None on non-empty"
  done

(* --- System -------------------------------------------------------------- *)

let mk_state ?(wiring_lists = [ [ 0; 1 ]; [ 1; 0 ] ]) () =
  let cfg = WS.cfg ~n:2 ~m:2 in
  let wiring = Wiring.of_lists wiring_lists in
  (cfg, Sys.init ~cfg ~wiring ~inputs:[| 1; 2 |])

let test_system_write_routes_through_wiring () =
  let _, st = mk_state () in
  (* p1 (index 1) writes its private register 0, which is physical 1 *)
  (match Sys.step_in_place st 1 with
  | Sys.Write_ev { phys_reg; local_reg; value; _ } ->
      Alcotest.(check int) "local" 0 local_reg;
      Alcotest.(check int) "phys" 1 phys_reg;
      Alcotest.(check bool) "value is p1's view" true (Iset.equal value (Iset.of_list [ 2 ]))
  | Sys.Read_ev _ -> Alcotest.fail "expected a write");
  Alcotest.(check bool) "register 1 updated" true
    (Iset.equal st.Sys.registers.(1) (Iset.of_list [ 2 ]));
  Alcotest.(check (option int)) "last writer" (Some 1) st.Sys.last_writer.(1)

let test_system_read_from_writer () =
  let _, st = mk_state () in
  ignore (Sys.step_in_place st 1);
  (* p0 writes phys 0 then scans: private 0 = phys 0, private 1 = phys 1 *)
  ignore (Sys.step_in_place st 0);
  ignore (Sys.step_in_place st 0);
  match Sys.step_in_place st 0 with
  | Sys.Read_ev { phys_reg; value; writer; _ } ->
      Alcotest.(check int) "phys 1" 1 phys_reg;
      Alcotest.(check bool) "reads p1's value" true (Iset.equal value (Iset.of_list [ 2 ]));
      Alcotest.(check (option int)) "reads from p1" (Some 1) writer
  | Sys.Write_ev _ -> Alcotest.fail "expected a read"

let test_system_pure_step_no_mutation () =
  let _, st = mk_state () in
  let before = Array.map Iset.elements st.Sys.registers in
  let st', _ = Sys.step st 0 in
  let after = Array.map Iset.elements st.Sys.registers in
  Alcotest.(check bool) "original untouched" true (before = after);
  Alcotest.(check bool) "copy progressed" true
    (Array.map Iset.elements st'.Sys.registers <> before)

let test_system_run_max_steps () =
  let _, st = mk_state () in
  let stop, steps =
    Sys.run ~max_steps:17 ~sched:(Scheduler.round_robin ()) st
  in
  Alcotest.(check bool) "max steps (write-scan never halts)" true
    (stop = Sys.Max_steps);
  Alcotest.(check int) "exactly 17" 17 steps

let test_system_event_callback () =
  let _, st = mk_state () in
  let count = ref 0 in
  let _ =
    Sys.run ~max_steps:10 ~sched:(Scheduler.round_robin ())
      ~on_event:(fun ~time:_ _ -> incr count)
      st
  in
  Alcotest.(check int) "one event per step" 10 !count

let test_system_bad_inputs () =
  let cfg = WS.cfg ~n:2 ~m:2 in
  let wiring = Wiring.identity ~n:2 ~m:2 in
  Alcotest.check_raises "wrong input count"
    (Invalid_argument "System.init: wrong number of inputs") (fun () ->
      ignore (Sys.init ~cfg ~wiring ~inputs:[| 1 |]));
  let wiring3 = Wiring.identity ~n:3 ~m:2 in
  Alcotest.check_raises "wrong wiring"
    (Invalid_argument "System.init: wiring has wrong number of processors")
    (fun () -> ignore (Sys.init ~cfg ~wiring:wiring3 ~inputs:[| 1; 2 |]))

(* --- Trace / covering metrics ---------------------------------------------- *)

module Trace = Anonmem.Trace.Make (WS)

let test_trace_records_all_events () =
  let cfg = WS.cfg ~n:2 ~m:2 in
  let wiring = Wiring.identity ~n:2 ~m:2 in
  let st = Sys.init ~cfg ~wiring ~inputs:[| 1; 2 |] in
  let tr = Trace.create () in
  let _ =
    Sys.run ~max_steps:30 ~sched:(Scheduler.round_robin ())
      ~on_event:(Trace.on_event tr) st
  in
  Alcotest.(check int) "30 events" 30 (Trace.length tr);
  let c = Trace.covering tr in
  Alcotest.(check int) "reads + writes = steps" 30
    (c.Trace.reads + c.Trace.writes)

let test_trace_covering_lockstep () =
  (* In the lockstep covering pattern, p1 overwrites p0's register every
     round before anyone reads it: half of p0's writes are lost. *)
  let cfg = WS.cfg ~n:2 ~m:2 in
  let wiring = Wiring.identity ~n:2 ~m:2 in
  let st = Sys.init ~cfg ~wiring ~inputs:[| 1; 2 |] in
  let tr = Trace.create () in
  let _ =
    Sys.run ~max_steps:120 ~sched:(Scheduler.round_robin ())
      ~on_event:(Trace.on_event tr) st
  in
  let c = Trace.covering tr in
  Alcotest.(check bool)
    (Printf.sprintf "many overwrites (%d) and lost writes (%d)"
       c.Trace.overwrites c.Trace.lost_writes)
    true
    (c.Trace.overwrites > 10 && c.Trace.lost_writes > 10)

let test_trace_solo_no_overwrites () =
  let cfg = WS.cfg ~n:2 ~m:2 in
  let wiring = Wiring.identity ~n:2 ~m:2 in
  let st = Sys.init ~cfg ~wiring ~inputs:[| 1; 2 |] in
  let tr = Trace.create () in
  let _ =
    Sys.run ~max_steps:60 ~sched:(Scheduler.solo 0) ~on_event:(Trace.on_event tr)
      st
  in
  let c = Trace.covering tr in
  Alcotest.(check int) "no cross-processor overwrites" 0 c.Trace.overwrites

let test_trace_table_renders () =
  let cfg = WS.cfg ~n:2 ~m:2 in
  let wiring = Wiring.identity ~n:2 ~m:2 in
  let st = Sys.init ~cfg ~wiring ~inputs:[| 1; 2 |] in
  let tr = Trace.create () in
  let _ =
    Sys.run ~max_steps:6 ~sched:(Scheduler.round_robin ())
      ~on_event:(Trace.on_event tr) st
  in
  let rendered = Repro_util.Text_table.render (Trace.to_table cfg tr) in
  Alcotest.(check int) "header + separator + 6 rows" 8
    (List.length (String.split_on_char '\n' (String.trim rendered)))

let () =
  Alcotest.run "anonmem"
    [
      ( "wiring",
        [
          Alcotest.test_case "routing" `Quick test_wiring_routing;
          Alcotest.test_case "validation" `Quick test_wiring_validation;
          Alcotest.test_case "enumeration" `Quick test_wiring_enumerate;
          Alcotest.test_case "random deterministic" `Quick
            test_wiring_random_deterministic;
          Alcotest.test_case "symmetry reduction sound" `Quick
            test_wiring_symmetry_reduction_sound;
          QCheck_alcotest.to_alcotest prop_wiring_enumerate_counts;
          QCheck_alcotest.to_alcotest prop_wiring_enumerate_distinct;
        ] );
      ( "scheduler",
        [
          Alcotest.test_case "round-robin fair" `Quick test_round_robin_fair;
          Alcotest.test_case "round-robin skips halted" `Quick
            test_round_robin_skips_halted;
          Alcotest.test_case "solo" `Quick test_solo;
          Alcotest.test_case "script" `Quick test_script;
          Alcotest.test_case "cyclic script" `Quick test_script_cycle;
          Alcotest.test_case "cyclic script all halted" `Quick
            test_script_cycle_all_halted;
          Alcotest.test_case "script then cycle" `Quick test_script_then_cycle;
          Alcotest.test_case "script then cycle halting" `Quick
            test_script_then_cycle_halting;
          Alcotest.test_case "random picks enabled" `Quick
            test_random_scheduler_picks_enabled;
          Alcotest.test_case "recorded" `Quick test_recorded_scheduler;
          Alcotest.test_case "crash" `Quick test_crash_scheduler;
        ] );
      ( "system",
        [
          Alcotest.test_case "write routes through wiring" `Quick
            test_system_write_routes_through_wiring;
          Alcotest.test_case "read records writer" `Quick test_system_read_from_writer;
          Alcotest.test_case "pure step leaves original" `Quick
            test_system_pure_step_no_mutation;
          Alcotest.test_case "run bounded" `Quick test_system_run_max_steps;
          Alcotest.test_case "event callback" `Quick test_system_event_callback;
          Alcotest.test_case "init validation" `Quick test_system_bad_inputs;
        ] );
      ( "trace",
        [
          Alcotest.test_case "records all events" `Quick test_trace_records_all_events;
          Alcotest.test_case "covering in lockstep" `Quick test_trace_covering_lockstep;
          Alcotest.test_case "solo has no overwrites" `Quick
            test_trace_solo_no_overwrites;
          Alcotest.test_case "table rendering" `Quick test_trace_table_renders;
        ] );
    ]
