test/test_stable_views.mli:
