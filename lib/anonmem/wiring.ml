open Repro_util

type t = { perms : Permutation.t array; inverses : Permutation.t array }

let make perms =
  let n = Array.length perms in
  if n = 0 then invalid_arg "Wiring.make: no processors";
  let m = Permutation.size perms.(0) in
  Array.iter
    (fun p ->
      if Permutation.size p <> m then
        invalid_arg "Wiring.make: permutations of unequal size")
    perms;
  { perms = Array.copy perms; inverses = Array.map Permutation.inverse perms }

let identity ~n ~m = make (Array.init n (fun _ -> Permutation.identity m))
let random rng ~n ~m = make (Array.init n (fun _ -> Permutation.random rng m))
let of_lists lists = make (Array.of_list (List.map Permutation.of_list lists))
let processors t = Array.length t.perms
let registers t = Permutation.size t.perms.(0)
let phys t ~p i = Permutation.apply t.perms.(p) i
let local_of_phys t ~p r = Permutation.apply t.inverses.(p) r
let perm t ~p = t.perms.(p)

let enumerate ~n ~m ~fix_first =
  let all = Permutation.enumerate m in
  let choices p = if fix_first && p = 0 then [ Permutation.identity m ] else all in
  let rec go p =
    if p = n then [ [] ]
    else
      List.concat_map
        (fun perm -> List.map (fun rest -> perm :: rest) (go (p + 1)))
        (choices p)
  in
  List.map (fun perms -> make (Array.of_list perms)) (go 0)

let enumerate_classes ~n ~m =
  (* Orbit key seen from pivot [j]: renormalize so that [j]'s wiring is
     the identity (compose everything with [sigma_j^{-1}], a global
     register renaming) and forget the order of the other processors.
     Two normalized wirings are processor-relabelling-equivalent iff
     some pivots give them the same key; the canonical representative
     is the tuple that spells out its own minimal key in order. *)
  let key_at perms j =
    let inv = Permutation.inverse perms.(j) in
    let rest = ref [] in
    for k = Array.length perms - 1 downto 0 do
      if k <> j then
        rest := Permutation.to_list (Permutation.compose inv perms.(k)) :: !rest
    done;
    List.sort compare !rest
  in
  List.filter
    (fun t ->
      let own = List.map Permutation.to_list (List.tl (Array.to_list t.perms)) in
      own = key_at t.perms 0
      && List.for_all
           (fun j -> compare own (key_at t.perms j) <= 0)
           (List.init (n - 1) (fun j -> j + 1)))
    (enumerate ~n ~m ~fix_first:true)

let automorphisms t ~classes =
  let n = processors t and m = registers t in
  if Array.length classes <> n then
    invalid_arg "Wiring.automorphisms: classes array has wrong arity";
  let class_preserving pi =
    let ok = ref true in
    for p = 0 to n - 1 do
      if classes.(Permutation.apply pi p) <> classes.(p) then ok := false
    done;
    !ok
  in
  List.filter_map
    (fun pi ->
      if not (class_preserving pi) then None
      else
        (* The register permutation is forced: moving processor 0's slot to
           processor [pi 0] rewires reads of physical register sigma_0(i) to
           sigma_{pi 0}(i), so rho = sigma_{pi 0} o sigma_0^{-1}; the pair is
           an automorphism only if the same rho reconciles every processor. *)
        let rho =
          Permutation.compose
            t.perms.(Permutation.apply pi 0)
            t.inverses.(0)
        in
        let consistent = ref true in
        for p = 0 to n - 1 do
          if
            not
              (Permutation.equal
                 t.perms.(Permutation.apply pi p)
                 (Permutation.compose rho t.perms.(p)))
          then consistent := false
        done;
        if !consistent then Some (pi, rho) else None)
    (Permutation.enumerate n)
  |> fun syms ->
  assert (
    List.exists
      (fun (pi, rho) ->
        Permutation.equal pi (Permutation.identity n)
        && Permutation.equal rho (Permutation.identity m))
      syms);
  syms

let equal a b =
  Array.length a.perms = Array.length b.perms
  && Array.for_all2 Permutation.equal a.perms b.perms

let pp ppf t =
  Fmt.pf ppf "[%a]"
    Fmt.(array ~sep:(any "; ") Permutation.pp)
    t.perms
