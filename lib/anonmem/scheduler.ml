open Repro_util

type t = { name : string; pick : time:int -> enabled:int list -> int option }

let name t = t.name
let pick t ~time ~enabled = t.pick ~time ~enabled

let round_robin () =
  let cursor = ref 0 in
  let pick ~time:_ ~enabled =
    match enabled with
    | [] -> None
    | _ ->
        (* Step the first enabled processor at or after the cursor,
           wrapping; then advance past it.  This is fair: every enabled
           processor is chosen at least once every full turn of the
           cursor. *)
        let after = List.filter (fun p -> p >= !cursor) enabled in
        let chosen = match after with p :: _ -> p | [] -> List.hd enabled in
        cursor := chosen + 1;
        Some chosen
  in
  { name = "round-robin"; pick }

let random rng =
  let pick ~time:_ ~enabled =
    match enabled with [] -> None | l -> Some (Rng.pick rng l)
  in
  { name = "random"; pick }

let solo p =
  let pick ~time:_ ~enabled = if List.mem p enabled then Some p else None in
  { name = Printf.sprintf "solo(%d)" p; pick }

let script ?(cycle = false) pids =
  let len = List.length pids in
  let remaining = ref pids in
  let pick ~time:_ ~enabled =
    (* Bound the scan so a cyclic script whose processors have all halted
       terminates the run instead of spinning. *)
    let rec go scanned =
      if scanned > len then None
      else
        match !remaining with
        | [] ->
            if cycle && pids <> [] then begin
              remaining := pids;
              go scanned
            end
            else None
        | p :: rest ->
            remaining := rest;
            if List.mem p enabled then Some p else go (scanned + 1)
    in
    go 0
  in
  { name = (if cycle then "script(cyclic)" else "script"); pick }

let script_then_cycle ~prefix ~cycle =
  let head = script prefix in
  let tail = script ~cycle:true cycle in
  let in_prefix = ref true in
  let pick ~time ~enabled =
    if !in_prefix then
      match head.pick ~time ~enabled with
      | Some p -> Some p
      | None ->
          in_prefix := false;
          tail.pick ~time ~enabled
    else tail.pick ~time ~enabled
  in
  { name = "script-then-cycle"; pick }

let recorded t =
  let picks = ref [] in
  let pick ~time ~enabled =
    match t.pick ~time ~enabled with
    | Some p ->
        picks := p :: !picks;
        Some p
    | None -> None
  in
  ({ name = t.name ^ "+recorded"; pick }, fun () -> List.rev !picks)

let crash ~crash_at t =
  let alive_at time p =
    match if p < Array.length crash_at then crash_at.(p) else None with
    | Some c -> time < c
    | None -> true
  in
  (* No crash can have fired before the earliest crash time, so until then
     the filter below would rebuild [enabled] unchanged on every pick. *)
  let first_crash =
    Array.fold_left
      (fun acc c -> match c with Some c -> min acc c | None -> acc)
      max_int crash_at
  in
  let pick ~time ~enabled =
    if time < first_crash then t.pick ~time ~enabled
    else
      match List.filter (alive_at time) enabled with
      | [] -> None
      | alive -> t.pick ~time ~enabled:alive
  in
  { name = t.name ^ "+crashes"; pick }

let crash_faults ~plan t = crash ~crash_at:(Fault.crash_stops plan) t

let fn ~name pick = { name; pick }
