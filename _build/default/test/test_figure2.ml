(* The Figure-2 reproduction: the generated execution must match the
   paper's table row for row, continue periodically forever, and the
   5-processor extension must realize both punchlines (naive rules fooled;
   the level mechanism resists). *)

open Repro_util
open Analysis.Figure2

let iset = Alcotest.testable (Fmt.of_to_string Iset.to_string) Iset.equal

let check_rows_equal msg (a : row) (b : row) =
  List.iter2 (Alcotest.check iset (msg ^ " registers")) a.registers b.registers;
  List.iter2 (Alcotest.check iset (msg ^ " views")) a.views b.views

let test_matches_paper_table () =
  let rows = generate () in
  Alcotest.(check int) "13 rows" 13 (List.length rows);
  List.iteri
    (fun i (g, e) -> check_rows_equal (Printf.sprintf "row %d" (i + 1)) g e)
    (List.combine rows expected_rows)

let test_cycle_repeats_forever () =
  (* actions 5..13 repeat: rows k and k+9 agree for all k >= 4, over 4
     full periods *)
  let rows = Array.of_list (generate ~actions:40 ()) in
  for k = 4 to 30 do
    check_rows_equal (Printf.sprintf "row %d vs %d" (k + 1) (k + 10)) rows.(k)
      rows.(k + 9)
  done

let test_incomparable_views_persist () =
  let rows = generate ~actions:31 () in
  let last : row = List.nth rows 30 in
  let v2 = List.nth last.views 1 and v3 = List.nth last.views 2 in
  Alcotest.check iset "p2 stuck at {1,2}" (Iset.of_list [ 1; 2 ]) v2;
  Alcotest.check iset "p3 stuck at {1,3}" (Iset.of_list [ 1; 3 ]) v3;
  Alcotest.(check bool) "incomparable" false (Iset.comparable v2 v3)

let test_labels_match_paper () =
  let rows = generate () in
  Alcotest.(check string) "row 1 label" "p1 writes twice and ends with a scan"
    (List.nth rows 0).action;
  Alcotest.(check string) "row 3 label" "p3 overwrites p2 then scans"
    (List.nth rows 2).action;
  Alcotest.(check string) "row 13 label" "p1 overwrites p3 then scans"
    (List.nth rows 12).action

let test_extension_write_scan_illusion () =
  let module E = Write_scan_ext in
  let cfg = Algorithms.Write_scan.cfg ~n:5 ~m:3 in
  let cycles = 30 in
  let r = E.run ~cfg ~cycles () in
  let view q = Algorithms.Write_scan.view_of_local r.E.state.E.Sys.locals.(q) in
  Alcotest.check iset "p sees {1,2}" (Iset.of_list [ 1; 2 ]) (view 3);
  Alcotest.check iset "p' sees {1,3}" (Iset.of_list [ 1; 3 ]) (view 4);
  (* base processors undisturbed *)
  Alcotest.check iset "p1 still {1}" (Iset.of_list [ 1 ]) (view 0);
  Alcotest.check iset "p2 still {1,2}" (Iset.of_list [ 1; 2 ]) (view 1);
  Alcotest.check iset "p3 still {1,3}" (Iset.of_list [ 1; 3 ]) (view 2);
  (* the killer: unboundedly many consecutive clean scans.  p and p'
     complete roughly three scans every four cycles (the rotating write
     target occasionally has to wait a cycle for its window). *)
  let s3 = E.scan_summary r.E.extra_events.(3) in
  let s4 = E.scan_summary r.E.extra_events.(4) in
  Alcotest.(check bool)
    (Printf.sprintf "p clean streak large (%d)" s3.E.final_clean_streak)
    true
    (s3.E.final_clean_streak >= (3 * cycles / 4) - 4);
  Alcotest.(check bool)
    (Printf.sprintf "p' clean streak large (%d)" s4.E.final_clean_streak)
    true
    (s4.E.final_clean_streak >= (3 * cycles / 4) - 4)

let test_extension_streak_scales_with_cycles () =
  let module E = Write_scan_ext in
  let cfg = Algorithms.Write_scan.cfg ~n:5 ~m:3 in
  let streak cycles =
    let r = E.run ~cfg ~cycles () in
    (E.scan_summary r.E.extra_events.(3)).E.final_clean_streak
  in
  let s10 = streak 10 and s40 = streak 40 in
  Alcotest.(check bool)
    (Printf.sprintf "streak grows with cycles (%d -> %d)" s10 s40)
    true
    (s40 >= s10 + 20)

let test_extension_snapshot_resists () =
  let module S = Snapshot_ext in
  let cfg = Algorithms.Snapshot.cfg ~n:5 ~m:3 in
  (* Early window, while the repeating pattern is intact: p and p' are
     pinned at level <= 1 (they read the churners' level-0 records) and
     cannot terminate, exactly as Section 5.1 argues. *)
  let early = S.run ~cfg ~cycles:4 () in
  List.iter
    (fun q ->
      let l = early.S.state.S.Sys.locals.(q) in
      Alcotest.(check bool) "p/p' not terminated while pattern holds" true
        (Algorithms.Snapshot.output cfg l = None);
      Alcotest.(check bool) "level pinned low" true
        (Algorithms.Snapshot.level_of_local l <= 1))
    [ 3; 4 ];
  (* Long run: processor 1 (unique source view {1}) reaches level N and
     terminates with {1}, breaking the pattern; every output the system
     ever produces remains containment-consistent. *)
  let r = S.run ~cfg ~cycles:40 () in
  let locals = r.S.state.S.Sys.locals in
  (match Algorithms.Snapshot.output cfg locals.(0) with
  | Some o -> Alcotest.check iset "p1 output {1}" (Iset.of_list [ 1 ]) o
  | None -> Alcotest.fail "p1 should have terminated (it breaks the pattern)");
  let outs =
    List.filter_map
      (fun q -> Algorithms.Snapshot.output cfg locals.(q))
      [ 0; 1; 2; 3; 4 ]
  in
  List.iteri
    (fun i a ->
      List.iteri
        (fun j b ->
          if i < j then
            Alcotest.(check bool) "outputs comparable" true (Iset.comparable a b))
        outs)
    outs

let test_extension_rejects_bad_cfg () =
  let module E = Write_scan_ext in
  let cfg = Algorithms.Write_scan.cfg ~n:4 ~m:3 in
  Alcotest.check_raises "needs 5 processors"
    (Invalid_argument "Figure2.Extension.run: cfg must be 5 processors, 3 registers")
    (fun () -> ignore (E.run ~cfg ~cycles:1 ()))

let () =
  Alcotest.run "figure2"
    [
      ( "base",
        [
          Alcotest.test_case "matches the paper's table" `Quick
            test_matches_paper_table;
          Alcotest.test_case "cycle repeats forever" `Quick test_cycle_repeats_forever;
          Alcotest.test_case "incomparable views persist" `Quick
            test_incomparable_views_persist;
          Alcotest.test_case "action labels" `Quick test_labels_match_paper;
        ] );
      ( "extension",
        [
          Alcotest.test_case "p and p' fed incomparable sets" `Quick
            test_extension_write_scan_illusion;
          Alcotest.test_case "clean streak scales with cycles" `Quick
            test_extension_streak_scales_with_cycles;
          Alcotest.test_case "snapshot levels resist the adversary" `Quick
            test_extension_snapshot_resists;
          Alcotest.test_case "configuration validation" `Quick
            test_extension_rejects_bad_cfg;
        ] );
    ]
