lib/util/sorted_set.ml: Fmt List
