(** The stable-view graph of Definition 4.3: vertices are (distinct) stable
    views, with an edge from [V1] to [V2] whenever [V1 ⊂ V2].

    Because strict containment is transitive and irreflexive the graph is
    always a DAG; the substance of Theorem 4.8 is that it has a {e unique
    source} (a unique minimal view), which moreover is contained in every
    other stable view.  {!unique_source} decides this. *)

open Repro_util

type t = { views : Iset.t array; graph : Digraph.t }

let of_views views =
  let distinct =
    List.fold_left
      (fun acc v -> if List.exists (Iset.equal v) acc then acc else v :: acc)
      [] views
    |> List.rev |> Array.of_list
  in
  let g = Digraph.create (Array.length distinct) in
  Array.iteri
    (fun i vi ->
      Array.iteri
        (fun j vj -> if i <> j && Iset.strict_subset vi vj then Digraph.add_edge g i j)
        distinct)
    distinct;
  { views = distinct; graph = g }

let views t = Array.to_list t.views
let vertex_count t = Array.length t.views
let edge_count t = Digraph.edge_count t.graph
let is_dag t = Digraph.is_acyclic t.graph

let sources t = List.map (fun i -> t.views.(i)) (Digraph.sources t.graph)

(** [Some v] when the graph has exactly one source [v]; Theorem 4.8
    guarantees this for the stable views of any infinite execution of the
    write–scan loop.  The companion fact — the source is contained in every
    stable view — follows from uniqueness and is rechecked here
    defensively. *)
let unique_source t =
  match sources t with
  | [ v ] when Array.for_all (fun w -> Iset.subset v w) t.views -> Some v
  | _ -> None

let satisfies_theorem_4_8 t = is_dag t && unique_source t <> None

let pp ppf t =
  Fmt.pf ppf "@[<v>vertices:@,%a@,edges: %d, sources: %a@]"
    Fmt.(list ~sep:cut (fun ppf v -> Fmt.pf ppf "  %a" Iset.pp_set v))
    (views t) (edge_count t)
    Fmt.(list ~sep:comma Iset.pp_set)
    (sources t)
