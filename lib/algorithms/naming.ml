(** Mutex-based desanonymization for fully-anonymous read/write memory
    (after Godard–Imbs–Raynal–Taubenfeld, arXiv:1903.12204): distinct
    names in [1..n] are assigned on top of anonymous registers by racing
    the {!Rt_mutex} competition and taking the next free name inside the
    critical section.

    Register values pair the mutex claim ([None] or [Some id]) with a
    {!Named_memory} ledger.  Every write a processor performs — claim,
    release, flood — carries everything it knows; every read merges the
    register's ledger into the reader's knowledge.  The winner of the
    mutex computes its name as one past the largest name it has seen
    (its winning collect read all m registers, so it knows every name
    assigned so far), then {e floods}: it writes the extended ledger to
    all m registers, releasing its claims in the same writes, and halts.
    Flooding before unlocking is what hands the next winner a complete
    ledger: each critical section's knowledge contains its predecessors',
    so halt-time views form a containment chain — the named single-writer
    substrate of {!Named_memory}, on which the classic collect/snapshot
    oracle judges the outputs.

    The feasibility boundary is inherited from the mutex unchanged
    (ledgers ride inside values, so all m registers stay in competition):
    clean iff m is coprime to every k in [2..n] and m >= 3.

    The [forgetful_flood] variant floods the {e pre}-entry ledger — the
    winner's own cell never reaches the memory, so a later winner computes
    the same name: the planted duplicate-name bug of the differential
    matrix. *)

type cfg = { n : int; m : int; forgetful_flood : bool }

let cfg ~n ~m =
  if n < 1 || m < 1 then invalid_arg "Naming.cfg";
  { n; m; forgetful_flood = false }

(** The planted-bug variant: the flood omits the winner's own cell. *)
let cfg_forgetful ~n ~m = { (cfg ~n ~m) with forgetful_flood = true }

type value = { owner : int option; ledger : Named_memory.t }
type input = int

type output = { name : int; view : Named_memory.t }
(** The acquired name and the ledger known at halt time — the processor's
    collect over the named single-writer cells. *)

type phase =
  | Collecting of { pos : int; mine : int; others : (int * int) list; first_free : int }
      (** Observably-equivalent collect compression, exactly as in
          {!Rt_mutex.Collecting}: [mine] the bitmask of indices owned by
          me, [others] per-rival ownership counts (ascending ids),
          [first_free] the lowest unowned index read ([-1] if none yet).
          Ledgers are merged into [know] eagerly as before. *)
  | Claiming of { target : int }
  | Releasing of { mine : int list }  (** never [] *)
  | Flooding of { pos : int; name : int }
      (** critical section: write the extended ledger everywhere,
          releasing the lock in the same writes *)
  | Done of int  (** the acquired name *)

type local = { id : int; know : Named_memory.t; phase : phase }

let name = "naming"
let processors c = c.n
let registers c = c.m
let register_init _ = { owner = None; ledger = Named_memory.empty }
let fresh_collect =
  Collecting { pos = 0; mine = 0; others = []; first_free = -1 }

let init _ id = { id; know = Named_memory.empty; phase = fresh_collect }
let halted _ l = match l.phase with Done _ -> true | _ -> false

(** Whether a processor holds the naming critical section. *)
let in_cs l = match l.phase with Flooding _ -> true | _ -> false

let next _ l =
  match l.phase with
  | Collecting { pos; _ } -> Some (Anonmem.Protocol.Read pos)
  | Claiming { target } ->
      Some (Anonmem.Protocol.Write (target, { owner = Some l.id; ledger = l.know }))
  | Releasing { mine = r :: _ } ->
      Some (Anonmem.Protocol.Write (r, { owner = None; ledger = l.know }))
  | Releasing { mine = [] } -> invalid_arg "Naming.next: empty release"
  | Flooding { pos; _ } ->
      Some (Anonmem.Protocol.Write (pos, { owner = None; ledger = l.know }))
  | Done _ -> None

let decide c l ~mine ~others ~first_free =
  let mine_count = Rt_mutex.popcount mine in
  if mine_count = c.m then
    let name = Named_memory.next_name l.know in
    let know =
      if c.forgetful_flood then l.know
      else Named_memory.add l.know ~name ~owner:l.id
    in
    { l with know; phase = Flooding { pos = 0; name } }
  else if List.exists (fun (_, k) -> k > mine_count) others then
    match Rt_mutex.indices_of_mask ~m:c.m mine with
    | [] -> { l with phase = fresh_collect }
    | mine -> { l with phase = Releasing { mine } }
  else if first_free >= 0 then { l with phase = Claiming { target = first_free } }
  else { l with phase = fresh_collect }

let apply_read c l ~reg v =
  match l.phase with
  | Collecting { pos; mine; others; first_free } ->
      if reg <> pos then invalid_arg "Naming.apply_read: wrong register";
      let l = { l with know = Named_memory.merge l.know v.ledger } in
      let mine, others, first_free =
        match v.owner with
        | None -> (mine, others, if first_free < 0 then pos else first_free)
        | Some q when q = l.id -> (mine lor (1 lsl pos), others, first_free)
        | Some q -> (mine, Rt_mutex.bump q others, first_free)
      in
      if pos + 1 < c.m then
        { l with phase = Collecting { pos = pos + 1; mine; others; first_free } }
      else decide c l ~mine ~others ~first_free
  | Claiming _ | Releasing _ | Flooding _ | Done _ ->
      invalid_arg "Naming.apply_read: not collecting"

let apply_write c l =
  match l.phase with
  | Claiming _ -> { l with phase = fresh_collect }
  | Releasing { mine = _ :: rest } ->
      if rest = [] then { l with phase = fresh_collect }
      else { l with phase = Releasing { mine = rest } }
  | Flooding { pos; name } ->
      if pos + 1 < c.m then { l with phase = Flooding { pos = pos + 1; name } }
      else { l with phase = Done name }
  | Collecting _ | Releasing { mine = [] } | Done _ ->
      invalid_arg "Naming.apply_write: not writing"

let output _ l =
  match l.phase with
  | Done name -> Some { name; view = l.know }
  | _ -> None

(* Flat twin.  A ledger flattens to a mask word (bit [b] = name [b + 1]
   present) plus a row of per-name owners, valid where the mask is set;
   merge is a set-bit walk taking the minimum owner on collisions, and
   [next_name] is one past the mask's bit length.  Registers carry such a
   row pair plus an owner int ([-1] = unclaimed); every write blits the
   writer's knowledge row in, exactly as every boxed write carries
   [l.know].  The mutex-competition scratch (rival count rows under a
   touched-identity mask, [mine], [first_free]) is the {!Rt_mutex} flat
   compression unchanged.  Names live in [1..Bits.max_width]; a winner
   about to mint a name past the window raises {!Anonmem.Protocol.Fallback}
   before mutating anything, so the machine is {e not} total — reachable
   runs never get there (at most one name per processor and n fits the
   window), but an adversarial initial state could. *)
let flat (c : cfg) ~(phys : int array) ~(inputs : int array)
    ~(registers : value array) ~(locals : local array) :
    value Anonmem.Protocol.flat option =
  let n = c.n and m = c.m in
  let module Bits = Repro_util.Bits in
  let cap = Bits.max_width in
  let id_ok id = 0 <= id && id < cap in
  let ledger_ok (led : Named_memory.t) =
    List.for_all (fun (cl : Named_memory.cell) -> 1 <= cl.name && cl.name <= cap) led
  in
  let value_ok (v : value) =
    (match v.owner with None -> true | Some id -> id_ok id) && ledger_ok v.ledger
  in
  let phase_ok = function
    | Collecting { others; _ } -> List.for_all (fun (q, _) -> id_ok q) others
    | Releasing { mine } -> mine <> []
    | _ -> true
  in
  let local_ok l = id_ok l.id && ledger_ok l.know && phase_ok l.phase in
  if n > Bits.max_width || m > Bits.max_width
     || not (Array.for_all id_ok inputs)
     || not (Array.for_all value_ok registers)
     || not (Array.for_all local_ok locals)
  then None
  else begin
    (* Row encoding of a ledger into [(mask, own.(base + b))]. *)
    let enc_row (led : Named_memory.t) own base =
      List.fold_left
        (fun mask (cl : Named_memory.cell) ->
          own.(base + cl.name - 1) <- cl.owner;
          mask lor (1 lsl (cl.name - 1)))
        0 led
    in
    let dec_row mask own base : Named_memory.t =
      List.map
        (fun b -> { Named_memory.name = b + 1; owner = own.(base + b) })
        (Bits.to_list mask)
    in
    let rlmask = Array.make m 0 in
    let rlown = Array.make (m * cap) 0 in
    let rownr = Array.make m (-1) in
    Array.iteri
      (fun r (v : value) ->
        rlmask.(r) <- enc_row v.ledger rlown (r * cap);
        rownr.(r) <- (match v.owner with None -> -1 | Some id -> id))
      registers;
    let plmask = Array.copy rlmask in
    let plown = Array.copy rlown in
    let pownr = Array.copy rownr in
    let dirty = ref 0 in
    let lid = Array.map (fun l -> l.id) locals in
    let kmask = Array.make n 0 in
    let kown = Array.make (n * cap) 0 in
    let lstate = Array.make n 0 in
    let larg = Array.make n 0 in
    let lname = Array.make n 0 in
    let lmine = Array.make n 0 in
    let lff = Array.make n (-1) in
    let cnt = Array.make (n * cap) 0 in
    let ltouch = Array.make n 0 in
    let lmaxr = Array.make n 0 in
    Array.iteri
      (fun p l ->
        kmask.(p) <- enc_row l.know kown (p * cap);
        match l.phase with
        | Collecting { pos; mine; others; first_free } ->
            lstate.(p) <- 0;
            larg.(p) <- pos;
            lmine.(p) <- mine;
            lff.(p) <- first_free;
            List.iter
              (fun (q, k) ->
                cnt.((p * cap) + q) <- k;
                ltouch.(p) <- ltouch.(p) lor (1 lsl q);
                if k > lmaxr.(p) then lmaxr.(p) <- k)
              others
        | Claiming { target } ->
            lstate.(p) <- 1;
            larg.(p) <- target
        | Releasing { mine } ->
            lstate.(p) <- 2;
            lmine.(p) <-
              List.fold_left (fun acc i -> acc lor (1 lsl i)) 0 mine
        | Flooding { pos; name } ->
            lstate.(p) <- 3;
            larg.(p) <- pos;
            lname.(p) <- name
        | Done name ->
            lstate.(p) <- 4;
            larg.(p) <- name)
      locals;
    let fresh p =
      let rec clear mask =
        if mask <> 0 then begin
          cnt.((p * cap) + Bits.ctz mask) <- 0;
          clear (mask land (mask - 1))
        end
      in
      clear ltouch.(p);
      ltouch.(p) <- 0;
      lmaxr.(p) <- 0;
      lmine.(p) <- 0;
      lff.(p) <- -1;
      lstate.(p) <- 0;
      larg.(p) <- 0
    in
    let halted p = lstate.(p) = 4 in
    let peek p =
      match lstate.(p) with
      | 0 -> phys.((p * m) + larg.(p)) lsl 1
      | 1 -> (phys.((p * m) + larg.(p)) lsl 1) lor 1
      | 2 -> (phys.((p * m) + Bits.ctz lmine.(p)) lsl 1) lor 1
      | 3 -> (phys.((p * m) + larg.(p)) lsl 1) lor 1
      | _ -> -1
    in
    let decide p =
      let mine_count = Bits.popcount lmine.(p) in
      if mine_count = m then begin
        (* [next_name] = bit length + 1; window overflow was pre-checked
           (Fallback) before this step mutated anything. *)
        let rec bitlen x acc = if x = 0 then acc else bitlen (x lsr 1) (acc + 1) in
        let name = bitlen kmask.(p) 0 + 1 in
        if not c.forgetful_flood then begin
          (* The name is fresh, so this is a plain insertion. *)
          kmask.(p) <- kmask.(p) lor (1 lsl (name - 1));
          kown.((p * cap) + name - 1) <- lid.(p)
        end;
        lstate.(p) <- 3;
        larg.(p) <- 0;
        lname.(p) <- name
      end
      else if lmaxr.(p) > mine_count then begin
        if lmine.(p) = 0 then fresh p
        else lstate.(p) <- 2 (* release worklist: the [lmine] mask *)
      end
      else if lff.(p) >= 0 then begin
        let target = lff.(p) in
        fresh p;
        lstate.(p) <- 1;
        larg.(p) <- target
      end
      else fresh p
    in
    (* A collect read of register [r] out of the given (current or stale)
       row view: merge the ledger into [know], then the ownership
       bookkeeping.  The Fallback pre-check comes first, before any
       mutation: would this read complete an all-mine collect whose
       merged knowledge already holds the window's last name? *)
    let do_read p r vmask vown vownr =
      let pos = larg.(p) in
      if
        pos + 1 = m
        && Bits.popcount
             (if vownr = lid.(p) then lmine.(p) lor (1 lsl pos)
              else lmine.(p))
           = m
        && (kmask.(p) lor vmask) lsr (cap - 1) <> 0
      then raise Anonmem.Protocol.Fallback;
      let rec merge bits =
        if bits <> 0 then begin
          let b = Bits.ctz bits in
          let ki = (p * cap) + b in
          let ow = vown.((r * cap) + b) in
          if kmask.(p) land (1 lsl b) <> 0 then begin
            if ow < kown.(ki) then kown.(ki) <- ow
          end
          else begin
            kmask.(p) <- kmask.(p) lor (1 lsl b);
            kown.(ki) <- ow
          end;
          merge (bits land (bits - 1))
        end
      in
      merge vmask;
      (if vownr < 0 then begin
         if lff.(p) < 0 then lff.(p) <- pos
       end
       else if vownr = lid.(p) then lmine.(p) <- lmine.(p) lor (1 lsl pos)
       else begin
         let idx = (p * cap) + vownr in
         let k = cnt.(idx) + 1 in
         cnt.(idx) <- k;
         ltouch.(p) <- ltouch.(p) lor (1 lsl vownr);
         if k > lmaxr.(p) then lmaxr.(p) <- k
       end);
      if pos + 1 < m then larg.(p) <- pos + 1 else decide p
    in
    let advance_write p =
      match lstate.(p) with
      | 1 -> fresh p
      | 2 ->
          lmine.(p) <- lmine.(p) land (lmine.(p) - 1);
          if lmine.(p) = 0 then fresh p
      | 3 ->
          if larg.(p) + 1 < m then larg.(p) <- larg.(p) + 1
          else begin
            lstate.(p) <- 4;
            larg.(p) <- lname.(p)
          end
      | _ -> invalid_arg "Naming.flat: not writing"
    in
    let copy_row src sbase dst dbase mask =
      let rec go bits =
        if bits <> 0 then begin
          let b = Bits.ctz bits in
          dst.(dbase + b) <- src.(sbase + b);
          go (bits land (bits - 1))
        end
      in
      go mask
    in
    let step p =
      match lstate.(p) with
      | 0 ->
          let r = phys.((p * m) + larg.(p)) in
          do_read p r rlmask.(r) rlown rownr.(r)
      | s ->
          let i = if s = 2 then Bits.ctz lmine.(p) else larg.(p) in
          let r = phys.((p * m) + i) in
          plmask.(r) <- rlmask.(r);
          copy_row rlown (r * cap) plown (r * cap) rlmask.(r);
          pownr.(r) <- rownr.(r);
          rlmask.(r) <- kmask.(p);
          copy_row kown (p * cap) rlown (r * cap) kmask.(p);
          rownr.(r) <- (if s = 1 then lid.(p) else -1);
          dirty := !dirty lor (1 lsl r);
          advance_write p
    in
    let step_stale p =
      if lstate.(p) <> 0 then invalid_arg "Naming.flat: not reading";
      let r = phys.((p * m) + larg.(p)) in
      do_read p r plmask.(r) plown pownr.(r)
    in
    let reset p =
      fresh p;
      lid.(p) <- inputs.(p);
      kmask.(p) <- 0
    in
    let dec_value r =
      {
        owner = (if rownr.(r) < 0 then None else Some rownr.(r));
        ledger = dec_row rlmask.(r) rlown (r * cap);
      }
    in
    let value r =
      if !dirty land (1 lsl r) <> 0 then dec_value r else registers.(r)
    in
    let sync () =
      List.iter
        (fun r -> registers.(r) <- dec_value r)
        (Bits.to_list !dirty);
      for p = 0 to n - 1 do
        let phase =
          match lstate.(p) with
          | 0 ->
              let others =
                List.map
                  (fun q -> (q, cnt.((p * cap) + q)))
                  (Bits.to_list ltouch.(p))
              in
              Collecting
                { pos = larg.(p); mine = lmine.(p); others; first_free = lff.(p) }
          | 1 -> Claiming { target = larg.(p) }
          | 2 -> Releasing { mine = Bits.to_list lmine.(p) }
          | 3 -> Flooding { pos = larg.(p); name = lname.(p) }
          | _ -> Done larg.(p)
        in
        locals.(p) <- { id = lid.(p); know = dec_row kmask.(p) kown (p * cap); phase }
      done
    in
    Some
      {
        Anonmem.Protocol.total = false;
        peek;
        step;
        step_omit = advance_write;
        step_stale;
        reset;
        halted;
        value;
        sync;
      }
  end

let pp_value _ ppf v =
  match v.owner with
  | None -> Fmt.pf ppf "-%a" Named_memory.pp v.ledger
  | Some id -> Fmt.pf ppf "%d%a" id Named_memory.pp v.ledger

let pp_output _ ppf o =
  Fmt.pf ppf "name=%d view=%a" o.name Named_memory.pp o.view

let pp_local _ ppf l =
  let phase ppf = function
    | Collecting { pos; _ } -> Fmt.pf ppf "collect@%d" pos
    | Claiming { target } -> Fmt.pf ppf "claim r%d" (target + 1)
    | Releasing { mine } ->
        Fmt.pf ppf "release %a" Fmt.(list ~sep:(any ",") int) mine
    | Flooding { pos; name } -> Fmt.pf ppf "CS:flood@%d name=%d" pos name
    | Done name -> Fmt.pf ppf "named %d" name
  in
  Fmt.pf ppf "{id=%d know=%a %a}" l.id Named_memory.pp l.know phase l.phase
