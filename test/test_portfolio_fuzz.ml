(* Fuzzing-side tests for the portfolio targets (rt_mutex, naming,
   weak_leader): campaign determinism across domain counts, clean
   campaigns on the sound protocols, shrunk counterexamples on the
   planted-bug variants (1-minimal, replayable), and the
   crash-during-naming regression — recovered processors re-enter the
   naming protocol and distinctness must survive their ghost ledger
   entries. *)

module H_mutex = Fuzzing.Harness.Make (Fuzzing.Targets.Rt_mutex)
module H_naming = Fuzzing.Harness.Make (Fuzzing.Targets.Naming)
module H_leader = Fuzzing.Harness.Make (Fuzzing.Targets.Weak_leader)

(* --- determinism across domain counts ------------------------------------ *)

let test_mutex_campaign_deterministic () =
  let report domains = H_mutex.campaign ~domains ~seed:11 ~iterations:300 () in
  let s1 = H_mutex.deterministic_summary ~key:"rt_mutex" (report 1) in
  Alcotest.(check string)
    "domains 2 = domains 1" s1
    (H_mutex.deterministic_summary ~key:"rt_mutex" (report 2));
  Alcotest.(check string)
    "domains 4 = domains 1" s1
    (H_mutex.deterministic_summary ~key:"rt_mutex" (report 4))

let test_naming_campaign_deterministic () =
  let report domains = H_naming.campaign ~domains ~seed:12 ~iterations:300 () in
  let s1 = H_naming.deterministic_summary ~key:"naming" (report 1) in
  Alcotest.(check string)
    "domains 2 = domains 1" s1
    (H_naming.deterministic_summary ~key:"naming" (report 2));
  Alcotest.(check string)
    "domains 4 = domains 1" s1
    (H_naming.deterministic_summary ~key:"naming" (report 4))

let test_leader_campaign_deterministic () =
  let report domains = H_leader.campaign ~domains ~seed:13 ~iterations:300 () in
  let s1 = H_leader.deterministic_summary ~key:"weak_leader" (report 1) in
  Alcotest.(check string)
    "domains 2 = domains 1" s1
    (H_leader.deterministic_summary ~key:"weak_leader" (report 2));
  Alcotest.(check string)
    "domains 4 = domains 1" s1
    (H_leader.deterministic_summary ~key:"weak_leader" (report 4))

(* --- clean campaigns ------------------------------------------------------ *)

let expect_clean key report =
  match report with
  | None -> ()
  | Some failure -> Alcotest.failf "%s: unexpected counterexample:@ %s" key failure

let test_sound_targets_clean () =
  expect_clean "rt_mutex"
    (Option.map
       (Fmt.str "%a" (H_mutex.pp_counterexample ~key:"rt_mutex"))
       (H_mutex.campaign ~seed:0 ~iterations:1_000 ()).Fuzzing.Harness
       .counterexample);
  expect_clean "naming"
    (Option.map
       (Fmt.str "%a" (H_naming.pp_counterexample ~key:"naming"))
       (H_naming.campaign ~seed:0 ~iterations:1_000 ()).Fuzzing.Harness
       .counterexample);
  expect_clean "weak_leader"
    (Option.map
       (Fmt.str "%a" (H_leader.pp_counterexample ~key:"weak_leader"))
       (H_leader.campaign ~seed:0 ~iterations:1_000 ()).Fuzzing.Harness
       .counterexample)

(* --- planted bugs: found, shrunk to 1-minimal, replayable ---------------- *)

module Eager_mutex_target : Fuzzing.Target.S = struct
  module P = Algorithms.Rt_mutex

  let cfg ~n ~m = Algorithms.Rt_mutex.cfg_eager ~n ~m
  let m_range = Fuzzing.Targets.Rt_mutex.m_range

  let check ~inputs ~participated ~outputs =
    Tasks.Mutex_task.check
      (Tasks.Outcome.make ~participated ~inputs ~outputs ())

  let step_budget ~n:_ ~m:_ = None
end

module H_eager = Fuzzing.Harness.Make (Eager_mutex_target)

module Majority_leader_target : Fuzzing.Target.S = struct
  module P = Algorithms.Weak_leader

  let cfg ~n ~m = Algorithms.Weak_leader.cfg_majority ~n ~m
  let m_range = Fuzzing.Targets.Weak_leader.m_range

  let check ~inputs ~participated ~outputs =
    Tasks.Leader_task.check
      (Tasks.Outcome.make ~participated ~inputs ~outputs ())

  (* Safety only: the planted bug is a uniqueness break, and mixing in
     budget failures would blur what the shrinker is minimizing. *)
  let step_budget ~n:_ ~m:_ = None
end

module H_majority = Fuzzing.Harness.Make (Majority_leader_target)

let shrunk_counterexample name (r : Fuzzing.Harness.report) =
  match r.Fuzzing.Harness.counterexample with
  | Some cex -> cex
  | None -> Alcotest.failf "%s: planted bug not found" name

module type VERDICT = sig
  val verdict_of_instance :
    Fuzzing.Harness.instance -> (unit, Tasks.Task_failure.t) result
end

let check_one_minimal_and_replayable name (module H : VERDICT)
    (cex : Fuzzing.Harness.counterexample) =
  let inst = cex.Fuzzing.Harness.instance in
  (* Replay: the shrunk instance still fails, with the same property. *)
  (match H.verdict_of_instance inst with
  | Error f ->
      Alcotest.(check string)
        (name ^ ": replay reproduces the property")
        (Tasks.Task_failure.property_name
           cex.Fuzzing.Harness.failure.Tasks.Task_failure.property)
        (Tasks.Task_failure.property_name f.Tasks.Task_failure.property)
  | Ok () -> Alcotest.failf "%s: shrunk instance passes on replay" name);
  (* 1-minimality: removing any single script step makes it pass. *)
  let script = Array.of_list inst.Fuzzing.Harness.script in
  Array.iteri
    (fun i _ ->
      let shorter =
        Array.to_list script |> List.filteri (fun j _ -> j <> i)
      in
      match
        H.verdict_of_instance { inst with Fuzzing.Harness.script = shorter }
      with
      | Error _ ->
          Alcotest.failf "%s: dropping step %d still fails — not 1-minimal"
            name i
      | Ok () -> ())
    script

let test_planted_eager_mutex_fuzzed () =
  let r = H_eager.campaign ~n_range:(2, 3) ~seed:3 ~iterations:4_000 () in
  let cex = shrunk_counterexample "eager mutex" r in
  Alcotest.(check string)
    "eager mutex: a mutual-exclusion failure" "mutual-exclusion"
    (Tasks.Task_failure.property_name
       cex.Fuzzing.Harness.failure.Tasks.Task_failure.property);
  check_one_minimal_and_replayable "eager mutex" (module H_eager) cex

let test_planted_majority_leader_fuzzed () =
  let r = H_majority.campaign ~n_range:(2, 3) ~seed:5 ~iterations:4_000 () in
  let cex = shrunk_counterexample "majority leader" r in
  Alcotest.(check string)
    "majority leader: a uniqueness failure" "leader-uniqueness"
    (Tasks.Task_failure.property_name
       cex.Fuzzing.Harness.failure.Tasks.Task_failure.property);
  check_one_minimal_and_replayable "majority leader" (module H_majority) cex

(* --- crash-during-naming regression --------------------------------------- *)

(* A crash-recover event is an amnesiac restart: the processor loses its
   local state (its half-written flood, its claimed registers) and
   re-enters the naming protocol from scratch on the same input.  Its
   abandoned ledger entry survives in memory as a ghost — later
   processors see it, extend past it, and names only grow.  Distinctness
   must survive any such plan; this campaign is the regression for the
   fault/naming composition (the halt predicate is name-dependent, and
   recovered processors re-enter naming). *)
let test_naming_survives_crash_recover () =
  List.iter
    (fun profile ->
      let r =
        H_naming.campaign ~fault_profile:profile ~seed:0 ~iterations:2_000 ()
      in
      match r.Fuzzing.Harness.counterexample with
      | None -> ()
      | Some cex ->
          Alcotest.failf "naming under %s broke:@ %a"
            (Fuzzing.Fault_gen.name profile)
            (H_naming.pp_counterexample ~key:"naming")
            cex)
    [ Fuzzing.Fault_gen.Crash_stop_only; Fuzzing.Fault_gen.Crash_recover ]

(* Mutual exclusion likewise: a crashed holder never unlocks (liveness is
   forfeit under crash-stop) but no interloper may enter. *)
let test_mutex_survives_crash_profiles () =
  List.iter
    (fun profile ->
      let r =
        H_mutex.campaign ~fault_profile:profile ~seed:0 ~iterations:2_000 ()
      in
      match r.Fuzzing.Harness.counterexample with
      | None -> ()
      | Some cex ->
          Alcotest.failf "rt_mutex under %s broke:@ %a"
            (Fuzzing.Fault_gen.name profile)
            (H_mutex.pp_counterexample ~key:"rt_mutex")
            cex)
    [ Fuzzing.Fault_gen.Crash_stop_only; Fuzzing.Fault_gen.Crash_recover ]

let () =
  Alcotest.run "portfolio-fuzz"
    [
      ( "determinism",
        [
          Alcotest.test_case "rt_mutex summary, domains 1/2/4" `Quick
            test_mutex_campaign_deterministic;
          Alcotest.test_case "naming summary, domains 1/2/4" `Quick
            test_naming_campaign_deterministic;
          Alcotest.test_case "weak_leader summary, domains 1/2/4" `Quick
            test_leader_campaign_deterministic;
        ] );
      ( "clean-campaigns",
        [
          Alcotest.test_case "sound targets stay clean" `Quick
            test_sound_targets_clean;
        ] );
      ( "planted-bugs",
        [
          Alcotest.test_case "eager mutex: shrunk + replayable" `Quick
            test_planted_eager_mutex_fuzzed;
          Alcotest.test_case "majority leader: shrunk + replayable" `Quick
            test_planted_majority_leader_fuzzed;
        ] );
      ( "fault-composition",
        [
          Alcotest.test_case "naming survives crash/recover" `Quick
            test_naming_survives_crash_recover;
          Alcotest.test_case "mutex survives crash/recover" `Quick
            test_mutex_survives_crash_profiles;
        ] );
    ]
