(** Schedulers: the asynchronous adversary deciding which processor takes
    the next step.

    A scheduler is a (possibly stateful) choice function receiving the
    current time and the list of enabled (non-terminated) processors.
    Returning [None] ends the run.  All randomness comes from {!Repro_util.Rng},
    so every schedule is reproducible from a seed. *)

open Repro_util

type t

val name : t -> string

val pick : t -> time:int -> enabled:int list -> int option
(** The processor to step next.  Must be a member of [enabled] (checked by
    the runner).  [enabled] is non-empty and sorted. *)

val mask_pick : t -> (time:int -> mask:int -> int) option
(** The int-machine twin of {!pick} for the flat execution core: the
    enabled set is a bitmask (bit [p] = processor [p], non-zero), and the
    result is the chosen processor or [-1] for "no pick" — no list, no
    option allocated per step.  Both closures share the scheduler's
    mutable state and draw from its rng identically, so a run may switch
    between them mid-flight without changing the schedule.  [None] for
    custom {!fn} schedulers (the flat drivers then decline). *)

val round_robin : unit -> t
(** Fair cyclic order over enabled processors.  Guarantees every live
    processor takes infinitely many steps. *)

val random : Rng.t -> t
(** Uniform among enabled processors — fair with probability 1. *)

val solo : int -> t
(** Only processor [p] ever runs (obstruction-free executions). *)

val script : ?cycle:bool -> int list -> t
(** Follows the given processor sequence exactly; scripted processors that
    are no longer enabled are skipped.  With [~cycle:true] the script
    repeats forever — this is how the ultimately-periodic executions of
    Section 4 (e.g. Figure 2's steps 5–13 loop) are driven.  Without it the
    run ends when the script is exhausted. *)

val script_then_cycle : prefix:int list -> cycle:int list -> t
(** Follows [prefix] once, then repeats [cycle] forever (skipping halted
    processors, like {!script}).  This is the shape of the paper's
    ultimately-periodic executions: Figure 2 is a 4-action prologue
    followed by the steps 5–13 cycle. *)

val recorded : t -> t * (unit -> int list)
(** [recorded s] behaves exactly like [s] and additionally records every
    pick; the returned thunk yields the picks so far, oldest first.  The
    fuzzing harness uses this to turn any adversary's run into a finite
    replayable script. *)

val crash : crash_at:int option array -> t -> t
(** [crash ~crash_at s] is the crash-prone adversary: processor [p] with
    [crash_at.(p) = Some c] is never scheduled at or after time [c]
    (it crashes).  When every enabled processor has crashed the run ends.
    Processors beyond the array's length never crash. *)

val crash_faults : plan:Fault.plan -> t -> t
(** {!crash} driven by the [Crash_stop] events of a fault plan — the
    scheduler-level reading of crash-stop, sharing {!Fault.event} with the
    memory-level injector of [System.run ~faults].  Non-crash events in
    the plan are ignored here. *)

val fn : name:string -> (time:int -> enabled:int list -> int option) -> t
(** Custom (possibly protocol-aware) scheduler; used by the covering
    adversary of {!Analysis.Lower_bound}.  Has no {!mask_pick}. *)

val fn_mask :
  name:string ->
  pick:(time:int -> enabled:int list -> int option) ->
  mask_pick:(time:int -> mask:int -> int) ->
  t
(** Custom scheduler providing both views.  The two closures must encode
    the same decision procedure over shared state (see {!mask_pick}). *)
