lib/anonmem/trace.ml: Array Fmt List Printf Protocol Repro_util System
