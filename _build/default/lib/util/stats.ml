type summary = {
  count : int;
  min : int;
  max : int;
  mean : float;
  median : int;
  p90 : int;
  stddev : float;
}

let percentile q xs =
  match List.sort compare xs with
  | [] -> None
  | sorted ->
      let n = List.length sorted in
      let rank =
        (* nearest-rank: smallest index whose cumulative share >= q *)
        max 0 (min (n - 1) (int_of_float (ceil (q *. float_of_int n)) - 1))
      in
      Some (List.nth sorted rank)

let median xs = percentile 0.5 xs

let summarize = function
  | [] -> None
  | xs ->
      let n = List.length xs in
      let fn = float_of_int n in
      let mean = float_of_int (List.fold_left ( + ) 0 xs) /. fn in
      let var =
        List.fold_left
          (fun acc x ->
            let d = float_of_int x -. mean in
            acc +. (d *. d))
          0. xs
        /. fn
      in
      Some
        {
          count = n;
          min = List.fold_left min max_int xs;
          max = List.fold_left max min_int xs;
          mean;
          median = Option.get (median xs);
          p90 = Option.get (percentile 0.9 xs);
          stddev = sqrt var;
        }

let pp_summary ppf s =
  Fmt.pf ppf "n=%d min=%d med=%d p90=%d max=%d mean=%.1f" s.count s.min
    s.median s.p90 s.max s.mean
