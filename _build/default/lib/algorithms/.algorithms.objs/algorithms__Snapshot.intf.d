lib/algorithms/snapshot.mli: Anonmem Fmt Iset Repro_util Snapshot_core
