(** Specialized exhaustive checker for the 3-processor instance of the
    Figure-3 snapshot algorithm — the exact configuration of the paper's
    TLC claim.

    The generic explorer ({!Explorer}) keeps one hash-table entry, a byte
    key and bookkeeping per state (~70 bytes); the 3-processor spaces top
    100 million states per wiring, which does not fit comfortably.  Here a
    whole system state packs into a single 51-bit integer:

    {v
    per processor (12 bits x 3):   per register (5 bits x 3):
      view       3 bits              view   3 bits
      level      2 bits              level  2 bits
      next_write 2 bits
      phase      3 bits  (0 = writing, 1 + pos*2 + all_own = scanning)
      min_level  2 bits
    v}

    The visited set is an open-addressing table of packed states with a
    2-bit DFS color per slot (~8.2 bytes per state at 50% load), and the
    transition function works directly on the packed representation, so
    exploration allocates nothing on the hot path.  Wait-freedom is
    checked as acyclicity (DFS back edge), the safety invariant as in
    {!Core.snapshot_invariant}: all outputs contain the owner's input,
    only participating inputs, and are pairwise related by containment.

    Two sound canonicalizations quotient the space (both are in the
    generic codec path as well, except the last): [min_level] is pinned
    to 0 once a scan has diverged, and a terminated processor's
    [next_write] is pinned to 0 (it takes no further steps, so the cursor
    is dead state).

    [selfcheck] cross-validates the packed semantics against the generic
    explorer on the 2-processor instance (where both are cheap) by
    comparing state, transition and terminal counts. *)

open Repro_util

let n = 3
let m = 3

(* -- bit twiddling --------------------------------------------------------- *)

let local_bits = 12
let reg_bits = 5
let reg_off r = (n * local_bits) + (r * reg_bits)
let local_off p = p * local_bits
let lmask = (1 lsl local_bits) - 1
let rmask = (1 lsl reg_bits) - 1

(* local fields *)
let l_view l = l land 7
let l_level l = (l lsr 3) land 3
let l_nw l = (l lsr 5) land 3
let l_phase l = (l lsr 7) land 7
let l_min l = (l lsr 10) land 3

let mk_local ~view ~level ~nw ~phase ~mn =
  view lor (level lsl 3) lor (nw lsl 5) lor (phase lsl 7) lor (mn lsl 10)

(* register fields *)
let r_view v = v land 7
let r_level v = (v lsr 3) land 3
let mk_reg ~view ~level = view lor (level lsl 3)

let get_local s p = (s lsr local_off p) land lmask
let set_local s p l = s land lnot (lmask lsl local_off p) lor (l lsl local_off p)
let get_reg s r = (s lsr reg_off r) land rmask
let set_reg s r v = s land lnot (rmask lsl reg_off r) lor (v lsl reg_off r)

let halted l = l_level l >= n && l_phase l = 0

(* -- semantics on packed states -------------------------------------------- *)

(** [step s p sigma] is the packed successor when processor [p], wired
    through [sigma] (array: private index -> physical register), takes its
    pending step.  Behaviourally identical to
    {!Algorithms.Snapshot}/{!Algorithms.Snapshot_core} (checked by
    {!selfcheck}). *)
let step s p sigma =
  let l = get_local s p in
  let phase = l_phase l in
  if phase = 0 then begin
    (* write phase: write (view, level) to register sigma(nw) *)
    let r = sigma.(l_nw l) in
    let s = set_reg s r (mk_reg ~view:(l_view l) ~level:(l_level l)) in
    let l' =
      mk_local ~view:(l_view l) ~level:(l_level l)
        ~nw:((l_nw l + 1) mod m)
        ~phase:2 (* scanning, pos 0, all_own *)
        ~mn:n
    in
    set_local s p l'
  end
  else begin
    (* scan phase: read register sigma(pos) *)
    let pos = (phase - 1) / 2 in
    let all_own = (phase - 1) land 1 = 1 in
    let v = get_reg s sigma.(pos) in
    let all_own = all_own && r_view v = l_view l in
    let view = if all_own then l_view l else l_view l lor r_view v in
    let mn = if all_own then min (l_min l) (r_level v) else 0 in
    let l' =
      if pos + 1 < m then
        mk_local ~view ~level:(l_level l)
          ~nw:(l_nw l)
          ~phase:(1 + ((pos + 1) * 2) + (if all_own then 1 else 0))
          ~mn
      else
        let level = if all_own then min (mn + 1) n else 0 in
        (* canonicalize the dead cursor of a just-terminated processor *)
        let nw = if level >= n then 0 else l_nw l in
        mk_local ~view ~level ~nw ~phase:0 ~mn:0
    in
    set_local s p l'
  end

let initial_state inputs =
  Array.to_seqi inputs
  |> Seq.fold_left
       (fun s (p, input) ->
         if input < 1 || input > 3 then
           invalid_arg "Snapshot3: inputs must be in 1..3";
         set_local s p
           (mk_local ~view:(1 lsl (input - 1)) ~level:0 ~nw:0 ~phase:0 ~mn:0))
       0

(** Outputs present in a packed state, as (processor, view bitmask). *)
let outputs s =
  List.filter_map
    (fun p ->
      let l = get_local s p in
      if halted l then Some (p, l_view l) else None)
    [ 0; 1; 2 ]

(* The strong snapshot invariant on bitmasks: own input set, only
   participants, pairwise containment (a ⊆ b as bitmasks: a land b = a). *)
let invariant_ok inputs s =
  let participants =
    Array.fold_left (fun acc i -> acc lor (1 lsl (i - 1))) 0 inputs
  in
  let outs = outputs s in
  List.for_all
    (fun (p, o) ->
      o land (1 lsl (inputs.(p) - 1)) <> 0
      && o land lnot participants = 0
      && List.for_all
           (fun (_, o') -> o land o' = o || o land o' = o')
           outs)
    outs

(* -- cross-validation against the reference semantics ----------------------- *)

module Ref_protocol = Algorithms.Snapshot
module Ref_sys = Anonmem.System.Make (Algorithms.Snapshot)

(** Pack a reference-implementation state, applying the same
    dead-variable canonicalization as {!step} (terminated processors'
    write cursors read as 0). *)
let pack_reference (st : Ref_sys.state) =
  let cfg = st.Ref_sys.cfg in
  let s = ref 0 in
  Array.iteri
    (fun p (l : Algorithms.Snapshot.local) ->
      let module C = Algorithms.Snapshot.Core in
      let view = Iset.fold (fun i acc -> acc lor (1 lsl (i - 1))) l.C.view 0 in
      let halted = Ref_protocol.next cfg l = None in
      let phase, mn =
        match l.C.phase with
        | C.Writing -> (0, 0)
        | C.Scanning sc ->
            (1 + (sc.C.pos * 2) + (if sc.C.all_own then 1 else 0), sc.C.min_level)
      in
      let packed =
        mk_local ~view ~level:l.C.level
          ~nw:(if halted then 0 else l.C.next_write)
          ~phase
          ~mn:(if phase = 0 then 0 else mn)
      in
      s := set_local !s p packed)
    st.Ref_sys.locals;
  Array.iteri
    (fun r (v : Algorithms.Snapshot.value) ->
      let view = Iset.fold (fun i acc -> acc lor (1 lsl (i - 1))) v.view 0 in
      s := set_reg !s r (mk_reg ~view ~level:v.level))
    st.Ref_sys.registers;
  !s

(** Run [runs] random executions, stepping the packed semantics and the
    reference protocol in lockstep and comparing after every step.
    Returns the number of steps compared; raises [Failure] on the first
    divergence. *)
let selfcheck ?(runs = 50) ?(max_steps = 2_000) () =
  let compared = ref 0 in
  for seed = 0 to runs - 1 do
    let rng = Rng.create ~seed in
    let wiring = Anonmem.Wiring.random rng ~n ~m in
    let inputs = [| 1 + Rng.int rng 3; 1 + Rng.int rng 3; 1 + Rng.int rng 3 |] in
    let cfg = Algorithms.Snapshot.standard ~n in
    let ref_state = Ref_sys.init ~cfg ~wiring ~inputs in
    let sigmas =
      Array.init n (fun p ->
          Array.init m (fun i -> Anonmem.Wiring.phys wiring ~p i))
    in
    let packed = ref (initial_state inputs) in
    if !packed <> pack_reference ref_state then
      failwith "Snapshot3.selfcheck: initial states differ";
    let steps = ref 0 in
    while !steps < max_steps && Ref_sys.enabled ref_state <> [] do
      let en = Ref_sys.enabled ref_state in
      let p = Rng.pick rng en in
      ignore (Ref_sys.step_in_place ref_state p);
      packed := step !packed p sigmas.(p);
      incr steps;
      incr compared;
      if !packed <> pack_reference ref_state then
        failwith
          (Printf.sprintf
             "Snapshot3.selfcheck: divergence at seed %d step %d" seed !steps)
    done
  done;
  !compared

(* -- the DFS ----------------------------------------------------------------- *)

type stats = {
  states : int;
  transitions : int;
  terminals : int;
  max_depth : int;
}

type result =
  | Verified of stats
  | Invariant_violation of { state : int; path : int list; stats : stats }
  | Cycle of { processors : int list; stats : stats }
  | Table_full of int

(* Open-addressing visited table.  Slots hold the packed state + 1 shifted
   left twice, with the DFS color in the low 2 bits (1 gray, 2 black);
   0 = empty.  Linear probing; the table never shrinks. *)
module Table = struct
  type t = { slots : int array; mask : int; mutable count : int; limit : int }

  let create ~log2_capacity =
    let cap = 1 lsl log2_capacity in
    { slots = Array.make cap 0; mask = cap - 1; count = 0; limit = cap * 7 / 10 }

  (* Fibonacci hashing of the 51-bit state. *)
  let slot_of t key =
    let h = key * 0x9E3779B97F4A7C1 in
    (h lsr 8) land t.mask

  let rec probe t key i =
    let stored = t.slots.(i) in
    if stored = 0 then i
    else if stored lsr 2 = key + 1 then i
    else probe t key ((i + 1) land t.mask)

  let find_slot t key = probe t key (slot_of t key)
  let color t i = t.slots.(i) land 3

  let insert_gray t key i =
    t.slots.(i) <- ((key + 1) lsl 2) lor 1;
    t.count <- t.count + 1

  let blacken t i = t.slots.(i) <- t.slots.(i) land lnot 3 lor 2
  let full t = t.count >= t.limit
end

(** Exhaustively check one wiring.  [log2_capacity] sizes the visited
    table (default 2^28 slots = 2 GiB, good for ~187M states).

    [prune] restricts exploration to states where it returns [false]
    (pruned states are recorded but not expanded); [witness] flags a
    target state — the search stops and reports it as
    {!Invariant_violation} with its path.  These hooks turn the checker
    into the exhaustive witness search for the Section-8 non-atomicity
    claim (see {!find_nonatomic}). *)
let check ?(log2_capacity = 28) ?prune ?witness ?progress ~wiring ~inputs () =
  if Anonmem.Wiring.processors wiring <> n || Anonmem.Wiring.registers wiring <> m
  then invalid_arg "Snapshot3.check: need 3 processors and 3 registers";
  let sigmas =
    Array.init n (fun p ->
        Array.init m (fun i -> Anonmem.Wiring.phys wiring ~p i))
  in
  let table = Table.create ~log2_capacity in
  (* DFS stack: parallel growable arrays of (state, slot, entered_by, next_p). *)
  let st_stack = Vec.create () in
  let meta_stack = Vec.create () in
  (* meta = slot lsl 6 lor (entered_by+1) lsl 2 lor next_p; next_p <= 3 *)
  let transitions = ref 0 and terminals = ref 0 and max_depth = ref 0 in
  let depth = ref 0 in
  let stats () =
    {
      states = table.Table.count;
      transitions = !transitions;
      terminals = !terminals;
      max_depth = !max_depth;
    }
  in
  let outcome = ref None in
  let push state slot entered_by =
    Table.insert_gray table state slot;
    (match progress with
    | Some f when table.Table.count land ((1 lsl 21) - 1) = 0 ->
        f table.Table.count
    | _ -> ());
    let flagged =
      match witness with Some f -> f state | None -> false
    in
    if (flagged || not (invariant_ok inputs state)) && !outcome = None then begin
      (* the current DFS path, oldest step first, plus the entering step *)
      let rev_pids = ref [] in
      Vec.iteri
        (fun _ meta ->
          let eb = ((meta lsr 2) land 15) - 1 in
          if eb >= 0 then rev_pids := eb :: !rev_pids)
        meta_stack;
      let path = List.rev !rev_pids @ (if entered_by >= 0 then [ entered_by ] else []) in
      outcome := Some (Invariant_violation { state; path; stats = stats () })
    end;
    ignore (Vec.push st_stack state);
    ignore (Vec.push meta_stack ((slot lsl 6) lor ((entered_by + 1) lsl 2)));
    incr depth;
    if !depth > !max_depth then max_depth := !depth
  in
  let s0 = initial_state inputs in
  push s0 (Table.find_slot table s0) (-1);
  let running = ref true in
  while !running && !outcome = None do
    let top = Vec.length st_stack - 1 in
    if top < 0 then running := false
    else begin
      let state = Vec.get st_stack top in
      let meta = Vec.get meta_stack top in
      let next_p = meta land 3 in
      if next_p >= n then begin
        (* frame exhausted: terminal detection and blacken *)
        let all_halted =
          halted (get_local state 0)
          && halted (get_local state 1)
          && halted (get_local state 2)
        in
        if all_halted then incr terminals;
        Table.blacken table (meta lsr 6);
        Vec.truncate st_stack top;
        Vec.truncate meta_stack top;
        decr depth
      end
      else begin
        Vec.set meta_stack top (meta + 1);
        let pruned =
          next_p = 0
          && (match prune with Some f -> f state | None -> false)
        in
        if pruned then
          (* skip all successors of a pruned state *)
          Vec.set meta_stack top (meta lor 3)
        else if not (halted (get_local state next_p)) then begin
          incr transitions;
          let s' = step state next_p sigmas.(next_p) in
          let slot = Table.find_slot table s' in
          match Table.color table slot with
          | 0 ->
              if Table.full table then begin
                outcome := Some (Table_full table.Table.count);
                running := false
              end
              else push s' slot next_p
          | 1 ->
              (* back edge: cycle; collect the pids on the loop *)
              let pids = ref [ next_p ] in
              let continue = ref true in
              let i = ref top in
              while !continue && !i >= 0 do
                let meta_i = Vec.get meta_stack !i in
                if Vec.get st_stack !i = s' then continue := false
                else begin
                  let eb = ((meta_i lsr 2) land 15) - 1 in
                  if eb >= 0 then pids := eb :: !pids;
                  decr i
                end
              done;
              outcome :=
                Some
                  (Cycle
                     {
                       processors = List.sort_uniq compare !pids;
                       stats = stats ();
                     })
          | _ -> ()
        end
      end
    end
  done;
  match !outcome with
  | Some r -> r
  | None -> Verified (stats ())

(* -- the Section-8 non-atomicity witness ------------------------------------ *)

(** The set of inputs present in memory, as a bitmask. *)
let memory_mask s = r_view (get_reg s 0) lor r_view (get_reg s 1) lor r_view (get_reg s 2)

type nonatomic_witness = {
  wiring : Anonmem.Wiring.t;
  culprit : int;
  target_mask : int;  (** bit [i] = input [i+1] *)
  path : int list;  (** processor steps from the initial state *)
  states_explored : int;
}

(** Exhaustively search one candidate [target_mask] over [wirings]:
    explore only states whose memory content differs from the target
    (pruning on equality) and stop at any state where a terminated
    processor's snapshot equals the target.  A hit proves the Section-8
    claim outright: along the whole witness execution the memory never
    contained exactly the returned set, and freezing the execution there
    keeps it that way forever. *)
let find_nonatomic ?log2_capacity ?progress ~inputs ~target_mask ~wirings () =
  let prune s =
    memory_mask s = target_mask
    (* views only grow, so once no processor's view is contained in the
       target, no future output can equal it: cut the branch *)
    || not
         (List.exists
            (fun p ->
              let v = l_view (get_local s p) in
              v land target_mask = v)
            [ 0; 1; 2 ])
  in
  let witness s =
    memory_mask s <> target_mask
    && List.exists (fun (_, o) -> o = target_mask) (outputs s)
  in
  let rec go = function
    | [] -> None
    | wiring :: rest -> (
        match check ?log2_capacity ?progress ~prune ~witness ~wiring ~inputs () with
        | Invariant_violation { state; path; stats } ->
            let culprit =
              match List.find_opt (fun (_, o) -> o = target_mask) (outputs state) with
              | Some (p, _) -> p
              | None -> 0
            in
            Some
              {
                wiring;
                culprit;
                target_mask;
                path;
                states_explored = stats.states;
              }
        | Verified _ | Table_full _ -> go rest
        | Cycle _ ->
            (* cannot happen: the full graph is acyclic, hence any pruned
               subgraph is too; be conservative and move on *)
            go rest)
  in
  go wirings
