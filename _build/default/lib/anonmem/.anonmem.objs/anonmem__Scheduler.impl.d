lib/anonmem/scheduler.ml: List Printf Repro_util Rng
