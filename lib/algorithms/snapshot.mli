(** Figure 3: the wait-free solution to the snapshot task in the
    fully-anonymous model — the paper's main algorithmic contribution.

    Registers hold [(view, level)] records.  A processor raises its level
    only across scans in which it read exactly its own view in every
    register — and then only to one more than the minimum level it read —
    and resets it to 0 otherwise.  It terminates, outputting its view as
    its snapshot, upon completing a scan at level [N].

    The algorithm group-solves the snapshot task (Definition 3.4) and in
    fact guarantees that {e all} outputs are related by containment
    (Section 5.3.2); {!Tasks.Snapshot_task} checks both.  Wait-freedom
    holds under every wiring and schedule (Section 5.3.3); the model
    checker verifies it exhaustively for small [N].

    This module implements {!Anonmem.Protocol.S} and is typically driven
    through [Anonmem.System.Make (Algorithms.Snapshot)] or the high-level
    [Core.solve_snapshot]. *)

open Repro_util

(** The underlying write–scan-with-levels engine, shared with the
    long-lived variant; exposed for the model checker's codecs. *)
module Core : module type of Snapshot_core.Make (Iset)

type cfg = Core.cfg = { n : int; m : int }

val cfg : n:int -> m:int -> cfg
(** General configuration; the Section-2.1 demo uses [m = n - 1]. *)

val standard : n:int -> cfg
(** The paper's instantiation: as many registers as processors. *)

type value = Core.value = { view : Iset.t; level : int }
(** Register contents: a view and the writer's level at write time. *)

type input = int
(** The processor's group identifier. *)

type output = Iset.t
(** The snapshot: a set of participating group identifiers. *)

type local = Core.local

val name : string
val processors : cfg -> int
val registers : cfg -> int
val register_init : cfg -> value
val init : cfg -> input -> local
val terminated : cfg -> local -> bool
val halted : cfg -> local -> bool
val next : cfg -> local -> value Anonmem.Protocol.operation option
val apply_read : cfg -> local -> reg:int -> value -> local
val apply_write : cfg -> local -> local
val output : cfg -> local -> output option

val flat :
  cfg ->
  phys:int array ->
  inputs:input array ->
  registers:value array ->
  locals:local array ->
  value Anonmem.Protocol.flat option
(** The int-machine twin of the engine (see {!Anonmem.Protocol.flat}):
    views as bitset words, total (never falls back).  [None] when the
    instance or a view exceeds the 62-bit window. *)

val flat_core :
  cfg ->
  phys:int array ->
  registers:value array ->
  core_inputs:int array ->
  get:(int -> local) ->
  set:(int -> local -> unit) ->
  value Anonmem.Protocol.flat option
(** The engine behind {!flat}, shared with {!Renaming}: the client's
    local state embeds a [local] reached through [get]/[set];
    [core_inputs] are the engine inputs used on crash-recovery reset. *)

val level_of_local : local -> int
(** The current level, in [0..n]; used by the analyses and tests. *)

val view_of_local : local -> Iset.t
val pp_value : cfg -> value Fmt.t
val pp_local : cfg -> local Fmt.t
val pp_output : cfg -> output Fmt.t
