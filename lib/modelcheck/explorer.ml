(** Explicit-state model checker for fully-anonymous protocols — the
    stand-in for the TLC runs reported in the paper (Figure 3 and the
    claims of Sections 5.2 and 8).

    For a fixed configuration, wiring and input assignment, the checker
    enumerates by breadth-first search every state reachable under every
    interleaving of processor steps (the scheduler's nondeterminism is the
    only nondeterminism: protocols are deterministic step machines).  It
    checks a state invariant as states are discovered, reconstructs
    counterexample traces from BFS parents, and decides wait-freedom as a
    graph property:

    a processor [p] can take infinitely many steps without terminating iff
    the finite transition graph contains a cycle traversing a [p]-labelled
    edge — equivalently, an edge [u --p--> v] with [u] and [v] in the same
    strongly connected component.  (In our protocols a processor that has
    output takes no further steps, so a [p]-edge inside an SCC is exactly a
    divergence of a never-terminating [p].)

    The state spaces reach tens of millions of states for 3 processors, so
    states are stored only as compact byte strings: checkable protocols
    supply fixed-width codecs ({!CHECKABLE}, instances in {!Codecs}), the
    visited set is an arena-backed open-addressing table ({!State_table})
    holding the key bytes inline with dense insertion-order ids, successor
    edges are five-byte packed words grouped by source (a CSR image built
    on the fly, since BFS pops states in id order), and the SCC pass reads
    that image in place.  To cover
    {e all} executions of the anonymous model the caller iterates
    exploration over {!Anonmem.Wiring.enumerate} (with register-symmetry
    reduction) and the relevant input assignments; see
    {!Make.check_all_wirings}.

    Two scaling levers sit on top of the sequential passes: the opt-in
    [~reduction] flag quotients the space by the wiring's anonymity
    symmetries ({!Canon}; sound because canonical keys are orbit minima
    under genuine automorphisms, see DESIGN.md), and {!Par_explorer} runs
    the BFS on a pool of OCaml 5 domains.  Under reduction, invariants and
    [stop_expansion] predicates must themselves be symmetric — invariant
    under permuting same-input processors together with the induced
    register relabelling — which holds for every property shipped here
    (containment, agreement, memory-content sets, timestamp bounds). *)

(** A protocol whose states can be exhaustively explored: local states and
    register values serialize to fixed-width byte strings.  Codecs must be
    exact inverses; widths may depend on the configuration. *)
module type CHECKABLE = sig
  include Anonmem.Protocol.S

  val value_width : cfg -> int
  val encode_value : cfg -> value -> Bytes.t -> int -> unit
  val decode_value : cfg -> Bytes.t -> int -> value
  val local_width : cfg -> int
  val encode_local : cfg -> local -> Bytes.t -> int -> unit
  val decode_local : cfg -> Bytes.t -> int -> local
end

(* BFS successor edges are packed as (dst lsl 4) lor pid in five-byte
   arena words grouped by source ({!Make.space}); parent links pack
   (parent lsl 4) lor pid the same way.  Dense state ids stay well below
   2^31 and processor counts below 16 in any feasible exploration. *)
let max_processors = 16

exception
  Unsupported_processors of { engine : string; processors : int; limit : int }
(** Structured rejection of configurations whose processor count would
    silently corrupt the packed edge/parent encodings (pids occupy 4 bits;
    {!Fault_explorer} additionally packs the crash mask in one byte, so its
    limit is 8).  Raised eagerly by every exploration entry point. *)

let () =
  Printexc.register_printer (function
    | Unsupported_processors { engine; processors; limit } ->
        Some
          (Printf.sprintf
             "%s: %d processors exceed the supported maximum of %d (packed \
              pid/crash-mask encoding)"
             engine processors limit)
    | _ -> None)

let guard_processors ~engine ?(limit = max_processors - 1) n =
  if n > limit then raise (Unsupported_processors { engine; processors = n; limit })

type summary = {
  wirings_checked : int;
  total_states : int;
  max_space_states : int;
  total_transitions : int;
  terminal_states : int;
  total_pruned : int;
      (** successors skipped by the [~prune] oracle; 0 when pruning is
          off, and 0 by construction when the oracle is a proved
          invariant (its violating states are unreachable) *)
  all_wait_free : bool;
}
(** Aggregate of a [check_all_wirings] sweep.  Defined outside the functor
    so the sequential and parallel engines ({!Par_explorer}) share one
    summary type and can be swapped behind a single interface. *)

let empty_summary =
  {
    wirings_checked = 0;
    total_states = 0;
    max_space_states = 0;
    total_transitions = 0;
    terminal_states = 0;
    total_pruned = 0;
    all_wait_free = true;
  }

type fp_summary = {
  fp_wirings : int;
  fp_total_states : int;
  fp_max_space_states : int;
  fp_total_transitions : int;
  fp_terminal_states : int;
  fp_total_pruned : int;
  fp_omission_bound : float;
      (** union bound over the per-wiring birthday bounds: the probability
          that {e any} state anywhere in the sweep was omitted by a 64-bit
          fingerprint collision *)
  fp_spilled_runs : int;
  fp_spill_bytes : int;
}
(** Aggregate of a {!Make.check_all_wirings_fp} sweep.  The fingerprint
    engine stores no edges, so — unlike {!summary} — there is no
    wait-freedom verdict: it is a safety-only engine whose answer is
    qualified by [fp_omission_bound]. *)

let empty_fp_summary =
  {
    fp_wirings = 0;
    fp_total_states = 0;
    fp_max_space_states = 0;
    fp_total_transitions = 0;
    fp_terminal_states = 0;
    fp_total_pruned = 0;
    fp_omission_bound = 0.0;
    fp_spilled_runs = 0;
    fp_spill_bytes = 0;
  }

module Make (P : CHECKABLE) = struct
  type state = { locals : P.local array; registers : P.value array }

  let init_state ~cfg ~inputs =
    {
      locals = Array.map (P.init cfg) inputs;
      registers = Array.make (P.registers cfg) (P.register_init cfg);
    }

  let encode_state cfg st =
    let n = Array.length st.locals and m = Array.length st.registers in
    let lw = P.local_width cfg and vw = P.value_width cfg in
    let b = Bytes.create ((n * lw) + (m * vw)) in
    Array.iteri (fun p l -> P.encode_local cfg l b (p * lw)) st.locals;
    Array.iteri
      (fun r v -> P.encode_value cfg v b ((n * lw) + (r * vw)))
      st.registers;
    Bytes.unsafe_to_string b

  let decode_state cfg key =
    let b = Bytes.unsafe_of_string key in
    let n = P.processors cfg and m = P.registers cfg in
    let lw = P.local_width cfg and vw = P.value_width cfg in
    {
      locals = Array.init n (fun p -> P.decode_local cfg b (p * lw));
      registers =
        Array.init m (fun r -> P.decode_value cfg b ((n * lw) + (r * vw)));
    }

  let enabled cfg st =
    List.filter
      (fun p -> P.next cfg st.locals.(p) <> None)
      (List.init (Array.length st.locals) Fun.id)

  (** Successor of [st] when processor [p] takes its pending step. *)
  let successor cfg wiring st p =
    match P.next cfg st.locals.(p) with
    | None -> invalid_arg "Explorer.successor: processor halted"
    | Some (Anonmem.Protocol.Read i) ->
        let r = Anonmem.Wiring.phys wiring ~p i in
        let locals = Array.copy st.locals in
        locals.(p) <- P.apply_read cfg st.locals.(p) ~reg:i st.registers.(r);
        { st with locals }
    | Some (Anonmem.Protocol.Write (i, v)) ->
        let r = Anonmem.Wiring.phys wiring ~p i in
        let locals = Array.copy st.locals in
        let registers = Array.copy st.registers in
        locals.(p) <- P.apply_write cfg st.locals.(p);
        registers.(r) <- v;
        { locals; registers }

  let outputs cfg st = Array.map (P.output cfg) st.locals

  (** The symmetry group of [(cfg, wiring, inputs)]: processors in the same
      input class permute together with the induced register relabelling.
      The [~reduction] flags below build exactly this. *)
  let canon_of ~cfg ~wiring ~inputs =
    Canon.make
      ~local_width:(P.local_width cfg)
      ~value_width:(P.value_width cfg)
      ~wiring
      ~classes:(Canon.classes_of_inputs inputs)

  (** Replay a chain of {e canonical} keys into a concrete execution: from
      [init_state], at each key pick an enabled processor whose successor
      canonicalizes to that key.  Any such choice is a valid concrete step
      (two choices hitting the same orbit are symmetric), so traces of
      reduced explorations stay replayable counterexamples. *)
  let concretize ~cfg ~wiring ~canon ~inputs keys =
    let rec go st acc = function
      | [] -> List.rev acc
      | key :: rest ->
          let n = Array.length st.locals in
          let rec pick p =
            if p >= n then
              invalid_arg
                "Explorer.concretize: canonical key chain has no concrete \
                 refinement (asymmetric invariant?)"
            else if P.next cfg st.locals.(p) = None then pick (p + 1)
            else
              let st' = successor cfg wiring st p in
              if
                String.equal
                  (Canon.canonicalize canon (encode_state cfg st'))
                  key
              then (p, st')
              else pick (p + 1)
          in
          let p, st' = pick 0 in
          go st' ((p, st') :: acc) rest
    in
    go (init_state ~cfg ~inputs) [] keys

  (** Width of the encoded-state keys for [cfg]. *)
  let key_width cfg =
    (P.processors cfg * P.local_width cfg)
    + (P.registers cfg * P.value_width cfg)

  type space = {
    cfg : P.cfg;
    wiring : Anonmem.Wiring.t;
    inputs : P.input array;
    reduction : Canon.t option;
        (** present iff the space is a symmetry quotient: keys are orbit
            minima and traces are concretized on demand *)
    table : State_table.t;
        (** arena of encoded states; dense id = discovery order, id 0 is
            the initial state *)
    parent : State_table.Packed_vec.t;
        (** id -> ((parent_id lsl 4) lor pid) + 1; 0 at the root *)
    succ : State_table.Packed_vec.t;
        (** (dst lsl 4) lor pid, grouped by source in id order — BFS pops
            ids in ascending order, so edge emission is already a CSR
            adjacency image; [deg] delimits the per-source runs *)
    deg : State_table.Packed_vec.t;  (** id -> out-degree (expanded ids) *)
    terminal : int list;  (** ids of states where all processors halted *)
    pruned : int;
        (** candidate successors skipped by the [~prune] oracle — not
            interned, not edges; 0 when pruning was off *)
  }

  let state_count space = State_table.length space.table
  let transition_count space = State_table.Packed_vec.length space.succ
  let state_of space id =
    decode_state space.cfg (State_table.key_of_id space.table id)

  type violation = {
    state_id : int;
    message : string;
    trace : (int * state) list;
        (** steps [(pid, post-state)] from the initial state to the
            violating state; concretized when the space is reduced *)
  }

  type result =
    | Explored of space
    | Invariant_failed of space * violation
    | State_limit of int  (** exploration aborted at this many states *)
    | Exhausted of { reason : Governor.reason; states : int }
        (** a resource governor tripped; a final checkpoint was written
            when a checkpoint policy was in force, so the run is
            resumable *)

  (* Parent words store the packed value plus one so the root's -1 becomes
     0, the natural zero of the unsigned packed representation. *)
  let parent_packed space id = State_table.Packed_vec.get space.parent id - 1

  let trace_to space id =
    match space.reduction with
    | None ->
        let rec up id acc =
          let packed = parent_packed space id in
          if packed < 0 then acc
          else
            let parent = packed asr 4 and pid = packed land 15 in
            up parent ((pid, state_of space id) :: acc)
        in
        up id []
    | Some canon ->
        let rec up id acc =
          let packed = parent_packed space id in
          if packed < 0 then acc
          else up (packed asr 4) (State_table.key_of_id space.table id :: acc)
        in
        concretize ~cfg:space.cfg ~wiring:space.wiring ~canon
          ~inputs:space.inputs (up id [])

  (** Breadth-first exploration.  [invariant] is checked on every state as
      it is discovered; the first failure aborts with a minimal-length
      counterexample trace.  [stop_expansion] (default: never) marks states
      whose successors should not be explored — used to bound protocols
      with unbounded state.  [progress] is called every [2^20] states.
      [reduction] explores the symmetry quotient instead (visited keys are
      canonical orbit minima); invariant, [stop_expansion] and [prune] must
      then be symmetric predicates.  [prune] (default: never) drops
      candidate successor states without interning them — sound exactly
      when pruned states are unreachable, e.g. states violating an
      invariant {e proved} inductive by {!Inductive.check_abstract}; the
      drop count is reported in [space.pruned]. *)
  let explore ?(max_states = 50_000_000) ?invariant ?stop_expansion ?progress
      ?(reduction = false) ?prune ?governor ?ckpt ?(resume = false) ~cfg
      ~wiring ~inputs () =
    guard_processors ~engine:"Explorer.explore" (P.processors cfg);
    let canon = if reduction then Some (canon_of ~cfg ~wiring ~inputs) else None in
    let canonical key =
      match canon with Some c -> Canon.canonicalize c key | None -> key
    in
    (* Fingerprint of everything the checkpoint's meaning depends on: the
       canonical initial key pins cfg and inputs, the wiring string pins
       the step relation.  A mismatched resume is a structured error, not
       a silently wrong exploration. *)
    let context =
      Fmt.str "bfs|%d|%a|%b|%b|%S" (key_width cfg) Anonmem.Wiring.pp wiring
        reduction (prune <> None)
        (canonical (encode_state cfg (init_state ~cfg ~inputs)))
    in
    let resumed =
      match ckpt with
      | Some { Checkpoint.path; _ } when resume && Sys.file_exists path ->
          let sections = Checkpoint.load ~path in
          let ctx = Bytes.to_string (Checkpoint.find "context" sections) in
          if not (String.equal ctx context) then
            raise
              (Checkpoint.Corrupt_checkpoint
                 "Explorer.explore: checkpoint context mismatch");
          Some sections
      | _ -> None
    in
    let table, parent, succ, deg, terminal =
      match resumed with
      | Some sections ->
          ( State_table.deserialize (Checkpoint.find "table" sections),
            State_table.Packed_vec.deserialize
              (Checkpoint.find "parent" sections),
            State_table.Packed_vec.deserialize (Checkpoint.find "succ" sections),
            State_table.Packed_vec.deserialize (Checkpoint.find "deg" sections),
            ref
              (Array.to_list
                 (Checkpoint.ints_of_bytes (Checkpoint.find "terminal" sections)))
          )
      | None ->
          ( State_table.create ~log2_slots:16 ~key_width:(key_width cfg) (),
            State_table.Packed_vec.create ~stride:5 (),
            State_table.Packed_vec.create ~stride:5 (),
            State_table.Packed_vec.create ~stride:1 (),
            ref [] )
    in
    let pruned =
      ref
        (match resumed with
        | Some sections ->
            (Checkpoint.ints_of_bytes (Checkpoint.find "pruned" sections)).(0)
        | None -> 0)
    in
    let save_ckpt path =
      Checkpoint.save ~path
        [
          ("context", Bytes.of_string context);
          ("table", State_table.serialize table);
          ("parent", State_table.Packed_vec.serialize parent);
          ("succ", State_table.Packed_vec.serialize succ);
          ("deg", State_table.Packed_vec.serialize deg);
          ("terminal", Checkpoint.bytes_of_ints (Array.of_list !terminal));
          ("pruned", Checkpoint.bytes_of_ints [| !pruned |]);
        ]
    in
    let queue = Queue.create () in
    (* BFS pops ids in ascending order, so the frontier is exactly the
       ids discovered but not yet popped: [deg length, table length). *)
    if resumed <> None then
      for id = State_table.Packed_vec.length deg to State_table.length table - 1
      do
        Queue.add id queue
      done;
    let violation = ref None in
    let add_state st ~from =
      let key = canonical (encode_state cfg st) in
      let before = State_table.length table in
      let id = State_table.intern table key in
      if id = before then begin
        (* fresh state *)
        ignore (State_table.Packed_vec.push parent (from + 1));
        (match invariant with
        | Some check -> (
            (* check the representative: symmetric invariants have the
               same verdict on every member of the orbit *)
            let st = if canon = None then st else decode_state cfg key in
            match check st with
            | Ok () -> ()
            | Error message ->
                if !violation = None then violation := Some (id, message))
        | None -> ());
        (match progress with
        | Some f when id land ((1 lsl 20) - 1) = 0 -> f id
        | _ -> ());
        Queue.add id queue
      end;
      id
    in
    if resumed = None then
      ignore (add_state (init_state ~cfg ~inputs) ~from:(-1));
    let limit_hit = ref false in
    let exhausted = ref None in
    while
      (not (Queue.is_empty queue))
      && !violation = None && (not !limit_hit) && !exhausted = None
    do
      (* Loop top is the consistent point: the previous pop's edges and
         degree row are complete, the frontier is [deg length, count). *)
      (match ckpt with
      | Some { Checkpoint.path; every_states } when every_states > 0 ->
          let pops = State_table.Packed_vec.length deg in
          if pops > 0 && pops mod every_states = 0 then save_ckpt path
      | _ -> ());
      (match governor with
      | Some g -> (
          match Governor.tick g with
          | Some reason ->
              exhausted := Some reason;
              (match ckpt with
              | Some { Checkpoint.path; _ } -> save_ckpt path
              | None -> ())
          | None -> ())
      | None -> ());
      if !exhausted = None then begin
      let id = Queue.pop queue in
      let st = decode_state cfg (State_table.key_of_id table id) in
      let expand =
        match stop_expansion with Some f -> not (f st) | None -> true
      in
      let edges_before = State_table.Packed_vec.length succ in
      if expand then begin
        match enabled cfg st with
        | [] -> terminal := id :: !terminal
        | en ->
            List.iter
              (fun p ->
                if State_table.length table >= max_states then
                  limit_hit := true
                else begin
                  let st' = successor cfg wiring st p in
                  match prune with
                  | Some f when f st' ->
                      (* unreachable by the proved invariant: neither
                         interned nor recorded as an edge *)
                      incr pruned
                  | _ ->
                      let id' = add_state st' ~from:((id lsl 4) lor p) in
                      ignore
                        (State_table.Packed_vec.push succ ((id' lsl 4) lor p))
                end)
              en
      end;
      (* Pops happen in id order, so this row is deg.(id); a violation or
         state limit leaves deg shorter than the table — the CSR builder
         pads the never-popped tail with zeros. *)
      ignore
        (State_table.Packed_vec.push deg
           (State_table.Packed_vec.length succ - edges_before))
      end
    done;
    if !exhausted <> None then
      Exhausted
        {
          reason = Option.get !exhausted;
          states = State_table.length table;
        }
    else if !limit_hit then State_limit (State_table.length table)
    else begin
      let space =
        {
          cfg;
          wiring;
          inputs;
          reduction = canon;
          table;
          parent;
          succ;
          deg;
          terminal = List.rev !terminal;
          pruned = !pruned;
        }
      in
      match !violation with
      | Some (state_id, message) ->
          Invariant_failed
            (space, { state_id; message; trace = trace_to space state_id })
      | None -> Explored space
    end

  (* Offsets of the CSR image: [space.succ] is already grouped by source
     in id order, so the offsets are just prefix sums of the out-degrees.
     States never popped (discovered after a violation aborted the BFS)
     have no deg row and contribute zero. *)
  let csr_offsets space =
    let n = state_count space in
    let d = State_table.Packed_vec.length space.deg in
    let off = Array.make (n + 1) 0 in
    for u = 0 to n - 1 do
      let du = if u < d then State_table.Packed_vec.get space.deg u else 0 in
      off.(u + 1) <- off.(u) + du
    done;
    off

  let adj_of space i = State_table.Packed_vec.get space.succ i asr 4

  let scc_ids space =
    Scc.tarjan ~n:(state_count space)
      ~off:(Array.get (csr_offsets space))
      ~adj:(adj_of space)

  (** Processors that can take infinitely many steps without terminating:
      those with an edge inside a strongly connected component of the
      transition graph.  Empty result = the protocol is wait-free for this
      wiring and input assignment.  (On a reduced space the reported pids
      are representatives of their symmetry class: a quotient cycle lifts
      to a concrete divergence because automorphisms have finite order.) *)
  let divergent_processors space =
    let off = csr_offsets space in
    let comp, _ =
      Scc.tarjan ~n:(state_count space) ~off:(Array.get off)
        ~adj:(adj_of space)
    in
    let bad = Hashtbl.create 8 in
    for u = 0 to state_count space - 1 do
      for i = off.(u) to off.(u + 1) - 1 do
        let packed = State_table.Packed_vec.get space.succ i in
        let v = packed asr 4 and p = packed land 15 in
        if comp.(u) = comp.(v) then Hashtbl.replace bad p ()
      done
    done;
    List.sort compare (Hashtbl.fold (fun p () acc -> p :: acc) bad [])

  let is_wait_free space = divergent_processors space = []

  (** {1 Fair-cycle detection}

      A liveness violation for the one-shot competition protocols
      (deadlock or livelock) is a reachable {e fair} strongly connected
      component: a non-trivial SCC in which every live processor has an
      edge — a fair scheduler can then keep every live processor stepping
      forever inside the component.  Conversely, in an SCC where some
      live processor has no internal edge, fairness forces that
      processor to move and thereby leave the component for good (if the
      execution could return, the left-to states would belong to the same
      SCC).  Halting is monotone, so the live set is constant across a
      component and can be read off any member state.

      On a symmetry-reduced space the verdict is still exact: quotient
      cycles lift to concrete fair cycles (automorphisms have finite
      order) and concrete fair cycles project onto quotient ones. *)

  (** First fair SCC by discovery order: [(member state id, live pids)].
      [live] defaults to "not halted". *)
  let find_fair_scc ?live space =
    let live =
      match live with
      | Some f -> f
      | None -> fun cfg l -> not (P.halted cfg l)
    in
    let n = state_count space in
    let off = csr_offsets space in
    let comp, ncomp =
      Scc.tarjan ~n ~off:(Array.get off) ~adj:(adj_of space)
    in
    let pidmask = Array.make (max ncomp 1) 0 in
    let internal = Bytes.make (max ncomp 1) '\000' in
    for u = 0 to n - 1 do
      for i = off.(u) to off.(u + 1) - 1 do
        let packed = State_table.Packed_vec.get space.succ i in
        let v = packed asr 4 and p = packed land 15 in
        if comp.(u) = comp.(v) then begin
          Bytes.set internal comp.(u) '\001';
          pidmask.(comp.(u)) <- pidmask.(comp.(u)) lor (1 lsl p)
        end
      done
    done;
    let nprocs = P.processors space.cfg in
    let result = ref None in
    let u = ref 0 in
    while !result = None && !u < n do
      let c = comp.(!u) in
      if Bytes.get internal c = '\001' then begin
        let st = state_of space !u in
        let livepids =
          List.filter
            (fun p -> live space.cfg st.locals.(p))
            (List.init nprocs Fun.id)
        in
        if
          livepids <> []
          && List.for_all
               (fun p -> pidmask.(c) land (1 lsl p) <> 0)
               livepids
        then result := Some (!u, livepids)
      end;
      incr u
    done;
    !result

  (** A concrete lasso witnessing a fair SCC on an {e unreduced} space:
      the stem reaches [entry] and the returned pid sequence cycles back
      to [entry] while stepping every processor in [live] at least once.
      Raises [Invalid_argument] on a reduced space (detect on the
      quotient, then re-explore unreduced to extract the witness). *)
  let fair_cycle_witness space ~entry ~live =
    if space.reduction <> None then
      invalid_arg "fair_cycle_witness: reduced space";
    let off = csr_offsets space in
    let comp, _ = scc_ids space in
    let c = comp.(entry) in
    let edges u =
      let rec go i acc =
        if i >= off.(u + 1) then List.rev acc
        else
          let packed = State_table.Packed_vec.get space.succ i in
          let v = packed asr 4 and p = packed land 15 in
          go (i + 1) (if comp.(v) = c then (p, v) :: acc else acc)
      in
      go off.(u) []
    in
    (* BFS inside the component from [src] to a node satisfying [goal];
       returns the pid path and the reached node. *)
    let bfs src goal =
      if goal src then ([], src)
      else begin
        let pred = Hashtbl.create 64 in
        Hashtbl.replace pred src (-1, -1);
        let q = Queue.create () in
        Queue.push src q;
        let found = ref None in
        while !found = None && not (Queue.is_empty q) do
          let u = Queue.pop q in
          List.iter
            (fun (p, v) ->
              if !found = None && not (Hashtbl.mem pred v) then begin
                Hashtbl.replace pred v (u, p);
                if goal v then found := Some v else Queue.push v q
              end)
            (edges u)
        done;
        match !found with
        | None -> invalid_arg "fair_cycle_witness: goal unreachable in SCC"
        | Some dst ->
            let rec up v acc =
              match Hashtbl.find pred v with
              | -1, -1 -> acc
              | u, p -> up u (p :: acc)
            in
            (up dst [], dst)
      end
    in
    let visit (path, node) p =
      (* reach a node with an internal p-edge, then take it *)
      let path', u = bfs node (fun u -> List.mem_assoc p (edges u)) in
      let v = List.assoc p (edges u) in
      (path @ path' @ [ p ], v)
    in
    let path, node = List.fold_left visit ([], entry) live in
    let back, _ = bfs node (fun u -> u = entry) in
    path @ back

  (** Terminal outcomes: the task outcome at every all-halted state.
      [to_task_output] converts protocol outputs for the task checkers. *)
  let terminal_outcomes space ~group_of_input ~to_task_output =
    List.map
      (fun id ->
        let outs = outputs space.cfg (state_of space id) in
        Tasks.Outcome.make
          ~inputs:(Array.map group_of_input space.inputs)
          ~outputs:(Array.map (Option.map to_task_output) outs)
          ())
      space.terminal

  (** {1 Exhaustive depth-first checking}

      The BFS {!explore} materializes the transition graph (needed for
      terminal-outcome analyses and shortest counterexamples) but still
      costs the key bytes plus roughly five bytes per transition; the
      3-processor snapshot spaces run to tens of millions of states per
      wiring, which calls for a leaner pass.  This DFS checks the same two
      properties — a state invariant, and wait-freedom — without storing
      any edges:

      wait-freedom for {e every} processor is equivalent to the transition
      graph being acyclic (any cycle contains an edge, and that edge's
      processor can then take infinitely many steps without terminating),
      and acyclicity is exactly the absence of back edges in a DFS.  The
      DFS keeps only the visited table (key → id), one color byte per
      state, and the current path.  Acyclicity of the symmetry quotient
      coincides with acyclicity of the full graph (project a cycle down;
      lift a quotient cycle by iterating its automorphism to its finite
      order), so [~reduction] is sound here too. *)

  type dfs_stats = {
    dfs_states : int;
    dfs_transitions : int;
    dfs_terminals : int;
    dfs_max_depth : int;
    dfs_pruned : int;  (** successors skipped by the [~prune] oracle *)
  }

  type dfs_result =
    | Dfs_ok of dfs_stats
    | Dfs_invariant_failed of {
        message : string;
        state : state;  (** the violating state (concrete) *)
        path : int list;
            (** processor ids of the steps from the initial state to the
                violating state — replay them to rematerialize the trace;
                concretized when the run is reduced *)
        stats : dfs_stats;
      }
    | Dfs_cycle of {
        processors : int list;
            (** processors taking steps on the cycle found: each of them
                can run forever without terminating (symmetry-class
                representatives under [~reduction]) *)
        stats : dfs_stats;
      }
    | Dfs_state_limit of int
    | Dfs_exhausted of { reason : Governor.reason; stats : dfs_stats }
        (** a resource governor tripped mid-search; resumable when a
            checkpoint policy was in force *)

  (** [fail_on_cycle] (default true) reports the first cycle as a
      wait-freedom violation; pass [false] for protocols that are only
      obstruction-free (e.g. consensus), where cycles are expected and only
      the invariant is being checked. *)
  let check_exhaustive ?(max_states = 100_000_000) ?(fail_on_cycle = true)
      ?invariant ?stop_expansion ?progress ?(reduction = false) ?prune
      ?governor ?ckpt ?(resume = false) ?(ckpt_extra = []) ~cfg ~wiring
      ~inputs () =
    guard_processors ~engine:"Explorer.check_exhaustive" (P.processors cfg);
    let canon = if reduction then Some (canon_of ~cfg ~wiring ~inputs) else None in
    let canonical key =
      match canon with Some c -> Canon.canonicalize c key | None -> key
    in
    let context =
      Fmt.str "dfs|%d|%a|%b|%b|%b|%S" (key_width cfg) Anonmem.Wiring.pp wiring
        reduction fail_on_cycle (prune <> None)
        (canonical (encode_state cfg (init_state ~cfg ~inputs)))
    in
    let resumed =
      match ckpt with
      | Some { Checkpoint.path; _ } when resume && Sys.file_exists path ->
          let sections = Checkpoint.load ~path in
          let ctx = Bytes.to_string (Checkpoint.find "context" sections) in
          if not (String.equal ctx context) then
            raise
              (Checkpoint.Corrupt_checkpoint
                 "Explorer.check_exhaustive: checkpoint context mismatch");
          Some sections
      | _ -> None
    in
    let table, colors =
      match resumed with
      | Some sections ->
          ( State_table.deserialize (Checkpoint.find "table" sections),
            State_table.Packed_vec.deserialize
              (Checkpoint.find "colors" sections) )
      | None ->
          ( State_table.create ~log2_slots:20 ~key_width:(key_width cfg) (),
            State_table.Packed_vec.create ~stride:1 () )
    in
    (* 1 = gray (on the DFS path), 2 = black (done) *)
    let n = P.processors cfg in
    let transitions = ref 0 and terminals = ref 0 and max_depth = ref 0 in
    let pruned = ref 0 in
    let stats () =
      {
        dfs_states = State_table.length table;
        dfs_transitions = !transitions;
        dfs_terminals = !terminals;
        dfs_max_depth = !max_depth;
        dfs_pruned = !pruned;
      }
    in
    let outcome = ref None in
    (* Frames: (id, key, pid of the step that entered this frame, next
       processor index to try).  The decoded state is rebuilt per
       successor; keeping it would bloat the path. *)
    let stack = ref [] and depth = ref 0 in
    (match resumed with
    | Some sections ->
        let frames =
          Checkpoint.ints_of_bytes (Checkpoint.find "frames" sections)
        in
        if Array.length frames mod 4 <> 0 then
          raise
            (Checkpoint.Corrupt_checkpoint
               "Explorer.check_exhaustive: frame section not a multiple of 4 \
                ints");
        (* Stored bottom-to-top; consing rebuilds head = deepest frame.
           Keys are recovered from the table arena, not stored twice. *)
        for i = 0 to (Array.length frames / 4) - 1 do
          let id = frames.(4 * i) in
          stack :=
            ( id,
              State_table.key_of_id table id,
              frames.((4 * i) + 1),
              ref frames.((4 * i) + 2),
              ref (frames.((4 * i) + 3) = 1) )
            :: !stack
        done;
        let counters =
          Checkpoint.ints_of_bytes (Checkpoint.find "counters" sections)
        in
        if Array.length counters <> 5 then
          raise
            (Checkpoint.Corrupt_checkpoint
               "Explorer.check_exhaustive: counter section of wrong length");
        transitions := counters.(0);
        terminals := counters.(1);
        max_depth := counters.(2);
        depth := counters.(3);
        pruned := counters.(4)
    | None -> ());
    let save_ckpt path =
      let frames =
        List.rev !stack
        |> List.concat_map (fun (id, _, entered_by, next_p, any_enabled) ->
               [ id; entered_by; !next_p; (if !any_enabled then 1 else 0) ])
        |> Array.of_list
      in
      Checkpoint.save ~path
        ([
           ("context", Bytes.of_string context);
           ("table", State_table.serialize table);
           ("colors", State_table.Packed_vec.serialize colors);
           ("frames", Checkpoint.bytes_of_ints frames);
           ( "counters",
             Checkpoint.bytes_of_ints
               [| !transitions; !terminals; !max_depth; !depth; !pruned |] );
         ]
        @ ckpt_extra)
    in
    (* Only called for keys [probe]d absent, so [intern] always inserts and
       the returned id equals the colors index pushed alongside. *)
    let add_state key ~entered_by st =
      let id = State_table.intern table key in
      ignore (State_table.Packed_vec.push colors 1);
      (match progress with
      | Some f when id land ((1 lsl 20) - 1) = 0 -> f id
      | _ -> ());
      (match invariant with
      | Some check -> (
          match check st with
          | Ok () -> ()
          | Error message ->
              if !outcome = None then
                let record =
                  match canon with
                  | None ->
                      let path =
                        (List.rev_map (fun (_, _, pid, _, _) -> pid) !stack
                        |> List.filter (fun pid -> pid >= 0))
                        @ (if entered_by >= 0 then [ entered_by ] else [])
                      in
                      Dfs_invariant_failed
                        { message; state = st; path; stats = stats () }
                  | Some c ->
                      let keys =
                        match List.rev_map (fun (_, k, _, _, _) -> k) !stack with
                        | [] -> []  (* violation at the initial state *)
                        | _root :: ancestors -> ancestors @ [ key ]
                      in
                      let steps = concretize ~cfg ~wiring ~canon:c ~inputs keys in
                      let state =
                        match List.rev steps with (_, s) :: _ -> s | [] -> st
                      in
                      Dfs_invariant_failed
                        {
                          message;
                          state;
                          path = List.map fst steps;
                          stats = stats ();
                        }
                in
                outcome := Some record)
      | None -> ());
      stack := (id, key, entered_by, ref 0, ref false) :: !stack;
      incr depth;
      if !depth > !max_depth then max_depth := !depth;
      id
    in
    (if resumed = None then
       let init = init_state ~cfg ~inputs in
       let key0 = canonical (encode_state cfg init) in
       ignore (add_state key0 ~entered_by:(-1) init));
    let limit = ref false in
    let exhausted = ref None in
    let ticks = ref 0 in
    while
      !stack <> [] && !outcome = None && (not !limit) && !exhausted = None
    do
      incr ticks;
      (match ckpt with
      | Some { Checkpoint.path; every_states }
        when every_states > 0 && !ticks mod every_states = 0 ->
          save_ckpt path
      | _ -> ());
      (match governor with
      | Some g -> (
          match Governor.tick g with
          | Some reason ->
              exhausted := Some reason;
              (match ckpt with
              | Some { Checkpoint.path; _ } -> save_ckpt path
              | None -> ())
          | None -> ())
      | None -> ());
      if !exhausted = None then begin
      match !stack with
      | [] -> ()
      | (id, key, _, next_p, any_enabled) :: rest ->
          (if !next_p = 0 then
             match stop_expansion with
             | Some f when f (decode_state cfg key) ->
                 (* pruned leaf: skip successors; not a terminal state *)
                 next_p := n;
                 any_enabled := true
             | _ -> ());
          if !next_p >= n then begin
            if not !any_enabled then incr terminals;
            State_table.Packed_vec.set colors id 2;
            stack := rest;
            decr depth
          end
          else begin
            let p = !next_p in
            incr next_p;
            let st = decode_state cfg key in
            if P.next cfg st.locals.(p) <> None then begin
              any_enabled := true;
              incr transitions;
              let st' = successor cfg wiring st p in
              match prune with
              | Some f when f st' -> incr pruned
              | _ -> (
              let key' = canonical (encode_state cfg st') in
              match State_table.find table key' with
              | None ->
                  if State_table.length table >= max_states then limit := true
                  else ignore (add_state key' ~entered_by:p st')
              | Some id' ->
                  if
                    fail_on_cycle
                    && State_table.Packed_vec.get colors id' = 1
                  then begin
                    (* back edge: a cycle through id'.  Collect the pids of
                       the path segment from id' to here, plus p. *)
                    let rec collect acc = function
                      | (fid, _, entered_by, _, _) :: rest ->
                          if fid = id' then acc
                          else collect (entered_by :: acc) rest
                      | [] -> acc
                    in
                    let pids = p :: collect [] !stack in
                    outcome :=
                      Some
                        (Dfs_cycle
                           {
                             processors = List.sort_uniq compare pids;
                             stats = stats ();
                           })
                  end)
            end
          end
      end
    done;
    if !exhausted <> None then
      Dfs_exhausted { reason = Option.get !exhausted; stats = stats () }
    else if !limit then Dfs_state_limit (State_table.length table)
    else match !outcome with Some r -> r | None -> Dfs_ok (stats ())

  (** Check an invariant and wait-freedom across a set of wirings —
      by default every wiring with processor 0's permutation pinned to the
      identity (register anonymity makes the restriction lossless) — for
      one input assignment, using the lean DFS pass.  [on_wiring] observes
      each per-wiring result as it completes.  [~reduction:true]
      additionally quotients each per-wiring space by its anonymity
      symmetries. *)
  (* Sweep position for multi-wiring checkpoints: the wiring index plus
     the summary accumulated over the wirings *before* it.  Stored as an
     extra section in the per-wiring DFS checkpoint, so one file resumes
     both the in-flight wiring and the sweep around it. *)
  let sweep_to_ints idx s =
    [|
      idx;
      s.wirings_checked;
      s.total_states;
      s.max_space_states;
      s.total_transitions;
      s.terminal_states;
      s.total_pruned;
      (if s.all_wait_free then 1 else 0);
    |]

  let sweep_of_ints a =
    if Array.length a <> 8 then
      raise
        (Checkpoint.Corrupt_checkpoint "sweep section of wrong length");
    ( a.(0),
      {
        wirings_checked = a.(1);
        total_states = a.(2);
        max_space_states = a.(3);
        total_transitions = a.(4);
        terminal_states = a.(5);
        total_pruned = a.(6);
        all_wait_free = a.(7) = 1;
      } )

  let check_all_wirings ?max_states ?invariant ?(require_wait_free = true)
      ?on_wiring ?wirings ?(reduction = false) ?prune ?governor ?ckpt
      ?(resume = false) ~cfg ~inputs () =
    let n = P.processors cfg and m = P.registers cfg in
    let wirings =
      match wirings with
      | Some ws -> ws
      | None -> Anonmem.Wiring.enumerate ~n ~m ~fix_first:true
    in
    let wiring_arr = Array.of_list wirings in
    let start_idx, start_summary, resume_idx =
      match ckpt with
      | Some { Checkpoint.path; _ } when resume && Sys.file_exists path ->
          let sections = Checkpoint.load ~path in
          let idx, s =
            sweep_of_ints
              (Checkpoint.ints_of_bytes (Checkpoint.find "sweep" sections))
          in
          if idx < 0 || idx >= Array.length wiring_arr then
            raise
              (Checkpoint.Corrupt_checkpoint
                 "sweep index outside the wiring list");
          (idx, s, Some idx)
      | _ -> (0, empty_summary, None)
    in
    let rec go idx summary =
      if idx >= Array.length wiring_arr then Ok summary
      else
        let wiring = wiring_arr.(idx) in
        let ckpt_extra =
          [ ("sweep", Checkpoint.bytes_of_ints (sweep_to_ints idx summary)) ]
        in
        match
          check_exhaustive ?max_states ?invariant ~reduction ?prune ?governor
            ?ckpt ~resume:(resume_idx = Some idx) ~ckpt_extra ~cfg ~wiring
            ~inputs ()
        with
        | Dfs_exhausted { reason; stats } ->
            Error
              (Fmt.str "exhausted (%a) at %d states" Governor.pp_reason reason
                 stats.dfs_states)
        | Dfs_state_limit k -> Error (Fmt.str "state limit hit at %d states" k)
        | Dfs_invariant_failed { message; _ } ->
            Error
              (Fmt.str "invariant violated under wiring %a: %s"
                 Anonmem.Wiring.pp wiring message)
        | Dfs_cycle { processors; stats } ->
            let summary =
              {
                summary with
                wirings_checked = summary.wirings_checked + 1;
                total_states = summary.total_states + stats.dfs_states;
                total_pruned = summary.total_pruned + stats.dfs_pruned;
                all_wait_free = false;
              }
            in
            (match on_wiring with Some f -> f wiring summary | None -> ());
            if require_wait_free then
              Error
                (Fmt.str
                   "wait-freedom violated under wiring %a: processors %a diverge"
                   Anonmem.Wiring.pp wiring
                   Fmt.(list ~sep:comma int)
                   processors)
            else go (idx + 1) summary
        | Dfs_ok stats ->
            let summary =
              {
                summary with
                wirings_checked = summary.wirings_checked + 1;
                total_states = summary.total_states + stats.dfs_states;
                max_space_states = max summary.max_space_states stats.dfs_states;
                total_transitions =
                  summary.total_transitions + stats.dfs_transitions;
                terminal_states = summary.terminal_states + stats.dfs_terminals;
                total_pruned = summary.total_pruned + stats.dfs_pruned;
              }
            in
            (match on_wiring with Some f -> f wiring summary | None -> ());
            go (idx + 1) summary
    in
    go start_idx start_summary

  (** {1 Fingerprint (hash-compacted) exploration}

      The exact engines above are bounded by RAM: the visited set stores
      every key's bytes.  This engine follows TLC's hash-compaction
      playbook instead — a state is remembered only as the 64-bit
      fingerprint of its canonical key, in a {!Fingerprint_set} whose RAM
      tier is capped by [ram_budget_bytes] and whose overflow spills to
      sorted on-disk runs.  The BFS proceeds in {e layers}, and candidate
      successors are probed in batches of up to [batch_states] keys, so
      each spill run is streamed once per batch rather than once per
      state.

      The engine is {e safety-only}: it stores no edges or parents, so it
      decides invariants and counts states/transitions/terminals but
      cannot decide wait-freedom.  It is also {e lossy} with a quantified
      error: a 64-bit collision silently omits a subtree, with total
      probability at most the reported birthday bound (states² · 2⁻⁶⁴).
      Counterexample traces are reconstructed by rerunning the exact BFS
      (minimal-length, as usual) — intended for the test-scale spaces
      where violations are planted; at frontier scale the message alone
      still identifies the failing invariant.

      Checkpoints are written at batch boundaries (the consistent points:
      every expanded state's candidates have been flushed into the set):
      the RAM tier and a manifest pinning the run files ride in the
      checkpoint via {!Fingerprint_set.to_sections}, and the two frontier
      halves (the unexpanded remainder of the current layer, the
      accumulated next layer) are stored as fixed-width key runs.  On a
      governor trip the run files are kept on disk for the resume;
      otherwise {!Fingerprint_set.close} deletes them. *)

  type fp_stats = {
    fp_states : int;
    fp_transitions : int;
    fp_terminals : int;
    fp_pruned : int;
    fp_layers : int;  (** BFS depth reached (layers fully expanded) *)
    fp_runs : int;  (** spill runs written *)
    fp_bytes_spilled : int;
    fp_bound : float;  (** birthday omission bound for this exploration *)
  }

  type fp_result =
    | Fp_explored of fp_stats
    | Fp_invariant_failed of {
        stats : fp_stats;
        message : string;
        trace : (int * state) list;
            (** minimal-length counterexample, rebuilt by the exact BFS *)
      }
    | Fp_state_limit of int
    | Fp_exhausted of { reason : Governor.reason; states : int }

  let explore_fp ?(max_states = 1_000_000_000) ?invariant ?stop_expansion
      ?progress ?(reduction = false) ?prune ?governor ?ckpt ?(resume = false)
      ?(ckpt_extra = []) ?(ram_budget_bytes = 64 * 1024 * 1024)
      ?(batch_states = 1 lsl 20) ?spill_dir ~cfg ~wiring ~inputs () =
    guard_processors ~engine:"Explorer.explore_fp" (P.processors cfg);
    let canon = if reduction then Some (canon_of ~cfg ~wiring ~inputs) else None in
    let canonical key =
      match canon with Some c -> Canon.canonicalize c key | None -> key
    in
    let kw = key_width cfg in
    let context =
      Fmt.str "fpbfs|%d|%a|%b|%b|%d|%S" kw Anonmem.Wiring.pp wiring reduction
        (prune <> None) ram_budget_bytes
        (canonical (encode_state cfg (init_state ~cfg ~inputs)))
    in
    (* Spill runs must live next to the checkpoint when there is one: a
       resumed run re-opens them by manifest. *)
    let dir =
      match (spill_dir, ckpt) with
      | Some d, _ -> Some d
      | None, Some { Checkpoint.path; _ } -> Some (path ^ ".runs")
      | None, None -> None
    in
    let resumed =
      match ckpt with
      | Some { Checkpoint.path; _ } when resume && Sys.file_exists path ->
          let sections = Checkpoint.load ~path in
          let ctx = Bytes.to_string (Checkpoint.find "context" sections) in
          if not (String.equal ctx context) then
            raise
              (Checkpoint.Corrupt_checkpoint
                 "Explorer.explore_fp: checkpoint context mismatch");
          Some sections
      | _ -> None
    in
    let keys_of_section b =
      let len = Bytes.length b in
      if len mod kw <> 0 then
        raise
          (Checkpoint.Corrupt_checkpoint
             "Explorer.explore_fp: frontier section not a multiple of the \
              key width");
      List.init (len / kw) (fun i -> Bytes.sub_string b (i * kw) kw)
    in
    let states = ref 0
    and transitions = ref 0
    and terminals = ref 0
    and pruned = ref 0
    and layers = ref 0
    and expanded = ref 0 in
    let cur = ref [] and next = ref [] (* reversed accumulator *) in
    let violation = ref None in
    let fps =
      match resumed with
      | Some sections ->
          let dir =
            match dir with
            | Some d -> d
            | None -> assert false (* resume implies a checkpoint path *)
          in
          let fps = Fingerprint_set.of_sections ~dir sections in
          let c =
            Checkpoint.ints_of_bytes (Checkpoint.find "counters" sections)
          in
          if Array.length c <> 6 then
            raise
              (Checkpoint.Corrupt_checkpoint
                 "Explorer.explore_fp: counter section of wrong length");
          states := c.(0);
          transitions := c.(1);
          terminals := c.(2);
          pruned := c.(3);
          layers := c.(4);
          expanded := c.(5);
          cur := keys_of_section (Checkpoint.find "fcur" sections);
          next := List.rev (keys_of_section (Checkpoint.find "fnext" sections));
          fps
      | None -> Fingerprint_set.create ~ram_budget_bytes ?dir ()
    in
    let concat_keys keys =
      let b = Buffer.create (kw * List.length keys) in
      List.iter (Buffer.add_string b) keys;
      Buffer.to_bytes b
    in
    let save_ckpt path =
      Checkpoint.save ~path
        ([
           ("context", Bytes.of_string context);
           ( "counters",
             Checkpoint.bytes_of_ints
               [|
                 !states; !transitions; !terminals; !pruned; !layers; !expanded;
               |] );
           ("fcur", concat_keys !cur);
           ("fnext", concat_keys (List.rev !next));
         ]
        @ Fingerprint_set.to_sections fps
        @ ckpt_extra)
    in
    let last_ckpt = ref !expanded in
    let maybe_ckpt () =
      match ckpt with
      | Some { Checkpoint.path; every_states }
        when every_states > 0 && !expanded - !last_ckpt >= every_states ->
          save_ckpt path;
          last_ckpt := !expanded
      | _ -> ()
    in
    let limit = ref false in
    let cands = ref [] and ncands = ref 0 in
    (* Probe a batch: fresh keys are counted, invariant-checked on their
       decoded representative, and queued for the next layer. *)
    let flush () =
      if !cands <> [] then begin
        let arr = Array.of_list (List.rev !cands) in
        cands := [];
        ncands := 0;
        let fresh = Fingerprint_set.add_batch fps arr in
        Array.iteri
          (fun i key ->
            if fresh.(i) then begin
              incr states;
              (match progress with
              | Some f when !states land ((1 lsl 20) - 1) = 0 -> f !states
              | _ -> ());
              (match invariant with
              | Some check -> (
                  match check (decode_state cfg key) with
                  | Ok () -> ()
                  | Error message ->
                      if !violation = None then violation := Some message)
              | None -> ());
              next := key :: !next
            end)
          arr;
        if !states >= max_states then limit := true
      end
    in
    let exhausted = ref None in
    (if resumed = None then
       let key0 = canonical (encode_state cfg (init_state ~cfg ~inputs)) in
       let fresh = Fingerprint_set.add_batch fps [| key0 |] in
       assert fresh.(0);
       states := 1;
       (match invariant with
       | Some check -> (
           match check (decode_state cfg key0) with
           | Ok () -> ()
           | Error message -> violation := Some message)
       | None -> ());
       cur := [ key0 ]);
    let running = ref (!violation = None) in
    while !running do
      (* Consume the current layer, batching candidate successors. *)
      while
        !cur <> [] && !violation = None && !exhausted = None && not !limit
      do
        (match governor with
        | Some g -> (
            match Governor.tick g with
            | Some reason -> exhausted := Some reason
            | None -> ())
        | None -> ());
        if !exhausted = None then begin
          match !cur with
          | [] -> ()
          | key :: rest ->
              cur := rest;
              incr expanded;
              let st = decode_state cfg key in
              let expand =
                match stop_expansion with Some f -> not (f st) | None -> true
              in
              if expand then begin
                match enabled cfg st with
                | [] -> incr terminals
                | en ->
                    List.iter
                      (fun p ->
                        let st' = successor cfg wiring st p in
                        match prune with
                        | Some f when f st' -> incr pruned
                        | _ ->
                            incr transitions;
                            cands := canonical (encode_state cfg st') :: !cands;
                            incr ncands)
                      en
              end;
              if !ncands >= batch_states then begin
                flush ();
                maybe_ckpt ()
              end
        end
      done;
      (* Pause point: flush what is pending so the set and the frontier
         halves are a consistent image, then classify. *)
      flush ();
      if !violation <> None then running := false
      else if !exhausted <> None then begin
        (match ckpt with
        | Some { Checkpoint.path; _ } -> save_ckpt path
        | None -> ());
        running := false
      end
      else if !limit then running := false
      else if !next = [] then running := false
      else begin
        maybe_ckpt ();
        cur := List.rev !next;
        next := [];
        incr layers
      end
    done;
    let stats () =
      {
        fp_states = !states;
        fp_transitions = !transitions;
        fp_terminals = !terminals;
        fp_pruned = !pruned;
        fp_layers = !layers;
        fp_runs = Fingerprint_set.spilled_runs fps;
        fp_bytes_spilled = Fingerprint_set.spill_bytes fps;
        fp_bound = Fingerprint_set.omission_bound fps;
      }
    in
    match !violation with
    | Some message ->
        let st = stats () in
        Fingerprint_set.close fps;
        (* Minimal counterexample via the exact engine (same quotient,
           same oracle) — the fingerprint set has no parents to walk. *)
        let trace =
          match
            explore ?invariant ?stop_expansion ~reduction ?prune ~cfg ~wiring
              ~inputs ()
          with
          | Invariant_failed (_, v) -> v.trace
          | _ -> []
        in
        Fp_invariant_failed { stats = st; message; trace }
    | None ->
        if !exhausted <> None then begin
          let n = !states in
          Fingerprint_set.close ~keep_runs:(ckpt <> None) fps;
          Fp_exhausted { reason = Option.get !exhausted; states = n }
        end
        else if !limit then begin
          let n = !states in
          Fingerprint_set.close fps;
          Fp_state_limit n
        end
        else begin
          let st = stats () in
          Fingerprint_set.close fps;
          Fp_explored st
        end

  (* Sweep position for multi-wiring fingerprint checkpoints; the float
     bound travels as the two 32-bit halves of its IEEE-754 image (the
     int sections are 63-bit-safe, a raw bits_of_float is not). *)
  let fp_sweep_to_ints idx s =
    let bits = Int64.bits_of_float s.fp_omission_bound in
    [|
      idx;
      s.fp_wirings;
      s.fp_total_states;
      s.fp_max_space_states;
      s.fp_total_transitions;
      s.fp_terminal_states;
      s.fp_total_pruned;
      s.fp_spilled_runs;
      s.fp_spill_bytes;
      Int64.to_int (Int64.logand bits 0xffffffffL);
      Int64.to_int (Int64.shift_right_logical bits 32);
    |]

  let fp_sweep_of_ints a =
    if Array.length a <> 11 then
      raise
        (Checkpoint.Corrupt_checkpoint "fp sweep section of wrong length");
    let bits =
      Int64.logor
        (Int64.of_int a.(9))
        (Int64.shift_left (Int64.of_int a.(10)) 32)
    in
    ( a.(0),
      {
        fp_wirings = a.(1);
        fp_total_states = a.(2);
        fp_max_space_states = a.(3);
        fp_total_transitions = a.(4);
        fp_terminal_states = a.(5);
        fp_total_pruned = a.(6);
        fp_spilled_runs = a.(7);
        fp_spill_bytes = a.(8);
        fp_omission_bound = Int64.float_of_bits bits;
      } )

  (** Safety-only sweep over wirings with the fingerprint engine: same
      iteration, checkpointing and error-string contract as
      {!check_all_wirings}, but RAM-bounded and without wait-freedom
      verdicts.  A fresh fingerprint set serves each wiring (runs are
      deleted between wirings); the summary's omission bound is the union
      bound over the per-wiring bounds. *)
  let check_all_wirings_fp ?max_states ?invariant ?on_wiring ?wirings
      ?(reduction = false) ?prune ?governor ?ckpt ?(resume = false)
      ?ram_budget_bytes ?batch_states ?spill_dir ~cfg ~inputs () =
    let n = P.processors cfg and m = P.registers cfg in
    let wirings =
      match wirings with
      | Some ws -> ws
      | None -> Anonmem.Wiring.enumerate ~n ~m ~fix_first:true
    in
    let wiring_arr = Array.of_list wirings in
    let start_idx, start_summary, resume_idx =
      match ckpt with
      | Some { Checkpoint.path; _ } when resume && Sys.file_exists path ->
          let sections = Checkpoint.load ~path in
          let idx, s =
            fp_sweep_of_ints
              (Checkpoint.ints_of_bytes (Checkpoint.find "fp_sweep" sections))
          in
          if idx < 0 || idx >= Array.length wiring_arr then
            raise
              (Checkpoint.Corrupt_checkpoint
                 "fp sweep index outside the wiring list");
          (idx, s, Some idx)
      | _ -> (0, empty_fp_summary, None)
    in
    let rec go idx summary =
      if idx >= Array.length wiring_arr then Ok summary
      else
        let wiring = wiring_arr.(idx) in
        let ckpt_extra =
          [ ("fp_sweep", Checkpoint.bytes_of_ints (fp_sweep_to_ints idx summary)) ]
        in
        match
          explore_fp ?max_states ?invariant ~reduction ?prune ?governor ?ckpt
            ~resume:(resume_idx = Some idx) ~ckpt_extra ?ram_budget_bytes
            ?batch_states ?spill_dir ~cfg ~wiring ~inputs ()
        with
        | Fp_exhausted { reason; states } ->
            Error
              (Fmt.str "exhausted (%a) at %d states" Governor.pp_reason reason
                 states)
        | Fp_state_limit k -> Error (Fmt.str "state limit hit at %d states" k)
        | Fp_invariant_failed { message; _ } ->
            Error
              (Fmt.str "invariant violated under wiring %a: %s"
                 Anonmem.Wiring.pp wiring message)
        | Fp_explored st ->
            let summary =
              {
                fp_wirings = summary.fp_wirings + 1;
                fp_total_states = summary.fp_total_states + st.fp_states;
                fp_max_space_states =
                  max summary.fp_max_space_states st.fp_states;
                fp_total_transitions =
                  summary.fp_total_transitions + st.fp_transitions;
                fp_terminal_states =
                  summary.fp_terminal_states + st.fp_terminals;
                fp_total_pruned = summary.fp_total_pruned + st.fp_pruned;
                fp_omission_bound = summary.fp_omission_bound +. st.fp_bound;
                fp_spilled_runs = summary.fp_spilled_runs + st.fp_runs;
                fp_spill_bytes = summary.fp_spill_bytes + st.fp_bytes_spilled;
              }
            in
            (match on_wiring with Some f -> f wiring summary | None -> ());
            go (idx + 1) summary
    in
    go start_idx start_summary
end
