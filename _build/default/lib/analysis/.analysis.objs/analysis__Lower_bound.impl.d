lib/analysis/lower_bound.ml: Algorithms Anonmem Array Fmt Iset List Option Permutation Repro_util Tasks
