(** The write–scan-with-levels engine shared by the snapshot algorithm
    (Figure 3), its long-lived variant (Section 7), the renaming algorithm
    (Figure 4, which runs on top of the snapshot) and the consensus
    algorithm (Figure 5, which runs on top of the long-lived snapshot).

    The engine is parametric in the element type of views: the snapshot and
    renaming tasks use integer inputs (group identifiers) while consensus
    stores (value, timestamp) pairs.

    One round of the engine is:
    {ul
    {- {e write phase}: write the record [(view, level)] to the next
       register of a private cyclic order (each register is written once
       before any is written twice — the fairness required by the paper);}
    {- {e scan phase}: read all [M] registers one by one; if every register
       contained exactly the current view, the level becomes the minimum
       level read plus one, otherwise it resets to 0; finally all values
       read are added to the view.}}

    Termination policies differ between clients and are layered on top:
    Figure 3 terminates at level [N]; the long-lived variant resets the
    level on each new invocation; Figure 1's plain write–scan loop does not
    use levels at all and is implemented separately
    ({!module:Write_scan}). *)

open Repro_util

module Make (Vset : Sorted_set.S) = struct
  module Vset = Vset
  (** Re-exported so clients can name the view type as [Core.Vset.t]. *)

  type cfg = { n : int; m : int }
  (** [n] processors (the termination level of Figure 3), [m] registers.
      The paper uses [m = n]; the Section 2.1 lower-bound demonstration
      instantiates [m = n - 1]. *)

  let cfg ~n ~m =
    if n < 1 then invalid_arg "Snapshot_core.cfg: need at least 1 processor";
    if m < 1 then invalid_arg "Snapshot_core.cfg: need at least 1 register";
    { n; m }

  type value = { view : Vset.t; level : int }

  (** Scan bookkeeping.  The paper's pseudocode accumulates the reads of a
      scan and folds them into the view only when the scan completes; here
      reads are folded into the view immediately.  The two are observably
      equivalent — the view is externally visible only through writes, a
      processor never writes mid-scan, and the [all_own] comparisons are
      unaffected (while [all_own] holds every read equals the view, so the
      view has not grown; once it fails its result no longer matters) —
      and dropping the separate accumulator shrinks the model checker's
      state space by an order of magnitude.  [min_level] is meaningful only
      while [all_own] holds and is pinned to 0 otherwise, for the same
      canonicalization reason. *)
  type scan = { pos : int; all_own : bool; min_level : int }

  type phase = Writing | Scanning of scan

  type local = {
    view : Vset.t;
    level : int;
    next_write : int;  (** next private register index in the cyclic order *)
    phase : phase;
  }

  let register_init _cfg = { view = Vset.empty; level = 0 }

  let init _cfg input =
    { view = Vset.singleton input; level = 0; next_write = 0; phase = Writing }

  let init_view _cfg view = { view; level = 0; next_write = 0; phase = Writing }

  (** The pending operation of a processor that has not terminated.  The
      engine itself never terminates; clients decide when to stop asking. *)
  let next _cfg l =
    match l.phase with
    | Writing ->
        Anonmem.Protocol.Write (l.next_write, { view = l.view; level = l.level })
    | Scanning { pos; _ } -> Anonmem.Protocol.Read pos

  let apply_write cfg l =
    match l.phase with
    | Scanning _ -> invalid_arg "Snapshot_core.apply_write: not writing"
    | Writing ->
        {
          l with
          next_write = (l.next_write + 1) mod cfg.m;
          phase =
            Scanning
              (* Levels in registers never exceed [n], so [n] is the
                 identity for the running minimum. *)
              { pos = 0; all_own = true; min_level = cfg.n };
        }

  let apply_read cfg l ~reg (v : value) =
    match l.phase with
    | Writing -> invalid_arg "Snapshot_core.apply_read: not scanning"
    | Scanning s ->
        if reg <> s.pos then invalid_arg "Snapshot_core.apply_read: wrong register";
        let all_own = s.all_own && Vset.equal v.view l.view in
        (* While [all_own] holds the read equals the view, so the union is
           the view itself; afterwards reads fold in immediately (see the
           comment on [scan]). *)
        let view = if all_own then l.view else Vset.union l.view v.view in
        let s =
          {
            pos = s.pos + 1;
            all_own;
            min_level = (if all_own then min s.min_level v.level else 0);
          }
        in
        if s.pos < cfg.m then { l with view; phase = Scanning s }
        else
          (* Scan complete: the level becomes one more than the minimum
             level read when every register held exactly the scan-start
             view (lines 20–24 of Figure 3), capped at [n], the
             termination level. *)
          let level = if s.all_own then min (s.min_level + 1) cfg.n else 0 in
          { l with view; level; phase = Writing }

  (** Whether the processor is between rounds (about to write).  Level-based
      termination decisions are made only at this point, right after a scan
      completed. *)
  let at_round_boundary l = l.phase = Writing

  let reached_level cfg l = at_round_boundary l && l.level >= cfg.n

  (** A new invocation of the long-lived variant (Section 7): keep all
      state, add the new input to the view, reset the level to 0. *)
  let invoke _cfg l input =
    { l with view = Vset.add input l.view; level = 0 }

  let pp_velt pp_elt ppf (v : value) =
    Fmt.pf ppf "(%a,%d)" (Vset.pp pp_elt) v.view v.level

  let pp_local pp_elt ppf l =
    let pp_phase ppf = function
      | Writing -> Fmt.pf ppf "write#%d" l.next_write
      | Scanning { pos; all_own; _ } ->
          Fmt.pf ppf "scan@%d%s" pos (if all_own then "=" else "!")
    in
    Fmt.pf ppf "{view=%a level=%d %a}" (Vset.pp pp_elt) l.view l.level pp_phase
      l.phase
end
