(** Figure 4: adaptive renaming from group snapshots, after Bar-Noy and
    Dolev (1989).

    A processor runs the Figure-3 snapshot with its group identifier as
    input; from its snapshot [S] of size [z] and its 1-based rank [r]
    within the sorted order of [S] it takes the name [z(z-1)/2 + r].  With
    [M] participating groups all names fall in [1 .. M(M+1)/2], processors
    of different groups never share a name (the subtle Section-6
    guarantee), and same-group sharing — which group solvability permits —
    can occur.  The algorithm is adaptive: it never needs to know how many
    groups exist.

    Implements {!Anonmem.Protocol.S}; drive it through
    [Anonmem.System.Make (Algorithms.Renaming)] or [Core.solve_renaming]. *)

open Repro_util

type cfg = Snapshot.cfg = { n : int; m : int }

val cfg : n:int -> m:int -> cfg
val standard : n:int -> cfg

type value = Snapshot.value
type input = int

type output = { name_out : int; size : int; rank : int; snapshot : Iset.t }
(** The chosen name together with the snapshot it was derived from
    ([name_out = size*(size-1)/2 + rank]), kept for validation. *)

type local = { group : int; core : Snapshot.local }

val name : string
val processors : cfg -> int
val registers : cfg -> int
val register_init : cfg -> value
val init : cfg -> input -> local
val halted : cfg -> local -> bool
val next : cfg -> local -> value Anonmem.Protocol.operation option
val apply_read : cfg -> local -> reg:int -> value -> local
val apply_write : cfg -> local -> local
val output : cfg -> local -> output option

val flat :
  cfg ->
  phys:int array ->
  inputs:input array ->
  registers:value array ->
  locals:local array ->
  value Anonmem.Protocol.flat option

val name_of_snapshot : group:int -> Iset.t -> output
(** The Bar-Noy–Dolev rank rule in isolation; raises [Invalid_argument]
    when [group] is not in the snapshot. *)

val max_name : groups:int -> int
(** The adaptive bound [M(M+1)/2]. *)

val pp_value : cfg -> value Fmt.t
val pp_local : cfg -> local Fmt.t
val pp_output : cfg -> output Fmt.t
