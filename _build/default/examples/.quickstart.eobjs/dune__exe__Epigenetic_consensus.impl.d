examples/epigenetic_consensus.ml: Array Core Int Printf String
