lib/tasks/long_lived_task.ml: Array Fmt Hashtbl Iset List Option Outcome Repro_util
