lib/util/sorted_set.mli: Fmt
