(** The empirical feasibility map for the protocol portfolio.

    The Raynal–Taubenfeld symmetric mutex — and the desanonymization
    layer running above it — is deadlock-free in fully-anonymous memory
    exactly when the register count [m] is coprime with every possible
    contention level: [gcd (m, k) = 1] for all [k] in [2..n].  Below
    that, an equal split of the registers among [k] competitors is a
    reachable fair cycle.  Orthogonally there is a covering floor: at
    tiny [m] a pending stale write can obliterate a winner's claims
    ([m = 1] is coprime yet unsolvable — the Burns–Lynch argument; the
    weak-leader protocol loses uniqueness at [m = 1] the same way).

    This module is the pure half of the map: the coprimality predicate,
    the per-cell expectation, the (task, n, m) grids, and the JSON /
    text-table renderers.  The verdict-producing half lives in [Core]
    (it needs the model-checking engines, which sit above this library)
    and is threaded in as the [check] callback of {!run}. *)

open Repro_util

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

(** [coprime_ok ~n ~m]: is [m] coprime with every contention level
    [2..n]?  The membership predicate of the paper-adjacent set [M(n)]. *)
let coprime_ok ~n ~m =
  let rec go k = k > n || (gcd m k = 1 && go (k + 1)) in
  m >= 1 && go 2

(** Why a cell is expected to fail, when it is. *)
type expectation =
  | Clean  (** the protocol's requirements hold: verification must pass *)
  | Noncoprime  (** [gcd (m, k) > 1] for some [k <= n]: expect deadlock *)
  | Below_floor
      (** [m] coprime but below the protocol's covering floor: expect a
          safety or liveness violation from a covering race *)

let pp_expectation ppf = function
  | Clean -> Fmt.string ppf "clean"
  | Noncoprime -> Fmt.string ppf "non-coprime"
  | Below_floor -> Fmt.string ppf "below-floor"

(** [expected ~floor ~coprime ~n ~m]: classification of cell [(n, m)] for
    a protocol requiring [m >= floor] and (when [coprime]) coprimality. *)
let expected ~floor ~coprime ~n ~m =
  if coprime && not (coprime_ok ~n ~m) then Noncoprime
  else if m < floor then Below_floor
  else Clean

(** What the checker reported for a cell. *)
type status =
  | Solved of { wirings : int; states : int }
  | Safety_broken of string
  | Deadlock of string
  | Limit of int
  | Unknown of { reason : string; states : int; checkpoint : string option }
      (** a resource budget ran out mid-cell; [reason] names the budget
          ("wall-clock", "heap", "quota", "interrupted"), [states] how
          far the sweep got, [checkpoint] where to resume from *)

let pp_status ppf = function
  | Solved { wirings; states } ->
      Fmt.pf ppf "solved (%d wirings, %d states)" wirings states
  | Safety_broken msg -> Fmt.pf ppf "safety violation: %s" msg
  | Deadlock msg -> Fmt.pf ppf "deadlock: %s" msg
  | Limit k -> Fmt.pf ppf "resource limit at %d states" k
  | Unknown { reason; states; checkpoint } ->
      Fmt.pf ppf "unknown (%s budget exhausted at %d states%a)" reason states
        Fmt.(option (any ", checkpoint " ++ string))
        checkpoint

let status_keyword = function
  | Solved _ -> "solved"
  | Safety_broken _ -> "safety-violation"
  | Deadlock _ -> "deadlock"
  | Limit _ -> "resource-limit"
  | Unknown _ -> "unknown"

(** Is the status a conclusive verdict about the cell?  Resource limits
    and exhausted budgets are not: a resumed or re-budgeted run must
    recompute them. *)
let status_final = function
  | Solved _ | Safety_broken _ | Deadlock _ -> true
  | Limit _ | Unknown _ -> false

(** Does the observed status confirm the expectation?  Resource limits
    confirm nothing. *)
let confirms expectation status =
  match (expectation, status) with
  | Clean, Solved _ -> true
  | (Noncoprime | Below_floor), (Safety_broken _ | Deadlock _) -> true
  | _ -> false

type cell = {
  task : string;
  n : int;
  m : int;
  expectation : expectation;
  status : status;
}

type grid = {
  g_task : string;  (** checker key and display name *)
  g_floor : int;  (** minimum [m] the protocol documents as sufficient *)
  g_coprime : bool;  (** does the protocol require the coprimality set? *)
  g_cells : (int * int) list;  (** [(n, m)] cells to check, in order *)
}

let span ~n ms = List.map (fun m -> (n, m)) ms

(** The default portfolio grids.  [quick] restricts to [n = 2] (a smoke
    budget); the full map adds the [n = 3] rows that confirm the
    threshold moves with [n] ([m = 3] flips from clean to deadlocked). *)
let grids ?(quick = false) () =
  let mutex_cells =
    span ~n:2 [ 1; 2; 3; 4; 5; 6 ] @ if quick then [] else span ~n:3 [ 1; 2; 3; 4; 5 ]
  in
  (* Naming's n=3 row stops at the threshold flip (m = 3 safety-broken,
     m = 4 deadlocked): its first clean n=3 cell would be m = 5, whose
     full sweep only the packed mutex engine could afford — and naming's
     feasibility is *inherited* from the mutex it wraps (the ledger
     flood adds no register contention of its own; see naming.ml), so
     the mutex (3,5) cell already pins that boundary empirically. *)
  let naming_cells =
    span ~n:2 [ 2; 3; 4; 5 ] @ if quick then [] else span ~n:3 [ 3; 4 ]
  in
  let leader_cells =
    span ~n:2 [ 1; 2; 3; 4 ] @ if quick then [] else span ~n:3 [ 1; 2; 3; 4 ]
  in
  [
    { g_task = "mutex"; g_floor = 3; g_coprime = true; g_cells = mutex_cells };
    { g_task = "naming"; g_floor = 3; g_coprime = true; g_cells = naming_cells };
    { g_task = "leader"; g_floor = 2; g_coprime = false; g_cells = leader_cells };
  ]

(* --- durable-run cell codec ------------------------------------------- *)

(* One cell per line, space-separated, human-greppable:
     task n m solved WIRINGS STATES
     task n m safety-violation MESSAGE...
     task n m deadlock MESSAGE...
     task n m resource-limit K
     task n m unknown REASON STATES CHECKPOINT-or--
   This is the payload format of the run journal (lib/runtime/journal
   frames it with sequence numbers and checksums); it must round-trip
   exactly, which the durability tests assert. *)

let cell_to_record c =
  let status =
    match c.status with
    | Solved { wirings; states } -> Printf.sprintf "solved %d %d" wirings states
    | Safety_broken msg -> "safety-violation " ^ msg
    | Deadlock msg -> "deadlock " ^ msg
    | Limit k -> Printf.sprintf "resource-limit %d" k
    | Unknown { reason; states; checkpoint } ->
        Printf.sprintf "unknown %s %d %s" reason states
          (match checkpoint with None -> "-" | Some p -> p)
  in
  Printf.sprintf "%s %d %d %s" c.task c.n c.m status

let cell_of_record ~floor_of ~coprime_of line =
  let int_opt s = int_of_string_opt s in
  match String.split_on_char ' ' line with
  | task :: ns :: ms :: rest -> (
      match (int_opt ns, int_opt ms) with
      | Some n, Some m -> (
          let status =
            match rest with
            | [ "solved"; w; s ] -> (
                match (int_opt w, int_opt s) with
                | Some wirings, Some states -> Some (Solved { wirings; states })
                | _ -> None)
            | "safety-violation" :: msg when msg <> [] ->
                Some (Safety_broken (String.concat " " msg))
            | "deadlock" :: msg when msg <> [] ->
                Some (Deadlock (String.concat " " msg))
            | [ "resource-limit"; k ] ->
                Option.map (fun k -> Limit k) (int_opt k)
            | [ "unknown"; reason; s; ckpt ] ->
                Option.map
                  (fun states ->
                    Unknown
                      {
                        reason;
                        states;
                        checkpoint = (if ckpt = "-" then None else Some ckpt);
                      })
                  (int_opt s)
            | _ -> None
          in
          match status with
          | None -> None
          | Some status ->
              let expectation =
                expected ~floor:(floor_of task) ~coprime:(coprime_of task) ~n ~m
              in
              Some { task; n; m; expectation; status })
      | _ -> None)
  | _ -> None

(** [floor_of]/[coprime_of] lookups for {!cell_of_record} derived from a
    grid list (unknown tasks get floor 0 / no coprimality, which only
    affects the re-derived expectation, never the status). *)
let grid_params grids =
  let floor_of task =
    match List.find_opt (fun g -> g.g_task = task) grids with
    | Some g -> g.g_floor
    | None -> 0
  and coprime_of task =
    match List.find_opt (fun g -> g.g_task = task) grids with
    | Some g -> g.g_coprime
    | None -> false
  in
  (floor_of, coprime_of)

(** Run the map: [check ~task ~n ~m] produces each cell's status (in
    [Core] this is the exhaustive model checker; tests substitute
    stubs).  [on_cell] fires after each cell for progress reporting.

    Durable runs thread three more hooks.  [cached ~task ~n ~m] is
    consulted first; a [Some] answer (from a prior run's journal)
    short-circuits the checker.  [on_fresh] fires only for cells that
    were actually computed this run — the journal writer, so replayed
    cells are not re-journaled.  [stop ()] is polled before each cell;
    once true the remaining cells are skipped entirely (the SIGINT
    path: the map returned so far is still a valid partial map). *)
let run ?on_cell ?on_fresh ?cached ?(stop = fun () -> false) ~check grids =
  List.concat_map
    (fun g ->
      List.filter_map
        (fun (n, m) ->
          if stop () then None
          else
            let expectation =
              expected ~floor:g.g_floor ~coprime:g.g_coprime ~n ~m
            in
            let from_cache =
              match cached with
              | Some f -> f ~task:g.g_task ~n ~m
              | None -> None
            in
            let status, fresh =
              match from_cache with
              | Some s -> (s, false)
              | None -> (check ~task:g.g_task ~n ~m, true)
            in
            let cell = { task = g.g_task; n; m; expectation; status } in
            if fresh then
              (match on_fresh with Some f -> f cell | None -> ());
            (match on_cell with Some f -> f cell | None -> ());
            Some cell)
        g.g_cells)
    grids

(** Every cell either confirmed its expectation or hit a resource
    limit — no surprises in the map. *)
let all_confirmed cells =
  List.for_all (fun c -> confirms c.expectation c.status) cells

(* --- rendering -------------------------------------------------------- *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 32 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(** Hand-rolled JSON (the repo deliberately has no JSON dependency):
    one object per cell, stable key order, newline-separated — diffable
    and machine-readable. *)
let to_json cells =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n  \"feasibility\": [\n";
  List.iteri
    (fun i c ->
      if i > 0 then Buffer.add_string b ",\n";
      let detail =
        match c.status with
        | Solved { wirings; states } ->
            Printf.sprintf "\"wirings\": %d, \"states\": %d" wirings states
        | Safety_broken msg | Deadlock msg ->
            Printf.sprintf "\"detail\": \"%s\"" (json_escape msg)
        | Limit k -> Printf.sprintf "\"limit\": %d" k
        | Unknown { reason; states; checkpoint } ->
            Printf.sprintf "\"reason\": \"%s\", \"states\": %d%s"
              (json_escape reason) states
              (match checkpoint with
              | None -> ""
              | Some p ->
                  Printf.sprintf ", \"checkpoint\": \"%s\"" (json_escape p))
      in
      Buffer.add_string b
        (Printf.sprintf
           "    {\"task\": \"%s\", \"n\": %d, \"m\": %d, \"coprime\": %b, \
            \"expected\": \"%s\", \"status\": \"%s\", \"confirmed\": %b, %s}"
           (json_escape c.task) c.n c.m
           (coprime_ok ~n:c.n ~m:c.m)
           (Fmt.str "%a" pp_expectation c.expectation)
           (status_keyword c.status)
           (confirms c.expectation c.status)
           detail))
    cells;
  Buffer.add_string b "\n  ],\n";
  Buffer.add_string b
    (Printf.sprintf "  \"all_confirmed\": %b\n}\n" (all_confirmed cells));
  Buffer.contents b

let to_table cells =
  let t =
    Text_table.create
      ~headers:[ "task"; "n"; "m"; "coprime"; "expected"; "verdict"; "ok" ]
  in
  List.iter
    (fun c ->
      Text_table.add_row t
        [
          c.task;
          string_of_int c.n;
          string_of_int c.m;
          (if coprime_ok ~n:c.n ~m:c.m then "yes" else "no");
          Fmt.str "%a" pp_expectation c.expectation;
          status_keyword c.status;
          (if confirms c.expectation c.status then "confirmed" else "!!");
        ])
    cells;
  t
