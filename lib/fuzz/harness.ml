(** The property-based random-execution harness.

    For a given {!Target.S} the harness repeatedly

    + generates a random case ({!Gen.case}: sizes, wiring, inputs,
      adversary shape) from a derived seed,
    + executes it through {!Anonmem.System}, recording the trace and each
      processor's step count,
    + judges the (possibly partial) outcome with the target's task oracle
      plus a wait-freedom check against the target's step budget,

    and on the first failure turns the executed schedule into a finite
    script and minimizes it by greedy delta-debugging ({!Shrink}) — first
    over the schedule, then over processors, registers and inputs — until
    the counterexample is 1-minimal.  Everything is reproducible: the
    campaign seed determines every case, and a shrunk counterexample
    carries a standalone scripted instance replayable from the command
    line. *)

(** A standalone, fully explicit execution: replaying [script] (with
    [faults] re-injected at the same global step times) from the initial
    state of [(n, m, wiring, inputs)] deterministically reproduces the
    run.  This is the serializable form of a counterexample. *)
type instance = {
  n : int;
  m : int;
  wiring_perms : int list list;
  inputs : int array;
  script : int list;
  faults : Anonmem.Fault.plan;
}

type counterexample = {
  case : Gen.case;  (** the original generated case *)
  original_steps : int;  (** steps of the unshrunk failing run *)
  instance : instance;  (** the shrunk scripted execution *)
  failure : Tasks.Task_failure.t;  (** verdict on the shrunk instance *)
  shrink_runs : int;  (** oracle executions spent shrinking *)
}

type report = {
  seed : int;
  iterations : int;  (** cases executed *)
  total_steps : int;  (** shared-memory steps simulated *)
  elapsed : float;  (** CPU seconds *)
  counterexample : counterexample option;
  found_after : (int * float) option;
      (** iteration index and elapsed seconds at the time of the find *)
}

let ints_1based l = String.concat "," (List.map (fun i -> string_of_int (i + 1)) l)

(** The command line reproducing [inst] through [bin/fuzz.exe replay].
    Wiring rows and script entries are printed 1-based, matching the
    p1/r1 convention of every other renderer in the library. *)
let replay_command ~key inst =
  Printf.sprintf
    "fuzz.exe replay --protocol %s --inputs %s --wiring '%s' --script '%s'%s" key
    (String.concat "," (List.map string_of_int (Array.to_list inst.inputs)))
    (String.concat ";" (List.map ints_1based inst.wiring_perms))
    (ints_1based inst.script)
    (match inst.faults with
    | [] -> ""
    | plan ->
        Printf.sprintf " --fault-plan '%s'" (Anonmem.Fault.to_string plan))

module Make (T : Target.S) = struct
  module Sys = Anonmem.System.Make (T.P)
  module Tr = Anonmem.Trace.Make (T.P)

  type run = {
    stop : Sys.stop_reason;
    steps : int;
    outputs : T.P.output option array;
    step_counts : int array;  (** steps taken by each processor *)
    trace : Tr.t;  (** empty when the run took the untraced fast path *)
  }

  (* [record = false] runs without observers: with no fault plan that is
     {!Sys.run}'s zero-observer fast path — no event records, no trace
     conses, no ghost bookkeeping.  Step counts come from [Sys.run]'s own
     counter either way (it sees dropped writes, which emit no event), so
     verdicts agree between the two modes; only [trace] differs.
     [flat = false] additionally forces the boxed interpreter even when
     the protocol ships a flat machine — the benchmark's before-rows and
     the flat/boxed differential tests. *)
  let exec ?(flat = true) ~record ~cfg ~wiring ~inputs ~sched ~faults
      ~max_steps () =
    let state = Sys.init ~cfg ~wiring ~inputs in
    let trace = Tr.create () in
    let step_counts = Array.make (T.P.processors cfg) 0 in
    let on_event = if record then Some (Tr.on_event trace) else None in
    let on_fault = if record then Some (Tr.on_fault trace) else None in
    let faults = match faults with [] -> None | plan -> Some plan in
    let stop, steps =
      Sys.run ~max_steps ?faults ~step_counts ~flat ~sched ?on_event ?on_fault
        state
    in
    { stop; steps; outputs = Sys.outputs state; step_counts; trace }

  let run_case ?(record = true) ?flat (c : Gen.case) =
    exec ?flat ~record
      ~cfg:(T.cfg ~n:c.n ~m:c.m)
      ~wiring:(Gen.wiring c) ~inputs:c.inputs
      ~sched:(Schedule.scheduler (Gen.schedule_rng c) c.shape)
      ~faults:c.faults ~max_steps:c.max_steps ()

  let run_instance ?(record = true) inst =
    exec ~record
      ~cfg:(T.cfg ~n:inst.n ~m:inst.m)
      ~wiring:(Anonmem.Wiring.of_lists inst.wiring_perms)
      ~inputs:inst.inputs
      ~sched:(Anonmem.Scheduler.script inst.script)
      ~faults:inst.faults
      ~max_steps:(List.length inst.script + 1)
      ()

  let participated run = Array.map (fun c -> c > 0) run.step_counts

  (** Task oracle plus wait-freedom within the target's step budget. *)
  let verdict ~n ~m ~inputs run =
    match
      T.check ~inputs ~participated:(participated run) ~outputs:run.outputs
    with
    | Error _ as e -> e
    | Ok () -> (
        match T.step_budget ~n ~m with
        | None -> Ok ()
        | Some budget ->
            let live p =
              match run.outputs.(p) with None -> true | Some _ -> false
            in
            let rec find p =
              if p >= Array.length run.step_counts then Ok ()
              else if run.step_counts.(p) >= budget && live p then
                Tasks.Task_failure.failf ~processors:[ p ]
                  ~groups:[ inputs.(p) ] Tasks.Task_failure.Wait_freedom
                  "p%d took %d steps (budget %d) without terminating" (p + 1)
                  run.step_counts.(p) budget
              else find (p + 1)
            in
            find 0)

  (* The shrinker's oracle, called thousands of times per counterexample:
     untraced on purpose. *)
  let verdict_of_instance inst =
    verdict ~n:inst.n ~m:inst.m ~inputs:inst.inputs
      (run_instance ~record:false inst)

  (* ---- shrinking ------------------------------------------------------- *)

  let drop_processor inst p =
    if inst.n <= 1 then None
    else
      Some
        {
          inst with
          n = inst.n - 1;
          inputs =
            Array.init (inst.n - 1) (fun q ->
                inst.inputs.(if q < p then q else q + 1));
          wiring_perms = List.filteri (fun q _ -> q <> p) inst.wiring_perms;
          script =
            List.filter_map
              (fun q ->
                if q = p then None else Some (if q > p then q - 1 else q))
              inst.script;
          faults = Anonmem.Fault.drop_processor ~p inst.faults;
        }

  (* Remove physical register [r]: delete the local index mapped to it in
     every permutation and renumber the remaining physical indices.  Never
     shrinks below the target's register floor: below [m_range] the
     protocol's own feasibility boundary kicks in (e.g. the portfolio
     protocols legitimately misbehave under the coprimality threshold),
     and a "counterexample" there would indict the instance, not the
     protocol. *)
  let drop_register inst r =
    if inst.m <= max 1 (fst (T.m_range ~n:inst.n)) then None
    else
      Some
        {
          inst with
          m = inst.m - 1;
          wiring_perms =
            List.map
              (fun row ->
                List.filter_map
                  (fun phys ->
                    if phys = r then None
                    else Some (if phys > r then phys - 1 else phys))
                  row)
              inst.wiring_perms;
          faults = Anonmem.Fault.drop_register ~reg:r inst.faults;
        }

  let shrink_instance ~fails inst =
    let try_structural shrink indices inst =
      List.fold_left
        (fun inst i ->
          match shrink inst i with
          | Some inst' when fails inst' -> inst'
          | _ -> inst)
        inst indices
    in
    let round inst =
      (* Fault events first: a counterexample that survives without a
         fault was never fault-induced, and the smaller plan keeps every
         later (schedule/processor/register) shrink step cheap. *)
      let inst =
        {
          inst with
          faults =
            Shrink.list
              ~still_failing:(fun f -> fails { inst with faults = f })
              inst.faults;
        }
      in
      let inst =
        {
          inst with
          script =
            Shrink.list
              ~still_failing:(fun s -> fails { inst with script = s })
              inst.script;
        }
      in
      (* Highest index first so earlier indices stay valid after removal. *)
      let inst =
        try_structural drop_processor
          (List.rev (List.init inst.n Fun.id))
          inst
      in
      let inst =
        try_structural drop_register (List.rev (List.init inst.m Fun.id)) inst
      in
      (* Lower each input toward 1, first accepted value wins. *)
      let lower inst p =
        let candidates =
          List.filter_map
            (fun v ->
              if v < inst.inputs.(p) then
                Some
                  {
                    inst with
                    inputs =
                      Array.mapi
                        (fun q g -> if q = p then v else g)
                        inst.inputs;
                  }
              else None)
            (List.init inst.inputs.(p) (fun i -> i + 1))
        in
        Shrink.first_accepted ~still_failing:fails candidates inst
      in
      List.fold_left lower inst (List.init inst.n Fun.id)
    in
    let rec fix rounds inst =
      if rounds = 0 then inst
      else
        let inst' = round inst in
        if inst' = inst then inst else fix (rounds - 1) inst'
    in
    fix 5 inst

  (** Turn a failing run into a 1-minimal scripted counterexample. *)
  let shrink (case : Gen.case) run =
    let runs = ref 0 in
    let fails inst =
      incr runs;
      Result.is_error (verdict_of_instance inst)
    in
    let inst0 =
      {
        n = case.n;
        m = case.m;
        wiring_perms = case.wiring_perms;
        inputs = case.inputs;
        script = Tr.pids run.trace;
        faults = case.faults;
      }
    in
    assert (fails inst0);
    let inst = shrink_instance ~fails inst0 in
    let failure =
      match verdict_of_instance inst with
      | Error f -> f
      | Ok () -> assert false
    in
    {
      case;
      original_steps = run.steps;
      instance = inst;
      failure;
      shrink_runs = !runs;
    }

  (* ---- campaigns ------------------------------------------------------- *)

  (** Cases are claimed in contiguous chunks of this many iterations;
      each chunk's case seeds come from its own splitmix stream, derived
      from [(campaign seed, chunk index)] alone — any domain can
      (re)derive any case, so how chunks land on workers cannot perturb
      what runs. *)
  let chunk_size = 64

  let chunk_stream ~seed c =
    Repro_util.Rng.create ~seed:((seed * 1_000_003) + c)

  (** The seed of case [i]: draw [i mod chunk_size] of chunk
      [i / chunk_size]'s stream.  Workers consume the stream
      sequentially; this standalone form re-derives a single case for
      the shrinking tail and the replay artifacts. *)
  let case_seed ~seed i =
    let rng = chunk_stream ~seed (i / chunk_size) in
    let s = ref 0 in
    for _ = 0 to i mod chunk_size do
      s := Repro_util.Rng.int rng max_int
    done;
    !s

  (** Run a campaign of [iterations] cases across [domains] OCaml 5
      domains (default 1: everything runs inline in the caller's
      domain).  Parallel campaigns fan out over the persistent
      {!Domain_pool} — no domain is spawned per campaign — and workers
      claim chunks of {!chunk_size} cases from a shared atomic counter.
      Every case derives its seed from [(seed, iteration)] alone, and
      the reported counterexample is the one with the {e smallest
      iteration index} that failed — a worker only retires once every
      unclaimed chunk lies wholly above the current minimum failing
      index — so without a [time_budget] the report's deterministic
      fields (iterations, total steps, counterexample, shrunk instance)
      are identical for every domain count.  With a [time_budget] the
      cutoff is wall-clock and the executed prefix becomes
      timing-dependent. *)
  let campaign ?(now = Stdlib.Sys.time) ?time_budget ?(domains = 1) ?m
      ?(n_range = (2, 5)) ?(max_steps = 5_000) ?fault_profile ~seed ~iterations
      () =
    let t0 = now () in
    let nd = max 1 (min domains (max 1 iterations)) in
    let case_with s =
      Gen.case ~seed:s ~n_range ?m ~m_range:T.m_range ?fault_profile
        ~max_steps ()
    in
    let case_of i = case_with (case_seed ~seed i) in
    (* Written at most once per index (by its chunk's claimer); read
       only after every worker has retired. *)
    let steps_of = Array.make (max 1 iterations) 0 in
    let executed = Array.make nd 0 in
    (* Smallest failing iteration index found so far. *)
    let first_fail = Atomic.make max_int in
    let fail_time = Atomic.make infinity in
    let next_chunk = Atomic.make 0 in
    let nchunks = (iterations + chunk_size - 1) / chunk_size in
    let out_of_budget () =
      match time_budget with Some b -> now () -. t0 > b | None -> false
    in
    let worker w =
      let retired = ref false in
      while not !retired do
        let c = Atomic.fetch_and_add next_chunk 1 in
        if c >= nchunks
           || c * chunk_size > Atomic.get first_fail
           || out_of_budget ()
        then retired := true
        else begin
          let rng = chunk_stream ~seed c in
          let stop_at = min iterations ((c + 1) * chunk_size) in
          let i = ref (c * chunk_size) in
          while !i < stop_at
                && !i <= Atomic.get first_fail
                && not (out_of_budget ())
          do
            let case = case_with (Repro_util.Rng.int rng max_int) in
            let run = run_case ~record:false case in
            steps_of.(!i) <- run.steps;
            executed.(w) <- executed.(w) + 1;
            (match verdict ~n:case.n ~m:case.m ~inputs:case.inputs run with
            | Ok () -> ()
            | Error _ ->
                let t = now () -. t0 in
                let rec lower () =
                  let cur = Atomic.get first_fail in
                  if !i < cur then
                    if Atomic.compare_and_set first_fail cur !i then
                      (* Benign race: losing an interleaved store here only
                         perturbs the (timing-only) found_after seconds. *)
                      Atomic.set fail_time t
                    else lower ()
                in
                lower ());
            i := !i + 1
          done
        end
      done
    in
    Domain_pool.parallel ~domains:nd worker;
    let sum_steps upto =
      let total = ref 0 in
      for i = 0 to upto - 1 do
        total := !total + steps_of.(i)
      done;
      !total
    in
    match Atomic.get first_fail with
    | k when k < max_int ->
        (* Re-execute the winning case with the trace recorder (identical
           schedule: same derived seed) and shrink it here, in the
           caller's domain — the deterministic tail of the campaign. *)
        let case = case_of k in
        let run = run_case case in
        let cex = shrink case run in
        {
          seed;
          iterations = k + 1;
          total_steps = sum_steps (k + 1);
          elapsed = now () -. t0;
          counterexample = Some cex;
          found_after = Some (k, Atomic.get fail_time);
        }
    | _ ->
        {
          seed;
          iterations = Array.fold_left ( + ) 0 executed;
          total_steps = sum_steps iterations;
          elapsed = now () -. t0;
          counterexample = None;
          found_after = None;
        }

  (* ---- rendering ------------------------------------------------------- *)

  (** The shrunk execution as a step table — the [Anonmem.Trace] artifact
      of the counterexample. *)
  let trace_table inst =
    let run = run_instance inst in
    Tr.to_table (T.cfg ~n:inst.n ~m:inst.m) run.trace

  let pp_counterexample ~key ppf cex =
    let inst = cex.instance in
    Fmt.pf ppf
      "@[<v>counterexample (shrunk from %d to %d steps, %d shrink runs)@,\
       %a@,\
       shrunk instance: n=%d m=%d inputs %a wiring %a@,\
       script: %s@,\
       %afailure: %a@,\
       replay: %s@,\
       @,\
       %a@]"
      cex.original_steps
      (List.length inst.script)
      cex.shrink_runs Gen.pp cex.case inst.n inst.m
      Fmt.(array ~sep:(any ",") int)
      inst.inputs Anonmem.Wiring.pp
      (Anonmem.Wiring.of_lists inst.wiring_perms)
      (ints_1based inst.script)
      (fun ppf -> function
        | [] -> ()
        | plan -> Fmt.pf ppf "faults: %a@," Anonmem.Fault.pp plan)
      inst.faults Tasks.Task_failure.pp cex.failure
      (replay_command ~key inst)
      Repro_util.Text_table.pp (trace_table inst)

  let pp_report ~key ppf r =
    let rate =
      if r.elapsed > 0. then float_of_int r.iterations /. r.elapsed else 0.
    in
    Fmt.pf ppf
      "@[<v>%s: %d cases, %d shared-memory steps, %.2fs CPU (%.0f cases/s), \
       seed %d@,"
      key r.iterations r.total_steps r.elapsed rate r.seed;
    (match (r.counterexample, r.found_after) with
    | Some cex, Some (i, t) ->
        Fmt.pf ppf "failure found at iteration %d (%.2fs):@,%a" i t
          (pp_counterexample ~key) cex
    | Some cex, None ->
        Fmt.pf ppf "failure found:@,%a" (pp_counterexample ~key) cex
    | None, _ -> Fmt.pf ppf "no counterexample found");
    Fmt.pf ppf "@]"

  (** The timing-free rendering of a report: everything in it is a
      deterministic function of [(seed, iterations, campaign parameters)],
      so for a budget-less campaign this string is byte-identical across
      domain counts (test/test_fuzz.ml pins that down for 1, 2 and 4
      domains). *)
  let deterministic_summary ~key r =
    Fmt.str "@[<v>%s seed %d: %d cases, %d shared-memory steps@,%a@]" key
      r.seed r.iterations r.total_steps
      (fun ppf -> function
        | None -> Fmt.pf ppf "no counterexample"
        | Some cex ->
            Fmt.pf ppf "failure at iteration %d@,%a"
              (match r.found_after with Some (i, _) -> i | None -> -1)
              (pp_counterexample ~key) cex)
      r.counterexample
end
