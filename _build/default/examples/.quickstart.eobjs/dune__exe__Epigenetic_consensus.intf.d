examples/epigenetic_consensus.mli:
