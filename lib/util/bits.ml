(* Word-level bit tricks for the int-machine execution core.

   The flat schedulers and drivers represent the enabled/alive processor
   sets as single-word bitmasks (bit p = processor p), so every helper
   here must be allocation-free and branch-light: these run once or
   twice per simulated shared-memory step.  Masks are non-negative and
   fit in [max_width] bits, which keeps [1 lsl p] well-defined and the
   SWAR popcount below exact. *)

let max_width = 62
(* One bit per processor/register in a tagged 63-bit int, sign bit
   excluded.  The same window as {!Iset}'s bitset representation. *)

(* SWAR popcount over two 32-bit halves: the classic 64-bit constants do
   not fit OCaml's 63-bit int literals, the 32-bit ones do. *)
let popcount32 x =
  let x = x - ((x lsr 1) land 0x55555555) in
  let x = (x land 0x33333333) + ((x lsr 2) land 0x33333333) in
  let x = (x + (x lsr 4)) land 0x0F0F0F0F in
  (* In C the uint32 multiply truncates and [>> 24] leaves the top byte;
     OCaml's native multiply doesn't truncate, so mask the byte out. *)
  ((x * 0x01010101) lsr 24) land 0xFF

let popcount x = popcount32 (x land 0xFFFFFFFF) + popcount32 (x lsr 32)

let ctz x =
  (* Index of the lowest set bit: isolate it, then count the ones below
     it.  Callers guarantee [x <> 0]. *)
  popcount ((x land -x) - 1)

let nth_set mask k =
  (* The [k]-th (0-based) set bit of [mask] in increasing bit order —
     the mask analogue of [List.nth enabled k] on the sorted enabled
     list.  Callers guarantee [k < popcount mask]. *)
  let rec drop mask k = if k = 0 then ctz mask else drop (mask land (mask - 1)) (k - 1) in
  drop mask k

let full n = if n >= max_width then (1 lsl max_width) - 1 else (1 lsl n) - 1

let to_list mask =
  let rec go mask acc =
    if mask = 0 then List.rev acc
    else
      let b = ctz mask in
      go (mask land (mask - 1)) (b :: acc)
  in
  go mask []

let of_list l = List.fold_left (fun acc b -> acc lor (1 lsl b)) 0 l
