lib/util/stats.mli: Fmt
