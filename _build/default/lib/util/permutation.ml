type t = int array

let identity n = Array.init n Fun.id

let of_array a =
  let n = Array.length a in
  let seen = Array.make n false in
  Array.iter
    (fun x ->
      if x < 0 || x >= n || seen.(x) then
        invalid_arg "Permutation.of_array: not a permutation"
      else seen.(x) <- true)
    a;
  Array.copy a

let of_list l = of_array (Array.of_list l)
let size = Array.length
let apply p i = p.(i)

let inverse p =
  let n = Array.length p in
  let inv = Array.make n 0 in
  Array.iteri (fun i x -> inv.(x) <- i) p;
  inv

let compose f g = Array.map (fun x -> f.(x)) g
let equal a b = a = b
let random rng n = Rng.permutation rng n

let enumerate n =
  (* Generate in lexicographic order by recursive selection. *)
  let rec go remaining =
    match remaining with
    | [] -> [ [] ]
    | _ ->
        List.concat_map
          (fun x ->
            let rest = List.filter (fun y -> y <> x) remaining in
            List.map (fun tl -> x :: tl) (go rest))
          remaining
  in
  List.map of_list (go (List.init n Fun.id))

let to_list = Array.to_list

let pp ppf p =
  Fmt.pf ppf "(%a)"
    Fmt.(array ~sep:(any " ") int)
    (Array.map (fun x -> x + 1) p)
