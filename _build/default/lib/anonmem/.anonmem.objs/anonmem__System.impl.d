lib/anonmem/system.ml: Array Fmt Fun List Protocol Scheduler Wiring
