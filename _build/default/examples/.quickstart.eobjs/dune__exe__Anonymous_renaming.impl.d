examples/anonymous_renaming.ml: Algorithms Array Core List Printf Repro_util String
