(* ND-write-order witness probe: target {1,2}, inputs (1,2,3). *)
let mask_str m =
  let l = List.filter (fun i -> m land (1 lsl (i - 1)) <> 0) [ 1; 2; 3 ] in
  "{" ^ String.concat "," (List.map string_of_int l) ^ "}"

let () =
  let t0 = Unix.gettimeofday () in
  let wirings = Anonmem.Wiring.enumerate ~n:3 ~m:3 ~fix_first:true in
  List.iter
    (fun (inputs, target_mask) ->
      Printf.printf "ND search: inputs (%d,%d,%d), target %s...\n%!" inputs.(0)
        inputs.(1) inputs.(2) (mask_str target_mask);
      match
        Modelcheck.Snapshot3_nd.find_nonatomic ~inputs ~target_mask ~wirings ()
      with
      | Some (wiring, path, _) ->
          Printf.printf "ND-WITNESS (%.1fs): wiring %s, %d steps\n%!"
            (Unix.gettimeofday () -. t0)
            (Fmt.str "%a" Anonmem.Wiring.pp wiring)
            (List.length path);
          Printf.printf "  schedule (proc,choice): %s\n%!"
            (String.concat " "
               (List.map (fun (p, c) -> Printf.sprintf "%d.%d" (p + 1) c) path))
      | None -> Printf.printf "  ND: no witness (%.1fs)\n%!" (Unix.gettimeofday () -. t0))
    [ ([| 1; 2; 3 |], 0b011); ([| 1; 1; 2 |], 0b001) ]
