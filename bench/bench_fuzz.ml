(* Fuzzing-throughput benchmark: cases/s, shared-memory steps/s and
   allocated words per step for the schedule-fuzzing harness on the
   snapshot target, plus campaign wall-clock at 1 vs N domains.  Results
   go to BENCH_fuzz.json (hand-rolled JSON, no external dependency) and a
   human-readable table on stdout; the EXPERIMENTS.md fuzzing-throughput
   table is generated from this output.  `--quick` shrinks the iteration
   counts for CI.

   The before/after comparison is measured inside one run.  The "before"
   row replays the pre-change execution core on identical cases: a
   replica of the snapshot protocol instantiated over the sorted-list set
   implementation ({!Snapshot_core.Make} over [Sorted_set.Make (Int)] —
   the representation [Iset] had before the bitset rewrite) executed with
   the trace recorder attached (the harness always recorded before the
   zero-observer fast path existed).  The "after" rows run the shipped
   bitset-backed [Iset] protocol, traced and untraced, so the table
   decomposes the speedup into the view-representation part and the
   fast-path part.  All three rows run the same derived case seeds, and
   the engine transitions are representation-independent, so the executed
   schedules — and the step totals, which the driver asserts equal — are
   identical across rows. *)

module Iset = Repro_util.Iset
module Lset = Repro_util.Sorted_set.Make (Int)
module LCore = Algorithms.Snapshot_core.Make (Lset)

(* The snapshot target exactly as lib/fuzz/targets.ml builds it, except
   that views live in sorted lists; outputs are converted to [Iset] only
   at verdict time (a handful of conversions per case) so the task oracle
   is shared. *)
module Legacy_snapshot : Fuzzing.Target.S = struct
  module P = struct
    type cfg = LCore.cfg
    type value = LCore.value
    type input = int
    type output = Lset.t
    type local = LCore.local

    let name = "snapshot(fig3,list-views)"
    let processors (c : cfg) = c.LCore.n
    let registers (c : cfg) = c.LCore.m
    let register_init = LCore.register_init
    let init = LCore.init
    let terminated c l = LCore.reached_level c l
    let halted = terminated
    let next c l = if terminated c l then None else Some (LCore.next c l)
    let apply_read = LCore.apply_read
    let apply_write = LCore.apply_write
    let flat _ ~phys:_ ~inputs:_ ~registers:_ ~locals:_ = None
    let output c (l : local) = if terminated c l then Some l.LCore.view else None
    let pp_value _ = LCore.pp_velt Fmt.int
    let pp_local _ = LCore.pp_local Fmt.int
    let pp_output _ = Lset.pp Fmt.int
  end

  let cfg ~n ~m = LCore.cfg ~n ~m
  let m_range ~n = (n, n)

  let check ~inputs ~participated ~outputs =
    let outputs =
      Array.map
        (Option.map (fun v -> Iset.of_list (Lset.elements v)))
        outputs
    in
    let t = Tasks.Outcome.make ~participated ~inputs ~outputs () in
    match Tasks.Snapshot_task.check_group_solution t with
    | Error _ as e -> e
    | Ok () -> Tasks.Snapshot_task.check_strong t

  let step_budget ~n ~m = Some (500 * (n + 1) * (m + 1))
end

module T_new = (val Option.get (Fuzzing.Targets.find "snapshot"))
module H_new = Fuzzing.Harness.Make (T_new)
module H_leg = Fuzzing.Harness.Make (Legacy_snapshot)

(* Instance sizes where view operations are the hot path: at n = m in
   24..40 every case saturates the 5000-step budget mid-protocol, so the
   rows are pure execution-throughput measurements over identical
   schedules, with views large enough that the list representation's
   linear scans and merges actually cost (at the fuzz CLI's default
   n <= 5 the per-step cost is dominated by fixed overheads and the
   representations are indistinguishable). *)
let seed = 2026
let n_range = (24, 40)
let max_steps = 5_000

(* Both targets have m_range (n, n), and this generator is shared, so the
   two harnesses execute byte-identical cases. *)
let case_of i =
  Fuzzing.Gen.case
    ~seed:((seed * 1_000_003) + i)
    ~n_range
    ~m_range:(fun ~n -> (n, n))
    ~max_steps ()

type row = {
  label : string;
  cases : int;
  steps : int;
  wall_s : float;
  alloc_words : float;  (** total words allocated, [nan] for parallel rows *)
  domains : int;
}

let rows : row list ref = ref []

let cases_per_s r = float_of_int r.cases /. r.wall_s
let steps_per_s r = float_of_int r.steps /. r.wall_s

let words_per_step r =
  if Float.is_nan r.alloc_words then nan
  else r.alloc_words /. float_of_int r.steps

let print_row r =
  Printf.printf "%-34s %8d cases %10d steps %7.2fs %9.0f cases/s %11.0f steps/s" r.label
    r.cases r.steps r.wall_s (cases_per_s r) (steps_per_s r);
  if Float.is_nan r.alloc_words then print_newline ()
  else Printf.printf " %7.1f w/step\n" (words_per_step r);
  flush stdout

let allocated (s : Gc.stat) = s.Gc.minor_words +. s.Gc.major_words -. s.Gc.promoted_words

(* Single-domain measurement loop: run_one executes case [i] end-to-end
   (generation + execution + verdict, exactly one harness iteration) and
   returns its step count. *)
let exec_row ~label ~iterations run_one =
  for i = 0 to min 63 (iterations - 1) do
    ignore (run_one i : int)
  done;
  Gc.full_major ();
  let a0 = allocated (Gc.quick_stat ()) in
  let t0 = Unix.gettimeofday () in
  let steps = ref 0 in
  for i = 0 to iterations - 1 do
    steps := !steps + run_one i
  done;
  let wall_s = Unix.gettimeofday () -. t0 in
  let alloc_words = allocated (Gc.quick_stat ()) -. a0 in
  let r = { label; cases = iterations; steps = !steps; wall_s; alloc_words; domains = 1 } in
  rows := r :: !rows;
  print_row r;
  r

let run_legacy_traced i =
  let case = case_of i in
  let run = H_leg.run_case ~record:true case in
  (match H_leg.verdict ~n:case.n ~m:case.m ~inputs:case.inputs run with
  | Ok () -> ()
  | Error _ -> failwith "legacy snapshot: unexpected counterexample");
  run.H_leg.steps

let run_new ?flat ~record i =
  let case = case_of i in
  let run = H_new.run_case ?flat ~record case in
  (match H_new.verdict ~n:case.n ~m:case.m ~inputs:case.inputs run with
  | Ok () -> ()
  | Error _ -> failwith "snapshot: unexpected counterexample");
  run.H_new.steps

(* Campaign wall-clock through the public entry point, as fuzz.exe runs
   it.  Alloc words are per-domain in OCaml 5, so parallel rows report
   throughput only.  Best wall-clock of [repeats] runs: a campaign is a
   single ~10s measurement, so one scheduler hiccup on a shared host
   otherwise lands whole in the row. *)
let campaign_row ?(repeats = 2) ~label ~domains ~iterations () =
  let once () =
    let t0 = Unix.gettimeofday () in
    let r =
      H_new.campaign ~now:Unix.gettimeofday ~domains ~n_range ~max_steps ~seed
        ~iterations ()
    in
    let wall_s = Unix.gettimeofday () -. t0 in
    (match r.Fuzzing.Harness.counterexample with
    | None -> ()
    | Some _ -> failwith "campaign: unexpected counterexample");
    (r, wall_s)
  in
  let best = ref (once ()) in
  for _ = 2 to repeats do
    let run = once () in
    if snd run < snd !best then best := run
  done;
  let r, wall_s = !best in
  let row =
    {
      label;
      cases = r.Fuzzing.Harness.iterations;
      steps = r.Fuzzing.Harness.total_steps;
      wall_s;
      alloc_words = nan;
      domains;
    }
  in
  rows := row :: !rows;
  print_row row;
  row

let json_of ~host_domains ~speedup ~rep_speedup ~par_speedup ~two_dom_speedup
    rows =
  let b = Buffer.create 2048 in
  Buffer.add_string b "{\n";
  Buffer.add_string b "  \"bench\": \"fuzz\",\n";
  Buffer.add_string b (Printf.sprintf "  \"host_domains\": %d,\n" host_domains);
  Buffer.add_string b (Printf.sprintf "  \"seed\": %d,\n" seed);
  Buffer.add_string b
    (Printf.sprintf "  \"steps_per_s_speedup_vs_legacy\": %.2f,\n" speedup);
  Buffer.add_string b
    (Printf.sprintf "  \"steps_per_s_speedup_representation_only\": %.2f,\n"
       rep_speedup);
  Buffer.add_string b
    (Printf.sprintf "  \"campaign_parallel_speedup\": %.2f,\n" par_speedup);
  Buffer.add_string b
    (Printf.sprintf "  \"campaign_2_domain_speedup\": %.2f,\n" two_dom_speedup);
  Buffer.add_string b "  \"rows\": [\n";
  List.iteri
    (fun i r ->
      Buffer.add_string b
        (Printf.sprintf
           "    {\"label\": %S, \"domains\": %d, \"cases\": %d, \"steps\": %d, \
            \"wall_s\": %.4f, \"cases_per_s\": %.0f, \"steps_per_s\": %.0f, \
            \"alloc_words_per_step\": %s}%s\n"
           r.label r.domains r.cases r.steps r.wall_s (cases_per_s r)
           (steps_per_s r)
           (let w = words_per_step r in
            if Float.is_nan w then "null" else Printf.sprintf "%.1f" w)
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string b "  ]\n}\n";
  Buffer.contents b

let () =
  (* Minor collections are stop-the-world across all domains in OCaml 5;
     at the default 256k-word minor heap a campaign triggers ~500 of
     them, and on few-core hosts each one costs a cross-domain scheduler
     round-trip that swamps the parallel rows.  A large minor heap makes
     the campaign rows measure the harness, not the collector's barrier.
     Pool workers inherit this size (see {!Fuzzing.Domain_pool}). *)
  Gc.set { (Gc.get ()) with Gc.minor_heap_size = 8_000_000 };
  let quick = Array.mem "--quick" Sys.argv in
  let exec_iters = if quick then 1_500 else 10_000 in
  let campaign_iters = if quick then 6_000 else 40_000 in
  let host_domains = Domain.recommended_domain_count () in
  let par_domains = max 2 (min 4 host_domains) in
  let legacy = exec_row ~label:"legacy: list views, traced" ~iterations:exec_iters run_legacy_traced in
  let traced = exec_row ~label:"bitset views, traced" ~iterations:exec_iters (run_new ~record:true) in
  let boxed =
    exec_row ~label:"bitset views, boxed fast path" ~iterations:exec_iters
      (run_new ~flat:false ~record:false)
  in
  let fast =
    exec_row ~label:"flat int-machine, fast path" ~iterations:exec_iters
      (run_new ~record:false)
  in
  (* Identical cases and representation-independent transitions: all
     four rows must have simulated exactly the same executions. *)
  assert (
    legacy.steps = traced.steps && traced.steps = boxed.steps
    && boxed.steps = fast.steps);
  (* CI perf gate on the flat row.  The ceilings are deliberately
     generous relative to the measured numbers (< 8 w/step and >= 10M
     steps/s on an unloaded host) so only a real regression — the flat
     path silently falling back to the boxed interpreter, or a new
     allocation on the hot path — trips them, not scheduler noise. *)
  let w = words_per_step fast and sps = steps_per_s fast in
  if w >= 8.0 then (
    Printf.eprintf "PERF GATE: flat fast path allocates %.1f w/step (>= 8)\n" w;
    exit 1);
  if sps < 3e6 then (
    Printf.eprintf "PERF GATE: flat fast path at %.0f steps/s (< 3M)\n" sps;
    exit 1);
  let c1 =
    campaign_row ~label:"campaign, 1 domain" ~domains:1
      ~iterations:campaign_iters ()
  in
  let c2 =
    campaign_row ~label:"campaign, 2 domains" ~domains:2
      ~iterations:campaign_iters ()
  in
  let cn =
    if par_domains = 2 then c2
    else
      campaign_row
        ~label:(Printf.sprintf "campaign, %d domains" par_domains)
        ~domains:par_domains ~iterations:campaign_iters ()
  in
  assert (c1.cases = c2.cases && c1.steps = c2.steps);
  assert (c1.cases = cn.cases && c1.steps = cn.steps);
  (* The campaign summary must not depend on the domain count at all —
     same verdict, same counterexample, same totals, byte for byte. *)
  let summary_at domains =
    H_new.deterministic_summary ~key:"snapshot"
      (H_new.campaign ~domains ~n_range ~max_steps ~seed
         ~iterations:(min campaign_iters 2_000) ())
  in
  let s1 = summary_at 1 in
  if not (String.equal s1 (summary_at 2) && String.equal s1 (summary_at 4))
  then (
    prerr_endline "PERF GATE: deterministic_summary differs across domains";
    exit 1);
  let speedup = steps_per_s fast /. steps_per_s legacy in
  let rep_speedup = steps_per_s traced /. steps_per_s legacy in
  let par_speedup = cases_per_s cn /. cases_per_s c1 in
  let two_dom_speedup = cases_per_s c2 /. cases_per_s c1 in
  let oc = open_out "BENCH_fuzz.json" in
  output_string oc
    (json_of ~host_domains ~speedup ~rep_speedup ~par_speedup ~two_dom_speedup
       (List.rev !rows));
  close_out oc;
  Printf.printf
    "\n\
     steps/s speedup vs legacy representation: %.2fx (%.2fx from the \
     bitset views alone); campaign at 2 domains: %.2fx%s; wrote \
     BENCH_fuzz.json\n"
    speedup rep_speedup two_dom_speedup
    (if par_domains = 2 then ""
     else Printf.sprintf ", at %d domains: %.2fx" par_domains par_speedup)
