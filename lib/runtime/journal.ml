(** Append-only run journal: the durable record of a long verification
    sweep.

    One JSONL line per completed cell, each framed with a sequence
    number, a payload length and an FNV-64 checksum:

    {v {"seq": 12, "crc": 1234567, "len": 18, "data": "mutex 2 3 ..."} v}

    The framing makes the journal self-validating under the one failure
    mode an append-only file actually has — a torn tail from a crash
    mid-append.  {!load} accepts the longest valid prefix (contiguous
    sequence numbers from 0, matching lengths, matching checksums) and
    drops everything after the first damaged line; {!open_append}
    compacts the file to that prefix (atomically, via a temporary file
    and a rename) before appending, so a crashed run's journal heals on
    the next open instead of poisoning it.

    Payloads are opaque strings to this module — the feasibility sweep
    stores {!Analysis.Feasibility.cell_to_record} lines — but must not
    contain newlines (rejected by {!append}).

    The [set_crash_after] hook is the self-chaos instrument: arm it with
    [Some k] and the [k]-th subsequent {!append} writes a prefix of its
    line, raises {!Simulated_crash} and disarms — exactly a crash
    mid-append, which the durability tests then recover from. *)

exception Simulated_crash

(* FNV-1a folded to 63 bits, the same hash family as the checkpoint
   container (but independent code: runtime must not depend on
   modelcheck). *)
let crc (s : string) =
  let h = ref 0x4bf29ce484222325 in
  String.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * 0x100000001b3)
    s;
  !h land max_int

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 32 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let render ~seq data =
  Printf.sprintf "{\"seq\": %d, \"crc\": %d, \"len\": %d, \"data\": \"%s\"}\n"
    seq (crc data) (String.length data) (json_escape data)

(* Parse one journal line.  The writer is this module, so the parser
   only needs to read what {!render} produces — but defensively: any
   deviation means a torn or hand-edited line, and the contract is to
   reject it, never to crash. *)
let parse_line line =
  let int_field name =
    let pat = Printf.sprintf "\"%s\": " name in
    match
      let plen = String.length pat in
      let rec find i =
        if i + plen > String.length line then None
        else if String.sub line i plen = pat then Some (i + plen)
        else find (i + 1)
      in
      find 0
    with
    | None -> None
    | Some start ->
        let rec stop i =
          if i < String.length line && (line.[i] = '-' || (line.[i] >= '0' && line.[i] <= '9'))
          then stop (i + 1)
          else i
        in
        int_of_string_opt (String.sub line start (stop start - start))
  in
  let data_field () =
    let pat = "\"data\": \"" in
    let plen = String.length pat in
    let rec find i =
      if i + plen > String.length line then None
      else if String.sub line i plen = pat then Some (i + plen)
      else find (i + 1)
    in
    match find 0 with
    | None -> None
    | Some start ->
        let b = Buffer.create 32 in
        let rec go i =
          if i >= String.length line then None
          else
            match line.[i] with
            | '"' -> Some (Buffer.contents b)
            | '\\' ->
                if i + 1 >= String.length line then None
                else
                  let consumed =
                    match line.[i + 1] with
                    | '"' ->
                        Buffer.add_char b '"';
                        2
                    | '\\' ->
                        Buffer.add_char b '\\';
                        2
                    | 'n' ->
                        Buffer.add_char b '\n';
                        2
                    | 'u' when i + 5 < String.length line ->
                        (match
                           int_of_string_opt ("0x" ^ String.sub line (i + 2) 4)
                         with
                        | Some code ->
                            Buffer.add_char b (Char.chr (code land 0xff))
                        | None -> ());
                        6
                    | c ->
                        Buffer.add_char b c;
                        2
                  in
                  go (i + consumed)
            | c ->
                Buffer.add_char b c;
                go (i + 1)
        in
        go start
  in
  match (int_field "seq", int_field "crc", int_field "len", data_field ()) with
  | Some seq, Some c, Some len, Some data
    when String.length data = len && crc data = c ->
      Some (seq, data)
  | _ -> None

(** The valid prefix of a journal file: payloads of the lines numbered
    contiguously from 0 whose length and checksum verify, stopping at
    the first line that does not.  A missing file is an empty journal. *)
let load path =
  if not (Sys.file_exists path) then []
  else begin
    let ic = open_in_bin path in
    let rec go seq acc =
      match input_line ic with
      | exception End_of_file -> List.rev acc
      | line -> (
          match parse_line line with
          | Some (s, data) when s = seq -> go (seq + 1) (data :: acc)
          | _ -> List.rev acc)
    in
    let records = go 0 [] in
    close_in ic;
    records
  end

type t = {
  mutable oc : out_channel option;
  mutable seq : int;  (** next sequence number to write *)
  path : string;
  mutable crash_after : int option;
}

let chaos_crash_after = ref None

(** Arm the crash-injection hook: the [k]-th append (1-based) of the
    next journal opened will tear its own line and raise
    {!Simulated_crash}.  [None] disarms.  Applies to journals opened
    {e after} the call. *)
let set_crash_after k = chaos_crash_after := k

(** Open [path] for appending, first compacting it to its valid prefix
    (atomic write-rename); returns the journal and the recovered
    payloads, in order. *)
let open_append path =
  let records = load path in
  (* Rewrite the valid prefix; heals torn tails and renumbers nothing
     (the prefix is contiguous from 0 by construction). *)
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  List.iteri (fun seq data -> output_string oc (render ~seq data)) records;
  flush oc;
  close_out oc;
  Sys.rename tmp path;
  let oc = open_out_gen [ Open_append; Open_binary ] 0o644 path in
  ( {
      oc = Some oc;
      seq = List.length records;
      path;
      crash_after = !chaos_crash_after;
    },
    records )

let create path =
  if Sys.file_exists path then Sys.remove path;
  fst (open_append path)

(** Append one payload and flush it to the OS.  Raises
    [Invalid_argument] on a newline in the payload (it would tear the
    framing) and {!Simulated_crash} when the chaos hook fires. *)
let append t data =
  if String.contains data '\n' then
    invalid_arg "Journal.append: payload contains a newline";
  match t.oc with
  | None -> invalid_arg "Journal.append: closed"
  | Some oc ->
      let line = render ~seq:t.seq data in
      (match t.crash_after with
      | Some k when k <= 1 ->
          t.crash_after <- None;
          chaos_crash_after := None;
          (* Tear the line: write roughly half of it, flush so the torn
             bytes actually land, and die before the rest. *)
          output_string oc (String.sub line 0 (String.length line / 2));
          flush oc;
          raise Simulated_crash
      | Some k -> t.crash_after <- Some (k - 1)
      | None -> ());
      output_string oc line;
      flush oc;
      t.seq <- t.seq + 1

let path t = t.path
let next_seq t = t.seq

let close t =
  match t.oc with
  | None -> ()
  | Some oc ->
      flush oc;
      close_out oc;
      t.oc <- None
