(* Tests of the model checker itself: codec roundtrips, exploration on
   small/known systems, wait-freedom detection (positive and negative), and
   the n=2 instance of the paper's TLC claim. *)

open Repro_util
module Snap = Algorithms.Snapshot
module SnapC = Modelcheck.Codecs.Snapshot
module WsC = Modelcheck.Codecs.Write_scan
module DcC = Modelcheck.Codecs.Double_collect
module MC = Modelcheck.Explorer.Make (SnapC)
module MCW = Modelcheck.Explorer.Make (WsC)
module MCD = Modelcheck.Explorer.Make (DcC)

(* --- codec roundtrips ----------------------------------------------------- *)

let roundtrip_local (type l) name cfg encode decode width (locals : l list) =
  List.iter
    (fun l ->
      let b = Bytes.make (width cfg) '\000' in
      encode cfg l b 0;
      if decode cfg b 0 <> l then Alcotest.fail (name ^ ": local roundtrip failed"))
    locals

let test_snapshot_codec_roundtrip () =
  let cfg = Snap.standard ~n:3 in
  (* drive a processor through a few steps to collect diverse locals *)
  let module Sys = Anonmem.System.Make (Snap) in
  let wiring = Anonmem.Wiring.random (Rng.create ~seed:3) ~n:3 ~m:3 in
  let st = Sys.init ~cfg ~wiring ~inputs:[| 1; 2; 3 |] in
  let seen = ref [] in
  let _ =
    Sys.run ~max_steps:500
      ~sched:(Anonmem.Scheduler.random (Rng.create ~seed:4))
      ~on_event:(fun ~time:_ _ ->
        Array.iter (fun l -> seen := l :: !seen) st.Sys.locals)
      st
  in
  roundtrip_local "snapshot" cfg SnapC.encode_local SnapC.decode_local
    SnapC.local_width !seen;
  (* values *)
  let vals =
    [
      { Snap.view = Iset.empty; level = 0 };
      { Snap.view = Iset.of_list [ 1; 3 ]; level = 2 };
      { Snap.view = Iset.of_list [ 0; 7 ]; level = 5 };
    ]
  in
  List.iter
    (fun v ->
      let b = Bytes.make (SnapC.value_width cfg) '\000' in
      SnapC.encode_value cfg v b 0;
      if SnapC.decode_value cfg b 0 <> v then Alcotest.fail "value roundtrip")
    vals

let test_codec_rejects_out_of_range () =
  let cfg = Snap.standard ~n:3 in
  let v = { Snap.view = Iset.of_list [ 9 ]; level = 0 } in
  Alcotest.check_raises "element 9 needs bit 9"
    (Invalid_argument "Codecs: field out of byte range") (fun () ->
      let b = Bytes.make 2 '\000' in
      SnapC.encode_value cfg v b 0)

(* --- exploration on a 1-processor system ---------------------------------- *)

let test_explore_solo_snapshot () =
  (* One processor, one register: write (view,lvl); scan; level climbs 1
     per round up to n=1 -> terminates after the first clean scan. *)
  let cfg = Snap.cfg ~n:1 ~m:1 in
  let wiring = Anonmem.Wiring.identity ~n:1 ~m:1 in
  match MC.explore ~cfg ~wiring ~inputs:[| 1 |] () with
  | MC.Explored space ->
      Alcotest.(check bool) "few states" true (MC.state_count space <= 6);
      Alcotest.(check int) "one terminal" 1 (List.length space.MC.terminal);
      Alcotest.(check bool) "wait-free" true (MC.is_wait_free space)
  | _ -> Alcotest.fail "expected successful exploration"

let test_explore_finds_invariant_violation () =
  (* A deliberately false invariant must fail on the initial state with an
     empty trace. *)
  let cfg = Snap.cfg ~n:1 ~m:1 in
  let wiring = Anonmem.Wiring.identity ~n:1 ~m:1 in
  match
    MC.explore ~invariant:(fun _ -> Error "nope") ~cfg ~wiring ~inputs:[| 1 |] ()
  with
  | MC.Invariant_failed (_, v) ->
      Alcotest.(check string) "message" "nope" v.MC.message;
      Alcotest.(check int) "violation at initial state" 0 (List.length v.MC.trace)
  | _ -> Alcotest.fail "expected invariant failure"

let test_explore_state_limit () =
  let cfg = Snap.standard ~n:2 in
  let wiring = Anonmem.Wiring.identity ~n:2 ~m:2 in
  match MC.explore ~max_states:10 ~cfg ~wiring ~inputs:[| 1; 2 |] () with
  | MC.State_limit k -> Alcotest.(check bool) "stopped near limit" true (k >= 10)
  | _ -> Alcotest.fail "expected state limit"

let test_trace_reconstruction () =
  let cfg = Snap.cfg ~n:1 ~m:1 in
  let wiring = Anonmem.Wiring.identity ~n:1 ~m:1 in
  (* fail when the processor has terminated: trace = the whole execution *)
  let invariant (st : MC.state) =
    if Snap.output cfg st.MC.locals.(0) <> None then Error "terminated"
    else Ok ()
  in
  match MC.explore ~invariant ~cfg ~wiring ~inputs:[| 1 |] () with
  | MC.Invariant_failed (_, v) ->
      Alcotest.(check bool) "non-empty trace" true (List.length v.MC.trace > 0);
      (* every step in the trace is by processor 0 *)
      List.iter (fun (p, _) -> Alcotest.(check int) "pid" 0 p) v.MC.trace
  | _ -> Alcotest.fail "expected invariant failure at termination"

(* --- wait-freedom / divergence ------------------------------------------- *)

let test_write_scan_diverges () =
  (* The write-scan loop never terminates: the DFS must find a cycle. *)
  let cfg = Algorithms.Write_scan.cfg ~n:2 ~m:2 in
  let wiring = Anonmem.Wiring.identity ~n:2 ~m:2 in
  match MCW.check_exhaustive ~cfg ~wiring ~inputs:[| 1; 2 |] () with
  | MCW.Dfs_cycle { processors; _ } ->
      Alcotest.(check bool) "some processor diverges" true (processors <> [])
  | _ -> Alcotest.fail "expected a divergence cycle"

let test_write_scan_bfs_divergence_agrees () =
  let cfg = Algorithms.Write_scan.cfg ~n:2 ~m:2 in
  let wiring = Anonmem.Wiring.identity ~n:2 ~m:2 in
  match MCW.explore ~cfg ~wiring ~inputs:[| 1; 2 |] () with
  | MCW.Explored space ->
      Alcotest.(check bool) "BFS SCC also reports divergence" false
        (MCW.is_wait_free space);
      Alcotest.(check (list int)) "both processors diverge" [ 0; 1 ]
        (MCW.divergent_processors space)
  | _ -> Alcotest.fail "expected exploration"

let test_snapshot_n1_acyclic () =
  let cfg = Snap.cfg ~n:1 ~m:1 in
  let wiring = Anonmem.Wiring.identity ~n:1 ~m:1 in
  match MC.check_exhaustive ~cfg ~wiring ~inputs:[| 1 |] () with
  | MC.Dfs_ok s ->
      Alcotest.(check bool) "some transitions" true (s.MC.dfs_transitions > 0);
      Alcotest.(check int) "one terminal" 1 s.MC.dfs_terminals
  | _ -> Alcotest.fail "expected acyclic result"

(* --- the n=2 TLC claim ----------------------------------------------------- *)

let test_verify_snapshot_n2_all_wirings () =
  match Core.verify_snapshot_model ~n:2 () with
  | Ok s ->
      Alcotest.(check int) "2 wirings" 2 s.Modelcheck.Explorer.wirings_checked;
      Alcotest.(check bool) "wait-free everywhere" true
        s.Modelcheck.Explorer.all_wait_free;
      Alcotest.(check bool) "nontrivial spaces" true
        (s.Modelcheck.Explorer.total_states > 100)
  | Error e -> Alcotest.fail e

let test_verify_snapshot_n2_groups () =
  match Core.verify_snapshot_model ~n:2 ~inputs:(Some [| 1; 1 |]) () with
  | Ok s ->
      Alcotest.(check bool) "single group verified" true
        s.Modelcheck.Explorer.all_wait_free
  | Error e -> Alcotest.fail e

let test_bfs_and_dfs_agree_on_counts () =
  let cfg = Snap.standard ~n:2 in
  let wiring = Anonmem.Wiring.identity ~n:2 ~m:2 in
  let inputs = [| 1; 2 |] in
  match (MC.explore ~cfg ~wiring ~inputs (), MC.check_exhaustive ~cfg ~wiring ~inputs ()) with
  | MC.Explored space, MC.Dfs_ok s ->
      Alcotest.(check int) "same state count" (MC.state_count space) s.MC.dfs_states;
      Alcotest.(check int) "same transition count" (MC.transition_count space)
        s.MC.dfs_transitions;
      Alcotest.(check int) "same terminal count"
        (List.length space.MC.terminal)
        s.MC.dfs_terminals
  | _ -> Alcotest.fail "expected both to succeed"

(* Terminal outcomes of the n=2 exploration all satisfy the snapshot task. *)
let test_terminal_outcomes_valid () =
  let cfg = Snap.standard ~n:2 in
  let inputs = [| 1; 2 |] in
  List.iter
    (fun wiring ->
      match MC.explore ~cfg ~wiring ~inputs () with
      | MC.Explored space ->
          let outcomes =
            MC.terminal_outcomes space ~group_of_input:Fun.id ~to_task_output:Fun.id
          in
          Alcotest.(check bool) "has terminal states" true (outcomes <> []);
          List.iter
            (fun o ->
              match Tasks.Snapshot_task.check_strong o with
              | Ok () -> ()
              | Error e -> Alcotest.fail (Tasks.Task_failure.to_string e))
            outcomes
      | _ -> Alcotest.fail "exploration failed")
    (Anonmem.Wiring.enumerate ~n:2 ~m:2 ~fix_first:true)

(* --- double-collect: exhaustively hunting for its unsoundness ------------- *)

let test_double_collect_explored () =
  (* For n=2 the broken double-collect baseline: explore and validate that
     exploration machinery handles it; record whether its terminal outcomes
     are task-valid (they are at n=2; the Figure-2 attack needs the churn of
     more processors). *)
  let cfg = Algorithms.Double_collect.standard ~n:2 in
  let inputs = [| 1; 2 |] in
  List.iter
    (fun wiring ->
      match MCD.explore ~cfg ~wiring ~inputs () with
      | MCD.Explored space ->
          Alcotest.(check bool) "explored" true (MCD.state_count space > 0)
      | MCD.Invariant_failed _ -> Alcotest.fail "no invariant given"
      | MCD.State_limit _ -> Alcotest.fail "unexpected state limit"
      | MCD.Exhausted _ -> Alcotest.fail "unexpected exhaustion")
    (Anonmem.Wiring.enumerate ~n:2 ~m:2 ~fix_first:true)

(* --- the packed 3-processor checker ---------------------------------------- *)

let test_snapshot3_selfcheck () =
  let compared = Modelcheck.Snapshot3.selfcheck ~runs:30 ~max_steps:1_000 () in
  Alcotest.(check bool) "many steps compared" true (compared > 2_000)

let test_snapshot3_bit_layout () =
  let open Modelcheck.Snapshot3 in
  let l = mk_local ~view:5 ~level:3 ~nw:2 ~phase:6 ~mn:3 in
  Alcotest.(check int) "view" 5 (l_view l);
  Alcotest.(check int) "level" 3 (l_level l);
  Alcotest.(check int) "nw" 2 (l_nw l);
  Alcotest.(check int) "phase" 6 (l_phase l);
  Alcotest.(check int) "min" 3 (l_min l);
  let s = set_local (set_reg 0 2 (mk_reg ~view:7 ~level:1)) 1 l in
  Alcotest.(check int) "local roundtrip through state" l (get_local s 1);
  Alcotest.(check int) "reg view" 7 (r_view (get_reg s 2));
  Alcotest.(check int) "reg level" 1 (r_level (get_reg s 2));
  Alcotest.(check int) "other locals untouched" 0 (get_local s 0)

let test_snapshot3_rejects_bad_inputs () =
  Alcotest.check_raises "input out of range"
    (Invalid_argument "Snapshot3: inputs must be in 1..3") (fun () ->
      ignore (Modelcheck.Snapshot3.initial_state [| 1; 2; 9 |]))

(* --- the nondeterministic-write-order variant ------------------------------- *)

let test_snapshot3_nd_choices () =
  let open Modelcheck.Snapshot3_nd in
  let s = initial_state [| 1; 2; 3 |] in
  (* initially every processor is writing with an empty round mask: 3
     choices each *)
  List.iter
    (fun p -> Alcotest.(check int) "3 write choices" 3 (choices s p))
    [ 0; 1; 2 ];
  Alcotest.(check int) "first unwritten" 0 (write_target 0b000 0);
  Alcotest.(check int) "skip written" 1 (write_target 0b001 0);
  Alcotest.(check int) "second choice" 2 (write_target 0b001 1);
  Alcotest.(check int) "only r1 free" 1 (write_target 0b101 0)

let test_snapshot3_nd_step_subsumes_cyclic () =
  (* Choosing the lowest unwritten register each round reproduces the
     deterministic implementation's behaviour: run both packed semantics
     in lockstep on a random schedule and compare views and levels. *)
  let open Modelcheck.Snapshot3_nd in
  let rng = Rng.create ~seed:11 in
  let wiring = Anonmem.Wiring.random rng ~n:3 ~m:3 in
  let sigmas =
    Array.init 3 (fun p -> Array.init 3 (fun i -> Anonmem.Wiring.phys wiring ~p i))
  in
  let det = ref (Modelcheck.Snapshot3.initial_state [| 1; 2; 3 |]) in
  let nd = ref (initial_state [| 1; 2; 3 |]) in
  for _ = 1 to 500 do
    let enabled =
      List.filter (fun p -> choices !nd p > 0) [ 0; 1; 2 ]
    in
    if enabled <> [] then begin
      let p = Rng.pick rng enabled in
      (* deterministic cyclic order = always the round's lowest unwritten
         register, which under Snapshot3's cursor is choice... the cursor
         and the mask enumerate registers in the same private order, so
         choice 0 matches *)
      det := Modelcheck.Snapshot3.step !det p sigmas.(p);
      nd := step !nd p 0 sigmas.(p);
      List.iter
        (fun q ->
          let dl = Modelcheck.Snapshot3.get_local !det q in
          let nl = get_local !nd q in
          if
            Modelcheck.Snapshot3.l_view dl <> l_view nl
            || Modelcheck.Snapshot3.l_level dl <> l_level nl
          then Alcotest.fail "ND(choice 0) diverged from cyclic semantics")
        [ 0; 1; 2 ]
    end
  done

let test_snapshot3_nd_search_smoke () =
  (* With a single group, every view is {1}: the first write puts {1} in
     memory and the whole subtree is pruned, so the search refutes the
     target immediately on every wiring. *)
  let r =
    Modelcheck.Snapshot3_nd.find_nonatomic ~log2_capacity:16
      ~inputs:[| 1; 1; 1 |] ~target_mask:0b001
      ~wirings:
        [
          Anonmem.Wiring.identity ~n:3 ~m:3;
          Anonmem.Wiring.of_lists [ [ 0; 1; 2 ]; [ 1; 2; 0 ]; [ 2; 0; 1 ] ];
        ]
      ()
  in
  Alcotest.(check bool) "single group has no witness" true (r = None)

(* --- consensus codec -------------------------------------------------------- *)

let test_consensus_codec_roundtrip () =
  let module Cc = Modelcheck.Codecs.Consensus in
  let module CSys = Anonmem.System.Make (Algorithms.Consensus) in
  let cfg = Algorithms.Consensus.standard ~n:2 in
  let wiring = Anonmem.Wiring.random (Rng.create ~seed:6) ~n:2 ~m:2 in
  let st = CSys.init ~cfg ~wiring ~inputs:[| 1; 2 |] in
  let checked = ref 0 in
  let _ =
    CSys.run ~max_steps:400
      ~sched:(Anonmem.Scheduler.random (Rng.create ~seed:7))
      ~on_event:(fun ~time:_ _ ->
        Array.iter
          (fun (l : Algorithms.Consensus.local) ->
            let b = Bytes.make (Cc.local_width cfg) '\000' in
            Cc.encode_local cfg l b 0;
            let l' = Cc.decode_local cfg b 0 in
            (* [input] and [rounds] are deliberately quotiented away *)
            let scrub (x : Algorithms.Consensus.local) =
              { x with Algorithms.Consensus.input = 0; rounds = 0 }
            in
            if scrub l' <> scrub l then Alcotest.fail "consensus local roundtrip";
            incr checked)
          st.CSys.locals)
      st
  in
  Alcotest.(check bool) "checked many locals" true (!checked > 100)

let test_consensus_codec_bounds () =
  let module Cc = Modelcheck.Codecs.Consensus in
  Alcotest.check_raises "timestamp too large"
    (Invalid_argument "Codecs.Consensus: (value, timestamp) out of bounds")
    (fun () -> ignore (Cc.pair_index (1, 99)))

(* --- codec round-trip properties (QCheck) ---------------------------------- *)

(* [decode (encode x) = x] over random reachable-shaped states for all
   five protocol codecs.  The generators draw every field from the range
   the codec documents (views as byte bitmasks, scan positions below the
   register count, consensus pairs within the pair-index bounds), so a
   failure is a genuine codec bug, not an out-of-contract input.  The
   driven-execution roundtrips above stay: they cover correlations the
   independent field generators cannot (QCheck covers the full field
   product, the executions cover realism). *)

let qcheck_count =
  match Sys.getenv_opt "QCHECK_COUNT" with
  | Some s -> int_of_string s
  | None -> 300

let gen_iset = QCheck.Gen.(map Iset.of_bits (int_bound 255))

module SC = Algorithms.Snapshot.Core

let gen_snap_phase =
  QCheck.Gen.(
    oneof
      [
        return SC.Writing;
        map3
          (fun pos all_own min_level ->
            SC.Scanning { SC.pos; all_own; min_level })
          (int_bound 7) bool (int_bound 7);
      ])

let gen_snap_local =
  QCheck.Gen.(
    map3
      (fun view level (next_write, phase) ->
        { SC.view; level; next_write; phase })
      gen_iset (int_bound 7)
      (pair (int_bound 7) gen_snap_phase))

let codec_roundtrip (type l) name ~(width : int) ~(gen : l QCheck.Gen.t)
    ~(encode : l -> Bytes.t -> int -> unit) ~(decode : Bytes.t -> int -> l)
    ?(eq : l -> l -> bool = ( = )) () =
  QCheck.Test.make
    ~name:(name ^ ": decode (encode x) = x")
    ~count:qcheck_count (QCheck.make gen) (fun x ->
      let b = Bytes.make width '\000' in
      encode x b 0;
      eq (decode b 0) x)

let prop_snapshot_local =
  let cfg = Snap.standard ~n:3 in
  codec_roundtrip "snapshot local" ~width:(SnapC.local_width cfg)
    ~gen:gen_snap_local
    ~encode:(SnapC.encode_local cfg)
    ~decode:(SnapC.decode_local cfg)
    ()

let prop_snapshot_value =
  let cfg = Snap.standard ~n:3 in
  codec_roundtrip "snapshot value" ~width:(SnapC.value_width cfg)
    ~gen:
      QCheck.Gen.(
        map2 (fun view level -> { Snap.view; level }) gen_iset (int_bound 7))
    ~encode:(SnapC.encode_value cfg)
    ~decode:(SnapC.decode_value cfg)
    ()

let prop_write_scan_local =
  let module W = Algorithms.Write_scan in
  let cfg = W.cfg ~n:3 ~m:3 in
  codec_roundtrip "write-scan local" ~width:(WsC.local_width cfg)
    ~gen:
      QCheck.Gen.(
        map3
          (fun view next_write phase -> { W.view; next_write; phase })
          gen_iset (int_bound 7)
          (oneof
             [
               return W.Writing;
               map (fun pos -> W.Scanning { W.pos }) (int_bound 7);
             ]))
    ~encode:(WsC.encode_local cfg)
    ~decode:(WsC.decode_local cfg)
    ()

let prop_double_collect_local =
  let module D = Algorithms.Double_collect in
  let cfg = D.standard ~n:3 in
  codec_roundtrip "double-collect local" ~width:(DcC.local_width cfg)
    ~gen:
      QCheck.Gen.(
        map3
          (fun view (next_write, streak) phase ->
            { D.view; next_write; streak; phase })
          gen_iset
          (pair (int_bound 7) (int_bound 7))
          (oneof
             [
               return D.Writing;
               map2
                 (fun pos all_own -> D.Scanning { D.pos; all_own })
                 (int_bound 7) bool;
             ]))
    ~encode:(DcC.encode_local cfg)
    ~decode:(DcC.decode_local cfg)
    ()

module Cc = Modelcheck.Codecs.Consensus
module Cons = Algorithms.Consensus

(* Pair sets as random 24-bit masks: exactly the codec's own value space
   ((value, timestamp) with value in 1..3, timestamp in 0..7). *)
let gen_pset = QCheck.Gen.(map Cc.pset_of_bits (int_bound ((1 lsl 24) - 1)))

let gen_consensus_snap_local =
  QCheck.Gen.(
    map3
      (fun view level (next_write, phase) ->
        { Cons.Snap.Core.view; level; next_write; phase })
      gen_pset (int_bound 7)
      (pair (int_bound 7)
         (oneof
            [
              return Cons.Snap.Core.Writing;
              map3
                (fun pos all_own min_level ->
                  Cons.Snap.Core.Scanning
                    { Cons.Snap.Core.pos; all_own; min_level })
                (int_bound 7) bool (int_bound 7);
            ])))

let prop_consensus_local =
  let cfg = Cons.standard ~n:3 in
  (* [input] decodes as [pref] and [rounds] as 0 by design (the ghost
     fields are quotiented away), so generate states already in that
     normal form — on those the codec must be an exact inverse. *)
  let gen =
    QCheck.Gen.(
      map3
        (fun (pref, ts) decided snap ->
          { Cons.input = pref; pref; ts; decided; rounds = 0; snap })
        (pair (1 -- 3) (int_bound 7))
        (oneof [ return None; map (fun v -> Some v) (1 -- 3) ])
        gen_consensus_snap_local)
  in
  codec_roundtrip "consensus local" ~width:(Cc.local_width cfg) ~gen
    ~encode:(Cc.encode_local cfg)
    ~decode:(Cc.decode_local cfg)
    ()

let prop_consensus_value =
  let cfg = Cons.standard ~n:3 in
  codec_roundtrip "consensus value" ~width:(Cc.value_width cfg)
    ~gen:
      QCheck.Gen.(
        map2
          (fun view level -> { Cons.Snap.Core.view; level })
          gen_pset (int_bound 7))
    ~encode:(Cc.encode_value cfg)
    ~decode:(Cc.decode_value cfg)
    ()

module RenC = Modelcheck.Codecs.Renaming
module Ren = Algorithms.Renaming

let prop_renaming_local =
  let cfg = Ren.standard ~n:3 in
  codec_roundtrip "renaming local" ~width:(RenC.local_width cfg)
    ~gen:
      QCheck.Gen.(
        map2 (fun group core -> { Ren.group; core }) (int_bound 7)
          gen_snap_local)
    ~encode:(RenC.encode_local cfg)
    ~decode:(RenC.decode_local cfg)
    ()

(* Out-of-range fields must raise the structured byte-range error and
   leave every byte outside the encoding slot untouched: the buffer is a
   shared state arena in the explorers, so a partial encode must never
   bleed into a neighbouring processor's slice. *)
let check_out_of_range name width encode =
  let b = Bytes.make (width + 2) '\xAB' in
  (match encode b 1 with
  | exception Invalid_argument msg ->
      Alcotest.(check string)
        (name ^ ": structured error")
        "Codecs: field out of byte range" msg
  | exception e ->
      Alcotest.failf "%s: expected byte-range error, got %s" name
        (Printexc.to_string e)
  | () -> Alcotest.failf "%s: out-of-range field encoded" name);
  Alcotest.(check char) (name ^ ": left neighbour intact") '\xAB' (Bytes.get b 0);
  Alcotest.(check char)
    (name ^ ": right neighbour intact")
    '\xAB'
    (Bytes.get b (width + 1))

let test_codecs_out_of_range_structured () =
  let scfg = Snap.standard ~n:3 in
  check_out_of_range "snapshot level=300" (SnapC.local_width scfg) (fun b off ->
      SnapC.encode_local scfg
        { SC.view = Iset.empty; level = 300; next_write = 0; phase = SC.Writing }
        b off);
  let wcfg = Algorithms.Write_scan.cfg ~n:3 ~m:3 in
  check_out_of_range "write-scan next_write=256" (WsC.local_width wcfg)
    (fun b off ->
      WsC.encode_local wcfg
        {
          Algorithms.Write_scan.view = Iset.empty;
          next_write = 256;
          phase = Algorithms.Write_scan.Writing;
        }
        b off);
  let dcfg = Algorithms.Double_collect.standard ~n:3 in
  check_out_of_range "double-collect streak=-1" (DcC.local_width dcfg)
    (fun b off ->
      DcC.encode_local dcfg
        {
          Algorithms.Double_collect.view = Iset.empty;
          next_write = 0;
          streak = -1;
          phase = Algorithms.Double_collect.Writing;
        }
        b off);
  let ccfg = Cons.standard ~n:3 in
  check_out_of_range "consensus ts=999" (Cc.local_width ccfg) (fun b off ->
      Cc.encode_local ccfg
        {
          Cons.input = 1;
          pref = 1;
          ts = 999;
          decided = None;
          rounds = 0;
          snap = Cons.Snap.init ccfg (1, 0);
        }
        b off);
  let rcfg = Ren.standard ~n:3 in
  check_out_of_range "renaming group=300" (RenC.local_width rcfg) (fun b off ->
      RenC.encode_local rcfg
        {
          Ren.group = 300;
          core =
            { SC.view = Iset.empty; level = 0; next_write = 0; phase = SC.Writing };
        }
        b off)

let () =
  Alcotest.run "modelcheck"
    [
      ( "codecs",
        [
          Alcotest.test_case "snapshot roundtrip" `Quick test_snapshot_codec_roundtrip;
          Alcotest.test_case "out-of-range rejected" `Quick
            test_codec_rejects_out_of_range;
        ] );
      ( "exploration",
        [
          Alcotest.test_case "solo snapshot" `Quick test_explore_solo_snapshot;
          Alcotest.test_case "invariant violation" `Quick
            test_explore_finds_invariant_violation;
          Alcotest.test_case "state limit" `Quick test_explore_state_limit;
          Alcotest.test_case "trace reconstruction" `Quick test_trace_reconstruction;
        ] );
      ( "wait-freedom",
        [
          Alcotest.test_case "write-scan diverges (DFS)" `Quick
            test_write_scan_diverges;
          Alcotest.test_case "write-scan diverges (BFS SCC)" `Quick
            test_write_scan_bfs_divergence_agrees;
          Alcotest.test_case "n=1 snapshot acyclic" `Quick test_snapshot_n1_acyclic;
        ] );
      ( "tlc-claim-n2",
        [
          Alcotest.test_case "all wirings verified" `Quick
            test_verify_snapshot_n2_all_wirings;
          Alcotest.test_case "group inputs verified" `Quick
            test_verify_snapshot_n2_groups;
          Alcotest.test_case "BFS/DFS agree" `Quick test_bfs_and_dfs_agree_on_counts;
          Alcotest.test_case "terminal outcomes valid" `Quick
            test_terminal_outcomes_valid;
        ] );
      ( "double-collect",
        [ Alcotest.test_case "explorable" `Quick test_double_collect_explored ] );
      ( "snapshot3",
        [
          Alcotest.test_case "selfcheck vs reference" `Quick
            test_snapshot3_selfcheck;
          Alcotest.test_case "bit layout" `Quick test_snapshot3_bit_layout;
          Alcotest.test_case "input validation" `Quick
            test_snapshot3_rejects_bad_inputs;
          Alcotest.test_case "ND: choices and targets" `Quick
            test_snapshot3_nd_choices;
          Alcotest.test_case "ND: choice 0 = cyclic order" `Quick
            test_snapshot3_nd_step_subsumes_cyclic;
          Alcotest.test_case "ND: single-group refuted" `Quick
            test_snapshot3_nd_search_smoke;
        ] );
      ( "consensus-codec",
        [
          Alcotest.test_case "roundtrip" `Quick test_consensus_codec_roundtrip;
          Alcotest.test_case "bounds" `Quick test_consensus_codec_bounds;
        ] );
      ( "codec-qcheck",
        [
          QCheck_alcotest.to_alcotest prop_snapshot_local;
          QCheck_alcotest.to_alcotest prop_snapshot_value;
          QCheck_alcotest.to_alcotest prop_write_scan_local;
          QCheck_alcotest.to_alcotest prop_double_collect_local;
          QCheck_alcotest.to_alcotest prop_consensus_local;
          QCheck_alcotest.to_alcotest prop_consensus_value;
          QCheck_alcotest.to_alcotest prop_renaming_local;
          Alcotest.test_case "out-of-range leaves neighbours intact" `Quick
            test_codecs_out_of_range_structured;
        ] );
    ]
