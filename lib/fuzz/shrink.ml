(** Greedy delta-debugging (ddmin) over lists.

    [list ~still_failing xs] returns a locally minimal sublist of [xs]
    (element order preserved) on which [still_failing] still holds,
    assuming it holds on [xs] itself.  The classic ddmin loop: try to
    remove contiguous chunks at decreasing granularity, restart whenever a
    removal sticks, and finish with a single-element elimination pass —
    so the result is 1-minimal: removing any single remaining element
    makes the failure disappear.

    The predicate is called on candidate sublists only; the number of
    calls is O(k² ) in the worst case for a result of size k, which is
    what the fuzzing harness budgets for. *)

let drop_slice xs ~pos ~len =
  List.filteri (fun i _ -> i < pos || i >= pos + len) xs

(* One granularity sweep: try removing each chunk of [len] consecutive
   elements, left to right, keeping removals that preserve the failure. *)
let sweep ~still_failing ~len xs =
  let rec go pos xs changed =
    if pos >= List.length xs then (xs, changed)
    else
      let candidate = drop_slice xs ~pos ~len in
      if List.length candidate < List.length xs && still_failing candidate then
        go pos candidate true
      else go (pos + len) xs changed
  in
  go 0 xs false

let list ~still_failing xs =
  let rec at_granularity len xs =
    if len < 1 then xs
    else
      let xs, changed = sweep ~still_failing ~len xs in
      if changed then at_granularity (max 1 (List.length xs / 2)) xs
      else at_granularity (len / 2) xs
  in
  let xs = at_granularity (max 1 (List.length xs / 2)) xs in
  (* Final 1-minimality pass. *)
  fst (sweep ~still_failing ~len:1 xs)

(** Shrink a value toward a target through a list of candidate
    replacements, first-accepted wins.  Used for lowering inputs and
    instance sizes. *)
let first_accepted ~still_failing candidates fallback =
  match List.find_opt still_failing candidates with
  | Some c -> c
  | None -> fallback
