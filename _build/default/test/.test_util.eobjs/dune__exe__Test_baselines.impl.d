test/test_baselines.ml: Alcotest Algorithms Analysis Anonmem Array Fun Iset List Modelcheck Option Printf Repro_util Rng Tasks
