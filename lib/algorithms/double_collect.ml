(** Baseline: the natural-but-wrong "double collect" termination rule for
    the fully-anonymous model.

    Section 4 of the paper observes that a processor cannot safely output
    its view as a snapshot merely because it read the same set of values in
    every register — not even twice in a row.  This protocol implements
    exactly that rule: write the view, scan, and terminate after two
    consecutive scans that read exactly the current view in every register.

    Under benign schedules it terminates quickly with correct-looking
    output, but under the Figure-2 adversary (see {!Analysis.Figure2}) two
    processors with the same input can be fed the incomparable sets {1,2}
    and {1,3} forever and will both terminate, violating the containment
    property of the snapshot task.  The test-suite exhibits the violation;
    the level mechanism of Figure 3 exists precisely to rule it out. *)

open Repro_util

type cfg = { n : int; m : int }

let cfg ~n ~m =
  if n < 1 || m < 1 then invalid_arg "Double_collect.cfg";
  { n; m }

let standard ~n = cfg ~n ~m:n

type value = Iset.t
type input = int
type output = Iset.t
(* As in {!Snapshot_core}, reads fold into the view immediately instead of
   through a separate accumulator — observably equivalent and cheaper to
   model-check. *)
type scan = { pos : int; all_own : bool }
type phase = Writing | Scanning of scan

type local = {
  view : Iset.t;
  next_write : int;
  streak : int;  (** consecutive scans that read exactly [view] everywhere *)
  phase : phase;
}

let name = "double-collect(broken)"
let processors c = c.n
let registers c = c.m
let register_init _ = Iset.empty

let init _ input =
  { view = Iset.singleton input; next_write = 0; streak = 0; phase = Writing }

let terminated l = l.streak >= 2 && l.phase = Writing

let halted _ l = terminated l

let next _ l =
  if terminated l then None
  else
    match l.phase with
    | Writing -> Some (Anonmem.Protocol.Write (l.next_write, l.view))
    | Scanning { pos; _ } -> Some (Anonmem.Protocol.Read pos)

let apply_write c l =
  match l.phase with
  | Scanning _ -> invalid_arg "Double_collect.apply_write: not writing"
  | Writing ->
      {
        l with
        next_write = (l.next_write + 1) mod c.m;
        phase = Scanning { pos = 0; all_own = true };
      }

let apply_read c l ~reg v =
  match l.phase with
  | Writing -> invalid_arg "Double_collect.apply_read: not scanning"
  | Scanning s ->
      if reg <> s.pos then invalid_arg "Double_collect.apply_read: wrong register";
      let all_own = s.all_own && Iset.equal v l.view in
      let view = if all_own then l.view else Iset.union l.view v in
      let s = { pos = s.pos + 1; all_own } in
      if s.pos < c.m then { l with view; phase = Scanning s }
      else
        {
          l with
          view;
          streak = (if s.all_own then l.streak + 1 else 0);
          phase = Writing;
        }

let output _ l = if terminated l then Some l.view else None

(* Flat twin: views as bitset words; phase in the scan position ([-1] =
   Writing), [all_own] and the streak in parallel int arrays.  Total. *)
let flat (c : cfg) ~(phys : int array) ~(inputs : int array)
    ~(registers : value array) ~(locals : local array) :
    value Anonmem.Protocol.flat option =
  let n = c.n and m = c.m in
  let in_window i = 0 <= i && i < Bits.max_width in
  if n > Bits.max_width || m > Bits.max_width
     || not (Array.for_all in_window inputs)
  then None
  else
    match
      ( Array.map Iset.to_bits registers,
        Array.map (fun l -> Iset.to_bits l.view) locals )
    with
    | exception Invalid_argument _ -> None
    | rview, lview ->
        let lnext = Array.map (fun l -> l.next_write) locals in
        let lstreak = Array.map (fun l -> l.streak) locals in
        let lpos = Array.make n (-1) in
        let lall = Array.make n 0 in
        Array.iteri
          (fun p l ->
            match l.phase with
            | Writing -> lpos.(p) <- -1
            | Scanning { pos; all_own } ->
                lpos.(p) <- pos;
                lall.(p) <- (if all_own then 1 else 0))
          locals;
        let pview = Array.copy rview in
        let dirty = ref 0 in
        let halted p = lstreak.(p) >= 2 && lpos.(p) < 0 in
        let peek p =
          let pos = lpos.(p) in
          if pos < 0 then
            if lstreak.(p) >= 2 then -1
            else (phys.((p * m) + lnext.(p)) lsl 1) lor 1
          else phys.((p * m) + pos) lsl 1
        in
        let do_read p vview =
          let all = lall.(p) = 1 && vview = lview.(p) in
          if not all then begin
            lall.(p) <- 0;
            lview.(p) <- lview.(p) lor vview
          end;
          let pos = lpos.(p) + 1 in
          if pos < m then lpos.(p) <- pos
          else begin
            lstreak.(p) <- (if all then lstreak.(p) + 1 else 0);
            lpos.(p) <- -1
          end
        in
        let advance_write p =
          lnext.(p) <- (lnext.(p) + 1) mod m;
          lpos.(p) <- 0;
          lall.(p) <- 1
        in
        let step p =
          let pos = lpos.(p) in
          if pos < 0 then begin
            let r = phys.((p * m) + lnext.(p)) in
            pview.(r) <- rview.(r);
            rview.(r) <- lview.(p);
            dirty := !dirty lor (1 lsl r);
            advance_write p
          end
          else do_read p rview.(phys.((p * m) + pos))
        in
        let step_stale p = do_read p pview.(phys.((p * m) + lpos.(p))) in
        let reset p =
          lview.(p) <- 1 lsl inputs.(p);
          lnext.(p) <- 0;
          lstreak.(p) <- 0;
          lpos.(p) <- -1
        in
        let value r =
          if !dirty land (1 lsl r) <> 0 then Iset.of_bits rview.(r)
          else registers.(r)
        in
        let sync () =
          List.iter
            (fun r -> registers.(r) <- Iset.of_bits rview.(r))
            (Bits.to_list !dirty);
          for p = 0 to n - 1 do
            locals.(p) <-
              {
                view = Iset.of_bits lview.(p);
                next_write = lnext.(p);
                streak = lstreak.(p);
                phase =
                  (if lpos.(p) < 0 then Writing
                   else Scanning { pos = lpos.(p); all_own = lall.(p) = 1 });
              }
          done
        in
        Some
          {
            Anonmem.Protocol.total = true;
            peek;
            step;
            step_omit = advance_write;
            step_stale;
            reset;
            halted;
            value;
            sync;
          }
let view_of_local l = l.view
let pp_value _ = Iset.pp_set

let pp_local _ ppf l =
  Fmt.pf ppf "{view=%a streak=%d}" Iset.pp_set l.view l.streak

let pp_output _ = Iset.pp_set
