(** Inductive-invariant track for the Figure-3 snapshot: certify safety
    facts by induction instead of reachability, then reuse the proved
    invariant as a pruning oracle inside the explicit engines.

    Explicit-state checking enumerates the reachable states of one [(n, m,
    wiring)] instance and tops out around n = 4.  This module takes the
    TendermintAccInv3 route instead: state a candidate invariant [Inv] as a
    conjunction of {!clause}s over simulator configurations and discharge
    the two obligations

    {ul
    {- [Init ⇒ Inv] — every initial configuration satisfies the clauses;}
    {- [Inv ∧ Next ⇒ Inv′] — every single transition from an
       Inv-satisfying configuration lands in an Inv-satisfying one}}

    by exhaustive enumeration of single transitions from the enumerated
    Inv-state universe.  A failure of the second obligation is a
    {e counterexample to induction} (CTI): a transition [pre → post] with
    [pre ⊨ Inv] and [post ⊭ Inv].  A CTI does not refute invariance — the
    pre-state may be unreachable — but a proved conjunction holds in every
    reachable state of {e every} schedule, which is what makes it a sound
    pruning oracle ({!violates_state}).

    Two checkers discharge the obligations:

    {ul
    {- {!check_abstract} works on an abstraction of configurations that
       erases the scan position, the private write cursor and the register
       file: a processor keeps [(view, level, phase)] where the phase
       records only [all_own], the running [min_level] and whether the
       {e next} read completes the scan, and a read returns {e any}
       register value admitted by the register clauses.  Every concrete
       transition of every instance with [m ≥ 1] registers and any wiring
       is covered by an abstract one, so a pass certifies [Inv] for the
       given [n] across {e all} register counts, wirings and schedules at
       once — the repo's first conclusion not tied to one finite instance.
       The price is possible spurious CTIs (the abstraction may fail
       clauses the concrete system maintains).}
    {- {!check_concrete} enumerates the full syntactic configuration space
       of the paper's [m = n] instance at small [n] (feasible at n = 2),
       interns the Inv-universe into a {!State_table} and pushes every
       state through {!Explorer.Make.successor} under every wiring — no
       abstraction, so it cross-validates the abstract checker's frame
       reasoning, and its CTIs are classified against the actual reachable
       spaces: a {e reachable} CTI comes with a pid trace replayable
       through {!Witness.Replay}.}} *)

(** {1 The clause language}

    Per-level predicates over configurations.  [committed p] below means
    the level that processor [p] is guaranteed to carry to its next round
    boundary: its current level while at the boundary or mid-scan with
    [all_own] still true, and [0] once [all_own] has failed (the scan is
    doomed to reset the level).  Views are sets of participating inputs. *)
type clause =
  | Own_input_in_view  (** ∀p: p's own input ∈ view p *)
  | View_in_participants  (** ∀p: view p ⊆ participating inputs *)
  | Level_bounds  (** ∀p: 0 ≤ level p ≤ n *)
  | Scan_bounds
      (** ∀p mid-scan: 0 ≤ min_level ≤ n, and min_level = 0 once all_own
          has failed (the representation pins it) *)
  | Reg_view_in_participants  (** ∀r: view r ⊆ participating inputs *)
  | Reg_level_bounds  (** ∀r: 0 ≤ level r ≤ n *)
  | Reg_nonempty_above of int  (** ∀r: level r ≥ k ⇒ view r ≠ ∅ *)
  | Reg_view_covered
      (** ∀r: view r = ∅ ∨ ∃p: view r ⊆ view p — memory holds no view
          that has escaped every processor *)
  | Procs_comparable_above of int
      (** ∀p q: committed p ≥ k ∧ committed q ≥ k ⇒ views ⊆-comparable *)
  | Regs_comparable_above of int
      (** ∀r r': level r ≥ k ∧ level r' ≥ k ⇒ views ⊆-comparable *)
  | Reg_proc_comparable_above of int * int
      (** ∀r p: level r ≥ j ∧ committed p ≥ k ⇒ view r, view p
          ⊆-comparable *)

val clause_name : clause -> string
val clause_of_name : string -> clause option
val pp_clause : clause Fmt.t

val proved : clause list
(** The containment-and-coverage conjunction that passes both obligations
    — the invariant behind {!violates_state} pruning. *)

val candidates : clause list
(** [proved] plus the per-level comparability strengthenings from the
    paper's structural account; the extra clauses are rejected at the
    induction step with CTIs (see EXPERIMENTS.md X11). *)

val parse_clauses : string -> (clause list, string) result
(** Comma-separated clause names, or the presets ["proved"] /
    ["candidates"]. *)

(** {1 Evaluation over concrete configurations} *)

val state_violation :
  cfg:Algorithms.Snapshot.cfg ->
  inputs:int array ->
  clause list ->
  locals:Algorithms.Snapshot.local array ->
  registers:Algorithms.Snapshot.value array ->
  clause option
(** First clause violated by the configuration, [None] when all hold.
    Bitmask-based; the workhorse behind the checkers and the oracle. *)

val naive_state_violation :
  cfg:Algorithms.Snapshot.cfg ->
  inputs:int array ->
  clause list ->
  locals:Algorithms.Snapshot.local array ->
  registers:Algorithms.Snapshot.value array ->
  clause option
(** Independent re-implementation of {!state_violation} straight off the
    clause glosses, on {!Repro_util.Iset} operations — the differential
    oracle for the QCheck agreement property. *)

val violates_state :
  cfg:Algorithms.Snapshot.cfg ->
  inputs:int array ->
  clause list ->
  locals:Algorithms.Snapshot.local array ->
  registers:Algorithms.Snapshot.value array ->
  bool
(** The pruning oracle: [true] iff some clause fails.  Only sound as a
    [~prune] argument when the clause list has been {e proved} for this
    [n] — states violating a proved invariant are unreachable. *)

(** {1 Abstract configurations and CTIs} *)

type aphase =
  | Boundary  (** between rounds, about to write (or terminated) *)
  | Scan of { all_own : bool; min_level : int; last : bool }
      (** mid-scan; [last] = the next read completes the scan *)

type aproc = { aview : int; alevel : int; aphase : aphase }
(** Abstract processor: view as an {!Repro_util.Iset.to_bits} bitmask. *)

type areg = { rview : int; rlevel : int }

type astep =
  | Write_step of areg * bool
      (** value written; the successor's [last] flag *)
  | Read_step of areg * bool option
      (** value read; [Some last'] when the scan continues, [None] when
          this read completed it *)

type acti = {
  a_clause : clause;  (** the clause the post-configuration violates *)
  a_inputs : int array;
  a_pid : int;  (** stepping processor; [-1] for an Init violation *)
  a_step : astep option;  (** [None] for an Init violation *)
  a_regs : areg list;
      (** register values witnessing the violated instance (≤ 2) *)
  a_pre : aproc array;
  a_post : aproc array;
}

val pp_aproc : aproc Fmt.t
val pp_areg : areg Fmt.t
val pp_acti : acti Fmt.t

val shrink_acti : n:int -> clause list -> acti -> acti
(** ddmin ({!Fuzzing.Shrink.list}) the CTI's pre-configuration: reset every
    processor not needed for the violation to its initial local state, then
    lower the step's register value through the admissible values
    ({!Fuzzing.Shrink.first_accepted}).  The result is 1-minimal: waking
    any remaining processor back to init loses the CTI. *)

type report = {
  r_n : int;
  r_clauses : clause list;
  r_classes : int array list;  (** input classes checked, up to renaming *)
  r_syntactic : int;  (** syntactic candidate configurations *)
  r_universe : int;  (** Inv-satisfying configurations enumerated *)
  r_transitions : int;  (** single transitions checked *)
  r_init_ok : bool;
  r_ctis : acti list;  (** stored CTIs, capped at [max_ctis] *)
  r_cti_total : int;  (** CTIs found before the cap stopped the search *)
  r_wall_s : float;
}

type abstract_result =
  | Proved of report
  | Refuted of report  (** some obligation failed; [r_ctis] non-empty *)
  | Gave_up of { reason : Governor.reason; processed : int }
      (** a resource governor tripped; resumable from the checkpoint *)

val check_abstract :
  ?max_ctis:int ->
  ?governor:Governor.t ->
  ?ckpt:Checkpoint.policy ->
  ?resume:bool ->
  n:int ->
  clause list ->
  abstract_result
(** Discharge both obligations over the abstract universe for every input
    class at [n] processors.  [max_ctis] (default 100) stops the search
    once that many CTIs are recorded.  The checkpoint stores the
    enumeration cursor, counters and CTIs found so far; [resume] replays
    it (the context section pins [n] and the clause list). *)

val pp_report : report Fmt.t

(** {1 Concrete checking at small n} *)

type ccti = {
  c_clause : clause;
  c_inputs : int array;
  c_wiring : Anonmem.Wiring.t;
  c_pid : int;  (** [-1] marks a reachable Inv-violating state (no step) *)
  c_pre : string;  (** encoded pre-state key ({!Explorer.Make.encode_state}) *)
  c_post : string;
  c_reachable : bool;
  c_trace : int list;  (** pid path from init when reachable, else [] *)
}

type concrete_report = {
  k_report : report;
  k_wirings : int;
  k_ctis : ccti list;
  k_reachable_violations : int;
      (** reachable states violating the clauses — non-zero refutes
          invariance itself, not just inductiveness *)
}

type concrete_result =
  | C_proved of concrete_report
  | C_refuted of concrete_report
  | C_gave_up of { reason : Governor.reason; processed : int }

val check_concrete :
  ?max_ctis:int -> ?governor:Governor.t -> n:int -> clause list -> concrete_result
(** Full-universe induction for the [m = n] instance over every
    [fix_first] wiring, plus a direct invariance sweep of each reachable
    space.  Feasible at n = 2 (≈ 7M syntactic configurations per input
    class); n = 3 is ≈ 10^13 and is what {!check_abstract} is for. *)

val shrink_ccti : n:int -> clause list -> ccti -> ccti
(** ddmin the concrete CTI: reset unneeded processors and registers to
    their initial contents. *)

val replay_ccti : n:int -> ccti -> bool
(** Replay a reachable CTI through {!Witness.Replay}: run [c_trace] from
    the initial state, require it to land exactly on [c_pre], then take
    [c_pid]'s step and require it to land on [c_post].  [false] for
    unreachable (spurious) CTIs. *)

val pp_ccti : ccti Fmt.t

(** {1 Universe accounting} *)

type counts = {
  u_syn_locals : int;  (** syntactic per-processor abstract locals, summed
                           over input classes *)
  u_adm_locals : int;  (** locals admitted by the processor clauses *)
  u_syn_values : int;  (** syntactic register values *)
  u_adm_values : int;  (** values admitted by the register clauses *)
  u_syn_states : int;  (** syntactic local assignments (Σ classes Π_i) *)
  u_adm_states : int;
      (** assignments passing the processor clauses; exact when the clause
          list has no binary processor clause, an upper bound otherwise *)
  u_exact : bool;
}

val universe_counts : n:int -> clause list -> counts
(** Closed-form universe sizes — no enumeration of assignments, so this is
    cheap even at n = 4/5 where the induction itself is not run.  Feeds
    the candidate-state-reduction column of BENCH_mc.json. *)

val input_classes : int -> int array list
(** Input assignments at [n] processors up to input renaming and
    processor permutation (integer partitions of [n]). *)
