(** Bounded-fault exploration: exhaustive safety checking under at most
    [k] injected crash-stops.

    The fault-free checker ({!Explorer}) quantifies over schedules only;
    this module additionally quantifies over {e when and whom} crash-stop
    faults hit.  A crash-stop is time-abstract here: instead of fixing
    fault times as the simulator's {!Anonmem.Fault.plan} does, the search
    branches on "processor [p] crashes {e now}" at every reachable state,
    which covers every timed plan with at most [k] crashes (and more — a
    crash between any two global steps, under any schedule).  A safety
    certificate from this search therefore subsumes every seeded
    crash-stop campaign of the fuzzer at the same sizes.

    States are pairs of a core protocol state and a crashed-set bitmask.
    The crash budget is not part of the key: it is determined by the mask
    ([budget = max_crashes - popcount mask]), so two paths reaching the
    same core state with the same crashed set are genuinely the same
    search node.  Crashing an already-halted processor is skipped — it
    removes no enabled steps, so the successor state is behaviourally
    identical and would only pad the space.

    Only safety (a state invariant) is checked: wait-freedom is trivially
    lost for the crashed processors themselves, and the surviving
    processors' termination under crash-stop is already the fuzzer's
    wait-freedom oracle territory.  The search graph is explored BFS-first
    so a reported violation has a minimal-length witness. *)

module Make (P : Explorer.CHECKABLE) = struct
  module E = Explorer.Make (P)

  type step =
    | Step of int  (** processor id takes its pending protocol step *)
    | Crash of int  (** processor id crash-stops (no memory effect) *)

  let pp_step ppf = function
    | Step p -> Fmt.pf ppf "p%d" (p + 1)
    | Crash p -> Fmt.pf ppf "crash:p%d" (p + 1)

  type violation = {
    message : string;
    state : E.state;  (** the violating core state *)
    crashed : int;  (** bitmask of crash-stopped processors *)
    steps : step list;  (** minimal-length witness from the initial state *)
  }

  type stats = {
    states : int;  (** distinct (core state, crashed set) pairs *)
    transitions : int;
    crash_branches : int;  (** how many of the transitions were crashes *)
    pruned : int;
        (** protocol-step successors skipped by the [~prune] oracle
            (crash branches never prune: they keep the admitted core
            state) *)
  }

  type result =
    | Safe of stats
    | Invariant_failed of violation
    | State_limit of int
    | Exhausted of { reason : Governor.reason; states : int }
        (** a resource governor tripped; resumable when a checkpoint
            policy was in force *)

  let popcount mask =
    let rec go m acc = if m = 0 then acc else go (m lsr 1) (acc + (m land 1)) in
    go mask 0

  (* Parent encoding: (parent_id lsl 5) lor (crash_bit lsl 4) lor pid.
     Explorer packs pids in 4 bits; the extra bit distinguishes crash
     edges from protocol steps.  The crash mask occupies one key byte, so
     at most 8 processors are supported (structured rejection beyond). *)
  let explore ?(max_states = 50_000_000) ?(max_crashes = 1)
      ?(reduction = false) ?prune ?governor ?ckpt ?(resume = false) ~invariant
      ~cfg ~wiring ~inputs () =
    let n = P.processors cfg in
    Explorer.guard_processors ~engine:"Fault_explorer.explore" ~limit:8 n;
    if max_crashes < 0 then invalid_arg "Fault_explorer.explore: max_crashes";
    let canon =
      if reduction then Some (E.canon_of ~cfg ~wiring ~inputs) else None
    in
    let raw_key st mask =
      E.encode_state cfg st ^ String.make 1 (Char.chr mask)
    in
    let key_of st mask =
      let raw = raw_key st mask in
      (* Crash masks canonicalize with their processors: the automorphism
         permuting the local-state slices permutes the mask bits too, so a
         crashed processor's identity follows its slice into the orbit
         minimum. *)
      match canon with
      | Some c -> Canon.canonicalize_masked c raw
      | None -> raw
    in
    let context =
      Fmt.str "fault|%d|%d|%a|%b|%b|%S"
        (E.key_width cfg + 1)
        max_crashes Anonmem.Wiring.pp wiring reduction (prune <> None)
        (key_of (E.init_state ~cfg ~inputs) 0)
    in
    let resumed =
      match ckpt with
      | Some { Checkpoint.path; _ } when resume && Sys.file_exists path ->
          let sections = Checkpoint.load ~path in
          let ctx = Bytes.to_string (Checkpoint.find "context" sections) in
          if not (String.equal ctx context) then
            raise
              (Checkpoint.Corrupt_checkpoint
                 "Fault_explorer.explore: checkpoint context mismatch");
          Some sections
      | _ -> None
    in
    (* Keys are the core encoded state plus one crash-mask byte; packed
       parent words plus one, so the root's -1 packs to 0. *)
    let table, parent =
      match resumed with
      | Some sections ->
          ( State_table.deserialize (Checkpoint.find "table" sections),
            State_table.Packed_vec.deserialize
              (Checkpoint.find "parent" sections) )
      | None ->
          ( State_table.create ~log2_slots:16 ~key_width:(E.key_width cfg + 1)
              (),
            State_table.Packed_vec.create ~stride:5 () )
    in
    let violation = ref None in
    let transitions = ref 0 and crash_branches = ref 0 and pops = ref 0 in
    let pruned = ref 0 in
    (match resumed with
    | Some sections ->
        let counters =
          Checkpoint.ints_of_bytes (Checkpoint.find "counters" sections)
        in
        if Array.length counters <> 4 then
          raise
            (Checkpoint.Corrupt_checkpoint
               "Fault_explorer.explore: counter section of wrong length");
        pops := counters.(0);
        transitions := counters.(1);
        crash_branches := counters.(2);
        pruned := counters.(3)
    | None -> ());
    let save_ckpt path =
      Checkpoint.save ~path
        [
          ("context", Bytes.of_string context);
          ("table", State_table.serialize table);
          ("parent", State_table.Packed_vec.serialize parent);
          ( "counters",
            Checkpoint.bytes_of_ints
              [| !pops; !transitions; !crash_branches; !pruned |] );
        ]
    in
    let queue = Queue.create () in
    (* The BFS pops ids in ascending order, so the resumed frontier is
       the ids discovered but not yet popped: [pops, table length). *)
    if resumed <> None then
      for id = !pops to State_table.length table - 1 do
        Queue.add id queue
      done;
    let decode key =
      let core = String.sub key 0 (String.length key - 1) in
      let mask = Char.code key.[String.length key - 1] in
      (E.decode_state cfg core, mask)
    in
    let add_state st mask ~from =
      let key = key_of st mask in
      let before = State_table.length table in
      let id = State_table.intern table key in
      if id = before then begin
        (* fresh (core state, crashed set) pair *)
        ignore (State_table.Packed_vec.push parent (from + 1));
        (let st = if canon = None then st else fst (decode key) in
         match invariant st with
         | Ok () -> ()
         | Error message ->
             if !violation = None then violation := Some (id, message));
        Queue.add id queue
      end;
      id
    in
    let parent_packed id = State_table.Packed_vec.get parent id - 1 in
    let steps_to id =
      let rec up id acc =
        let packed = parent_packed id in
        if packed < 0 then acc
        else
          let from = packed asr 5 in
          let step =
            if packed land 16 <> 0 then Crash (packed land 15)
            else Step (packed land 15)
          in
          up from (step :: acc)
      in
      up id []
    in
    let keys_to id =
      let rec up id acc =
        let packed = parent_packed id in
        if packed < 0 then acc
        else up (packed asr 5) (State_table.key_of_id table id :: acc)
      in
      up id []
    in
    (* Replay a chain of canonical (state, mask) keys into a concrete
       witness: at each key pick a live processor whose protocol step or
       crash reproduces that orbit minimum (cf. Explorer.concretize). *)
    let concretize_masked c chain =
      let rec go st mask acc = function
        | [] -> (List.rev acc, st, mask)
        | key :: rest ->
            let live =
              List.filter (fun p -> mask land (1 lsl p) = 0) (E.enabled cfg st)
            in
            let candidates =
              List.concat_map
                (fun p ->
                  [
                    (Step p, E.successor cfg wiring st p, mask);
                    (Crash p, st, mask lor (1 lsl p));
                  ])
                live
            in
            let rec pick = function
              | [] ->
                  invalid_arg
                    "Fault_explorer: canonical witness has no concrete \
                     refinement"
              | (step, st', mask') :: tl ->
                  if
                    String.equal
                      (Canon.canonicalize_masked c (raw_key st' mask'))
                      key
                  then (step, st', mask')
                  else pick tl
            in
            let step, st', mask' = pick candidates in
            go st' mask' (step :: acc) rest
      in
      go (E.init_state ~cfg ~inputs) 0 [] chain
    in
    if resumed = None then
      ignore (add_state (E.init_state ~cfg ~inputs) 0 ~from:(-1));
    let limit_hit = ref false in
    let exhausted = ref None in
    while
      (not (Queue.is_empty queue))
      && !violation = None && (not !limit_hit) && !exhausted = None
    do
      (match ckpt with
      | Some { Checkpoint.path; every_states }
        when every_states > 0 && !pops > 0 && !pops mod every_states = 0 ->
          save_ckpt path
      | _ -> ());
      (match governor with
      | Some g -> (
          match Governor.tick g with
          | Some reason ->
              exhausted := Some reason;
              (match ckpt with
              | Some { Checkpoint.path; _ } -> save_ckpt path
              | None -> ())
          | None -> ())
      | None -> ());
      if !exhausted = None then begin
      let id = Queue.pop queue in
      let st, mask = decode (State_table.key_of_id table id) in
      let live =
        List.filter (fun p -> mask land (1 lsl p) = 0) (E.enabled cfg st)
      in
      let budget = max_crashes - popcount mask in
      let expand_one ~crash p =
        if State_table.length table >= max_states then limit_hit := true
        else begin
          incr transitions;
          let st', mask' =
            if crash then begin
              incr crash_branches;
              (st, mask lor (1 lsl p))
            end
            else (E.successor cfg wiring st p, mask)
          in
          match prune with
          | Some f when (not crash) && f st' ->
              (* unreachable by the proved invariant; the crash branch of
                 the same pop keeps the already-admitted core state *)
              incr pruned
          | _ ->
              let tag = (id lsl 5) lor (if crash then 16 else 0) lor p in
              ignore (add_state st' mask' ~from:tag)
        end
      in
      List.iter (expand_one ~crash:false) live;
      (* Crash branches: only live (enabled, uncrashed) processors — a
         crash of a halted processor changes nothing observable. *)
      if budget > 0 then List.iter (expand_one ~crash:true) live;
      incr pops
      end
    done;
    if !exhausted <> None then
      Exhausted
        {
          reason = Option.get !exhausted;
          states = State_table.length table;
        }
    else if !limit_hit then State_limit (State_table.length table)
    else
      match !violation with
      | Some (id, message) -> (
          match canon with
          | None ->
              let st, mask = decode (State_table.key_of_id table id) in
              Invariant_failed
                { message; state = st; crashed = mask; steps = steps_to id }
          | Some c ->
              let steps, st, mask = concretize_masked c (keys_to id) in
              Invariant_failed { message; state = st; crashed = mask; steps })
      | None ->
          Safe
            {
              states = State_table.length table;
              transitions = !transitions;
              crash_branches = !crash_branches;
              pruned = !pruned;
            }

  type summary = {
    wirings_checked : int;
    total_states : int;
    total_transitions : int;
    total_crash_branches : int;
    total_pruned : int;
  }

  (** Check the invariant across every wiring (processor 0 pinned to the
      identity — lossless by register anonymity) for one input
      assignment, under at most [max_crashes] crash-stops injected at
      arbitrary points. *)
  let check_all_wirings ?max_states ?max_crashes ?(reduction = false) ?prune
      ?wirings ?governor ~invariant ~cfg ~inputs () =
    let n = P.processors cfg and m = P.registers cfg in
    let wirings =
      match wirings with
      | Some ws -> ws
      | None -> Anonmem.Wiring.enumerate ~n ~m ~fix_first:true
    in
    let rec go summary = function
      | [] -> Ok summary
      | wiring :: rest -> (
          match
            explore ?max_states ?max_crashes ~reduction ?prune ?governor
              ~invariant ~cfg ~wiring ~inputs ()
          with
          | Exhausted { reason; states } ->
              Error
                (Fmt.str "exhausted (%a) at %d states" Governor.pp_reason
                   reason states)
          | State_limit k -> Error (Fmt.str "state limit hit at %d states" k)
          | Invariant_failed v ->
              Error
                (Fmt.str
                   "invariant violated under wiring %a with crashes {%a}: %s \
                    (witness: %a)"
                   Anonmem.Wiring.pp wiring
                   Fmt.(list ~sep:comma int)
                   (List.filter
                      (fun p -> v.crashed land (1 lsl p) <> 0)
                      (List.init n (fun p -> p)))
                   v.message
                   Fmt.(list ~sep:(any " ") pp_step)
                   v.steps)
          | Safe stats ->
              go
                {
                  wirings_checked = summary.wirings_checked + 1;
                  total_states = summary.total_states + stats.states;
                  total_transitions =
                    summary.total_transitions + stats.transitions;
                  total_crash_branches =
                    summary.total_crash_branches + stats.crash_branches;
                  total_pruned = summary.total_pruned + stats.pruned;
                }
                rest)
    in
    go
      {
        wirings_checked = 0;
        total_states = 0;
        total_transitions = 0;
        total_crash_branches = 0;
        total_pruned = 0;
      }
      wirings
end
