(** Protocols for the fully-anonymous shared-memory model.

    A protocol is the "same program" that every anonymous processor runs
    (Section 2 of the paper).  It is expressed as a first-order step
    machine: the local state determines the next shared-memory operation via
    {!S.next}, and pure transition functions describe the state after the
    operation completes.  This mirrors the atomicity grain of the paper's
    PlusCal specifications — each label encloses exactly one read or one
    write of a single register, with local computation folded in.

    Register indices appearing in operations are {e local} (private) indices
    in [0..M-1]: the simulator routes them through the processor's hidden
    wiring permutation, which is precisely what makes the memory anonymous.

    Local states must be first-order, canonical values (no closures, no
    non-canonical sets): the model checker compares and hashes them
    structurally. *)

(** A pending shared-memory instruction of a processor.  [Read i] and
    [Write (i, v)] address the processor's private register index [i]. *)
type 'v operation = Read of int | Write of int * 'v

exception Fallback
(** Raised by a flat machine's [step] {e before mutating anything} when
    the next transition does not fit its packed representation (e.g. a
    consensus view outgrowing its preallocated capacity).  The driver
    synchronizes the boxed state, replays the refused step through the
    boxed transition functions, and finishes the run on the boxed path —
    so the executed schedule is identical either way. *)

(** The step-into-preallocated-buffers execution interface — the
    hardware-floor core.  A flat machine owns unboxed (int-array) mirrors
    of the registers and local states and advances them in place; the
    boxed {!S} transition functions remain the specification and the shim
    for everything the flat representation cannot hold.

    Conventions shared by every machine:
    - processors and physical registers are identified by ints; the
      machine routed every private index through the wiring at creation
      (the [phys] array), so drivers never see private indices;
    - [peek p] encodes the pending operation as
      [phys_reg * 2 + (1 if write)] and returns [-1] when [p] has halted;
    - [step]/[step_omit]/[step_stale] perform one scheduler step:
      the real operation, a dropped write (local state advances, the
      register keeps its value), or a read served from the register's
      previous value (the machine maintains its own previous-value
      shadow, updated on every successful write);
    - [reset p] is crash-recovery: local state back to [init inputs.(p)];
    - [value r] materializes physical register [r] as a boxed value —
      registers untouched since creation alias the original boxed value,
      written ones are rebuilt from the flat words (the machine tracks a
      dirty mask of written registers for exactly this);
    - [sync ()] writes the flat state back into the boxed [registers]
      and [locals] arrays the machine was created over, after which the
      boxed state is exactly what the boxed path would have produced
      (byte-for-byte; the differential suite pins this);
    - [total] machines never raise {!Fallback}. *)
type 'value flat = {
  total : bool;
  peek : int -> int;
  step : int -> unit;
  step_omit : int -> unit;
  step_stale : int -> unit;
  reset : int -> unit;
  halted : int -> bool;
  value : int -> 'value;
  sync : unit -> unit;
}

module type S = sig
  type cfg
  (** Static parameters of an instance — at minimum the number of
      processors [N] (which processors know) and of registers [M]. *)

  type value
  (** Contents of a shared register. *)

  type input
  type output

  type local
  (** Private state of one processor.  Must be canonical: structural
      equality must coincide with semantic equality. *)

  val name : string

  val processors : cfg -> int
  (** [N], the number of processors, known to the program. *)

  val registers : cfg -> int
  (** [M], the number of shared registers. *)

  val register_init : cfg -> value
  (** The known default value every register initially holds. *)

  val init : cfg -> input -> local
  (** The designated initial local state.  Anonymity: this function is the
      same for all processors and never sees a processor identifier. *)

  val next : cfg -> local -> value operation option
  (** The pending operation, or [None] when the processor has terminated
      (takes no further steps). *)

  val halted : cfg -> local -> bool
  (** [halted cfg l] iff [next cfg l = None].  The execution loops poll
      this every step; implementations answer from a field test instead of
      constructing {!next}'s result, keeping the polling allocation-free. *)

  val apply_read : cfg -> local -> reg:int -> value -> local
  (** State after the pending [Read reg] returned [value]. *)

  val apply_write : cfg -> local -> local
  (** State after the pending [Write] took effect. *)

  val output : cfg -> local -> output option
  (** The processor's write-once output, if it has produced one.  For
      single-shot tasks this becomes non-[None] exactly when {!next}
      becomes [None]. *)

  val flat :
    cfg ->
    phys:int array ->
    inputs:input array ->
    registers:value array ->
    locals:local array ->
    value flat option
  (** Build a flat machine over the given boxed state, or [None] when the
      current state does not fit the packed representation (views outside
      the bitset window, oversized instances, …) — the caller then stays
      on the boxed path.  [phys.(p * M + i)] is the physical register
      behind processor [p]'s private index [i] (the wiring, flattened).
      The machine reads [registers]/[locals] at creation and writes them
      back on [sync]; between the two, the boxed arrays are stale. *)

  val pp_value : cfg -> value Fmt.t
  val pp_local : cfg -> local Fmt.t
  val pp_output : cfg -> output Fmt.t
end
