lib/util/vec.mli:
