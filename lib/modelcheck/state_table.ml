(* Arena-backed open-addressing visited table.  See state_table.mli for
   the layout rationale; the short version:

     arena : Bytes.t     all interned keys, back to back; key [id] is the
                         [key_width] bytes at offset [id * key_width]
     slots : Bytes.t     capacity * 4 bytes, little-endian u32 per slot,
                         storing id + 1 so that all-zero = empty (which is
                         what [Bytes.make _ '\000'] gives us for free)
     tags  : Bytes.t     capacity * 1 byte: bits 55..62 of the key's hash,
                         disjoint from the low bits that select the slot,
                         so a tag mismatch rejects a colliding key without
                         reading the arena

   Probing is linear (step 1).  With power-of-two capacities, load kept
   at or below 3/4 and an 8-bit tag filter, the expected number of arena
   comparisons per lookup stays within a few percent of one. *)

type t = {
  key_width : int;
  mutable arena : Bytes.t; (* count * key_width bytes in use *)
  mutable count : int;
  mutable slots : Bytes.t; (* 4 bytes per slot, u32 LE, id + 1; 0 = empty *)
  mutable tags : Bytes.t; (* 1 byte per slot, valid iff slot nonzero *)
  mutable mask : int; (* capacity - 1 *)
}

(* 64-bit FNV-1a, folded into OCaml's 63-bit nonnegative int range.  The
   canonical offset basis 0xcbf29ce484222325 exceeds max_int on 64-bit
   OCaml, so we start from its value mod 2^63; multiplication already
   happens mod 2^63 in native ints, and the final [land max_int] keeps the
   result nonnegative after the sign bit is discarded. *)
let fnv_offset = 0x4bf29ce484222325
let fnv_prime = 0x100000001b3

let hash key =
  let h = ref fnv_offset in
  for i = 0 to String.length key - 1 do
    h := (!h lxor Char.code (String.unsafe_get key i)) * fnv_prime
  done;
  !h land max_int

let tag_of_hash h = (h lsr 55) land 0xff

let create ?(log2_slots = 12) ~key_width () =
  if key_width < 0 then invalid_arg "State_table.create: negative key_width";
  let log2 = max 3 log2_slots in
  let cap = 1 lsl log2 in
  {
    key_width;
    arena = Bytes.create (max 64 (64 * key_width));
    count = 0;
    slots = Bytes.make (4 * cap) '\000';
    tags = Bytes.create cap;
    mask = cap - 1;
  }

let key_width t = t.key_width
let length t = t.count
let capacity t = t.mask + 1

let slot_get t i =
  (* [Bytes.get_int32_le] sign-extends via Int32, hence the mask. *)
  Int32.to_int (Bytes.get_int32_le t.slots (4 * i)) land 0xFFFFFFFF

let slot_set t i v = Bytes.set_int32_le t.slots (4 * i) (Int32.of_int v)

(* Keys are compared against the arena without materializing a string. *)
let arena_equals t id key =
  let off = id * t.key_width in
  let rec go i =
    i = t.key_width
    || Char.equal (Bytes.unsafe_get t.arena (off + i)) (String.unsafe_get key i)
       && go (i + 1)
  in
  go 0

(* Find the slot holding [key], or the first empty slot of its probe
   sequence.  Returns the id if present, [lnot slot_index] if absent —
   an int encoding rather than a variant so the hot path stays
   allocation-free. *)
let probe t key h =
  let tag = tag_of_hash h in
  let rec go i =
    let s = slot_get t i in
    if s = 0 then lnot i
    else
      let id = s - 1 in
      if Char.code (Bytes.unsafe_get t.tags i) = tag && arena_equals t id key
      then id
      else go ((i + 1) land t.mask)
  in
  go (h land t.mask)

let check_width t key name =
  if String.length key <> t.key_width then
    invalid_arg
      (Printf.sprintf "State_table.%s: key of width %d, table of width %d" name
         (String.length key) t.key_width)

let key_of_id t id =
  if id < 0 || id >= t.count then
    invalid_arg
      (Printf.sprintf "State_table.key_of_id: id %d outside [0..%d]" id
         (t.count - 1));
  Bytes.sub_string t.arena (id * t.key_width) t.key_width

let iter f t =
  for id = 0 to t.count - 1 do
    f id (Bytes.sub_string t.arena (id * t.key_width) t.key_width)
  done

(* Double the slot array, re-deriving each key's hash from the arena.
   Insertion order (hence every dense id) is untouched. *)
let grow_slots t =
  let cap = 2 * (t.mask + 1) in
  t.slots <- Bytes.make (4 * cap) '\000';
  t.tags <- Bytes.create cap;
  t.mask <- cap - 1;
  let buf = Bytes.create t.key_width in
  for id = 0 to t.count - 1 do
    Bytes.blit t.arena (id * t.key_width) buf 0 t.key_width;
    let h = hash (Bytes.unsafe_to_string buf) in
    let rec free i = if slot_get t i = 0 then i else free ((i + 1) land t.mask) in
    let i = free (h land t.mask) in
    slot_set t i (id + 1);
    Bytes.set t.tags i (Char.chr (tag_of_hash h))
  done

let ensure_arena t =
  let need = (t.count + 1) * t.key_width in
  if need > Bytes.length t.arena then begin
    let cap = max need (Bytes.length t.arena + (Bytes.length t.arena / 2)) in
    let arena = Bytes.create cap in
    Bytes.blit t.arena 0 arena 0 (t.count * t.key_width);
    t.arena <- arena
  end

let max_id = 0xFFFF_FFFE (* slots store id + 1 in a u32 *)

let intern t key =
  check_width t key "intern";
  let h = hash key in
  let r = probe t key h in
  if r >= 0 then r
  else begin
    if t.count > max_id then
      invalid_arg "State_table.intern: table full (2^32 - 1 keys)";
    let id = t.count in
    ensure_arena t;
    Bytes.blit_string key 0 t.arena (id * t.key_width) t.key_width;
    t.count <- id + 1;
    let i = lnot r in
    slot_set t i (id + 1);
    Bytes.set t.tags i (Char.chr (tag_of_hash h));
    (* Grow at 3/4 load, after insertion so [i] was still valid. *)
    if 4 * t.count >= 3 * (t.mask + 1) then grow_slots t;
    id
  end

let find t key =
  check_width t key "find";
  let r = probe t key (hash key) in
  if r >= 0 then Some r else None

let mem t key =
  check_width t key "mem";
  probe t key (hash key) >= 0

let words t =
  (* Bytes payloads round up to whole words, plus a 1-word header each;
     the record itself is 7 fields + header. *)
  let bytes_words b = 2 + (Bytes.length b / (Sys.word_size / 8)) in
  8 + bytes_words t.arena + bytes_words t.slots + bytes_words t.tags

(* --- checkpoint (de)serialization -------------------------------------
   The arena is the whole truth: dense ids are insertion order, and the
   slot/tag arrays are a pure function of the interned keys.  So the
   image is a small header plus a blit of the used arena prefix, and
   [deserialize] rebuilds the slots exactly as [grow_slots] does —
   membership, ids, [key_of_id] and iteration order all come back
   bit-identical. *)

let st_magic = "STBL0001"

let corrupt fmt =
  Printf.ksprintf (fun s -> raise (Checkpoint.Corrupt_checkpoint s)) fmt

let serialize t =
  let used = t.count * t.key_width in
  let b = Bytes.create (8 + 8 + 8 + 8 + used) in
  Bytes.blit_string st_magic 0 b 0 8;
  Bytes.set_int64_le b 8 (Int64.of_int t.key_width);
  Bytes.set_int64_le b 16 (Int64.of_int t.count);
  Bytes.blit t.arena 0 b 32 used;
  Bytes.set_int64_le b 24 (Int64.of_int (Checkpoint.checksum b 32 used));
  b

let deserialize b =
  if Bytes.length b < 32 then
    corrupt "State_table image truncated at header (%d bytes)" (Bytes.length b);
  if Bytes.sub_string b 0 8 <> st_magic then
    corrupt "State_table image has bad magic";
  let key_width = Int64.to_int (Bytes.get_int64_le b 8) in
  let count = Int64.to_int (Bytes.get_int64_le b 16) in
  let crc = Int64.to_int (Bytes.get_int64_le b 24) in
  if key_width < 0 || count < 0 || count > max_id + 1 then
    corrupt "State_table image has implausible header (width %d, count %d)"
      key_width count;
  let used = count * key_width in
  if Bytes.length b <> 32 + used then
    corrupt "State_table image length %d, expected %d (width %d, count %d)"
      (Bytes.length b) (32 + used) key_width count;
  if Checkpoint.checksum b 32 used <> crc then
    corrupt "State_table arena checksum mismatch";
  (* Slot capacity: smallest power of two keeping load under 3/4. *)
  let log2 = ref 3 in
  while 4 * count >= 3 * (1 lsl !log2) do incr log2 done;
  let t = create ~log2_slots:!log2 ~key_width () in
  t.arena <- Bytes.create (max 64 (max used (64 * key_width)));
  Bytes.blit b 32 t.arena 0 used;
  t.count <- count;
  let buf = Bytes.create key_width in
  for id = 0 to count - 1 do
    Bytes.blit t.arena (id * key_width) buf 0 key_width;
    let h = hash (Bytes.unsafe_to_string buf) in
    let rec free i = if slot_get t i = 0 then i else free ((i + 1) land t.mask) in
    let i = free (h land t.mask) in
    slot_set t i (id + 1);
    Bytes.set t.tags i (Char.chr (tag_of_hash h))
  done;
  t

module Packed_vec = struct
  type t = {
    stride : int;
    limit : int; (* exclusive upper bound on element values *)
    mutable buf : Bytes.t;
    mutable len : int; (* in elements *)
  }

  let create ?(capacity = 64) ~stride () =
    if stride < 1 || stride > 7 then
      invalid_arg "Packed_vec.create: stride outside [1..7]";
    {
      stride;
      limit = 1 lsl (8 * stride);
      buf = Bytes.create (max 1 capacity * stride);
      len = 0;
    }

  let stride t = t.stride
  let length t = t.len

  let get t i =
    if i < 0 || i >= t.len then
      invalid_arg
        (Printf.sprintf "Packed_vec.get: index %d outside [0..%d]" i (t.len - 1));
    let off = i * t.stride in
    let v = ref 0 in
    for k = t.stride - 1 downto 0 do
      v := (!v lsl 8) lor Char.code (Bytes.unsafe_get t.buf (off + k))
    done;
    !v

  let put t i x =
    let off = i * t.stride in
    let v = ref x in
    for k = 0 to t.stride - 1 do
      Bytes.unsafe_set t.buf (off + k) (Char.unsafe_chr (!v land 0xff));
      v := !v lsr 8
    done

  let check_range t x name =
    if x < 0 || x >= t.limit then
      invalid_arg
        (Printf.sprintf "Packed_vec.%s: value %d does not fit %d byte(s)" name x
           t.stride)

  let set t i x =
    if i < 0 || i >= t.len then
      invalid_arg
        (Printf.sprintf "Packed_vec.set: index %d outside [0..%d]" i (t.len - 1));
    check_range t x "set";
    put t i x

  let push t x =
    check_range t x "push";
    let need = (t.len + 1) * t.stride in
    if need > Bytes.length t.buf then begin
      let cap = max need (Bytes.length t.buf + (Bytes.length t.buf / 2)) in
      let buf = Bytes.create cap in
      Bytes.blit t.buf 0 buf 0 (t.len * t.stride);
      t.buf <- buf
    end;
    let i = t.len in
    t.len <- i + 1;
    put t i x;
    i

  let words t = 6 + (Bytes.length t.buf / (Sys.word_size / 8))

  let pv_magic = "PVEC0001"

  let serialize t =
    let used = t.len * t.stride in
    let b = Bytes.create (8 + 8 + 8 + 8 + used) in
    Bytes.blit_string pv_magic 0 b 0 8;
    Bytes.set_int64_le b 8 (Int64.of_int t.stride);
    Bytes.set_int64_le b 16 (Int64.of_int t.len);
    Bytes.blit t.buf 0 b 32 used;
    Bytes.set_int64_le b 24 (Int64.of_int (Checkpoint.checksum b 32 used));
    b

  let deserialize b =
    if Bytes.length b < 32 then
      corrupt "Packed_vec image truncated at header (%d bytes)"
        (Bytes.length b);
    if Bytes.sub_string b 0 8 <> pv_magic then
      corrupt "Packed_vec image has bad magic";
    let stride = Int64.to_int (Bytes.get_int64_le b 8) in
    let len = Int64.to_int (Bytes.get_int64_le b 16) in
    let crc = Int64.to_int (Bytes.get_int64_le b 24) in
    if stride < 1 || stride > 7 || len < 0 then
      corrupt "Packed_vec image has implausible header (stride %d, len %d)"
        stride len;
    let used = len * stride in
    if Bytes.length b <> 32 + used then
      corrupt "Packed_vec image length %d, expected %d (stride %d, len %d)"
        (Bytes.length b) (32 + used) stride len;
    if Checkpoint.checksum b 32 used <> crc then
      corrupt "Packed_vec buffer checksum mismatch";
    let t = create ~capacity:(max 1 len) ~stride () in
    Bytes.blit b 32 t.buf 0 used;
    t.len <- len;
    t
end
