lib/util/iset.mli: Fmt Sorted_set
