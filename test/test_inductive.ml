(* Tests of the inductive-invariant track: the abstract and concrete
   checkers (both obligations, CTI reporting and replay), the clause
   evaluator (QCheck differential against the naive re-implementation),
   and the prune-parity guarantee — a proved invariant used as a pruning
   oracle must leave every engine's explored space bit-identical, with
   the pruned counter at zero. *)

open Repro_util
module I = Modelcheck.Inductive
module Snap = Algorithms.Snapshot
module MC = Modelcheck.Explorer.Make (Modelcheck.Codecs.Snapshot)
module MCW = Modelcheck.Explorer.Make (Modelcheck.Codecs.Write_scan)
module MCD = Modelcheck.Explorer.Make (Modelcheck.Codecs.Double_collect)
module Sys2 = Anonmem.System.Make (Snap)

(* --- the abstract checker ------------------------------------------------- *)

let check_proved_at n =
  match I.check_abstract ~n I.proved with
  | I.Proved r ->
      Alcotest.(check bool) "init obligation" true r.I.r_init_ok;
      Alcotest.(check int) "no CTIs" 0 r.I.r_cti_total;
      Alcotest.(check bool) "non-trivial universe" true (r.I.r_universe > 0);
      Alcotest.(check bool)
        "transitions were actually checked" true
        (r.I.r_transitions > 0);
      Alcotest.(check bool)
        "universe below the syntactic count" true
        (r.I.r_universe < r.I.r_syntactic)
  | I.Refuted _ -> Alcotest.failf "proved clauses refuted at n=%d" n
  | I.Gave_up _ -> Alcotest.failf "abstract check gave up at n=%d" n

let test_abstract_proved_n1 () = check_proved_at 1
let test_abstract_proved_n2 () = check_proved_at 2
let test_abstract_proved_n3 () = check_proved_at 3

let test_abstract_candidates_refuted () =
  (* The comparability strengthenings are true invariants but not
     inductive: the induction step must fail (never the init check), and
     every CTI must violate a strengthening clause — the proved core is
     inductive, so no step out of the admitted universe can break it. *)
  match I.check_abstract ~n:2 I.candidates with
  | I.Refuted r ->
      Alcotest.(check bool) "init still passes" true r.I.r_init_ok;
      Alcotest.(check bool) "CTIs recorded" true (r.I.r_cti_total > 0);
      Alcotest.(check bool) "CTI list non-empty" true (r.I.r_ctis <> []);
      List.iter
        (fun cti ->
          Alcotest.(check bool)
            "CTI violates a strengthening, not the proved core" false
            (List.mem cti.I.a_clause I.proved);
          (* shrinking keeps the violation and is deterministic *)
          let s = I.shrink_acti ~n:2 I.candidates cti in
          Alcotest.(check bool)
            "shrunk CTI still violates a strengthening" false
            (List.mem s.I.a_clause I.proved);
          let s' = I.shrink_acti ~n:2 I.candidates cti in
          Alcotest.(check string) "shrink is deterministic"
            (Fmt.str "%a" I.pp_acti s)
            (Fmt.str "%a" I.pp_acti s'))
        r.I.r_ctis
  | I.Proved _ -> Alcotest.fail "candidates must not be inductive at n=2"
  | I.Gave_up _ -> Alcotest.fail "abstract check gave up"

let test_abstract_rejects_bad_n () =
  Alcotest.check_raises "n=0 rejected"
    (Invalid_argument "Inductive.check_abstract: n < 1") (fun () ->
      ignore (I.check_abstract ~n:0 I.proved))

let test_parse_clauses () =
  (match I.parse_clauses "proved" with
  | Ok cs -> Alcotest.(check bool) "preset proved" true (cs = I.proved)
  | Error e -> Alcotest.fail e);
  (match I.parse_clauses "candidates" with
  | Ok cs -> Alcotest.(check bool) "preset candidates" true (cs = I.candidates)
  | Error e -> Alcotest.fail e);
  (* every clause round-trips through its printed name *)
  List.iter
    (fun c ->
      match I.clause_of_name (I.clause_name c) with
      | Some c' -> Alcotest.(check bool) "name roundtrip" true (c = c')
      | None -> Alcotest.failf "clause name %s does not parse" (I.clause_name c))
    I.candidates;
  match I.parse_clauses "no-such-clause" with
  | Ok _ -> Alcotest.fail "bogus clause name accepted"
  | Error _ -> ()

(* --- the concrete checker ------------------------------------------------- *)

let test_concrete_proved_n2 () =
  match I.check_concrete ~n:2 I.proved with
  | I.C_proved cr ->
      Alcotest.(check int) "no reachable violations" 0
        cr.I.k_reachable_violations;
      Alcotest.(check int) "no CTIs" 0 cr.I.k_report.I.r_cti_total;
      Alcotest.(check bool) "init obligation" true cr.I.k_report.I.r_init_ok;
      Alcotest.(check bool) "several wirings swept" true (cr.I.k_wirings > 1)
  | I.C_refuted _ -> Alcotest.fail "proved clauses refuted concretely at n=2"
  | I.C_gave_up _ -> Alcotest.fail "concrete check gave up"

let test_concrete_rejects_large_n () =
  Alcotest.check_raises "n=3 rejected"
    (Invalid_argument
       "Inductive.check_concrete: the full concrete universe is only \
        enumerable at n <= 2; use check_abstract beyond that") (fun () ->
      ignore (I.check_concrete ~n:3 I.proved))

(* A deliberately-too-strong conjunction: [proved] plus global register
   comparability.  It holds initially (all registers empty) but is false
   on reachable states — after p0 writes {1} and p1 writes {2} the two
   register views are incomparable — so the checker must reject it at
   the induction step, and the planted violation must never be pruned
   silently: it surfaces as CTIs / reachable violations, and (below,
   in the parity tests) as a non-zero pruned counter. *)
let too_strong = I.proved @ [ I.Regs_comparable_above 0 ]

(* Search the reachable space of one wiring for a genuine CTI: a
   reachable state satisfying [clauses] with a one-step successor that
   violates them.  Returns the ccti with its replay trace. *)
let find_reachable_ccti ~cfg ~wiring ~inputs clauses =
  let sp =
    match MC.explore ~cfg ~wiring ~inputs () with
    | MC.Explored sp -> sp
    | _ -> Alcotest.fail "exploration did not finish"
  in
  let found = ref None in
  let id = ref 0 in
  while !found = None && !id < MC.state_count sp do
    let st = MC.state_of sp !id in
    (if
       not
         (I.violates_state ~cfg ~inputs clauses ~locals:st.MC.locals
            ~registers:st.MC.registers)
     then
       let try_pid p =
         if !found = None then
           let st' = MC.successor cfg wiring st p in
           match
             I.state_violation ~cfg ~inputs clauses ~locals:st'.MC.locals
               ~registers:st'.MC.registers
           with
           | None -> ()
           | Some c ->
               found :=
                 Some
                   {
                     I.c_clause = c;
                     c_inputs = inputs;
                     c_wiring = wiring;
                     c_pid = p;
                     c_pre = MC.encode_state cfg st;
                     c_post = MC.encode_state cfg st';
                     c_reachable = true;
                     c_trace = List.map fst (MC.trace_to sp !id);
                   }
       in
       List.iter try_pid (MC.enabled cfg st));
    incr id
  done;
  match !found with
  | Some cti -> cti
  | None -> Alcotest.fail "no reachable CTI found for the too-strong clauses"

let test_concrete_too_strong_refuted () =
  (match I.check_concrete ~max_ctis:50 ~n:2 too_strong with
  | I.C_refuted cr ->
      Alcotest.(check bool)
        "rejected at the induction step, not at init" true
        cr.I.k_report.I.r_init_ok;
      Alcotest.(check bool) "CTIs reported" true
        (cr.I.k_report.I.r_cti_total > 0)
  | I.C_proved _ -> Alcotest.fail "too-strong clauses proved"
  | I.C_gave_up _ -> Alcotest.fail "concrete check gave up");
  (* The rejection comes with a replayable CTI: a reachable state where
     the induction step genuinely breaks the planted clause. *)
  let cfg = Snap.standard ~n:2 in
  let wiring = Anonmem.Wiring.identity ~n:2 ~m:2 in
  let inputs = [| 1; 2 |] in
  let cti = find_reachable_ccti ~cfg ~wiring ~inputs too_strong in
  Alcotest.(check bool) "planted clause violated" true
    (cti.I.c_clause = I.Regs_comparable_above 0);
  Alcotest.(check bool) "pre-state needs at least one step" true
    (cti.I.c_trace <> []);
  Alcotest.(check bool) "CTI replays through Witness" true
    (I.replay_ccti ~n:2 cti);
  (* shrinking keeps the post-state violating and the CTI replayable *)
  let s = I.shrink_ccti ~n:2 too_strong cti in
  let post = MC.decode_state cfg s.I.c_post in
  Alcotest.(check bool) "shrunk post still violates" true
    (I.violates_state ~cfg ~inputs too_strong ~locals:post.MC.locals
       ~registers:post.MC.registers);
  (* a corrupted trace must not replay *)
  let broken = { cti with I.c_trace = cti.I.c_trace @ [ 0; 0; 0; 0 ] } in
  Alcotest.(check bool) "corrupted trace rejected" false
    (I.replay_ccti ~n:2 broken);
  Alcotest.(check bool) "unreachable CTIs never replay" false
    (I.replay_ccti ~n:2 { cti with I.c_reachable = false })

(* --- universe accounting -------------------------------------------------- *)

let test_universe_counts () =
  let c = I.universe_counts ~n:4 I.proved in
  Alcotest.(check bool) "admitted <= syntactic locals" true
    (c.I.u_adm_locals <= c.I.u_syn_locals);
  Alcotest.(check bool) "admitted <= syntactic values" true
    (c.I.u_adm_values <= c.I.u_syn_values);
  Alcotest.(check bool) "admitted <= syntactic states" true
    (c.I.u_adm_states <= c.I.u_syn_states);
  Alcotest.(check bool) "counts positive" true (c.I.u_adm_states > 0);
  Alcotest.(check bool) "proved counts are exact" true c.I.u_exact;
  (* the n=2 closed form must agree with the enumerating checker *)
  match (I.check_abstract ~n:2 I.proved, I.universe_counts ~n:2 I.proved) with
  | I.Proved r, c2 ->
      Alcotest.(check int) "syntactic count agrees" r.I.r_syntactic
        c2.I.u_syn_states
  | _ -> Alcotest.fail "abstract check at n=2 must prove"

let test_input_classes () =
  Alcotest.(check int) "n=1" 1 (List.length (I.input_classes 1));
  Alcotest.(check int) "n=2" 2 (List.length (I.input_classes 2));
  Alcotest.(check int) "n=3" 3 (List.length (I.input_classes 3));
  Alcotest.(check int) "n=4: partitions of 4" 5
    (List.length (I.input_classes 4))

(* --- prune parity: BFS + DFS on the snapshot ------------------------------ *)

let snapshot_oracle cfg inputs (st : MC.state) =
  I.violates_state ~cfg ~inputs I.proved ~locals:st.MC.locals
    ~registers:st.MC.registers

let explore_space ?prune ?stop_expansion ~cfg ~wiring ~inputs () =
  match MC.explore ?prune ?stop_expansion ~cfg ~wiring ~inputs () with
  | MC.Explored sp -> sp
  | _ -> Alcotest.fail "exploration did not finish"

let check_space_parity name base pruned =
  Alcotest.(check int) (name ^ ": states") (MC.state_count base)
    (MC.state_count pruned);
  Alcotest.(check int)
    (name ^ ": transitions")
    (MC.transition_count base)
    (MC.transition_count pruned);
  Alcotest.(check int)
    (name ^ ": terminals")
    (List.length base.MC.terminal)
    (List.length pruned.MC.terminal);
  Alcotest.(check int) (name ^ ": nothing pruned") 0 pruned.MC.pruned

let test_prune_parity_snapshot_n2 () =
  let cfg = Snap.standard ~n:2 in
  let wirings = Anonmem.Wiring.enumerate ~n:2 ~m:2 ~fix_first:true in
  List.iter
    (fun inputs ->
      List.iteri
        (fun i wiring ->
          let name = Fmt.str "wiring %d inputs %a" i Fmt.(Dump.array int) inputs in
          let base = explore_space ~cfg ~wiring ~inputs () in
          let pruned =
            explore_space ~prune:(snapshot_oracle cfg inputs) ~cfg ~wiring
              ~inputs ()
          in
          check_space_parity name base pruned)
        wirings)
    [ [| 1; 2 |]; [| 1; 1 |] ]

let test_prune_parity_snapshot_dfs () =
  let cfg = Snap.standard ~n:2 in
  let inputs = [| 1; 2 |] in
  let wirings = Anonmem.Wiring.enumerate ~n:2 ~m:2 ~fix_first:true in
  List.iter
    (fun wiring ->
      let run prune =
        match MC.check_exhaustive ?prune ~cfg ~wiring ~inputs () with
        | MC.Dfs_ok s -> s
        | _ -> Alcotest.fail "snapshot DFS must terminate cleanly"
      in
      let base = run None and pruned = run (Some (snapshot_oracle cfg inputs)) in
      Alcotest.(check int) "dfs states" base.MC.dfs_states pruned.MC.dfs_states;
      Alcotest.(check int) "dfs transitions" base.MC.dfs_transitions
        pruned.MC.dfs_transitions;
      Alcotest.(check int) "dfs terminals" base.MC.dfs_terminals
        pruned.MC.dfs_terminals;
      Alcotest.(check int) "dfs nothing pruned" 0 pruned.MC.dfs_pruned)
    wirings

let test_prune_parity_snapshot_n3 () =
  (* Genuine n=3 instance, m=2 registers, depth-bounded with the same
     deterministic stop-expansion on both sides; the invariant is proved
     at n=3 for every register count, so parity must still be exact. *)
  let cfg = Snap.cfg ~n:3 ~m:2 in
  let wiring = Anonmem.Wiring.identity ~n:3 ~m:2 in
  let inputs = [| 1; 2; 2 |] in
  let stop (st : MC.state) =
    Array.exists (fun l -> Snap.level_of_local l >= 2) st.MC.locals
  in
  let base = explore_space ~stop_expansion:stop ~cfg ~wiring ~inputs () in
  let pruned =
    explore_space ~stop_expansion:stop ~prune:(snapshot_oracle cfg inputs) ~cfg
      ~wiring ~inputs ()
  in
  Alcotest.(check bool) "non-trivial space" true (MC.state_count base > 100);
  check_space_parity "snapshot n=3 m=2" base pruned

let test_prune_parity_planted_bug () =
  (* A failing run invariant: pruning with the proved clauses must report
     the identical violation — same state count at failure, same trace. *)
  let cfg = Snap.standard ~n:2 in
  let wiring = Anonmem.Wiring.identity ~n:2 ~m:2 in
  let inputs = [| 1; 2 |] in
  let invariant (st : MC.state) =
    if Array.exists (fun l -> Snap.level_of_local l >= 2) st.MC.locals then
      Error "planted: a processor reached level 2"
    else Ok ()
  in
  let run prune =
    match MC.explore ~invariant ?prune ~cfg ~wiring ~inputs () with
    | MC.Invariant_failed (_, v) -> v
    | _ -> Alcotest.fail "planted bug not found"
  in
  let base = run None and pruned = run (Some (snapshot_oracle cfg inputs)) in
  Alcotest.(check string) "same message" base.MC.message pruned.MC.message;
  Alcotest.(check (list int)) "same witness trace"
    (List.map fst base.MC.trace)
    (List.map fst pruned.MC.trace)

let test_unsound_oracle_is_visible () =
  (* Pruning with the (false) too-strong conjunction must never be
     silent: the pruned counter exposes every dropped successor and the
     space visibly shrinks. *)
  let cfg = Snap.standard ~n:2 in
  let wiring = Anonmem.Wiring.identity ~n:2 ~m:2 in
  let inputs = [| 1; 2 |] in
  let bad (st : MC.state) =
    I.violates_state ~cfg ~inputs too_strong ~locals:st.MC.locals
      ~registers:st.MC.registers
  in
  let base = explore_space ~cfg ~wiring ~inputs () in
  let pruned = explore_space ~prune:bad ~cfg ~wiring ~inputs () in
  Alcotest.(check bool) "states were lost" true
    (MC.state_count pruned < MC.state_count base);
  Alcotest.(check bool) "and the counter says so" true (pruned.MC.pruned > 0)

(* --- prune parity: write-scan and double-collect -------------------------- *)

(* Views only ever accumulate participating inputs, so "every local and
   register view is contained in the participant set" is an invariant of
   both protocols; parity checks it never fires on reachable states. *)

let test_prune_parity_write_scan () =
  let cfg = Algorithms.Write_scan.cfg ~n:2 ~m:2 in
  let wiring = Anonmem.Wiring.identity ~n:2 ~m:2 in
  let inputs = [| 1; 2 |] in
  let participants = Iset.of_list [ 1; 2 ] in
  let oracle (st : MCW.state) =
    Array.exists
      (fun (l : Algorithms.Write_scan.local) ->
        not (Iset.subset l.Algorithms.Write_scan.view participants))
      st.MCW.locals
    || Array.exists (fun v -> not (Iset.subset v participants)) st.MCW.registers
  in
  let run prune =
    match MCW.explore ?prune ~cfg ~wiring ~inputs () with
    | MCW.Explored sp -> sp
    | _ -> Alcotest.fail "write-scan exploration did not finish"
  in
  let base = run None and pruned = run (Some oracle) in
  Alcotest.(check int) "states" (MCW.state_count base) (MCW.state_count pruned);
  Alcotest.(check int) "transitions" (MCW.transition_count base)
    (MCW.transition_count pruned);
  Alcotest.(check int) "nothing pruned" 0 pruned.MCW.pruned;
  (* the loop never terminates: no terminal states on either side *)
  Alcotest.(check int) "no terminals" 0 (List.length base.MCW.terminal)

let test_prune_parity_double_collect () =
  let cfg = Algorithms.Double_collect.cfg ~n:2 ~m:2 in
  let wiring = Anonmem.Wiring.identity ~n:2 ~m:2 in
  let inputs = [| 1; 2 |] in
  let participants = Iset.of_list [ 1; 2 ] in
  let oracle (st : MCD.state) =
    Array.exists
      (fun l ->
        not (Iset.subset (Algorithms.Double_collect.view_of_local l) participants))
      st.MCD.locals
    || Array.exists (fun v -> not (Iset.subset v participants)) st.MCD.registers
  in
  let run prune =
    match MCD.explore ?prune ~cfg ~wiring ~inputs () with
    | MCD.Explored sp -> sp
    | _ -> Alcotest.fail "double-collect exploration did not finish"
  in
  let base = run None and pruned = run (Some oracle) in
  Alcotest.(check int) "states" (MCD.state_count base) (MCD.state_count pruned);
  Alcotest.(check int) "transitions" (MCD.transition_count base)
    (MCD.transition_count pruned);
  Alcotest.(check int) "terminals" (List.length base.MCD.terminal)
    (List.length pruned.MCD.terminal);
  Alcotest.(check int) "nothing pruned" 0 pruned.MCD.pruned

(* --- prune parity: fault plans and the packed engine ---------------------- *)

let test_prune_parity_faults () =
  let run prune_with_invariant =
    match Core.verify_snapshot_model_crashes ~n:2 ~prune_with_invariant () with
    | Ok s -> s
    | Error e -> Alcotest.failf "fault sweep failed: %s" e
  in
  let module FS = Core.Snapshot_fault_mc in
  let base = run false and pruned = run true in
  Alcotest.(check int) "wirings" base.FS.wirings_checked
    pruned.FS.wirings_checked;
  Alcotest.(check int) "states" base.FS.total_states pruned.FS.total_states;
  Alcotest.(check int) "transitions" base.FS.total_transitions
    pruned.FS.total_transitions;
  Alcotest.(check int) "crash branches" base.FS.total_crash_branches
    pruned.FS.total_crash_branches;
  Alcotest.(check int) "nothing pruned" 0 pruned.FS.total_pruned

let test_prune_parity_core_sweep () =
  let run prune_with_invariant =
    match Core.verify_snapshot_model ~n:2 ~prune_with_invariant () with
    | Ok s -> s
    | Error e -> Alcotest.failf "snapshot sweep failed: %s" e
  in
  let module S = Modelcheck.Explorer in
  let base = run false and pruned = run true in
  Alcotest.(check int) "wirings" base.S.wirings_checked pruned.S.wirings_checked;
  Alcotest.(check int) "states" base.S.total_states pruned.S.total_states;
  Alcotest.(check int) "transitions" base.S.total_transitions
    pruned.S.total_transitions;
  Alcotest.(check int) "terminals" base.S.terminal_states
    pruned.S.terminal_states;
  Alcotest.(check int) "nothing pruned" 0 pruned.S.total_pruned;
  Alcotest.(check bool) "wait-freedom verdict preserved" base.S.all_wait_free
    pruned.S.all_wait_free

let test_prune_parity_packed () =
  let module Packed = Modelcheck.Rt_mutex_packed in
  let cfg = Algorithms.Rt_mutex.cfg ~n:2 ~m:3 in
  let wiring = Anonmem.Wiring.identity ~n:2 ~m:3 in
  let inputs = [| 1; 2 |] in
  let reference =
    match Packed.check_wiring ~cfg ~wiring ~inputs () with
    | Packed.Clean { states; pruned } ->
        Alcotest.(check int) "no pruning by default" 0 pruned;
        states
    | _ -> Alcotest.fail "packed (2,3) must be clean"
  in
  (match
     Packed.check_wiring ~prune:(fun _ -> false) ~cfg ~wiring ~inputs ()
   with
  | Packed.Clean { states; pruned } ->
      Alcotest.(check int) "never-firing oracle: state parity" reference states;
      Alcotest.(check int) "never-firing oracle: counter" 0 pruned
  | _ -> Alcotest.fail "packed (2,3) with inert oracle must stay clean");
  (* an oracle that drops everything is loud, not silent *)
  match Packed.check_wiring ~prune:(fun _ -> true) ~cfg ~wiring ~inputs () with
  | Packed.Clean { states; pruned } ->
      Alcotest.(check bool) "space collapsed" true (states < reference);
      Alcotest.(check bool) "counter exposes the drops" true (pruned > 0)
  | _ -> Alcotest.fail "prune-everything sweep still terminates"

(* --- QCheck: the clause evaluator ----------------------------------------- *)

(* Sample genuinely reachable configurations by running the simulator
   under a random wiring and scheduler for a random number of steps. *)
let sample_config (n, dup, seed, steps) =
  let cfg = Snap.standard ~n in
  let inputs = Array.init n (fun i -> if dup then 1 + (i / 2) else i + 1) in
  let rng = Rng.create ~seed in
  let wiring = Anonmem.Wiring.random rng ~n ~m:n in
  let st = Sys2.init ~cfg ~wiring ~inputs in
  let _ = Sys2.run ~max_steps:steps ~sched:(Anonmem.Scheduler.random rng) st in
  (cfg, inputs, st.Sys2.locals, st.Sys2.registers)

let config_arb =
  QCheck.make
    ~print:(fun (n, dup, seed, steps) ->
      Fmt.str "n=%d dup=%b seed=%d steps=%d" n dup seed steps)
    QCheck.Gen.(
      quad (int_range 1 3) bool (int_bound 100_000) (int_bound 60))

(* Clause sets exercising every constructor, including thresholds off the
   levels [candidates] uses. *)
let all_clause_sets =
  [
    I.proved;
    I.candidates;
    [ I.Reg_nonempty_above 0; I.Reg_nonempty_above 2 ];
    [
      I.Procs_comparable_above 0;
      I.Regs_comparable_above 0;
      I.Reg_proc_comparable_above (0, 0);
      I.Reg_proc_comparable_above (2, 1);
    ];
  ]

let prop_evaluator_agrees_with_naive =
  QCheck.Test.make ~name:"state_violation agrees with the naive evaluator"
    config_arb (fun input ->
      let cfg, inputs, locals, registers = sample_config input in
      List.for_all
        (fun clauses ->
          let fast = I.state_violation ~cfg ~inputs clauses ~locals ~registers in
          let slow =
            I.naive_state_violation ~cfg ~inputs clauses ~locals ~registers
          in
          (* purity: a second evaluation is identical *)
          fast = slow
          && fast = I.state_violation ~cfg ~inputs clauses ~locals ~registers)
        all_clause_sets)

let prop_reachable_satisfies_proved =
  QCheck.Test.make ~name:"reachable configurations satisfy the proved clauses"
    config_arb (fun input ->
      let cfg, inputs, locals, registers = sample_config input in
      not (I.violates_state ~cfg ~inputs I.proved ~locals ~registers))

let prop_thresholds_monotone =
  (* Raising a clause's level threshold weakens its premise, so a
     violation at threshold k+1 must imply one at threshold k. *)
  QCheck.Test.make ~name:"threshold clauses are monotone in their level"
    (QCheck.pair config_arb (QCheck.make QCheck.Gen.(int_bound 2)))
    (fun (input, k) ->
      let cfg, inputs, locals, registers = sample_config input in
      let viol cs = I.violates_state ~cfg ~inputs cs ~locals ~registers in
      let families =
        [
          (fun k -> I.Reg_nonempty_above k);
          (fun k -> I.Procs_comparable_above k);
          (fun k -> I.Regs_comparable_above k);
          (fun k -> I.Reg_proc_comparable_above (k, k));
        ]
      in
      List.for_all
        (fun f -> (not (viol [ f (k + 1) ])) || viol [ f k ])
        families)

(* --- suite ---------------------------------------------------------------- *)

let () =
  Alcotest.run "inductive"
    [
      ( "abstract",
        [
          Alcotest.test_case "proved passes at n=1" `Quick
            test_abstract_proved_n1;
          Alcotest.test_case "proved passes at n=2" `Quick
            test_abstract_proved_n2;
          Alcotest.test_case "proved passes at n=3" `Slow
            test_abstract_proved_n3;
          Alcotest.test_case "candidates refuted with CTIs" `Quick
            test_abstract_candidates_refuted;
          Alcotest.test_case "rejects n=0" `Quick test_abstract_rejects_bad_n;
          Alcotest.test_case "clause parsing" `Quick test_parse_clauses;
        ] );
      ( "concrete",
        [
          Alcotest.test_case "proved passes at n=2" `Slow
            test_concrete_proved_n2;
          Alcotest.test_case "too-strong invariant rejected with replayable CTI"
            `Slow test_concrete_too_strong_refuted;
          Alcotest.test_case "rejects n=3" `Quick test_concrete_rejects_large_n;
        ] );
      ( "universe",
        [
          Alcotest.test_case "closed-form counts" `Quick test_universe_counts;
          Alcotest.test_case "input classes" `Quick test_input_classes;
        ] );
      ( "prune-parity",
        [
          Alcotest.test_case "snapshot n=2, all wirings, BFS" `Quick
            test_prune_parity_snapshot_n2;
          Alcotest.test_case "snapshot n=2, all wirings, DFS" `Quick
            test_prune_parity_snapshot_dfs;
          Alcotest.test_case "snapshot n=3 m=2, bounded" `Slow
            test_prune_parity_snapshot_n3;
          Alcotest.test_case "planted bug: identical witness trace" `Quick
            test_prune_parity_planted_bug;
          Alcotest.test_case "unsound oracle is never silent" `Quick
            test_unsound_oracle_is_visible;
          Alcotest.test_case "write-scan" `Quick test_prune_parity_write_scan;
          Alcotest.test_case "double-collect" `Quick
            test_prune_parity_double_collect;
          Alcotest.test_case "fault plans" `Quick test_prune_parity_faults;
          Alcotest.test_case "full core sweep" `Quick
            test_prune_parity_core_sweep;
          Alcotest.test_case "packed engine" `Quick test_prune_parity_packed;
        ] );
      ( "evaluator-qcheck",
        [
          QCheck_alcotest.to_alcotest prop_evaluator_agrees_with_naive;
          QCheck_alcotest.to_alcotest prop_reachable_satisfies_proved;
          QCheck_alcotest.to_alcotest prop_thresholds_monotone;
        ] );
    ]
