(** The named-memory substrate exposed by mutex-based desanonymization
    (Godard–Imbs–Raynal–Taubenfeld, arXiv:1903.12204).

    Desanonymization assigns each processor a distinct name in [1..n]; the
    substrate this module implements is the {e named single-writer memory}
    that classic algorithms expect on top: one virtual cell per name, where
    cell k is written only by the processor that acquired name k.

    Rather than dedicating physical registers (which would shrink the
    register pool available to the mutex and shift its coprimality
    threshold), the cells travel {e inside} every register value: a ledger —
    a sorted association of names to announced group identifiers — is
    carried by every write and merged into the reader's knowledge on every
    read.  Ledger entries are created only inside the naming protocol's
    critical section and flooded to all m registers before the lock is
    released, so knowledge only grows and each cell has a single writer.
    Ledger knowledge at halt time therefore behaves exactly like the output
    of the library's {!Algorithms.Named_snapshot} double collect: the views
    of successive critical-section holders form a containment chain, which
    is what lets the snapshot task oracle judge them (see
    {!Tasks.Naming_task}). *)

type cell = { name : int; owner : int }
(** Virtual cell [name], written once by the processor whose identity is
    [owner] (identities are the protocol inputs, i.e. group identifiers to
    the task layer). *)

type t = cell list
(** A ledger: cells sorted by strictly increasing [name].  The empty
    ledger is the initial content of every register. *)

let empty : t = []

let rec add ledger ~name ~owner : t =
  match ledger with
  | [] -> [ { name; owner } ]
  | c :: rest ->
      if c.name < name then c :: add rest ~name ~owner
      else if c.name > name then { name; owner } :: ledger
      else (* duplicate name: keep the smaller owner, deterministically *)
        { c with owner = min c.owner owner } :: rest

(** Pointwise union of two ledgers — the read side of the substrate. *)
let merge (a : t) (b : t) : t =
  List.fold_left (fun acc c -> add acc ~name:c.name ~owner:c.owner) a b

(** The smallest unused name: ledgers are flooded before the lock is
    released, so inside the critical section this is exactly "one past the
    number of processors named so far". *)
let next_name (ledger : t) = 1 + List.fold_left (fun m c -> max m c.name) 0 ledger

let names (ledger : t) = List.map (fun c -> c.name) ledger
let owners (ledger : t) = List.map (fun c -> c.owner) ledger

(** Whether [a]'s cells are a subset of [b]'s — containment of views, the
    snapshot-style guarantee the chain of critical sections provides. *)
let subset (a : t) (b : t) =
  List.for_all (fun c -> List.exists (fun c' -> c = c') b) a

let pp ppf (ledger : t) =
  Fmt.pf ppf "{%a}"
    Fmt.(list ~sep:(any " ") (fun ppf c -> Fmt.pf ppf "%d:%d" c.name c.owner))
    ledger
