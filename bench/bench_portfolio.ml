(* Portfolio verification benchmark: wall-clock and visited states for
   each cell class of the feasibility map — a clean cell (all wirings
   swept, liveness pass included), a deadlocked cell (fair-SCC hit) and
   a safety-violating cell (early exit), for each of the three
   portfolio protocols — full wiring sweep vs symmetry-reduced vs the
   processor-relabelling wiring-class quotient.  Results go to
   BENCH_portfolio.json and a table on stdout; the EXPERIMENTS.md X9
   notes quote this output.

   The interesting column is the clean-cell wiring-class factor: clean
   cells dominate the map's cost (they must sweep every wiring), and
   with all-distinct identities the state-level symmetry group is
   trivial (reduction is a measured no-op) — the up-to-n! wiring-class
   cut is what makes the full n=3 map tractable. *)


type row = {
  task : string;
  n : int;
  m : int;
  mode : string;
  verdict : string;
  states : int;
  wall_s : float;
  ckpt_overhead_pct : float option;
      (** packed-ckpt rows only: wall-clock cost of periodic
          checkpointing relative to the matching packed row *)
}

let rows : row list ref = ref []

(* Best-of-3 wall clock: the cheap cells finish in milliseconds, where a
   single sample is mostly scheduler noise — and the checkpoint-overhead
   column is a ratio of two such samples. *)
let time f =
  let once () =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let r, w1 = once () in
  let _, w2 = once () in
  let _, w3 = once () in
  (r, List.fold_left min w1 [ w2; w3 ])

let states_of = function
  | Core.Verified { states; _ } -> states
  | _ -> 0

let verdict_name = function
  | Core.Verified _ -> "verified"
  | Core.Safety_violation _ -> "safety-violation"
  | Core.Liveness_violation _ -> "deadlock"
  | Core.Resource_limit _ -> "limit"
  | Core.Exhausted _ -> "exhausted"

(* Wall-clock of the matching plain-packed row, for the checkpoint
   overhead column. *)
let packed_wall ~task ~n ~m =
  List.find_map
    (fun r ->
      if r.task = task && r.n = n && r.m = m && r.mode = "packed" then
        Some r.wall_s
      else None)
    !rows

let cell task ~n ~m ~mode verify =
  let reduction = mode = "reduced" in
  let wiring_classes = mode = "classes" || String.length mode >= 6 && String.sub mode 0 6 = "packed" in
  let v, wall_s = time (fun () -> verify ~reduction ~wiring_classes) in
  let ckpt_overhead_pct =
    if mode = "packed-ckpt" then
      match packed_wall ~task ~n ~m with
      | Some base when base > 0. -> Some (100. *. (wall_s -. base) /. base)
      | _ -> None
    else None
  in
  let row =
    {
      task;
      n;
      m;
      mode;
      verdict = verdict_name v;
      states = states_of v;
      wall_s;
      ckpt_overhead_pct;
    }
  in
  rows := row :: !rows;
  Fmt.pr "%-7s n=%d m=%d %-11s %-16s %8d states %8.3fs%a@." task n m mode
    row.verdict row.states wall_s
    Fmt.(option (fun ppf p -> pf ppf "  ckpt overhead %+.1f%%" p))
    ckpt_overhead_pct

(* Periodic checkpointing for the packed-ckpt rows, at the same cadence
   the feasibility sweep uses in production (Core.feasibility_check):
   each save is a full table serialize + fsync + rename, so the cadence
   is what keeps the overhead in budget — every-10k costs >200% on the
   (2,5) clean cell, every-100k stays within a few percent. *)
let ckpt_every = 100_000

let with_ckpt f =
  let path = Filename.temp_file "bench_portfolio" ".ckpt" in
  Sys.remove path;
  let r = f { Modelcheck.Checkpoint.path; every_states = ckpt_every } in
  if Sys.file_exists path then Sys.remove path;
  r

let () =
  let quick = Array.exists (( = ) "--quick") Sys.argv in
  List.iter
    (fun mode ->
      (* "packed" = wiring classes + the single-word mutex engine; it is
         mutex-specific, so the other protocols' cells only run in the
         generic modes.  "packed-ckpt" is the same sweep with periodic
         checkpointing on — its only purpose is the overhead column, so
         it runs the mutex cells alone. *)
      let packed = mode = "packed" || mode = "packed-ckpt" in
      let mutex ~n ~m ~reduction ~wiring_classes =
        if mode = "packed-ckpt" then
          with_ckpt (fun ckpt ->
              Core.verify_mutex ~n ~m ~reduction ~wiring_classes ~packed ~ckpt
                ())
        else Core.verify_mutex ~n ~m ~reduction ~wiring_classes ~packed ()
      in
      (* Clean cells: the expensive class (every wiring swept). *)
      cell "mutex" ~n:2 ~m:3 ~mode (mutex ~n:2 ~m:3);
      if not packed then begin
        cell "naming" ~n:2 ~m:3 ~mode (fun ~reduction ~wiring_classes ->
            Core.verify_naming ~n:2 ~m:3 ~reduction ~wiring_classes ());
        cell "leader" ~n:2 ~m:2 ~mode (fun ~reduction ~wiring_classes ->
            Core.verify_leader ~n:2 ~m:2 ~reduction ~wiring_classes ())
      end;
      if not quick then begin
        cell "mutex" ~n:2 ~m:5 ~mode (mutex ~n:2 ~m:5);
        if not packed then
          cell "naming" ~n:2 ~m:5 ~mode (fun ~reduction ~wiring_classes ->
              Core.verify_naming ~n:2 ~m:5 ~reduction ~wiring_classes ())
      end;
      (* Violating cells: early exit, cheap by construction. *)
      cell "mutex" ~n:2 ~m:2 ~mode (mutex ~n:2 ~m:2);
      cell "mutex" ~n:3 ~m:2 ~mode (mutex ~n:3 ~m:2);
      if not packed then
        cell "leader" ~n:2 ~m:1 ~mode (fun ~reduction ~wiring_classes ->
            Core.verify_leader ~n:2 ~m:1 ~reduction ~wiring_classes ()))
    [ "full"; "reduced"; "classes"; "packed"; "packed-ckpt" ];
  (* JSON dump, newline-separated objects like the other benchmarks. *)
  let oc = open_out "BENCH_portfolio.json" in
  output_string oc "{\n";
  Printf.fprintf oc "  \"host_domains\": %d,\n"
    (Domain.recommended_domain_count ());
  output_string oc "  \"portfolio\": [\n";
  List.iteri
    (fun i r ->
      if i > 0 then output_string oc ",\n";
      Printf.fprintf oc
        "    {\"task\": \"%s\", \"n\": %d, \"m\": %d, \"mode\": \"%s\", \
         \"verdict\": \"%s\", \"states\": %d, \"wall_s\": %.6f%s}"
        r.task r.n r.m r.mode r.verdict r.states r.wall_s
        (match r.ckpt_overhead_pct with
        | None -> ""
        | Some p -> Printf.sprintf ", \"ckpt_overhead_pct\": %.2f" p))
    (List.rev !rows);
  output_string oc "\n  ]\n}\n";
  close_out oc;
  Fmt.pr "wrote BENCH_portfolio.json@."
