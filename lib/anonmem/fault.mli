(** Serializable fault plans — the single representation of injected
    faults shared by the simulator ({!System.Make.run}), the crash-prone
    scheduler ({!Scheduler.crash_faults}), the multicore runtime, the
    fuzzer and the model checker.

    A plan is a finite list of timed fault events.  Times are 0-based and
    layer-interpreted: the simulator reads [at] as the global step index,
    the multicore runtime as the processor's own operation count (there is
    no global clock across domains), and the model checker abstracts times
    away entirely (it explores every placement of up to [k] crashes, a
    superset of any timed plan).  Processor and register indices are
    0-based in the API and 1-based in the concrete syntax, like everywhere
    else in the repository. *)

type event =
  | Crash_stop of { p : int; at : int }
      (** processor [p] takes no step at or after time [at] *)
  | Crash_recover of { p : int; at : int }
      (** at time [at], [p]'s local state is reset to [P.init] on its
          original input — the anonymity-honest reading of recovery: the
          restarted processor cannot even know it is the same one *)
  | Omit_write of { p : int; at : int }
      (** armed at [at]: [p]'s next write is dropped (the register keeps
          its old value) while [p]'s local state advances as if it wrote *)
  | Stale_read of { p : int; at : int }
      (** armed at [at]: [p]'s next read returns the register's {e
          previous} value — the regular-register (non-atomic) degradation *)
  | Stuck_register of { reg : int; at : int }
      (** physical register [reg] ignores every write at or after [at] *)

type plan = event list

val normalize : plan -> plan
(** Sort by (time, kind, index) and drop duplicates — a canonical form, so
    shrinking and equality behave deterministically. *)

val is_crash_free : plan -> bool

(** {2 Compiled views used by the interpreters} *)

val crash_stops : ?n:int -> plan -> int option array
(** [crash_stops ~n plan] is the earliest [Crash_stop] time per processor,
    sized [n] (default: one past the largest processor index in the plan).
    This is exactly the [crash_at] array consumed by {!Scheduler.crash}. *)

val recoveries : plan -> (int * int) list
(** [(at, p)] pairs of every [Crash_recover], sorted by time. *)

val omit_arms : n:int -> plan -> int list array
(** Per-processor sorted arming times of [Omit_write] events. *)

val stale_arms : n:int -> plan -> int list array
(** Per-processor sorted arming times of [Stale_read] events. *)

val stuck_times : m:int -> plan -> int option array
(** Earliest [Stuck_register] time per physical register, sized [m].
    Events naming registers [>= m] are ignored (shrinking robustness). *)

(** {2 Shrinking support} *)

val drop_processor : p:int -> plan -> plan
(** Remove every event of processor [p] and shift higher indices down by
    one — mirrors the harness's drop-a-processor shrink step. *)

val drop_register : reg:int -> plan -> plan
(** Remove [Stuck_register] events of [reg], shifting higher registers. *)

(** {2 Concrete syntax}

    [crash:p2@10; recover:p3@8; omit:p1@4; stale:p1@6; stuck:r2@0] —
    1-based processors/registers, 0-based times, events separated by [;]
    (the [p]/[r] prefix is optional on input). *)

val pp_event : event Fmt.t
val pp : plan Fmt.t
val to_string : plan -> string

val of_string : string -> plan
(** Raises [Invalid_argument] on syntax errors. *)
