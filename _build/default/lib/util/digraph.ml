type t = { mutable edges : int; succ : int list array }

let create n = { edges = 0; succ = Array.make n [] }
let vertex_count g = Array.length g.succ

let add_edge g u v =
  g.succ.(u) <- v :: g.succ.(u);
  g.edges <- g.edges + 1

let successors g u = g.succ.(u)
let edge_count g = g.edges

let sources g =
  let n = vertex_count g in
  let incoming = Array.make n false in
  Array.iter (List.iter (fun v -> incoming.(v) <- true)) g.succ;
  List.filter (fun v -> not incoming.(v)) (List.init n Fun.id)

(* Iterative Tarjan: explicit stack to survive large model-checking graphs. *)
let scc_ids g =
  let n = vertex_count g in
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let comp = Array.make n (-1) in
  let stack = ref [] in
  let next_index = ref 0 in
  let comp_count = ref 0 in
  let visit root =
    (* Each frame is (v, remaining successors). *)
    let frames = ref [ (root, ref g.succ.(root)) ] in
    index.(root) <- !next_index;
    lowlink.(root) <- !next_index;
    incr next_index;
    stack := root :: !stack;
    on_stack.(root) <- true;
    while !frames <> [] do
      match !frames with
      | [] -> ()
      | (v, rest) :: parent_frames -> (
          match !rest with
          | w :: more ->
              rest := more;
              if index.(w) = -1 then begin
                index.(w) <- !next_index;
                lowlink.(w) <- !next_index;
                incr next_index;
                stack := w :: !stack;
                on_stack.(w) <- true;
                frames := (w, ref g.succ.(w)) :: !frames
              end
              else if on_stack.(w) then
                lowlink.(v) <- min lowlink.(v) index.(w)
          | [] ->
              if lowlink.(v) = index.(v) then begin
                let continue = ref true in
                while !continue do
                  match !stack with
                  | [] -> continue := false
                  | w :: tl ->
                      stack := tl;
                      on_stack.(w) <- false;
                      comp.(w) <- !comp_count;
                      if w = v then continue := false
                done;
                incr comp_count
              end;
              frames := parent_frames;
              (match parent_frames with
              | (u, _) :: _ -> lowlink.(u) <- min lowlink.(u) lowlink.(v)
              | [] -> ()))
    done
  in
  for v = 0 to n - 1 do
    if index.(v) = -1 then visit v
  done;
  (comp, !comp_count)

let sccs g =
  let comp, count = scc_ids g in
  let buckets = Array.make count [] in
  Array.iteri (fun v c -> buckets.(c) <- v :: buckets.(c)) comp;
  Array.to_list buckets

let has_self_loop g v = List.mem v g.succ.(v)

let is_acyclic g =
  let comp, count = scc_ids g in
  count = vertex_count g
  && not (Array.exists (fun v -> has_self_loop g v) (Array.init (vertex_count g) Fun.id))
  && Array.length comp = vertex_count g

let reachable_from g starts =
  let n = vertex_count g in
  let seen = Array.make n false in
  let rec dfs stack =
    match stack with
    | [] -> ()
    | v :: rest ->
        let push =
          List.filter
            (fun w ->
              if seen.(w) then false
              else begin
                seen.(w) <- true;
                true
              end)
            g.succ.(v)
        in
        dfs (push @ rest)
  in
  List.iter (fun s -> seen.(s) <- true) starts;
  dfs starts;
  seen
