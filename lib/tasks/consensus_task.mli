(** The consensus task (Definition 3.1) and its group version: all
    processors agree on the identifier of a participating group.  The
    sample-based group reading allows members of a single participating
    group to disagree (every sample picks only one of them); the Figure-5
    algorithm achieves the stronger all-outputs agreement. *)

type output = int

val check_validity : output Outcome.t -> (unit, Task_failure.t) result
(** Decided values are participating group identifiers. *)

val check_sample :
  groups:Repro_util.Iset.t -> (int * output) list -> (unit, Task_failure.t) result

val check_group_solution : output Outcome.t -> (unit, Task_failure.t) result
val check_agreement : output Outcome.t -> (unit, Task_failure.t) result
(** All outputs equal, across groups and within them. *)

val check : output Outcome.t -> (unit, Task_failure.t) result
(** Agreement plus validity: what the Figure-5 algorithm guarantees. *)
