(* Regenerates Figure 2 of the paper: the pathological infinite execution
   in which processors keep overwriting each other so that the incomparable
   views {1,2} and {1,3} survive forever — and its 5-processor extension
   where processors [p] and [p'] are fed those incomparable sets in every
   single scan.

   The run demonstrates, mechanically, the two punchlines of Sections 4/5.1:
   - no bounded "read the same set everywhere k times" rule can detect a
     safe snapshot (p and p' accumulate unbounded clean-scan streaks);
   - the level mechanism of the Figure-3 algorithm defeats the adversary:
     p and p' stay at level 1 while processor 1, holding the unique source
     view {1}, climbs to level N and terminates — breaking the pattern.

   Run with: dune exec examples/pathological_trace.exe *)

open Analysis.Figure2

let () =
  print_endline "Figure 2 (13 actions; steps 5-13 then repeat forever):\n";
  print_string (Repro_util.Text_table.render (to_table (generate ())));
  print_endline
    "\nContinuing the cycle for 9 more actions (rows 14-22 repeat 5-13):\n";
  let rows = generate ~actions:22 () in
  let tail = List.filteri (fun i _ -> i >= 13) rows in
  print_string (Repro_util.Text_table.render (to_table tail));

  print_endline
    "\n=== Extension: p and p' (both input 1) under the write-scan loop ===";
  let module E = Write_scan_ext in
  let cfg = Algorithms.Write_scan.cfg ~n:5 ~m:3 in
  let r = E.run ~cfg ~cycles:40 () in
  let view q = Algorithms.Write_scan.view_of_local r.E.state.E.Sys.locals.(q) in
  Printf.printf "after %d base actions:\n" r.E.base_actions;
  List.iter
    (fun (name, q) ->
      let s = E.scan_summary r.E.extra_events.(q) in
      Printf.printf
        "  %s: view %s, %d completed scans, final clean-scan streak %d\n" name
        (Repro_util.Iset.to_string (view q))
        s.E.total_scans s.E.final_clean_streak)
    [ ("p ", 3); ("p'", 4) ];
  print_endline
    "p and p' read exactly their own (incomparable!) views in every register";
  print_endline
    "of every scan, forever: any bounded-streak termination rule is fooled.";

  print_endline
    "\n=== Same adversary against the Figure-3 snapshot algorithm ===";
  let module S = Snapshot_ext in
  let cfg = Algorithms.Snapshot.cfg ~n:5 ~m:3 in
  let r = S.run ~cfg ~cycles:40 () in
  Array.iteri
    (fun q l ->
      Printf.printf "  processor %d: level %d, view %s%s\n" (q + 1)
        (Algorithms.Snapshot.level_of_local l)
        (Repro_util.Iset.to_string (Algorithms.Snapshot.view_of_local l))
        (match Algorithms.Snapshot.output cfg l with
        | Some o ->
            Printf.sprintf "  TERMINATED with %s" (Repro_util.Iset.to_string o)
        | None -> ""))
    r.S.state.S.Sys.locals;
  print_endline
    "the levels of p and p' stay pinned (they read level-0 churn), while";
  print_endline
    "processor 1 - the unique source view {1} - terminates and breaks the cycle."
