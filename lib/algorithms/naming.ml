(** Mutex-based desanonymization for fully-anonymous read/write memory
    (after Godard–Imbs–Raynal–Taubenfeld, arXiv:1903.12204): distinct
    names in [1..n] are assigned on top of anonymous registers by racing
    the {!Rt_mutex} competition and taking the next free name inside the
    critical section.

    Register values pair the mutex claim ([None] or [Some id]) with a
    {!Named_memory} ledger.  Every write a processor performs — claim,
    release, flood — carries everything it knows; every read merges the
    register's ledger into the reader's knowledge.  The winner of the
    mutex computes its name as one past the largest name it has seen
    (its winning collect read all m registers, so it knows every name
    assigned so far), then {e floods}: it writes the extended ledger to
    all m registers, releasing its claims in the same writes, and halts.
    Flooding before unlocking is what hands the next winner a complete
    ledger: each critical section's knowledge contains its predecessors',
    so halt-time views form a containment chain — the named single-writer
    substrate of {!Named_memory}, on which the classic collect/snapshot
    oracle judges the outputs.

    The feasibility boundary is inherited from the mutex unchanged
    (ledgers ride inside values, so all m registers stay in competition):
    clean iff m is coprime to every k in [2..n] and m >= 3.

    The [forgetful_flood] variant floods the {e pre}-entry ledger — the
    winner's own cell never reaches the memory, so a later winner computes
    the same name: the planted duplicate-name bug of the differential
    matrix. *)

type cfg = { n : int; m : int; forgetful_flood : bool }

let cfg ~n ~m =
  if n < 1 || m < 1 then invalid_arg "Naming.cfg";
  { n; m; forgetful_flood = false }

(** The planted-bug variant: the flood omits the winner's own cell. *)
let cfg_forgetful ~n ~m = { (cfg ~n ~m) with forgetful_flood = true }

type value = { owner : int option; ledger : Named_memory.t }
type input = int

type output = { name : int; view : Named_memory.t }
(** The acquired name and the ledger known at halt time — the processor's
    collect over the named single-writer cells. *)

type phase =
  | Collecting of { pos : int; mine : int; others : (int * int) list; first_free : int }
      (** Observably-equivalent collect compression, exactly as in
          {!Rt_mutex.Collecting}: [mine] the bitmask of indices owned by
          me, [others] per-rival ownership counts (ascending ids),
          [first_free] the lowest unowned index read ([-1] if none yet).
          Ledgers are merged into [know] eagerly as before. *)
  | Claiming of { target : int }
  | Releasing of { mine : int list }  (** never [] *)
  | Flooding of { pos : int; name : int }
      (** critical section: write the extended ledger everywhere,
          releasing the lock in the same writes *)
  | Done of int  (** the acquired name *)

type local = { id : int; know : Named_memory.t; phase : phase }

let name = "naming"
let processors c = c.n
let registers c = c.m
let register_init _ = { owner = None; ledger = Named_memory.empty }
let fresh_collect =
  Collecting { pos = 0; mine = 0; others = []; first_free = -1 }

let init _ id = { id; know = Named_memory.empty; phase = fresh_collect }
let halted _ l = match l.phase with Done _ -> true | _ -> false

(** Whether a processor holds the naming critical section. *)
let in_cs l = match l.phase with Flooding _ -> true | _ -> false

let next _ l =
  match l.phase with
  | Collecting { pos; _ } -> Some (Anonmem.Protocol.Read pos)
  | Claiming { target } ->
      Some (Anonmem.Protocol.Write (target, { owner = Some l.id; ledger = l.know }))
  | Releasing { mine = r :: _ } ->
      Some (Anonmem.Protocol.Write (r, { owner = None; ledger = l.know }))
  | Releasing { mine = [] } -> invalid_arg "Naming.next: empty release"
  | Flooding { pos; _ } ->
      Some (Anonmem.Protocol.Write (pos, { owner = None; ledger = l.know }))
  | Done _ -> None

let decide c l ~mine ~others ~first_free =
  let mine_count = Rt_mutex.popcount mine in
  if mine_count = c.m then
    let name = Named_memory.next_name l.know in
    let know =
      if c.forgetful_flood then l.know
      else Named_memory.add l.know ~name ~owner:l.id
    in
    { l with know; phase = Flooding { pos = 0; name } }
  else if List.exists (fun (_, k) -> k > mine_count) others then
    match Rt_mutex.indices_of_mask ~m:c.m mine with
    | [] -> { l with phase = fresh_collect }
    | mine -> { l with phase = Releasing { mine } }
  else if first_free >= 0 then { l with phase = Claiming { target = first_free } }
  else { l with phase = fresh_collect }

let apply_read c l ~reg v =
  match l.phase with
  | Collecting { pos; mine; others; first_free } ->
      if reg <> pos then invalid_arg "Naming.apply_read: wrong register";
      let l = { l with know = Named_memory.merge l.know v.ledger } in
      let mine, others, first_free =
        match v.owner with
        | None -> (mine, others, if first_free < 0 then pos else first_free)
        | Some q when q = l.id -> (mine lor (1 lsl pos), others, first_free)
        | Some q -> (mine, Rt_mutex.bump q others, first_free)
      in
      if pos + 1 < c.m then
        { l with phase = Collecting { pos = pos + 1; mine; others; first_free } }
      else decide c l ~mine ~others ~first_free
  | Claiming _ | Releasing _ | Flooding _ | Done _ ->
      invalid_arg "Naming.apply_read: not collecting"

let apply_write c l =
  match l.phase with
  | Claiming _ -> { l with phase = fresh_collect }
  | Releasing { mine = _ :: rest } ->
      if rest = [] then { l with phase = fresh_collect }
      else { l with phase = Releasing { mine = rest } }
  | Flooding { pos; name } ->
      if pos + 1 < c.m then { l with phase = Flooding { pos = pos + 1; name } }
      else { l with phase = Done name }
  | Collecting _ | Releasing { mine = [] } | Done _ ->
      invalid_arg "Naming.apply_write: not writing"

let output _ l =
  match l.phase with
  | Done name -> Some { name; view = l.know }
  | _ -> None

let pp_value _ ppf v =
  match v.owner with
  | None -> Fmt.pf ppf "-%a" Named_memory.pp v.ledger
  | Some id -> Fmt.pf ppf "%d%a" id Named_memory.pp v.ledger

let pp_output _ ppf o =
  Fmt.pf ppf "name=%d view=%a" o.name Named_memory.pp o.view

let pp_local _ ppf l =
  let phase ppf = function
    | Collecting { pos; _ } -> Fmt.pf ppf "collect@%d" pos
    | Claiming { target } -> Fmt.pf ppf "claim r%d" (target + 1)
    | Releasing { mine } ->
        Fmt.pf ppf "release %a" Fmt.(list ~sep:(any ",") int) mine
    | Flooding { pos; name } -> Fmt.pf ppf "CS:flood@%d name=%d" pos name
    | Done name -> Fmt.pf ppf "named %d" name
  in
  Fmt.pf ppf "{id=%d know=%a %a}" l.id Named_memory.pp l.know phase l.phase
