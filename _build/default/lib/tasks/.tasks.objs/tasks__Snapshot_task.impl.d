lib/tasks/snapshot_task.ml: Array Fmt Iset List Outcome Repro_util
