lib/util/permutation.ml: Array Fmt Fun List Rng
