module type ORDERED = sig
  type t

  val compare : t -> t -> int
end

module type S = sig
  type elt
  type t

  val empty : t
  val is_empty : t -> bool
  val singleton : elt -> t
  val mem : elt -> t -> bool
  val add : elt -> t -> t
  val remove : elt -> t -> t
  val union : t -> t -> t
  val inter : t -> t -> t
  val diff : t -> t -> t
  val subset : t -> t -> bool
  val strict_subset : t -> t -> bool
  val comparable : t -> t -> bool
  val equal : t -> t -> bool
  val compare : t -> t -> int
  val cardinal : t -> int
  val elements : t -> elt list
  val of_list : elt list -> t
  val fold : (elt -> 'a -> 'a) -> t -> 'a -> 'a
  val iter : (elt -> unit) -> t -> unit
  val for_all : (elt -> bool) -> t -> bool
  val exists : (elt -> bool) -> t -> bool
  val filter : (elt -> bool) -> t -> t
  val map : (elt -> elt) -> t -> t
  val min_elt_opt : t -> elt option
  val max_elt_opt : t -> elt option
  val choose_opt : t -> elt option
  val rank : elt -> t -> int option
  val union_all : t list -> t
  val pp : elt Fmt.t -> t Fmt.t
end

module Make (Ord : ORDERED) = struct
  type elt = Ord.t
  type t = elt list

  let empty = []
  let is_empty s = s = []
  let singleton x = [ x ]

  let rec mem x = function
    | [] -> false
    | y :: rest ->
        let c = Ord.compare x y in
        if c = 0 then true else if c < 0 then false else mem x rest

  let rec add x = function
    | [] -> [ x ]
    | y :: rest as s ->
        let c = Ord.compare x y in
        if c = 0 then s else if c < 0 then x :: s else y :: add x rest

  let rec remove x = function
    | [] -> []
    | y :: rest as s ->
        let c = Ord.compare x y in
        if c = 0 then rest else if c < 0 then s else y :: remove x rest

  let rec union a b =
    match (a, b) with
    | [], s | s, [] -> s
    | x :: xs, y :: ys ->
        let c = Ord.compare x y in
        if c = 0 then x :: union xs ys
        else if c < 0 then x :: union xs b
        else y :: union a ys

  let rec inter a b =
    match (a, b) with
    | [], _ | _, [] -> []
    | x :: xs, y :: ys ->
        let c = Ord.compare x y in
        if c = 0 then x :: inter xs ys
        else if c < 0 then inter xs b
        else inter a ys

  let rec diff a b =
    match (a, b) with
    | [], _ -> []
    | s, [] -> s
    | x :: xs, y :: ys ->
        let c = Ord.compare x y in
        if c = 0 then diff xs ys else if c < 0 then x :: diff xs b else diff a ys

  let rec subset a b =
    match (a, b) with
    | [], _ -> true
    | _ :: _, [] -> false
    | x :: xs, y :: ys ->
        let c = Ord.compare x y in
        if c = 0 then subset xs ys else if c < 0 then false else subset a ys

  let rec compare a b =
    match (a, b) with
    | [], [] -> 0
    | [], _ :: _ -> -1
    | _ :: _, [] -> 1
    | x :: xs, y :: ys ->
        let c = Ord.compare x y in
        if c <> 0 then c else compare xs ys

  let equal a b = compare a b = 0
  let strict_subset a b = subset a b && not (equal a b)
  let comparable a b = subset a b || subset b a
  let cardinal = List.length
  let elements s = s
  let of_list l = List.fold_left (fun s x -> add x s) empty l
  let fold f s acc = List.fold_left (fun acc x -> f x acc) acc s
  let iter = List.iter
  let for_all = List.for_all
  let exists = List.exists
  let filter = List.filter
  let map f s = of_list (List.map f s)
  let min_elt_opt = function [] -> None | x :: _ -> Some x

  let rec max_elt_opt = function
    | [] -> None
    | [ x ] -> Some x
    | _ :: rest -> max_elt_opt rest

  let choose_opt = min_elt_opt

  let rank x s =
    let rec go i = function
      | [] -> None
      | y :: rest ->
          let c = Ord.compare x y in
          if c = 0 then Some i else if c < 0 then None else go (i + 1) rest
    in
    go 1 s

  let union_all l = List.fold_left union empty l

  let pp pp_elt ppf s =
    Fmt.pf ppf "{%a}" Fmt.(list ~sep:(any ",") pp_elt) (elements s)
end
