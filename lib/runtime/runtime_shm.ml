(** Real shared-memory runtime: run any fully-anonymous protocol on actual
    OCaml 5 domains.

    The simulator in {!Anonmem.System} interleaves steps under a scheduler;
    this module instead spawns one domain per processor and backs the [M]
    anonymous registers with [Atomic.t] cells holding immutable protocol
    values.  Atomic reads and writes of immutable values give exactly the
    MWMR atomic-register semantics of the model (each access is a single
    linearizable load or store), and the hardware/OS scheduler plays the
    role of the asynchronous adversary.  Each domain is wired through its
    own hidden permutation, as in the model.

    This is the "production" face of the library: the example
    [examples/multicore_snapshot.ml] and the [X2] experiment run the
    Figure-3 snapshot, renaming and consensus algorithms on real
    parallelism and validate the task properties of the collected
    outputs. *)

open Repro_util

module Make (P : Anonmem.Protocol.S) = struct
  type outcome = {
    outputs : P.output option array;
    steps : int array;  (** shared-memory operations issued per processor *)
    wiring : Anonmem.Wiring.t;
  }

  exception Step_limit of int

  (* One processor's life: repeatedly execute the pending operation against
     the atomic registers until the protocol halts (or the step budget runs
     out, for non-terminating protocols such as the write-scan loop). *)
  let processor_loop cfg wiring registers ~max_steps p local0 =
    let steps = ref 0 in
    let rec go local =
      match P.next cfg local with
      | None -> (local, !steps)
      | Some op ->
          if !steps >= max_steps then raise (Step_limit p);
          incr steps;
          let local =
            match op with
            | Anonmem.Protocol.Read i ->
                let r = Anonmem.Wiring.phys wiring ~p i in
                P.apply_read cfg local ~reg:i (Atomic.get registers.(r))
            | Anonmem.Protocol.Write (i, v) ->
                let r = Anonmem.Wiring.phys wiring ~p i in
                Atomic.set registers.(r) v;
                P.apply_write cfg local
          in
          go local
    in
    go local0

  (** Run [inputs] on one domain per processor.  [max_steps] bounds each
      processor's operation count; by default exceeding it fails the whole
      run, while [~allow_timeout:true] reports the timed-out processors as
      having no output (the right reading for obstruction-free protocols,
      where contention may legitimately starve a processor).  The wiring
      defaults to a random one drawn from [seed]. *)
  let run ?(seed = 0) ?wiring ?(max_steps = 10_000_000) ?(allow_timeout = false)
      ~cfg ~inputs () =
    let n = P.processors cfg and m = P.registers cfg in
    if Array.length inputs <> n then invalid_arg "Runtime_shm.run: bad inputs";
    let rng = Rng.create ~seed in
    let wiring =
      match wiring with Some w -> w | None -> Anonmem.Wiring.random rng ~n ~m
    in
    let registers = Array.init m (fun _ -> Atomic.make (P.register_init cfg)) in
    let domains =
      Array.init n (fun p ->
          let local0 = P.init cfg inputs.(p) in
          Domain.spawn (fun () ->
              match processor_loop cfg wiring registers ~max_steps p local0 with
              | local, steps -> Ok (P.output cfg local, steps)
              | exception Step_limit _ -> Error `Step_limit))
    in
    let results = Array.map Domain.join domains in
    if
      (not allow_timeout)
      && Array.exists
           (function Error `Step_limit -> true | Ok _ -> false)
           results
    then Error (Fmt.str "some processor exceeded %d operations" max_steps)
    else
      let outputs =
        Array.map
          (function Ok (o, _) -> o | Error `Step_limit -> None)
          results
      in
      let steps =
        Array.map (function Ok (_, s) -> s | Error `Step_limit -> 0) results
      in
      Ok { outputs; steps; wiring }
end

module Snapshot_run = Make (Algorithms.Snapshot)
module Renaming_run = Make (Algorithms.Renaming)
module Consensus_run = Make (Algorithms.Consensus)

(** Solve the snapshot task on real domains and validate the containment
    property of the collected outputs. *)
let parallel_snapshot ?seed ?max_steps ~inputs () =
  let n = Array.length inputs in
  let cfg = Algorithms.Snapshot.standard ~n in
  match Snapshot_run.run ?seed ?max_steps ~cfg ~inputs () with
  | Error e -> Error e
  | Ok r -> (
      let outcome = Tasks.Outcome.make ~inputs ~outputs:r.Snapshot_run.outputs () in
      match
        ( Tasks.Snapshot_task.check_strong outcome,
          Tasks.Snapshot_task.check_group_solution outcome )
      with
      | Ok (), Ok () -> Ok r
      | Error e, _ | _, Error e ->
          Error
            (Fmt.str "parallel snapshot outputs invalid: %a"
               Tasks.Task_failure.pp e))

(** Obstruction-free consensus on real domains can livelock under true
    contention, so processors that fail to decide within the step budget
    are reported as undecided; agreement/validity are checked on the
    processors that did decide.  [Ok (decided, undecided_count)]. *)
let parallel_consensus ?seed ?(max_steps = 10_000_000) ~inputs () =
  let n = Array.length inputs in
  let cfg = Algorithms.Consensus.standard ~n in
  match Consensus_run.run ?seed ~max_steps ~allow_timeout:true ~cfg ~inputs () with
  | Error e -> Error e
  | Ok r -> (
      let outcome = Tasks.Outcome.make ~inputs ~outputs:r.Consensus_run.outputs () in
      match Tasks.Consensus_task.check outcome with
      | Ok () ->
          let undecided =
            Array.fold_left
              (fun acc -> function None -> acc + 1 | Some _ -> acc)
              0 r.Consensus_run.outputs
          in
          Ok (r, undecided)
      | Error e ->
          Error
            (Fmt.str "parallel consensus outputs invalid: %a"
               Tasks.Task_failure.pp e))
