(** Adversary shapes: serializable descriptions of schedule families.

    A shape is a small, seed-independent description of an adversary; a
    concrete {!Anonmem.Scheduler.t} is instantiated from it together with
    an {!Repro_util.Rng.t}, so the same shape value and seed always yield
    the same schedule.  The families cover the adversaries the paper's
    claims quantify over:

    - {!Uniform}: fair random — every enabled processor equally likely;
    - {!Weighted}: unfair random — per-processor integer weights, so some
      processors run orders of magnitude more often than others (the
      covering/overwrite churn of Section 2.1 thrives on asymmetry);
    - {!Crashy}: crash-prone — each processor may stop being scheduled
      forever at a predetermined time (built on {!Anonmem.Scheduler.crash});
    - {!Periodic}: ultimately periodic — a finite prologue followed by a
      cycled script, the shape of Figure 2's steps 5–13 loop (built on
      {!Anonmem.Scheduler.script_then_cycle}). *)

open Repro_util

type shape =
  | Uniform
  | Weighted of int array  (** weight of each processor, [>= 1] *)
  | Crashy of Anonmem.Fault.plan
      (** crash-stop events ({!Anonmem.Fault.Crash_stop}, global times) —
          the same representation the fault injector consumes, so the
          schedule-level and memory-level readings of crash-stop cannot
          drift apart *)
  | Periodic of { prefix : int list; cycle : int list }

let name = function
  | Uniform -> "uniform"
  | Weighted _ -> "weighted"
  | Crashy _ -> "crashy"
  | Periodic _ -> "periodic"

let pp ppf = function
  | Uniform -> Fmt.string ppf "uniform"
  | Weighted w ->
      Fmt.pf ppf "weighted(%a)" Fmt.(array ~sep:(any ",") int) w
  | Crashy plan -> Fmt.pf ppf "crashy(%a)" Anonmem.Fault.pp plan
  | Periodic { prefix; cycle } ->
      Fmt.pf ppf "periodic(%a | %a)"
        Fmt.(list ~sep:(any ",") int)
        (List.map succ prefix)
        Fmt.(list ~sep:(any ",") int)
        (List.map succ cycle)

let weighted_scheduler rng weights =
  let weight p = if p < Array.length weights then max 1 weights.(p) else 1 in
  let pick ~time:_ ~enabled =
    match enabled with
    | [] -> None
    | _ ->
        let total = List.fold_left (fun acc p -> acc + weight p) 0 enabled in
        let draw = Rng.int rng total in
        let rec walk acc = function
          | [] -> List.hd enabled (* unreachable: draw < total *)
          | p :: rest ->
              let acc = acc + weight p in
              if draw < acc then p else walk acc rest
        in
        Some (walk 0 enabled)
  in
  (* The int twin: same single draw against the summed weights of the
     enabled set, then the same ascending cumulative walk — draw-for-draw
     the decision [pick] makes on the sorted enabled list.  The cumulative
     weights over the set bits are cached packed and rebuilt only when the
     mask changes, which happens at most once per halting/crash — so the
     per-step work is one draw and a short array scan. *)
  let cached_mask = ref (-1) in
  let pids = ref [||] and cum = ref [||] in
  let rebuild mask =
    cached_mask := mask;
    let k = Repro_util.Bits.popcount mask in
    let ps = Array.make k 0 and cw = Array.make k 0 in
    let m = ref mask and acc = ref 0 in
    for i = 0 to k - 1 do
      let p = Repro_util.Bits.ctz !m in
      ps.(i) <- p;
      acc := !acc + weight p;
      cw.(i) <- !acc;
      m := !m land (!m - 1)
    done;
    pids := ps;
    cum := cw
  in
  let mask_pick ~time:_ ~mask =
    if mask <> !cached_mask then rebuild mask;
    let cw = !cum in
    let draw = Rng.int rng cw.(Array.length cw - 1) in
    (* First index whose cumulative weight exceeds the draw — exactly the
       first [p] with [draw < acc] in [pick]'s walk. *)
    let i = ref 0 in
    while cw.(!i) <= draw do incr i done;
    !pids.(!i)
  in
  Anonmem.Scheduler.fn_mask ~name:"weighted" ~pick ~mask_pick

(** Instantiate the shape as a concrete scheduler.  All randomness comes
    from [rng], so equal seeds yield equal schedules. *)
let scheduler rng = function
  | Uniform -> Anonmem.Scheduler.random rng
  | Weighted w -> weighted_scheduler rng w
  | Crashy plan -> Anonmem.Scheduler.crash_faults ~plan (Anonmem.Scheduler.random rng)
  | Periodic { prefix; cycle } ->
      Anonmem.Scheduler.script_then_cycle ~prefix ~cycle

(** Draw a random shape for [n] processors.  [horizon] bounds the crash
    times (typically the step budget of the run). *)
let random rng ~n ~horizon =
  match Rng.int rng 10 with
  | 0 | 1 -> Uniform
  | 2 | 3 | 4 ->
      (* Heavily skewed weights: 8^k ratios starve some processors. *)
      Weighted (Array.init n (fun _ -> 1 lsl (3 * Rng.int rng 3)))
  | 5 | 6 ->
      Crashy
        (List.concat
           (List.init n (fun p ->
                if Rng.bool rng then
                  [ Anonmem.Fault.Crash_stop { p; at = Rng.int rng (max 1 horizon) } ]
                else [])))
  | _ ->
      let pids len = List.init len (fun _ -> Rng.int rng n) in
      let prefix = pids (Rng.int rng (3 * n)) in
      let cycle = pids (1 + Rng.int rng (2 * n)) in
      Periodic { prefix; cycle }
