(** {!Explorer.CHECKABLE} instances: fixed-width byte codecs for the
    finite-state protocols of the library.

    The codecs pack views as bitmasks, so they support input values in
    [0..7] — ample for exhaustive exploration, which is only feasible for a
    handful of processors anyway.  All fields of the protocols' local
    states are small non-negative integers; each occupies one byte. *)

open Repro_util

let put b off x =
  if x < 0 || x > 255 then invalid_arg "Codecs: field out of byte range";
  Bytes.set b off (Char.chr x)

let get b off = Char.code (Bytes.get b off)

(** The Figure-3 snapshot algorithm. *)
module Snapshot = struct
  include Algorithms.Snapshot
  module C = Algorithms.Snapshot.Core

  let value_width _ = 2

  let encode_value _ (v : value) b off =
    put b off (Iset.to_bits v.view);
    put b (off + 1) v.level

  let decode_value _ b off : value =
    { view = Iset.of_bits (get b off); level = get b (off + 1) }

  let local_width _ = 5

  let encode_local _ (l : local) b off =
    put b off (Iset.to_bits l.C.view);
    put b (off + 1) l.C.level;
    put b (off + 2) l.C.next_write;
    match l.C.phase with
    | C.Writing ->
        put b (off + 3) 0;
        put b (off + 4) 0
    | C.Scanning s ->
        put b (off + 3) (1 + (s.C.pos * 2) + (if s.C.all_own then 1 else 0));
        put b (off + 4) s.C.min_level

  let decode_local _ b off : local =
    let phase =
      match get b (off + 3) with
      | 0 -> C.Writing
      | k ->
          C.Scanning
            {
              C.pos = (k - 1) / 2;
              all_own = (k - 1) land 1 = 1;
              min_level = get b (off + 4);
            }
    in
    {
      C.view = Iset.of_bits (get b off);
      level = get b (off + 1);
      next_write = get b (off + 2);
      phase;
    }
end

(** The Figure-1 write–scan loop (no outputs; explored for its cycle
    structure). *)
module Write_scan = struct
  include Algorithms.Write_scan
  module W = Algorithms.Write_scan

  let value_width _ = 1
  let encode_value _ v b off = put b off (Iset.to_bits v)
  let decode_value _ b off = Iset.of_bits (get b off)
  let local_width _ = 3

  let encode_local _ (l : local) b off =
    put b off (Iset.to_bits l.W.view);
    put b (off + 1) l.W.next_write;
    match l.W.phase with
    | W.Writing -> put b (off + 2) 0
    | W.Scanning s -> put b (off + 2) (1 + s.W.pos)

  let decode_local _ b off : local =
    let phase =
      match get b (off + 2) with
      | 0 -> W.Writing
      | k -> W.Scanning { W.pos = k - 1 }
    in
    {
      W.view = Iset.of_bits (get b off);
      next_write = get b (off + 1);
      phase;
    }
end

(** The broken double-collect baseline, explored to hunt for task
    violations mechanically. *)
module Double_collect = struct
  include Algorithms.Double_collect
  module D = Algorithms.Double_collect

  let value_width _ = 1
  let encode_value _ v b off = put b off (Iset.to_bits v)
  let decode_value _ b off = Iset.of_bits (get b off)
  let local_width _ = 4

  let encode_local _ (l : local) b off =
    put b off (Iset.to_bits l.D.view);
    put b (off + 1) l.D.next_write;
    put b (off + 2) l.D.streak;
    match l.D.phase with
    | D.Writing -> put b (off + 3) 0
    | D.Scanning s ->
        put b (off + 3) (1 + (s.D.pos * 2) + (if s.D.all_own then 1 else 0))

  let decode_local _ b off : local =
    let phase =
      match get b (off + 3) with
      | 0 -> D.Writing
      | k ->
          D.Scanning { D.pos = (k - 1) / 2; all_own = (k - 1) land 1 = 1 }
    in
    {
      D.view = Iset.of_bits (get b off);
      next_write = get b (off + 1);
      streak = get b (off + 2);
      phase;
    }
end

(** The Figure-5 consensus algorithm, for {e bounded} exploration: the
    state space is infinite (timestamps grow without bound), so exploration
    must be cut off with [stop_expansion] once a timestamp exceeds a bound;
    the codec supports values in [1..max_value] and timestamps in
    [0..max_ts] with [max_value * (max_ts + 1) <= 24].

    The [rounds] diagnostic counter is deliberately {e not} encoded (it
    never influences behaviour); decoding yields [rounds = 0], which
    quotients the state space by a ghost variable. *)
module Consensus = struct
  include Algorithms.Consensus
  module C = Algorithms.Consensus
  module SC = Algorithms.Consensus.Snap.Core

  let max_value = 3
  let max_ts = 7

  let pair_index (v, t) =
    if v < 1 || v > max_value || t < 0 || t > max_ts then
      invalid_arg "Codecs.Consensus: (value, timestamp) out of bounds";
    ((v - 1) * (max_ts + 1)) + t

  let pair_of_index i = ((i / (max_ts + 1)) + 1, i mod (max_ts + 1))

  let pset_bits s =
    C.Pset.fold (fun p acc -> acc lor (1 lsl pair_index p)) s 0

  let pset_of_bits bits =
    let rec go i acc =
      if i >= max_value * (max_ts + 1) then acc
      else
        go (i + 1)
          (if bits land (1 lsl i) <> 0 then C.Pset.add (pair_of_index i) acc
           else acc)
    in
    go 0 C.Pset.empty

  let put3 b off x =
    put b off (x land 0xff);
    put b (off + 1) ((x lsr 8) land 0xff);
    put b (off + 2) ((x lsr 16) land 0xff)

  let get3 b off = get b off lor (get b (off + 1) lsl 8) lor (get b (off + 2) lsl 16)

  let value_width _ = 4

  let encode_value _ (v : value) b off =
    put3 b off (pset_bits v.SC.view);
    put b (off + 3) v.SC.level

  let decode_value _ b off : value =
    { SC.view = pset_of_bits (get3 b off); level = get b (off + 3) }

  (* pref, ts, decided(+1, 0 = none), snap: view(3) level nw phase min *)
  let local_width _ = 10

  let encode_local _ (l : local) b off =
    put b off l.C.pref;
    put b (off + 1) l.C.ts;
    put b (off + 2) (match l.C.decided with None -> 0 | Some v -> v + 1);
    let s = l.C.snap in
    put3 b (off + 3) (pset_bits s.SC.view);
    put b (off + 6) s.SC.level;
    put b (off + 7) s.SC.next_write;
    (match s.SC.phase with
    | SC.Writing ->
        put b (off + 8) 0;
        put b (off + 9) 0
    | SC.Scanning sc ->
        put b (off + 8) (1 + (sc.SC.pos * 2) + (if sc.SC.all_own then 1 else 0));
        put b (off + 9) sc.SC.min_level)

  let decode_local _ b off : local =
    let phase =
      match get b (off + 8) with
      | 0 -> SC.Writing
      | k ->
          SC.Scanning
            {
              SC.pos = (k - 1) / 2;
              all_own = (k - 1) land 1 = 1;
              min_level = get b (off + 9);
            }
    in
    {
      C.input = get b off;
      (* the original input is immaterial after initialization; decode it
         as the current preference, which keeps the codec total *)
      pref = get b off;
      ts = get b (off + 1);
      decided = (match get b (off + 2) with 0 -> None | v -> Some (v - 1));
      rounds = 0;
      snap =
        {
          SC.view = pset_of_bits (get3 b (off + 3));
          level = get b (off + 6);
          next_write = get b (off + 7);
          phase;
        };
    }
end

(** The Figure-4 renaming algorithm: the snapshot core plus the immutable
    group identifier. *)
module Renaming = struct
  include Algorithms.Renaming
  module R = Algorithms.Renaming

  let value_width = Snapshot.value_width
  let encode_value = Snapshot.encode_value
  let decode_value = Snapshot.decode_value
  let local_width cfg = 1 + Snapshot.local_width cfg

  let encode_local cfg (l : local) b off =
    put b off l.R.group;
    Snapshot.encode_local cfg l.R.core b (off + 1)

  let decode_local cfg b off : local =
    { R.group = get b off; core = Snapshot.decode_local cfg b (off + 1) }
end
