bin/scratch.mli:
