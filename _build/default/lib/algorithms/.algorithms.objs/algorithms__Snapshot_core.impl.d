lib/algorithms/snapshot_core.ml: Anonmem Fmt Repro_util Sorted_set
