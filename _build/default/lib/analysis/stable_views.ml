(** The eventual pattern (Section 4): run the write–scan loop of Figure 1
    until the views stabilize and analyse the resulting stable-view graph.

    In an infinite execution views are monotone and bounded above by the
    set of participating inputs, so they reach a fixpoint after finitely
    many steps; a finite run has reached the pattern of its (ultimately
    periodic) schedule once no view has changed for a window of steps
    covering at least one full period.  The caller chooses the window; the
    default covers several complete write–scan rounds of every processor.

    The stable views are the views of the {e live} processors — those the
    schedule keeps scheduling (Definition 4.2 explicitly excludes the final
    views of processors that merely stop taking steps). *)

open Repro_util
module Write_scan = Algorithms.Write_scan
module Scheduler = Anonmem.Scheduler
module Sys = Anonmem.System.Make (Write_scan)

type result = {
  stabilized_at : int;
      (** step index after which no view of a live processor changed — an
          upper estimate of the GST of Definition 4.1 *)
  total_steps : int;
  stable_views : (int * Iset.t) list;  (** live processor -> stable view *)
  graph : View_graph.t;
}

let default_window ~n ~m = 8 * n * (m + 1)

(** Run [Write_scan] under [sched] until every live processor's view has
    been unchanged for [window] consecutive steps (or [max_steps] ran out —
    [Error] in that case, which for a fair scheduler indicates the window
    was shorter than the schedule's period). *)
let run ?window ?(max_steps = 1_000_000) ~cfg ~wiring ~inputs ~live ~sched () =
  let { Write_scan.n; m } = cfg in
  let window = match window with Some w -> w | None -> default_window ~n ~m in
  let state = Sys.init ~cfg ~wiring ~inputs in
  let views () =
    List.map (fun p -> (p, Write_scan.view_of_local state.Sys.locals.(p))) live
  in
  let last_views = ref (views ()) in
  let last_change = ref 0 in
  let time = ref 0 in
  let stopped = ref None in
  while !stopped = None do
    if !time - !last_change >= window then stopped := Some `Stable
    else if !time >= max_steps then stopped := Some `Out_of_steps
    else
      match Scheduler.pick sched ~time:!time ~enabled:(Sys.enabled state) with
      | None -> stopped := Some `Sched_done
      | Some p ->
          let _ev = Sys.step_in_place state p in
          incr time;
          let now = views () in
          if
            not
              (List.for_all2
                 (fun (_, a) (_, b) -> Iset.equal a b)
                 !last_views now)
          then begin
            last_views := now;
            last_change := !time
          end
  done;
  match !stopped with
  | Some `Stable ->
      let stable_views = views () in
      Ok
        {
          stabilized_at = !last_change;
          total_steps = !time;
          stable_views;
          graph = View_graph.of_views (List.map snd stable_views);
        }
  | _ -> Error "stable_views: views did not stabilize within max_steps"

(** Convenience wrapper: random wiring and a fair scheduler, all processors
    live.  This is the workhorse of the Theorem 4.8 property tests. *)
let run_random ?window ?max_steps ~n ~m ~inputs ~seed () =
  let rng = Rng.create ~seed in
  let cfg = Write_scan.cfg ~n ~m in
  let wiring = Anonmem.Wiring.random rng ~n ~m in
  let sched = Scheduler.random (Rng.split rng) in
  run ?window ?max_steps ~cfg ~wiring ~inputs
    ~live:(List.init n Fun.id) ~sched ()
