test/test_anonmem.ml: Alcotest Algorithms Anonmem Array Iset List Option Permutation Printf Repro_util Rng String
