lib/util/rng.ml: Array Fun Int64 List
