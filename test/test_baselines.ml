(* The baselines: the named-memory collect snapshot (works only because the
   memory is named) and the broken double-collect rule (fooled by the
   Figure-2 adversary).  These tests pin down *why* the fully-anonymous
   model needs the paper's construction. *)

open Repro_util
module Named = Algorithms.Named_snapshot
module NSys = Anonmem.System.Make (Named)
module Scheduler = Anonmem.Scheduler

let run_named ~wiring ~n =
  let cfg = Named.cfg ~n in
  let inputs = Array.init n (fun i -> i + 1) in
  let st = NSys.init ~cfg ~wiring ~inputs in
  let stop, _ = NSys.run ~max_steps:200_000 ~sched:(Scheduler.round_robin ()) st in
  (st, stop)

let test_named_identity_wiring_complete () =
  (* On named memory every processor owns its register; all collects that
     stabilize after the writes see all n identities. *)
  List.iter
    (fun n ->
      let st, stop = run_named ~wiring:(Anonmem.Wiring.identity ~n ~m:n) ~n in
      Alcotest.(check bool) "terminates" true (stop = NSys.All_halted);
      Array.iter
        (function
          | Some o ->
              Alcotest.(check int)
                (Printf.sprintf "n=%d: complete collect" n)
                n (Iset.cardinal o)
          | None -> Alcotest.fail "missing output")
        (NSys.outputs st))
    [ 2; 3; 4; 6 ]

let test_named_identity_outputs_are_snapshots () =
  let n = 5 in
  let st, _ = run_named ~wiring:(Anonmem.Wiring.identity ~n ~m:n) ~n in
  let outcome =
    Tasks.Outcome.make
      ~inputs:(Array.init n (fun i -> i + 1))
      ~outputs:(NSys.outputs st) ()
  in
  match Tasks.Snapshot_task.check_strong outcome with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Tasks.Task_failure.to_string e)

let test_named_breaks_on_anonymous_memory () =
  (* Under random wirings two processors can share a physical register;
     the later write erases the earlier one and collects started after all
     writes miss a participant — the completeness violation. *)
  let n = 4 in
  let rng = Rng.create ~seed:4 in
  let incomplete = ref 0 in
  let trials = 60 in
  for _ = 1 to trials do
    let wiring = Anonmem.Wiring.random rng ~n ~m:n in
    let st, stop = run_named ~wiring ~n in
    if stop <> NSys.All_halted then incr incomplete
    else if
      Array.exists
        (function Some o -> Iset.cardinal o < n | None -> true)
        (NSys.outputs st)
    then incr incomplete
  done;
  Alcotest.(check bool)
    (Printf.sprintf "completeness violated in %d/%d anonymous runs" !incomplete
       trials)
    true
    (!incomplete > trials / 3)

let test_named_collision_deterministic_case () =
  (* Explicit colliding wiring: processors 1 and 2 both mapped to physical
     register 0 for their announce write (sigma2 swaps 0 and 1).  Processor
     2 writes last under round-robin, erasing processor 1. *)
  let n = 2 in
  let wiring = Anonmem.Wiring.of_lists [ [ 0; 1 ]; [ 1; 0 ] ] in
  (* p1 (id 2) announce register = private index 1 -> physical 0 *)
  let st, stop = run_named ~wiring ~n in
  Alcotest.(check bool) "terminates" true (stop = NSys.All_halted);
  let o0 = Option.get (NSys.outputs st).(0) in
  (* p0 wrote phys 0 first, p1 overwrote it: id 1 is gone from memory *)
  Alcotest.(check bool) "p0's own id always in own output" true (Iset.mem 1 o0);
  let o1 = Option.get (NSys.outputs st).(1) in
  Alcotest.(check bool) "p1 never saw p0" true (not (Iset.mem 1 o1))

(* --- double-collect ------------------------------------------------------- *)

module DC = Algorithms.Double_collect
module DSys = Anonmem.System.Make (DC)

let test_double_collect_terminates_fast_when_benign () =
  (* Its selling point: under solo or light contention it terminates much
     faster than the level-based algorithm. *)
  let n = 5 in
  let cfg = DC.standard ~n in
  let wiring = Anonmem.Wiring.identity ~n ~m:n in
  let st = DSys.init ~cfg ~wiring ~inputs:[| 1; 2; 3; 4; 5 |] in
  let stop, steps = DSys.run ~max_steps:100_000 ~sched:(Scheduler.solo 0) st in
  Alcotest.(check bool) "solo terminates" true (stop = DSys.Scheduler_done);
  (* n rounds to fill the registers, then two clean scans *)
  Alcotest.(check bool) "fast: ~n+2 rounds" true (steps <= (n + 2) * (n + 1));
  Alcotest.(check bool) "outputs own singleton" true
    (Iset.equal (Option.get (DSys.output st 0)) (Iset.of_list [ 1 ]))

let test_double_collect_cheaper_than_snapshot_solo () =
  let n = 6 in
  let dc_steps =
    let cfg = DC.standard ~n in
    let st =
      DSys.init ~cfg
        ~wiring:(Anonmem.Wiring.identity ~n ~m:n)
        ~inputs:(Array.init n (fun i -> i + 1))
    in
    snd (DSys.run ~max_steps:1_000_000 ~sched:(Scheduler.solo 0) st)
  in
  let module SSys = Anonmem.System.Make (Algorithms.Snapshot) in
  let snap_steps =
    let cfg = Algorithms.Snapshot.standard ~n in
    let st =
      SSys.init ~cfg
        ~wiring:(Anonmem.Wiring.identity ~n ~m:n)
        ~inputs:(Array.init n (fun i -> i + 1))
    in
    snd (SSys.run ~max_steps:1_000_000 ~sched:(Scheduler.solo 0) st)
  in
  Alcotest.(check bool)
    (Printf.sprintf "double-collect %d steps < snapshot %d steps" dc_steps
       snap_steps)
    true (dc_steps < snap_steps)

let test_double_collect_fooled_by_adversary () =
  (* The paper's Section-4 punchline quantified: under the Figure-2
     adversary, p and p' (same group, input 1) accumulate enough clean
     scans that the double-collect rule (2 consecutive clean scans) would
     have terminated them with the incomparable sets {1,2} and {1,3} —
     while the write-scan churn continues.  We measure it on the write-scan
     extension: the final clean streaks of both processors exceed 2 by an
     arbitrary margin. *)
  let module E = Analysis.Figure2.Write_scan_ext in
  let cfg = Algorithms.Write_scan.cfg ~n:5 ~m:3 in
  let r = E.run ~cfg ~cycles:20 () in
  let s3 = E.scan_summary r.E.extra_events.(3) in
  let s4 = E.scan_summary r.E.extra_events.(4) in
  Alcotest.(check bool) "p fooled (streak >= 2)" true
    (s3.E.final_clean_streak >= 2);
  Alcotest.(check bool) "p' fooled (streak >= 2)" true
    (s4.E.final_clean_streak >= 2);
  let v3 = Algorithms.Write_scan.view_of_local r.E.state.E.Sys.locals.(3) in
  let v4 = Algorithms.Write_scan.view_of_local r.E.state.E.Sys.locals.(4) in
  Alcotest.(check bool) "the views they would output are incomparable" false
    (Iset.comparable v3 v4)

let test_double_collect_sound_under_fair_random () =
  (* The rule is only broken by adversarial churn: under fair random
     schedules its outputs happen to satisfy the task, which is exactly why
     "it seems to work" is not a proof. *)
  let module W = Modelcheck.Witness.Search (DC) in
  let cfg = DC.standard ~n:3 in
  match
    W.find_outcome_violation ~attempts:300 ~cfg ~inputs:[| 1; 2; 3 |]
      ~group_of_input:Fun.id ~to_task_output:Fun.id
      ~check:Tasks.Snapshot_task.check_strong ()
  with
  | None -> ()
  | Some (_, msg) ->
      (* A violation found by random search would be a stronger refutation
         of double collect; record it as a failure of this expectation so
         it gets promoted into its own regression test. *)
      Alcotest.fail
        ("unexpectedly found random violation: "
        ^ Tasks.Task_failure.to_string msg)

let () =
  Alcotest.run "baselines"
    [
      ( "named-memory snapshot",
        [
          Alcotest.test_case "identity wiring complete" `Quick
            test_named_identity_wiring_complete;
          Alcotest.test_case "identity wiring valid snapshots" `Quick
            test_named_identity_outputs_are_snapshots;
          Alcotest.test_case "anonymous memory breaks completeness" `Quick
            test_named_breaks_on_anonymous_memory;
          Alcotest.test_case "deterministic collision" `Quick
            test_named_collision_deterministic_case;
        ] );
      ( "double-collect",
        [
          Alcotest.test_case "fast when benign" `Quick
            test_double_collect_terminates_fast_when_benign;
          Alcotest.test_case "cheaper than snapshot solo" `Quick
            test_double_collect_cheaper_than_snapshot_solo;
          Alcotest.test_case "fooled by the Figure-2 adversary" `Quick
            test_double_collect_fooled_by_adversary;
          Alcotest.test_case "appears sound under fair randomness" `Slow
            test_double_collect_sound_under_fair_random;
        ] );
    ]
