(** Figure 4: adaptive renaming from group snapshots, after Bar-Noy and
    Dolev (1989).

    A processor runs the Figure-3 snapshot algorithm with its group
    identifier as input.  From its snapshot [S] of size [z] it computes its
    rank [r] — the 1-based position of its own group identifier in the
    sorted order of [S] — and takes the name [z(z-1)/2 + r].  Name 1 is
    thus reserved for the snapshot of size 1, names 2–3 for snapshots of
    size 2, names 4–6 for size 3, and so on; with [M] participating groups
    all names fall in [1 .. M(M+1)/2].

    With a {e group} solution to the snapshot task, two processors of the
    same group may obtain incomparable snapshots — and then possibly the
    same name, which group solvability allows.  The subtle point proved in
    Section 6 of the paper is that processors of {e different} groups can
    never collide: incomparable snapshots only arise within one group, and
    the sizes they span are "reserved" by that group.
    {!Tasks.Renaming_task} checks exactly this. *)

open Repro_util

type cfg = Snapshot.cfg = { n : int; m : int }

let cfg = Snapshot.cfg
let standard ~n = Snapshot.standard ~n

type value = Snapshot.value
type input = int

type output = { name_out : int; size : int; rank : int; snapshot : Iset.t }
(** The chosen name together with the snapshot it was derived from, kept
    for the validity checks of the test-suite. *)

type local = { group : int; core : Snapshot.local }

let name = "renaming(fig4)"
let processors = Snapshot.processors
let registers = Snapshot.registers
let register_init = Snapshot.register_init
let init c input = { group = input; core = Snapshot.init c input }

let halted c l = Snapshot.halted c l.core

let next c l =
  match Snapshot.next c l.core with None -> None | Some op -> Some op

let apply_read c l ~reg v = { l with core = Snapshot.apply_read c l.core ~reg v }
let apply_write c l = { l with core = Snapshot.apply_write c l.core }

(* Renaming is the snapshot engine verbatim at execution time — [group]
   is pinned at init and only read when the output is materialized — so
   its flat machine is the shared engine over the [core] component. *)
let flat c ~phys ~inputs ~registers ~locals =
  Snapshot.flat_core c ~phys ~registers ~core_inputs:inputs
    ~get:(fun p -> locals.(p).core)
    ~set:(fun p core -> locals.(p) <- { (locals.(p)) with core })

let name_of_snapshot ~group snapshot =
  match Iset.rank group snapshot with
  | None ->
      invalid_arg "Renaming.name_of_snapshot: own group missing from snapshot"
  | Some rank ->
      let size = Iset.cardinal snapshot in
      { name_out = (size * (size - 1) / 2) + rank; size; rank; snapshot }

let output c l =
  match Snapshot.output c l.core with
  | None -> None
  | Some snapshot -> Some (name_of_snapshot ~group:l.group snapshot)

let max_name ~groups = groups * (groups + 1) / 2
(** The adaptive bound [M(M+1)/2] when [M] groups participate. *)

let pp_value = Snapshot.pp_value
let pp_local c ppf l = Fmt.pf ppf "g%d:%a" l.group (Snapshot.pp_local c) l.core

let pp_output _ ppf o =
  Fmt.pf ppf "name=%d (size=%d rank=%d snap=%a)" o.name_out o.size o.rank
    Iset.pp_set o.snapshot
