bin/scratch2.mli:
