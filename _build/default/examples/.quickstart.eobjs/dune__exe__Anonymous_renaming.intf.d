examples/anonymous_renaming.mli:
